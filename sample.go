package coyote

import (
	"fmt"
	"math"
	"time"
)

// SampleConfig parameterises SMARTS-style systematic sampled simulation
// (Wunderlich et al., ISCA 2003; the SimPoint/SMARTS family the paper's
// related work builds on). All units are retired instructions, summed
// over every hart.
type SampleConfig struct {
	// Period is the sampling interval length: one measurement is taken
	// every Period instructions.
	Period uint64 `json:"period"`
	// Warmup is the detailed (timed) warm-up run immediately before each
	// measurement, re-establishing MSHR/NoC/queue state after a
	// functional fast-forward. Caches stay warm through the fast-forward
	// itself (functional warming), so Warmup only needs to cover the
	// short-lived uncore state.
	Warmup uint64 `json:"warmup"`
	// Measure is the measured window length per interval.
	Measure uint64 `json:"measure"`
	// Seed places the first measurement uniformly within [0, Period) —
	// systematic sampling with a random phase. The same seed reproduces
	// the same placement exactly.
	Seed int64 `json:"seed"`
}

// Validate checks the configuration is usable.
func (sc *SampleConfig) Validate() error {
	if sc.Period == 0 || sc.Measure == 0 {
		return fmt.Errorf("coyote: sample: Period and Measure must be positive")
	}
	if sc.Warmup+sc.Measure > sc.Period {
		return fmt.Errorf("coyote: sample: Warmup+Measure (%d) exceeds Period (%d)",
			sc.Warmup+sc.Measure, sc.Period)
	}
	return nil
}

// SampleInterval is one measured window: its position in the instruction
// stream and the cycles it took in detailed simulation.
type SampleInterval struct {
	StartInstret uint64  `json:"start_instret"`
	Instret      uint64  `json:"instret"`
	Cycles       uint64  `json:"cycles"`
	CPI          float64 `json:"cpi"`
}

// SampleResult is the outcome of a sampled run: the per-interval
// measurements, their aggregate CPI with a 95% confidence interval, and
// the extrapolated whole-program cycle count.
type SampleResult struct {
	Kernel string `json:"kernel"`
	Params Params `json:"params"`

	Intervals []SampleInterval `json:"intervals"`

	// MeanCPI is the mean of the per-interval CPIs (cycles per aggregate
	// retired instruction across all harts); CPIError is the 95%
	// confidence half-width 1.96·σ/√n from the interval-to-interval
	// variance, the error bar sampled simulation carries by construction.
	MeanCPI  float64 `json:"mean_cpi"`
	StdCPI   float64 `json:"std_cpi"`
	CPIError float64 `json:"cpi_error_95"`

	// TotalInstret is the whole program's retired instructions (sampling
	// executes every instruction — functionally or in detail — so this
	// is exact, not estimated).
	TotalInstret uint64 `json:"total_instret"`
	// EstimatedCycles extrapolates the program's detailed-mode runtime:
	// TotalInstret × MeanCPI. EstimatedCyclesLo/Hi apply the CPI
	// confidence interval.
	EstimatedCycles   uint64 `json:"estimated_cycles"`
	EstimatedCyclesLo uint64 `json:"estimated_cycles_lo"`
	EstimatedCyclesHi uint64 `json:"estimated_cycles_hi"`

	// DetailedInstret and FunctionalInstret split the instruction stream
	// by execution mode — the speedup lever is their ratio.
	DetailedInstret   uint64 `json:"detailed_instret"`
	FunctionalInstret uint64 `json:"functional_instret"`

	WallTime time.Duration `json:"wall_time_ns"`
}

// splitmix64 is the standard 64-bit mix used to derive the sampling phase
// from the seed — deterministic, seed-sensitive, dependency-free.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SampleKernel runs a kernel under sampled simulation: functional
// fast-forward (ISA-exact, cache-warming, no timing) between sampling
// points, a detailed warm-up before each measured window, and detailed
// measurement of Measure instructions once per Period. Architectural
// execution is complete and exact — the kernel's results are verified
// against the host reference like any other run — while detailed timing
// is paid for only a fraction of the instruction stream; whole-program
// cycles are extrapolated from the measured CPI with explicit error bars.
func SampleKernel(name string, p Params, cfg Config, sc SampleConfig) (*SampleResult, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if p.Cores == 0 {
		p.Cores = cfg.Cores
	}
	sys, err := PrepareKernel(name, p, cfg)
	if err != nil {
		return nil, err
	}

	out := &SampleResult{Kernel: name, Params: p}
	offset := splitmix64(uint64(sc.Seed)) % sc.Period
	start := time.Now() //coyote:wallclock-ok wall-clock throughput reporting only

	finished := false
	for k := uint64(0); !finished; k++ {
		measureAt := offset + k*sc.Period // instret where measurement k begins
		warmAt := measureAt
		if warmAt >= sc.Warmup {
			warmAt -= sc.Warmup
		} else {
			warmAt = 0
		}
		if cur := sys.TotalInstret(); warmAt > cur {
			done, err := sys.RunFunctional(warmAt - cur)
			if err != nil {
				return nil, err
			}
			if done {
				break
			}
		}
		// Detailed warm-up up to the measurement point.
		if _, stopped, err := sys.RunUntilInstret(measureAt); err != nil {
			return nil, err
		} else if !stopped {
			break
		}
		i0, c0 := sys.TotalInstret(), sys.Cycle()
		_, stopped, err := sys.RunUntilInstret(i0 + sc.Measure)
		if err != nil {
			return nil, err
		}
		i1, c1 := sys.TotalInstret(), sys.Cycle()
		if i1 > i0 && c1 > c0 {
			out.Intervals = append(out.Intervals, SampleInterval{
				StartInstret: i0,
				Instret:      i1 - i0,
				Cycles:       c1 - c0,
				CPI:          float64(c1-c0) / float64(i1-i0),
			})
		}
		finished = !stopped
	}

	// The program may end inside a fast-forward or a measured window;
	// either way every instruction has executed. Verify like a full run.
	if err := VerifyKernel(sys, name, p); err != nil {
		return nil, fmt.Errorf("coyote: sampled %s produced wrong results: %w", name, err)
	}

	out.TotalInstret = sys.TotalInstret()
	for _, iv := range out.Intervals {
		out.DetailedInstret += iv.Instret + sc.Warmup
	}
	if out.DetailedInstret > out.TotalInstret {
		out.DetailedInstret = out.TotalInstret
	}
	out.FunctionalInstret = out.TotalInstret - out.DetailedInstret

	n := len(out.Intervals)
	if n == 0 {
		return nil, fmt.Errorf("coyote: sample: no measured interval fit in %d instructions (shrink Period)", out.TotalInstret)
	}
	var sum float64
	for _, iv := range out.Intervals {
		sum += iv.CPI
	}
	out.MeanCPI = sum / float64(n)
	if n > 1 {
		var ss float64
		for _, iv := range out.Intervals {
			d := iv.CPI - out.MeanCPI
			ss += d * d
		}
		out.StdCPI = math.Sqrt(ss / float64(n-1))
		out.CPIError = 1.96 * out.StdCPI / math.Sqrt(float64(n))
	}
	out.EstimatedCycles = uint64(out.MeanCPI * float64(out.TotalInstret))
	out.EstimatedCyclesLo = uint64(math.Max(0, out.MeanCPI-out.CPIError) * float64(out.TotalInstret))
	out.EstimatedCyclesHi = uint64((out.MeanCPI + out.CPIError) * float64(out.TotalInstret))
	out.WallTime = time.Since(start) //coyote:wallclock-ok wall-clock throughput reporting only
	return out, nil
}

// Report renders a human-readable summary of a sampled run.
func (r *SampleResult) Report() string {
	return fmt.Sprintf(
		"sampled run       %s N=%d cores=%d\n"+
			"intervals         %d measured\n"+
			"mean CPI          %.4f ± %.4f (95%% CI)\n"+
			"instructions      %d total — %d detailed, %d fast-forwarded (%.1f%% detailed)\n"+
			"estimated cycles  %d [%d, %d]\n"+
			"wall time         %s\n",
		r.Kernel, r.Params.N, r.Params.Cores,
		len(r.Intervals),
		r.MeanCPI, r.CPIError,
		r.TotalInstret, r.DetailedInstret, r.FunctionalInstret,
		100*float64(r.DetailedInstret)/math.Max(1, float64(r.TotalInstret)),
		r.EstimatedCycles, r.EstimatedCyclesLo, r.EstimatedCyclesHi,
		r.WallTime.Round(time.Millisecond))
}
