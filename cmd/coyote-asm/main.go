// Command coyote-asm assembles a RISC-V source file with the built-in
// assembler and prints a listing (address, word, disassembly) or writes a
// flat little-endian image.
//
//	coyote-asm prog.s                 # listing to stdout
//	coyote-asm -o prog.bin prog.s     # flat text image
//	coyote-asm -symbols prog.s        # symbol table
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/coyote-sim/coyote/internal/asm"
	"github.com/coyote-sim/coyote/internal/riscv"
)

func main() {
	var (
		out     = flag.String("o", "", "write the flat text-section image to this file")
		symbols = flag.Bool("symbols", false, "print the symbol table")
		textAt  = flag.Uint64("text-base", 0x8000_0000, "text base address")
		dataAt  = flag.Uint64("data-base", 0x8010_0000, "data base address")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: coyote-asm [flags] file.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := asm.AssembleWith(string(src), asm.Options{
		TextBase: *textAt, DataBase: *dataAt,
	})
	if err != nil {
		fatal(err)
	}

	if *out != "" {
		if err := os.WriteFile(*out, prog.Text, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d text bytes, %d data bytes, entry %#x\n",
			*out, len(prog.Text), len(prog.Data), prog.Entry)
		return
	}

	if *symbols {
		names := make([]string, 0, len(prog.Symbols))
		for n := range prog.Symbols {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool {
			return prog.Symbols[names[i]] < prog.Symbols[names[j]]
		})
		for _, n := range names {
			fmt.Printf("%016x %s\n", prog.Symbols[n], n)
		}
		return
	}

	for off := 0; off+4 <= len(prog.Text); off += 4 {
		word := binary.LittleEndian.Uint32(prog.Text[off:])
		dis := "?"
		if in, err := riscv.Decode(word); err == nil {
			dis = riscv.Disasm(in)
		}
		fmt.Printf("%08x:  %08x  %s\n", prog.TextBase+uint64(off), word, dis)
	}
	if len(prog.Data) > 0 {
		fmt.Printf("; data: %d bytes at %#x\n", len(prog.Data), prog.DataBase)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "coyote-asm:", err)
	os.Exit(1)
}
