// Command coyote runs a built-in kernel (or a user-supplied bare-metal
// assembly program) on a configurable simulated system and prints the
// statistics report — the command-line face of the simulator.
//
// Examples:
//
//	coyote -kernel matmul-scalar -cores 8 -n 48
//	coyote -kernel spmv-vector-gather -cores 16 -n 256 -density 0.02 -l2 private
//	coyote -kernel stencil-vector -cores 4 -trace out   # writes out.prv/.pcf/.row
//	coyote -list
//	coyote -config system.json -kernel matmul-vector
//	coyote -run prog.s -cores 2                         # custom program
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	coyote "github.com/coyote-sim/coyote"
	"github.com/coyote-sim/coyote/internal/asm"
	"github.com/coyote-sim/coyote/internal/core"
	"github.com/coyote-sim/coyote/internal/kernels"
	"github.com/coyote-sim/coyote/internal/trace"
	"github.com/coyote-sim/coyote/internal/uncore"
)

func main() {
	var (
		kernel     = flag.String("kernel", "", "built-in kernel to run (see -list)")
		runFile    = flag.String("run", "", "assemble and run a RISC-V .s file instead of a kernel")
		list       = flag.Bool("list", false, "list built-in kernels and exit")
		cores      = flag.Int("cores", 1, "number of simulated cores")
		n          = flag.Int("n", 64, "problem size")
		density    = flag.Float64("density", 0.02, "SpMV nonzero density")
		seed       = flag.Int64("seed", 42, "data generator seed")
		interleave = flag.Int("interleave", 1, "instructions per core per orchestrator slot (Spike-style interleaving when >1)")
		workers    = flag.Int("workers", 0, "host worker goroutines stepping harts each cycle (0 = keep config value; results identical for any count)")
		l2mode     = flag.String("l2", "shared", "L2 sharing: shared | private")
		mapping    = flag.String("mapping", "set-interleave", "bank mapping: set-interleave | page-to-bank")
		nocLat     = flag.Uint64("noc-latency", 0, "override NoC crossbar latency (cycles)")
		memLat     = flag.Uint64("mem-latency", 0, "override memory latency (cycles)")
		llc        = flag.Bool("llc", false, "enable the shared last-level cache (Figure 2 third level)")
		prefetch   = flag.Int("prefetch", 0, "L2 next-line prefetch depth (0 = off)")
		rowBits    = flag.Uint("row-bits", 0, "enable DRAM row-buffer model with this row size in bits (e.g. 13 = 8 KiB rows)")
		fastFwd    = flag.Bool("fastforward", false, "skip idle cycles (wall-clock optimisation; timing identical)")
		mcpu       = flag.Bool("mcpu", false, "offload vector gathers/scatters to the memory-controller CPUs (ACME MCPU path)")
		configPath = flag.String("config", "", "JSON config file overriding the defaults")
		tracePfx   = flag.String("trace", "", "write Paraver trace files <prefix>.prv/.pcf/.row")
		uncoreDump = flag.Bool("uncore", false, "also print the per-unit uncore counters")
		jsonOut    = flag.Bool("json", false, "emit the result as JSON")
		cacheOn    = flag.Bool("cache", false, "serve repeat runs from the content-addressed result cache (kernel runs only; implies no wall-clock/MIPS on a hit)")
		cacheDir   = flag.String("cache-dir", "", "result cache directory (default: ~/.cache/coyote)")
		cacheVer   = flag.Float64("cache-verify", 0, "fraction of cache hits to recompute and cross-check; 1 recomputes every hit and panics on divergence")
		ckptAt     = flag.Uint64("checkpoint-at", 0, "stop the run at this cycle and write a checkpoint (kernel runs only)")
		ckptPath   = flag.String("checkpoint", "", "checkpoint file to write (default <kernel>.ckpt)")
		restoreIn  = flag.String("restore", "", "restore a checkpoint file and run it to completion (ignores kernel/machine flags; the image carries them)")
		samplePer  = flag.Uint64("sample-period", 0, "enable sampled simulation with this interval period (instructions; SMARTS systematic sampling)")
		sampleWarm = flag.Uint64("sample-warmup", 2_000, "detailed warm-up instructions before each measured window")
		sampleMeas = flag.Uint64("sample-measure", 10_000, "measured window length (instructions)")
		sampleSeed = flag.Int64("sample-seed", 42, "seed placing the first measurement within the period")
	)
	flag.Parse()

	if *list {
		for _, name := range coyote.Kernels() {
			k, _ := coyote.GetKernel(name)
			fmt.Printf("%-20s %s\n", name, k.Description)
		}
		return
	}

	cfg := coyote.DefaultConfig(*cores)
	if *configPath != "" {
		raw, err := os.ReadFile(*configPath)
		if err != nil {
			fatal(err)
		}
		if err := json.Unmarshal(raw, &cfg); err != nil {
			fatal(fmt.Errorf("parsing %s: %w", *configPath, err))
		}
		if cfg.Cores == 0 {
			cfg.Cores = *cores
		}
	}
	cfg.InterleaveQuantum = *interleave
	if *workers > 0 {
		cfg.Workers = *workers
	}
	switch *l2mode {
	case "shared":
		cfg.Uncore.L2Shared = true
	case "private":
		cfg.Uncore.L2Shared = false
	default:
		fatal(fmt.Errorf("bad -l2 %q", *l2mode))
	}
	mp, err := uncore.ParseMapping(*mapping)
	if err != nil {
		fatal(err)
	}
	cfg.Uncore.Mapping = mp
	if *nocLat != 0 {
		cfg.Uncore.NoCLatency = *nocLat
	}
	if *memLat != 0 {
		cfg.Uncore.MemLatency = *memLat
	}
	cfg.Uncore.LLCEnable = *llc
	cfg.Uncore.PrefetchDepth = *prefetch
	cfg.Uncore.MemRowBits = *rowBits
	cfg.FastForward = *fastFwd
	cfg.Hart.MCPUOffload = *mcpu

	// Checkpoint, restore and sampling are dedicated drivers: they run a
	// kernel under their own control flow (stop-and-serialize, resume, or
	// the fast-forward/measure alternation) and exit here.
	if *restoreIn != "" {
		runRestore(*restoreIn, *tracePfx, *jsonOut, *uncoreDump)
		return
	}
	if *samplePer > 0 {
		if *kernel == "" {
			fatal(fmt.Errorf("-sample-period needs -kernel"))
		}
		params := kernels.Params{N: *n, Cores: cfg.Cores, Density: *density, Seed: *seed}
		sc := coyote.SampleConfig{Period: *samplePer, Warmup: *sampleWarm, Measure: *sampleMeas, Seed: *sampleSeed}
		runSample(*kernel, params, cfg, sc, *jsonOut)
		return
	}
	if *ckptAt > 0 {
		if *kernel == "" {
			fatal(fmt.Errorf("-checkpoint-at needs -kernel"))
		}
		params := kernels.Params{N: *n, Cores: cfg.Cores, Density: *density, Seed: *seed}
		path := *ckptPath
		if path == "" {
			path = *kernel + ".ckpt"
		}
		runCheckpoint(*kernel, params, cfg, *ckptAt, path, *tracePfx)
		return
	}

	// The cache applies only to kernel runs (keys content-address the
	// kernel's assembled program + params + config) and cannot serve a
	// trace: the Paraver event stream is per-run output the cache does
	// not store. Both fall back to an uncached run with a note.
	useCache := *cacheOn
	if useCache && *runFile != "" {
		fmt.Fprintln(os.Stderr, "coyote: -cache applies to -kernel runs only; running uncached")
		useCache = false
	}
	if useCache && *tracePfx != "" {
		fmt.Fprintln(os.Stderr, "coyote: -trace needs a real simulation; running uncached")
		useCache = false
	}

	var sys *core.System
	var params coyote.Params
	var res *coyote.Result
	var cacheLine string
	verify := false
	switch {
	case *runFile != "":
		src, err := os.ReadFile(*runFile)
		if err != nil {
			fatal(err)
		}
		prog, err := asm.Assemble(string(src))
		if err != nil {
			fatal(fmt.Errorf("assembling %s: %w", *runFile, err))
		}
		sys, err = coyote.NewSystem(cfg)
		if err != nil {
			fatal(err)
		}
		sys.LoadProgram(prog)
	case *kernel != "":
		params = kernels.Params{N: *n, Cores: cfg.Cores, Density: *density, Seed: *seed}
		if useCache {
			c, err := coyote.OpenResultCache(*cacheDir, 0)
			if err != nil {
				fatal(err)
			}
			c.SetVerify(*cacheVer)
			var st coyote.CacheStatus
			res, st, err = coyote.RunKernelCached(*kernel, params, cfg, c)
			if err != nil {
				fatal(err)
			}
			key, err := coyote.KeyForPoint(*kernel, params, cfg)
			if err != nil {
				fatal(err)
			}
			// Every cached result was host-verified when it was first
			// simulated; RunKernelCached verifies again on every miss.
			verify = true
			cacheLine = fmt.Sprintf("cache             %s (key %s)\n", st, key.Short())
		} else {
			sys, err = coyote.PrepareKernel(*kernel, params, cfg)
			if err != nil {
				fatal(err)
			}
			verify = true
		}
	default:
		fmt.Fprintln(os.Stderr, "need -kernel, -run or -list; see -help")
		os.Exit(2)
	}

	var tw *trace.Writer
	if sys != nil {
		if *tracePfx != "" {
			tw = trace.NewWriter(cfg.Cores)
			sys.Tracer = tw
		}
		var err error
		res, err = sys.Run()
		if err != nil {
			fatal(err)
		}
		if verify {
			if err := coyote.VerifyKernel(sys, *kernel, params); err != nil {
				fatal(fmt.Errorf("verification FAILED: %w", err))
			}
		}
	}

	// Buffer stdout and check the flush: when the report is redirected to
	// a file, a write failure must surface as a non-zero exit, not a
	// silently truncated report.
	out := bufio.NewWriter(os.Stdout)
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
	} else {
		fmt.Fprint(out, res.Report())
		fmt.Fprint(out, cacheLine)
		if verify {
			fmt.Fprintln(out, "verification     OK")
		}
		for i, c := range res.Consoles {
			if c != "" {
				fmt.Fprintf(out, "console[%d]: %s", i, c)
			}
		}
	}
	if *uncoreDump {
		fmt.Fprint(out, res.UncoreReport())
	}

	if tw != nil {
		if err := writeTrace(tw, *tracePfx); err != nil {
			fatal(err)
		}
		fmt.Fprintf(out, "trace: %s.prv (%d events)\n", *tracePfx, tw.Len())
	}
	if err := out.Flush(); err != nil {
		fatal(fmt.Errorf("writing report: %w", err))
	}
}

// writeTrace writes the three Paraver files, propagating write AND close
// errors: the writers buffer internally, so a full disk can surface only
// at Close, and silently dropping that would leave a truncated trace
// behind a zero exit status.
func writeTrace(tw *trace.Writer, prefix string) error {
	for _, part := range []struct {
		ext   string
		write func(io.Writer) error
	}{
		{".prv", tw.WritePRV},
		{".pcf", tw.WritePCF},
		{".row", tw.WriteROW},
	} {
		f, err := os.Create(prefix + part.ext)
		if err != nil {
			return err
		}
		if err := part.write(f); err != nil {
			f.Close()
			return fmt.Errorf("writing %s%s: %w", prefix, part.ext, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("closing %s%s: %w", prefix, part.ext, err)
		}
	}
	return nil
}

// runCheckpoint simulates a kernel up to stopCycle, serializes the
// stopped machine to path and reports the simulated prefix. With -trace
// the Paraver prefix is embedded in the checkpoint file (a later
// -restore -trace continues it); no partial .prv is written here.
func runCheckpoint(kernel string, p kernels.Params, cfg coyote.Config, stopCycle uint64, path, tracePfx string) {
	cfg.CheckpointAt = stopCycle // recorded in the image; the result-cache key ignores it
	var tw *trace.Writer
	if tracePfx != "" {
		tw = trace.NewWriter(cfg.Cores)
	}
	res, stopped, err := coyote.RunToCheckpoint(kernel, p, cfg, stopCycle, path, tw)
	if err != nil {
		fatal(err)
	}
	if !stopped {
		fatal(fmt.Errorf("%s finished at cycle %d, before -checkpoint-at %d; no checkpoint written",
			kernel, res.Cycles, stopCycle))
	}
	out := bufio.NewWriter(os.Stdout)
	fmt.Fprint(out, res.Report())
	fmt.Fprintf(out, "checkpoint        %s (stopped at cycle %d)\n", path, stopCycle)
	if err := out.Flush(); err != nil {
		fatal(fmt.Errorf("writing report: %w", err))
	}
}

// runRestore loads a checkpoint, resumes it to completion, re-verifies
// the kernel's results against the host reference and reports the
// whole run's statistics — identical to the uninterrupted run's.
func runRestore(path, tracePfx string, jsonOut, uncoreDump bool) {
	img, err := coyote.LoadCheckpoint(path)
	if err != nil {
		fatal(err)
	}
	var tw *trace.Writer
	if tracePfx != "" {
		tw = trace.NewWriter(img.Meta.Config.Cores)
	}
	sys, err := img.Restore(tw)
	if err != nil {
		fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		fatal(err)
	}
	if img.Meta.Kernel != "" {
		if err := coyote.VerifyKernel(sys, img.Meta.Kernel, img.Meta.Params); err != nil {
			fatal(fmt.Errorf("verification FAILED: %w", err))
		}
	}
	out := bufio.NewWriter(os.Stdout)
	if jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
	} else {
		fmt.Fprint(out, res.Report())
		fmt.Fprintf(out, "restored          %s (%s N=%d cores=%d)\n",
			path, img.Meta.Kernel, img.Meta.Params.N, img.Meta.Config.Cores)
		if img.Meta.Kernel != "" {
			fmt.Fprintln(out, "verification     OK")
		}
	}
	if uncoreDump {
		fmt.Fprint(out, res.UncoreReport())
	}
	if tw != nil {
		if err := writeTrace(tw, tracePfx); err != nil {
			fatal(err)
		}
		fmt.Fprintf(out, "trace: %s.prv (%d events)\n", tracePfx, tw.Len())
	}
	if err := out.Flush(); err != nil {
		fatal(fmt.Errorf("writing report: %w", err))
	}
}

// runSample drives SMARTS-style sampled simulation and reports the
// extrapolated cycles with their confidence interval; -json emits the
// full SampleResult (the BENCH_sample.json producer).
func runSample(kernel string, p kernels.Params, cfg coyote.Config, sc coyote.SampleConfig, jsonOut bool) {
	sr, err := coyote.SampleKernel(kernel, p, cfg, sc)
	if err != nil {
		fatal(err)
	}
	out := bufio.NewWriter(os.Stdout)
	if jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sr); err != nil {
			fatal(err)
		}
	} else {
		fmt.Fprint(out, sr.Report())
		fmt.Fprintln(out, "verification      OK")
	}
	if err := out.Flush(); err != nil {
		fatal(fmt.Errorf("writing report: %w", err))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "coyote:", err)
	os.Exit(1)
}
