package main

import (
	"bytes"
	"encoding/json"
	"os/exec"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"github.com/coyote-sim/coyote/internal/lint"
)

// TestFindingJSONSchema pins the -json line format. CI annotators and
// editor integrations key on these exact field names; renaming one is a
// breaking change to downstream tooling and must be deliberate.
func TestFindingJSONSchema(t *testing.T) {
	b, err := json.Marshal(finding{
		Analyzer:  "keytaint",
		Pos:       "internal/core/stats.go:10:2",
		Message:   "example",
		Directive: "",
	})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	want := []string{"analyzer", "directive", "message", "pos"}
	if !reflect.DeepEqual(keys, want) {
		t.Fatalf("finding JSON keys = %v, want %v", keys, want)
	}
}

// TestFlowAnalyzerEscapeHatches pins the directive column for the
// dataflow lanes: specwrite and globalmut have site-level escape
// hatches, keytaint deliberately has none — a proven execution-strategy
// flow into a cached result is a cache-poisoning bug with no local
// justification (DESIGN.md §12).
func TestFlowAnalyzerEscapeHatches(t *testing.T) {
	for name, want := range map[string]string{
		"keytaint":  "",
		"specwrite": "specwrite-ok",
		"globalmut": "globalmut-ok",
	} {
		if got := lint.EscapeHatch(name); got != want {
			t.Errorf("EscapeHatch(%q) = %q, want %q", name, got, want)
		}
	}
}

// TestSuiteIncludesFlowAnalyzers proves the default suite — what CI's
// bare `coyotelint ./...` invocation runs — contains the three dataflow
// lanes, and that the -run flag resolves them by name.
func TestSuiteIncludesFlowAnalyzers(t *testing.T) {
	inSuite := map[string]bool{}
	for _, a := range lint.Analyzers() {
		inSuite[a.Name] = true
	}
	for _, name := range []string{"keytaint", "specwrite", "globalmut"} {
		if !inSuite[name] {
			t.Errorf("default suite is missing analyzer %q", name)
		}
	}

	sel, err := lint.AnalyzersByName("keytaint,specwrite,globalmut")
	if err != nil {
		t.Fatalf("AnalyzersByName: %v", err)
	}
	if len(sel) != 3 {
		t.Fatalf("AnalyzersByName returned %d analyzers, want 3", len(sel))
	}
	if _, err := lint.AnalyzersByName("keytaint,nosuch"); err == nil {
		t.Error("AnalyzersByName accepted an unknown analyzer name")
	}
}

// TestUnknownAnalyzerExitCode runs the real binary: a mistyped -run name
// must exit 2 — the usage/config-error code, distinct from exit 1
// (findings) — and list the valid analyzer names on stderr so the caller
// can fix the invocation instead of silently running an empty suite.
func TestUnknownAnalyzerExitCode(t *testing.T) {
	// Build and exec the real binary: `go run` collapses every non-zero
	// child exit to its own exit 1, which would hide the code under test.
	bin := filepath.Join(t.TempDir(), "coyotelint")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	cmd := exec.Command(bin, "-run", "nosuchlane", "./...")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("want an exit error, got %v (stderr: %s)", err, stderr.String())
	}
	if code := ee.ExitCode(); code != 2 {
		t.Fatalf("exit code = %d, want 2 (stderr: %s)", code, stderr.String())
	}
	for _, want := range []string{`unknown analyzer "nosuchlane"`, "valid:", "keytaint"} {
		if !strings.Contains(stderr.String(), want) {
			t.Errorf("stderr missing %q:\n%s", want, stderr.String())
		}
	}
}
