package main

import (
	"encoding/json"
	"reflect"
	"sort"
	"testing"

	"github.com/coyote-sim/coyote/internal/lint"
)

// TestFindingJSONSchema pins the -json line format. CI annotators and
// editor integrations key on these exact field names; renaming one is a
// breaking change to downstream tooling and must be deliberate.
func TestFindingJSONSchema(t *testing.T) {
	b, err := json.Marshal(finding{
		Analyzer:  "keytaint",
		Pos:       "internal/core/stats.go:10:2",
		Message:   "example",
		Directive: "",
	})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	want := []string{"analyzer", "directive", "message", "pos"}
	if !reflect.DeepEqual(keys, want) {
		t.Fatalf("finding JSON keys = %v, want %v", keys, want)
	}
}

// TestFlowAnalyzerEscapeHatches pins the directive column for the
// dataflow lanes: specwrite and globalmut have site-level escape
// hatches, keytaint deliberately has none — a proven execution-strategy
// flow into a cached result is a cache-poisoning bug with no local
// justification (DESIGN.md §12).
func TestFlowAnalyzerEscapeHatches(t *testing.T) {
	for name, want := range map[string]string{
		"keytaint":  "",
		"specwrite": "specwrite-ok",
		"globalmut": "globalmut-ok",
	} {
		if got := lint.EscapeHatch(name); got != want {
			t.Errorf("EscapeHatch(%q) = %q, want %q", name, got, want)
		}
	}
}

// TestSuiteIncludesFlowAnalyzers proves the default suite — what CI's
// bare `coyotelint ./...` invocation runs — contains the three dataflow
// lanes, and that the -run flag resolves them by name.
func TestSuiteIncludesFlowAnalyzers(t *testing.T) {
	inSuite := map[string]bool{}
	for _, a := range lint.Analyzers() {
		inSuite[a.Name] = true
	}
	for _, name := range []string{"keytaint", "specwrite", "globalmut"} {
		if !inSuite[name] {
			t.Errorf("default suite is missing analyzer %q", name)
		}
	}

	sel, err := lint.AnalyzersByName("keytaint,specwrite,globalmut")
	if err != nil {
		t.Fatalf("AnalyzersByName: %v", err)
	}
	if len(sel) != 3 {
		t.Fatalf("AnalyzersByName returned %d analyzers, want 3", len(sel))
	}
	if _, err := lint.AnalyzersByName("keytaint,nosuch"); err == nil {
		t.Error("AnalyzersByName accepted an unknown analyzer name")
	}
}
