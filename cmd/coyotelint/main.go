// Command coyotelint runs Coyote's determinism and hot-path invariant
// suite (internal/lint) over the module. Usage:
//
//	go run ./cmd/coyotelint ./...
//	go run ./cmd/coyotelint -json ./... | jq .
//	go run ./cmd/coyotelint -run keytaint,specwrite,globalmut ./...
//
// It exits 0 when the tree is clean, 1 when any analyzer reports a
// finding, and 2 when the packages cannot be loaded. -json emits one
// finding per line with the analyzer, position, message and the
// //coyote: directive that would suppress it. CI runs it as a
// required step; see the "Determinism invariants" section of DESIGN.md
// for the directives (//coyote:allocfree, //coyote:mapiter-ok, …) the
// analyzers understand.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/coyote-sim/coyote/internal/lint"
)

func main() {
	list := flag.Bool("analyzers", false, "list the analyzers in the suite and exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON, one object per line")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: the full suite)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: coyotelint [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the Coyote determinism & hot-path invariant suite.\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	analyzers, err := lint.AnalyzersByName(*run)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coyotelint:", err)
		os.Exit(2)
	}

	prog, err := lint.Load(".", patterns, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coyotelint:", err)
		os.Exit(2)
	}
	res := lint.RunSelected(prog, analyzers)
	if *jsonOut {
		// One JSON object per line, stable field order, so findings pipe
		// cleanly into jq / CI annotators. "directive" names the escape
		// hatch that would suppress the finding ("" when there is none).
		enc := json.NewEncoder(os.Stdout)
		for _, d := range res.Diagnostics {
			f := finding{
				Analyzer:  d.Analyzer,
				Pos:       prog.Fset.Position(d.Pos).String(),
				Message:   d.Message,
				Directive: lint.EscapeHatch(d.Analyzer),
			}
			if err := enc.Encode(f); err != nil {
				fmt.Fprintln(os.Stderr, "coyotelint:", err)
				os.Exit(2)
			}
		}
	} else {
		for _, d := range res.Diagnostics {
			fmt.Println(res.Format(d))
		}
	}
	if len(res.Diagnostics) > 0 {
		fmt.Fprintf(os.Stderr, "coyotelint: %d finding(s)\n", len(res.Diagnostics))
		os.Exit(1)
	}
}

// finding is the -json line format.
type finding struct {
	Analyzer  string `json:"analyzer"`
	Pos       string `json:"pos"`
	Message   string `json:"message"`
	Directive string `json:"directive"`
}
