// Command fig3 regenerates Figure 3 of the paper: aggregate simulation
// throughput (MIPS) as a function of the simulated core count, for the
// scalar matmul and scalar SpMV kernels. It also exposes the interleaving
// ablation discussed alongside the figure (-interleave) and the
// fast-forward optimisation ablation (-fastforward), and can emit a
// gnuplot-ready data file.
//
// Workloads weak-scale with the core count like the paper's: matmul grows
// the matrix with the cores (rows per core constant), SpMV grows the row
// count with a constant number of nonzeros per row.
//
//	fig3                        # default sweep 1..128 cores, both kernels
//	fig3 -cores 1,2,4,8         # custom core counts
//	fig3 -interleave 8          # Spike-style interleaving enabled
//	fig3 -repeat 3              # best-of-3 wall-clock per point
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	coyote "github.com/coyote-sim/coyote"
)

type point struct {
	kernel string
	cores  int
	n      int
	mips   float64
	cycles uint64
	instrs uint64
}

func main() {
	var (
		coresFlag   = flag.String("cores", "1,2,4,8,16,32,64,128", "comma-separated core counts")
		kernFlag    = flag.String("kernels", "matmul-scalar,spmv-scalar", "kernels to sweep")
		rowsPerCore = flag.Int("rows-per-core", 1, "matmul rows per simulated core (weak scaling)")
		minN        = flag.Int("min-n", 48, "minimum matmul size")
		spmvRows    = flag.Int("spmv-rows-per-core", 256, "SpMV rows per simulated core")
		nnzPerRow   = flag.Int("nnz-per-row", 24, "SpMV nonzeros per row")
		interleave  = flag.Int("interleave", 1, "interleaving quantum (1 = Coyote default)")
		fastForward = flag.Bool("fastforward", false, "enable the idle-cycle fast-forward optimisation")
		repeat      = flag.Int("repeat", 1, "runs per point; best MIPS reported")
		dataOut     = flag.String("o", "", "also write a gnuplot-style data file")
	)
	flag.Parse()

	var cores []int
	for _, f := range strings.Split(*coresFlag, ",") {
		c, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || c <= 0 {
			fatal(fmt.Errorf("bad core count %q", f))
		}
		cores = append(cores, c)
	}

	fmt.Printf("# Figure 3: simulation throughput vs simulated cores (interleave=%d fastforward=%v)\n",
		*interleave, *fastForward)
	fmt.Printf("%-20s %6s %8s %12s %12s %10s\n",
		"kernel", "cores", "n", "instructions", "cycles", "MIPS")
	var fileLines []string
	fileLines = append(fileLines, "# kernel cores mips")

	for _, kname := range strings.Split(*kernFlag, ",") {
		kname = strings.TrimSpace(kname)
		for _, c := range cores {
			p := point{kernel: kname, cores: c}
			params := coyote.Params{Cores: c}
			switch {
			case strings.HasPrefix(kname, "spmv"):
				p.n = *spmvRows * c
				params.N = p.n
				params.Density = float64(*nnzPerRow) / float64(p.n)
			default:
				p.n = c * *rowsPerCore
				if p.n < *minN {
					p.n = *minN
				}
				params.N = p.n
			}
			cfg := coyote.DefaultConfig(c)
			cfg.InterleaveQuantum = *interleave
			cfg.FastForward = *fastForward
			for r := 0; r < *repeat; r++ {
				res, err := coyote.RunKernel(kname, params, cfg)
				if err != nil {
					fatal(fmt.Errorf("%s @ %d cores: %w", kname, c, err))
				}
				if m := res.MIPS(); m > p.mips {
					p.mips = m
				}
				p.cycles = res.Cycles
				p.instrs = res.Instructions
			}
			fmt.Printf("%-20s %6d %8d %12d %12d %10.3f\n",
				p.kernel, p.cores, p.n, p.instrs, p.cycles, p.mips)
			fileLines = append(fileLines,
				fmt.Sprintf("%s %d %.4f", p.kernel, p.cores, p.mips))
		}
	}

	if *dataOut != "" {
		if err := os.WriteFile(*dataOut, []byte(strings.Join(fileLines, "\n")+"\n"), 0o644); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fig3:", err)
	os.Exit(1)
}
