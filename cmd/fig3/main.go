// Command fig3 regenerates Figure 3 of the paper: aggregate simulation
// throughput (MIPS) as a function of the simulated core count, for the
// scalar matmul and scalar SpMV kernels. It also exposes the interleaving
// ablation discussed alongside the figure (-interleave) and the
// fast-forward optimisation ablation (-fastforward), and can emit a
// gnuplot-ready data file.
//
// Workloads weak-scale with the core count like the paper's: matmul grows
// the matrix with the cores (rows per core constant), SpMV grows the row
// count with a constant number of nonzeros per row.
//
// Every run also writes a machine-readable summary (-json, default
// BENCH_fig3.json); pointing -baseline at a previous summary records
// per-point speedups, which is how before/after numbers for simulator
// optimisations are tracked. -cpuprofile/-memprofile capture pprof
// profiles of the sweep for hot-path work.
//
// Wall-clock per point is a median: each point gets one untimed warmup
// run followed by -repeat timed runs, and the median MIPS is reported —
// best-of-N rewarded lucky scheduling, medians don't.
//
// fig3 bypasses the content-addressed result cache BY CONSTRUCTION — it
// has no -cache flag and every point calls RunKernel directly. The
// figure measures the simulator's own throughput (MIPS = instructions /
// wall-clock); a cache hit costs ~zero wall-clock, so a cached fig3
// would measure the cache, not the simulator. Keep it that way.
//
//	fig3                        # default sweep 1..128 cores, both kernels
//	fig3 -cores 1,2,4,8         # custom core counts
//	fig3 -workers 1,4           # sweep the in-cycle worker pool too
//	fig3 -interleave 1,8        # sweep Spike-style interleaving quanta
//	fig3 -engine reference      # per-instruction engine (no superblocks)
//	fig3 -repeat 7              # median-of-7 wall-clock per point
//	fig3 -baseline old.json     # record speedup vs a previous run
//	fig3 -cpuprofile cpu.pb.gz  # profile the simulator itself
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"

	coyote "github.com/coyote-sim/coyote"
)

type point struct {
	Kernel       string  `json:"kernel"`
	Cores        int     `json:"cores"`
	Workers      int     `json:"workers"`
	Interleave   int     `json:"interleave"`
	N            int     `json:"n"`
	Instructions uint64  `json:"instructions"`
	Cycles       uint64  `json:"cycles"`
	MIPS         float64 `json:"mips"`
	BaselineMIPS float64 `json:"baseline_mips,omitempty"`
	Speedup      float64 `json:"speedup,omitempty"`
	// HostSerialized marks a workers>1 point measured on a host that
	// cannot actually run the workers in parallel (single CPU or
	// GOMAXPROCS=1): its MIPS reflects scheduling overhead, not speedup,
	// and must not be compared against parallel-host baselines.
	HostSerialized bool `json:"host_serialized,omitempty"`
}

type summary struct {
	// Interleave holds the first swept quantum for compatibility with
	// readers of pre-sweep summaries; Interleaves is the full sweep.
	Interleave  int    `json:"interleave"`
	Interleaves []int  `json:"interleaves,omitempty"`
	Engine      string `json:"engine,omitempty"`
	FastForward bool   `json:"fastforward"`
	Repeat      int    `json:"repeat"`
	Warmup      int    `json:"warmup"`
	Stat        string `json:"stat"`
	// HostNumCPU/HostGOMAXPROCS record the measurement machine: MIPS is
	// wall-clock-derived, so throughput points are only comparable across
	// summaries taken on comparable hosts (see HostSerialized per point).
	HostNumCPU     int     `json:"host_num_cpu"`
	HostGOMAXPROCS int     `json:"host_gomaxprocs"`
	Points         []point `json:"points"`
}

// pointKey identifies a point in the baseline map. Summaries written
// before the workers dimension existed unmarshal with Workers == 0; those
// points ran the sequential orchestrator, so they normalise to workers=1
// and old baselines keep working against new workers=1 runs. The
// interleave dimension is likewise normalised: points written before it
// existed carry the summary-level quantum, threaded in by the loader.
func pointKey(kernel string, cores, workers, interleave int) string {
	if workers <= 0 {
		workers = 1
	}
	if interleave <= 0 {
		interleave = 1
	}
	return fmt.Sprintf("%s/%d/w%d/q%d", kernel, cores, workers, interleave)
}

// medianMIPS reports the median of the timed samples (mean of the middle
// two for even counts).
func medianMIPS(samples []float64) float64 {
	sort.Float64s(samples)
	n := len(samples)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return samples[n/2]
	}
	return (samples[n/2-1] + samples[n/2]) / 2
}

func main() {
	var (
		coresFlag   = flag.String("cores", "1,2,4,8,16,32,64,128", "comma-separated core counts")
		workersFlag = flag.String("workers", "1", "comma-separated in-cycle worker pool sizes")
		kernFlag    = flag.String("kernels", "matmul-scalar,spmv-scalar", "kernels to sweep")
		rowsPerCore = flag.Int("rows-per-core", 1, "matmul rows per simulated core (weak scaling)")
		minN        = flag.Int("min-n", 48, "minimum matmul size")
		spmvRows    = flag.Int("spmv-rows-per-core", 256, "SpMV rows per simulated core")
		nnzPerRow   = flag.Int("nnz-per-row", 24, "SpMV nonzeros per row")
		interleave  = flag.String("interleave", "1", "comma-separated interleaving quanta (1 = Coyote default)")
		engine      = flag.String("engine", "block", "execution engine: block (superblock cache) or reference (per-instruction)")
		fastForward = flag.Bool("fastforward", false, "enable the idle-cycle fast-forward optimisation")
		repeat      = flag.Int("repeat", 5, "timed runs per point; median MIPS reported")
		dataOut     = flag.String("o", "", "also write a gnuplot-style data file")
		jsonOut     = flag.String("json", "BENCH_fig3.json", "machine-readable summary file (empty to skip)")
		baseline    = flag.String("baseline", "", "previous -json summary to compute speedups against")
		cpuProfile  = flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep")
		memProfile  = flag.String("memprofile", "", "write a pprof heap profile after the sweep")
	)
	flag.Parse()

	var cores []int
	for _, f := range strings.Split(*coresFlag, ",") {
		c, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || c <= 0 {
			fatal(fmt.Errorf("bad core count %q", f))
		}
		cores = append(cores, c)
	}
	var workerCounts []int
	for _, f := range strings.Split(*workersFlag, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || w <= 0 {
			fatal(fmt.Errorf("bad worker count %q", f))
		}
		workerCounts = append(workerCounts, w)
	}
	var quanta []int
	for _, f := range strings.Split(*interleave, ",") {
		q, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || q <= 0 {
			fatal(fmt.Errorf("bad interleave quantum %q", f))
		}
		quanta = append(quanta, q)
	}
	if *engine != "block" && *engine != "reference" {
		fatal(fmt.Errorf("bad -engine %q (want block or reference)", *engine))
	}
	if *repeat < 1 {
		fatal(fmt.Errorf("-repeat must be at least 1"))
	}

	// Baseline MIPS keyed kernel/cores/workers, from a previous run's
	// -json file.
	base := map[string]float64{}
	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			fatal(err)
		}
		var prev summary
		if err := json.Unmarshal(data, &prev); err != nil {
			fatal(fmt.Errorf("baseline %s: %w", *baseline, err))
		}
		for _, p := range prev.Points {
			q := p.Interleave
			if q <= 0 {
				// Pre-sweep summary: every point ran at the summary-level
				// quantum (itself 0 in the oldest files, meaning 1).
				q = prev.Interleave
			}
			base[pointKey(p.Kernel, p.Cores, p.Workers, q)] = p.MIPS
		}
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fatal(err)
		}
		// Stop flushes the profile into f; a failed Close means a
		// truncated profile, which must not exit 0.
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fatal(fmt.Errorf("writing CPU profile %s: %w", *cpuProfile, err))
			}
		}()
	}

	hostCPUs, hostProcs := runtime.NumCPU(), runtime.GOMAXPROCS(0)
	fmt.Printf("# Figure 3: simulation throughput vs simulated cores (interleave=%s engine=%s fastforward=%v repeat=%d+1 warmup)\n",
		*interleave, *engine, *fastForward, *repeat)
	fmt.Printf("# host: %d CPUs, GOMAXPROCS=%d\n", hostCPUs, hostProcs)
	fmt.Printf("%-20s %6s %8s %6s %8s %12s %12s %10s\n",
		"kernel", "cores", "workers", "ilv", "n", "instructions", "cycles", "MIPS")
	var fileLines []string
	fileLines = append(fileLines, "# kernel cores workers interleave mips")
	sum := summary{
		Interleave:  quanta[0],
		Interleaves: quanta,
		Engine:      *engine,
		FastForward: *fastForward,
		Repeat:      *repeat,
		Warmup:      1,
		Stat:        "median",

		HostNumCPU:     hostCPUs,
		HostGOMAXPROCS: hostProcs,
	}

	for _, kname := range strings.Split(*kernFlag, ",") {
		kname = strings.TrimSpace(kname)
		for _, q := range quanta {
			for _, c := range cores {
				for _, w := range workerCounts {
					p := point{Kernel: kname, Cores: c, Workers: w, Interleave: q}
					params := coyote.Params{Cores: c}
					switch {
					case strings.HasPrefix(kname, "spmv"):
						p.N = *spmvRows * c
						params.N = p.N
						params.Density = float64(*nnzPerRow) / float64(p.N)
					default:
						p.N = c * *rowsPerCore
						if p.N < *minN {
							p.N = *minN
						}
						params.N = p.N
					}
					cfg := coyote.DefaultConfig(c)
					cfg.InterleaveQuantum = q
					cfg.FastForward = *fastForward
					cfg.Workers = w
					cfg.Hart.DisableBlockCache = *engine == "reference"
					// One warmup run (page faults, branch predictors, heap
					// growth) that never contributes a sample, then -repeat
					// timed runs.
					samples := make([]float64, 0, *repeat)
					for r := 0; r < *repeat+1; r++ {
						res, err := coyote.RunKernel(kname, params, cfg)
						if err != nil {
							fatal(fmt.Errorf("%s @ %d cores, %d workers, interleave %d: %w", kname, c, w, q, err))
						}
						if r > 0 {
							samples = append(samples, res.MIPS())
						}
						p.Cycles = res.Cycles
						p.Instructions = res.Instructions
					}
					p.MIPS = medianMIPS(samples)
					p.HostSerialized = w > 1 && (hostCPUs == 1 || hostProcs == 1)
					line := fmt.Sprintf("%-20s %6d %8d %6d %8d %12d %12d %10.3f",
						p.Kernel, p.Cores, p.Workers, p.Interleave, p.N, p.Instructions, p.Cycles, p.MIPS)
					if p.HostSerialized {
						line += "  [host-serialized]"
					}
					if b, ok := base[pointKey(p.Kernel, p.Cores, p.Workers, p.Interleave)]; ok && b > 0 {
						p.BaselineMIPS = b
						p.Speedup = p.MIPS / b
						line += fmt.Sprintf("  (%.2fx vs baseline %.3f)", p.Speedup, b)
					}
					fmt.Println(line)
					fileLines = append(fileLines,
						fmt.Sprintf("%s %d %d %d %.4f", p.Kernel, p.Cores, p.Workers, p.Interleave, p.MIPS))
					sum.Points = append(sum.Points, p)
				}
			}
		}
	}

	if *dataOut != "" {
		if err := os.WriteFile(*dataOut, []byte(strings.Join(fileLines, "\n")+"\n"), 0o644); err != nil {
			fatal(err)
		}
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(fmt.Errorf("writing heap profile %s: %w", *memProfile, err))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fig3:", err)
	os.Exit(1)
}
