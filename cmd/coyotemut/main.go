// Command coyotemut measures — and enforces — the kill power of Coyote's
// oracle stack by mutation testing (see internal/mut). It enumerates a
// typed catalog of plausible source faults over the simulator packages,
// discards uncompilable candidates at a typecheck gate, adjudicates the
// rest through the ordered oracle cascade (build → vet → lint → tests →
// golden → san), and reports the kill matrix.
//
// Exit status: 0 when every surviving mutant carries a
// //coyote:mut-survivor triage, 1 when any unannotated survivor remains,
// 2 on usage or infrastructure errors.
//
// Usage:
//
//	coyotemut [flags] [./internal/... ...]
//
// The -budget/-seed pair selects a reproducible sample of the enumerated
// pool; two runs with the same flags over the same tree produce
// byte-identical JSON reports. Verdicts are memoized under -cache-dir in
// a content-addressed store keyed by mutant content and the full
// oracle-set fingerprint, so a re-run over an unchanged tree re-executes
// zero mutants.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/coyote-sim/coyote/internal/mut"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		budget   = flag.Int("budget", 0, "max mutants to adjudicate (0 = all); sampled deterministically by -seed")
		seed     = flag.Int64("seed", 1, "sampling seed for -budget")
		cacheDir = flag.String("cache-dir", "", "verdict cache directory (default <module>/.coyotemut/cache)")
		noCache  = flag.Bool("no-cache", false, "disable the verdict cache")
		jsonOut  = flag.String("json", "", "also write the JSON report to this file (- for stdout instead of the table)")
		list     = flag.Bool("list", false, "list the sampled mutants without adjudicating")
		verbose  = flag.Bool("v", false, "log per-mutant cascade progress to stderr")
		timeout  = flag.Duration("timeout", 120*time.Second, "per-stage go test timeout")
		dir      = flag.String("C", ".", "module root to run in")
	)
	flag.Parse()

	eng, err := mut.NewEngine(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coyotemut: %v\n", err)
		return 2
	}
	pool, err := eng.Enumerate(flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "coyotemut: %v\n", err)
		return 2
	}
	if len(pool) == 0 {
		fmt.Fprintf(os.Stderr, "coyotemut: no mutation sites match %v\n", flag.Args())
		return 2
	}
	sample := mut.Sample(pool, *budget, *seed)

	if *list {
		for _, m := range sample {
			fmt.Printf("%s\t%s\n", m.ID, m.Variant)
		}
		fmt.Fprintf(os.Stderr, "coyotemut: %d of %d enumerated mutants selected\n", len(sample), len(pool))
		return 0
	}

	var cache *mut.VerdictCache
	if !*noCache {
		cdir := *cacheDir
		if cdir == "" {
			cdir = filepath.Join(eng.Dir, ".coyotemut", "cache")
		}
		cache, err = mut.OpenVerdictCache(cdir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "coyotemut: %v\n", err)
			return 2
		}
	}

	orc := mut.NewOracles(eng)
	orc.TestTimeout = *timeout

	opts := mut.RunOptions{Cache: cache}
	if *verbose {
		opts.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	opts.Progress = func(i, n int, o *mut.Outcome) {
		status := string(o.Status)
		if o.Status == mut.StatusKilled {
			status = "killed by " + o.Oracle
		}
		if o.Cached {
			status += " (cached)"
		}
		fmt.Fprintf(os.Stderr, "[%d/%d] %s: %s\n", i, n, o.Mutant.ID, status)
	}

	outs, err := eng.Run(sample, orc, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coyotemut: %v\n", err)
		return 2
	}

	report := mut.BuildReport(outs, len(pool), *budget, *seed)
	if *jsonOut != "" {
		data, err := report.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "coyotemut: %v\n", err)
			return 2
		}
		if *jsonOut == "-" {
			os.Stdout.Write(data)
			return report.ExitStatus()
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "coyotemut: %v\n", err)
			return 2
		}
	}
	report.WriteTable(os.Stdout)
	return report.ExitStatus()
}
