// Command explore runs a design-space-exploration grid: one kernel (or
// several) against the cross product of memory-system variants, reporting
// simulated time and the data-movement metrics the paper cares about.
// This is the "compare disparate design points within reasonable time"
// workflow of paper §III/§IV as a tool.
//
//	explore -kernels spmv-vector-gather -cores 16 -n 2048
//	explore -kernels matmul-vector,spmv-vector-ell -grid l2,mapping,noc
//	explore -csv out.csv ...
//	explore -cache -cache-dir /tmp/dse ...   # warm re-runs are ~free
//
// With -cache, every grid point is routed through the content-addressed
// result cache: points already simulated — in this run, a previous run,
// or another process sharing the cache directory — are served without
// simulating, duplicates in flight are coalesced, and the CSV gains a
// `cache` audit column (hit|miss|coalesced).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	coyote "github.com/coyote-sim/coyote"
	"github.com/coyote-sim/coyote/internal/uncore"
)

// variant is one point of the configuration grid.
type variant struct {
	name string
	mut  func(*coyote.Config)
}

// axes defines the sweepable dimensions. Each axis contributes its
// variants multiplicatively when selected via -grid.
var axes = map[string][]variant{
	"l2": {
		{"l2=shared", func(c *coyote.Config) { c.Uncore.L2Shared = true }},
		{"l2=private", func(c *coyote.Config) { c.Uncore.L2Shared = false }},
	},
	"mapping": {
		{"map=set-il", func(c *coyote.Config) { c.Uncore.Mapping = uncore.SetInterleave }},
		{"map=page", func(c *coyote.Config) { c.Uncore.Mapping = uncore.PageToBank }},
	},
	"noc": {
		{"noc=2", func(c *coyote.Config) { c.Uncore.NoCLatency = 2 }},
		{"noc=8", func(c *coyote.Config) { c.Uncore.NoCLatency = 8 }},
		{"noc=32", func(c *coyote.Config) { c.Uncore.NoCLatency = 32 }},
	},
	"llc": {
		{"llc=off", func(c *coyote.Config) { c.Uncore.LLCEnable = false }},
		{"llc=on", func(c *coyote.Config) { c.Uncore.LLCEnable = true }},
	},
	"prefetch": {
		{"pf=0", func(c *coyote.Config) { c.Uncore.PrefetchDepth = 0 }},
		{"pf=4", func(c *coyote.Config) { c.Uncore.PrefetchDepth = 4 }},
	},
	"row": {
		{"row=flat", func(c *coyote.Config) { c.Uncore.MemRowBits = 0 }},
		{"row=open", func(c *coyote.Config) {
			c.Uncore.MemRowBits = 13
			c.Uncore.MemRowHitLat = 40
		}},
	},
	"mcpu": {
		{"mcpu=off", func(c *coyote.Config) { c.Hart.MCPUOffload = false }},
		{"mcpu=on", func(c *coyote.Config) { c.Hart.MCPUOffload = true }},
	},
}

func main() {
	var (
		kernFlag = flag.String("kernels", "spmv-vector-gather", "comma-separated kernels")
		gridFlag = flag.String("grid", "l2,mapping", "axes to sweep: l2,mapping,noc,llc,prefetch,row,mcpu")
		cores    = flag.Int("cores", 16, "simulated cores")
		workers  = flag.Int("workers", 1, "host worker goroutines stepping harts each cycle (grid results identical for any count)")
		n        = flag.Int("n", 1024, "problem size")
		density  = flag.Float64("density", 0.02, "SpMV density")
		csvPath  = flag.String("csv", "", "also write results as CSV")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile of the grid run")
		memProf  = flag.String("memprofile", "", "write a pprof heap profile after the grid run")

		cacheOn  = flag.Bool("cache", false, "serve repeated points from the content-addressed result cache")
		cacheDir = flag.String("cache-dir", "", "result cache directory (default: ~/.cache/coyote)")
		cacheVer = flag.Float64("cache-verify", 0, "fraction of cache hits to recompute and cross-check; 1 recomputes every hit and panics on divergence")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fatal(err)
		}
		// Stop flushes the profile into f; a failed Close means a
		// truncated profile, which must not exit 0.
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fatal(fmt.Errorf("writing CPU profile %s: %w", *cpuProf, err))
			}
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fatal(err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(fmt.Errorf("writing heap profile %s: %w", *memProf, err))
			}
		}()
	}

	var grid []string
	for _, a := range strings.Split(*gridFlag, ",") {
		a = strings.TrimSpace(a)
		if _, ok := axes[a]; !ok {
			fatal(fmt.Errorf("unknown axis %q (have l2, mapping, noc, llc, prefetch, row, mcpu)", a))
		}
		grid = append(grid, a)
	}

	// Build the cross product of the selected axes.
	points := []variant{{name: "", mut: func(*coyote.Config) {}}}
	for _, axis := range grid {
		var next []variant
		for _, p := range points {
			for _, v := range axes[axis] {
				p, v := p, v
				name := v.name
				if p.name != "" {
					name = p.name + " " + v.name
				}
				next = append(next, variant{
					name: name,
					mut: func(c *coyote.Config) {
						p.mut(c)
						v.mut(c)
					},
				})
			}
		}
		points = next
	}

	// Build the full job list up front so the sweep engine can coalesce
	// duplicates and the cache can serve repeats, then run it in input
	// order — results come back in the same order the grid is printed.
	var jobs []coyote.Point
	for _, kname := range strings.Split(*kernFlag, ",") {
		kname = strings.TrimSpace(kname)
		for _, p := range points {
			cfg := coyote.DefaultConfig(*cores)
			cfg.Workers = *workers
			p.mut(&cfg)
			jobs = append(jobs, coyote.Point{
				Name:   p.name,
				Kernel: kname,
				Params: coyote.Params{N: *n, Density: *density},
				Config: cfg,
			})
		}
	}

	var cache *coyote.ResultCache
	if *cacheOn {
		var err error
		if cache, err = coyote.OpenResultCache(*cacheDir, 0); err != nil {
			fatal(err)
		}
		cache.SetVerify(*cacheVer)
	}

	fmt.Printf("DSE grid: %d cores, n=%d, %d points per kernel\n\n",
		*cores, *n, len(points))
	header := fmt.Sprintf("%-22s %-28s %12s %9s %9s %12s %9s",
		"kernel", "variant", "simcycles", "L1D miss", "L2 miss", "DRAM bytes", "cache")
	fmt.Println(header)
	var csv []string
	csv = append(csv, "kernel,variant,simcycles,l1d_miss_rate,l2_miss_rate,dram_bytes,cache")

	results := coyote.SweepCached(jobs, 1, cache)
	for i, r := range results {
		if r.Err != nil {
			fatal(fmt.Errorf("%s [%s]: %w", r.Kernel, r.Name, r.Err))
		}
		res, cfg := r.Result, r.Config
		status := r.Cache
		if status == "" {
			status = "-"
		}
		l2 := res.L2Stats()
		dram := res.MemTrafficBytes(cfg.Uncore.L2.LineBytes)
		fmt.Printf("%-22s %-28s %12d %8.2f%% %8.2f%% %12d %9s\n",
			r.Kernel, r.Name, res.Cycles,
			100*res.L1D.MissRate(), 100*l2.MissRate(), dram, status)
		csv = append(csv, fmt.Sprintf("%s,%s,%d,%.4f,%.4f,%d,%s",
			r.Kernel, r.Name, res.Cycles, res.L1D.MissRate(), l2.MissRate(), dram, status))
		if i+1 < len(results) && results[i+1].Kernel != r.Kernel {
			fmt.Println()
		}
	}
	fmt.Println()
	if cache != nil {
		fmt.Println("cache:", cache.Stats().Summary())
	}

	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(strings.Join(csv, "\n")+"\n"), 0o644); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "explore:", err)
	os.Exit(1)
}
