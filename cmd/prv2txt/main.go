// Command prv2txt decodes a Paraver trace produced by the simulator into
// readable text, one event per line, optionally filtered by hart.
//
//	prv2txt out.prv
//	prv2txt -hart 3 out.prv
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/coyote-sim/coyote/internal/trace"
)

func main() {
	hart := flag.Int("hart", -1, "only show events from this hart")
	summary := flag.Bool("summary", false, "print per-hart event counts only")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: prv2txt [flags] file.prv")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	nHarts, events, err := trace.ParsePRV(f)
	if err != nil {
		fatal(err)
	}

	if *summary {
		counts := make(map[int]map[int]int) // hart → type → count
		for _, e := range events {
			if counts[e.Hart] == nil {
				counts[e.Hart] = map[int]int{}
			}
			counts[e.Hart][e.Type]++
		}
		fmt.Printf("%d harts, %d events\n", nHarts, len(events))
		for h := 0; h < nHarts; h++ {
			fmt.Printf("hart %d:", h)
			for _, typ := range []int{trace.EventL1DMiss, trace.EventL1IMiss,
				trace.EventStall, trace.EventWakeup} {
				fmt.Printf(" %s=%d", trace.TypeName(typ), counts[h][typ])
			}
			fmt.Println()
		}
		return
	}

	for _, e := range events {
		if *hart >= 0 && e.Hart != *hart {
			continue
		}
		switch e.Type {
		case trace.EventL1DMiss, trace.EventL1IMiss:
			fmt.Printf("%12d hart%-3d %-9s line %#x\n", e.Cycle, e.Hart,
				trace.TypeName(e.Type), e.Value)
		default:
			fmt.Printf("%12d hart%-3d %s\n", e.Cycle, e.Hart, trace.TypeName(e.Type))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prv2txt:", err)
	os.Exit(1)
}
