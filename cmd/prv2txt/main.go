// Command prv2txt decodes a Paraver trace produced by the simulator into
// readable text, one event per line, optionally filtered by hart.
//
//	prv2txt out.prv
//	prv2txt -hart 3 out.prv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"github.com/coyote-sim/coyote/internal/trace"
)

func main() {
	hart := flag.Int("hart", -1, "only show events from this hart")
	summary := flag.Bool("summary", false, "print per-hart event counts only")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: prv2txt [flags] file.prv")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	nHarts, events, err := trace.ParsePRV(f)
	if err != nil {
		fatal(err)
	}

	// Buffer the decoded text and check the flush: a failed write to a
	// redirected output file must exit non-zero, not pretend the decode
	// succeeded.
	out := bufio.NewWriter(os.Stdout)
	if *summary {
		counts := make(map[int]map[int]int) // hart → type → count
		for _, e := range events {
			if counts[e.Hart] == nil {
				counts[e.Hart] = map[int]int{}
			}
			counts[e.Hart][e.Type]++
		}
		fmt.Fprintf(out, "%d harts, %d events\n", nHarts, len(events))
		for h := 0; h < nHarts; h++ {
			fmt.Fprintf(out, "hart %d:", h)
			for _, typ := range []int{trace.EventL1DMiss, trace.EventL1IMiss,
				trace.EventStall, trace.EventWakeup} {
				fmt.Fprintf(out, " %s=%d", trace.TypeName(typ), counts[h][typ])
			}
			fmt.Fprintln(out)
		}
		flushOrDie(out)
		return
	}

	for _, e := range events {
		if *hart >= 0 && e.Hart != *hart {
			continue
		}
		switch e.Type {
		case trace.EventL1DMiss, trace.EventL1IMiss:
			fmt.Fprintf(out, "%12d hart%-3d %-9s line %#x\n", e.Cycle, e.Hart,
				trace.TypeName(e.Type), e.Value)
		default:
			fmt.Fprintf(out, "%12d hart%-3d %s\n", e.Cycle, e.Hart, trace.TypeName(e.Type))
		}
	}
	flushOrDie(out)
}

func flushOrDie(out *bufio.Writer) {
	if err := out.Flush(); err != nil {
		fatal(fmt.Errorf("writing output: %w", err))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prv2txt:", err)
	os.Exit(1)
}
