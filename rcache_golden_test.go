package coyote

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"github.com/coyote-sim/coyote/internal/cache"
	"github.com/coyote-sim/coyote/internal/cpu"
	"github.com/coyote-sim/coyote/internal/kernels"
	"github.com/coyote-sim/coyote/internal/uncore"
)

// goldenKeyPoints are the named design points pinned in
// testdata/rcache/keys.golden. They cover every kernel family and the
// interesting config dimensions, so almost any semantics-affecting
// change to the canonical encoding, the kernels, or the config surface
// perturbs at least one of them.
func goldenKeyPoints() []Point {
	mk := func(name, kernel string, p Params, mut func(*Config)) Point {
		cfg := DefaultConfig(p.Cores)
		if mut != nil {
			mut(&cfg)
		}
		return Point{Name: name, Kernel: kernel, Params: p, Config: cfg}
	}
	return []Point{
		mk("matmul-scalar-8", "matmul-scalar", Params{N: 48, Cores: 8}, nil),
		mk("matmul-vector-8-mcpu", "matmul-vector", Params{N: 48, Cores: 8},
			func(c *Config) { c.Hart.MCPUOffload = true }),
		mk("spmv-gather-16-llc", "spmv-vector-gather", Params{N: 512, Cores: 16, Density: 0.02},
			func(c *Config) { c.Uncore.LLCEnable = true }),
		mk("spmv-ell-4-rowbuf", "spmv-vector-ell", Params{N: 256, Cores: 4},
			func(c *Config) { c.Uncore.MemRowBits = 13; c.Uncore.MemRowHitLat = 40 }),
		mk("stencil-4-pagemap", "stencil-vector", Params{N: 64, Cores: 4},
			func(c *Config) { c.Uncore.Mapping = uncore.PageToBank }),
		mk("axpy-1-default", "axpy-scalar", Params{N: 1024, Cores: 1}, nil),
		mk("spmv-scalar-2-private", "spmv-scalar", Params{N: 128, Cores: 2, Seed: 7},
			func(c *Config) { c.Uncore.L2Shared = false }),
	}
}

const keysGoldenPath = "testdata/rcache/keys.golden"

// TestCacheKeyGolden pins the canonical cache keys of the named points.
// If this test fails, a change altered what existing cache keys mean —
// which is only legal together with a SchemaVersion bump (DESIGN.md
// §11). Bump rcache.SchemaVersion, then regenerate this file with:
//
//	COYOTE_UPDATE_GOLDEN=1 go test -run TestCacheKeyGolden .
func TestCacheKeyGolden(t *testing.T) {
	var lines []string
	for _, pt := range goldenKeyPoints() {
		key, err := KeyForPoint(pt.Kernel, pt.Params, pt.Config)
		if err != nil {
			t.Fatalf("%s: %v", pt.Name, err)
		}
		lines = append(lines, fmt.Sprintf("%-24s %s", pt.Name, key))
	}
	got := strings.Join(lines, "\n") + "\n"

	if os.Getenv("COYOTE_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(keysGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(keysGoldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", keysGoldenPath)
		return
	}

	want, err := os.ReadFile(keysGoldenPath)
	if err != nil {
		t.Fatalf("%v — regenerate with COYOTE_UPDATE_GOLDEN=1 go test -run TestCacheKeyGolden .", err)
	}
	if got != string(want) {
		t.Fatalf("canonical cache keys changed.\n\nIf this is intentional it is a cache-schema change: "+
			"bump rcache.SchemaVersion and regenerate with COYOTE_UPDATE_GOLDEN=1.\n\ngot:\n%s\nwant:\n%s",
			got, want)
	}
}

// fieldNames returns the exported field names of a struct type, sorted.
func fieldNames(v any) []string {
	typ := reflect.TypeOf(v)
	var names []string
	for i := 0; i < typ.NumField(); i++ {
		if f := typ.Field(i); f.IsExported() {
			names = append(names, f.Name)
		}
	}
	sort.Strings(names)
	return names
}

// TestCacheKeyFieldGuard fails whenever a field is added, removed or
// renamed on any struct that feeds the canonical key — the compile-time
// reminder that the rcache encoder enumerates fields explicitly and a
// new field is, by default, a semantics change:
//
//  1. decide whether the new field affects simulated results;
//  2. add it to rcache.CanonicalBytes (semantics-affecting) or to the
//     documented exclusion list (execution-strategy, which requires a
//     determinism proof in the golden matrix);
//  3. bump rcache.SchemaVersion and regenerate keys.golden;
//  4. update the expected list here.
func TestCacheKeyFieldGuard(t *testing.T) {
	checks := []struct {
		name string
		v    any
		want []string
	}{
		{"core.Config", Config{}, []string{
			"CheckpointAt", "Cores", "CoresPerTile", "FastForward", "Hart",
			"InterleaveQuantum", "MaxCycles", "StackSize", "StackTop", "Uncore",
			"Workers",
		}},
		{"cpu.Config", cpu.Config{}, []string{
			"BlockMaxLen", "DisableBlockCache", "L1D", "L1I", "MCPUOffload",
			"VLenBits", "VectorLanes",
		}},
		{"uncore.Config", uncore.Config{}, []string{
			"BanksPerTile", "L2", "L2HitLatency", "L2MSHRs", "L2MissLatency",
			"L2Shared", "LLC", "LLCEnable", "LLCHitLatency", "LocalLatency",
			"Mapping", "MemBanks", "MemBytesPerCyc", "MemCtrls", "MemLatency",
			"MemRowBits", "MemRowHitLat", "NoCLatency", "PrefetchDepth", "Tiles",
		}},
		{"cache.Config", cache.Config{}, []string{
			"LineBytes", "SizeBytes", "Ways", "WriteBack",
		}},
		{"kernels.Params", kernels.Params{}, []string{
			"Cores", "Density", "N", "Seed",
		}},
	}
	for _, c := range checks {
		got := fieldNames(c.v)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s field set changed:\n got  %v\n want %v\n"+
				"New/renamed fields feed (or must be explicitly excluded from) the result-cache key: "+
				"update rcache.CanonicalBytes, bump rcache.SchemaVersion, regenerate testdata/rcache/keys.golden, "+
				"then update this list (see DESIGN.md §11).",
				c.name, got, c.want)
		}
	}
}
