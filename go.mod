module github.com/coyote-sim/coyote

go 1.22
