package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func small() *Cache {
	return MustNew(Config{SizeBytes: 1024, Ways: 2, LineBytes: 64, WriteBack: true})
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{},
		{SizeBytes: 1024, Ways: 2, LineBytes: 60},    // non-pow2 line
		{SizeBytes: 1000, Ways: 2, LineBytes: 64},    // size not divisible
		{SizeBytes: 3 * 128, Ways: 1, LineBytes: 64}, // non-pow2 sets
		{SizeBytes: -1, Ways: 1, LineBytes: 64},      // negative
		{SizeBytes: 1024, Ways: 0, LineBytes: 64},    // zero ways
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", c)
		}
	}
	good := Config{SizeBytes: 16384, Ways: 4, LineBytes: 64}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate(%+v) = %v", good, err)
	}
	if got := good.Sets(); got != 64 {
		t.Errorf("Sets() = %d, want 64", got)
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := small()
	if res := c.Access(0x1000, false); res.Hit {
		t.Error("cold access should miss")
	}
	if res := c.Access(0x1000, false); !res.Hit {
		t.Error("second access should hit")
	}
	if res := c.Access(0x103f, false); !res.Hit {
		t.Error("same line should hit")
	}
	if res := c.Access(0x1040, false); res.Hit {
		t.Error("next line should miss")
	}
	if c.Stats.Hits != 2 || c.Stats.Misses != 2 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2-way cache: three conflicting lines evict the least recently used.
	c := small()
	sets := uint64(c.Config().Sets())
	stride := sets * 64 // same set, different tags
	a, b, d := uint64(0), stride, 2*stride
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // touch a: b is now LRU
	c.Access(d, false) // evicts b
	if !c.Probe(a) {
		t.Error("a should still be resident")
	}
	if c.Probe(b) {
		t.Error("b should have been evicted")
	}
	if !c.Probe(d) {
		t.Error("d should be resident")
	}
}

func TestDirtyEvictionWriteback(t *testing.T) {
	c := small()
	sets := uint64(c.Config().Sets())
	stride := sets * 64
	c.Access(0, true) // dirty
	c.Access(stride, false)
	res := c.Access(2*stride, false) // evicts line 0 (dirty)
	if !res.HasWriteback || res.Writeback != 0 {
		t.Errorf("expected writeback of line 0, got %+v", res)
	}
	if c.Stats.Writebacks != 1 {
		t.Errorf("writebacks = %d", c.Stats.Writebacks)
	}
}

func TestNoWritebackWhenWriteThroughDisabled(t *testing.T) {
	c := MustNew(Config{SizeBytes: 1024, Ways: 2, LineBytes: 64, WriteBack: false})
	sets := uint64(c.Config().Sets())
	stride := sets * 64
	c.Access(0, true)
	c.Access(stride, false)
	res := c.Access(2*stride, false)
	if res.HasWriteback {
		t.Error("write-through cache should not emit writebacks")
	}
}

func TestFillDoesNotPerturbStats(t *testing.T) {
	c := small()
	c.Fill(0x2000)
	if c.Stats.Hits != 0 || c.Stats.Misses != 0 {
		t.Errorf("fill changed stats: %+v", c.Stats)
	}
	if !c.Probe(0x2000) {
		t.Error("fill should insert the line")
	}
}

func TestInvalidate(t *testing.T) {
	c := small()
	c.Access(0x3000, false)
	if !c.Invalidate(0x3000) {
		t.Error("invalidate should find the line")
	}
	if c.Probe(0x3000) {
		t.Error("line should be gone")
	}
	if c.Invalidate(0x3000) {
		t.Error("second invalidate should report absence")
	}
}

func TestFlushReturnsDirtyLines(t *testing.T) {
	c := small()
	c.Access(0x0, true)
	c.Access(0x1000, false)
	wbs := c.Flush()
	if len(wbs) != 1 || wbs[0] != 0 {
		t.Errorf("Flush() = %v, want [0]", wbs)
	}
	if c.Occupancy() != 0 {
		t.Error("flush should empty the cache")
	}
}

// Property: occupancy never exceeds capacity and a just-accessed line is
// always resident.
func TestOccupancyBound(t *testing.T) {
	c := small()
	capacity := c.Config().Sets() * c.Config().Ways
	f := func(addrs []uint32) bool {
		for _, a := range addrs {
			addr := uint64(a)
			c.Access(addr, a%3 == 0)
			if !c.Probe(addr) {
				return false
			}
		}
		return c.Occupancy() <= capacity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: hits+misses equals the access count.
func TestStatsConservation(t *testing.T) {
	c := small()
	rng := rand.New(rand.NewSource(7))
	const n = 10000
	for i := 0; i < n; i++ {
		c.Access(uint64(rng.Intn(1<<16))&^63, rng.Intn(2) == 0)
	}
	if c.Stats.Hits+c.Stats.Misses != n {
		t.Errorf("hits %d + misses %d != %d", c.Stats.Hits, c.Stats.Misses, n)
	}
	if mr := c.Stats.MissRate(); mr < 0 || mr > 1 {
		t.Errorf("miss rate %f out of range", mr)
	}
}

func TestMissRateIdle(t *testing.T) {
	if (Stats{}).MissRate() != 0 {
		t.Error("idle miss rate should be 0")
	}
}

func TestLineAddr(t *testing.T) {
	c := small()
	if got := c.LineAddr(0x12345); got != 0x12340 {
		t.Errorf("LineAddr = %#x", got)
	}
	if c.LineBytes() != 64 {
		t.Errorf("LineBytes = %d", c.LineBytes())
	}
}

// Directly-mapped degenerate case: repeated conflicting accesses all miss.
func TestDirectMappedConflicts(t *testing.T) {
	c := MustNew(Config{SizeBytes: 512, Ways: 1, LineBytes: 64})
	stride := uint64(512)
	for i := 0; i < 10; i++ {
		if res := c.Access(uint64(i%2)*stride, false); res.Hit {
			t.Fatalf("access %d unexpectedly hit", i)
		}
	}
}

// The MRU memo must not survive a speculative rollback: a restored line can
// match the memo on tag while no longer being its set's most recently used
// way, and a fast-path hit that skips the LRU refresh would then change a
// later eviction decision versus the reference full path.
func TestRollbackSpecClearsMRUMemo(t *testing.T) {
	// One set, two ways: every line conflicts.
	c := MustNew(Config{SizeBytes: 128, Ways: 2, LineBytes: 64})
	a, b, d := uint64(0), uint64(128), uint64(256)

	c.Access(a, false) // install a
	c.Access(b, false) // install b; memo -> b
	c.Access(a, false) // a is now the set's most recent; memo -> a

	c.BeginSpec()
	c.Access(b, false) // speculative touch; memo -> b
	c.RollbackSpec()   // restores a as most recent; memo must drop b

	c.Access(b, false) // must refresh b's LRU stamp via the full path
	c.Access(d, false) // conflict miss: the true LRU victim is a, not b
	if !c.Probe(b) {
		t.Error("b was evicted: stale MRU memo skipped its LRU refresh after rollback")
	}
	if c.Probe(a) {
		t.Error("a survived eviction: victim selection diverged from reference LRU")
	}
}

// TestDirtyEvictionWritebackAddress dirties a line whose address is NOT
// zero and pins the writeback's victim address. TestDirtyEvictionWriteback
// above uses line 0, for which `Writeback != 0` cannot distinguish a
// correct address from a lost one.
func TestDirtyEvictionWritebackAddress(t *testing.T) {
	c := small()
	sets := uint64(c.Config().Sets())
	stride := sets * 64
	c.Access(stride, true) // dirty the victim-to-be at a nonzero address
	c.Access(2*stride, false)
	res := c.Access(3*stride, false) // evicts the dirty line
	if !res.HasWriteback {
		t.Fatalf("expected a writeback, got %+v", res)
	}
	if res.Writeback != stride {
		t.Errorf("writeback address = %#x, want %#x", res.Writeback, stride)
	}
}

// TestCommitSpecStopsJournaling proves CommitSpec actually ends the
// episode: an access made after the commit must not be journaled, so a
// later rollback cannot undo it. If commit left the journal armed, the
// post-commit access would record its set's pre-access (empty) contents
// and the rollback would evict the line.
func TestCommitSpecStopsJournaling(t *testing.T) {
	c := small()
	c.BeginSpec()
	c.Access(0x2000, true) // speculative install in set 0, journaled
	c.CommitSpec()

	c.Access(0x1040, false) // post-commit install in set 1
	c.RollbackSpec()
	if !c.Probe(0x1040) {
		t.Error("rollback undid a post-commit access: its set was still being journaled")
	}
}
