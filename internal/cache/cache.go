// Package cache implements a tag-only set-associative cache model with LRU
// replacement and write-back/write-allocate semantics. It models *timing*
// only: data always lives in the shared functional memory (internal/mem),
// exactly as in Coyote where Spike executes functionally and the caches
// merely classify accesses as hits or misses.
//
// The same model backs the per-core L1 instruction and data caches (stepped
// synchronously by the CPU, as Spike does in Coyote) and the L2 banks inside
// the event-driven uncore.
package cache

import (
	"fmt"

	"github.com/coyote-sim/coyote/internal/san"
)

// Config describes a cache's geometry and behaviour.
type Config struct {
	SizeBytes int  // total capacity
	Ways      int  // associativity
	LineBytes int  // line size (power of two)
	WriteBack bool // dirty-line writebacks generate traffic on eviction
}

// Validate checks the geometry for internal consistency.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d not a power of two", c.LineBytes)
	}
	if c.SizeBytes%(c.Ways*c.LineBytes) != 0 {
		return fmt.Errorf("cache: size %d not divisible by ways*line (%d*%d)",
			c.SizeBytes, c.Ways, c.LineBytes)
	}
	sets := c.SizeBytes / (c.Ways * c.LineBytes)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int { return c.SizeBytes / (c.Ways * c.LineBytes) }

// Stats counts cache events.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
}

// MissRate returns misses / (hits+misses), or 0 when idle.
func (s Stats) MissRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Misses) / float64(total)
}

// line packs tag, valid and dirty into one word so an 8-way set scan
// touches two host cache lines instead of three: tv = tag<<2|dirty<<1|valid.
// Tags are line addresses already shifted right by lineShift (≥6 for any
// real geometry), so the two flag bits never collide with tag bits. The
// zero value is an invalid line.
type line struct {
	tv  uint64
	lru uint64 // timestamp of last touch; smaller = older
}

const (
	lineValid = 1 << 0
	lineDirty = 1 << 1
)

func (l *line) valid() bool { return l.tv&lineValid != 0 }
func (l *line) dirty() bool { return l.tv&lineDirty != 0 }
func (l *line) tag() uint64 { return l.tv >> 2 }
func (l *line) matches(tag uint64) bool {
	// valid and tag equal in one compare-friendly form: the dirty bit is
	// masked out, the valid bit must be set.
	return l.tv&^uint64(lineDirty) == tag<<2|lineValid
}

//coyote:specwrite-ok only called from Access, which journals the line's set via specSave before any mutation on a speculative path
func (l *line) setDirty() { l.tv |= lineDirty }

// Cache is a tag-only set-associative cache. Not safe for concurrent use.
type Cache struct {
	cfg       Config
	sets      []line // flat: set i occupies sets[i*Ways : (i+1)*Ways]
	setMask   uint64
	lineMask  uint64
	lineShift uint
	clock     uint64
	Stats     Stats

	// mru[i] points at the most recently touched line of set i. A repeat
	// access to that line — the dominant pattern of scalar streams —
	// answers from it without the set scan or an LRU write. Skipping the
	// LRU update is sound: the memoed line holds its set's maximum stamp
	// (every other touch of the set goes through the slow path, which
	// refreshes the memo), so leaving the stamp alone cannot change any
	// relative order within the set — and victim selection only ever
	// compares within a set. Invalidate and Flush are caught by the
	// valid&&tag recheck on use; RollbackSpec must clear the memo for the
	// sets it restores, because a restored line can match on tag while no
	// longer being its set's most recent.
	mru []*line

	// warm is WarmAccess's direct-mapped residency filter, allocated on
	// first use so timed-only runs never pay for it. Each slot holds
	// tag<<1|1 (0 = empty), so a read hit is one load and one compare with
	// no pointer into the tag store. The invariant "a live slot's tag is
	// resident" is maintained by clearing the matching slot wherever a
	// line can change identity — eviction, Invalidate — and by dropping
	// the whole filter on Flush, RollbackSpec and Restore. Timed mode
	// (Access/Probe/Fill) never reads it.
	warm []uint64

	// spec journals touched sets during a speculative episode so a
	// misspeculated hart's cache state can be rolled back bit-exactly.
	spec cacheSpec

	// san mirrors the tag store's residency in a shadow directory under
	// -tags coyotesan; every lookup's verdict is cross-checked against it.
	// The stamp in its reports is the cache's access ordinal (clock), not a
	// simulated cycle: the tag model has no engine reference.
	san san.Dir
}

// New builds a cache from cfg; cfg must be valid.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := cfg.Sets()
	c := &Cache{
		cfg:      cfg,
		sets:     make([]line, nsets*cfg.Ways),
		mru:      make([]*line, nsets),
		setMask:  uint64(nsets - 1),
		lineMask: uint64(cfg.LineBytes - 1),
	}
	for ls := cfg.LineBytes; ls > 1; ls >>= 1 {
		c.lineShift++
	}
	c.san.Init("cache")
	return c, nil
}

// set returns the ways of set idx as a slice of the flat tag store.
func (c *Cache) set(idx uint64) []line {
	off := int(idx) * c.cfg.Ways
	return c.sets[off : off+c.cfg.Ways]
}

// SetSanName labels this cache's sanitizer reports (e.g. "l2bank3.tags")
// so a violation names the owning unit. No-op in the default build.
func (c *Cache) SetSanName(name string) { c.san.Init(name) }

// MustNew is New but panics on error, for statically-valid configs.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// LineAddr masks addr down to its line base address.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr &^ c.lineMask
}

// LineBytes returns the line size.
func (c *Cache) LineBytes() int { return c.cfg.LineBytes }

// AccessResult describes the outcome of a cache access.
type AccessResult struct {
	Hit bool
	// Writeback is non-zero when a dirty victim line was evicted; it holds
	// the victim's line base address, which must be written back downstream.
	Writeback uint64
	// HasWriteback disambiguates a writeback of line address zero.
	HasWriteback bool
}

// Access performs a read (write=false) or write (write=true) of the line
// containing addr, updating LRU state and allocating on miss
// (write-allocate). It returns whether the access hit and any writeback
// generated by the eviction of a dirty line.
func (c *Cache) Access(addr uint64, write bool) AccessResult {
	tag := addr >> c.lineShift
	idx := tag & c.setMask
	if m := c.mru[idx]; !san.Enabled && m != nil && m.matches(tag) {
		// Repeat access to the set's most recently touched line; see the
		// mru field comment for why skipping the LRU write is sound. The
		// coyotesan build always takes the full path so every lookup is
		// cross-checked against the shadow directory.
		if c.spec.active {
			c.specSave(idx)
		}
		c.Stats.Hits++
		if write {
			m.setDirty()
		}
		return AccessResult{Hit: true}
	}
	if c.spec.active {
		c.specSave(idx)
	}
	c.clock++
	set := c.set(idx)
	// One pass finds a hit and tracks the would-be victim — invalid-first,
	// else earliest minimum LRU, exactly the choice two separate scans
	// would make — so a miss never rescans the set.
	victim := 0
	haveInvalid := false
	for i := range set {
		l := &set[i]
		if l.matches(tag) {
			c.san.Lookup(c.clock, tag, true)
			c.Stats.Hits++
			l.lru = c.clock
			if write {
				l.setDirty()
			}
			c.mru[idx] = l
			return AccessResult{Hit: true}
		}
		if !haveInvalid {
			if !l.valid() {
				victim = i
				haveInvalid = true
			} else if set[victim].valid() && l.lru < set[victim].lru {
				victim = i
			}
		}
	}
	c.san.Lookup(c.clock, tag, false) //coyote:mut-survivor equivalent: purely observational sanitizer probe; deleting it changes no simulated state, it can only blunt shadow-directory audits
	c.Stats.Misses++
	var res AccessResult
	v := &set[victim]
	if v.valid() {
		c.warmDrop(v.tag())
		c.san.Evict(c.clock, v.tag())
		c.Stats.Evictions++
		if v.dirty() && c.cfg.WriteBack {
			c.Stats.Writebacks++
			res.Writeback = v.tag() << c.lineShift
			res.HasWriteback = true
		}
	}
	c.san.Install(c.clock, tag)
	tv := tag<<2 | lineValid
	if write {
		tv |= lineDirty
	}
	*v = line{tv: tv, lru: c.clock}
	c.mru[idx] = v
	return res
}

// warmSlots sizes the WarmAccess line filter: direct-mapped on the line
// tag, big enough to hold a typical L1's working set of streams.
const warmSlots = 512

// warmDrop clears the filter slot that could reference tag, preserving
// the filter invariant when that tag's line is about to change identity
// (eviction or invalidation). A colliding slot holding a different tag
// is left alone.
func (c *Cache) warmDrop(tag uint64) {
	if c.warm != nil {
		if s := &c.warm[tag&(warmSlots-1)]; *s == tag<<1|1 {
			*s = 0
		}
	}
}

// WarmAccess is Access for functional cache warming. Misses and writes
// have the exact effects of Access — allocate, evict, write back, mark
// dirty — but repeat read hits are answered through the direct-mapped
// residency filter without an LRU write, so interleaved streams (which
// defeat the single-entry mru memo) stay on a fast path. Unlike the mru
// memo this DOES let the relative LRU order inside a set drift from true
// LRU: a filter hit leaves the line's stamp stale while other ways
// advance. Warming is approximate by contract (a detailed warm-up window
// re-establishes near-term state before any measurement), so the drift
// trades a strictly bounded amount of replacement fidelity for the fast
// path. Timed simulation must never call this.
func (c *Cache) WarmAccess(addr uint64, write bool) AccessResult {
	tag := addr >> c.lineShift
	if c.warm == nil {
		c.warm = make([]uint64, warmSlots) //coyote:alloc-ok one-time filter allocation on the first warming access; reused until a flush/rollback/restore drops it
	}
	if !write && !san.Enabled && c.warm[tag&(warmSlots-1)] == tag<<1|1 {
		c.Stats.Hits++
		return AccessResult{Hit: true}
	}
	// Writes take the full path so the dirty bit and LRU state are exact;
	// the mru memo inside Access keeps repeat-line write streams cheap.
	res := c.Access(addr, write)
	// Access always leaves addr's line resident, so the slot is live.
	c.warm[tag&(warmSlots-1)] = tag<<1 | 1
	return res
}

// Probe reports whether the line containing addr is present without
// touching LRU or statistics.
func (c *Cache) Probe(addr uint64) bool {
	tag := addr >> c.lineShift
	set := c.set(tag & c.setMask)
	for i := range set {
		if set[i].matches(tag) {
			c.san.Lookup(c.clock, tag, true)
			return true
		}
	}
	c.san.Lookup(c.clock, tag, false)
	return false
}

// Fill inserts the line containing addr as clean, evicting as needed.
// Used by the L2 model when a memory response arrives. Returns any
// writeback like Access.
func (c *Cache) Fill(addr uint64) AccessResult {
	res := c.Access(addr, false)
	// Access counts this as a miss+allocate or a hit; both are fine for
	// fill semantics, but a fill must not perturb hit/miss statistics.
	if res.Hit {
		c.Stats.Hits--
	} else {
		c.Stats.Misses--
	}
	return res
}

// Invalidate drops the line containing addr if present (no writeback).
func (c *Cache) Invalidate(addr uint64) bool {
	tag := addr >> c.lineShift
	if c.spec.active {
		c.specSave(tag & c.setMask)
	}
	set := c.set(tag & c.setMask)
	for i := range set {
		if set[i].matches(tag) {
			c.warmDrop(tag)
			c.san.Drop(c.clock, tag, true)
			set[i] = line{}
			return true
		}
	}
	c.san.Drop(c.clock, tag, false)
	return false
}

// Flush invalidates everything, returning the line addresses of dirty
// lines (the writebacks a real cache would perform).
func (c *Cache) Flush() []uint64 {
	var wbs []uint64
	for i := range c.sets {
		l := &c.sets[i]
		if l.valid() && l.dirty() && c.cfg.WriteBack {
			wbs = append(wbs, l.tag()<<c.lineShift)
		}
		*l = line{}
	}
	c.warm = nil
	c.san.Reset()
	return wbs
}

// ResetStats zeroes the counters without touching cache contents —
// used to discard warm-up effects before a measurement window.
func (c *Cache) ResetStats() { c.Stats = Stats{} }

// Occupancy returns the number of valid lines.
func (c *Cache) Occupancy() int {
	n := 0
	for i := range c.sets {
		if c.sets[i].valid() {
			n++
		}
	}
	c.san.Count(c.clock, n)
	return n
}
