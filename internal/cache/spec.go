package cache

import "github.com/coyote-sim/coyote/internal/san"

// Speculative journaling: during the parallel orchestrator's speculative
// execution phase a hart's L1s run under a journal, so that a hart whose
// speculation is invalidated (it read a value a lower-index hart
// overwrote in the same cycle) can be rolled back to its pre-speculation
// state bit-exactly — tags, LRU stamps, access clock and statistics —
// before it re-executes serially. Only the sets an access touched are
// saved, and the save buffers are pooled, so the steady-state journal
// allocates nothing.

// specSaved is a pre-speculation copy of one cache set.
type specSaved struct {
	idx  uint64
	ways []line
}

type cacheSpec struct {
	active bool
	saved  []specSaved // pooled: len tracks live entries, cap is reused
	stats  Stats
	clock  uint64
}

// BeginSpec starts a speculative episode: subsequent Access/Invalidate
// calls journal each touched set before mutating it.
//
//coyote:allocfree
func (c *Cache) BeginSpec() {
	c.spec.active = true
	c.spec.saved = c.spec.saved[:0]
	c.spec.stats = c.Stats
	c.spec.clock = c.clock
}

// CommitSpec keeps the speculative state and drops the journal.
//
//coyote:allocfree
func (c *Cache) CommitSpec() {
	c.spec.active = false
}

// RollbackSpec restores every journaled set, the access clock and the
// statistics to their BeginSpec values. Under the coyotesan build the
// shadow directory is resynchronized: speculatively installed tags are
// evicted from it and speculatively evicted tags are re-installed, so the
// serial re-execution starts from a consistent shadow.
func (c *Cache) RollbackSpec() {
	for i := range c.spec.saved {
		sv := &c.spec.saved[i]
		set := c.set(sv.idx)
		if san.Enabled {
			c.resyncShadow(set, sv.ways)
		}
		copy(set, sv.ways)
		// A restored line can match the memo on tag while no longer being
		// its set's most recent touch; drop the memo so the next access
		// re-establishes the invariant through the slow path.
		c.mru[sv.idx] = nil
	}
	c.Stats = c.spec.stats
	c.clock = c.spec.clock
	// Restored lines can hold different tags than the filter recorded;
	// speculation and warming never overlap, so dropping the whole filter
	// costs nothing.
	c.warm = nil
	c.spec.active = false
	c.spec.saved = c.spec.saved[:0]
}

// resyncShadow replays the difference between the speculative and saved
// contents of one set into the san shadow directory. Only called in the
// coyotesan build.
func (c *Cache) resyncShadow(cur, saved []line) {
	for i := range cur {
		if !cur[i].valid() {
			continue
		}
		kept := false
		for j := range saved {
			if saved[j].matches(cur[i].tag()) {
				kept = true
				break
			}
		}
		if !kept {
			c.san.Evict(c.clock, cur[i].tag())
		}
	}
	for j := range saved {
		if !saved[j].valid() {
			continue
		}
		present := false
		for i := range cur {
			if cur[i].matches(saved[j].tag()) {
				present = true
				break
			}
		}
		if !present {
			c.san.Install(c.clock, saved[j].tag())
		}
	}
}

// specSave journals the set at idx if this episode has not saved it yet.
//
//coyote:allocfree
func (c *Cache) specSave(idx uint64) {
	for i := range c.spec.saved {
		if c.spec.saved[i].idx == idx {
			return
		}
	}
	n := len(c.spec.saved)
	if n < cap(c.spec.saved) {
		c.spec.saved = c.spec.saved[:n+1]
	} else {
		c.spec.saved = append(c.spec.saved, specSaved{}) //coyote:alloc-ok journal growth is bounded by the sets one quantum can touch and the buffer is reused for the rest of the run
	}
	sv := &c.spec.saved[n]
	sv.idx = idx
	set := c.set(idx)
	if cap(sv.ways) < len(set) {
		sv.ways = make([]line, len(set)) //coyote:alloc-ok one-time way-buffer fill; reused for the rest of the run
	}
	sv.ways = sv.ways[:len(set)]
	copy(sv.ways, set)
}
