package cache

import (
	"fmt"

	"github.com/coyote-sim/coyote/internal/ckpt"
)

// Checkpoint writes the tag store, LRU clock and statistics to w. The mru
// memo is not serialized: it is rebuilt lazily and always holds its set's
// maximum LRU stamp, so dropping it cannot change any victim choice (see
// the mru field comment). A checkpoint may only be taken outside a
// speculative episode; the caller (core.System) guarantees the harts are
// between instructions.
func (c *Cache) Checkpoint(w *ckpt.Writer) error {
	if c.spec.active {
		return fmt.Errorf("cache: checkpoint during an active speculative episode")
	}
	w.U64(c.clock)
	w.U64(c.Stats.Hits)
	w.U64(c.Stats.Misses)
	w.U64(c.Stats.Evictions)
	w.U64(c.Stats.Writebacks)
	w.U64(uint64(len(c.sets)))
	for i := range c.sets {
		l := &c.sets[i]
		w.U64(l.tag())
		w.Bool(l.valid())
		w.Bool(l.dirty())
		w.U64(l.lru)
	}
	return nil
}

// Restore replaces the tag store, clock and statistics from r. The shadow
// directory (coyotesan builds) is resynchronized to the restored residency.
func (c *Cache) Restore(r *ckpt.Reader) error {
	clock := r.U64()
	var st Stats
	st.Hits = r.U64()
	st.Misses = r.U64()
	st.Evictions = r.U64()
	st.Writebacks = r.U64()
	n := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if n != uint64(len(c.sets)) {
		return fmt.Errorf("cache: checkpoint has %d lines, this cache has %d (geometry mismatch)", n, len(c.sets))
	}
	c.clock = clock
	c.Stats = st
	c.san.Reset()
	for i := range c.sets {
		l := &c.sets[i]
		tag := r.U64()
		valid := r.Bool()
		dirty := r.Bool()
		l.lru = r.U64()
		l.tv = 0
		if valid {
			l.tv = tag<<2 | lineValid
			if dirty {
				l.tv |= lineDirty
			}
			c.san.Install(c.clock, tag)
		}
	}
	for i := range c.mru {
		c.mru[i] = nil
	}
	c.warm = nil
	return r.Err()
}
