package asm

import (
	"fmt"

	"github.com/coyote-sim/coyote/internal/riscv"
)

// encodePseudo expands the standard RISC-V pseudo-instructions. It returns
// handled=false for real mnemonics.
func encodePseudo(name string, ops []string, pc uint64, syms map[string]uint64) ([]uint32, bool, error) {
	fail := func(err error) ([]uint32, bool, error) { return nil, true, err }
	done := func(words []uint32, err error) ([]uint32, bool, error) { return words, true, err }
	re := func(newName string, newOps ...string) ([]uint32, bool, error) {
		w, err := encodeInstruction(newName, newOps, pc, syms)
		return w, true, err
	}

	switch name {
	case "nop":
		return re("addi", "zero", "zero", "0")
	case "mv":
		if err := needOps(name, ops, 2); err != nil {
			return fail(err)
		}
		return re("addi", ops[0], ops[1], "0")
	case "not":
		if err := needOps(name, ops, 2); err != nil {
			return fail(err)
		}
		return re("xori", ops[0], ops[1], "-1")
	case "neg":
		if err := needOps(name, ops, 2); err != nil {
			return fail(err)
		}
		return re("sub", ops[0], "zero", ops[1])
	case "negw":
		if err := needOps(name, ops, 2); err != nil {
			return fail(err)
		}
		return re("subw", ops[0], "zero", ops[1])
	case "sext.w":
		if err := needOps(name, ops, 2); err != nil {
			return fail(err)
		}
		return re("addiw", ops[0], ops[1], "0")
	case "seqz":
		if err := needOps(name, ops, 2); err != nil {
			return fail(err)
		}
		return re("sltiu", ops[0], ops[1], "1")
	case "snez":
		if err := needOps(name, ops, 2); err != nil {
			return fail(err)
		}
		return re("sltu", ops[0], "zero", ops[1])
	case "sltz":
		if err := needOps(name, ops, 2); err != nil {
			return fail(err)
		}
		return re("slt", ops[0], ops[1], "zero")
	case "sgtz":
		if err := needOps(name, ops, 2); err != nil {
			return fail(err)
		}
		return re("slt", ops[0], "zero", ops[1])

	case "beqz":
		if err := needOps(name, ops, 2); err != nil {
			return fail(err)
		}
		return re("beq", ops[0], "zero", ops[1])
	case "bnez":
		if err := needOps(name, ops, 2); err != nil {
			return fail(err)
		}
		return re("bne", ops[0], "zero", ops[1])
	case "blez":
		if err := needOps(name, ops, 2); err != nil {
			return fail(err)
		}
		return re("bge", "zero", ops[0], ops[1])
	case "bgez":
		if err := needOps(name, ops, 2); err != nil {
			return fail(err)
		}
		return re("bge", ops[0], "zero", ops[1])
	case "bltz":
		if err := needOps(name, ops, 2); err != nil {
			return fail(err)
		}
		return re("blt", ops[0], "zero", ops[1])
	case "bgtz":
		if err := needOps(name, ops, 2); err != nil {
			return fail(err)
		}
		return re("blt", "zero", ops[0], ops[1])
	case "bgt":
		if err := needOps(name, ops, 3); err != nil {
			return fail(err)
		}
		return re("blt", ops[1], ops[0], ops[2])
	case "ble":
		if err := needOps(name, ops, 3); err != nil {
			return fail(err)
		}
		return re("bge", ops[1], ops[0], ops[2])
	case "bgtu":
		if err := needOps(name, ops, 3); err != nil {
			return fail(err)
		}
		return re("bltu", ops[1], ops[0], ops[2])
	case "bleu":
		if err := needOps(name, ops, 3); err != nil {
			return fail(err)
		}
		return re("bgeu", ops[1], ops[0], ops[2])

	case "j":
		if err := needOps(name, ops, 1); err != nil {
			return fail(err)
		}
		return re("jal", "zero", ops[0])
	case "jr":
		if err := needOps(name, ops, 1); err != nil {
			return fail(err)
		}
		return re("jalr", "zero", ops[0], "0")
	case "ret":
		return re("jalr", "zero", "ra", "0")
	case "call":
		if err := needOps(name, ops, 1); err != nil {
			return fail(err)
		}
		return re("jal", "ra", ops[0])

	case "csrr":
		if err := needOps(name, ops, 2); err != nil {
			return fail(err)
		}
		return re("csrrs", ops[0], ops[1], "zero")
	case "csrw":
		if err := needOps(name, ops, 2); err != nil {
			return fail(err)
		}
		return re("csrrw", "zero", ops[0], ops[1])
	case "rdcycle":
		if err := needOps(name, ops, 1); err != nil {
			return fail(err)
		}
		return re("csrrs", ops[0], "cycle", "zero")
	case "rdinstret":
		if err := needOps(name, ops, 1); err != nil {
			return fail(err)
		}
		return re("csrrs", ops[0], "instret", "zero")

	case "fmv.s":
		if err := needOps(name, ops, 2); err != nil {
			return fail(err)
		}
		return re("fsgnj.s", ops[0], ops[1], ops[1])
	case "fmv.d":
		if err := needOps(name, ops, 2); err != nil {
			return fail(err)
		}
		return re("fsgnj.d", ops[0], ops[1], ops[1])
	case "fneg.s":
		if err := needOps(name, ops, 2); err != nil {
			return fail(err)
		}
		return re("fsgnjn.s", ops[0], ops[1], ops[1])
	case "fneg.d":
		if err := needOps(name, ops, 2); err != nil {
			return fail(err)
		}
		return re("fsgnjn.d", ops[0], ops[1], ops[1])
	case "fabs.s":
		if err := needOps(name, ops, 2); err != nil {
			return fail(err)
		}
		return re("fsgnjx.s", ops[0], ops[1], ops[1])
	case "fabs.d":
		if err := needOps(name, ops, 2); err != nil {
			return fail(err)
		}
		return re("fsgnjx.d", ops[0], ops[1], ops[1])

	case "li":
		if err := needOps(name, ops, 2); err != nil {
			return fail(err)
		}
		rd, err := xreg(ops[0])
		if err != nil {
			return fail(err)
		}
		v, err := evalExpr(ops[1], syms)
		if err != nil {
			return fail(fmt.Errorf("li: %w", err))
		}
		var words []uint32
		for _, in := range expandLI(rd, v) {
			w, err := riscv.Encode(in)
			if err != nil {
				return fail(err)
			}
			words = append(words, w)
		}
		return done(words, nil)

	case "la":
		if err := needOps(name, ops, 2); err != nil {
			return fail(err)
		}
		rd, err := xreg(ops[0])
		if err != nil {
			return fail(err)
		}
		target, err := evalExpr(ops[1], syms)
		if err != nil {
			return fail(fmt.Errorf("la: %w", err))
		}
		// auipc rd, %pcrel_hi(sym); addi rd, rd, %pcrel_lo(sym)
		delta := target - int64(pc)
		lo := delta << 52 >> 52
		hi := (delta - lo) >> 12
		if hi < -(1<<19) || hi >= 1<<19 {
			return fail(fmt.Errorf("la: target %#x out of ±2GiB range from pc %#x", target, pc))
		}
		w1, err := riscv.Encode(riscv.Instr{
			Op: riscv.OpAUIPC, Rd: rd, Imm: hi & 0xfffff, VM: true,
		})
		if err != nil {
			return fail(err)
		}
		w2, err := riscv.Encode(riscv.Instr{
			Op: riscv.OpADDI, Rd: rd, Rs1: rd, Imm: lo, VM: true,
		})
		if err != nil {
			return fail(err)
		}
		return done([]uint32{w1, w2}, nil)
	}
	return nil, false, nil
}

// instrWords reports how many 32-bit words a statement will occupy; needed
// by pass 1 for layout before labels are resolved. equs holds .equ
// constants defined so far (li immediates must be constant expressions).
func instrWords(name string, ops []string, equs map[string]uint64) (int, error) {
	switch name {
	case "li":
		if len(ops) != 2 {
			return 0, fmt.Errorf("li: want 2 operands")
		}
		rd, err := xreg(ops[0])
		if err != nil {
			return 0, err
		}
		v, err := evalExpr(ops[1], equs)
		if err != nil {
			return 0, fmt.Errorf("li: immediate must be a constant known at its point of use: %w", err)
		}
		return len(expandLI(rd, v)), nil
	case "la":
		return 2, nil
	default:
		return 1, nil
	}
}
