package asm

// Cross-checks the assembler against the disassembler: for random
// instances of (almost) every opcode, riscv.Disasm output must assemble
// back to the identical machine word. Control-flow and U-format ops are
// excluded because their textual operands are symbolic targets, not the
// raw immediates the disassembler prints.

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"github.com/coyote-sim/coyote/internal/riscv"
)

// assembleOne assembles a single statement and returns its first word.
func assembleOne(t *testing.T, src string) (uint32, error) {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		return 0, err
	}
	if len(p.Text) < 4 {
		t.Fatalf("no code for %q", src)
	}
	return binary.LittleEndian.Uint32(p.Text), nil
}

func skipRoundTrip(op riscv.Op) bool {
	cls := op.Classify()
	switch {
	case cls&riscv.ClassBranch != 0:
		return true // branch targets are labels in assembly
	case op == riscv.OpLUI, op == riscv.OpAUIPC:
		return true // Disasm prints hex imm20; assembler accepts it, but
		// AUIPC rarely appears hand-written — covered by la tests
	case op == riscv.OpFENCE, op == riscv.OpECALL, op == riscv.OpEBREAK:
		return false
	}
	return false
}

func TestDisasmAssembleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	reg := func() uint8 { return uint8(rng.Intn(32)) }
	for opInt := 1; ; opInt++ {
		op := riscv.Op(opInt)
		if op.String() == "invalid" {
			break
		}
		if skipRoundTrip(op) {
			continue
		}
		for trial := 0; trial < 8; trial++ {
			in := riscv.Instr{Op: op, VM: true}
			in.Rd, in.Rs1, in.Rs2, in.Rs3 = reg(), reg(), reg(), reg()
			cls := op.Classify()
			switch {
			case op == riscv.OpJAL:
				in.Imm = int64(rng.Intn(1024)) &^ 1
				in.Rd = 0 // Disasm prints "jal zero, off"; both forms parse
			case op == riscv.OpJALR:
				in.Imm = int64(rng.Intn(2048) - 1024)
			case op == riscv.OpSLLI || op == riscv.OpSRLI || op == riscv.OpSRAI:
				in.Imm = int64(rng.Intn(64))
			case op == riscv.OpSLLIW || op == riscv.OpSRLIW || op == riscv.OpSRAIW:
				in.Imm = int64(rng.Intn(32))
			case cls&riscv.ClassCSR != 0:
				in.Imm = riscv.CSRMHartID // named CSR survives the trip
				if op == riscv.OpCSRRWI || op == riscv.OpCSRRSI || op == riscv.OpCSRRCI {
					in.Rs1 = uint8(rng.Intn(32))
				}
			case op == riscv.OpVSETVLI:
				vt, _ := riscv.EncodeVType(riscv.VType{SEW: 64, LMUL: 2})
				in.Imm = vt
			case op == riscv.OpVSETIVLI:
				vt, _ := riscv.EncodeVType(riscv.VType{SEW: 32, LMUL: 1})
				in.Imm = vt
				in.Rs1 = uint8(rng.Intn(32))
			case op == riscv.OpVADDVI, op == riscv.OpVRSUBVI, op == riscv.OpVANDVI,
				op == riscv.OpVORVI, op == riscv.OpVXORVI, op == riscv.OpVSLLVI,
				op == riscv.OpVSRLVI, op == riscv.OpVSRAVI, op == riscv.OpVMSEQVI,
				op == riscv.OpVMVVI, op == riscv.OpVSLIDEDOWNVI:
				in.Imm = int64(rng.Intn(31) - 15)
			default:
				in.Imm = int64(rng.Intn(2048) - 1024)
			}
			// Ops whose encodings fix vs2/vs1 to zero must match that.
			switch op {
			case riscv.OpVMVVV, riscv.OpVMVVX, riscv.OpVMVVI,
				riscv.OpVFMVVF, riscv.OpVMVSX, riscv.OpVFMVSF:
				in.Rs2 = 0
			}
			want, err := riscv.Encode(in)
			if err != nil {
				t.Fatalf("%v: encode: %v", op, err)
			}
			text := riscv.Disasm(in)
			got, err := assembleOne(t, text)
			if err != nil {
				t.Fatalf("%v: assembling %q: %v", op, text, err)
			}
			if got != want {
				t.Fatalf("%v: %q assembled to %#08x, want %#08x", op, text, got, want)
			}
		}
	}
}
