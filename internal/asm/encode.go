package asm

import (
	"fmt"
	"strings"

	"github.com/coyote-sim/coyote/internal/riscv"
)

// expandLI returns the canonical instruction sequence materialising the
// 64-bit constant v into rd (the same algorithm GNU as uses: build the
// upper bits recursively, shift, then add the low 12 bits).
func expandLI(rd uint8, v int64) []riscv.Instr {
	if v >= -2048 && v < 2048 {
		return []riscv.Instr{{Op: riscv.OpADDI, Rd: rd, Rs1: 0, Imm: v, VM: true}}
	}
	if v >= -(1<<31) && v < 1<<31 {
		lo := v << 52 >> 52 // sign-extended low 12 bits
		hi := uint32(v-lo) >> 12 & 0xfffff
		seq := []riscv.Instr{{Op: riscv.OpLUI, Rd: rd, Imm: int64(hi), VM: true}}
		if lo != 0 {
			seq = append(seq, riscv.Instr{Op: riscv.OpADDIW, Rd: rd, Rs1: rd, Imm: lo, VM: true})
		}
		return seq
	}
	lo := v << 52 >> 52
	upper := (v - lo) >> 12
	seq := expandLI(rd, upper)
	seq = append(seq, riscv.Instr{Op: riscv.OpSLLI, Rd: rd, Rs1: rd, Imm: 12, VM: true})
	if lo != 0 {
		seq = append(seq, riscv.Instr{Op: riscv.OpADDI, Rd: rd, Rs1: rd, Imm: lo, VM: true})
	}
	return seq
}

func xreg(s string) (uint8, error) {
	if r, ok := riscv.XRegByName(strings.TrimSpace(s)); ok {
		return r, nil
	}
	return 0, fmt.Errorf("bad integer register %q", s)
}

func freg(s string) (uint8, error) {
	if r, ok := riscv.FRegByName(strings.TrimSpace(s)); ok {
		return r, nil
	}
	return 0, fmt.Errorf("bad FP register %q", s)
}

func vreg(s string) (uint8, error) {
	if r, ok := riscv.VRegByName(strings.TrimSpace(s)); ok {
		return r, nil
	}
	return 0, fmt.Errorf("bad vector register %q", s)
}

// needOps checks the operand count.
func needOps(name string, ops []string, n int) error {
	if len(ops) != n {
		return fmt.Errorf("%s: want %d operands, got %d", name, n, len(ops))
	}
	return nil
}

func checkRange(name string, v, lo, hi int64) error {
	if v < lo || v > hi {
		return fmt.Errorf("%s: immediate %d out of range [%d, %d]", name, v, lo, hi)
	}
	return nil
}

// enc is shorthand for encoding a single instruction to words.
func enc(in riscv.Instr) ([]uint32, error) {
	w, err := riscv.Encode(in)
	if err != nil {
		return nil, err
	}
	return []uint32{w}, nil
}

// encodeInstruction translates one assembly statement (mnemonic +
// operands) into machine words. pc is the statement's address (needed for
// branches, jumps and la); syms holds every label and .equ value.
func encodeInstruction(name string, ops []string, pc uint64, syms map[string]uint64) ([]uint32, error) {
	// Vector mask suffix: a trailing "v0.t" operand clears VM.
	vm := true
	if n := len(ops); n > 0 && strings.EqualFold(strings.TrimSpace(ops[n-1]), "v0.t") {
		vm = false
		ops = ops[:n-1]
	}

	if words, handled, err := encodePseudo(name, ops, pc, syms); handled {
		return words, err
	}

	op, ok := riscv.OpByName(name)
	if !ok {
		return nil, fmt.Errorf("unknown mnemonic %q", name)
	}
	in := riscv.Instr{Op: op, VM: vm}
	cls := op.Classify()

	ev := func(s string) (int64, error) { return evalExpr(s, syms) }
	branchTarget := func(s string) (int64, error) {
		t, err := ev(s)
		if err != nil {
			return 0, err
		}
		return t - int64(pc), nil
	}

	switch {
	// ----- vector -----
	case op == riscv.OpVSETVLI, op == riscv.OpVSETIVLI:
		if len(ops) < 4 {
			return nil, fmt.Errorf("%s: want rd, rs1/uimm, eSEW, mLMUL", name)
		}
		var err error
		if in.Rd, err = xreg(ops[0]); err != nil {
			return nil, err
		}
		if op == riscv.OpVSETVLI {
			if in.Rs1, err = xreg(ops[1]); err != nil {
				return nil, err
			}
		} else {
			v, err := ev(ops[1])
			if err != nil {
				return nil, err
			}
			if err := checkRange(name, v, 0, 31); err != nil {
				return nil, err
			}
			in.Rs1 = uint8(v)
		}
		vt, err := parseVTypeOperands(ops[2:])
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		in.Imm = vt
		return enc(in)
	case op == riscv.OpVSETVL:
		if err := needOps(name, ops, 3); err != nil {
			return nil, err
		}
		var err error
		if in.Rd, err = xreg(ops[0]); err != nil {
			return nil, err
		}
		if in.Rs1, err = xreg(ops[1]); err != nil {
			return nil, err
		}
		if in.Rs2, err = xreg(ops[2]); err != nil {
			return nil, err
		}
		return enc(in)

	case op.IsVectorMem():
		return encodeVMem(in, name, ops, syms)

	case op.IsVector():
		return encodeVArith(in, name, ops, syms)

	// ----- atomics -----
	case op == riscv.OpLRW, op == riscv.OpLRD:
		if err := needOps(name, ops, 2); err != nil {
			return nil, err
		}
		var err error
		if in.Rd, err = xreg(ops[0]); err != nil {
			return nil, err
		}
		off, base, err := parseMemOperand(ops[1], syms)
		if err != nil || off != 0 {
			return nil, fmt.Errorf("%s: want (rs1) operand", name)
		}
		if in.Rs1, err = xreg(base); err != nil {
			return nil, err
		}
		return enc(in)
	case cls&riscv.ClassAtomic != 0:
		if err := needOps(name, ops, 3); err != nil {
			return nil, err
		}
		var err error
		if in.Rd, err = xreg(ops[0]); err != nil {
			return nil, err
		}
		if in.Rs2, err = xreg(ops[1]); err != nil {
			return nil, err
		}
		off, base, err := parseMemOperand(ops[2], syms)
		if err != nil || off != 0 {
			return nil, fmt.Errorf("%s: want (rs1) operand", name)
		}
		if in.Rs1, err = xreg(base); err != nil {
			return nil, err
		}
		return enc(in)

	// ----- FP -----
	case cls&riscv.ClassFloat != 0:
		return encodeFP(in, name, ops, syms)

	// ----- scalar loads/stores -----
	case cls&riscv.ClassLoad != 0:
		if err := needOps(name, ops, 2); err != nil {
			return nil, err
		}
		var err error
		if in.Rd, err = xreg(ops[0]); err != nil {
			return nil, err
		}
		off, base, err := parseMemOperand(ops[1], syms)
		if err != nil {
			return nil, err
		}
		if err := checkRange(name, off, -2048, 2047); err != nil {
			return nil, err
		}
		in.Imm = off
		if in.Rs1, err = xreg(base); err != nil {
			return nil, err
		}
		return enc(in)
	case cls&riscv.ClassStore != 0:
		if err := needOps(name, ops, 2); err != nil {
			return nil, err
		}
		var err error
		if in.Rs2, err = xreg(ops[0]); err != nil {
			return nil, err
		}
		off, base, err := parseMemOperand(ops[1], syms)
		if err != nil {
			return nil, err
		}
		if err := checkRange(name, off, -2048, 2047); err != nil {
			return nil, err
		}
		in.Imm = off
		if in.Rs1, err = xreg(base); err != nil {
			return nil, err
		}
		return enc(in)

	// ----- control flow -----
	case op == riscv.OpJAL:
		switch len(ops) {
		case 1: // jal label  → rd = ra
			in.Rd = riscv.RegRA
			t, err := branchTarget(ops[0])
			if err != nil {
				return nil, err
			}
			in.Imm = t
		case 2:
			var err error
			if in.Rd, err = xreg(ops[0]); err != nil {
				return nil, err
			}
			t, err := branchTarget(ops[1])
			if err != nil {
				return nil, err
			}
			in.Imm = t
		default:
			return nil, fmt.Errorf("jal: want 1 or 2 operands")
		}
		if err := checkRange(name, in.Imm, -(1 << 20), 1<<20-1); err != nil {
			return nil, err
		}
		return enc(in)
	case op == riscv.OpJALR:
		// jalr rd, rs1, imm  |  jalr rd, imm(rs1)  |  jalr rs1
		var err error
		switch len(ops) {
		case 1:
			in.Rd = 0
			if in.Rs1, err = xreg(ops[0]); err != nil {
				return nil, err
			}
		case 2:
			if in.Rd, err = xreg(ops[0]); err != nil {
				return nil, err
			}
			off, base, merr := parseMemOperand(ops[1], syms)
			if merr != nil {
				return nil, merr
			}
			in.Imm = off
			if in.Rs1, err = xreg(base); err != nil {
				return nil, err
			}
		case 3:
			if in.Rd, err = xreg(ops[0]); err != nil {
				return nil, err
			}
			if in.Rs1, err = xreg(ops[1]); err != nil {
				return nil, err
			}
			if in.Imm, err = ev(ops[2]); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("jalr: want 1-3 operands")
		}
		return enc(in)
	case cls&riscv.ClassBranch != 0:
		if err := needOps(name, ops, 3); err != nil {
			return nil, err
		}
		var err error
		if in.Rs1, err = xreg(ops[0]); err != nil {
			return nil, err
		}
		if in.Rs2, err = xreg(ops[1]); err != nil {
			return nil, err
		}
		t, err := branchTarget(ops[2])
		if err != nil {
			return nil, err
		}
		if err := checkRange(name, t, -4096, 4095); err != nil {
			return nil, err
		}
		in.Imm = t
		return enc(in)

	// ----- CSR -----
	case cls&riscv.ClassCSR != 0:
		if err := needOps(name, ops, 3); err != nil {
			return nil, err
		}
		var err error
		if in.Rd, err = xreg(ops[0]); err != nil {
			return nil, err
		}
		csr, err := parseCSR(ops[1], syms)
		if err != nil {
			return nil, err
		}
		in.Imm = int64(csr)
		switch op {
		case riscv.OpCSRRWI, riscv.OpCSRRSI, riscv.OpCSRRCI:
			v, err := ev(ops[2])
			if err != nil {
				return nil, err
			}
			if err := checkRange(name, v, 0, 31); err != nil {
				return nil, err
			}
			in.Rs1 = uint8(v)
		default:
			if in.Rs1, err = xreg(ops[2]); err != nil {
				return nil, err
			}
		}
		return enc(in)

	// ----- the rest of the scalar ISA -----
	case op == riscv.OpLUI, op == riscv.OpAUIPC:
		if err := needOps(name, ops, 2); err != nil {
			return nil, err
		}
		var err error
		if in.Rd, err = xreg(ops[0]); err != nil {
			return nil, err
		}
		v, err := ev(ops[1])
		if err != nil {
			return nil, err
		}
		if err := checkRange(name, v, 0, 0xfffff); err != nil {
			return nil, err
		}
		in.Imm = v
		return enc(in)
	case op == riscv.OpECALL, op == riscv.OpEBREAK, op == riscv.OpFENCE,
		op == riscv.OpFENCEI:
		if len(ops) != 0 && op != riscv.OpFENCE {
			return nil, fmt.Errorf("%s takes no operands", name)
		}
		return enc(in)
	case op == riscv.OpSLLI, op == riscv.OpSRLI, op == riscv.OpSRAI:
		if err := needOps(name, ops, 3); err != nil {
			return nil, err
		}
		var err error
		if in.Rd, err = xreg(ops[0]); err != nil {
			return nil, err
		}
		if in.Rs1, err = xreg(ops[1]); err != nil {
			return nil, err
		}
		if in.Imm, err = ev(ops[2]); err != nil {
			return nil, err
		}
		if err := checkRange(name, in.Imm, 0, 63); err != nil {
			return nil, err
		}
		return enc(in)
	case op == riscv.OpSLLIW, op == riscv.OpSRLIW, op == riscv.OpSRAIW:
		if err := needOps(name, ops, 3); err != nil {
			return nil, err
		}
		var err error
		if in.Rd, err = xreg(ops[0]); err != nil {
			return nil, err
		}
		if in.Rs1, err = xreg(ops[1]); err != nil {
			return nil, err
		}
		if in.Imm, err = ev(ops[2]); err != nil {
			return nil, err
		}
		if err := checkRange(name, in.Imm, 0, 31); err != nil {
			return nil, err
		}
		return enc(in)
	default:
		// I-type ALU immediates vs R-type: decide by trying the third
		// operand as a register first.
		if err := needOps(name, ops, 3); err != nil {
			return nil, err
		}
		var err error
		if in.Rd, err = xreg(ops[0]); err != nil {
			return nil, err
		}
		if in.Rs1, err = xreg(ops[1]); err != nil {
			return nil, err
		}
		if isImmALU(op) {
			if in.Imm, err = ev(ops[2]); err != nil {
				return nil, err
			}
			if err := checkRange(name, in.Imm, -2048, 2047); err != nil {
				return nil, err
			}
		} else {
			if in.Rs2, err = xreg(ops[2]); err != nil {
				return nil, err
			}
		}
		return enc(in)
	}
}

func isImmALU(op riscv.Op) bool {
	switch op {
	case riscv.OpADDI, riscv.OpSLTI, riscv.OpSLTIU, riscv.OpXORI,
		riscv.OpORI, riscv.OpANDI, riscv.OpADDIW:
		return true
	}
	return false
}

// parseCSR accepts a CSR by name (mhartid) or numeric address.
func parseCSR(s string, syms map[string]uint64) (uint16, error) {
	s = strings.TrimSpace(s)
	if addr, ok := riscv.CSRByName(s); ok {
		return addr, nil
	}
	v, err := evalExpr(s, syms)
	if err != nil {
		return 0, fmt.Errorf("bad CSR %q", s)
	}
	if v < 0 || v > 0xfff {
		return 0, fmt.Errorf("CSR address %#x out of range", v)
	}
	return uint16(v), nil
}

// parseVTypeOperands parses the eSEW, mLMUL[, ta][, ma] tail of vsetvli.
func parseVTypeOperands(ops []string) (int64, error) {
	vt := riscv.VType{SEW: 64, LMUL: 1}
	seen := 0
	for _, o := range ops {
		o = strings.ToLower(strings.TrimSpace(o))
		switch {
		case strings.HasPrefix(o, "e"):
			var sew uint
			if _, err := fmt.Sscanf(o, "e%d", &sew); err != nil {
				return 0, fmt.Errorf("bad SEW %q", o)
			}
			vt.SEW = sew
			seen++
		case strings.HasPrefix(o, "m") && o != "ma":
			var lmul uint
			if _, err := fmt.Sscanf(o, "m%d", &lmul); err != nil {
				return 0, fmt.Errorf("bad LMUL %q", o)
			}
			vt.LMUL = lmul
		case o == "ta":
			vt.TA = true
		case o == "tu":
			vt.TA = false
		case o == "ma":
			vt.MA = true
		case o == "mu":
			vt.MA = false
		default:
			return 0, fmt.Errorf("bad vtype operand %q", o)
		}
	}
	if seen == 0 {
		return 0, fmt.Errorf("missing eSEW operand")
	}
	return riscv.EncodeVType(vt)
}
