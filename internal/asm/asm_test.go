package asm

import (
	"encoding/binary"
	"testing"

	"github.com/coyote-sim/coyote/internal/riscv"
)

// word extracts the i-th text word.
func word(t *testing.T, p *Program, i int) uint32 {
	t.Helper()
	if len(p.Text) < 4*(i+1) {
		t.Fatalf("text too short: %d bytes, want word %d", len(p.Text), i)
	}
	return binary.LittleEndian.Uint32(p.Text[4*i:])
}

// decode the i-th text word.
func decodeWord(t *testing.T, p *Program, i int) riscv.Instr {
	t.Helper()
	in, err := riscv.Decode(word(t, p, i))
	if err != nil {
		t.Fatalf("word %d (%#08x): %v", i, word(t, p, i), err)
	}
	return in
}

func TestBasicInstructions(t *testing.T) {
	p, err := Assemble(`
		addi a0, zero, 42     # comment
		add  a1, a0, a0       // another comment
		sub  t0, a1, a0
	`)
	if err != nil {
		t.Fatal(err)
	}
	in := decodeWord(t, p, 0)
	if in.Op != riscv.OpADDI || in.Rd != 10 || in.Imm != 42 {
		t.Errorf("addi = %+v", in)
	}
	in = decodeWord(t, p, 1)
	if in.Op != riscv.OpADD || in.Rd != 11 || in.Rs1 != 10 || in.Rs2 != 10 {
		t.Errorf("add = %+v", in)
	}
}

func TestLoadsStores(t *testing.T) {
	p, err := Assemble(`
		ld  a0, 16(sp)
		sd  a0, -8(s0)
		lw  t1, 0(a2)
		flw fa0, 4(a0)
		fsd fa1, 8(a0)
	`)
	if err != nil {
		t.Fatal(err)
	}
	in := decodeWord(t, p, 0)
	if in.Op != riscv.OpLD || in.Imm != 16 || in.Rs1 != 2 {
		t.Errorf("ld = %+v", in)
	}
	in = decodeWord(t, p, 1)
	if in.Op != riscv.OpSD || in.Imm != -8 || in.Rs1 != 8 || in.Rs2 != 10 {
		t.Errorf("sd = %+v", in)
	}
	in = decodeWord(t, p, 3)
	if in.Op != riscv.OpFLW || in.Rd != 10 {
		t.Errorf("flw = %+v", in)
	}
}

func TestLabelsAndBranches(t *testing.T) {
	p, err := Assemble(`
	loop:
		addi a0, a0, -1
		bnez a0, loop
		beq  a0, a1, done
		j    loop
	done:
		ret
	`)
	if err != nil {
		t.Fatal(err)
	}
	// bnez → bne a0, zero, -4
	in := decodeWord(t, p, 1)
	if in.Op != riscv.OpBNE || in.Imm != -4 {
		t.Errorf("bnez = %+v", in)
	}
	// beq +8 to done (pc=8, done=16)
	in = decodeWord(t, p, 2)
	if in.Op != riscv.OpBEQ || in.Imm != 8 {
		t.Errorf("beq = %+v", in)
	}
	// j loop → jal zero, -12
	in = decodeWord(t, p, 3)
	if in.Op != riscv.OpJAL || in.Rd != 0 || in.Imm != -12 {
		t.Errorf("j = %+v", in)
	}
	// ret → jalr zero, ra, 0
	in = decodeWord(t, p, 4)
	if in.Op != riscv.OpJALR || in.Rs1 != 1 {
		t.Errorf("ret = %+v", in)
	}
}

func TestLiExpansion(t *testing.T) {
	cases := []struct {
		value int64
		words int
	}{
		{0, 1},
		{42, 1},
		{-1, 1},
		{2047, 1},
		{2048, 2},    // lui+addiw
		{1 << 20, 1}, // lui only
		{0x12345678, 2},
		{-0x12345678, 2},
		{0x123456789abc, 6},     // 46-bit
		{-0x7edcba987654321, 8}, // big negative
	}
	for _, c := range cases {
		seq := expandLI(5, c.value)
		if len(seq) != c.words {
			t.Errorf("li %#x: %d words, want %d", c.value, len(seq), c.words)
		}
		// Simulate the sequence to verify the value.
		var reg int64
		for _, in := range seq {
			switch in.Op {
			case riscv.OpADDI:
				if in.Rs1 == 0 {
					reg = in.Imm
				} else {
					reg += in.Imm
				}
			case riscv.OpADDIW:
				reg = int64(int32(reg + in.Imm))
			case riscv.OpLUI:
				reg = int64(int32(uint32(in.Imm) << 12))
			case riscv.OpSLLI:
				reg <<= uint(in.Imm)
			default:
				t.Fatalf("unexpected op %v in li expansion", in.Op)
			}
		}
		if reg != c.value {
			t.Errorf("li %#x materialised %#x", c.value, reg)
		}
	}
}

func TestLiProperty(t *testing.T) {
	// Property: for many values, the li expansion materialises the value.
	vals := []int64{0, 1, -1, 1 << 11, -(1 << 11), 1<<31 - 1, -(1 << 31),
		1 << 31, 1 << 43, -(1 << 43), 0x7fffffffffffffff, -0x8000000000000000,
		0x00ff00ff00ff00ff, -0x0123456789abcdef}
	for _, v := range vals {
		var reg int64
		for _, in := range expandLI(3, v) {
			switch in.Op {
			case riscv.OpADDI:
				if in.Rs1 == 0 {
					reg = in.Imm
				} else {
					reg += in.Imm
				}
			case riscv.OpADDIW:
				reg = int64(int32(reg + in.Imm))
			case riscv.OpLUI:
				reg = int64(int32(uint32(in.Imm) << 12))
			case riscv.OpSLLI:
				reg <<= uint(in.Imm)
			}
		}
		if reg != v {
			t.Errorf("li %#x materialised %#x", v, reg)
		}
	}
}

func TestLaPCRelative(t *testing.T) {
	p, err := Assemble(`
		la a0, buf
		ebreak
	.data
	buf:
		.dword 7
	`)
	if err != nil {
		t.Fatal(err)
	}
	auipc := decodeWord(t, p, 0)
	addi := decodeWord(t, p, 1)
	if auipc.Op != riscv.OpAUIPC || addi.Op != riscv.OpADDI {
		t.Fatalf("la expanded to %v, %v", auipc.Op, addi.Op)
	}
	hi := int64(int32(uint32(auipc.Imm) << 12))
	got := int64(p.TextBase) + hi + addi.Imm
	if uint64(got) != p.Symbols["buf"] {
		t.Errorf("la resolves to %#x, want %#x", got, p.Symbols["buf"])
	}
	if p.Symbols["buf"] != p.DataBase {
		t.Errorf("buf at %#x, want data base %#x", p.Symbols["buf"], p.DataBase)
	}
}

func TestDataDirectives(t *testing.T) {
	p, err := Assemble(`
	.data
	a:	.byte 1, 2, 3
	.align 3
	b:	.dword 0x1122334455667788
	c:	.double 2.5
	s:	.asciz "hi"
	z:	.zero 4
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Symbols["a"] != p.DataBase {
		t.Errorf("a = %#x", p.Symbols["a"])
	}
	if p.Symbols["b"] != p.DataBase+8 { // aligned from 3 → 8
		t.Errorf("b = %#x", p.Symbols["b"])
	}
	if got := binary.LittleEndian.Uint64(p.Data[8:]); got != 0x1122334455667788 {
		t.Errorf("dword = %#x", got)
	}
	if p.Data[24] != 'h' || p.Data[25] != 'i' || p.Data[26] != 0 {
		t.Errorf("asciz = %v", p.Data[24:27])
	}
	wantLen := 8 + 8 + 8 + 3 + 4
	if len(p.Data) != wantLen {
		t.Errorf("data len = %d, want %d", len(p.Data), wantLen)
	}
}

func TestEquConstants(t *testing.T) {
	p, err := Assemble(`
	.equ N, 64
	.equ DOUBLE_N, N+N
		li a0, N
		li a1, DOUBLE_N
		addi a2, zero, N-60
	`)
	if err != nil {
		t.Fatal(err)
	}
	if in := decodeWord(t, p, 0); in.Imm != 64 {
		t.Errorf("li N = %+v", in)
	}
	if in := decodeWord(t, p, 1); in.Imm != 128 {
		t.Errorf("li DOUBLE_N = %+v", in)
	}
	if in := decodeWord(t, p, 2); in.Imm != 4 {
		t.Errorf("addi N-60 = %+v", in)
	}
}

func TestVectorSyntax(t *testing.T) {
	p, err := Assemble(`
		vsetvli t0, a0, e64, m1, ta, ma
		vle64.v v1, (a1)
		vlse64.v v2, (a2), t1
		vluxei64.v v3, (a3), v2
		vadd.vv v4, v1, v2
		vadd.vi v5, v4, 3
		vfmacc.vf v6, fa0, v1
		vse64.v v4, (a4)
		vadd.vv v7, v1, v2, v0.t
		vmv.x.s a5, v4
		vredsum.vs v8, v1, v2
	`)
	if err != nil {
		t.Fatal(err)
	}
	in := decodeWord(t, p, 0)
	if in.Op != riscv.OpVSETVLI {
		t.Errorf("vsetvli = %+v", in)
	}
	vt, ok := riscv.DecodeVType(uint64(in.Imm))
	if !ok || vt.SEW != 64 || vt.LMUL != 1 || !vt.TA || !vt.MA {
		t.Errorf("vtype = %+v", vt)
	}
	in = decodeWord(t, p, 1)
	if in.Op != riscv.OpVLE64 || in.Rd != 1 || in.Rs1 != 11 || !in.VM {
		t.Errorf("vle64 = %+v", in)
	}
	in = decodeWord(t, p, 3)
	if in.Op != riscv.OpVLUXEI64 || in.Rs2 != 2 {
		t.Errorf("vluxei64 = %+v", in)
	}
	in = decodeWord(t, p, 4)
	// vadd.vv vd, vs2, vs1: v4 = v1 + v2 → Rs2=1, Rs1=2
	if in.Op != riscv.OpVADDVV || in.Rd != 4 || in.Rs2 != 1 || in.Rs1 != 2 {
		t.Errorf("vadd.vv = %+v", in)
	}
	in = decodeWord(t, p, 8)
	if in.VM {
		t.Errorf("masked vadd should have VM=false: %+v", in)
	}
	in = decodeWord(t, p, 9)
	if in.Op != riscv.OpVMVXS || in.Rd != 15 || in.Rs2 != 4 {
		t.Errorf("vmv.x.s = %+v", in)
	}
}

func TestCSRSyntax(t *testing.T) {
	p, err := Assemble(`
		csrr a0, mhartid
		csrrwi zero, 0x340, 5
		rdcycle t0
	`)
	if err != nil {
		t.Fatal(err)
	}
	in := decodeWord(t, p, 0)
	if in.Op != riscv.OpCSRRS || uint16(in.Imm) != riscv.CSRMHartID {
		t.Errorf("csrr = %+v", in)
	}
	in = decodeWord(t, p, 1)
	if in.Op != riscv.OpCSRRWI || in.Rs1 != 5 || in.Imm != 0x340 {
		t.Errorf("csrrwi = %+v", in)
	}
}

func TestAMOSyntax(t *testing.T) {
	p, err := Assemble(`
		amoadd.d a0, a1, (a2)
		lr.d t0, (a0)
		sc.d t1, t2, (a0)
	`)
	if err != nil {
		t.Fatal(err)
	}
	in := decodeWord(t, p, 0)
	if in.Op != riscv.OpAMOADDD || in.Rd != 10 || in.Rs2 != 11 || in.Rs1 != 12 {
		t.Errorf("amoadd = %+v", in)
	}
	in = decodeWord(t, p, 1)
	if in.Op != riscv.OpLRD || in.Rd != 5 || in.Rs1 != 10 {
		t.Errorf("lr.d = %+v", in)
	}
}

func TestErrors(t *testing.T) {
	bad := []string{
		"bogus a0, a1",
		"addi a0, a1",                   // missing operand
		"addi a0, a1, 5000",             // imm out of range
		"ld a0, a1",                     // not a mem operand
		"beq a0, a1, faraway\nfaraway:", // ok actually... replaced below
		"li a0, undefined_symbol",
		".align x",
		"dup:\ndup:",
		".word 1)",
	}
	for _, src := range bad {
		if src == "beq a0, a1, faraway\nfaraway:" {
			continue
		}
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}

func TestBranchOutOfRange(t *testing.T) {
	src := "beq a0, a1, far\n"
	for i := 0; i < 2000; i++ {
		src += "nop\n"
	}
	src += "far: ret\n"
	if _, err := Assemble(src); err == nil {
		t.Error("4 KiB-out-of-range branch should fail")
	}
}

func TestEntrySymbol(t *testing.T) {
	p, err := Assemble(`
		nop
	_start:
		ret
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != p.TextBase+4 {
		t.Errorf("entry = %#x, want %#x", p.Entry, p.TextBase+4)
	}
}

func TestMaskSuffixOnLoad(t *testing.T) {
	p, err := Assemble("vle64.v v1, (a0), v0.t")
	if err != nil {
		t.Fatal(err)
	}
	if in := decodeWord(t, p, 0); in.VM {
		t.Errorf("want VM=false, got %+v", in)
	}
}

func TestFPRoundTripThroughDisasm(t *testing.T) {
	srcs := []string{
		"fadd.d fa0, fa1, fa2",
		"fmadd.d ft0, ft1, ft2, ft3",
		"fcvt.d.l fa0, a0",
		"fcvt.w.d a0, fa0",
		"fsqrt.d fa0, fa1",
		"feq.d a0, fa0, fa1",
		"fmv.x.d a0, fa0",
	}
	for _, src := range srcs {
		p, err := Assemble(src)
		if err != nil {
			t.Errorf("%s: %v", src, err)
			continue
		}
		in := decodeWord(t, p, 0)
		if got := riscv.Disasm(in); got != src {
			t.Errorf("disasm(%s) = %s", src, got)
		}
	}
}
