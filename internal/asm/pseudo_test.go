package asm

// Decode-level checks for every pseudo-instruction expansion.

import (
	"testing"

	"github.com/coyote-sim/coyote/internal/riscv"
)

type pseudoCase struct {
	src  string
	want riscv.Instr
}

func TestPseudoExpansions(t *testing.T) {
	cases := []pseudoCase{
		{"nop", riscv.Instr{Op: riscv.OpADDI, VM: true}},
		{"mv a0, a1", riscv.Instr{Op: riscv.OpADDI, Rd: 10, Rs1: 11, VM: true}},
		{"not a0, a1", riscv.Instr{Op: riscv.OpXORI, Rd: 10, Rs1: 11, Imm: -1, VM: true}},
		{"neg a0, a1", riscv.Instr{Op: riscv.OpSUB, Rd: 10, Rs2: 11, VM: true}},
		{"negw a0, a1", riscv.Instr{Op: riscv.OpSUBW, Rd: 10, Rs2: 11, VM: true}},
		{"sext.w a0, a1", riscv.Instr{Op: riscv.OpADDIW, Rd: 10, Rs1: 11, VM: true}},
		{"seqz a0, a1", riscv.Instr{Op: riscv.OpSLTIU, Rd: 10, Rs1: 11, Imm: 1, VM: true}},
		{"snez a0, a1", riscv.Instr{Op: riscv.OpSLTU, Rd: 10, Rs2: 11, VM: true}},
		{"sltz a0, a1", riscv.Instr{Op: riscv.OpSLT, Rd: 10, Rs1: 11, VM: true}},
		{"sgtz a0, a1", riscv.Instr{Op: riscv.OpSLT, Rd: 10, Rs2: 11, VM: true}},
		{"l: beqz a0, l", riscv.Instr{Op: riscv.OpBEQ, Rs1: 10, VM: true}},
		{"l: bnez a0, l", riscv.Instr{Op: riscv.OpBNE, Rs1: 10, VM: true}},
		{"l: blez a0, l", riscv.Instr{Op: riscv.OpBGE, Rs2: 10, VM: true}},
		{"l: bgez a0, l", riscv.Instr{Op: riscv.OpBGE, Rs1: 10, VM: true}},
		{"l: bltz a0, l", riscv.Instr{Op: riscv.OpBLT, Rs1: 10, VM: true}},
		{"l: bgtz a0, l", riscv.Instr{Op: riscv.OpBLT, Rs2: 10, VM: true}},
		{"l: bgt a0, a1, l", riscv.Instr{Op: riscv.OpBLT, Rs1: 11, Rs2: 10, VM: true}},
		{"l: ble a0, a1, l", riscv.Instr{Op: riscv.OpBGE, Rs1: 11, Rs2: 10, VM: true}},
		{"l: bgtu a0, a1, l", riscv.Instr{Op: riscv.OpBLTU, Rs1: 11, Rs2: 10, VM: true}},
		{"l: bleu a0, a1, l", riscv.Instr{Op: riscv.OpBGEU, Rs1: 11, Rs2: 10, VM: true}},
		{"l: j l", riscv.Instr{Op: riscv.OpJAL, VM: true}},
		{"l: call l", riscv.Instr{Op: riscv.OpJAL, Rd: 1, VM: true}},
		{"jr a0", riscv.Instr{Op: riscv.OpJALR, Rs1: 10, VM: true}},
		{"ret", riscv.Instr{Op: riscv.OpJALR, Rs1: 1, VM: true}},
		{"csrr a0, mhartid", riscv.Instr{Op: riscv.OpCSRRS, Rd: 10, Imm: riscv.CSRMHartID, VM: true}},
		{"csrw mhartid, a0", riscv.Instr{Op: riscv.OpCSRRW, Rs1: 10, Imm: riscv.CSRMHartID, VM: true}},
		{"rdcycle a0", riscv.Instr{Op: riscv.OpCSRRS, Rd: 10, Imm: riscv.CSRCycle, VM: true}},
		{"rdinstret a0", riscv.Instr{Op: riscv.OpCSRRS, Rd: 10, Imm: riscv.CSRInstret, VM: true}},
		{"fmv.s fa0, fa1", riscv.Instr{Op: riscv.OpFSGNJS, Rd: 10, Rs1: 11, Rs2: 11, VM: true}},
		{"fmv.d fa0, fa1", riscv.Instr{Op: riscv.OpFSGNJD, Rd: 10, Rs1: 11, Rs2: 11, VM: true}},
		{"fneg.s fa0, fa1", riscv.Instr{Op: riscv.OpFSGNJNS, Rd: 10, Rs1: 11, Rs2: 11, VM: true}},
		{"fneg.d fa0, fa1", riscv.Instr{Op: riscv.OpFSGNJND, Rd: 10, Rs1: 11, Rs2: 11, VM: true}},
		{"fabs.s fa0, fa1", riscv.Instr{Op: riscv.OpFSGNJXS, Rd: 10, Rs1: 11, Rs2: 11, VM: true}},
		{"fabs.d fa0, fa1", riscv.Instr{Op: riscv.OpFSGNJXD, Rd: 10, Rs1: 11, Rs2: 11, VM: true}},
	}
	for _, c := range cases {
		p, err := Assemble(c.src)
		if err != nil {
			t.Errorf("%q: %v", c.src, err)
			continue
		}
		got := decodeWord(t, p, 0)
		if got != c.want {
			t.Errorf("%q expanded to %+v, want %+v", c.src, got, c.want)
		}
	}
}

func TestPseudoOperandCountErrors(t *testing.T) {
	bad := []string{
		"mv a0", "not a0", "neg", "seqz a0, a1, a2", "beqz a0",
		"j", "jr", "call", "csrr a0", "li a0", "la a0",
		"fmv.d fa0", "bgt a0, a1",
	}
	for _, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%q should fail", src)
		}
	}
}

func TestLaOutOfRange(t *testing.T) {
	// A data base impossibly far from text exceeds auipc's ±2 GiB reach.
	_, err := AssembleWith("la a0, sym\n.data\nsym: .dword 0",
		Options{TextBase: 0x1000_0000, DataBase: 0x2_0000_0000_0000})
	if err == nil {
		t.Error("out-of-range la accepted")
	}
}

func TestProgramHelpers(t *testing.T) {
	p, err := Assemble("nop\n.data\n.dword 1, 2")
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 4+16 {
		t.Errorf("Size = %d", p.Size())
	}
}
