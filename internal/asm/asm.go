// Package asm implements a two-pass RISC-V assembler for the subset of the
// ISA in internal/riscv. It exists because the paper's kernels are
// bare-metal RISC-V programs built with the GNU toolchain; with no
// cross-toolchain available the kernels in internal/kernels are written in
// assembly source and assembled in-process, so the simulator still fetches,
// decodes and executes genuine machine code.
//
// Supported syntax: labels, the usual pseudo-instructions (li, la, mv, j,
// call, ret, beqz, ...), sections (.text/.data), data directives (.byte,
// .half, .word, .dword, .double, .asciz, .zero, .align), .equ constants,
// and the "v0.t" mask suffix on vector instructions.
package asm

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"

	"github.com/coyote-sim/coyote/internal/mem"
)

// Options controls program layout.
type Options struct {
	TextBase uint64
	DataBase uint64
}

// DefaultOptions places text at the conventional RISC-V reset base and
// data 1 MiB above it.
func DefaultOptions() Options {
	return Options{TextBase: 0x8000_0000, DataBase: 0x8010_0000}
}

// Program is an assembled binary image.
type Program struct {
	TextBase uint64
	Text     []byte
	DataBase uint64
	Data     []byte
	Symbols  map[string]uint64
	Entry    uint64
}

// LoadInto copies the program image into simulated memory.
func (p *Program) LoadInto(m *mem.Memory) {
	m.WriteBytes(p.TextBase, p.Text)
	m.WriteBytes(p.DataBase, p.Data)
}

// Size returns the total image size in bytes.
func (p *Program) Size() int { return len(p.Text) + len(p.Data) }

type section int

const (
	secText section = iota
	secData
)

// Assemble translates source into a Program using default layout options.
func Assemble(src string) (*Program, error) {
	return AssembleWith(src, DefaultOptions())
}

// AssembleWith translates source with explicit layout options.
func AssembleWith(src string, opt Options) (*Program, error) {
	items, err := parseLines(src)
	if err != nil {
		return nil, err
	}

	// Pass 1: layout. Walk items tracking location counters per section,
	// define labels and .equ constants.
	syms := make(map[string]uint64)
	equs := make(map[string]uint64)
	sec := secText
	loc := [2]uint64{opt.TextBase, opt.DataBase}
	for _, it := range items {
		switch {
		case it.label != "":
			if _, dup := syms[it.label]; dup {
				return nil, fmt.Errorf("line %d: duplicate label %q", it.line, it.label)
			}
			syms[it.label] = loc[sec]
		case strings.HasPrefix(it.name, "."):
			n, newSec, err := directiveSize(it, sec, loc[sec], equs)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", it.line, err)
			}
			sec = newSec
			loc[sec] += n
		default:
			if sec != secText {
				return nil, fmt.Errorf("line %d: instruction outside .text", it.line)
			}
			words, err := instrWords(it.name, it.operands, equs)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", it.line, err)
			}
			loc[sec] += uint64(4 * words)
		}
	}
	for k, v := range equs {
		if _, clash := syms[k]; clash {
			return nil, fmt.Errorf(".equ %q clashes with a label", k)
		}
		syms[k] = v
	}

	// Pass 2: emit.
	p := &Program{
		TextBase: opt.TextBase,
		DataBase: opt.DataBase,
		Symbols:  syms,
	}
	sec = secText
	for _, it := range items {
		switch {
		case it.label != "":
			// defined in pass 1
		case strings.HasPrefix(it.name, "."):
			newSec, err := emitDirective(it, sec, p, syms)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", it.line, err)
			}
			sec = newSec
		default:
			pc := opt.TextBase + uint64(len(p.Text))
			words, err := encodeInstruction(it.name, it.operands, pc, syms)
			if err != nil {
				return nil, fmt.Errorf("line %d: %s: %w", it.line, it.name, err)
			}
			for _, w := range words {
				p.Text = binary.LittleEndian.AppendUint32(p.Text, w)
			}
		}
	}

	p.Entry = opt.TextBase
	if e, ok := syms["_start"]; ok {
		p.Entry = e
	}
	return p, nil
}

// directiveSize computes a directive's size contribution for pass 1 and
// tracks section switches and .equ definitions.
func directiveSize(it item, sec section, loc uint64, equs map[string]uint64) (uint64, section, error) {
	switch it.name {
	case ".text":
		return 0, secText, nil
	case ".data", ".bss", ".rodata", ".section":
		return 0, secData, nil
	case ".global", ".globl", ".option", ".attribute", ".type", ".size", ".p2align":
		return 0, sec, nil
	case ".equ", ".set":
		if len(it.operands) != 2 {
			return 0, sec, fmt.Errorf("%s: want name, value", it.name)
		}
		v, err := evalExpr(it.operands[1], equs)
		if err != nil {
			return 0, sec, err
		}
		equs[it.operands[0]] = uint64(v)
		return 0, sec, nil
	case ".align":
		if len(it.operands) != 1 {
			return 0, sec, fmt.Errorf(".align: want one operand")
		}
		n, err := strconv.Atoi(strings.TrimSpace(it.operands[0]))
		if err != nil || n < 0 || n > 16 {
			return 0, sec, fmt.Errorf(".align: bad exponent %q", it.operands[0])
		}
		a := uint64(1) << n
		return (a - loc%a) % a, sec, nil
	case ".byte":
		return uint64(len(it.operands)), sec, nil
	case ".half", ".2byte":
		return 2 * uint64(len(it.operands)), sec, nil
	case ".word", ".4byte", ".float":
		return 4 * uint64(len(it.operands)), sec, nil
	case ".dword", ".8byte", ".quad", ".double":
		return 8 * uint64(len(it.operands)), sec, nil
	case ".zero", ".skip", ".space":
		if len(it.operands) != 1 {
			return 0, sec, fmt.Errorf("%s: want one operand", it.name)
		}
		v, err := evalExpr(it.operands[0], equs)
		if err != nil || v < 0 {
			return 0, sec, fmt.Errorf("%s: bad size %q", it.name, it.operands[0])
		}
		return uint64(v), sec, nil
	case ".asciz", ".string":
		s, err := unquote(strings.Join(it.operands, ","))
		if err != nil {
			return 0, sec, err
		}
		return uint64(len(s) + 1), sec, nil
	case ".ascii":
		s, err := unquote(strings.Join(it.operands, ","))
		if err != nil {
			return 0, sec, err
		}
		return uint64(len(s)), sec, nil
	default:
		return 0, sec, fmt.Errorf("unknown directive %s", it.name)
	}
}

// emitDirective emits directive bytes into the program for pass 2.
func emitDirective(it item, sec section, p *Program, syms map[string]uint64) (section, error) {
	buf := &p.Text
	if sec == secData {
		buf = &p.Data
	}
	base := p.TextBase
	if sec == secData {
		base = p.DataBase
	}
	loc := base + uint64(len(*buf))

	emitInts := func(width int) error {
		for _, o := range it.operands {
			v, err := evalExpr(o, syms)
			if err != nil {
				return err
			}
			var tmp [8]byte
			binary.LittleEndian.PutUint64(tmp[:], uint64(v))
			*buf = append(*buf, tmp[:width]...)
		}
		return nil
	}

	switch it.name {
	case ".text":
		return secText, nil
	case ".data", ".bss", ".rodata", ".section":
		return secData, nil
	case ".global", ".globl", ".option", ".attribute", ".type", ".size",
		".p2align", ".equ", ".set":
		return sec, nil
	case ".align":
		n, _ := strconv.Atoi(strings.TrimSpace(it.operands[0]))
		a := uint64(1) << n
		pad := (a - loc%a) % a
		*buf = append(*buf, make([]byte, pad)...)
		return sec, nil
	case ".byte":
		return sec, emitInts(1)
	case ".half", ".2byte":
		return sec, emitInts(2)
	case ".word", ".4byte":
		return sec, emitInts(4)
	case ".dword", ".8byte", ".quad":
		return sec, emitInts(8)
	case ".float":
		for _, o := range it.operands {
			f, err := strconv.ParseFloat(strings.TrimSpace(o), 32)
			if err != nil {
				return sec, fmt.Errorf(".float: %w", err)
			}
			*buf = binary.LittleEndian.AppendUint32(*buf, math.Float32bits(float32(f)))
		}
		return sec, nil
	case ".double":
		for _, o := range it.operands {
			f, err := strconv.ParseFloat(strings.TrimSpace(o), 64)
			if err != nil {
				return sec, fmt.Errorf(".double: %w", err)
			}
			*buf = binary.LittleEndian.AppendUint64(*buf, math.Float64bits(f))
		}
		return sec, nil
	case ".zero", ".skip", ".space":
		v, err := evalExpr(it.operands[0], syms)
		if err != nil {
			return sec, err
		}
		*buf = append(*buf, make([]byte, v)...)
		return sec, nil
	case ".asciz", ".string":
		s, err := unquote(strings.Join(it.operands, ","))
		if err != nil {
			return sec, err
		}
		*buf = append(*buf, s...)
		*buf = append(*buf, 0)
		return sec, nil
	case ".ascii":
		s, err := unquote(strings.Join(it.operands, ","))
		if err != nil {
			return sec, err
		}
		*buf = append(*buf, s...)
		return sec, nil
	default:
		return sec, fmt.Errorf("unknown directive %s", it.name)
	}
}

func unquote(s string) (string, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf("expected quoted string, got %q", s)
	}
	out, err := strconv.Unquote(s)
	if err != nil {
		return "", fmt.Errorf("bad string %s: %w", s, err)
	}
	return out, nil
}
