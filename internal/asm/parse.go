package asm

import (
	"fmt"
	"strconv"
	"strings"
)

// item is one parsed source element: a label definition, a directive, or
// an instruction awaiting encoding.
type item struct {
	line     int
	label    string   // non-empty for a label definition
	name     string   // directive (with dot) or mnemonic
	operands []string // raw operand strings, comma-split at top level
}

// parseLines splits source text into items. Comments start with '#' or
// "//" and run to end of line.
func parseLines(src string) ([]item, error) {
	var items []item
	for lineNo, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Peel off any leading "label:" definitions.
		for {
			idx := strings.Index(line, ":")
			if idx < 0 {
				break
			}
			head := strings.TrimSpace(line[:idx])
			if !isIdent(head) {
				break
			}
			items = append(items, item{line: lineNo + 1, label: head})
			line = strings.TrimSpace(line[idx+1:])
		}
		if line == "" {
			continue
		}
		name, rest, _ := strings.Cut(line, " ")
		if tabName, tabRest, found := strings.Cut(line, "\t"); found && len(tabName) < len(name) {
			name, rest = tabName, tabRest
		}
		name = strings.TrimSpace(name)
		ops, err := splitOperands(strings.TrimSpace(rest))
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
		items = append(items, item{
			line:     lineNo + 1,
			name:     strings.ToLower(name),
			operands: ops,
		})
	}
	return items, nil
}

func stripComment(line string) string {
	inStr := false
	for i := 0; i < len(line); i++ {
		switch {
		case line[i] == '"':
			inStr = !inStr
		case inStr:
		case line[i] == '#':
			return line[:i]
		case line[i] == '/' && i+1 < len(line) && line[i+1] == '/':
			return line[:i]
		}
	}
	return line
}

// splitOperands splits on top-level commas, respecting parentheses and
// string literals.
func splitOperands(s string) ([]string, error) {
	if s == "" {
		return nil, nil
	}
	var out []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '"':
			inStr = !inStr
		case inStr:
		case s[i] == '(':
			depth++
		case s[i] == ')':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("unbalanced ')' in %q", s)
			}
		case s[i] == ',' && depth == 0:
			out = append(out, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	if depth != 0 || inStr {
		return nil, fmt.Errorf("unbalanced delimiter in %q", s)
	}
	out = append(out, strings.TrimSpace(s[start:]))
	for _, o := range out {
		if o == "" {
			return nil, fmt.Errorf("empty operand in %q", s)
		}
	}
	return out, nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// evalExpr evaluates an integer expression: terms joined by + and -,
// where a term is a literal (decimal, 0x, 0b, 0o, char) or a symbol.
func evalExpr(expr string, syms map[string]uint64) (int64, error) {
	expr = strings.TrimSpace(expr)
	if expr == "" {
		return 0, fmt.Errorf("empty expression")
	}
	var total int64
	sign := int64(1)
	i := 0
	expectTerm := true
	for i < len(expr) {
		c := expr[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '+' && !expectTerm:
			sign = 1
			expectTerm = true
			i++
		case c == '-':
			if expectTerm {
				sign = -sign
			} else {
				sign = -1
				expectTerm = true
			}
			i++
		default:
			if !expectTerm {
				return 0, fmt.Errorf("unexpected %q in expression %q", string(c), expr)
			}
			j := i
			for j < len(expr) && expr[j] != '+' && expr[j] != '-' && expr[j] != ' ' {
				j++
			}
			term := expr[i:j]
			v, err := evalTerm(term, syms)
			if err != nil {
				return 0, err
			}
			total += sign * v
			sign = 1
			expectTerm = false
			i = j
		}
	}
	if expectTerm {
		return 0, fmt.Errorf("dangling operator in %q", expr)
	}
	return total, nil
}

func evalTerm(term string, syms map[string]uint64) (int64, error) {
	if len(term) >= 3 && term[0] == '\'' && term[len(term)-1] == '\'' {
		inner := term[1 : len(term)-1]
		if inner == "\\n" {
			return '\n', nil
		}
		if inner == "\\t" {
			return '\t', nil
		}
		if len(inner) == 1 {
			return int64(inner[0]), nil
		}
		return 0, fmt.Errorf("bad character literal %s", term)
	}
	if v, err := strconv.ParseInt(term, 0, 64); err == nil {
		return v, nil
	}
	if v, err := strconv.ParseUint(term, 0, 64); err == nil {
		return int64(v), nil
	}
	if syms != nil {
		if v, ok := syms[term]; ok {
			return int64(v), nil
		}
	}
	return 0, fmt.Errorf("undefined symbol or bad literal %q", term)
}

// parseMemOperand parses "imm(reg)" or "(reg)"; the immediate part may be
// any expression.
func parseMemOperand(s string, syms map[string]uint64) (imm int64, reg string, err error) {
	open := strings.LastIndex(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, "", fmt.Errorf("expected imm(reg), got %q", s)
	}
	reg = strings.TrimSpace(s[open+1 : len(s)-1])
	immStr := strings.TrimSpace(s[:open])
	if immStr == "" {
		return 0, reg, nil
	}
	imm, err = evalExpr(immStr, syms)
	return imm, reg, err
}
