package asm

import (
	"fmt"
	"strings"

	"github.com/coyote-sim/coyote/internal/riscv"
)

// encodeVMem handles vector loads/stores:
//
//	vle64.v    vd,  (rs1)
//	vlse64.v   vd,  (rs1), rs2
//	vluxei64.v vd,  (rs1), vs2
//	(stores identical with vs3 in the vd slot)
func encodeVMem(in riscv.Instr, name string, ops []string, syms map[string]uint64) ([]uint32, error) {
	if len(ops) < 2 {
		return nil, fmt.Errorf("%s: want at least vreg, (rs1)", name)
	}
	var err error
	if in.Rd, err = vreg(ops[0]); err != nil {
		return nil, err
	}
	off, base, err := parseMemOperand(ops[1], syms)
	if err != nil {
		return nil, err
	}
	if off != 0 {
		return nil, fmt.Errorf("%s: vector memory operands take no offset", name)
	}
	if in.Rs1, err = xreg(base); err != nil {
		return nil, err
	}
	strided := strings.Contains(name, "vlse") || strings.Contains(name, "vsse")
	indexed := strings.Contains(name, "xei")
	switch {
	case strided:
		if err := needOps(name, ops, 3); err != nil {
			return nil, err
		}
		if in.Rs2, err = xreg(ops[2]); err != nil {
			return nil, err
		}
	case indexed:
		if err := needOps(name, ops, 3); err != nil {
			return nil, err
		}
		if in.Rs2, err = vreg(ops[2]); err != nil {
			return nil, err
		}
	default:
		if err := needOps(name, ops, 2); err != nil {
			return nil, err
		}
	}
	return enc(in)
}

// encodeVArith handles OP-V arithmetic forms. Canonical operand orders:
//
//	vadd.vv  vd, vs2, vs1      vadd.vx vd, vs2, rs1     vadd.vi vd, vs2, imm
//	vfadd.vf vd, vs2, fs1      vmacc.vv vd, vs1, vs2 (accumulators too)
//	vmv.v.v vd, vs1            vmv.v.x vd, rs1          vmv.v.i vd, imm
//	vmv.x.s rd, vs2            vmv.s.x vd, rs1
//	vfmv.f.s fd, vs2           vfmv.s.f vd, fs1         vfmv.v.f vd, fs1
//	vid.v vd                   vfsqrt.v vd, vs2
//	vredsum.vs vd, vs2, vs1
func encodeVArith(in riscv.Instr, name string, ops []string, syms map[string]uint64) ([]uint32, error) {
	var err error
	op := in.Op
	switch op {
	case riscv.OpVIDV:
		if err := needOps(name, ops, 1); err != nil {
			return nil, err
		}
		if in.Rd, err = vreg(ops[0]); err != nil {
			return nil, err
		}
		return enc(in)
	case riscv.OpVMVXS:
		if err := needOps(name, ops, 2); err != nil {
			return nil, err
		}
		if in.Rd, err = xreg(ops[0]); err != nil {
			return nil, err
		}
		if in.Rs2, err = vreg(ops[1]); err != nil {
			return nil, err
		}
		return enc(in)
	case riscv.OpVFMVFS:
		if err := needOps(name, ops, 2); err != nil {
			return nil, err
		}
		if in.Rd, err = freg(ops[0]); err != nil {
			return nil, err
		}
		if in.Rs2, err = vreg(ops[1]); err != nil {
			return nil, err
		}
		return enc(in)
	case riscv.OpVMVSX:
		if err := needOps(name, ops, 2); err != nil {
			return nil, err
		}
		if in.Rd, err = vreg(ops[0]); err != nil {
			return nil, err
		}
		if in.Rs1, err = xreg(ops[1]); err != nil {
			return nil, err
		}
		return enc(in)
	case riscv.OpVFMVSF, riscv.OpVFMVVF:
		if err := needOps(name, ops, 2); err != nil {
			return nil, err
		}
		if in.Rd, err = vreg(ops[0]); err != nil {
			return nil, err
		}
		if in.Rs1, err = freg(ops[1]); err != nil {
			return nil, err
		}
		return enc(in)
	case riscv.OpVMVVV:
		if err := needOps(name, ops, 2); err != nil {
			return nil, err
		}
		if in.Rd, err = vreg(ops[0]); err != nil {
			return nil, err
		}
		if in.Rs1, err = vreg(ops[1]); err != nil {
			return nil, err
		}
		return enc(in)
	case riscv.OpVMVVX:
		if err := needOps(name, ops, 2); err != nil {
			return nil, err
		}
		if in.Rd, err = vreg(ops[0]); err != nil {
			return nil, err
		}
		if in.Rs1, err = xreg(ops[1]); err != nil {
			return nil, err
		}
		return enc(in)
	case riscv.OpVMVVI:
		if err := needOps(name, ops, 2); err != nil {
			return nil, err
		}
		if in.Rd, err = vreg(ops[0]); err != nil {
			return nil, err
		}
		if in.Imm, err = evalExpr(ops[1], syms); err != nil {
			return nil, err
		}
		if err := checkRange(name, in.Imm, -16, 15); err != nil {
			return nil, err
		}
		return enc(in)
	case riscv.OpVFSQRTV:
		if err := needOps(name, ops, 2); err != nil {
			return nil, err
		}
		if in.Rd, err = vreg(ops[0]); err != nil {
			return nil, err
		}
		if in.Rs2, err = vreg(ops[1]); err != nil {
			return nil, err
		}
		return enc(in)
	}

	// Multiply-accumulate family uses "vd, vs1/rs1, vs2" operand order
	// (vd is the accumulator); everything else is "vd, vs2, vs1/rs1/imm".
	macc := false
	switch op {
	case riscv.OpVMACCVV, riscv.OpVMACCVX, riscv.OpVFMACCVV,
		riscv.OpVFMACCVF, riscv.OpVFNMSACVV:
		macc = true
	}
	if err := needOps(name, ops, 3); err != nil {
		return nil, err
	}
	if in.Rd, err = vreg(ops[0]); err != nil {
		return nil, err
	}
	srcIdx := 2
	if macc {
		srcIdx = 1
		if in.Rs2, err = vreg(ops[2]); err != nil {
			return nil, err
		}
	} else {
		if in.Rs2, err = vreg(ops[1]); err != nil {
			return nil, err
		}
	}
	switch {
	case strings.HasSuffix(name, ".vv") || strings.HasSuffix(name, ".vs"):
		if in.Rs1, err = vreg(ops[srcIdx]); err != nil {
			return nil, err
		}
	case strings.HasSuffix(name, ".vf"):
		if in.Rs1, err = freg(ops[srcIdx]); err != nil {
			return nil, err
		}
	case strings.HasSuffix(name, ".vx"):
		if in.Rs1, err = xreg(ops[srcIdx]); err != nil {
			return nil, err
		}
	case strings.HasSuffix(name, ".vi"):
		if in.Imm, err = evalExpr(ops[srcIdx], syms); err != nil {
			return nil, err
		}
		if err := checkRange(name, in.Imm, -16, 15); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("%s: unrecognised vector form", name)
	}
	return enc(in)
}

// encodeFP handles scalar floating-point instructions.
func encodeFP(in riscv.Instr, name string, ops []string, syms map[string]uint64) ([]uint32, error) {
	var err error
	op := in.Op
	cls := op.Classify()
	switch {
	case cls&riscv.ClassLoad != 0: // flw/fld fd, imm(rs1)
		if err := needOps(name, ops, 2); err != nil {
			return nil, err
		}
		if in.Rd, err = freg(ops[0]); err != nil {
			return nil, err
		}
		off, base, err := parseMemOperand(ops[1], syms)
		if err != nil {
			return nil, err
		}
		if err := checkRange(name, off, -2048, 2047); err != nil {
			return nil, err
		}
		in.Imm = off
		if in.Rs1, err = xreg(base); err != nil {
			return nil, err
		}
		return enc(in)
	case cls&riscv.ClassStore != 0: // fsw/fsd fs2, imm(rs1)
		if err := needOps(name, ops, 2); err != nil {
			return nil, err
		}
		if in.Rs2, err = freg(ops[0]); err != nil {
			return nil, err
		}
		off, base, err := parseMemOperand(ops[1], syms)
		if err != nil {
			return nil, err
		}
		if err := checkRange(name, off, -2048, 2047); err != nil {
			return nil, err
		}
		in.Imm = off
		if in.Rs1, err = xreg(base); err != nil {
			return nil, err
		}
		return enc(in)
	}

	switch op {
	case riscv.OpFMADDS, riscv.OpFMSUBS, riscv.OpFNMSUBS, riscv.OpFNMADDS,
		riscv.OpFMADDD, riscv.OpFMSUBD, riscv.OpFNMSUBD, riscv.OpFNMADDD:
		if err := needOps(name, ops, 4); err != nil {
			return nil, err
		}
		if in.Rd, err = freg(ops[0]); err != nil {
			return nil, err
		}
		if in.Rs1, err = freg(ops[1]); err != nil {
			return nil, err
		}
		if in.Rs2, err = freg(ops[2]); err != nil {
			return nil, err
		}
		if in.Rs3, err = freg(ops[3]); err != nil {
			return nil, err
		}
		return enc(in)
	case riscv.OpFEQS, riscv.OpFLTS, riscv.OpFLES,
		riscv.OpFEQD, riscv.OpFLTD, riscv.OpFLED:
		if err := needOps(name, ops, 3); err != nil {
			return nil, err
		}
		if in.Rd, err = xreg(ops[0]); err != nil {
			return nil, err
		}
		if in.Rs1, err = freg(ops[1]); err != nil {
			return nil, err
		}
		if in.Rs2, err = freg(ops[2]); err != nil {
			return nil, err
		}
		return enc(in)
	case riscv.OpFSQRTS, riscv.OpFSQRTD, riscv.OpFCVTSD, riscv.OpFCVTDS:
		if err := needOps(name, ops, 2); err != nil {
			return nil, err
		}
		if in.Rd, err = freg(ops[0]); err != nil {
			return nil, err
		}
		if in.Rs1, err = freg(ops[1]); err != nil {
			return nil, err
		}
		return enc(in)
	case riscv.OpFCVTWS, riscv.OpFCVTWUS, riscv.OpFCVTLS, riscv.OpFCVTLUS,
		riscv.OpFCVTWD, riscv.OpFCVTWUD, riscv.OpFCVTLD, riscv.OpFCVTLUD,
		riscv.OpFMVXW, riscv.OpFMVXD, riscv.OpFCLASSS, riscv.OpFCLASSD:
		if err := needOps(name, ops, 2); err != nil {
			return nil, err
		}
		if in.Rd, err = xreg(ops[0]); err != nil {
			return nil, err
		}
		if in.Rs1, err = freg(ops[1]); err != nil {
			return nil, err
		}
		return enc(in)
	case riscv.OpFCVTSW, riscv.OpFCVTSWU, riscv.OpFCVTSL, riscv.OpFCVTSLU,
		riscv.OpFCVTDW, riscv.OpFCVTDWU, riscv.OpFCVTDL, riscv.OpFCVTDLU,
		riscv.OpFMVWX, riscv.OpFMVDX:
		if err := needOps(name, ops, 2); err != nil {
			return nil, err
		}
		if in.Rd, err = freg(ops[0]); err != nil {
			return nil, err
		}
		if in.Rs1, err = xreg(ops[1]); err != nil {
			return nil, err
		}
		return enc(in)
	default: // three-operand FP arithmetic
		if err := needOps(name, ops, 3); err != nil {
			return nil, err
		}
		if in.Rd, err = freg(ops[0]); err != nil {
			return nil, err
		}
		if in.Rs1, err = freg(ops[1]); err != nil {
			return nil, err
		}
		if in.Rs2, err = freg(ops[2]); err != nil {
			return nil, err
		}
		return enc(in)
	}
}
