// Package mem implements the simulated physical memory: a sparse,
// page-granular, little-endian 64-bit address space shared by all harts.
// Functional state lives here; the cache models in internal/cache and
// internal/uncore are tag-only timing filters layered on top.
package mem

import (
	"fmt"
	"math"
)

// PageBits is log2 of the backing page size.
const PageBits = 12

// PageSize is the backing page size in bytes.
const PageSize = 1 << PageBits

const pageMask = PageSize - 1

type page [PageSize]byte

// Memory is a sparse physical memory. The zero value is not usable; call
// New. Memory is not safe for concurrent mutation; the simulator core is
// single-threaded by design (see DESIGN.md §5).
type Memory struct {
	pages map[uint64]*page

	// one-entry lookaside to avoid a map hit on every access.
	lastBase uint64
	lastPage *page
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{pages: make(map[uint64]*page)}
}

func (m *Memory) pageFor(addr uint64) *page {
	base := addr &^ pageMask
	if m.lastPage != nil && base == m.lastBase {
		return m.lastPage
	}
	p, ok := m.pages[base]
	if !ok {
		p = new(page)
		m.pages[base] = p
	}
	m.lastBase, m.lastPage = base, p
	return p
}

// Pages returns the number of populated backing pages.
func (m *Memory) Pages() int { return len(m.pages) }

// Footprint returns the populated memory size in bytes.
func (m *Memory) Footprint() uint64 { return uint64(len(m.pages)) * PageSize }

// Reset drops all contents.
func (m *Memory) Reset() {
	m.pages = make(map[uint64]*page)
	m.lastPage = nil
	m.lastBase = 0
}

// Read8 loads one byte.
func (m *Memory) Read8(addr uint64) uint8 {
	return m.pageFor(addr)[addr&pageMask]
}

// Write8 stores one byte.
func (m *Memory) Write8(addr uint64, v uint8) {
	m.pageFor(addr)[addr&pageMask] = v
}

// Read16 loads a little-endian 16-bit value (any alignment).
func (m *Memory) Read16(addr uint64) uint16 {
	if addr&pageMask <= PageSize-2 {
		p := m.pageFor(addr)
		o := addr & pageMask
		return uint16(p[o]) | uint16(p[o+1])<<8
	}
	return uint16(m.Read8(addr)) | uint16(m.Read8(addr+1))<<8
}

// Write16 stores a little-endian 16-bit value.
func (m *Memory) Write16(addr uint64, v uint16) {
	if addr&pageMask <= PageSize-2 {
		p := m.pageFor(addr)
		o := addr & pageMask
		p[o] = byte(v)
		p[o+1] = byte(v >> 8)
		return
	}
	m.Write8(addr, byte(v))
	m.Write8(addr+1, byte(v>>8))
}

// Read32 loads a little-endian 32-bit value.
func (m *Memory) Read32(addr uint64) uint32 {
	if addr&pageMask <= PageSize-4 {
		p := m.pageFor(addr)
		o := addr & pageMask
		return uint32(p[o]) | uint32(p[o+1])<<8 | uint32(p[o+2])<<16 | uint32(p[o+3])<<24
	}
	return uint32(m.Read16(addr)) | uint32(m.Read16(addr+2))<<16
}

// Write32 stores a little-endian 32-bit value.
func (m *Memory) Write32(addr uint64, v uint32) {
	if addr&pageMask <= PageSize-4 {
		p := m.pageFor(addr)
		o := addr & pageMask
		p[o] = byte(v)
		p[o+1] = byte(v >> 8)
		p[o+2] = byte(v >> 16)
		p[o+3] = byte(v >> 24)
		return
	}
	m.Write16(addr, uint16(v))
	m.Write16(addr+2, uint16(v>>16))
}

// Read64 loads a little-endian 64-bit value.
func (m *Memory) Read64(addr uint64) uint64 {
	if addr&pageMask <= PageSize-8 {
		p := m.pageFor(addr)
		o := addr & pageMask
		return uint64(p[o]) | uint64(p[o+1])<<8 | uint64(p[o+2])<<16 | uint64(p[o+3])<<24 |
			uint64(p[o+4])<<32 | uint64(p[o+5])<<40 | uint64(p[o+6])<<48 | uint64(p[o+7])<<56
	}
	return uint64(m.Read32(addr)) | uint64(m.Read32(addr+4))<<32
}

// Write64 stores a little-endian 64-bit value.
func (m *Memory) Write64(addr uint64, v uint64) {
	if addr&pageMask <= PageSize-8 {
		p := m.pageFor(addr)
		o := addr & pageMask
		p[o] = byte(v)
		p[o+1] = byte(v >> 8)
		p[o+2] = byte(v >> 16)
		p[o+3] = byte(v >> 24)
		p[o+4] = byte(v >> 32)
		p[o+5] = byte(v >> 40)
		p[o+6] = byte(v >> 48)
		p[o+7] = byte(v >> 56)
		return
	}
	m.Write32(addr, uint32(v))
	m.Write32(addr+4, uint32(v>>32))
}

// ReadBytes copies n bytes starting at addr into a fresh slice.
func (m *Memory) ReadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = m.Read8(addr + uint64(i))
	}
	return out
}

// WriteBytes stores b starting at addr.
func (m *Memory) WriteBytes(addr uint64, b []byte) {
	for i, v := range b {
		m.Write8(addr+uint64(i), v)
	}
}

// ReadFloat64 loads an IEEE-754 double.
func (m *Memory) ReadFloat64(addr uint64) float64 {
	return math.Float64frombits(m.Read64(addr))
}

// WriteFloat64 stores an IEEE-754 double.
func (m *Memory) WriteFloat64(addr uint64, v float64) {
	m.Write64(addr, math.Float64bits(v))
}

// String summarises the memory for debugging.
func (m *Memory) String() string {
	return fmt.Sprintf("mem{%d pages, %d KiB}", len(m.pages), m.Footprint()/1024)
}
