// Package mem implements the simulated physical memory: a sparse,
// page-granular, little-endian 64-bit address space shared by all harts.
// Functional state lives here; the cache models in internal/cache and
// internal/uncore are tag-only timing filters layered on top.
package mem

import (
	"encoding/binary"
	"fmt"
	"math"
)

// PageBits is log2 of the backing page size.
const PageBits = 12

// PageSize is the backing page size in bytes.
const PageSize = 1 << PageBits

const pageMask = PageSize - 1

// The lookaside is a direct-mapped table of page pointers indexed by page
// number. One entry is not enough: any access pattern touching two pages
// alternately (a matmul row walk against its output vector, a stack frame
// against a heap array) thrashes it and pays the map lookup on every
// access. 64 entries cover the working set of every kernel in the suite.
const (
	lookasideBits = 6
	lookasideSize = 1 << lookasideBits //coyote:mut-survivor equivalent: host-side memo capacity; entries are tag-checked, so size affects only lookup speed, never results
	lookasideMask = lookasideSize - 1
)

type lookEntry struct {
	base uint64
	p    *page
}

type page [PageSize]byte

// Memory is a sparse physical memory. The zero value is not usable; call
// New. Memory is not safe for concurrent mutation; the simulator core is
// single-threaded by design (see DESIGN.md §5).
type Memory struct {
	pages map[uint64]*page

	// direct-mapped lookaside to avoid a map hit on every access.
	look [lookasideSize]lookEntry
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{pages: make(map[uint64]*page)}
}

func (m *Memory) pageFor(addr uint64) *page {
	base := addr &^ pageMask
	e := &m.look[addr>>PageBits&lookasideMask]
	if e.p != nil && e.base == base {
		return e.p
	}
	p, ok := m.pages[base]
	if !ok {
		p = new(page) //coyote:alloc-ok first-touch page allocation; steady state hits resident pages via the lookaside
		m.pages[base] = p
	}
	e.base, e.p = base, p
	return p
}

// Pages returns the number of populated backing pages.
func (m *Memory) Pages() int { return len(m.pages) }

// Footprint returns the populated memory size in bytes.
func (m *Memory) Footprint() uint64 { return uint64(len(m.pages)) * PageSize }

// Reset drops all contents.
func (m *Memory) Reset() {
	m.pages = make(map[uint64]*page)
	m.look = [lookasideSize]lookEntry{}
}

// Read8 loads one byte.
func (m *Memory) Read8(addr uint64) uint8 {
	return m.pageFor(addr)[addr&pageMask]
}

// Write8 stores one byte.
func (m *Memory) Write8(addr uint64, v uint8) {
	m.pageFor(addr)[addr&pageMask] = v
}

// Read16 loads a little-endian 16-bit value (any alignment).
func (m *Memory) Read16(addr uint64) uint16 {
	if o := addr & pageMask; o <= PageSize-2 {
		p := m.pageFor(addr)
		return binary.LittleEndian.Uint16(p[o:])
	}
	return uint16(m.Read8(addr)) | uint16(m.Read8(addr+1))<<8
}

// Write16 stores a little-endian 16-bit value.
func (m *Memory) Write16(addr uint64, v uint16) {
	if o := addr & pageMask; o <= PageSize-2 {
		p := m.pageFor(addr)
		binary.LittleEndian.PutUint16(p[o:], v)
		return
	}
	m.Write8(addr, byte(v))
	m.Write8(addr+1, byte(v>>8))
}

// Read32 loads a little-endian 32-bit value.
func (m *Memory) Read32(addr uint64) uint32 {
	if o := addr & pageMask; o <= PageSize-4 {
		p := m.pageFor(addr)
		return binary.LittleEndian.Uint32(p[o:])
	}
	return uint32(m.Read16(addr)) | uint32(m.Read16(addr+2))<<16
}

// Write32 stores a little-endian 32-bit value.
func (m *Memory) Write32(addr uint64, v uint32) {
	if o := addr & pageMask; o <= PageSize-4 {
		p := m.pageFor(addr)
		binary.LittleEndian.PutUint32(p[o:], v)
		return
	}
	m.Write16(addr, uint16(v))
	m.Write16(addr+2, uint16(v>>16))
}

// Read64 loads a little-endian 64-bit value.
func (m *Memory) Read64(addr uint64) uint64 {
	if o := addr & pageMask; o <= PageSize-8 {
		p := m.pageFor(addr)
		return binary.LittleEndian.Uint64(p[o:])
	}
	return uint64(m.Read32(addr)) | uint64(m.Read32(addr+4))<<32
}

// Write64 stores a little-endian 64-bit value.
func (m *Memory) Write64(addr uint64, v uint64) {
	if o := addr & pageMask; o <= PageSize-8 {
		p := m.pageFor(addr)
		binary.LittleEndian.PutUint64(p[o:], v)
		return
	}
	m.Write32(addr, uint32(v))
	m.Write32(addr+4, uint32(v>>32))
}

// ReadBytes copies n bytes starting at addr into a fresh slice.
func (m *Memory) ReadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = m.Read8(addr + uint64(i))
	}
	return out
}

// WriteBytes stores b starting at addr.
func (m *Memory) WriteBytes(addr uint64, b []byte) {
	for i, v := range b {
		m.Write8(addr+uint64(i), v)
	}
}

// ReadFloat64 loads an IEEE-754 double.
func (m *Memory) ReadFloat64(addr uint64) float64 {
	return math.Float64frombits(m.Read64(addr))
}

// WriteFloat64 stores an IEEE-754 double.
func (m *Memory) WriteFloat64(addr uint64, v float64) {
	m.Write64(addr, math.Float64bits(v))
}

// String summarises the memory for debugging.
func (m *Memory) String() string {
	return fmt.Sprintf("mem{%d pages, %d KiB}", len(m.pages), m.Footprint()/1024)
}
