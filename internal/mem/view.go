package mem

import "encoding/binary"

// View is a read-only window onto a Memory that is safe to use from a
// worker goroutine while no goroutine mutates the Memory. Unlike the
// Memory accessors, a View never allocates backing pages (absent pages
// read as zero — the same value pageFor would return after allocating)
// and never touches the Memory's shared lookaside; each View carries its
// own. The parallel orchestrator gives every hart a private View for the
// speculative execution phase, during which all memory writes are
// buffered hart-side, so concurrent View reads race with nothing.
//
// A View must not be used across a Memory.Reset (the cached page pointers
// would go stale); the simulator never resets memory mid-run.
type View struct {
	m *Memory

	look [lookasideSize]lookEntry
}

// NewView returns a read-only view of m.
func (m *Memory) NewView() View { return View{m: m} }

// peek returns the backing page for addr without allocating; nil when the
// page is not populated. Absent pages are not cached so a later write
// through the owning Memory becomes visible to the view.
func (v *View) peek(addr uint64) *page {
	base := addr &^ pageMask
	e := &v.look[addr>>PageBits&lookasideMask]
	if e.p != nil && e.base == base {
		return e.p
	}
	p, ok := v.m.pages[base]
	if !ok {
		return nil
	}
	//coyote:specwrite-ok lookaside fill: caches a pointer to an existing page; memory contents are untouched and the entry is recomputed on demand
	e.base, e.p = base, p
	return p
}

// Read8 loads one byte.
func (v *View) Read8(addr uint64) uint8 {
	p := v.peek(addr)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// Read16 loads a little-endian 16-bit value (any alignment).
func (v *View) Read16(addr uint64) uint16 {
	if o := addr & pageMask; o <= PageSize-2 {
		p := v.peek(addr)
		if p == nil {
			return 0
		}
		return binary.LittleEndian.Uint16(p[o:])
	}
	return uint16(v.Read8(addr)) | uint16(v.Read8(addr+1))<<8
}

// Read32 loads a little-endian 32-bit value.
func (v *View) Read32(addr uint64) uint32 {
	if o := addr & pageMask; o <= PageSize-4 {
		p := v.peek(addr)
		if p == nil {
			return 0
		}
		return binary.LittleEndian.Uint32(p[o:])
	}
	return uint32(v.Read16(addr)) | uint32(v.Read16(addr+2))<<16
}

// Read64 loads a little-endian 64-bit value.
func (v *View) Read64(addr uint64) uint64 {
	if o := addr & pageMask; o <= PageSize-8 {
		p := v.peek(addr)
		if p == nil {
			return 0
		}
		return binary.LittleEndian.Uint64(p[o:])
	}
	return uint64(v.Read32(addr)) | uint64(v.Read32(addr+4))<<32
}
