package mem

// View is a read-only window onto a Memory that is safe to use from a
// worker goroutine while no goroutine mutates the Memory. Unlike the
// Memory accessors, a View never allocates backing pages (absent pages
// read as zero — the same value pageFor would return after allocating)
// and never touches the Memory's shared one-entry lookaside; each View
// carries its own. The parallel orchestrator gives every hart a private
// View for the speculative execution phase, during which all memory
// writes are buffered hart-side, so concurrent View reads race with
// nothing.
//
// A View must not be used across a Memory.Reset (the cached page pointer
// would go stale); the simulator never resets memory mid-run.
type View struct {
	m *Memory

	lastBase uint64
	lastPage *page
}

// NewView returns a read-only view of m.
func (m *Memory) NewView() View { return View{m: m} }

// peek returns the backing page for addr without allocating; nil when the
// page is not populated. Absent pages are not cached so a later write
// through the owning Memory becomes visible to the view.
func (v *View) peek(addr uint64) *page {
	base := addr &^ pageMask
	if v.lastPage != nil && base == v.lastBase {
		return v.lastPage
	}
	p, ok := v.m.pages[base]
	if !ok {
		return nil
	}
	v.lastBase, v.lastPage = base, p
	return p
}

// Read8 loads one byte.
func (v *View) Read8(addr uint64) uint8 {
	p := v.peek(addr)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// Read16 loads a little-endian 16-bit value (any alignment).
func (v *View) Read16(addr uint64) uint16 {
	if addr&pageMask <= PageSize-2 {
		p := v.peek(addr)
		if p == nil {
			return 0
		}
		o := addr & pageMask
		return uint16(p[o]) | uint16(p[o+1])<<8
	}
	return uint16(v.Read8(addr)) | uint16(v.Read8(addr+1))<<8
}

// Read32 loads a little-endian 32-bit value.
func (v *View) Read32(addr uint64) uint32 {
	if addr&pageMask <= PageSize-4 {
		p := v.peek(addr)
		if p == nil {
			return 0
		}
		o := addr & pageMask
		return uint32(p[o]) | uint32(p[o+1])<<8 | uint32(p[o+2])<<16 | uint32(p[o+3])<<24
	}
	return uint32(v.Read16(addr)) | uint32(v.Read16(addr+2))<<16
}

// Read64 loads a little-endian 64-bit value.
func (v *View) Read64(addr uint64) uint64 {
	if addr&pageMask <= PageSize-8 {
		p := v.peek(addr)
		if p == nil {
			return 0
		}
		o := addr & pageMask
		return uint64(p[o]) | uint64(p[o+1])<<8 | uint64(p[o+2])<<16 | uint64(p[o+3])<<24 |
			uint64(p[o+4])<<32 | uint64(p[o+5])<<40 | uint64(p[o+6])<<48 | uint64(p[o+7])<<56
	}
	return uint64(v.Read32(addr)) | uint64(v.Read32(addr+4))<<32
}
