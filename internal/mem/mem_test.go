package mem

import (
	"math"
	"testing"
	"testing/quick"
)

func TestReadWriteWidths(t *testing.T) {
	m := New()
	m.Write8(0x1000, 0xab)
	if got := m.Read8(0x1000); got != 0xab {
		t.Errorf("Read8 = %#x", got)
	}
	m.Write16(0x2000, 0xbeef)
	if got := m.Read16(0x2000); got != 0xbeef {
		t.Errorf("Read16 = %#x", got)
	}
	m.Write32(0x3000, 0xdeadbeef)
	if got := m.Read32(0x3000); got != 0xdeadbeef {
		t.Errorf("Read32 = %#x", got)
	}
	m.Write64(0x4000, 0x0123456789abcdef)
	if got := m.Read64(0x4000); got != 0x0123456789abcdef {
		t.Errorf("Read64 = %#x", got)
	}
}

func TestLittleEndianLayout(t *testing.T) {
	m := New()
	m.Write32(0x100, 0x04030201)
	for i, want := range []uint8{1, 2, 3, 4} {
		if got := m.Read8(0x100 + uint64(i)); got != want {
			t.Errorf("byte %d = %d, want %d", i, got, want)
		}
	}
}

func TestUnwrittenReadsZero(t *testing.T) {
	m := New()
	if got := m.Read64(0xdeadbeef000); got != 0 {
		t.Errorf("unwritten Read64 = %#x, want 0", got)
	}
}

func TestCrossPageAccess(t *testing.T) {
	m := New()
	addr := uint64(PageSize - 4) // 64-bit value straddling a page boundary
	m.Write64(addr, 0x1122334455667788)
	if got := m.Read64(addr); got != 0x1122334455667788 {
		t.Errorf("cross-page Read64 = %#x", got)
	}
	if m.Pages() != 2 {
		t.Errorf("Pages() = %d, want 2", m.Pages())
	}
}

func TestRoundTripProperty(t *testing.T) {
	m := New()
	f := func(addr uint64, v uint64) bool {
		addr %= 1 << 40 // keep the page map small
		m.Write64(addr, v)
		return m.Read64(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRead16CrossProperty(t *testing.T) {
	m := New()
	f := func(near uint16, v uint16) bool {
		// Exercise addresses clustered around page boundaries.
		addr := uint64(PageSize)*8 + uint64(near%8) - 4
		m.Write16(addr, v)
		return m.Read16(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat64(t *testing.T) {
	m := New()
	for _, v := range []float64{0, 1.5, -2.25, math.Pi, math.Inf(1)} {
		m.WriteFloat64(0x800, v)
		if got := m.ReadFloat64(0x800); got != v {
			t.Errorf("float round trip: got %v want %v", got, v)
		}
	}
	m.WriteFloat64(0x800, math.NaN())
	if got := m.ReadFloat64(0x800); !math.IsNaN(got) {
		t.Errorf("NaN round trip: got %v", got)
	}
}

func TestBytes(t *testing.T) {
	m := New()
	in := []byte{9, 8, 7, 6, 5}
	m.WriteBytes(0x10, in)
	out := m.ReadBytes(0x10, len(in))
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("byte %d: got %d want %d", i, out[i], in[i])
		}
	}
}

func TestReset(t *testing.T) {
	m := New()
	m.Write64(0x1000, 42)
	m.Reset()
	if m.Pages() != 0 || m.Read64(0x1000) != 0 {
		t.Error("Reset did not clear memory")
	}
}
