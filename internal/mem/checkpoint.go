package mem

import (
	"fmt"
	"sort"

	"github.com/coyote-sim/coyote/internal/ckpt"
)

// Checkpoint writes every populated page (sorted by base address so the
// encoding is canonical) to w. The lookaside is a pure memo and is not
// serialized.
func (m *Memory) Checkpoint(w *ckpt.Writer) {
	bases := make([]uint64, 0, len(m.pages))
	//coyote:mapiter-ok bases are sorted before serialization; the encoding is order-canonical
	for base := range m.pages {
		bases = append(bases, base)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	w.U64(uint64(len(bases)))
	for _, base := range bases {
		w.U64(base)
		w.Bytes64(m.pages[base][:])
	}
}

// Restore replaces the memory contents with the checkpointed pages.
func (m *Memory) Restore(r *ckpt.Reader) error {
	n := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	m.Reset()
	var last uint64
	for i := uint64(0); i < n; i++ {
		base := r.U64()
		data := r.Bytes64()
		if err := r.Err(); err != nil {
			return err
		}
		if base&pageMask != 0 {
			return fmt.Errorf("mem: checkpoint page base %#x is not page-aligned", base)
		}
		if i > 0 && base <= last {
			return fmt.Errorf("mem: checkpoint pages out of order at base %#x", base)
		}
		if len(data) != PageSize {
			return fmt.Errorf("mem: checkpoint page %#x has %d bytes, want %d", base, len(data), PageSize)
		}
		last = base
		p := new(page)
		copy(p[:], data)
		m.pages[base] = p
	}
	return nil
}
