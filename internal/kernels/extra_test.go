package kernels

import (
	"math"
	"testing"
)

func TestFFTReferenceMatchesDFT(t *testing.T) {
	// The host-side radix-2 reference must agree with a naive DFT.
	p := Params{N: 16, Seed: 9}.withDefaults()
	re, im := fftInput(p)
	gotRe, gotIm := fftRef(re, im)
	n := len(re)
	for k := 0; k < n; k++ {
		var wr, wi float64
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			c, s := math.Cos(ang), math.Sin(ang)
			wr += re[j]*c - im[j]*s
			wi += re[j]*s + im[j]*c
		}
		if math.Abs(gotRe[k]-wr) > 1e-9 || math.Abs(gotIm[k]-wi) > 1e-9 {
			t.Fatalf("bin %d: got (%v,%v), DFT (%v,%v)", k, gotRe[k], gotIm[k], wr, wi)
		}
	}
}

func TestBitrev(t *testing.T) {
	cases := []struct{ in, bits, want int }{
		{0, 3, 0}, {1, 3, 4}, {2, 3, 2}, {3, 3, 6},
		{4, 3, 1}, {5, 3, 5}, {6, 3, 3}, {7, 3, 7},
		{1, 4, 8},
	}
	for _, c := range cases {
		if got := bitrev(c.in, c.bits); got != c.want {
			t.Errorf("bitrev(%d,%d) = %d, want %d", c.in, c.bits, got, c.want)
		}
	}
	// Property: bitrev is an involution.
	for i := 0; i < 256; i++ {
		if bitrev(bitrev(i, 8), 8) != i {
			t.Fatalf("bitrev not involutive at %d", i)
		}
	}
}

func TestFFTSize(t *testing.T) {
	for _, c := range []struct{ in, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {24, 32}, {64, 64}, {65, 128},
	} {
		if got := fftSize(c.in); got != c.want {
			t.Errorf("fftSize(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestFFTCoreCountInvariance: the barrier-synchronised multicore FFT must
// produce the same spectrum at every core count.
func TestFFTCoreCountInvariance(t *testing.T) {
	// The verifier already compares against the host reference; running
	// at several core counts proves the stage barriers are correct.
	for _, cores := range []int{1, 2, 4, 8} {
		res := runKernel(t, "fft-scalar", Params{N: 64, Cores: cores, Seed: 5})
		if res.Instructions == 0 {
			t.Fatalf("%d cores: nothing ran", cores)
		}
	}
}

func TestHistogramContention(t *testing.T) {
	// All harts hammering 64 shared bins with amoadd must still count
	// exactly (functional memory is shared); more cores, same totals.
	runKernel(t, "histogram-atomic", Params{N: 4096, Cores: 8, Seed: 3})
}

func TestStreamCopyBandwidthBound(t *testing.T) {
	res := runKernel(t, "copy-vector", Params{N: 8192, Cores: 4})
	// A pure copy moves 2 lines per 8 elements: misses should dominate
	// relative to compute (very high stall fraction).
	if res.TotalStalls() < res.Cycles/4 {
		t.Errorf("copy should be memory bound: stalls %d of %d hart-cycles",
			res.TotalStalls(), res.Cycles)
	}
}
