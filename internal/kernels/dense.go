package kernels

import (
	"math/rand"

	"github.com/coyote-sim/coyote/internal/mem"
)

// Dense kernels: matmul (scalar + vector), axpy (scalar + vector) and the
// 2D 5-point stencil (scalar + vector). Work is partitioned over harts by
// round-robin rows (matmul/stencil/scalar axpy) or contiguous chunks
// (vector axpy), with the hart count passed through the args block.

// matmul argument block: 0 A, 8 B, 16 C, 24 n, 32 ncores.
func matmulSetup(m *mem.Memory, args uint64, p Params) {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	n := p.N
	a := randMatrix(rng, n, n)
	b := randMatrix(rng, n, n)
	h := newHeap()
	aAddr := h.alloc(8 * n * n)
	bAddr := h.alloc(8 * n * n)
	cAddr := h.alloc(8 * n * n)
	writeF64s(m, aAddr, a)
	writeF64s(m, bAddr, b)
	writeU64s(m, args, []uint64{aAddr, bAddr, cAddr, uint64(n), uint64(p.Cores)})
}

func matmulVerify(m *mem.Memory, args uint64, p Params) error {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	n := p.N
	a := randMatrix(rng, n, n)
	b := randMatrix(rng, n, n)
	want := matmulRef(a, b, n)
	cAddr := m.Read64(args + 16)
	return compare("C", readF64s(m, cAddr, n*n), want)
}

const matmulScalarSrc = `
# C = A x B, doubles, row i handled by hart (i mod ncores).
_start:
	la   s0, args
	ld   s1, 0(s0)      # A
	ld   s2, 8(s0)      # B
	ld   s3, 16(s0)     # C
	ld   s4, 24(s0)     # n
	ld   s5, 32(s0)     # ncores
	csrr s6, mhartid
	slli s7, s4, 3      # row stride in bytes
	mv   t0, s6         # i
mm_row:
	bge  t0, s4, mm_exit
	li   t1, 0          # j
mm_col:
	bge  t1, s4, mm_nextrow
	fmv.d.x fa0, zero   # acc = 0
	mul  t3, t0, s4
	slli t3, t3, 3
	add  t3, s1, t3     # &A[i][0]
	slli t4, t1, 3
	add  t4, s2, t4     # &B[0][j]
	li   t2, 0          # k
mm_k:
	bge  t2, s4, mm_kdone
	fld  fa1, 0(t3)
	fld  fa2, 0(t4)
	fmadd.d fa0, fa1, fa2, fa0
	addi t3, t3, 8
	add  t4, t4, s7
	addi t2, t2, 1
	j    mm_k
mm_kdone:
	mul  t5, t0, s4
	add  t5, t5, t1
	slli t5, t5, 3
	add  t5, s3, t5
	fsd  fa0, 0(t5)
	addi t1, t1, 1
	j    mm_col
mm_nextrow:
	add  t0, t0, s5
	j    mm_row
mm_exit:
` + exitSeq + argsBlock

const matmulVectorSrc = `
# C = A x B vectorised across columns: C[i][j:j+vl] += A[i][k]*B[k][j:j+vl].
_start:
	la   s0, args
	ld   s1, 0(s0)
	ld   s2, 8(s0)
	ld   s3, 16(s0)
	ld   s4, 24(s0)      # n
	ld   s5, 32(s0)      # ncores
	csrr s6, mhartid
	slli s7, s4, 3
	mv   t0, s6          # i
vmm_row:
	bge  t0, s4, vmm_exit
	li   t1, 0           # j
vmm_col:
	bge  t1, s4, vmm_nextrow
	sub  t2, s4, t1
	vsetvli t3, t2, e64, m1, ta, ma
	vmv.v.i v8, 0        # acc strip
	mul  t4, t0, s4
	slli t4, t4, 3
	add  t4, s1, t4      # &A[i][0]
	slli t5, t1, 3
	add  t5, s2, t5      # &B[0][j]
	li   t6, 0           # k
vmm_k:
	bge  t6, s4, vmm_kdone
	fld  fa0, 0(t4)
	vle64.v v1, (t5)
	vfmacc.vf v8, fa0, v1
	addi t4, t4, 8
	add  t5, t5, s7
	addi t6, t6, 1
	j    vmm_k
vmm_kdone:
	mul  s8, t0, s4
	add  s8, s8, t1
	slli s8, s8, 3
	add  s8, s3, s8
	vse64.v v8, (s8)
	add  t1, t1, t3
	j    vmm_col
vmm_nextrow:
	add  t0, t0, s5
	j    vmm_row
vmm_exit:
` + exitSeq + argsBlock

// axpy argument block: 0 x, 8 y, 16 n, 24 ncores, 32 a (double).
func axpySetup(m *mem.Memory, args uint64, p Params) {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	n := p.N
	x := randVector(rng, n)
	y := randVector(rng, n)
	h := newHeap()
	xAddr := h.alloc(8 * n)
	yAddr := h.alloc(8 * n)
	writeF64s(m, xAddr, x)
	writeF64s(m, yAddr, y)
	writeU64s(m, args, []uint64{xAddr, yAddr, uint64(n), uint64(p.Cores)})
	m.WriteFloat64(args+32, 2.5)
}

func axpyVerify(m *mem.Memory, args uint64, p Params) error {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	n := p.N
	x := randVector(rng, n)
	want := randVector(rng, n)
	for i := range want {
		want[i] += 2.5 * x[i]
	}
	yAddr := m.Read64(args + 8)
	return compare("y", readF64s(m, yAddr, n), want)
}

const axpyScalarSrc = `
# y[i] += a*x[i], element i on hart (i mod ncores).
_start:
	la   s0, args
	ld   s1, 0(s0)
	ld   s2, 8(s0)
	ld   s3, 16(s0)
	ld   s4, 24(s0)
	fld  fa0, 32(s0)
	csrr t0, mhartid
ax_loop:
	bge  t0, s3, ax_exit
	slli t1, t0, 3
	add  t2, s1, t1
	add  t3, s2, t1
	fld  fa1, 0(t2)
	fld  fa2, 0(t3)
	fmadd.d fa3, fa0, fa1, fa2
	fsd  fa3, 0(t3)
	add  t0, t0, s4
	j    ax_loop
ax_exit:
` + exitSeq + argsBlock

const axpyVectorSrc = `
# y[lo:hi] += a*x[lo:hi] in contiguous per-hart chunks, strip-mined.
_start:
	la   s0, args
	ld   s1, 0(s0)
	ld   s2, 8(s0)
	ld   s3, 16(s0)       # n
	ld   s4, 24(s0)       # ncores
	fld  fa0, 32(s0)
	csrr t0, mhartid
	add  t1, s3, s4
	addi t1, t1, -1
	divu t1, t1, s4       # chunk = ceil(n/ncores)
	mul  t2, t0, t1       # lo
	add  t3, t2, t1       # hi
	ble  t3, s3, axv_go
	mv   t3, s3
axv_go:
	bge  t2, t3, axv_exit
	sub  t4, t3, t2
	vsetvli t5, t4, e64, m1, ta, ma
	slli t6, t2, 3
	add  s5, s1, t6
	add  s6, s2, t6
	vle64.v v1, (s5)
	vle64.v v2, (s6)
	vfmacc.vf v2, fa0, v1
	vse64.v v2, (s6)
	add  t2, t2, t5
	j    axv_go
axv_exit:
` + exitSeq + argsBlock

// stencil argument block: 0 in, 8 out, 16 n, 24 ncores, 32 c0, 40 c1.
const stencilC0 = 0.5
const stencilC1 = 0.125

func stencilSetup(m *mem.Memory, args uint64, p Params) {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	n := p.N
	in := randMatrix(rng, n, n)
	h := newHeap()
	inAddr := h.alloc(8 * n * n)
	outAddr := h.alloc(8 * n * n)
	writeF64s(m, inAddr, in)
	writeF64s(m, outAddr, in) // boundary cells keep their input values
	writeU64s(m, args, []uint64{inAddr, outAddr, uint64(n), uint64(p.Cores)})
	m.WriteFloat64(args+32, stencilC0)
	m.WriteFloat64(args+40, stencilC1)
}

func stencilRef(in []float64, n int) []float64 {
	out := make([]float64, n*n)
	copy(out, in)
	for i := 1; i < n-1; i++ {
		for j := 1; j < n-1; j++ {
			sum := in[i*n+j-1] + in[i*n+j+1] + in[(i-1)*n+j] + in[(i+1)*n+j]
			out[i*n+j] = stencilC0*in[i*n+j] + stencilC1*sum
		}
	}
	return out
}

func stencilVerify(m *mem.Memory, args uint64, p Params) error {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	n := p.N
	in := randMatrix(rng, n, n)
	want := stencilRef(in, n)
	outAddr := m.Read64(args + 8)
	return compare("out", readF64s(m, outAddr, n*n), want)
}

const stencilScalarSrc = `
# out[i][j] = c0*in[i][j] + c1*(l+r+u+d), interior rows round-robin.
_start:
	la   s0, args
	ld   s1, 0(s0)
	ld   s2, 8(s0)
	ld   s3, 16(s0)     # n
	ld   s4, 24(s0)     # ncores
	fld  fa0, 32(s0)    # c0
	fld  fa1, 40(s0)    # c1
	csrr s6, mhartid
	slli s7, s3, 3      # row stride
	addi s8, s3, -1     # n-1
	addi t0, s6, 1      # i
sst_row:
	bge  t0, s8, sst_exit
	li   t1, 1          # j
sst_col:
	bge  t1, s8, sst_nextrow
	mul  t2, t0, s3
	add  t2, t2, t1
	slli t2, t2, 3
	add  t3, s1, t2     # &in[i][j]
	fld  fa2, 0(t3)     # c
	fld  fa3, -8(t3)    # l
	fld  fa4, 8(t3)     # r
	sub  t4, t3, s7
	fld  fa5, 0(t4)     # u
	add  t4, t3, s7
	fld  fa6, 0(t4)     # d
	fadd.d fa3, fa3, fa4
	fadd.d fa3, fa3, fa5
	fadd.d fa3, fa3, fa6
	fmul.d fa7, fa2, fa0
	fmadd.d fa7, fa1, fa3, fa7
	add  t4, s2, t2
	fsd  fa7, 0(t4)
	addi t1, t1, 1
	j    sst_col
sst_nextrow:
	add  t0, t0, s4
	j    sst_row
sst_exit:
` + exitSeq + argsBlock

const stencilVectorSrc = `
# Vector 5-point stencil: columns strip-mined, interior rows round-robin.
_start:
	la   s0, args
	ld   s1, 0(s0)
	ld   s2, 8(s0)
	ld   s3, 16(s0)
	ld   s4, 24(s0)
	fld  fa0, 32(s0)
	fld  fa1, 40(s0)
	csrr s6, mhartid
	slli s7, s3, 3
	addi s8, s3, -1
	addi t0, s6, 1
vst_row:
	bge  t0, s8, vst_exit
	li   t1, 1
vst_col:
	bge  t1, s8, vst_nextrow
	sub  t2, s8, t1
	vsetvli t3, t2, e64, m1, ta, ma
	mul  t4, t0, s3
	add  t4, t4, t1
	slli t4, t4, 3
	add  t5, s1, t4      # &in[i][j]
	vle64.v v1, (t5)     # centre
	addi t6, t5, -8
	vle64.v v2, (t6)     # left
	addi t6, t5, 8
	vle64.v v3, (t6)     # right
	sub  t6, t5, s7
	vle64.v v4, (t6)     # up
	add  t6, t5, s7
	vle64.v v5, (t6)     # down
	vfadd.vv v2, v2, v3
	vfadd.vv v2, v2, v4
	vfadd.vv v2, v2, v5
	vfmul.vf v6, v1, fa0
	vfmacc.vf v6, fa1, v2
	add  t6, s2, t4
	vse64.v v6, (t6)
	add  t1, t1, t3
	j    vst_col
vst_nextrow:
	add  t0, t0, s4
	j    vst_row
vst_exit:
` + exitSeq + argsBlock

func init() {
	register(&Kernel{
		Name:        "matmul-scalar",
		Description: "scalar dense matrix multiplication (Figure 3 workload)",
		Source:      matmulScalarSrc,
		Setup:       matmulSetup,
		Verify:      matmulVerify,
	})
	register(&Kernel{
		Name:        "matmul-vector",
		Description: "vector dense matrix multiplication (vfmacc over column strips)",
		Vector:      true,
		Source:      matmulVectorSrc,
		Setup:       matmulSetup,
		Verify:      matmulVerify,
	})
	register(&Kernel{
		Name:        "axpy-scalar",
		Description: "scalar daxpy",
		Source:      axpyScalarSrc,
		Setup:       axpySetup,
		Verify:      axpyVerify,
	})
	register(&Kernel{
		Name:        "axpy-vector",
		Description: "vector daxpy (quickstart kernel)",
		Vector:      true,
		Source:      axpyVectorSrc,
		Setup:       axpySetup,
		Verify:      axpyVerify,
	})
	register(&Kernel{
		Name:        "stencil-scalar",
		Description: "scalar 2D 5-point stencil",
		Source:      stencilScalarSrc,
		Setup:       stencilSetup,
		Verify:      stencilVerify,
	})
	register(&Kernel{
		Name:        "stencil-vector",
		Description: "vector 2D 5-point stencil (paper kernel)",
		Vector:      true,
		Source:      stencilVectorSrc,
		Setup:       stencilSetup,
		Verify:      stencilVerify,
	})
}
