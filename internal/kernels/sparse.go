package kernels

import (
	"math/rand"

	"github.com/coyote-sim/coyote/internal/mem"
)

// Sparse kernels: CSR SpMV in scalar form plus the paper's "three
// different implementations" of vector SpMV:
//
//   spmv-vector-gather — CSR, one row at a time, indexed loads (gather) of
//     x and an ordered reduction per strip (LMUL=1).
//   spmv-vector-wide   — the same algorithm with LMUL=4 register groups:
//     longer strips, fewer instructions, burstier gathers.
//   spmv-vector-ell    — ELLPACK, vectorised *across rows*: each lane owns
//     a row, padding contributes zero.
//
// CSR argument block: 0 rowptr, 8 col, 16 val, 24 x, 32 y, 40 nrows,
// 48 ncores. ELL argument block: 0 val, 8 col, 16 x, 24 y, 32 nrows,
// 40 width, 48 ncores.

func csrSetup(m *mem.Memory, args uint64, p Params) {
	p = p.withDefaults()
	a := RandCSR(p.N, p.Density, p.Seed)
	x := randVector(randFor(p), p.N)
	h := newHeap()
	rowptrAddr := h.alloc(8 * (a.N + 1))
	colAddr := h.alloc(8 * a.NNZ())
	valAddr := h.alloc(8 * a.NNZ())
	xAddr := h.alloc(8 * p.N)
	yAddr := h.alloc(8 * p.N)
	writeU64s(m, rowptrAddr, a.RowPtr)
	writeU64s(m, colAddr, a.Col)
	writeF64s(m, valAddr, a.Val)
	writeF64s(m, xAddr, x)
	writeU64s(m, args, []uint64{
		rowptrAddr, colAddr, valAddr, xAddr, yAddr,
		uint64(p.N), uint64(p.Cores),
	})
}

func csrVerify(m *mem.Memory, args uint64, p Params) error {
	p = p.withDefaults()
	a := RandCSR(p.N, p.Density, p.Seed)
	x := randVector(randFor(p), p.N)
	want := a.SpMV(x)
	yAddr := m.Read64(args + 32)
	return compare("y", readF64s(m, yAddr, p.N), want)
}

func ellSetup(m *mem.Memory, args uint64, p Params) {
	p = p.withDefaults()
	a := RandCSR(p.N, p.Density, p.Seed)
	val, col, width := a.ToELL()
	x := randVector(randFor(p), p.N)
	h := newHeap()
	valAddr := h.alloc(8 * len(val))
	colAddr := h.alloc(8 * len(col))
	xAddr := h.alloc(8 * p.N)
	yAddr := h.alloc(8 * p.N)
	writeF64s(m, valAddr, val)
	writeU64s(m, colAddr, col)
	writeF64s(m, xAddr, x)
	writeU64s(m, args, []uint64{
		valAddr, colAddr, xAddr, yAddr,
		uint64(p.N), uint64(width), uint64(p.Cores),
	})
}

func ellVerify(m *mem.Memory, args uint64, p Params) error {
	p = p.withDefaults()
	a := RandCSR(p.N, p.Density, p.Seed)
	x := randVector(randFor(p), p.N)
	want := a.SpMV(x)
	yAddr := m.Read64(args + 24)
	return compare("y", readF64s(m, yAddr, p.N), want)
}

const spmvScalarSrc = `
# y = A*x, CSR, rows round-robin across harts (Figure 3 workload).
_start:
	la   s0, args
	ld   s1, 0(s0)       # rowptr
	ld   s2, 8(s0)       # col
	ld   s3, 16(s0)      # val
	ld   s4, 24(s0)      # x
	ld   s5, 32(s0)      # y
	ld   s6, 40(s0)      # nrows
	ld   s7, 48(s0)      # ncores
	csrr t0, mhartid
ssp_row:
	bge  t0, s6, ssp_exit
	slli t1, t0, 3
	add  t2, s1, t1
	ld   t3, 0(t2)       # j = rowptr[i]
	ld   t4, 8(t2)       # end = rowptr[i+1]
	fmv.d.x fa0, zero
ssp_nnz:
	bge  t3, t4, ssp_store
	slli t5, t3, 3
	add  t6, s2, t5
	ld   s8, 0(t6)       # col[j]
	add  s9, s3, t5
	fld  fa1, 0(s9)      # val[j]
	slli s8, s8, 3
	add  s8, s4, s8
	fld  fa2, 0(s8)      # x[col[j]]
	fmadd.d fa0, fa1, fa2, fa0
	addi t3, t3, 1
	j    ssp_nnz
ssp_store:
	slli t1, t0, 3
	add  t2, s5, t1
	fsd  fa0, 0(t2)
	add  t0, t0, s7
	j    ssp_row
ssp_exit:
` + exitSeq + argsBlock

const spmvGatherSrc = `
# Vector CSR SpMV: per row, strip-mine nonzeros; gather x via vluxei64 and
# reduce with vfredusum (LMUL=1).
_start:
	la   s0, args
	ld   s1, 0(s0)
	ld   s2, 8(s0)
	ld   s3, 16(s0)
	ld   s4, 24(s0)
	ld   s5, 32(s0)
	ld   s6, 40(s0)
	ld   s7, 48(s0)
	csrr t0, mhartid
vsp_row:
	bge  t0, s6, vsp_exit
	slli t1, t0, 3
	add  t2, s1, t1
	ld   t3, 0(t2)       # j
	ld   t4, 8(t2)       # end
	li   t5, 1
	vsetvli zero, t5, e64, m1, ta, ma
	vmv.s.x v8, zero     # accumulator element
vsp_strip:
	bge  t3, t4, vsp_store
	sub  t5, t4, t3
	vsetvli t6, t5, e64, m1, ta, ma
	slli s8, t3, 3
	add  s9, s3, s8
	vle64.v v1, (s9)         # vals
	add  s9, s2, s8
	vle64.v v2, (s9)         # column indices
	vsll.vi v2, v2, 3        # byte offsets
	vluxei64.v v3, (s4), v2  # gather x
	vfmul.vv v4, v1, v3
	vfredusum.vs v8, v4, v8
	add  t3, t3, t6
	j    vsp_strip
vsp_store:
	vfmv.f.s fa0, v8
	slli t1, t0, 3
	add  t2, s5, t1
	fsd  fa0, 0(t2)
	add  t0, t0, s7
	j    vsp_row
vsp_exit:
` + exitSeq + argsBlock

const spmvWideSrc = `
# Vector CSR SpMV with LMUL=4 register groups: the same gather+reduce
# algorithm with 4x longer strips.
_start:
	la   s0, args
	ld   s1, 0(s0)
	ld   s2, 8(s0)
	ld   s3, 16(s0)
	ld   s4, 24(s0)
	ld   s5, 32(s0)
	ld   s6, 40(s0)
	ld   s7, 48(s0)
	csrr t0, mhartid
wsp_row:
	bge  t0, s6, wsp_exit
	slli t1, t0, 3
	add  t2, s1, t1
	ld   t3, 0(t2)
	ld   t4, 8(t2)
	li   t5, 1
	vsetvli zero, t5, e64, m1, ta, ma
	vmv.s.x v1, zero
wsp_strip:
	bge  t3, t4, wsp_store
	sub  t5, t4, t3
	vsetvli t6, t5, e64, m4, ta, ma
	slli s8, t3, 3
	add  s9, s3, s8
	vle64.v v4, (s9)
	add  s9, s2, s8
	vle64.v v8, (s9)
	vsll.vi v8, v8, 3
	vluxei64.v v12, (s4), v8
	vfmul.vv v16, v4, v12
	vfredusum.vs v1, v16, v1
	add  t3, t3, t6
	j    wsp_strip
wsp_store:
	li   t5, 1
	vsetvli zero, t5, e64, m1, ta, ma
	vfmv.f.s fa0, v1
	slli t1, t0, 3
	add  t2, s5, t1
	fsd  fa0, 0(t2)
	add  t0, t0, s7
	j    wsp_row
wsp_exit:
` + exitSeq + argsBlock

const spmvEllSrc = `
# Vector ELL SpMV: lanes own rows; per diagonal k, gather x[col[k][lane]]
# and vfmacc into the per-lane accumulator. Contiguous row chunks per hart.
_start:
	la   s0, args
	ld   s1, 0(s0)       # ellval (column-major)
	ld   s2, 8(s0)       # ellcol
	ld   s3, 16(s0)      # x
	ld   s4, 24(s0)      # y
	ld   s5, 32(s0)      # nrows
	ld   s6, 40(s0)      # width
	ld   s7, 48(s0)      # ncores
	csrr t0, mhartid
	add  t1, s5, s7
	addi t1, t1, -1
	divu t1, t1, s7      # chunk = ceil(nrows/ncores)
	mul  t2, t0, t1      # lo
	add  t3, t2, t1      # hi
	ble  t3, s5, esp_clamped
	mv   t3, s5
esp_clamped:
	slli s8, s5, 3       # diagonal stride = nrows*8
esp_strip:
	bge  t2, t3, esp_exit
	sub  t4, t3, t2
	vsetvli t5, t4, e64, m1, ta, ma
	vmv.v.i v8, 0
	li   t6, 0           # k
	slli s9, t2, 3
	add  s10, s1, s9     # &val[k=0][lo]
	add  s11, s2, s9     # &col[k=0][lo]
esp_k:
	bge  t6, s6, esp_kdone
	vle64.v v1, (s10)
	vle64.v v2, (s11)
	vsll.vi v2, v2, 3
	vluxei64.v v3, (s3), v2
	vfmacc.vv v8, v1, v3
	add  s10, s10, s8
	add  s11, s11, s8
	addi t6, t6, 1
	j    esp_k
esp_kdone:
	slli s9, t2, 3
	add  s9, s4, s9
	vse64.v v8, (s9)
	add  t2, t2, t5
	j    esp_strip
esp_exit:
` + exitSeq + argsBlock

func init() {
	register(&Kernel{
		Name:        "spmv-scalar",
		Description: "scalar CSR sparse matrix-vector multiply (Figure 3 workload)",
		Source:      spmvScalarSrc,
		Setup:       csrSetup,
		Verify:      csrVerify,
	})
	register(&Kernel{
		Name:        "spmv-vector-gather",
		Description: "vector CSR SpMV: gather + reduction per row (LMUL=1)",
		Vector:      true,
		Source:      spmvGatherSrc,
		Setup:       csrSetup,
		Verify:      csrVerify,
	})
	register(&Kernel{
		Name:        "spmv-vector-wide",
		Description: "vector CSR SpMV with LMUL=4 register groups",
		Vector:      true,
		Source:      spmvWideSrc,
		Setup:       csrSetup,
		Verify:      csrVerify,
	})
	register(&Kernel{
		Name:        "spmv-vector-ell",
		Description: "vector ELLPACK SpMV: rows across lanes",
		Vector:      true,
		Source:      spmvEllSrc,
		Setup:       ellSetup,
		Verify:      ellVerify,
	})
}

// randFor builds the x-vector RNG; a distinct stream from the matrix so
// Setup/Verify stay in sync without regenerating the matrix first.
func randFor(p Params) *rand.Rand { return rand.New(rand.NewSource(p.Seed + 1)) }
