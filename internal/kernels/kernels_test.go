package kernels

import (
	"testing"

	"github.com/coyote-sim/coyote/internal/asm"
	"github.com/coyote-sim/coyote/internal/core"
)

// runKernel assembles, sets up, simulates and verifies one kernel.
func runKernel(t *testing.T, name string, p Params) *core.Result {
	t.Helper()
	k, err := Get(name)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(k.Source)
	if err != nil {
		t.Fatalf("%s: assemble: %v", name, err)
	}
	cfg := core.DefaultConfig(p.Cores)
	sys, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.LoadProgram(prog)
	args := sys.MustSymbol("args")
	k.Setup(sys.Mem, args, p)
	res, err := sys.Run()
	if err != nil {
		t.Fatalf("%s: run: %v", name, err)
	}
	if err := k.Verify(sys.Mem, args, p); err != nil {
		t.Fatalf("%s: verify: %v", name, err)
	}
	return res
}

func TestAllKernelsAssemble(t *testing.T) {
	for _, name := range Names() {
		k, _ := Get(name)
		if _, err := asm.Assemble(k.Source); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestRegistry(t *testing.T) {
	if len(Names()) < 10 {
		t.Errorf("expected ≥10 kernels, have %v", Names())
	}
	if _, err := Get("nonexistent"); err == nil {
		t.Error("Get(nonexistent) should fail")
	}
	for _, name := range Names() {
		k, err := Get(name)
		if err != nil || k.Name != name || k.Description == "" {
			t.Errorf("registry entry %q broken", name)
		}
	}
}

func TestKernelsSingleCore(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			res := runKernel(t, name, Params{N: 24, Cores: 1, Seed: 7})
			if res.Instructions == 0 {
				t.Error("no instructions executed")
			}
		})
	}
}

func TestKernelsFourCores(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			res := runKernel(t, name, Params{N: 24, Cores: 4, Seed: 11})
			// All four harts must participate for N >> cores.
			for i, hs := range res.HartStats {
				if hs.Instret == 0 {
					t.Errorf("hart %d retired nothing", i)
				}
			}
		})
	}
}

func TestVectorKernelsUseVectorUnit(t *testing.T) {
	for _, name := range Names() {
		k, _ := Get(name)
		res := runKernel(t, name, Params{N: 24, Cores: 1, Seed: 3})
		hasVec := res.HartStats[0].VectorOps > 0
		if k.Vector && !hasVec {
			t.Errorf("%s claims vector but retired no vector ops", name)
		}
		if !k.Vector && hasVec {
			t.Errorf("%s claims scalar but retired vector ops", name)
		}
	}
}

func TestVectorFewerInstructionsThanScalar(t *testing.T) {
	scalar := runKernel(t, "matmul-scalar", Params{N: 32, Cores: 1})
	vector := runKernel(t, "matmul-vector", Params{N: 32, Cores: 1})
	if vector.Instructions >= scalar.Instructions {
		t.Errorf("vector matmul %d instrs, scalar %d — vectorisation should shrink the count",
			vector.Instructions, scalar.Instructions)
	}
}

func TestSpMVVariantsAgree(t *testing.T) {
	// All four SpMV implementations verified against the same reference;
	// this test additionally checks they do substantially different work.
	p := Params{N: 64, Cores: 2, Density: 0.05, Seed: 13}
	scalar := runKernel(t, "spmv-scalar", p)
	gather := runKernel(t, "spmv-vector-gather", p)
	wide := runKernel(t, "spmv-vector-wide", p)
	ell := runKernel(t, "spmv-vector-ell", p)
	if gather.Instructions >= scalar.Instructions {
		t.Errorf("gather SpMV should retire fewer instructions than scalar (%d vs %d)",
			gather.Instructions, scalar.Instructions)
	}
	// LMUL=4 reduces strip count further on wide rows. With density 0.05
	// and N=64 rows are short, so just require it to be valid & distinct.
	if wide.Instructions == gather.Instructions {
		t.Log("wide and gather retired identical instruction counts (short rows)")
	}
	if ell.Instructions == 0 {
		t.Error("ell ran nothing")
	}
}

func TestCSRGenerator(t *testing.T) {
	c := RandCSR(100, 0.05, 1)
	if c.N != 100 || len(c.RowPtr) != 101 {
		t.Fatalf("bad shape: %+v", c)
	}
	perRow := 5
	if c.NNZ() != 100*perRow {
		t.Errorf("nnz = %d, want %d", c.NNZ(), 100*perRow)
	}
	for i := 0; i < c.N; i++ {
		prev := int64(-1)
		for j := c.RowPtr[i]; j < c.RowPtr[i+1]; j++ {
			if int64(c.Col[j]) <= prev {
				t.Fatalf("row %d columns not strictly increasing", i)
			}
			prev = int64(c.Col[j])
			if c.Col[j] >= uint64(c.N) {
				t.Fatalf("column out of range")
			}
		}
	}
	// Determinism.
	c2 := RandCSR(100, 0.05, 1)
	if c2.NNZ() != c.NNZ() || c2.Col[10] != c.Col[10] {
		t.Error("generator not deterministic")
	}
	c3 := RandCSR(100, 0.05, 2)
	same := true
	for i := range c.Col {
		if c.Col[i] != c3.Col[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds gave identical matrices")
	}
}

func TestELLConversion(t *testing.T) {
	c := RandCSR(32, 0.1, 5)
	val, col, width := c.ToELL()
	if width != c.MaxRowNNZ() {
		t.Errorf("width %d != max row %d", width, c.MaxRowNNZ())
	}
	if len(val) != width*c.N || len(col) != width*c.N {
		t.Fatal("bad ELL size")
	}
	// ELL must compute the same SpMV as CSR.
	x := make([]float64, c.N)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	want := c.SpMV(x)
	got := make([]float64, c.N)
	for i := 0; i < c.N; i++ {
		for k := 0; k < width; k++ {
			got[i] += val[k*c.N+i] * x[col[k*c.N+i]]
		}
	}
	if err := compare("ell-spmv", got, want); err != nil {
		t.Error(err)
	}
}

func TestGatherHasWorseLocality(t *testing.T) {
	// The core claim Coyote is built to study: sparse gathers produce far
	// more L1 misses per retired instruction than dense streaming.
	p := Params{N: 96, Cores: 1, Density: 0.08, Seed: 17}
	dense := runKernel(t, "matmul-vector", Params{N: 32, Cores: 1, Seed: 17})
	sparse := runKernel(t, "spmv-vector-gather", p)
	denseRate := float64(dense.L1D.Misses) / float64(dense.Instructions)
	sparseRate := float64(sparse.L1D.Misses) / float64(sparse.Instructions)
	if sparseRate <= denseRate {
		t.Errorf("gather miss rate/instr %.4f should exceed dense %.4f",
			sparseRate, denseRate)
	}
}

func TestParamDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	if p.N == 0 || p.Cores == 0 || p.Density == 0 || p.Seed == 0 {
		t.Errorf("defaults not applied: %+v", p)
	}
}
