// Package kernels provides the bare-metal workloads the paper runs on
// Coyote (§III-A): scalar and vector matrix multiplication, scalar SpMV,
// three vector SpMV implementations, and a vector stencil — plus axpy
// kernels used by the quickstart. Each kernel is genuine RISC-V assembly
// assembled by internal/asm; data is generated deterministically by the
// host and placed in simulated memory, with pointers passed through an
// argument block at the "args" symbol. All kernels partition work across
// harts via the mhartid CSR and exit through the bare-metal exit ecall,
// the same environment Spike's bare-metal mode gives Coyote.
package kernels

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/coyote-sim/coyote/internal/mem"
)

// Params parameterises a kernel run.
type Params struct {
	N       int     // problem order (matrix dimension / vector length / grid side)
	Cores   int     // number of harts executing the kernel
	Density float64 // nonzero fraction per row for SpMV (default 0.02)
	Seed    int64   // data generator seed
}

// WithDefaults fills unset fields — the canonicalization every kernel
// applies before Setup/Verify. Exported so the result cache can hash
// the *effective* parameters: Params{} and Params{N: 64, Seed: 42}
// describe the same run and must produce the same canonical key.
func (p Params) WithDefaults() Params {
	if p.N == 0 {
		p.N = 64
	}
	if p.Cores == 0 {
		p.Cores = 1
	}
	if p.Density == 0 {
		p.Density = 0.02
	}
	if p.Seed == 0 {
		p.Seed = 42
	}
	return p
}

// withDefaults is the historical unexported spelling kept for the
// kernel implementations.
func (p Params) withDefaults() Params { return p.WithDefaults() }

// Kernel is one runnable workload.
type Kernel struct {
	Name        string
	Description string
	Vector      bool
	Source      string
	// Setup writes input data into memory and fills the argument block.
	Setup func(m *mem.Memory, args uint64, p Params)
	// Verify checks outputs against a host-side reference.
	Verify func(m *mem.Memory, args uint64, p Params) error
}

var registry = map[string]*Kernel{}
var order []string

func register(k *Kernel) {
	if _, dup := registry[k.Name]; dup {
		panic("kernels: duplicate " + k.Name)
	}
	registry[k.Name] = k
	order = append(order, k.Name)
}

// Get returns the named kernel.
func Get(name string) (*Kernel, error) {
	k, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("kernels: unknown kernel %q (have %v)", name, Names())
	}
	return k, nil
}

// Names lists registered kernels in registration order.
func Names() []string {
	out := make([]string, len(order))
	copy(out, order)
	return out
}

// heapBase is where host-generated data lives: far above the program
// image (0x8000_0000) and the stacks (below 0x9000_0000).
const heapBase = 0xC000_0000

// heap is a bump allocator for kernel data.
type heap struct{ next uint64 }

func newHeap() *heap { return &heap{next: heapBase} }

func (h *heap) alloc(bytes int) uint64 {
	const align = 64
	h.next = (h.next + align - 1) &^ (align - 1)
	addr := h.next
	h.next += uint64(bytes)
	return addr
}

// writeF64s stores a float64 slice at addr.
func writeF64s(m *mem.Memory, addr uint64, vals []float64) {
	for i, v := range vals {
		m.WriteFloat64(addr+uint64(i)*8, v)
	}
}

// writeU64s stores a uint64 slice at addr.
func writeU64s(m *mem.Memory, addr uint64, vals []uint64) {
	for i, v := range vals {
		m.Write64(addr+uint64(i)*8, v)
	}
}

// readF64s loads n float64s from addr.
func readF64s(m *mem.Memory, addr uint64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = m.ReadFloat64(addr + uint64(i)*8)
	}
	return out
}

// randMatrix returns an n×m row-major matrix of small deterministic values.
func randMatrix(rng *rand.Rand, n, m int) []float64 {
	out := make([]float64, n*m)
	for i := range out {
		out[i] = math.Round(rng.Float64()*8-4) / 4 // small exact-ish values
	}
	return out
}

// randVector returns an n-vector of deterministic values.
func randVector(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Round(rng.Float64()*16-8) / 8
	}
	return out
}

// CSR is a compressed-sparse-row matrix with 64-bit indices (matching the
// in-memory layout the SpMV kernels consume).
type CSR struct {
	N      int
	RowPtr []uint64 // len N+1
	Col    []uint64 // element indices
	Val    []float64
}

// NNZ returns the number of stored nonzeros.
func (c *CSR) NNZ() int { return len(c.Val) }

// MaxRowNNZ returns the widest row.
func (c *CSR) MaxRowNNZ() int {
	max := 0
	for i := 0; i < c.N; i++ {
		if n := int(c.RowPtr[i+1] - c.RowPtr[i]); n > max {
			max = n
		}
	}
	return max
}

// RandCSR builds a deterministic random sparse matrix: each row gets
// round(density*n) nonzeros (at least one) at distinct sorted columns.
func RandCSR(n int, density float64, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	perRow := int(density * float64(n))
	if perRow < 1 {
		perRow = 1
	}
	if perRow > n {
		perRow = n
	}
	c := &CSR{N: n, RowPtr: make([]uint64, n+1)}
	for i := 0; i < n; i++ {
		cols := map[int]bool{}
		for len(cols) < perRow {
			cols[rng.Intn(n)] = true
		}
		sorted := make([]int, 0, perRow)
		for col := range cols {
			sorted = append(sorted, col)
		}
		sort.Ints(sorted)
		for _, col := range sorted {
			c.Col = append(c.Col, uint64(col))
			c.Val = append(c.Val, math.Round(rng.Float64()*8-4)/4)
		}
		c.RowPtr[i+1] = uint64(len(c.Val))
	}
	return c
}

// SpMV computes y = A·x on the host (reference).
func (c *CSR) SpMV(x []float64) []float64 {
	y := make([]float64, c.N)
	for i := 0; i < c.N; i++ {
		acc := 0.0
		for j := c.RowPtr[i]; j < c.RowPtr[i+1]; j++ {
			acc += c.Val[j] * x[c.Col[j]]
		}
		y[i] = acc
	}
	return y
}

// ToELL converts to column-major ELLPACK with zero padding.
func (c *CSR) ToELL() (val []float64, col []uint64, width int) {
	width = c.MaxRowNNZ()
	val = make([]float64, width*c.N)
	col = make([]uint64, width*c.N)
	for i := 0; i < c.N; i++ {
		k := 0
		for j := c.RowPtr[i]; j < c.RowPtr[i+1]; j++ {
			val[k*c.N+i] = c.Val[j]
			col[k*c.N+i] = c.Col[j]
			k++
		}
		// Remaining slots keep val 0 / col 0: harmless contributions.
	}
	return val, col, width
}

// matmulRef computes C = A·B on the host.
func matmulRef(a, b []float64, n int) []float64 {
	c := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			acc := 0.0
			for k := 0; k < n; k++ {
				acc += a[i*n+k] * b[k*n+j]
			}
			c[i*n+j] = acc
		}
	}
	return c
}

// compare checks two float slices with a relative tolerance (vector
// reductions reassociate, so exact equality is too strict).
func compare(what string, got, want []float64) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s: length %d vs %d", what, len(got), len(want))
	}
	for i := range want {
		diff := math.Abs(got[i] - want[i])
		scale := math.Max(1, math.Abs(want[i]))
		if diff/scale > 1e-9 || math.IsNaN(got[i]) {
			return fmt.Errorf("%s[%d] = %v, want %v", what, i, got[i], want[i])
		}
	}
	return nil
}

// exitSeq is the common kernel epilogue: exit(hartid).
const exitSeq = `
	li   a7, 93
	csrr a0, mhartid
	ecall
`

// argsBlock reserves the argument block every kernel shares.
const argsBlock = `
.data
.align 6
args: .zero 128
`
