package kernels

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/coyote-sim/coyote/internal/mem"
)

// Extra kernels beyond the paper's initial four: the FFT the paper lists
// as a planned addition ("These will include FFT, AI and other
// representative HPC and HPDA kernels", §III-A), a STREAM-style copy, a
// partial-dot-product, and an atomics-heavy histogram.

// --- fft-scalar -------------------------------------------------------
//
// Iterative radix-2 Cooley-Tukey over split complex arrays (re[], im[]).
// The host stores the input in bit-reversed order; the kernel runs log2(n)
// butterfly stages with all harts splitting the blocks of each stage and
// meeting at a counter barrier between stages.
//
// args: 0 re, 8 im, 16 twre, 24 twim, 32 n, 40 logn, 48 ncores, 56 barrier.

const fftScalarSrc = `
_start:
	la   s0, args
	ld   s1, 0(s0)       # re
	ld   s2, 8(s0)       # im
	ld   s3, 16(s0)      # twre
	ld   s4, 24(s0)      # twim
	ld   s5, 32(s0)      # n
	ld   s6, 40(s0)      # logn
	ld   s7, 48(s0)      # ncores
	ld   s8, 56(s0)      # &barrier
	csrr s9, mhartid
	li   s10, 1          # s = stage
fft_stage:
	bgt  s10, s6, fft_done
	li   s11, 1
	sll  s11, s11, s10   # m = 1<<s
	srli t2, s11, 1      # half = m/2
	srl  t3, s5, s10     # tstride = n >> s
	mul  t0, s9, s11     # k = hart*m
fft_block:
	bge  t0, s5, fft_barrier
	li   t1, 0           # j
fft_bfly:
	bge  t1, t2, fft_nextblock
	add  a2, t0, t1      # i1
	add  a3, a2, t2      # i2 = i1 + half
	# twiddle = tw[j*tstride]
	mul  a4, t1, t3
	slli a4, a4, 3
	add  a5, s3, a4
	fld  fa0, 0(a5)      # wre
	add  a5, s4, a4
	fld  fa1, 0(a5)      # wim
	slli a6, a3, 3
	add  a7, s1, a6
	fld  fa2, 0(a7)      # re[i2]
	add  a5, s2, a6
	fld  fa3, 0(a5)      # im[i2]
	# t = w * x[i2]
	fmul.d fa4, fa0, fa2
	fmul.d fa5, fa1, fa3
	fsub.d fa4, fa4, fa5 # tre = wre*re2 - wim*im2
	fmul.d fa5, fa0, fa3
	fmul.d fa6, fa1, fa2
	fadd.d fa5, fa5, fa6 # tim = wre*im2 + wim*re2
	slli a6, a2, 3
	add  a7, s1, a6
	fld  fa6, 0(a7)      # re[i1]
	add  a5, s2, a6
	fld  fa7, 0(a5)      # im[i1]
	# x[i2] = x[i1] - t ; x[i1] += t
	fsub.d ft0, fa6, fa4
	fsub.d ft1, fa7, fa5
	fadd.d ft2, fa6, fa4
	fadd.d ft3, fa7, fa5
	slli a6, a3, 3
	add  a7, s1, a6
	fsd  ft0, 0(a7)
	add  a5, s2, a6
	fsd  ft1, 0(a5)
	slli a6, a2, 3
	add  a7, s1, a6
	fsd  ft2, 0(a7)
	add  a5, s2, a6
	fsd  ft3, 0(a5)
	addi t1, t1, 1
	j    fft_bfly
fft_nextblock:
	mul  a2, s7, s11     # step = ncores*m
	add  t0, t0, a2
	j    fft_block
fft_barrier:
	li   t4, 1
	amoadd.d zero, t4, (s8)
	mul  t5, s7, s10     # target = ncores*stage
fft_spin:
	ld   t6, 0(s8)
	blt  t6, t5, fft_spin
	addi s10, s10, 1
	j    fft_stage
fft_done:
` + exitSeq + argsBlock

// bitrev reverses the low bits of i.
func bitrev(i, bits int) int {
	r := 0
	for b := 0; b < bits; b++ {
		r = r<<1 | i&1
		i >>= 1
	}
	return r
}

// fftSize rounds n up to the next power of two (radix-2 requirement).
func fftSize(n int) int {
	if n < 2 {
		return 2
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// fftInput generates the deterministic complex input signal.
func fftInput(p Params) (re, im []float64) {
	rng := rand.New(rand.NewSource(p.Seed))
	n := fftSize(p.N)
	re = randVector(rng, n)
	im = randVector(rng, n)
	return re, im
}

// fftRef runs the same radix-2 algorithm on the host.
func fftRef(re, im []float64) ([]float64, []float64) {
	n := len(re)
	bits := 0
	for 1<<bits < n {
		bits++
	}
	outRe := make([]float64, n)
	outIm := make([]float64, n)
	for i := 0; i < n; i++ {
		outRe[bitrev(i, bits)] = re[i]
		outIm[bitrev(i, bits)] = im[i]
	}
	for s := 1; s <= bits; s++ {
		m := 1 << s
		half := m / 2
		for k := 0; k < n; k += m {
			for j := 0; j < half; j++ {
				ang := -2 * math.Pi * float64(j) / float64(m)
				wre, wim := math.Cos(ang), math.Sin(ang)
				i1, i2 := k+j, k+j+half
				tre := wre*outRe[i2] - wim*outIm[i2]
				tim := wre*outIm[i2] + wim*outRe[i2]
				outRe[i2], outIm[i2] = outRe[i1]-tre, outIm[i1]-tim
				outRe[i1], outIm[i1] = outRe[i1]+tre, outIm[i1]+tim
			}
		}
	}
	return outRe, outIm
}

func fftSetup(m *mem.Memory, args uint64, p Params) {
	p = p.withDefaults()
	n := fftSize(p.N)
	bits := 0
	for 1<<bits < n {
		bits++
	}
	re, im := fftInput(p)
	h := newHeap()
	reAddr := h.alloc(8 * n)
	imAddr := h.alloc(8 * n)
	twreAddr := h.alloc(8 * n / 2)
	twimAddr := h.alloc(8 * n / 2)
	barAddr := h.alloc(8)
	// Bit-reversed input; twiddles W_n^k = e^{-2πik/n} for k < n/2. A
	// stage with m = 2^s uses W_m^j = W_n^{j·(n/m)}.
	for i := 0; i < n; i++ {
		m.WriteFloat64(reAddr+uint64(bitrev(i, bits))*8, re[i])
		m.WriteFloat64(imAddr+uint64(bitrev(i, bits))*8, im[i])
	}
	for k := 0; k < n/2; k++ {
		ang := -2 * math.Pi * float64(k) / float64(n)
		m.WriteFloat64(twreAddr+uint64(k)*8, math.Cos(ang))
		m.WriteFloat64(twimAddr+uint64(k)*8, math.Sin(ang))
	}
	m.Write64(barAddr, 0)
	writeU64s(m, args, []uint64{
		reAddr, imAddr, twreAddr, twimAddr,
		uint64(n), uint64(bits), uint64(p.Cores), barAddr,
	})
}

func fftVerify(m *mem.Memory, args uint64, p Params) error {
	p = p.withDefaults()
	n := fftSize(p.N)
	re, im := fftInput(p)
	wantRe, wantIm := fftRef(re, im)
	reAddr := m.Read64(args)
	imAddr := m.Read64(args + 8)
	if err := compareTol("fft.re", readF64s(m, reAddr, n), wantRe, 1e-6); err != nil {
		return err
	}
	return compareTol("fft.im", readF64s(m, imAddr, n), wantIm, 1e-6)
}

// compareTol is compare with an explicit absolute/relative tolerance (the
// kernel's twiddle multiplication order differs slightly from the
// reference, and FFT error grows with log n).
func compareTol(what string, got, want []float64, tol float64) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s: length %d vs %d", what, len(got), len(want))
	}
	for i := range want {
		diff := math.Abs(got[i] - want[i])
		scale := math.Max(1, math.Abs(want[i]))
		if diff/scale > tol || math.IsNaN(got[i]) {
			return fmt.Errorf("%s[%d] = %v, want %v", what, i, got[i], want[i])
		}
	}
	return nil
}

// --- dot-vector -------------------------------------------------------
//
// Per-hart partial dot products of contiguous chunks; partial[hart] holds
// each hart's contribution (no inter-hart reduction, so no barrier).
// args: 0 x, 8 y, 16 partial, 24 n, 32 ncores.

const dotVectorSrc = `
_start:
	la   s0, args
	ld   s1, 0(s0)
	ld   s2, 8(s0)
	ld   s3, 16(s0)      # partial
	ld   s4, 24(s0)      # n
	ld   s5, 32(s0)      # ncores
	csrr s6, mhartid
	add  t1, s4, s5
	addi t1, t1, -1
	divu t1, t1, s5      # chunk
	mul  t2, s6, t1      # lo
	add  t3, t2, t1      # hi
	ble  t3, s4, dot_go
	mv   t3, s4
dot_go:
	li   t5, 1
	vsetvli zero, t5, e64, m1, ta, ma
	vmv.s.x v8, zero     # accumulator
dot_strip:
	bge  t2, t3, dot_store
	sub  t4, t3, t2
	vsetvli t5, t4, e64, m1, ta, ma
	slli t6, t2, 3
	add  a2, s1, t6
	vle64.v v1, (a2)
	add  a2, s2, t6
	vle64.v v2, (a2)
	vfmul.vv v3, v1, v2
	vfredusum.vs v8, v3, v8
	add  t2, t2, t5
	j    dot_strip
dot_store:
	vfmv.f.s fa0, v8
	slli t6, s6, 3
	add  a2, s3, t6
	fsd  fa0, 0(a2)
` + exitSeq + argsBlock

func dotSetup(m *mem.Memory, args uint64, p Params) {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	x := randVector(rng, p.N)
	y := randVector(rng, p.N)
	h := newHeap()
	xAddr := h.alloc(8 * p.N)
	yAddr := h.alloc(8 * p.N)
	partAddr := h.alloc(8 * p.Cores)
	writeF64s(m, xAddr, x)
	writeF64s(m, yAddr, y)
	writeU64s(m, args, []uint64{xAddr, yAddr, partAddr, uint64(p.N), uint64(p.Cores)})
}

func dotVerify(m *mem.Memory, args uint64, p Params) error {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	x := randVector(rng, p.N)
	y := randVector(rng, p.N)
	want := 0.0
	for i := range x {
		want += x[i] * y[i]
	}
	partAddr := m.Read64(args + 16)
	got := 0.0
	for _, v := range readF64s(m, partAddr, p.Cores) {
		got += v
	}
	if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
		return fmt.Errorf("dot = %v, want %v", got, want)
	}
	return nil
}

// --- copy-vector (STREAM copy) ----------------------------------------
//
// y[i] = x[i] in contiguous chunks: the pure-bandwidth workload.
// args: 0 x, 8 y, 16 n, 24 ncores.

const copyVectorSrc = `
_start:
	la   s0, args
	ld   s1, 0(s0)
	ld   s2, 8(s0)
	ld   s3, 16(s0)
	ld   s4, 24(s0)
	csrr s5, mhartid
	add  t1, s3, s4
	addi t1, t1, -1
	divu t1, t1, s4
	mul  t2, s5, t1
	add  t3, t2, t1
	ble  t3, s3, copy_go
	mv   t3, s3
copy_go:
	bge  t2, t3, copy_exit
	sub  t4, t3, t2
	vsetvli t5, t4, e64, m1, ta, ma
	slli t6, t2, 3
	add  a2, s1, t6
	vle64.v v1, (a2)
	add  a2, s2, t6
	vse64.v v1, (a2)
	add  t2, t2, t5
	j    copy_go
copy_exit:
` + exitSeq + argsBlock

func copySetup(m *mem.Memory, args uint64, p Params) {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	x := randVector(rng, p.N)
	h := newHeap()
	xAddr := h.alloc(8 * p.N)
	yAddr := h.alloc(8 * p.N)
	writeF64s(m, xAddr, x)
	writeU64s(m, args, []uint64{xAddr, yAddr, uint64(p.N), uint64(p.Cores)})
}

func copyVerify(m *mem.Memory, args uint64, p Params) error {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	want := randVector(rng, p.N)
	yAddr := m.Read64(args + 8)
	return compare("y", readF64s(m, yAddr, p.N), want)
}

// --- histogram-atomic --------------------------------------------------
//
// bins[key[i]]++ via amoadd.d: the atomics-contention workload (HPDA
// flavour). Keys are partitioned in contiguous chunks.
// args: 0 keys, 8 bins, 16 n, 24 nbins, 32 ncores.

const histogramSrc = `
_start:
	la   s0, args
	ld   s1, 0(s0)       # keys
	ld   s2, 8(s0)       # bins
	ld   s3, 16(s0)      # n
	ld   s5, 32(s0)      # ncores
	csrr s6, mhartid
	add  t1, s3, s5
	addi t1, t1, -1
	divu t1, t1, s5
	mul  t2, s6, t1      # lo
	add  t3, t2, t1      # hi
	ble  t3, s3, hist_go
	mv   t3, s3
hist_go:
	li   t6, 1
hist_loop:
	bge  t2, t3, hist_exit
	slli t4, t2, 3
	add  t5, s1, t4
	ld   a2, 0(t5)       # key
	slli a2, a2, 3
	add  a2, s2, a2
	amoadd.d zero, t6, (a2)
	addi t2, t2, 1
	j    hist_loop
hist_exit:
` + exitSeq + argsBlock

const histBins = 64

func histSetup(m *mem.Memory, args uint64, p Params) {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	h := newHeap()
	keysAddr := h.alloc(8 * p.N)
	binsAddr := h.alloc(8 * histBins)
	for i := 0; i < p.N; i++ {
		m.Write64(keysAddr+uint64(i)*8, uint64(rng.Intn(histBins)))
	}
	writeU64s(m, args, []uint64{
		keysAddr, binsAddr, uint64(p.N), histBins, uint64(p.Cores),
	})
}

func histVerify(m *mem.Memory, args uint64, p Params) error {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	want := make([]uint64, histBins)
	for i := 0; i < p.N; i++ {
		want[rng.Intn(histBins)]++
	}
	binsAddr := m.Read64(args + 8)
	for b := 0; b < histBins; b++ {
		if got := m.Read64(binsAddr + uint64(b)*8); got != want[b] {
			return fmt.Errorf("bins[%d] = %d, want %d", b, got, want[b])
		}
	}
	return nil
}

func init() {
	register(&Kernel{
		Name:        "fft-scalar",
		Description: "iterative radix-2 complex FFT with inter-stage barriers (paper future-work kernel)",
		Source:      fftScalarSrc,
		Setup:       fftSetup,
		Verify:      fftVerify,
	})
	register(&Kernel{
		Name:        "dot-vector",
		Description: "vector dot product, per-hart partial sums",
		Vector:      true,
		Source:      dotVectorSrc,
		Setup:       dotSetup,
		Verify:      dotVerify,
	})
	register(&Kernel{
		Name:        "copy-vector",
		Description: "STREAM-style vector copy (pure bandwidth)",
		Vector:      true,
		Source:      copyVectorSrc,
		Setup:       copySetup,
		Verify:      copyVerify,
	})
	register(&Kernel{
		Name:        "histogram-atomic",
		Description: "atomic histogram via amoadd.d (HPDA contention workload)",
		Source:      histogramSrc,
		Setup:       histSetup,
		Verify:      histVerify,
	})
}
