package kernels

import (
	"math/rand"

	"github.com/coyote-sim/coyote/internal/mem"
)

// jacobi-vector: Iters sweeps of the 5-point stencil with ping-pong
// buffers and a counter barrier between sweeps — the time-stepped PDE
// pattern that real stencil codes use, and a second workload (after the
// FFT) exercising cross-hart synchronisation under the memory model.
//
// args: 0 bufA, 8 bufB, 16 n, 24 ncores, 32 c0 (f64), 40 c1 (f64),
// 48 iters, 56 barrier.

const jacobiIters = 4

const jacobiVectorSrc = `
_start:
	la   s0, args
	ld   s1, 0(s0)       # src (this sweep)
	ld   s2, 8(s0)       # dst
	ld   s3, 16(s0)      # n
	ld   s4, 24(s0)      # ncores
	fld  fa0, 32(s0)     # c0
	fld  fa1, 40(s0)     # c1
	ld   a4, 48(s0)      # iters
	ld   s5, 56(s0)      # &barrier
	csrr s6, mhartid
	slli s7, s3, 3       # row stride
	addi s8, s3, -1      # n-1
	li   a3, 0           # sweep counter
jv_sweep:
	bge  a3, a4, jv_done
	addi t0, s6, 1       # i = 1 + hart
jv_row:
	bge  t0, s8, jv_barrier
	li   t1, 1
jv_col:
	bge  t1, s8, jv_nextrow
	sub  t2, s8, t1
	vsetvli t3, t2, e64, m1, ta, ma
	mul  t4, t0, s3
	add  t4, t4, t1
	slli t4, t4, 3
	add  t5, s1, t4
	vle64.v v1, (t5)
	addi t6, t5, -8
	vle64.v v2, (t6)
	addi t6, t5, 8
	vle64.v v3, (t6)
	sub  t6, t5, s7
	vle64.v v4, (t6)
	add  t6, t5, s7
	vle64.v v5, (t6)
	vfadd.vv v2, v2, v3
	vfadd.vv v2, v2, v4
	vfadd.vv v2, v2, v5
	vfmul.vf v6, v1, fa0
	vfmacc.vf v6, fa1, v2
	add  t6, s2, t4
	vse64.v v6, (t6)
	add  t1, t1, t3
	j    jv_col
jv_nextrow:
	add  t0, t0, s4
	j    jv_row
jv_barrier:
	# copy this sweep's boundary rows/cols is unnecessary: dst was
	# initialised with the boundary values by the host.
	li   t4, 1
	amoadd.d zero, t4, (s5)
	addi a3, a3, 1
	mul  t5, s4, a3      # target = ncores * sweeps-finished
jv_spin:
	ld   t6, 0(s5)
	blt  t6, t5, jv_spin
	# swap src/dst for the next sweep
	mv   t4, s1
	mv   s1, s2
	mv   s2, t4
	j    jv_sweep
jv_done:
` + exitSeq + argsBlock

func jacobiSetup(m *mem.Memory, args uint64, p Params) {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	n := p.N
	in := randMatrix(rng, n, n)
	h := newHeap()
	aAddr := h.alloc(8 * n * n)
	bAddr := h.alloc(8 * n * n)
	barAddr := h.alloc(8)
	writeF64s(m, aAddr, in)
	writeF64s(m, bAddr, in) // boundaries of both buffers carry the input
	m.Write64(barAddr, 0)
	writeU64s(m, args, []uint64{aAddr, bAddr, uint64(n), uint64(p.Cores)})
	m.WriteFloat64(args+32, stencilC0)
	m.WriteFloat64(args+40, stencilC1)
	m.Write64(args+48, jacobiIters)
	m.Write64(args+56, barAddr)
}

func jacobiVerify(m *mem.Memory, args uint64, p Params) error {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	n := p.N
	cur := randMatrix(rng, n, n)
	var next []float64
	for it := 0; it < jacobiIters; it++ {
		next = stencilRef(cur, n)
		cur = next
	}
	// After an even number of sweeps the result sits in bufA (iters=4:
	// A→B→A→B→A ... sweep k writes to the buffer the kernel calls dst;
	// with the swap at each barrier, sweep 0 writes B, 1 writes A, 2
	// writes B, 3 writes A).
	final := m.Read64(args) // bufA
	if jacobiIters%2 == 1 {
		final = m.Read64(args + 8)
	}
	return compare("jacobi", readF64s(m, final, n*n), cur)
}

func init() {
	register(&Kernel{
		Name:        "jacobi-vector",
		Description: "multi-sweep vector 5-point stencil with inter-sweep barriers",
		Vector:      true,
		Source:      jacobiVectorSrc,
		Setup:       jacobiSetup,
		Verify:      jacobiVerify,
	})
}
