package kernels

import (
	"math/rand"

	"github.com/coyote-sim/coyote/internal/mem"
)

// gemv-vector: dense y = A·x with one row per hart iteration, strip-mined
// dot products with an ordered reduction — the dense counterpart of the
// gather-based SpMV, useful to isolate how much of SpMV's cost is the
// gather itself.
//
// args: 0 A (row-major), 8 x, 16 y, 24 n, 32 ncores.

const gemvVectorSrc = `
_start:
	la   s0, args
	ld   s1, 0(s0)       # A
	ld   s2, 8(s0)       # x
	ld   s3, 16(s0)      # y
	ld   s4, 24(s0)      # n
	ld   s5, 32(s0)      # ncores
	csrr s6, mhartid
	mv   t0, s6          # i
gemv_row:
	bge  t0, s4, gemv_exit
	li   t5, 1
	vsetvli zero, t5, e64, m1, ta, ma
	vmv.s.x v8, zero
	mul  t2, t0, s4
	slli t2, t2, 3
	add  t2, s1, t2      # &A[i][0]
	li   t1, 0           # j
gemv_strip:
	bge  t1, s4, gemv_store
	sub  t3, s4, t1
	vsetvli t4, t3, e64, m1, ta, ma
	slli t5, t1, 3
	add  t6, t2, t5
	vle64.v v1, (t6)     # row slice
	add  t6, s2, t5
	vle64.v v2, (t6)     # x slice
	vfmul.vv v3, v1, v2
	vfredusum.vs v8, v3, v8
	add  t1, t1, t4
	j    gemv_strip
gemv_store:
	vfmv.f.s fa0, v8
	slli t5, t0, 3
	add  t6, s3, t5
	fsd  fa0, 0(t6)
	add  t0, t0, s5
	j    gemv_row
gemv_exit:
` + exitSeq + argsBlock

func gemvSetup(m *mem.Memory, args uint64, p Params) {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	n := p.N
	a := randMatrix(rng, n, n)
	x := randVector(rng, n)
	h := newHeap()
	aAddr := h.alloc(8 * n * n)
	xAddr := h.alloc(8 * n)
	yAddr := h.alloc(8 * n)
	writeF64s(m, aAddr, a)
	writeF64s(m, xAddr, x)
	writeU64s(m, args, []uint64{aAddr, xAddr, yAddr, uint64(n), uint64(p.Cores)})
}

func gemvVerify(m *mem.Memory, args uint64, p Params) error {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	n := p.N
	a := randMatrix(rng, n, n)
	x := randVector(rng, n)
	want := make([]float64, n)
	for i := 0; i < n; i++ {
		acc := 0.0
		for j := 0; j < n; j++ {
			acc += a[i*n+j] * x[j]
		}
		want[i] = acc
	}
	yAddr := m.Read64(args + 16)
	return compare("y", readF64s(m, yAddr, n), want)
}

func init() {
	register(&Kernel{
		Name:        "gemv-vector",
		Description: "dense matrix-vector multiply, strip-mined dot products",
		Vector:      true,
		Source:      gemvVectorSrc,
		Setup:       gemvSetup,
		Verify:      gemvVerify,
	})
}
