// Package cpu implements the functional RISC-V hart model — the role Spike
// plays inside Coyote. A Hart executes one instruction per Step against the
// shared functional memory and models its private L1 instruction and data
// caches; L1 misses are surfaced to the orchestrator as MemEvents to be
// injected into the event-driven uncore. Loads that miss mark their
// destination registers *pending*; the hart keeps executing until an
// instruction names a pending register (RAW/WAW), at which point Step
// reports a stall and the orchestrator deactivates the core until the miss
// completes (paper §III-A).
package cpu

import (
	"bytes"
	"fmt"

	"github.com/coyote-sim/coyote/internal/cache"
	"github.com/coyote-sim/coyote/internal/mem"
	"github.com/coyote-sim/coyote/internal/riscv"
	"github.com/coyote-sim/coyote/internal/san"
)

// RegKind selects one of the three architectural register files.
type RegKind uint8

const (
	RegX RegKind = iota
	RegF
	RegV
	regKinds
)

// MemEvent is an L1 miss or writeback that must be serviced by the uncore.
type MemEvent struct {
	Hart    int
	Addr    uint64 // line base address
	Write   bool   // true for stores/writebacks (no completion needed)
	Fetch   bool   // instruction-fetch miss
	Dest    RegKind
	DestReg uint8
	HasDest bool // completion must call Hart.CompleteFill(Dest, DestReg)

	// Gather, when non-nil, is an MCPU scatter/gather descriptor (the
	// paper's §I memory-controller CPUs): the element addresses of one
	// indexed vector access, bypassing the cache hierarchy. Addr is
	// unused; one completion covers the whole descriptor.
	Gather []uint64
}

// StepResult reports what happened during one Step.
type StepResult uint8

const (
	// StepExecuted: one instruction retired.
	StepExecuted StepResult = iota
	// StepStalledRAW: instruction names a register with a pending fill.
	StepStalledRAW
	// StepStalledFetch: instruction fetch missed L1I; waiting for the line.
	StepStalledFetch
	// StepBusy: a multi-cycle (vector) instruction still occupies the core.
	StepBusy
	// StepHalted: the hart has exited.
	StepHalted
	// StepFault: illegal instruction or trap; hart is halted with an error.
	StepFault
	// StepSpecUnsafe: the next instruction cannot run speculatively
	// (atomics read-modify-write shared reservation state and memory).
	// Only returned while speculation is armed (BeginSpec); the
	// orchestrator aborts the speculation and re-executes the hart
	// serially in its commit slot.
	StepSpecUnsafe
)

// Config holds per-hart model parameters.
type Config struct {
	VLenBits    uint // vector register length in bits (power of two ≥ 64)
	VectorLanes uint // parallel lanes; a vector op occupies ceil(vl/lanes) cycles
	L1I, L1D    cache.Config

	// MCPUOffload routes indexed (gather/scatter) vector accesses to the
	// memory-controller CPUs as single descriptors instead of per-element
	// cache transactions — the ACME architecture's aggregate-semantics
	// memory path (paper §I).
	MCPUOffload bool

	// BlockMaxLen caps the length of a decoded superblock (see StepBlock).
	// Zero or negative selects the default of 32 instructions. The cap only
	// bounds decode-cache memory; it has no effect on simulated timing.
	BlockMaxLen int

	// DisableBlockCache forces the per-instruction reference engine:
	// StepBlock degrades to single Step calls and the orchestrator falls
	// back to the classic step-dispatch loop. Simulated timing is identical
	// either way — the differential golden tests run both engines against
	// each other to prove it.
	DisableBlockCache bool
}

const defaultBlockMaxLen = 32

// DefaultConfig mirrors the ACME VAS tile core: 16-lane VPU and 16 KiB L1s.
func DefaultConfig() Config {
	return Config{
		VLenBits:    1024,
		VectorLanes: 16,
		L1I:         cache.Config{SizeBytes: 16 << 10, Ways: 4, LineBytes: 64},
		L1D:         cache.Config{SizeBytes: 16 << 10, Ways: 4, LineBytes: 64, WriteBack: true},
	}
}

// Stats counts per-hart execution events.
type Stats struct {
	Instret      uint64 // instructions retired
	VectorOps    uint64
	StallsRAW    uint64 // cycles lost to pending-register dependencies
	StallsFetch  uint64 // cycles lost waiting on L1I fills
	BusyCycles   uint64 // extra cycles occupied by multi-cycle vector ops
	LoadMisses   uint64
	StoreMisses  uint64
	FetchMisses  uint64
	Writebacks   uint64
	ElemAccesses uint64 // vector element memory accesses
}

// Reservations tracks LR/SC reservations across harts; any store to a
// reserved line (by any hart) invalidates the reservation.
type Reservations struct {
	line  []uint64
	valid []bool
}

// NewReservations sizes the set for n harts.
func NewReservations(n int) *Reservations {
	return &Reservations{line: make([]uint64, n), valid: make([]bool, n)}
}

//coyote:specwrite-ok reservation state is replay-deterministic: an aborted quantum re-runs the same LR sequence, and cross-hart invalidation is deferred while speculation is armed (see spec.go)
func (r *Reservations) set(hart int, line uint64) {
	r.line[hart] = line
	r.valid[hart] = true
}

//coyote:specwrite-ok reservation state is replay-deterministic: an aborted quantum re-runs the same SC sequence (see spec.go)
func (r *Reservations) check(hart int, line uint64) bool {
	ok := r.valid[hart] && r.line[hart] == line
	r.valid[hart] = false // SC always clears the reservation
	return ok
}

// invalidateStores drops every reservation matching a stored-to line,
// except the storing hart's own (its SC consumed it already).
//
//coyote:specwrite-ok commit-phase helper: the spec layer defers store invalidation until the quantum commits (see spec.go storeInvalidate)
func (r *Reservations) invalidateStores(storer int, line uint64) {
	for i := range r.valid {
		if i != storer && r.valid[i] && r.line[i] == line {
			r.valid[i] = false
		}
	}
}

// Hart is one simulated RISC-V core: architectural state + L1 models.
type Hart struct {
	ID int

	PC uint64
	X  [32]uint64
	F  [32]uint64 // raw IEEE bits; singles are NaN-boxed

	// Vector state. V is the flat register file: 32 registers of VLenB
	// bytes each; register groups (LMUL>1) are contiguous slices of it.
	V        []byte
	VLenB    uint
	VL       uint64
	VType    riscv.VType
	vtypeRaw uint64
	lanes    uint

	Mem      *mem.Memory
	L1I, L1D *cache.Cache
	resv     *Reservations

	mcpuOffload bool

	// Pending-register scoreboard: bit set while ≥1 fill is outstanding.
	pending      [regKinds]uint32
	pendingCount [regKinds][32]uint16
	fetchPending bool

	Halted   bool
	ExitCode uint64
	Fault    error

	busyUntil uint64 // absolute cycle until which the core is occupied

	// Events produced by the last Step; the orchestrator drains this.
	Events []MemEvent

	Console bytes.Buffer // bytes written via the write "syscall"

	Stats Stats

	// stepCache is a direct-mapped decoded-instruction cache indexed by
	// PC: it holds the decoded form and the precomputed register-usage
	// masks, avoiding per-step decode and dependency analysis (the same
	// trick Spike's instruction cache plays). Self-modifying code is not
	// supported, matching Spike's bare-metal assumptions.
	// Decode-derived state below is deliberately outside the spec
	// journal: it is a pure function of program memory, so an aborted
	// quantum that re-decodes produces identical entries.
	stepCache []stepEntry //coyote:specwrite-ok decode cache, rebuilt identically on replay; never part of committed state

	// blockCache is the superblock extension of stepCache: each entry
	// holds a decoded straight-line run starting at its PC, executed by
	// StepBlock in one tight loop (see block.go).
	blockCache []blockEntry //coyote:specwrite-ok decode cache, same argument as stepCache
	blockMax   int
	blockOff   bool

	// codeLo/codeHi bound the PCs covered by live decoded entries (step
	// and block caches). Maintained only in the coyotesan build, where a
	// store landing inside the range is cross-checked against the live
	// entries: silently executing stale pre-decoded code is the one way
	// the decode caches could diverge from memory.
	codeLo, codeHi uint64 //coyote:specwrite-ok sanitizer bookkeeping derived from the decode caches

	// lastFetchLine short-circuits the L1I tag lookup for straight-line
	// fetches from the same cache line.
	lastFetchLine  uint64
	lastFetchValid bool

	// scratch buffers reused across steps to avoid allocation
	lineScratch []uint64  //coyote:specwrite-ok per-step scratch, dead before the next instruction
	oneAddr     [1]uint64 //coyote:specwrite-ok per-step scratch, dead before the next instruction
	addrScratch []uint64  //coyote:specwrite-ok per-step scratch, dead before the next instruction

	// gatherPool recycles MemEvent.Gather descriptor slices. The
	// orchestrator returns a descriptor with RecycleGatherBuf once the
	// uncore has consumed it, so steady-state MCPU offload allocates no
	// per-access buffers.
	gatherPool [][]uint64 //coyote:specwrite-ok buffer pool; recycled descriptor contents are dead once the uncore consumes them

	// CSR backing store for CSRs without dedicated fields.
	csr map[uint16]uint64

	// warmLine, when non-nil, puts the hart in functional-warming mode:
	// post-L1 traffic (misses, write-allocate fetches and dirty
	// writebacks) is reported to the sink at line granularity and
	// completes immediately — no MemEvent is emitted, no register is
	// marked pending and fetch misses do not stall. Timed simulation
	// never arms it; see SetWarmSink.
	warmLine func(addr uint64, write bool)

	// warmSeen is a hart-level direct-mapped line filter in front of the
	// whole functional-warming data path: a read whose line is recorded
	// here is answered as an L1D hit without touching the cache or the
	// uncore at all. Unlike the L1D's own warming filter it is immune to
	// set conflicts (slots are chosen by a multiplicative hash of the
	// full line address), so strided reads that thrash a few L1D sets
	// still collapse to one lookup each. Writes and filter misses take
	// the exact path and then claim the slot. Same contract as
	// cache.WarmAccess: warming-region replacement state and hit counts
	// are approximate by design; the downstream hierarchy still sees
	// each distinct line at least once per warming interval, which is
	// what warming needs. Reset by SetWarmSink, so timed simulation and
	// checkpoints never observe it. Bypassed under coyotesan so the
	// shadow directory sees every access.
	warmSeen []uint64

	// spec holds the speculative-execution journal and rollback snapshot
	// used by the parallel orchestrator (see spec.go).
	spec specState

	// CycleFn lets the orchestrator expose the global cycle counter via
	// the cycle/time CSRs. Optional.
	CycleFn func() uint64
}

// NewHart builds a hart with the given ID and config, wired to shared
// functional memory and a shared reservation set (may be nil for
// single-hart use).
func NewHart(id int, cfg Config, m *mem.Memory, resv *Reservations) (*Hart, error) {
	if cfg.VLenBits < 64 || cfg.VLenBits&(cfg.VLenBits-1) != 0 {
		return nil, fmt.Errorf("cpu: VLenBits %d must be a power of two ≥ 64", cfg.VLenBits)
	}
	if cfg.VectorLanes == 0 {
		return nil, fmt.Errorf("cpu: VectorLanes must be positive")
	}
	l1i, err := cache.New(cfg.L1I)
	if err != nil {
		return nil, fmt.Errorf("cpu: L1I: %w", err)
	}
	l1d, err := cache.New(cfg.L1D)
	if err != nil {
		return nil, fmt.Errorf("cpu: L1D: %w", err)
	}
	if resv == nil {
		resv = NewReservations(id + 1)
	}
	blockMax := cfg.BlockMaxLen
	if blockMax <= 0 {
		blockMax = defaultBlockMaxLen
	}
	h := &Hart{
		ID:          id,
		V:           make([]byte, 32*cfg.VLenBits/8),
		VLenB:       cfg.VLenBits / 8,
		lanes:       cfg.VectorLanes,
		Mem:         m,
		L1I:         l1i,
		L1D:         l1d,
		resv:        resv,
		mcpuOffload: cfg.MCPUOffload,
		stepCache:   make([]stepEntry, stepCacheSize),
		blockCache:  make([]blockEntry, blockCacheSize),
		blockMax:    blockMax,
		blockOff:    cfg.DisableBlockCache,
		csr:         make(map[uint16]uint64),
		codeLo:      ^uint64(0),
	}
	return h, nil
}

// SetWarmSink arms (non-nil) or disarms (nil) functional-warming mode.
// While armed, every post-L1 line transfer that timed mode would turn
// into a MemEvent is delivered to warm instead and completes
// immediately; the MCPU gather path is the one exception — it still
// emits its descriptor event, because gathers bypass L1/L2 and the
// orchestrator's functional dispatcher warms the memory side from the
// descriptor. The caller must disarm before resuming timed simulation.
// warmSeen filter geometry: 512 slots is one 4 KiB page of filter state,
// and a slot holds line|1 (line addresses are line-aligned, so the low
// bit doubles as the occupancy marker).
const (
	warmSeenBits  = 9
	warmSeenSlots = 1 << warmSeenBits
)

func (h *Hart) SetWarmSink(warm func(addr uint64, write bool)) {

	h.warmLine = warm
	if warm != nil && h.warmSeen == nil {
		h.warmSeen = make([]uint64, warmSeenSlots)
	}
	clear(h.warmSeen)
}

// BlockEngineEnabled reports whether the superblock engine is active (the
// orchestrator uses it to pick between the block loop and the reference
// per-instruction loop).
func (h *Hart) BlockEngineEnabled() bool { return !h.blockOff }

// stepEntry is one slot of the decoded-instruction cache.
type stepEntry struct {
	pc    uint64
	in    riscv.Instr
	use   riscv.RegUse
	lmul  uint8
	valid bool
}

const stepCacheSize = 512 // 2 KiB window of straight-line code (kernels are far smaller)

// BusyUntil returns the cycle at which a multi-cycle vector instruction
// releases the core (0 when idle). The orchestrator uses it to fast-forward.
func (h *Hart) BusyUntil() uint64 { return h.busyUntil }

// FlushDecodeCache invalidates the decoded-instruction cache, the
// superblock cache and the fetch fast path. Required after program memory
// changes (loading a new binary over an old one, or fence.i after writing
// code); ordinary kernels never need it.
func (h *Hart) FlushDecodeCache() {
	for i := range h.stepCache {
		h.stepCache[i].valid = false
	}
	for i := range h.blockCache {
		h.blockCache[i].valid = false
	}
	h.lastFetchValid = false
	h.codeLo, h.codeHi = ^uint64(0), 0
}

// AddStallCycles credits stall cycles the orchestrator observed while the
// core was parked (Step is not called on inactive cores, so the per-Step
// counters alone would undercount the stalled time).
//
//coyote:allocfree
func (h *Hart) AddStallCycles(fetch bool, n uint64) {
	if fetch {
		h.Stats.StallsFetch += n
	} else {
		h.Stats.StallsRAW += n
	}
}

// VLMax returns the maximum vl for the current vtype.
func (h *Hart) VLMax() uint64 {
	if h.VType.SEW == 0 {
		return 0
	}
	return uint64(h.VLenB*8) * uint64(h.VType.LMUL) / uint64(h.VType.SEW)
}

// Pending reports whether register (kind, r) has outstanding fills.
func (h *Hart) Pending(kind RegKind, r uint8) bool {
	return h.pending[kind]&(1<<r) != 0
}

// PendingAny reports whether any register has outstanding fills.
func (h *Hart) PendingAny() bool {
	return h.pending[RegX]|h.pending[RegF]|h.pending[RegV] != 0 || h.fetchPending
}

// CompleteFill is called by the orchestrator when a miss carrying a
// destination register finishes. When the last outstanding fill for the
// register lands, the pending bit clears and the core may wake up.
//
//coyote:allocfree
func (h *Hart) CompleteFill(kind RegKind, r uint8) {
	if h.pendingCount[kind][r] == 0 {
		panic(fmt.Sprintf("cpu: hart %d: stray completion for %v%d", h.ID, kind, r))
	}
	h.pendingCount[kind][r]--
	if h.pendingCount[kind][r] == 0 {
		h.pending[kind] &^= 1 << r
	}
	if san.Enabled {
		san.Check((h.pending[kind]&(1<<r) != 0) == (h.pendingCount[kind][r] > 0),
			h.sanNow(), "cpu.scoreboard", "pending bit disagrees with outstanding-fill count after completion",
			uint64(h.ID), uint64(kind)<<8|uint64(r))
	}
}

// sanNow returns the orchestrator cycle for sanitizer reports (0 when the
// hart runs standalone, e.g. in unit tests). Only called under san.Enabled.
func (h *Hart) sanNow() uint64 {
	if h.CycleFn != nil {
		return h.CycleFn()
	}
	return 0
}

// CompleteFetch is called when an instruction-fetch miss is serviced.
//
//coyote:allocfree
func (h *Hart) CompleteFetch() { h.fetchPending = false }

// getGatherBuf returns a pooled descriptor slice with the given length.
func (h *Hart) getGatherBuf(n int) []uint64 {
	if ln := len(h.gatherPool); ln > 0 {
		buf := h.gatherPool[ln-1]
		h.gatherPool = h.gatherPool[:ln-1]
		if cap(buf) >= n {
			return buf[:n]
		}
	}
	return make([]uint64, n)
}

// RecycleGatherBuf returns a MemEvent.Gather descriptor to the hart's
// pool. Callers must not retain the slice afterwards.
//
//coyote:allocfree
func (h *Hart) RecycleGatherBuf(buf []uint64) {
	h.gatherPool = append(h.gatherPool, buf)
}

func (h *Hart) markPending(kind RegKind, r uint8) {
	if kind == RegX && r == 0 {
		return
	}
	if h.spec.active {
		h.spec.pendUndo = append(h.spec.pendUndo, pendUndo{kind: kind, reg: r}) //coyote:alloc-ok pooled undo log; grows to the quantum's high-water mark once, reused for the rest of the run
	}
	h.pending[kind] |= 1 << r
	h.pendingCount[kind][r]++
	if san.Enabled {
		// A zero count here means the uint16 wrapped: 65535 fills were
		// already outstanding on one register, which is impossible traffic.
		san.Check(h.pendingCount[kind][r] != 0,
			h.sanNow(), "cpu.scoreboard", "outstanding-fill count overflowed",
			uint64(h.ID), uint64(kind)<<8|uint64(r))
	}
}

// emit appends a memory event for the orchestrator.
//
//coyote:allocfree
func (h *Hart) emit(ev MemEvent) {
	ev.Hart = h.ID
	h.Events = append(h.Events, ev)
}

// Step attempts to execute one instruction at cycle now. Produced memory
// events are appended to h.Events (caller drains). The result tells the
// orchestrator whether to keep the core active.
func (h *Hart) Step(now uint64) StepResult {
	if h.Halted {
		return StepHalted
	}
	if h.fetchPending {
		h.Stats.StallsFetch++
		return StepStalledFetch
	}
	if now < h.busyUntil {
		h.Stats.BusyCycles++
		return StepBusy
	}

	// Fetch timing through L1I (line granularity), with a fast path for
	// consecutive fetches from the same line.
	line := h.L1I.LineAddr(h.PC)
	if h.lastFetchValid && line == h.lastFetchLine {
		h.L1I.Stats.Hits++
	} else if res := h.L1I.Access(h.PC, false); res.Hit {
		h.lastFetchLine = line
		h.lastFetchValid = true
	} else {
		h.Stats.FetchMisses++
		if h.warmLine != nil {
			// Functional mode: Access already installed the line; warm the
			// downstream hierarchy and fetch without stalling.
			h.lastFetchLine = line
			h.lastFetchValid = true
			h.warmLine(line, false)
		} else {
			h.lastFetchValid = false
			h.fetchPending = true
			h.emit(MemEvent{Addr: line, Fetch: true})
			h.Stats.StallsFetch++
			return StepStalledFetch
		}
	}

	// Decode through the step cache. The instruction fetch reads text
	// without the speculative read log: text is immutable during a run
	// (self-modifying code is unsupported and sanitizer-checked), so
	// logging fetches would only bloat validation. Under armed
	// speculation the read still must go through the private view — the
	// shared Memory accessors mutate their lookaside and allocate pages.
	e := &h.stepCache[h.PC>>2&(stepCacheSize-1)]
	if !e.valid || e.pc != h.PC {
		raw := h.fetchRead32(h.PC)
		in, err := riscv.Decode(raw)
		if err != nil {
			h.Fault = fmt.Errorf("hart %d: pc=%#x: %w", h.ID, h.PC, err) //coyote:alloc-ok fault path is terminal, the run ends here
			h.Halted = true
			return StepFault
		}
		lmul := uint(1)
		if in.Op.IsVector() {
			lmul = h.VType.LMUL
		}
		*e = stepEntry{pc: h.PC, in: in, use: riscv.RegUsage(in, lmul),
			lmul: uint8(lmul), valid: true}
		if san.Enabled {
			h.noteCodeRange(h.PC, h.PC+4)
		}
	} else if e.in.Op.IsVector() && uint(e.lmul) != h.VType.LMUL {
		// LMUL changed since the usage masks were computed: refresh the
		// register-group footprint.
		e.lmul = uint8(h.VType.LMUL)
		e.use = riscv.RegUsage(e.in, h.VType.LMUL)
	}
	in := e.in
	use := &e.use

	// Scoreboard check: stall on any pending source or destination.
	if (use.ReadsX|use.WritesX)&h.pending[RegX] != 0 ||
		(use.ReadsF|use.WritesF)&h.pending[RegF] != 0 ||
		(use.ReadsV|use.WritesV)&h.pending[RegV] != 0 {
		h.Stats.StallsRAW++
		return StepStalledRAW
	}

	if h.spec.active {
		if in.Op.Classify()&riscv.ClassAtomic != 0 {
			return StepSpecUnsafe
		}
		h.specSaveFor(in.Op, use)
	}

	nextPC := h.PC + 4
	res := h.execute(in, &nextPC, now)
	if res == StepExecuted {
		h.PC = nextPC
		h.Stats.Instret++
		if in.Op.IsVector() {
			h.Stats.VectorOps++
			if occ := h.vectorOccupancy(in); occ > 1 {
				h.busyUntil = now + occ
			}
		}
	}
	return res
}

// vectorOccupancy returns the number of cycles a vector instruction
// occupies the core: ceil(vl/lanes), minimum 1.
func (h *Hart) vectorOccupancy(in riscv.Instr) uint64 {
	switch in.Op {
	case riscv.OpVSETVLI, riscv.OpVSETIVLI, riscv.OpVSETVL:
		return 1
	}
	vl := h.VL
	if vl == 0 {
		return 1
	}
	return (vl + uint64(h.lanes) - 1) / uint64(h.lanes)
}

// DrainEvents returns and clears the accumulated memory events.
func (h *Hart) DrainEvents() []MemEvent {
	evs := h.Events
	h.Events = h.Events[len(h.Events):]
	if len(evs) == 0 {
		return nil
	}
	return evs
}

// dataAccess runs one or more element accesses through the L1D at line
// granularity, deduplicating lines within the instruction, emitting miss
// and writeback events, and marking the destination register pending for
// load misses. addrs is the list of element addresses; size their width.
//
//coyote:allocfree
func (h *Hart) dataAccess(addrs []uint64, write bool, dest RegKind, destReg uint8, hasDest bool) {
	if h.warmLine != nil {
		// Functional mode: the per-line L1D state effects and statistics
		// are identical, but misses complete through the warm sink. No
		// line dedup — WarmAccess's filter makes the repeat touches cheap
		// and the duplicate hits match Step-granular timed accounting
		// closely enough for a region whose stats are approximate anyway.
		for _, a := range addrs {
			h.warmDataAccess(a, write)
		}
		return
	}
	h.lineScratch = h.lineScratch[:0]
	for _, a := range addrs {
		line := h.L1D.LineAddr(a)
		dup := false
		for _, seen := range h.lineScratch {
			if seen == line {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		h.lineScratch = append(h.lineScratch, line)
		res := h.L1D.Access(a, write)
		if res.HasWriteback {
			h.Stats.Writebacks++
			h.emit(MemEvent{Addr: res.Writeback, Write: true})
		}
		if !res.Hit {
			if write {
				h.Stats.StoreMisses++
				// Write-allocate: the line must still be fetched, but no
				// register depends on it; model as a read request without
				// a destination (the store buffer hides the latency).
				h.emit(MemEvent{Addr: line})
			} else {
				h.Stats.LoadMisses++
				ev := MemEvent{Addr: line}
				if hasDest {
					ev.HasDest = true
					ev.Dest = dest
					ev.DestReg = destReg
					h.markPending(dest, destReg)
				}
				h.emit(ev)
			}
		}
	}
}

// warmDataAccess is the functional-mode data path: the L1D access runs
// through WarmAccess's line filter and any post-L1 traffic — the
// writeback first, then the missed line, matching the timed event order
// — goes straight to the warm sink and completes immediately. Per-line
// L1D state effects and miss statistics are identical to the timed path.
//
//coyote:specwrite-ok warming mode and speculation never overlap: the orchestrator disarms the sink before timed execution resumes, and SetWarmSink resets the filter on every arm
func (h *Hart) warmDataAccess(addr uint64, write bool) {
	line := h.L1D.LineAddr(addr)
	slot := &h.warmSeen[(line*0x9E3779B97F4A7C15)>>(64-warmSeenBits)]
	if !write && !san.Enabled && *slot == line|1 {
		h.L1D.Stats.Hits++
		return
	}
	res := h.L1D.WarmAccess(addr, write)
	*slot = line | 1
	if res.HasWriteback {
		h.Stats.Writebacks++
		h.warmLine(res.Writeback, true)
	}
	if !res.Hit {
		if write {
			h.Stats.StoreMisses++
		} else {
			h.Stats.LoadMisses++
		}
		h.warmLine(line, false)
	}
}

// scalarLoadAccess is dataAccess specialised for a single scalar load:
// one address needs no line dedup, and the hit path — the overwhelming
// majority — needs no line address either. Event order matches the
// general path exactly: any writeback first, then the miss request.
func (h *Hart) scalarLoadAccess(addr uint64, dest RegKind, destReg uint8) {
	if h.warmLine != nil {
		h.warmDataAccess(addr, false)
		return
	}
	res := h.L1D.Access(addr, false)
	if res.HasWriteback {
		h.Stats.Writebacks++
		h.emit(MemEvent{Addr: res.Writeback, Write: true})
	}
	if !res.Hit {
		h.Stats.LoadMisses++
		h.markPending(dest, destReg)
		h.emit(MemEvent{Addr: h.L1D.LineAddr(addr), HasDest: true, Dest: dest, DestReg: destReg})
	}
}

// scalarStoreAccess is dataAccess specialised for a single scalar store.
func (h *Hart) scalarStoreAccess(addr uint64) {
	if h.warmLine != nil {
		h.warmDataAccess(addr, true)
		h.storeInvalidate(addr)
		return
	}
	res := h.L1D.Access(addr, true)
	if res.HasWriteback {
		h.Stats.Writebacks++
		h.emit(MemEvent{Addr: res.Writeback, Write: true})
	}
	if !res.Hit {
		h.Stats.StoreMisses++
		// Write-allocate: the line must still be fetched, but no register
		// depends on it; model as a read request without a destination
		// (the store buffer hides the latency).
		h.emit(MemEvent{Addr: h.L1D.LineAddr(addr)})
	}
	h.storeInvalidate(addr)
}
