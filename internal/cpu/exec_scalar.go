package cpu

import (
	"fmt"
	"math/bits"

	"github.com/coyote-sim/coyote/internal/riscv"
)

// Syscall numbers honoured by the bare-metal environment (Linux ABI
// numbers, matching what Spike's proxy kernel exposes for the kernels we
// run: exit and write-to-console).
const (
	SysExit  = 93
	SysWrite = 64
)

func (h *Hart) setX(r uint8, v uint64) {
	if r != 0 {
		h.X[r] = v
	}
}

// execute runs one decoded instruction. nextPC starts as PC+4 and may be
// redirected by control flow. Memory instructions perform their functional
// effect immediately (shared memory keeps multicore semantics coherent)
// and drive the L1 timing model.
func (h *Hart) execute(in riscv.Instr, nextPC *uint64, now uint64) StepResult {
	x := &h.X
	switch in.Op {
	// ----- RV64I -----
	case riscv.OpLUI:
		h.setX(in.Rd, uint64(int64(int32(uint32(in.Imm)<<12))))
	case riscv.OpAUIPC:
		h.setX(in.Rd, h.PC+uint64(int64(int32(uint32(in.Imm)<<12))))
	case riscv.OpJAL:
		h.setX(in.Rd, h.PC+4)
		*nextPC = h.PC + uint64(in.Imm) //coyote:specwrite-ok out-param: redirects the caller's nextPC local; the h.PC it feeds is snapshot-covered in spec.go
	case riscv.OpJALR:
		t := (x[in.Rs1] + uint64(in.Imm)) &^ 1
		h.setX(in.Rd, h.PC+4)
		*nextPC = t //coyote:specwrite-ok out-param: redirects the caller's nextPC local; the h.PC it feeds is snapshot-covered in spec.go
	case riscv.OpBEQ:
		if x[in.Rs1] == x[in.Rs2] {
			*nextPC = h.PC + uint64(in.Imm) //coyote:specwrite-ok out-param: redirects the caller's nextPC local; the h.PC it feeds is snapshot-covered in spec.go
		}
	case riscv.OpBNE:
		if x[in.Rs1] != x[in.Rs2] {
			*nextPC = h.PC + uint64(in.Imm) //coyote:specwrite-ok out-param: redirects the caller's nextPC local; the h.PC it feeds is snapshot-covered in spec.go
		}
	case riscv.OpBLT:
		if int64(x[in.Rs1]) < int64(x[in.Rs2]) {
			*nextPC = h.PC + uint64(in.Imm) //coyote:specwrite-ok out-param: redirects the caller's nextPC local; the h.PC it feeds is snapshot-covered in spec.go
		}
	case riscv.OpBGE:
		if int64(x[in.Rs1]) >= int64(x[in.Rs2]) {
			*nextPC = h.PC + uint64(in.Imm) //coyote:specwrite-ok out-param: redirects the caller's nextPC local; the h.PC it feeds is snapshot-covered in spec.go
		}
	case riscv.OpBLTU:
		if x[in.Rs1] < x[in.Rs2] {
			*nextPC = h.PC + uint64(in.Imm) //coyote:specwrite-ok out-param: redirects the caller's nextPC local; the h.PC it feeds is snapshot-covered in spec.go
		}
	case riscv.OpBGEU:
		if x[in.Rs1] >= x[in.Rs2] {
			*nextPC = h.PC + uint64(in.Imm) //coyote:specwrite-ok out-param: redirects the caller's nextPC local; the h.PC it feeds is snapshot-covered in spec.go
		}

	case riscv.OpLB:
		a := x[in.Rs1] + uint64(in.Imm)
		h.setX(in.Rd, uint64(int64(int8(h.memRead8(a)))))
		h.scalarLoadAccess(a, RegX, in.Rd)
	case riscv.OpLH:
		a := x[in.Rs1] + uint64(in.Imm)
		h.setX(in.Rd, uint64(int64(int16(h.memRead16(a)))))
		h.scalarLoadAccess(a, RegX, in.Rd)
	case riscv.OpLW:
		a := x[in.Rs1] + uint64(in.Imm)
		h.setX(in.Rd, uint64(int64(int32(h.memRead32(a)))))
		h.scalarLoadAccess(a, RegX, in.Rd)
	case riscv.OpLD:
		a := x[in.Rs1] + uint64(in.Imm)
		h.setX(in.Rd, h.memRead64(a))
		h.scalarLoadAccess(a, RegX, in.Rd)
	case riscv.OpLBU:
		a := x[in.Rs1] + uint64(in.Imm)
		h.setX(in.Rd, uint64(h.memRead8(a)))
		h.scalarLoadAccess(a, RegX, in.Rd)
	case riscv.OpLHU:
		a := x[in.Rs1] + uint64(in.Imm)
		h.setX(in.Rd, uint64(h.memRead16(a)))
		h.scalarLoadAccess(a, RegX, in.Rd)
	case riscv.OpLWU:
		a := x[in.Rs1] + uint64(in.Imm)
		h.setX(in.Rd, uint64(h.memRead32(a)))
		h.scalarLoadAccess(a, RegX, in.Rd)

	case riscv.OpSB:
		a := x[in.Rs1] + uint64(in.Imm)
		h.memWrite8(a, uint8(x[in.Rs2]))
		h.scalarStoreAccess(a)
	case riscv.OpSH:
		a := x[in.Rs1] + uint64(in.Imm)
		h.memWrite16(a, uint16(x[in.Rs2]))
		h.scalarStoreAccess(a)
	case riscv.OpSW:
		a := x[in.Rs1] + uint64(in.Imm)
		h.memWrite32(a, uint32(x[in.Rs2]))
		h.scalarStoreAccess(a)
	case riscv.OpSD:
		a := x[in.Rs1] + uint64(in.Imm)
		h.memWrite64(a, x[in.Rs2])
		h.scalarStoreAccess(a)

	case riscv.OpADDI:
		h.setX(in.Rd, x[in.Rs1]+uint64(in.Imm))
	case riscv.OpSLTI:
		h.setX(in.Rd, b2u(int64(x[in.Rs1]) < in.Imm))
	case riscv.OpSLTIU:
		h.setX(in.Rd, b2u(x[in.Rs1] < uint64(in.Imm)))
	case riscv.OpXORI:
		h.setX(in.Rd, x[in.Rs1]^uint64(in.Imm))
	case riscv.OpORI:
		h.setX(in.Rd, x[in.Rs1]|uint64(in.Imm))
	case riscv.OpANDI:
		h.setX(in.Rd, x[in.Rs1]&uint64(in.Imm))
	case riscv.OpSLLI:
		h.setX(in.Rd, x[in.Rs1]<<uint(in.Imm&63))
	case riscv.OpSRLI:
		h.setX(in.Rd, x[in.Rs1]>>uint(in.Imm&63))
	case riscv.OpSRAI:
		h.setX(in.Rd, uint64(int64(x[in.Rs1])>>uint(in.Imm&63)))

	case riscv.OpADD:
		h.setX(in.Rd, x[in.Rs1]+x[in.Rs2])
	case riscv.OpSUB:
		h.setX(in.Rd, x[in.Rs1]-x[in.Rs2])
	case riscv.OpSLL:
		h.setX(in.Rd, x[in.Rs1]<<(x[in.Rs2]&63))
	case riscv.OpSLT:
		h.setX(in.Rd, b2u(int64(x[in.Rs1]) < int64(x[in.Rs2])))
	case riscv.OpSLTU:
		h.setX(in.Rd, b2u(x[in.Rs1] < x[in.Rs2]))
	case riscv.OpXOR:
		h.setX(in.Rd, x[in.Rs1]^x[in.Rs2])
	case riscv.OpSRL:
		h.setX(in.Rd, x[in.Rs1]>>(x[in.Rs2]&63))
	case riscv.OpSRA:
		h.setX(in.Rd, uint64(int64(x[in.Rs1])>>(x[in.Rs2]&63)))
	case riscv.OpOR:
		h.setX(in.Rd, x[in.Rs1]|x[in.Rs2])
	case riscv.OpAND:
		h.setX(in.Rd, x[in.Rs1]&x[in.Rs2])

	case riscv.OpADDIW:
		h.setX(in.Rd, sext32(uint32(x[in.Rs1])+uint32(in.Imm)))
	case riscv.OpSLLIW:
		h.setX(in.Rd, sext32(uint32(x[in.Rs1])<<uint(in.Imm&31)))
	case riscv.OpSRLIW:
		h.setX(in.Rd, sext32(uint32(x[in.Rs1])>>uint(in.Imm&31)))
	case riscv.OpSRAIW:
		h.setX(in.Rd, uint64(int64(int32(x[in.Rs1])>>uint(in.Imm&31))))
	case riscv.OpADDW:
		h.setX(in.Rd, sext32(uint32(x[in.Rs1])+uint32(x[in.Rs2])))
	case riscv.OpSUBW:
		h.setX(in.Rd, sext32(uint32(x[in.Rs1])-uint32(x[in.Rs2])))
	case riscv.OpSLLW:
		h.setX(in.Rd, sext32(uint32(x[in.Rs1])<<(x[in.Rs2]&31)))
	case riscv.OpSRLW:
		h.setX(in.Rd, sext32(uint32(x[in.Rs1])>>(x[in.Rs2]&31)))
	case riscv.OpSRAW:
		h.setX(in.Rd, uint64(int64(int32(x[in.Rs1])>>(x[in.Rs2]&31))))

	case riscv.OpFENCE:
		// No reordering to constrain in this model.
	case riscv.OpFENCEI:
		// Instruction-stream synchronisation: the decoded-instruction and
		// superblock caches hold pre-decoded text, so a program that wrote
		// code must fence.i before jumping to it. The flush has no timing
		// or statistics effect (decode is not modelled as a cached timing
		// resource), so running it under speculation needs no undo.
		h.FlushDecodeCache()

	case riscv.OpECALL:
		return h.ecall()
	case riscv.OpEBREAK:
		h.Halted = true
		return StepExecuted

	// ----- Zicsr -----
	case riscv.OpCSRRW, riscv.OpCSRRS, riscv.OpCSRRC,
		riscv.OpCSRRWI, riscv.OpCSRRSI, riscv.OpCSRRCI:
		return h.executeCSR(in)

	// ----- M -----
	case riscv.OpMUL:
		h.setX(in.Rd, x[in.Rs1]*x[in.Rs2])
	case riscv.OpMULH:
		h.setX(in.Rd, mulh(int64(x[in.Rs1]), int64(x[in.Rs2])))
	case riscv.OpMULHSU:
		h.setX(in.Rd, mulhsu(int64(x[in.Rs1]), x[in.Rs2]))
	case riscv.OpMULHU:
		h.setX(in.Rd, mulhu(x[in.Rs1], x[in.Rs2]))
	case riscv.OpDIV:
		h.setX(in.Rd, divS(int64(x[in.Rs1]), int64(x[in.Rs2])))
	case riscv.OpDIVU:
		h.setX(in.Rd, divU(x[in.Rs1], x[in.Rs2]))
	case riscv.OpREM:
		h.setX(in.Rd, remS(int64(x[in.Rs1]), int64(x[in.Rs2])))
	case riscv.OpREMU:
		h.setX(in.Rd, remU(x[in.Rs1], x[in.Rs2]))
	case riscv.OpMULW:
		h.setX(in.Rd, sext32(uint32(x[in.Rs1])*uint32(x[in.Rs2])))
	case riscv.OpDIVW:
		h.setX(in.Rd, uint64(int64(div32(int32(x[in.Rs1]), int32(x[in.Rs2])))))
	case riscv.OpDIVUW:
		h.setX(in.Rd, sext32(divu32(uint32(x[in.Rs1]), uint32(x[in.Rs2]))))
	case riscv.OpREMW:
		h.setX(in.Rd, uint64(int64(rem32(int32(x[in.Rs1]), int32(x[in.Rs2])))))
	case riscv.OpREMUW:
		h.setX(in.Rd, sext32(remu32(uint32(x[in.Rs1]), uint32(x[in.Rs2]))))

	// ----- A -----
	case riscv.OpLRW:
		a := x[in.Rs1]
		h.setX(in.Rd, sext32(h.memRead32(a)))
		h.resv.set(h.ID, h.L1D.LineAddr(a))
		h.scalarLoadAccess(a, RegX, in.Rd)
	case riscv.OpLRD:
		a := x[in.Rs1]
		h.setX(in.Rd, h.memRead64(a))
		h.resv.set(h.ID, h.L1D.LineAddr(a))
		h.scalarLoadAccess(a, RegX, in.Rd)
	case riscv.OpSCW:
		a := x[in.Rs1]
		if h.resv.check(h.ID, h.L1D.LineAddr(a)) {
			h.memWrite32(a, uint32(x[in.Rs2]))
			h.setX(in.Rd, 0)
			h.scalarStoreAccess(a)
		} else {
			h.setX(in.Rd, 1)
		}
	case riscv.OpSCD:
		a := x[in.Rs1]
		if h.resv.check(h.ID, h.L1D.LineAddr(a)) {
			h.memWrite64(a, x[in.Rs2])
			h.setX(in.Rd, 0)
			h.scalarStoreAccess(a)
		} else {
			h.setX(in.Rd, 1)
		}
	case riscv.OpAMOSWAPW, riscv.OpAMOADDW, riscv.OpAMOXORW, riscv.OpAMOANDW,
		riscv.OpAMOORW, riscv.OpAMOMINW, riscv.OpAMOMAXW,
		riscv.OpAMOMINUW, riscv.OpAMOMAXUW:
		h.amo32(in)
	case riscv.OpAMOSWAPD, riscv.OpAMOADDD, riscv.OpAMOXORD, riscv.OpAMOANDD,
		riscv.OpAMOORD, riscv.OpAMOMIND, riscv.OpAMOMAXD,
		riscv.OpAMOMINUD, riscv.OpAMOMAXUD:
		h.amo64(in)

	default:
		if in.Op.Classify()&riscv.ClassFloat != 0 {
			return h.executeFP(in)
		}
		if in.Op.IsVector() {
			return h.executeVector(in)
		}
		h.Fault = fmt.Errorf("hart %d: pc=%#x: unimplemented op %v", h.ID, h.PC, in.Op) //coyote:alloc-ok fault path is terminal, the run ends here
		h.Halted = true
		return StepFault
	}
	return StepExecuted
}

// ecall implements the minimal bare-metal environment.
func (h *Hart) ecall() StepResult {
	switch h.X[riscv.RegA7] {
	case SysExit:
		h.ExitCode = h.X[riscv.RegA0]
		h.Halted = true
		return StepExecuted
	case SysWrite:
		buf := h.X[riscv.RegA1]
		n := h.X[riscv.RegA2]
		for i := uint64(0); i < n; i++ {
			h.Console.WriteByte(h.memRead8(buf + i))
		}
		h.X[riscv.RegA0] = n
		return StepExecuted
	default:
		h.Fault = fmt.Errorf("hart %d: pc=%#x: unsupported ecall %d", //coyote:alloc-ok fault path is terminal, the run ends here
			h.ID, h.PC, h.X[riscv.RegA7])
		h.Halted = true
		return StepFault
	}
}

func (h *Hart) amo32(in riscv.Instr) {
	a := h.X[in.Rs1]
	old := sext32(h.memRead32(a))
	src := h.X[in.Rs2]
	var res uint32
	switch in.Op {
	case riscv.OpAMOSWAPW:
		res = uint32(src)
	case riscv.OpAMOADDW:
		res = uint32(old) + uint32(src)
	case riscv.OpAMOXORW:
		res = uint32(old) ^ uint32(src)
	case riscv.OpAMOANDW:
		res = uint32(old) & uint32(src)
	case riscv.OpAMOORW:
		res = uint32(old) | uint32(src)
	case riscv.OpAMOMINW:
		res = uint32(minS32(int32(old), int32(src)))
	case riscv.OpAMOMAXW:
		res = uint32(maxS32(int32(old), int32(src)))
	case riscv.OpAMOMINUW:
		res = minU32(uint32(old), uint32(src))
	case riscv.OpAMOMAXUW:
		res = maxU32(uint32(old), uint32(src))
	}
	h.memWrite32(a, res)
	h.setX(in.Rd, old)
	// Timing: an AMO is a read-modify-write of one line; the result value
	// depends on the memory round trip, so rd becomes pending on a miss.
	h.oneAddr[0] = a
	h.dataAccess(h.oneAddr[:], true, RegX, in.Rd, in.Rd != 0)
	h.storeInvalidate(a)
}

func (h *Hart) amo64(in riscv.Instr) {
	a := h.X[in.Rs1]
	old := h.memRead64(a)
	src := h.X[in.Rs2]
	var res uint64
	switch in.Op {
	case riscv.OpAMOSWAPD:
		res = src
	case riscv.OpAMOADDD:
		res = old + src
	case riscv.OpAMOXORD:
		res = old ^ src
	case riscv.OpAMOANDD:
		res = old & src
	case riscv.OpAMOORD:
		res = old | src
	case riscv.OpAMOMIND:
		if int64(src) < int64(old) {
			res = src
		} else {
			res = old
		}
	case riscv.OpAMOMAXD:
		if int64(src) > int64(old) {
			res = src
		} else {
			res = old
		}
	case riscv.OpAMOMINUD:
		if src < old {
			res = src
		} else {
			res = old
		}
	case riscv.OpAMOMAXUD:
		if src > old {
			res = src
		} else {
			res = old
		}
	}
	h.memWrite64(a, res)
	h.setX(in.Rd, old)
	h.oneAddr[0] = a
	h.dataAccess(h.oneAddr[:], true, RegX, in.Rd, in.Rd != 0)
	h.storeInvalidate(a)
}

// ---- arithmetic helpers ----

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func sext32(v uint32) uint64 { return uint64(int64(int32(v))) }

// mulhu returns the high 64 bits of the unsigned 128-bit product.
func mulhu(a, b uint64) uint64 {
	hi, _ := bits.Mul64(a, b)
	return hi
}

// mulh returns the high 64 bits of the signed 128-bit product.
func mulh(a, b int64) uint64 {
	hi := mulhu(uint64(a), uint64(b))
	// Correct the unsigned product for negative operands.
	if a < 0 {
		hi -= uint64(b)
	}
	if b < 0 {
		hi -= uint64(a)
	}
	return hi
}

// mulhsu returns the high 64 bits of the signed×unsigned 128-bit product.
func mulhsu(a int64, b uint64) uint64 {
	hi := mulhu(uint64(a), b)
	if a < 0 {
		hi -= b
	}
	return hi
}

func divS(a, b int64) uint64 {
	switch {
	case b == 0:
		return ^uint64(0)
	case a == -1<<63 && b == -1:
		return uint64(a)
	default:
		return uint64(a / b)
	}
}

func divU(a, b uint64) uint64 {
	if b == 0 {
		return ^uint64(0)
	}
	return a / b
}

func remS(a, b int64) uint64 {
	switch {
	case b == 0:
		return uint64(a)
	case a == -1<<63 && b == -1:
		return 0
	default:
		return uint64(a % b)
	}
}

func remU(a, b uint64) uint64 {
	if b == 0 {
		return a
	}
	return a % b
}

func div32(a, b int32) int32 {
	switch {
	case b == 0:
		return -1
	case a == -1<<31 && b == -1:
		return a
	default:
		return a / b
	}
}

func divu32(a, b uint32) uint32 {
	if b == 0 {
		return ^uint32(0)
	}
	return a / b
}

func rem32(a, b int32) int32 {
	switch {
	case b == 0:
		return a
	case a == -1<<31 && b == -1:
		return 0
	default:
		return a % b
	}
}

func remu32(a, b uint32) uint32 {
	if b == 0 {
		return a
	}
	return a % b
}

func minS32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}
func maxS32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}
func minU32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}
func maxU32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}
