package cpu

import (
	"fmt"
	"sort"

	"github.com/coyote-sim/coyote/internal/ckpt"
	"github.com/coyote-sim/coyote/internal/riscv"
)

// Checkpoint writes the hart's complete architectural and model state to
// w: register files, CSRs, scoreboard, L1 tag state, statistics and the
// console buffer. Decode-derived state (step/block caches, fetch fast
// path) is a pure function of program memory and is rebuilt after
// restore. Checkpoints are taken between instructions at a quantum
// boundary, so speculation must be disarmed, faults absent and the event
// queue drained.
func (h *Hart) Checkpoint(w *ckpt.Writer) error {
	if h.spec.active {
		return fmt.Errorf("cpu: hart %d: checkpoint while speculation is armed", h.ID)
	}
	if h.Fault != nil {
		return fmt.Errorf("cpu: hart %d: checkpoint of a faulted hart", h.ID)
	}
	if len(h.Events) != 0 {
		return fmt.Errorf("cpu: hart %d: checkpoint with %d undrained memory events", h.ID, len(h.Events))
	}
	w.U64(h.PC)
	for _, v := range h.X {
		w.U64(v)
	}
	for _, v := range h.F {
		w.U64(v)
	}
	w.Bytes64(h.V)
	w.U64(h.VL)
	w.U64(h.vtypeRaw)

	for k := RegKind(0); k < regKinds; k++ {
		w.U32(h.pending[k])
		for _, c := range h.pendingCount[k] {
			w.U16(c)
		}
	}
	w.Bool(h.fetchPending)
	w.Bool(h.Halted)
	w.U64(h.ExitCode)
	w.U64(h.busyUntil)

	w.U64(h.Stats.Instret)
	w.U64(h.Stats.VectorOps)
	w.U64(h.Stats.StallsRAW)
	w.U64(h.Stats.StallsFetch)
	w.U64(h.Stats.BusyCycles)
	w.U64(h.Stats.LoadMisses)
	w.U64(h.Stats.StoreMisses)
	w.U64(h.Stats.FetchMisses)
	w.U64(h.Stats.Writebacks)
	w.U64(h.Stats.ElemAccesses)

	keys := make([]uint16, 0, len(h.csr))
	//coyote:mapiter-ok keys are sorted before serialization; the encoding is order-canonical
	for k := range h.csr {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	w.U64(uint64(len(keys)))
	for _, k := range keys {
		w.U16(k)
		w.U64(h.csr[k])
	}

	w.Bytes64(h.Console.Bytes())

	if err := h.L1I.Checkpoint(w); err != nil {
		return fmt.Errorf("cpu: hart %d: L1I: %w", h.ID, err)
	}
	if err := h.L1D.Checkpoint(w); err != nil {
		return fmt.Errorf("cpu: hart %d: L1D: %w", h.ID, err)
	}
	return nil
}

// Restore reloads the state written by Checkpoint into a freshly
// constructed hart with the same Config. Decode caches are flushed and
// rebuild on demand; the vtype fields are re-derived from the raw CSR so
// the decoded and raw views cannot diverge.
func (h *Hart) Restore(r *ckpt.Reader) error {
	h.PC = r.U64()
	for i := range h.X {
		h.X[i] = r.U64()
	}
	for i := range h.F {
		h.F[i] = r.U64()
	}
	v := r.Bytes64()
	vl := r.U64()
	vtypeRaw := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if len(v) != len(h.V) {
		return fmt.Errorf("cpu: hart %d: checkpoint V file is %d bytes, this hart has %d (VLenBits mismatch)", h.ID, len(v), len(h.V))
	}
	copy(h.V, v)
	h.VL = vl
	h.vtypeRaw = vtypeRaw
	if t, ok := riscv.DecodeVType(vtypeRaw); ok {
		h.VType = t
	} else {
		h.VType = riscv.VType{}
	}

	for k := RegKind(0); k < regKinds; k++ {
		h.pending[k] = r.U32()
		for i := range h.pendingCount[k] {
			h.pendingCount[k][i] = r.U16()
		}
	}
	h.fetchPending = r.Bool()
	h.Halted = r.Bool()
	h.ExitCode = r.U64()
	h.busyUntil = r.U64()

	h.Stats.Instret = r.U64()
	h.Stats.VectorOps = r.U64()
	h.Stats.StallsRAW = r.U64()
	h.Stats.StallsFetch = r.U64()
	h.Stats.BusyCycles = r.U64()
	h.Stats.LoadMisses = r.U64()
	h.Stats.StoreMisses = r.U64()
	h.Stats.FetchMisses = r.U64()
	h.Stats.Writebacks = r.U64()
	h.Stats.ElemAccesses = r.U64()

	nCSR := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	h.csr = make(map[uint16]uint64, nCSR)
	var lastKey uint16
	for i := uint64(0); i < nCSR; i++ {
		k := r.U16()
		val := r.U64()
		if err := r.Err(); err != nil {
			return err
		}
		if i > 0 && k <= lastKey {
			return fmt.Errorf("cpu: hart %d: checkpoint CSRs out of order at %#x", h.ID, k)
		}
		lastKey = k
		h.csr[k] = val
	}

	console := r.Bytes64()
	if err := r.Err(); err != nil {
		return err
	}
	h.Console.Reset()
	h.Console.Write(console)

	// Consistency: every pending bit must agree with its fill counts.
	for k := RegKind(0); k < regKinds; k++ {
		var want uint32
		for i, c := range h.pendingCount[k] {
			if c > 0 {
				want |= 1 << i
			}
		}
		if want != h.pending[k] {
			return fmt.Errorf("cpu: hart %d: checkpoint scoreboard kind %d: pending bits %#x disagree with counts %#x", h.ID, k, h.pending[k], want)
		}
	}

	if err := h.L1I.Restore(r); err != nil {
		return fmt.Errorf("cpu: hart %d: L1I: %w", h.ID, err)
	}
	if err := h.L1D.Restore(r); err != nil {
		return fmt.Errorf("cpu: hart %d: L1D: %w", h.ID, err)
	}

	h.Fault = nil
	h.Events = h.Events[:0]
	h.FlushDecodeCache()
	return nil
}

// PendingCounts exposes the scoreboard's outstanding-fill counts for one
// register kind. The orchestrator uses it after restore to resynchronize
// the coyotesan in-flight ledger with the restored scoreboard.
func (h *Hart) PendingCounts(kind RegKind) [32]uint16 { return h.pendingCount[kind] }

// FetchPending reports whether an instruction-fetch fill is outstanding.
func (h *Hart) FetchPending() bool { return h.fetchPending }

// Checkpoint writes the LR/SC reservation set.
func (r *Reservations) Checkpoint(w *ckpt.Writer) {
	w.U64(uint64(len(r.line)))
	for i := range r.line {
		w.U64(r.line[i])
		w.Bool(r.valid[i])
	}
}

// Restore reloads a reservation set of identical size.
func (r *Reservations) Restore(rd *ckpt.Reader) error {
	n := rd.U64()
	if err := rd.Err(); err != nil {
		return err
	}
	if n != uint64(len(r.line)) {
		return fmt.Errorf("cpu: checkpoint has %d reservations, this set has %d", n, len(r.line))
	}
	for i := range r.line {
		r.line[i] = rd.U64()
		r.valid[i] = rd.Bool()
	}
	return rd.Err()
}
