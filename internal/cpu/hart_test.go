package cpu

import (
	"testing"

	"github.com/coyote-sim/coyote/internal/mem"
	"github.com/coyote-sim/coyote/internal/riscv"
)

const textBase = 0x80000000

// newTestHart builds a hart with small caches over fresh memory.
func newTestHart(t *testing.T) *Hart {
	t.Helper()
	m := mem.New()
	h, err := NewHart(0, DefaultConfig(), m, nil)
	if err != nil {
		t.Fatal(err)
	}
	h.PC = textBase
	return h
}

// load writes a program (plus a trailing ebreak) at textBase.
func load(t *testing.T, h *Hart, prog ...riscv.Instr) {
	t.Helper()
	addr := uint64(textBase)
	for _, in := range prog {
		h.Mem.Write32(addr, riscv.MustEncode(in))
		addr += 4
	}
	h.Mem.Write32(addr, riscv.MustEncode(riscv.Instr{Op: riscv.OpEBREAK, VM: true}))
}

// run steps until halt or fault, servicing misses instantly (zero-latency
// memory) so purely-functional tests are not perturbed by timing.
func run(t *testing.T, h *Hart, maxSteps int) {
	t.Helper()
	for i := 0; i < maxSteps; i++ {
		res := h.Step(uint64(i))
		for _, ev := range h.DrainEvents() {
			if ev.Fetch {
				h.CompleteFetch()
			} else if ev.HasDest {
				h.CompleteFill(ev.Dest, ev.DestReg)
			}
		}
		switch res {
		case StepHalted:
			return
		case StepFault:
			t.Fatalf("fault: %v", h.Fault)
		}
		if h.Halted {
			return
		}
	}
	t.Fatalf("program did not halt in %d steps (pc=%#x)", maxSteps, h.PC)
}

func ins(op riscv.Op, rd, rs1, rs2 uint8, imm int64) riscv.Instr {
	return riscv.Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2, Imm: imm, VM: true}
}

func TestALUBasics(t *testing.T) {
	h := newTestHart(t)
	load(t, h,
		ins(riscv.OpADDI, 5, 0, 0, 100), // t0 = 100
		ins(riscv.OpADDI, 6, 0, 0, -30), // t1 = -30
		ins(riscv.OpADD, 7, 5, 6, 0),    // t2 = 70
		ins(riscv.OpSUB, 28, 5, 6, 0),   // t3 = 130
		ins(riscv.OpSLTI, 29, 6, 0, 0),  // t4 = (-30 < 0) = 1
		ins(riscv.OpSLLI, 30, 5, 0, 3),  // t5 = 800
	)
	run(t, h, 100)
	checks := map[uint8]uint64{
		5: 100, 6: ^uint64(29), 7: 70, 28: 130, 29: 1, 30: 800,
	}
	for r, want := range checks {
		if h.X[r] != want {
			t.Errorf("x%d = %d, want %d", r, int64(h.X[r]), int64(want))
		}
	}
}

func TestX0Hardwired(t *testing.T) {
	h := newTestHart(t)
	load(t, h, ins(riscv.OpADDI, 0, 0, 0, 42))
	run(t, h, 10)
	if h.X[0] != 0 {
		t.Errorf("x0 = %d, want 0", h.X[0])
	}
}

func TestLoadStore(t *testing.T) {
	h := newTestHart(t)
	h.X[10] = 0x1000
	load(t, h,
		ins(riscv.OpADDI, 5, 0, 0, -1), // t0 = all ones
		ins(riscv.OpSD, 0, 10, 5, 0),   // [a0] = t0
		ins(riscv.OpLW, 6, 10, 0, 0),   // t1 = sext32(ffffffff) = -1
		ins(riscv.OpLWU, 7, 10, 0, 0),  // t2 = 0xffffffff
		ins(riscv.OpLB, 28, 10, 0, 0),  // -1
		ins(riscv.OpLBU, 29, 10, 0, 0), // 0xff
		ins(riscv.OpLHU, 30, 10, 0, 0), // 0xffff
	)
	run(t, h, 100)
	if h.X[6] != ^uint64(0) {
		t.Errorf("lw = %#x", h.X[6])
	}
	if h.X[7] != 0xffffffff {
		t.Errorf("lwu = %#x", h.X[7])
	}
	if h.X[28] != ^uint64(0) || h.X[29] != 0xff || h.X[30] != 0xffff {
		t.Errorf("byte/half loads wrong: %#x %#x %#x", h.X[28], h.X[29], h.X[30])
	}
}

func TestBranchesAndJumps(t *testing.T) {
	h := newTestHart(t)
	// t0=5; loop: t1+=t0; t0-=1; bne t0,zero,loop  → t1 = 15
	load(t, h,
		ins(riscv.OpADDI, 5, 0, 0, 5),
		ins(riscv.OpADD, 6, 6, 5, 0),
		ins(riscv.OpADDI, 5, 5, 0, -1),
		ins(riscv.OpBNE, 0, 5, 0, -8),
	)
	run(t, h, 100)
	if h.X[6] != 15 {
		t.Errorf("loop sum = %d, want 15", h.X[6])
	}
}

func TestJALLinkAndTarget(t *testing.T) {
	h := newTestHart(t)
	load(t, h,
		ins(riscv.OpJAL, 1, 0, 0, 8),   // jump over next instr
		ins(riscv.OpADDI, 5, 0, 0, 99), // skipped
		ins(riscv.OpADDI, 6, 0, 0, 7),
	)
	run(t, h, 10)
	if h.X[5] != 0 {
		t.Error("skipped instruction executed")
	}
	if h.X[6] != 7 {
		t.Error("jump target not executed")
	}
	if h.X[1] != textBase+4 {
		t.Errorf("link = %#x, want %#x", h.X[1], textBase+4)
	}
}

func TestMulDiv(t *testing.T) {
	h := newTestHart(t)
	h.X[10] = ^uint64(6) // -7
	h.X[11] = 3
	load(t, h,
		ins(riscv.OpMUL, 5, 10, 11, 0),   // -21
		ins(riscv.OpDIV, 6, 10, 11, 0),   // -2 (trunc)
		ins(riscv.OpREM, 7, 10, 11, 0),   // -1
		ins(riscv.OpDIVU, 28, 10, 11, 0), // huge
		ins(riscv.OpMULHU, 29, 10, 10, 0),
	)
	run(t, h, 10)
	if int64(h.X[5]) != -21 || int64(h.X[6]) != -2 || int64(h.X[7]) != -1 {
		t.Errorf("mul/div/rem = %d %d %d", int64(h.X[5]), int64(h.X[6]), int64(h.X[7]))
	}
	if h.X[28] != (^uint64(0)-6)/3 {
		t.Errorf("divu = %d", h.X[28])
	}
	// (-7 as unsigned)^2 high word: (2^64-7)^2 = 2^128 - 14*2^64 + 49
	if h.X[29] != ^uint64(0)-13 {
		t.Errorf("mulhu = %#x, want %#x", h.X[29], ^uint64(0)-13)
	}
}

func TestDivByZeroSemantics(t *testing.T) {
	h := newTestHart(t)
	h.X[10] = 42
	load(t, h,
		ins(riscv.OpDIV, 5, 10, 0, 0),
		ins(riscv.OpREM, 6, 10, 0, 0),
		ins(riscv.OpDIVU, 7, 10, 0, 0),
		ins(riscv.OpREMU, 28, 10, 0, 0),
	)
	run(t, h, 10)
	if h.X[5] != ^uint64(0) || h.X[6] != 42 || h.X[7] != ^uint64(0) || h.X[28] != 42 {
		t.Errorf("div-by-zero = %#x %d %#x %d", h.X[5], h.X[6], h.X[7], h.X[28])
	}
}

func TestWWordOps(t *testing.T) {
	h := newTestHart(t)
	h.X[10] = 0x1_0000_0001 // 33-bit value
	load(t, h,
		ins(riscv.OpADDIW, 5, 10, 0, 0), // sext32(1) = 1
		ins(riscv.OpADDW, 6, 10, 10, 0), // 2
		ins(riscv.OpSLLIW, 7, 10, 0, 31),
	)
	run(t, h, 10)
	if h.X[5] != 1 || h.X[6] != 2 {
		t.Errorf("addiw/addw = %d %d", h.X[5], h.X[6])
	}
	if h.X[7] != 0xffffffff80000000 {
		t.Errorf("slliw = %#x", h.X[7])
	}
}

func TestEcallExit(t *testing.T) {
	h := newTestHart(t)
	load(t, h,
		ins(riscv.OpADDI, riscv.RegA0, 0, 0, 3),
		ins(riscv.OpADDI, riscv.RegA7, 0, 0, SysExit),
		ins(riscv.OpECALL, 0, 0, 0, 0),
	)
	run(t, h, 10)
	if !h.Halted || h.ExitCode != 3 {
		t.Errorf("halted=%v exit=%d", h.Halted, h.ExitCode)
	}
}

func TestEcallWrite(t *testing.T) {
	h := newTestHart(t)
	msg := "hi\n"
	h.Mem.WriteBytes(0x2000, []byte(msg))
	h.X[riscv.RegA0] = 1
	h.X[riscv.RegA1] = 0x2000
	h.X[riscv.RegA2] = uint64(len(msg))
	load(t, h,
		ins(riscv.OpADDI, riscv.RegA7, 0, 0, SysWrite),
		ins(riscv.OpECALL, 0, 0, 0, 0),
	)
	run(t, h, 10)
	if got := h.Console.String(); got != msg {
		t.Errorf("console = %q, want %q", got, msg)
	}
}

func TestCSRAccess(t *testing.T) {
	h := newTestHart(t)
	h.CycleFn = func() uint64 { return 1234 }
	load(t, h,
		ins(riscv.OpCSRRS, 5, 0, 0, riscv.CSRMHartID),
		ins(riscv.OpCSRRS, 6, 0, 0, riscv.CSRCycle),
		ins(riscv.OpCSRRW, 7, 5, 0, 0x340), // mscratch: swap in hartid
		ins(riscv.OpCSRRS, 28, 0, 0, 0x340),
	)
	run(t, h, 10)
	if h.X[5] != 0 {
		t.Errorf("mhartid = %d", h.X[5])
	}
	if h.X[6] == 0 {
		t.Error("cycle CSR did not use CycleFn")
	}
	if h.X[28] != h.X[5] {
		t.Errorf("mscratch readback = %d", h.X[28])
	}
}

func TestFloatBasics(t *testing.T) {
	h := newTestHart(t)
	h.Mem.WriteFloat64(0x1000, 1.5)
	h.Mem.WriteFloat64(0x1008, 2.25)
	h.X[10] = 0x1000
	load(t, h,
		ins(riscv.OpFLD, 1, 10, 0, 0),
		ins(riscv.OpFLD, 2, 10, 0, 8),
		ins(riscv.OpFADDD, 3, 1, 2, 0),
		ins(riscv.OpFMULD, 4, 1, 2, 0),
		riscv.Instr{Op: riscv.OpFMADDD, Rd: 5, Rs1: 1, Rs2: 2, Rs3: 3, VM: true},
		ins(riscv.OpFSD, 0, 10, 3, 16),
		ins(riscv.OpFCVTWD, 5, 4, 0, 0),
	)
	run(t, h, 20)
	if got := h.Mem.ReadFloat64(0x1010); got != 3.75 {
		t.Errorf("fadd.d stored %v, want 3.75", got)
	}
	if got := h.getF64(4); got != 3.375 {
		t.Errorf("fmul.d = %v", got)
	}
	if int64(h.X[5]) != 3 { // fcvt.w.d of 3.375
		t.Errorf("fcvt.w.d = %d", int64(h.X[5]))
	}
}

func TestAMOAndLRSC(t *testing.T) {
	h := newTestHart(t)
	h.Mem.Write64(0x3000, 10)
	h.X[10] = 0x3000
	h.X[11] = 5
	load(t, h,
		ins(riscv.OpAMOADDD, 5, 10, 11, 0), // t0 = 10, mem = 15
		ins(riscv.OpLRD, 6, 10, 0, 0),      // t1 = 15, reserve
		ins(riscv.OpSCD, 7, 10, 11, 0),     // success: mem = 5, t2 = 0
		ins(riscv.OpSCD, 28, 10, 11, 0),    // fail: reservation consumed
	)
	run(t, h, 10)
	if h.X[5] != 10 || h.X[6] != 15 {
		t.Errorf("amoadd/lr = %d %d", h.X[5], h.X[6])
	}
	if h.X[7] != 0 {
		t.Errorf("sc should succeed, got %d", h.X[7])
	}
	if h.X[28] != 1 {
		t.Errorf("second sc should fail, got %d", h.X[28])
	}
	if h.Mem.Read64(0x3000) != 5 {
		t.Errorf("mem = %d", h.Mem.Read64(0x3000))
	}
}

func TestReservationBrokenByOtherHart(t *testing.T) {
	m := mem.New()
	resv := NewReservations(2)
	h0, _ := NewHart(0, DefaultConfig(), m, resv)
	h1, _ := NewHart(1, DefaultConfig(), m, resv)
	_ = h1
	resv.set(0, 0x3000&^63)
	resv.invalidateStores(1, 0x3000&^63) // hart 1 stores to the line
	if resv.check(0, 0x3000&^63) {
		t.Error("reservation should have been invalidated by other hart's store")
	}
	_ = h0
}

func TestIllegalInstructionFaults(t *testing.T) {
	h := newTestHart(t)
	h.Mem.Write32(textBase, 0xffffffff)
	if res := h.Step(0); res != StepStalledFetch {
		t.Fatalf("first step should miss L1I, got %v", res)
	}
	for _, ev := range h.DrainEvents() {
		if ev.Fetch {
			h.CompleteFetch()
		}
	}
	if res := h.Step(1); res != StepFault {
		t.Fatalf("expected fault, got %v", res)
	}
	if h.Fault == nil || !h.Halted {
		t.Error("fault state not set")
	}
}

func TestLoadMissMarksPendingAndStalls(t *testing.T) {
	h := newTestHart(t)
	h.X[10] = 0x9000
	load(t, h,
		ins(riscv.OpLD, 5, 10, 0, 0),  // miss: t0 pending
		ins(riscv.OpADDI, 6, 0, 0, 1), // independent: executes
		ins(riscv.OpADD, 7, 5, 6, 0),  // RAW on t0: stalls
	)
	// Step 0: fetch miss.
	if res := h.Step(0); res != StepStalledFetch {
		t.Fatalf("step0 = %v", res)
	}
	evs := h.DrainEvents()
	if len(evs) != 1 || !evs[0].Fetch {
		t.Fatalf("events = %+v", evs)
	}
	h.CompleteFetch()

	// Step 1: the load executes, misses, marks x5 pending.
	if res := h.Step(1); res != StepExecuted {
		t.Fatalf("step1 = %v", res)
	}
	evs = h.DrainEvents()
	if len(evs) != 1 || evs[0].HasDest == false || evs[0].DestReg != 5 {
		t.Fatalf("load miss events = %+v", evs)
	}
	if !h.Pending(RegX, 5) {
		t.Fatal("x5 should be pending")
	}
	// Functional value is already visible (execution-driven model).
	if h.X[5] != 0 {
		t.Fatalf("x5 functional value = %d", h.X[5])
	}

	// Step 2: independent instruction proceeds.
	if res := h.Step(2); res != StepExecuted {
		t.Fatalf("step2 = %v", res)
	}
	h.DrainEvents()

	// Step 3: dependent instruction stalls.
	if res := h.Step(3); res != StepStalledRAW {
		t.Fatalf("step3 = %v, want RAW stall", res)
	}
	if h.Stats.StallsRAW != 1 {
		t.Errorf("StallsRAW = %d", h.Stats.StallsRAW)
	}

	// Complete the fill: now it executes.
	h.CompleteFill(RegX, 5)
	if h.Pending(RegX, 5) {
		t.Fatal("x5 should be clear")
	}
	if res := h.Step(4); res != StepExecuted {
		t.Fatalf("step4 = %v", res)
	}
	if h.X[7] != 1 {
		t.Errorf("x7 = %d", h.X[7])
	}
}

func TestStrayCompletionPanics(t *testing.T) {
	h := newTestHart(t)
	defer func() {
		if recover() == nil {
			t.Error("stray completion should panic")
		}
	}()
	h.CompleteFill(RegX, 5)
}

func TestWritebackEventOnDirtyEviction(t *testing.T) {
	h := newTestHart(t)
	// Fill one set with dirty lines, then force an eviction.
	cfg := h.L1D.Config()
	sets := uint64(cfg.Sets())
	stride := sets * uint64(cfg.LineBytes)
	var prog []riscv.Instr
	prog = append(prog, ins(riscv.OpADDI, 10, 0, 0, 0))
	for w := 0; w <= cfg.Ways; w++ {
		prog = append(prog,
			ins(riscv.OpLUI, 11, 0, 0, int64((0x10000000+uint64(w)*stride)>>12)),
			ins(riscv.OpSD, 0, 11, 10, 0),
		)
	}
	load(t, h, prog...)
	run(t, h, 100)
	if h.Stats.Writebacks == 0 {
		t.Error("expected at least one writeback event")
	}
}

// TestMulhsuEdges pins the high-half signed×unsigned multiply at its
// sign boundaries. a = 0 is the sharp edge: the negative-operand
// correction (hi -= b) must fire for a < 0 only — pulling zero into the
// correction underflows the high half by b.
func TestMulhsuEdges(t *testing.T) {
	cases := []struct {
		a    int64
		b    uint64
		want uint64
	}{
		{0, ^uint64(0), 0},           // 0 × max: high half is 0
		{1, 1 << 63, 0},              // 2^63 fits below the high half
		{2, 1 << 63, 1},              // 2^64: exactly one high bit
		{-1, 1, ^uint64(0)},          // −1 × 1 = −1: all-ones high half
		{-1, ^uint64(0), ^uint64(0)}, // −(2^64−1): high = 0xFF…FF
	}
	for _, c := range cases {
		if got := mulhsu(c.a, c.b); got != c.want {
			t.Errorf("mulhsu(%d, %#x) = %#x, want %#x", c.a, c.b, got, c.want)
		}
	}
}
