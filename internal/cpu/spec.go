package cpu

import (
	"math/bits"

	"github.com/coyote-sim/coyote/internal/mem"
	"github.com/coyote-sim/coyote/internal/riscv"
	"github.com/coyote-sim/coyote/internal/san"
)

// Speculative stepping: the parallel orchestrator (internal/core) steps
// runnable harts concurrently inside one simulated cycle, which is only
// legal if a hart's quantum produces *no* shared-state mutation until the
// orchestrator's sequential commit walk decides it is safe. While
// speculation is armed (BeginSpec):
//
//   - memory reads go through a private read-only mem.View and are logged
//     as (addr, size, value) — the value read from *memory*, before the
//     hart's own buffered stores are overlaid;
//   - memory writes are buffered in a store buffer instead of being
//     applied, and LR/SC reservation invalidation is deferred to commit;
//   - atomics (LR/SC/AMO read-modify-write the shared reservation set and
//     memory) refuse to execute speculatively: Step returns
//     StepSpecUnsafe and the orchestrator re-executes the hart serially;
//   - everything private that a quantum can touch is either cheap scalar
//     state (PC, stats, vtype, …), snapshotted wholesale by BeginSpec, or
//     journaled on first write: scalar and FP registers via the same
//     record-on-first-write undo log the vector file and CSR map already
//     used (specSaveX/specSaveF/specSaveV, csrUndo), and the pending-
//     register scoreboard via a per-increment undo list in markPending.
//     AbortSpec replays the journals and restores the hart bit-exactly —
//     rollback cost scales with the instructions the quantum retired, not
//     with the architectural state size.
//
// At commit time ValidateSpec replays the read log against current memory
// (which by then includes every lower-index hart's committed stores). A
// mismatch means the speculative execution consumed a stale value; the
// orchestrator aborts and re-executes the hart in its sequential commit
// slot, so the committed machine state is exactly what the sequential
// interleaving would have produced. The decoded-instruction cache is
// deliberately *not* rolled back: each entry is a pure function of
// (pc, instruction bytes, LMUL) with no timing or statistics effect, and
// the LMUL refresh in Step self-corrects after a rollback.

type specRead struct {
	addr uint64
	val  uint64
	size uint8
}

type specWrite struct {
	addr uint64
	val  uint64
	size uint8
}

type specCSRUndo struct {
	addr    uint16
	existed bool
	old     uint64
}

// pendUndo records one markPending increment performed under armed
// speculation, so AbortSpec can decrement it back out.
type pendUndo struct {
	kind RegKind
	reg  uint8
}

// specState holds the speculation journal and the pre-speculation
// snapshot of the hart's private scalar state. All slices are pooled:
// reset by re-slicing to zero length, grown at most once to the quantum's
// high-water mark.
type specState struct {
	active  bool
	view    mem.View
	viewFor *mem.Memory

	reads  []specRead
	writes []specWrite

	pc           uint64
	stats        Stats
	fetchPending bool
	vl           uint64
	vtype        riscv.VType
	vtypeRaw     uint64
	busyUntil    uint64
	halted       bool
	exitCode     uint64
	fault        error
	lastFetchLn  uint64
	lastFetchOK  bool
	consoleLen   int
	eventsLen    int

	// Lazy register saves: only the registers an instruction's write
	// masks name are copied, on the first write of the episode (full X+F
	// snapshots were 512 B per hart per cycle; a full V snapshot would be
	// 4 KiB). The masks make the save idempotent, so restore order is
	// irrelevant.
	xSavedMask uint32
	xSaveReg   []uint8
	xSaveVal   []uint64
	fSavedMask uint32
	fSaveReg   []uint8
	fSaveVal   []uint64
	vSavedMask uint32
	vSaveReg   []uint8
	vSave      []byte

	// pendUndo journals scoreboard increments (markPending is the only
	// pending-state mutator that can run during a quantum: completions
	// fire between cycles, on the main goroutine).
	pendUndo []pendUndo

	csrUndo []specCSRUndo

	// Full-snapshot cross-check of the write journals, coyotesan only:
	// AbortSpec compares the journal-restored state against these copies,
	// pinning any instruction whose RegUse write mask under-reports what
	// it mutated.
	sanX       [32]uint64
	sanF       [32]uint64
	sanPend    [regKinds]uint32
	sanPendCnt [regKinds][32]uint16
}

// SpecArmed reports whether the hart is currently executing speculatively.
func (h *Hart) SpecArmed() bool { return h.spec.active }

// SpecReads returns the number of logged speculative reads (test/audit
// visibility; only meaningful between BeginSpec and commit/abort).
func (h *Hart) SpecReads() int { return len(h.spec.reads) }

// BeginSpec arms speculative execution and snapshots every piece of
// private state a quantum can touch.
//
//coyote:allocfree
func (h *Hart) BeginSpec() {
	sp := &h.spec
	if sp.viewFor != h.Mem {
		sp.view = h.Mem.NewView()
		sp.viewFor = h.Mem
	}
	sp.active = true
	sp.reads = sp.reads[:0]
	sp.writes = sp.writes[:0]
	sp.xSavedMask = 0
	sp.xSaveReg = sp.xSaveReg[:0]
	sp.xSaveVal = sp.xSaveVal[:0]
	sp.fSavedMask = 0
	sp.fSaveReg = sp.fSaveReg[:0]
	sp.fSaveVal = sp.fSaveVal[:0]
	sp.vSavedMask = 0
	sp.vSaveReg = sp.vSaveReg[:0]
	sp.vSave = sp.vSave[:0]
	sp.pendUndo = sp.pendUndo[:0]
	sp.csrUndo = sp.csrUndo[:0]

	sp.pc = h.PC
	sp.stats = h.Stats
	sp.fetchPending = h.fetchPending
	sp.vl, sp.vtype, sp.vtypeRaw = h.VL, h.VType, h.vtypeRaw
	sp.busyUntil = h.busyUntil
	sp.halted, sp.exitCode, sp.fault = h.Halted, h.ExitCode, h.Fault
	sp.lastFetchLn, sp.lastFetchOK = h.lastFetchLine, h.lastFetchValid
	sp.consoleLen = h.Console.Len()
	sp.eventsLen = len(h.Events)

	if san.Enabled {
		sp.sanX = h.X
		sp.sanF = h.F
		sp.sanPend = h.pending
		sp.sanPendCnt = h.pendingCount
	}

	h.L1I.BeginSpec()
	h.L1D.BeginSpec()
}

// ValidateSpec replays the read log against current memory and reports
// whether every speculative read still observes the value it consumed.
// It must be called after all lower-index harts committed their stores;
// reads go through the private view, so validation allocates no pages.
//
//coyote:allocfree
func (h *Hart) ValidateSpec() bool {
	sp := &h.spec
	for i := range sp.reads {
		r := &sp.reads[i]
		var cur uint64
		switch r.size {
		case 1:
			cur = uint64(sp.view.Read8(r.addr))
		case 2:
			cur = uint64(sp.view.Read16(r.addr))
		case 4:
			cur = uint64(sp.view.Read32(r.addr))
		default:
			cur = sp.view.Read64(r.addr)
		}
		if cur != r.val {
			return false
		}
	}
	return true
}

// CommitSpec applies the buffered stores to shared memory in program
// order, replays the deferred LR/SC reservation invalidations, and keeps
// the speculative cache and private state. Not an allocfree root: a store
// to a fresh page allocates it, exactly as the sequential write path does.
func (h *Hart) CommitSpec() {
	sp := &h.spec
	if san.Enabled {
		san.Check(sp.active, h.sanNow(), "cpu.spec",
			"CommitSpec on a hart with no armed speculation", uint64(h.ID), 0)
	}
	sp.active = false
	for i := range sp.writes {
		w := &sp.writes[i]
		if san.Enabled {
			h.sanCheckCodeWrite(w.addr, w.size)
		}
		switch w.size {
		case 1:
			h.Mem.Write8(w.addr, uint8(w.val))
		case 2:
			h.Mem.Write16(w.addr, uint16(w.val))
		case 4:
			h.Mem.Write32(w.addr, uint32(w.val))
		default:
			h.Mem.Write64(w.addr, w.val)
		}
		// Exactly the per-store invalidation the sequential path performs
		// (scalar stores pass their start address, vector stores one
		// address per element — matching the write-log granularity).
		h.resv.invalidateStores(h.ID, h.L1D.LineAddr(w.addr))
	}
	h.L1I.CommitSpec()
	h.L1D.CommitSpec()
}

// AbortSpec discards the speculative quantum: scalar snapshot fields are
// restored, the register and scoreboard write-journals replay, buffered
// stores are dropped, appended events are recycled and truncated, and the
// L1 journals roll back.
func (h *Hart) AbortSpec() {
	sp := &h.spec
	if san.Enabled {
		san.Check(sp.active, h.sanNow(), "cpu.spec",
			"AbortSpec on a hart with no armed speculation", uint64(h.ID), 0)
	}
	sp.active = false

	h.PC = sp.pc
	h.Stats = sp.stats
	h.fetchPending = sp.fetchPending
	h.VL, h.VType, h.vtypeRaw = sp.vl, sp.vtype, sp.vtypeRaw
	h.busyUntil = sp.busyUntil
	h.Halted, h.ExitCode, h.Fault = sp.halted, sp.exitCode, sp.fault
	h.lastFetchLine, h.lastFetchValid = sp.lastFetchLn, sp.lastFetchOK

	h.Console.Truncate(sp.consoleLen)
	for _, ev := range h.Events[sp.eventsLen:] {
		if ev.Gather != nil {
			h.RecycleGatherBuf(ev.Gather)
		}
	}
	h.Events = h.Events[:sp.eventsLen]

	// Register write-journals: each register appears at most once (the
	// saved-masks make the save first-write-only), so restore order is
	// irrelevant.
	for i, r := range sp.xSaveReg {
		h.X[r] = sp.xSaveVal[i]
	}
	for i, r := range sp.fSaveReg {
		h.F[r] = sp.fSaveVal[i]
	}
	for i, r := range sp.vSaveReg {
		dst := h.V[uint64(r)*uint64(h.VLenB) : uint64(r+1)*uint64(h.VLenB)]
		copy(dst, sp.vSave[i*int(h.VLenB):(i+1)*int(h.VLenB)])
	}
	// Scoreboard undo: the quantum only ever incremented (completions run
	// between cycles), so decrementing each journaled increment restores
	// the counts, and the bits follow the counts.
	for i := len(sp.pendUndo) - 1; i >= 0; i-- {
		u := sp.pendUndo[i]
		h.pendingCount[u.kind][u.reg]--
		if h.pendingCount[u.kind][u.reg] == 0 {
			h.pending[u.kind] &^= 1 << u.reg
		}
	}
	for i := len(sp.csrUndo) - 1; i >= 0; i-- {
		u := &sp.csrUndo[i]
		if u.existed {
			h.csr[u.addr] = u.old
		} else {
			delete(h.csr, u.addr)
		}
	}

	if san.Enabled {
		// Journal exactness: the rollback must reproduce the full
		// pre-speculation snapshots bit for bit. A mismatch means some
		// instruction wrote a register its RegUse mask does not name.
		san.Check(h.X == sp.sanX, h.sanNow(), "cpu.spec",
			"X-register write-journal rollback diverges from full snapshot", uint64(h.ID), 0)
		san.Check(h.F == sp.sanF, h.sanNow(), "cpu.spec",
			"F-register write-journal rollback diverges from full snapshot", uint64(h.ID), 0)
		san.Check(h.pending == sp.sanPend && h.pendingCount == sp.sanPendCnt,
			h.sanNow(), "cpu.spec",
			"scoreboard undo log rollback diverges from full snapshot", uint64(h.ID), 0)
	}

	h.L1I.RollbackSpec()
	h.L1D.RollbackSpec()
}

// specSaveFor journals the architectural registers op will overwrite,
// before it executes. The RegUse write masks are the exact footprint for
// every speculatively-executable instruction except ecall, whose a0
// return value is written outside its (ofsNone) footprint.
//
//coyote:allocfree
func (h *Hart) specSaveFor(op riscv.Op, use *riscv.RegUse) {
	if use.WritesX != 0 {
		h.specSaveX(use.WritesX)
	}
	if use.WritesF != 0 {
		h.specSaveF(use.WritesF)
	}
	if use.WritesV != 0 {
		h.specSaveV(use.WritesV)
	}
	if op == riscv.OpECALL {
		h.specSaveX(1 << riscv.RegA0)
	}
}

// specSaveX lazily snapshots the scalar registers in mask that have not
// been saved yet this episode.
//
//coyote:allocfree
func (h *Hart) specSaveX(mask uint32) {
	sp := &h.spec
	for m := mask &^ sp.xSavedMask; m != 0; {
		r := uint8(bits.TrailingZeros32(m))
		m &^= 1 << r
		sp.xSavedMask |= 1 << r
		sp.xSaveReg = append(sp.xSaveReg, r)      //coyote:alloc-ok pooled save list; grows to ≤32 entries once, reused for the rest of the run
		sp.xSaveVal = append(sp.xSaveVal, h.X[r]) //coyote:alloc-ok pooled save list; grows to ≤32 entries once, reused for the rest of the run
	}
}

// specSaveF lazily snapshots the FP registers in mask that have not been
// saved yet this episode.
//
//coyote:allocfree
func (h *Hart) specSaveF(mask uint32) {
	sp := &h.spec
	for m := mask &^ sp.fSavedMask; m != 0; {
		r := uint8(bits.TrailingZeros32(m))
		m &^= 1 << r
		sp.fSavedMask |= 1 << r
		sp.fSaveReg = append(sp.fSaveReg, r)      //coyote:alloc-ok pooled save list; grows to ≤32 entries once, reused for the rest of the run
		sp.fSaveVal = append(sp.fSaveVal, h.F[r]) //coyote:alloc-ok pooled save list; grows to ≤32 entries once, reused for the rest of the run
	}
}

// specSaveV lazily snapshots the vector registers in mask that have not
// been saved yet this episode. Called before an instruction that writes
// vector state executes.
//
//coyote:allocfree
func (h *Hart) specSaveV(mask uint32) {
	sp := &h.spec
	for m := mask &^ sp.vSavedMask; m != 0; {
		r := uint8(bits.TrailingZeros32(m))
		m &^= 1 << r
		sp.vSavedMask |= 1 << r
		sp.vSaveReg = append(sp.vSaveReg, r)                                                //coyote:alloc-ok pooled save list; grows to ≤32 entries once, reused for the rest of the run
		sp.vSave = append(sp.vSave, h.V[uint64(r)*uint64(h.VLenB):uint64(r+1)*uint64(h.VLenB)]...) //coyote:alloc-ok pooled register-save arena; bounded by 32×VLenB, reused for the rest of the run
	}
}

// overlay patches the little-endian value v (size n, at addr) with any
// younger bytes from the store buffer, so speculative reads observe the
// hart's own program-order stores.
func (sp *specState) overlay(addr uint64, n uint8, v uint64) uint64 {
	for i := range sp.writes {
		w := &sp.writes[i]
		lo, hi := addr, addr+uint64(n)
		if w.addr > lo {
			lo = w.addr
		}
		if e := w.addr + uint64(w.size); e < hi {
			hi = e
		}
		for b := lo; b < hi; b++ {
			byteVal := uint64(uint8(w.val >> (8 * (b - w.addr))))
			shift := 8 * (b - addr)
			v = v&^(0xff<<shift) | byteVal<<shift
		}
	}
	return v
}

// logRead records one speculative memory read for commit-time validation.
//
//coyote:allocfree
func (sp *specState) logRead(addr uint64, size uint8, val uint64) {
	sp.reads = append(sp.reads, specRead{addr: addr, val: val, size: size}) //coyote:alloc-ok pooled read log; grows to the quantum's high-water mark once, reused for the rest of the run
}

// logWrite buffers one speculative memory write.
//
//coyote:allocfree
func (sp *specState) logWrite(addr uint64, size uint8, val uint64) {
	sp.writes = append(sp.writes, specWrite{addr: addr, val: val, size: size}) //coyote:alloc-ok pooled store buffer; grows to the quantum's high-water mark once, reused for the rest of the run
}

// memRead8 is the hart's memory-load path: direct in normal execution,
// view+log+overlay while speculation is armed. Its siblings below follow
// the same pattern for each width.
func (h *Hart) memRead8(a uint64) uint8 {
	if !h.spec.active {
		return h.Mem.Read8(a)
	}
	v := uint64(h.spec.view.Read8(a))
	h.spec.logRead(a, 1, v)
	return uint8(h.spec.overlay(a, 1, v))
}

func (h *Hart) memRead16(a uint64) uint16 {
	if !h.spec.active {
		return h.Mem.Read16(a)
	}
	v := uint64(h.spec.view.Read16(a))
	h.spec.logRead(a, 2, v)
	return uint16(h.spec.overlay(a, 2, v))
}

func (h *Hart) memRead32(a uint64) uint32 {
	if !h.spec.active {
		return h.Mem.Read32(a)
	}
	v := uint64(h.spec.view.Read32(a))
	h.spec.logRead(a, 4, v)
	return uint32(h.spec.overlay(a, 4, v))
}

func (h *Hart) memRead64(a uint64) uint64 {
	if !h.spec.active {
		return h.Mem.Read64(a)
	}
	v := h.spec.view.Read64(a)
	h.spec.logRead(a, 8, v)
	return h.spec.overlay(a, 8, v)
}

func (h *Hart) memWrite8(a uint64, v uint8) {
	if !h.spec.active {
		if san.Enabled {
			h.sanCheckCodeWrite(a, 1)
		}
		h.Mem.Write8(a, v)
		return
	}
	h.spec.logWrite(a, 1, uint64(v))
}

func (h *Hart) memWrite16(a uint64, v uint16) {
	if !h.spec.active {
		if san.Enabled {
			h.sanCheckCodeWrite(a, 2)
		}
		h.Mem.Write16(a, v)
		return
	}
	h.spec.logWrite(a, 2, uint64(v))
}

func (h *Hart) memWrite32(a uint64, v uint32) {
	if !h.spec.active {
		if san.Enabled {
			h.sanCheckCodeWrite(a, 4)
		}
		h.Mem.Write32(a, v)
		return
	}
	h.spec.logWrite(a, 4, uint64(v))
}

func (h *Hart) memWrite64(a uint64, v uint64) {
	if !h.spec.active {
		if san.Enabled {
			h.sanCheckCodeWrite(a, 8)
		}
		h.Mem.Write64(a, v)
		return
	}
	h.spec.logWrite(a, 8, v)
}

// storeInvalidate clears other harts' LR reservations on a stored-to
// line. Reservations are shared state, so while speculation is armed the
// invalidation is deferred: CommitSpec replays it from the store buffer.
//
//coyote:allocfree
func (h *Hart) storeInvalidate(addr uint64) {
	if h.spec.active {
		return
	}
	h.resv.invalidateStores(h.ID, h.L1D.LineAddr(addr))
}
