package cpu

import (
	"testing"

	"github.com/coyote-sim/coyote/internal/riscv"
)

// vsetvli builds a vsetvli instruction for the given config.
func vsetvli(rd, rs1 uint8, sew, lmul uint) riscv.Instr {
	vt, err := riscv.EncodeVType(riscv.VType{SEW: sew, LMUL: lmul, TA: true, MA: true})
	if err != nil {
		panic(err)
	}
	return riscv.Instr{Op: riscv.OpVSETVLI, Rd: rd, Rs1: rs1, Imm: vt, VM: true}
}

func vv(op riscv.Op, vd, vs2, vs1 uint8) riscv.Instr {
	return riscv.Instr{Op: op, Rd: vd, Rs1: vs1, Rs2: vs2, VM: true}
}

func TestVsetvli(t *testing.T) {
	h := newTestHart(t)
	h.X[10] = 1000 // AVL much larger than VLMAX
	load(t, h, vsetvli(5, 10, 64, 1))
	run(t, h, 10)
	wantVLMax := uint64(h.VLenB) * 8 / 64
	if h.VL != wantVLMax || h.X[5] != wantVLMax {
		t.Errorf("vl = %d, x5 = %d, want %d", h.VL, h.X[5], wantVLMax)
	}
	if h.VType.SEW != 64 || h.VType.LMUL != 1 {
		t.Errorf("vtype = %+v", h.VType)
	}
}

func TestVsetvliSmallAVL(t *testing.T) {
	h := newTestHart(t)
	h.X[10] = 3
	load(t, h, vsetvli(5, 10, 64, 1))
	run(t, h, 10)
	if h.VL != 3 || h.X[5] != 3 {
		t.Errorf("vl = %d", h.VL)
	}
}

func TestVsetvliLMULScalesVLMax(t *testing.T) {
	h := newTestHart(t)
	h.X[10] = 1 << 20
	load(t, h, vsetvli(5, 10, 64, 8))
	run(t, h, 10)
	want := uint64(h.VLenB) * 8 * 8 / 64
	if h.VL != want {
		t.Errorf("vl = %d, want %d", h.VL, want)
	}
}

func TestVectorLoadComputeStore(t *testing.T) {
	h := newTestHart(t)
	const n = 8
	for i := 0; i < n; i++ {
		h.Mem.Write64(0x1000+uint64(i*8), uint64(i+1))
		h.Mem.Write64(0x2000+uint64(i*8), uint64(10*(i+1)))
	}
	h.X[10] = n
	h.X[11] = 0x1000
	h.X[12] = 0x2000
	h.X[13] = 0x3000
	load(t, h,
		vsetvli(5, 10, 64, 1),
		riscv.Instr{Op: riscv.OpVLE64, Rd: 1, Rs1: 11, VM: true},
		riscv.Instr{Op: riscv.OpVLE64, Rd: 2, Rs1: 12, VM: true},
		vv(riscv.OpVADDVV, 3, 1, 2), // v3 = v1(vs2=1)... careful on order
		riscv.Instr{Op: riscv.OpVSE64, Rd: 3, Rs1: 13, VM: true},
	)
	run(t, h, 50)
	for i := 0; i < n; i++ {
		want := uint64(i+1) + uint64(10*(i+1))
		if got := h.Mem.Read64(0x3000 + uint64(i*8)); got != want {
			t.Errorf("elem %d = %d, want %d", i, got, want)
		}
	}
	if h.Stats.VectorOps == 0 {
		t.Error("vector ops not counted")
	}
}

func TestVectorStrided(t *testing.T) {
	h := newTestHart(t)
	// Gather every third element.
	for i := 0; i < 4; i++ {
		h.Mem.Write64(0x1000+uint64(i*24), uint64(i+100))
	}
	h.X[10] = 4
	h.X[11] = 0x1000
	h.X[12] = 24 // stride in bytes
	h.X[13] = 0x2000
	load(t, h,
		vsetvli(5, 10, 64, 1),
		riscv.Instr{Op: riscv.OpVLSE64, Rd: 1, Rs1: 11, Rs2: 12, VM: true},
		riscv.Instr{Op: riscv.OpVSE64, Rd: 1, Rs1: 13, VM: true},
	)
	run(t, h, 50)
	for i := 0; i < 4; i++ {
		if got := h.Mem.Read64(0x2000 + uint64(i*8)); got != uint64(i+100) {
			t.Errorf("elem %d = %d", i, got)
		}
	}
}

func TestVectorGather(t *testing.T) {
	h := newTestHart(t)
	// x[] table and an index vector (byte offsets).
	vals := []uint64{7, 13, 42, 99}
	for i, v := range vals {
		h.Mem.Write64(0x1000+uint64(i*8), v)
	}
	idx := []uint64{24, 0, 16, 8} // byte offsets: vals[3,0,2,1]
	for i, v := range idx {
		h.Mem.Write64(0x2000+uint64(i*8), v)
	}
	h.X[10] = 4
	h.X[11] = 0x2000 // index base
	h.X[12] = 0x1000 // data base
	h.X[13] = 0x3000 // out
	load(t, h,
		vsetvli(5, 10, 64, 1),
		riscv.Instr{Op: riscv.OpVLE64, Rd: 2, Rs1: 11, VM: true},            // v2 = indices
		riscv.Instr{Op: riscv.OpVLUXEI64, Rd: 1, Rs1: 12, Rs2: 2, VM: true}, // v1 = gather
		riscv.Instr{Op: riscv.OpVSE64, Rd: 1, Rs1: 13, VM: true},
	)
	run(t, h, 50)
	want := []uint64{99, 7, 42, 13}
	for i, w := range want {
		if got := h.Mem.Read64(0x3000 + uint64(i*8)); got != w {
			t.Errorf("gathered[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestVectorFPMacc(t *testing.T) {
	h := newTestHart(t)
	n := 4
	for i := 0; i < n; i++ {
		h.Mem.WriteFloat64(0x1000+uint64(i*8), float64(i+1))     // a = 1,2,3,4
		h.Mem.WriteFloat64(0x2000+uint64(i*8), float64(2*(i+1))) // b = 2,4,6,8
	}
	h.X[10] = uint64(n)
	h.X[11] = 0x1000
	h.X[12] = 0x2000
	h.X[13] = 0x3000
	load(t, h,
		vsetvli(5, 10, 64, 1),
		riscv.Instr{Op: riscv.OpVLE64, Rd: 1, Rs1: 11, VM: true},
		riscv.Instr{Op: riscv.OpVLE64, Rd: 2, Rs1: 12, VM: true},
		riscv.Instr{Op: riscv.OpVMVVI, Rd: 3, Imm: 0, VM: true}, // v3 = 0
		vv(riscv.OpVFMACCVV, 3, 2, 1),                           // v3 += v1*v2
		riscv.Instr{Op: riscv.OpVSE64, Rd: 3, Rs1: 13, VM: true},
	)
	run(t, h, 50)
	for i := 0; i < n; i++ {
		want := float64(i+1) * float64(2*(i+1))
		if got := h.Mem.ReadFloat64(0x3000 + uint64(i*8)); got != want {
			t.Errorf("fmacc[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestVectorFPReduction(t *testing.T) {
	h := newTestHart(t)
	n := 6
	sum := 0.0
	for i := 0; i < n; i++ {
		v := float64(i) * 1.5
		h.Mem.WriteFloat64(0x1000+uint64(i*8), v)
		sum += v
	}
	h.X[10] = uint64(n)
	h.X[11] = 0x1000
	h.X[13] = 0x3000
	load(t, h,
		vsetvli(5, 10, 64, 1),
		riscv.Instr{Op: riscv.OpVLE64, Rd: 1, Rs1: 11, VM: true},
		riscv.Instr{Op: riscv.OpVMVVI, Rd: 2, Imm: 0, VM: true},
		vv(riscv.OpVFREDUSUMVS, 3, 1, 2),                         // v3[0] = sum(v1) + v2[0]
		riscv.Instr{Op: riscv.OpVFMVFS, Rd: 1, Rs2: 3, VM: true}, // f1 = v3[0]
		riscv.Instr{Op: riscv.OpFSD, Rs1: 13, Rs2: 1, VM: true},
	)
	run(t, h, 50)
	if got := h.Mem.ReadFloat64(0x3000); got != sum {
		t.Errorf("reduction = %v, want %v", got, sum)
	}
}

func TestVectorIntReduction(t *testing.T) {
	h := newTestHart(t)
	h.X[10] = 5
	load(t, h,
		vsetvli(5, 10, 64, 1),
		riscv.Instr{Op: riscv.OpVIDV, Rd: 1, VM: true}, // v1 = 0..4
		riscv.Instr{Op: riscv.OpVMVVI, Rd: 2, Imm: 3, VM: true},
		vv(riscv.OpVREDSUMVS, 3, 1, 2), // 0+1+2+3+4 + 3 = 13
		riscv.Instr{Op: riscv.OpVMVXS, Rd: 6, Rs2: 3, VM: true},
	)
	run(t, h, 50)
	if h.X[6] != 13 {
		t.Errorf("vredsum = %d, want 13", h.X[6])
	}
}

func TestVectorMasking(t *testing.T) {
	h := newTestHart(t)
	h.X[10] = 4
	load(t, h,
		vsetvli(5, 10, 64, 1),
		riscv.Instr{Op: riscv.OpVIDV, Rd: 1, VM: true},                     // v1 = 0,1,2,3
		riscv.Instr{Op: riscv.OpVMVVI, Rd: 2, Imm: 2, VM: true},            // v2 = 2,2,2,2
		vv(riscv.OpVMSLTVV, 0, 1, 2),                                       // v0 mask = v1 < v2 = 1,1,0,0
		riscv.Instr{Op: riscv.OpVMVVI, Rd: 3, Imm: 0, VM: true},            // v3 = 0
		riscv.Instr{Op: riscv.OpVADDVI, Rd: 3, Rs2: 1, Imm: 10, VM: false}, // masked: v3[i] = v1[i]+10 where mask
		riscv.Instr{Op: riscv.OpVMVXS, Rd: 6, Rs2: 3, VM: true},
	)
	run(t, h, 50)
	// v3 = 10, 11, 0, 0
	if h.X[6] != 10 {
		t.Errorf("masked add lane0 = %d", h.X[6])
	}
	if got := h.vGetInt(3, 1, 64); got != 11 {
		t.Errorf("lane1 = %d", got)
	}
	if got := h.vGetInt(3, 2, 64); got != 0 {
		t.Errorf("lane2 = %d (mask should have suppressed)", got)
	}
}

func TestVectorSEW32(t *testing.T) {
	h := newTestHart(t)
	for i := 0; i < 4; i++ {
		h.Mem.Write32(0x1000+uint64(i*4), uint32(i+1))
	}
	h.X[10] = 4
	h.X[11] = 0x1000
	h.X[13] = 0x3000
	load(t, h,
		vsetvli(5, 10, 32, 1),
		riscv.Instr{Op: riscv.OpVLE32, Rd: 1, Rs1: 11, VM: true},
		riscv.Instr{Op: riscv.OpVADDVI, Rd: 2, Rs2: 1, Imm: 5, VM: true},
		riscv.Instr{Op: riscv.OpVSE32, Rd: 2, Rs1: 13, VM: true},
	)
	run(t, h, 50)
	for i := 0; i < 4; i++ {
		if got := h.Mem.Read32(0x3000 + uint64(i*4)); got != uint32(i+6) {
			t.Errorf("elem %d = %d", i, got)
		}
	}
}

func TestVectorOpBeforeVsetvliFaults(t *testing.T) {
	h := newTestHart(t)
	load(t, h, riscv.Instr{Op: riscv.OpVADDVV, Rd: 1, Rs1: 2, Rs2: 3, VM: true})
	for i := 0; i < 10; i++ {
		res := h.Step(uint64(i))
		for _, ev := range h.DrainEvents() {
			if ev.Fetch {
				h.CompleteFetch()
			}
		}
		if res == StepFault {
			return // expected
		}
	}
	t.Fatal("expected a fault for vector op before vsetvli")
}

func TestVectorOccupancyBusy(t *testing.T) {
	h := newTestHart(t)
	h.X[10] = 64 // vl=16 with VLEN=1024/sew=64... AVL=64 clamps to VLMAX=16
	load(t, h,
		vsetvli(5, 10, 64, 1),
		riscv.Instr{Op: riscv.OpVMVVI, Rd: 1, Imm: 1, VM: true},
		ins(riscv.OpADDI, 6, 0, 0, 1),
	)
	// Warm the I-line first.
	res := h.Step(0)
	if res == StepStalledFetch {
		for _, ev := range h.DrainEvents() {
			if ev.Fetch {
				h.CompleteFetch()
			}
		}
	}
	now := uint64(1)
	if res := h.Step(now); res != StepExecuted { // vsetvli
		t.Fatalf("vsetvli: %v", res)
	}
	now++
	if res := h.Step(now); res != StepExecuted { // vmv.v.i, vl=16, lanes=16 → 1 cycle
		t.Fatalf("vmv: %v", res)
	}
	// With 16 lanes and vl=16 occupancy is exactly 1 cycle: not busy.
	now++
	if res := h.Step(now); res != StepExecuted {
		t.Fatalf("addi after vector: %v", res)
	}
}

func TestVectorOccupancyMultiCycle(t *testing.T) {
	h := newTestHart(t)
	h.X[10] = 1 << 20
	load(t, h,
		vsetvli(5, 10, 64, 8), // vl = 128 → 8 cycles at 16 lanes
		riscv.Instr{Op: riscv.OpVMVVI, Rd: 8, Imm: 1, VM: true},
		ins(riscv.OpADDI, 6, 0, 0, 1),
	)
	if res := h.Step(0); res == StepStalledFetch {
		for _, ev := range h.DrainEvents() {
			if ev.Fetch {
				h.CompleteFetch()
			}
		}
	}
	h.Step(1) // vsetvli
	if res := h.Step(2); res != StepExecuted {
		t.Fatalf("vmv: %v", res)
	}
	// Busy until cycle 2+8.
	busy := 0
	for now := uint64(3); now < 10; now++ {
		if res := h.Step(now); res == StepBusy {
			busy++
		}
	}
	if busy != 7 {
		t.Errorf("busy cycles = %d, want 7", busy)
	}
	if res := h.Step(10); res != StepExecuted {
		t.Errorf("addi after busy window: %v", res)
	}
}

func TestVectorGatherMissesPerLine(t *testing.T) {
	h := newTestHart(t)
	// Indices spread across distinct cache lines: each gather element
	// should produce its own L1 miss (the sparse behaviour Coyote studies).
	n := 8
	lineBytes := uint64(h.L1D.Config().LineBytes)
	for i := 0; i < n; i++ {
		h.Mem.Write64(0x2000+uint64(i*8), uint64(i)*lineBytes*4)
	}
	h.X[10] = uint64(n)
	h.X[11] = 0x2000
	h.X[12] = 0x100000
	load(t, h,
		vsetvli(5, 10, 64, 1),
		riscv.Instr{Op: riscv.OpVLE64, Rd: 2, Rs1: 11, VM: true},
		riscv.Instr{Op: riscv.OpVLUXEI64, Rd: 1, Rs1: 12, Rs2: 2, VM: true},
	)
	run(t, h, 50)
	// vle64 of 8×8B = 1 line miss; gather = 8 line misses.
	if h.Stats.LoadMisses != 9 {
		t.Errorf("load misses = %d, want 9", h.Stats.LoadMisses)
	}
	if h.Stats.ElemAccesses != 16 {
		t.Errorf("element accesses = %d, want 16", h.Stats.ElemAccesses)
	}
}
