package cpu

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/coyote-sim/coyote/internal/riscv"
)

// Vector registers live in h.V as one flat byte array (32 × VLenB).
// Register groups (LMUL > 1) are contiguous, so element i of a group
// based at register r sits at byte r*VLenB + i*sew/8.
//
// Pending-fill bookkeeping attributes all misses of a vector load to the
// group's base register; dependence checks use whole-group masks
// (riscv.RegUsage), which is exact as long as producers and consumers use
// the same LMUL — true for all kernels in this repo and documented in
// DESIGN.md.

func (h *Hart) vOff(reg uint8, i uint64, bytes uint) uint64 {
	return uint64(reg)*uint64(h.VLenB) + i*uint64(bytes)
}

func (h *Hart) vGetInt(reg uint8, i uint64, sew uint) uint64 {
	o := h.vOff(reg, i, sew/8)
	switch sew {
	case 8:
		return uint64(h.V[o])
	case 16:
		return uint64(binary.LittleEndian.Uint16(h.V[o:]))
	case 32:
		return uint64(binary.LittleEndian.Uint32(h.V[o:]))
	default:
		return binary.LittleEndian.Uint64(h.V[o:])
	}
}

// vGetIntSext reads an element sign-extended to 64 bits.
func (h *Hart) vGetIntSext(reg uint8, i uint64, sew uint) int64 {
	v := h.vGetInt(reg, i, sew)
	shift := 64 - sew
	return int64(v<<shift) >> shift
}

func (h *Hart) vSetInt(reg uint8, i uint64, sew uint, v uint64) {
	o := h.vOff(reg, i, sew/8)
	switch sew {
	case 8:
		h.V[o] = byte(v)
	case 16:
		binary.LittleEndian.PutUint16(h.V[o:], uint16(v))
	case 32:
		binary.LittleEndian.PutUint32(h.V[o:], uint32(v))
	default:
		binary.LittleEndian.PutUint64(h.V[o:], v)
	}
}

func (h *Hart) vGetF64(reg uint8, i uint64) float64 {
	return math.Float64frombits(h.vGetInt(reg, i, 64))
}

func (h *Hart) vSetF64(reg uint8, i uint64, v float64) {
	h.vSetInt(reg, i, 64, math.Float64bits(v))
}

func (h *Hart) vGetF32(reg uint8, i uint64) float32 {
	return math.Float32frombits(uint32(h.vGetInt(reg, i, 32)))
}

func (h *Hart) vSetF32(reg uint8, i uint64, v float32) {
	h.vSetInt(reg, i, 32, uint64(math.Float32bits(v)))
}

// maskBit reads bit i of the mask register v0.
func (h *Hart) maskBit(i uint64) bool {
	return h.V[i/8]>>(i%8)&1 == 1
}

// setMaskBit writes bit i of vector register reg (mask layout).
func (h *Hart) setMaskBit(reg uint8, i uint64, v bool) {
	o := uint64(reg)*uint64(h.VLenB) + i/8
	if v {
		h.V[o] |= 1 << (i % 8)
	} else {
		h.V[o] &^= 1 << (i % 8)
	}
}

// active reports whether element i participates given the instruction's
// mask bit (vm=true means unmasked).
func active(h *Hart, vm bool, i uint64) bool { return vm || h.maskBit(i) }

// executeVector handles every V-extension instruction.
//
//coyote:allocfree-boundary vector dispatch builds per-op closures; audited by its own AllocsPerRun tests, not the scalar hot-path walk
func (h *Hart) executeVector(in riscv.Instr) StepResult {
	switch in.Op {
	case riscv.OpVSETVLI:
		return h.vset(in, uint64(in.Imm), h.avlFrom(in))
	case riscv.OpVSETIVLI:
		return h.vset(in, uint64(in.Imm), uint64(in.Rs1))
	case riscv.OpVSETVL:
		return h.vset(in, h.X[in.Rs2], h.avlFrom(in))
	}

	if h.VType.SEW == 0 {
		h.Fault = fmt.Errorf("hart %d: pc=%#x: vector op %v before vsetvli",
			h.ID, h.PC, in.Op)
		h.Halted = true
		return StepFault
	}

	if in.Op.IsVectorMem() {
		return h.executeVMem(in)
	}
	return h.executeVArith(in)
}

func (h *Hart) avlFrom(in riscv.Instr) uint64 {
	if in.Rs1 != 0 {
		return h.X[in.Rs1]
	}
	if in.Rd != 0 {
		return ^uint64(0) // rs1=x0, rd!=x0: request VLMAX
	}
	return h.VL // rs1=rd=x0: keep current vl
}

func (h *Hart) vset(in riscv.Instr, vtypeRaw, avl uint64) StepResult {
	t, ok := riscv.DecodeVType(vtypeRaw)
	if !ok {
		h.Fault = fmt.Errorf("hart %d: pc=%#x: illegal vtype %#x", h.ID, h.PC, vtypeRaw)
		h.Halted = true
		return StepFault
	}
	h.VType = t
	h.vtypeRaw = vtypeRaw
	vlmax := h.VLMax()
	if avl > vlmax {
		avl = vlmax
	}
	h.VL = avl
	h.setX(in.Rd, h.VL)
	return StepExecuted
}

// executeVMem handles vector loads and stores: functional transfer plus
// element-granular L1D timing (the behaviour that makes sparse gathers
// expensive, which is exactly what Coyote is built to study).
func (h *Hart) executeVMem(in riscv.Instr) StepResult {
	isStore := in.Op.Classify()&riscv.ClassStore != 0
	ew := in.Op.ElemBytes() * 8 // encoded element width (bits)
	base := h.X[in.Rs1]
	h.addrScratch = h.addrScratch[:0]

	switch in.Op {
	case riscv.OpVLE8, riscv.OpVLE16, riscv.OpVLE32, riscv.OpVLE64,
		riscv.OpVSE8, riscv.OpVSE16, riscv.OpVSE32, riscv.OpVSE64:
		for i := uint64(0); i < h.VL; i++ {
			if !active(h, in.VM, i) {
				continue
			}
			a := base + i*uint64(ew/8)
			h.transferElem(in.Rd, i, ew, a, isStore)
			h.addrScratch = append(h.addrScratch, a)
		}
	case riscv.OpVLSE8, riscv.OpVLSE16, riscv.OpVLSE32, riscv.OpVLSE64,
		riscv.OpVSSE8, riscv.OpVSSE16, riscv.OpVSSE32, riscv.OpVSSE64:
		stride := h.X[in.Rs2]
		for i := uint64(0); i < h.VL; i++ {
			if !active(h, in.VM, i) {
				continue
			}
			a := base + i*stride
			h.transferElem(in.Rd, i, ew, a, isStore)
			h.addrScratch = append(h.addrScratch, a)
		}
	case riscv.OpVLUXEI8, riscv.OpVLUXEI16, riscv.OpVLUXEI32, riscv.OpVLUXEI64,
		riscv.OpVSUXEI8, riscv.OpVSUXEI16, riscv.OpVSUXEI32, riscv.OpVSUXEI64:
		// Indexed: the encoded width is the *index* width; data elements
		// use the current SEW.
		sew := h.VType.SEW
		for i := uint64(0); i < h.VL; i++ {
			if !active(h, in.VM, i) {
				continue
			}
			idx := h.vGetInt(in.Rs2, i, ew)
			a := base + idx
			h.transferElem(in.Rd, i, sew, a, isStore)
			h.addrScratch = append(h.addrScratch, a)
		}
		if h.mcpuOffload {
			// ACME MCPU path: ship the whole scatter/gather as one
			// descriptor to the memory side, bypassing L1/L2.
			h.Stats.ElemAccesses += uint64(len(h.addrScratch))
			desc := h.getGatherBuf(len(h.addrScratch))
			copy(desc, h.addrScratch)
			ev := MemEvent{Gather: desc, Write: isStore}
			if !isStore {
				ev.HasDest = true
				ev.Dest = RegV
				ev.DestReg = in.Rd
				h.markPending(RegV, in.Rd)
				h.Stats.LoadMisses++ // one logical memory transaction
			} else {
				h.Stats.StoreMisses++
				for _, a := range h.addrScratch {
					h.storeInvalidate(a)
				}
			}
			h.emit(ev)
			return StepExecuted
		}
	default:
		h.Fault = fmt.Errorf("hart %d: unimplemented vector mem op %v", h.ID, in.Op)
		h.Halted = true
		return StepFault
	}

	h.Stats.ElemAccesses += uint64(len(h.addrScratch))
	h.dataAccess(h.addrScratch, isStore, RegV, in.Rd, !isStore)
	if isStore {
		for _, a := range h.addrScratch {
			h.storeInvalidate(a)
		}
	}
	return StepExecuted
}

// transferElem moves one element between vector register elements and
// functional memory.
func (h *Hart) transferElem(vreg uint8, i uint64, ew uint, addr uint64, isStore bool) {
	if isStore {
		v := h.vGetInt(vreg, i, ew)
		switch ew {
		case 8:
			h.memWrite8(addr, uint8(v))
		case 16:
			h.memWrite16(addr, uint16(v))
		case 32:
			h.memWrite32(addr, uint32(v))
		default:
			h.memWrite64(addr, v)
		}
		return
	}
	var v uint64
	switch ew {
	case 8:
		v = uint64(h.memRead8(addr))
	case 16:
		v = uint64(h.memRead16(addr))
	case 32:
		v = uint64(h.memRead32(addr))
	default:
		v = h.memRead64(addr)
	}
	h.vSetInt(vreg, i, ew, v)
}

// executeVArith handles vector register-register/scalar/immediate ops.
func (h *Hart) executeVArith(in riscv.Instr) StepResult {
	sew := h.VType.SEW
	vl := h.VL
	op := in.Op

	// Integer binary ops share a loop; pick the operand fetch per form.
	intBin := func(f func(a, b uint64) uint64, scalarB uint64, useScalar bool) {
		for i := uint64(0); i < vl; i++ {
			if !active(h, in.VM, i) {
				continue
			}
			a := h.vGetInt(in.Rs2, i, sew)
			b := scalarB
			if !useScalar {
				b = h.vGetInt(in.Rs1, i, sew)
			}
			h.vSetInt(in.Rd, i, sew, f(a, b))
		}
	}
	intCmp := func(f func(a, b uint64) bool, scalarB uint64, useScalar bool) {
		for i := uint64(0); i < vl; i++ {
			if !active(h, in.VM, i) {
				continue
			}
			a := h.vGetInt(in.Rs2, i, sew)
			b := scalarB
			if !useScalar {
				b = h.vGetInt(in.Rs1, i, sew)
			}
			h.setMaskBit(in.Rd, i, f(a, b))
		}
	}
	f64Bin := func(f func(a, b float64) float64, scalarB float64, useScalar bool) {
		for i := uint64(0); i < vl; i++ {
			if !active(h, in.VM, i) {
				continue
			}
			a := h.vGetF64(in.Rs2, i)
			b := scalarB
			if !useScalar {
				b = h.vGetF64(in.Rs1, i)
			}
			h.vSetF64(in.Rd, i, f(a, b))
		}
	}
	f32Bin := func(f func(a, b float32) float32, scalarB float32, useScalar bool) {
		for i := uint64(0); i < vl; i++ {
			if !active(h, in.VM, i) {
				continue
			}
			a := h.vGetF32(in.Rs2, i)
			b := scalarB
			if !useScalar {
				b = h.vGetF32(in.Rs1, i)
			}
			h.vSetF32(in.Rd, i, f(a, b))
		}
	}

	sewMask := ^uint64(0)
	if sew < 64 {
		sewMask = 1<<sew - 1
	}
	shiftMask := uint64(sew - 1)

	switch op {
	// ----- integer -----
	case riscv.OpVADDVV:
		intBin(func(a, b uint64) uint64 { return a + b }, 0, false)
	case riscv.OpVADDVX:
		intBin(func(a, b uint64) uint64 { return a + b }, h.X[in.Rs1], true)
	case riscv.OpVADDVI:
		intBin(func(a, b uint64) uint64 { return a + b }, uint64(in.Imm), true)
	case riscv.OpVSUBVV:
		intBin(func(a, b uint64) uint64 { return a - b }, 0, false)
	case riscv.OpVSUBVX:
		intBin(func(a, b uint64) uint64 { return a - b }, h.X[in.Rs1], true)
	case riscv.OpVRSUBVX:
		intBin(func(a, b uint64) uint64 { return b - a }, h.X[in.Rs1], true)
	case riscv.OpVRSUBVI:
		intBin(func(a, b uint64) uint64 { return b - a }, uint64(in.Imm), true)
	case riscv.OpVANDVV:
		intBin(func(a, b uint64) uint64 { return a & b }, 0, false)
	case riscv.OpVANDVX:
		intBin(func(a, b uint64) uint64 { return a & b }, h.X[in.Rs1], true)
	case riscv.OpVANDVI:
		intBin(func(a, b uint64) uint64 { return a & b }, uint64(in.Imm), true)
	case riscv.OpVORVV:
		intBin(func(a, b uint64) uint64 { return a | b }, 0, false)
	case riscv.OpVORVX:
		intBin(func(a, b uint64) uint64 { return a | b }, h.X[in.Rs1], true)
	case riscv.OpVORVI:
		intBin(func(a, b uint64) uint64 { return a | b }, uint64(in.Imm), true)
	case riscv.OpVXORVV:
		intBin(func(a, b uint64) uint64 { return a ^ b }, 0, false)
	case riscv.OpVXORVX:
		intBin(func(a, b uint64) uint64 { return a ^ b }, h.X[in.Rs1], true)
	case riscv.OpVXORVI:
		intBin(func(a, b uint64) uint64 { return a ^ b }, uint64(in.Imm), true)
	case riscv.OpVSLLVV:
		intBin(func(a, b uint64) uint64 { return a << (b & shiftMask) }, 0, false)
	case riscv.OpVSLLVX:
		intBin(func(a, b uint64) uint64 { return a << (b & shiftMask) }, h.X[in.Rs1], true)
	case riscv.OpVSLLVI:
		intBin(func(a, b uint64) uint64 { return a << (b & shiftMask) }, uint64(in.Imm), true)
	case riscv.OpVSRLVV:
		intBin(func(a, b uint64) uint64 { return (a & sewMask) >> (b & shiftMask) }, 0, false)
	case riscv.OpVSRLVX:
		intBin(func(a, b uint64) uint64 { return (a & sewMask) >> (b & shiftMask) }, h.X[in.Rs1], true)
	case riscv.OpVSRLVI:
		intBin(func(a, b uint64) uint64 { return (a & sewMask) >> (b & shiftMask) }, uint64(in.Imm), true)
	case riscv.OpVSRAVV, riscv.OpVSRAVX, riscv.OpVSRAVI:
		var scalar uint64
		useScalar := true
		switch op {
		case riscv.OpVSRAVV:
			useScalar = false
		case riscv.OpVSRAVX:
			scalar = h.X[in.Rs1]
		default:
			scalar = uint64(in.Imm)
		}
		for i := uint64(0); i < vl; i++ {
			if !active(h, in.VM, i) {
				continue
			}
			a := h.vGetIntSext(in.Rs2, i, sew)
			b := scalar
			if !useScalar {
				b = h.vGetInt(in.Rs1, i, sew)
			}
			h.vSetInt(in.Rd, i, sew, uint64(a>>(b&shiftMask)))
		}
	case riscv.OpVMINVV, riscv.OpVMINVX, riscv.OpVMAXVV, riscv.OpVMAXVX:
		useScalar := op == riscv.OpVMINVX || op == riscv.OpVMAXVX
		isMin := op == riscv.OpVMINVV || op == riscv.OpVMINVX
		for i := uint64(0); i < vl; i++ {
			if !active(h, in.VM, i) {
				continue
			}
			a := h.vGetIntSext(in.Rs2, i, sew)
			var b int64
			if useScalar {
				b = int64(h.X[in.Rs1])
			} else {
				b = h.vGetIntSext(in.Rs1, i, sew)
			}
			r := a
			if (isMin && b < a) || (!isMin && b > a) {
				r = b
			}
			h.vSetInt(in.Rd, i, sew, uint64(r))
		}

	case riscv.OpVMULVV:
		intBin(func(a, b uint64) uint64 { return a * b }, 0, false)
	case riscv.OpVMULVX:
		intBin(func(a, b uint64) uint64 { return a * b }, h.X[in.Rs1], true)
	case riscv.OpVMULHVV:
		for i := uint64(0); i < vl; i++ {
			if !active(h, in.VM, i) {
				continue
			}
			a := h.vGetIntSext(in.Rs2, i, sew)
			b := h.vGetIntSext(in.Rs1, i, sew)
			prod := a * b // full product fits in 128; for sew<64 this is exact
			if sew == 64 {
				h.vSetInt(in.Rd, i, sew, mulh(a, b))
			} else {
				h.vSetInt(in.Rd, i, sew, uint64(prod)>>sew)
			}
		}
	case riscv.OpVMACCVV:
		for i := uint64(0); i < vl; i++ {
			if !active(h, in.VM, i) {
				continue
			}
			acc := h.vGetInt(in.Rd, i, sew)
			h.vSetInt(in.Rd, i, sew,
				acc+h.vGetInt(in.Rs1, i, sew)*h.vGetInt(in.Rs2, i, sew))
		}
	case riscv.OpVMACCVX:
		for i := uint64(0); i < vl; i++ {
			if !active(h, in.VM, i) {
				continue
			}
			acc := h.vGetInt(in.Rd, i, sew)
			h.vSetInt(in.Rd, i, sew, acc+h.X[in.Rs1]*h.vGetInt(in.Rs2, i, sew))
		}

	// ----- comparisons (write mask register) -----
	case riscv.OpVMSEQVV:
		intCmp(func(a, b uint64) bool { return a == b }, 0, false)
	case riscv.OpVMSEQVX:
		intCmp(func(a, b uint64) bool { return a == b }, h.X[in.Rs1]&sewMask, true)
	case riscv.OpVMSEQVI:
		intCmp(func(a, b uint64) bool { return a == b }, uint64(in.Imm)&sewMask, true)
	case riscv.OpVMSNEVV:
		intCmp(func(a, b uint64) bool { return a != b }, 0, false)
	case riscv.OpVMSNEVX:
		intCmp(func(a, b uint64) bool { return a != b }, h.X[in.Rs1]&sewMask, true)
	case riscv.OpVMSLTVV, riscv.OpVMSLTVX, riscv.OpVMSLEVV, riscv.OpVMSLEVX:
		useScalar := op == riscv.OpVMSLTVX || op == riscv.OpVMSLEVX
		le := op == riscv.OpVMSLEVV || op == riscv.OpVMSLEVX
		for i := uint64(0); i < vl; i++ {
			if !active(h, in.VM, i) {
				continue
			}
			a := h.vGetIntSext(in.Rs2, i, sew)
			var b int64
			if useScalar {
				b = int64(h.X[in.Rs1])
			} else {
				b = h.vGetIntSext(in.Rs1, i, sew)
			}
			if le {
				h.setMaskBit(in.Rd, i, a <= b)
			} else {
				h.setMaskBit(in.Rd, i, a < b)
			}
		}

	// ----- moves / slides / index -----
	case riscv.OpVMVVV:
		for i := uint64(0); i < vl; i++ {
			h.vSetInt(in.Rd, i, sew, h.vGetInt(in.Rs1, i, sew))
		}
	case riscv.OpVMVVX:
		for i := uint64(0); i < vl; i++ {
			h.vSetInt(in.Rd, i, sew, h.X[in.Rs1])
		}
	case riscv.OpVMVVI:
		for i := uint64(0); i < vl; i++ {
			h.vSetInt(in.Rd, i, sew, uint64(in.Imm))
		}
	case riscv.OpVMVXS:
		h.setX(in.Rd, uint64(h.vGetIntSext(in.Rs2, 0, sew)))
	case riscv.OpVMVSX:
		if vl > 0 {
			h.vSetInt(in.Rd, 0, sew, h.X[in.Rs1])
		}
	case riscv.OpVIDV:
		for i := uint64(0); i < vl; i++ {
			if !active(h, in.VM, i) {
				continue
			}
			h.vSetInt(in.Rd, i, sew, i)
		}
	case riscv.OpVSLIDEDOWNVX, riscv.OpVSLIDEDOWNVI:
		off := uint64(in.Imm)
		if op == riscv.OpVSLIDEDOWNVX {
			off = h.X[in.Rs1]
		}
		vlmax := h.VLMax()
		for i := uint64(0); i < vl; i++ {
			if !active(h, in.VM, i) {
				continue
			}
			var v uint64
			if i+off < vlmax {
				v = h.vGetInt(in.Rs2, i+off, sew)
			}
			h.vSetInt(in.Rd, i, sew, v)
		}
	case riscv.OpVSLIDE1DOWNVX:
		for i := uint64(0); i+1 < vl; i++ {
			h.vSetInt(in.Rd, i, sew, h.vGetInt(in.Rs2, i+1, sew))
		}
		if vl > 0 {
			h.vSetInt(in.Rd, vl-1, sew, h.X[in.Rs1])
		}

	// ----- integer reductions -----
	case riscv.OpVREDSUMVS:
		sum := h.vGetInt(in.Rs1, 0, sew)
		for i := uint64(0); i < vl; i++ {
			if !active(h, in.VM, i) {
				continue
			}
			sum += h.vGetInt(in.Rs2, i, sew)
		}
		h.vSetInt(in.Rd, 0, sew, sum)
	case riscv.OpVREDMAXVS:
		best := h.vGetIntSext(in.Rs1, 0, sew)
		for i := uint64(0); i < vl; i++ {
			if !active(h, in.VM, i) {
				continue
			}
			if v := h.vGetIntSext(in.Rs2, i, sew); v > best {
				best = v
			}
		}
		h.vSetInt(in.Rd, 0, sew, uint64(best))

	// ----- floating point -----
	case riscv.OpVFADDVV, riscv.OpVFADDVF, riscv.OpVFSUBVV, riscv.OpVFSUBVF,
		riscv.OpVFMULVV, riscv.OpVFMULVF, riscv.OpVFDIVVV, riscv.OpVFDIVVF,
		riscv.OpVFMINVV, riscv.OpVFMAXVV:
		if sew != 32 && sew != 64 {
			return h.vfault(in, "FP op with SEW %d", sew)
		}
		useScalar := op == riscv.OpVFADDVF || op == riscv.OpVFSUBVF ||
			op == riscv.OpVFMULVF || op == riscv.OpVFDIVVF
		if sew == 64 {
			var f func(a, b float64) float64
			switch op {
			case riscv.OpVFADDVV, riscv.OpVFADDVF:
				f = func(a, b float64) float64 { return a + b }
			case riscv.OpVFSUBVV, riscv.OpVFSUBVF:
				f = func(a, b float64) float64 { return a - b }
			case riscv.OpVFMULVV, riscv.OpVFMULVF:
				f = func(a, b float64) float64 { return a * b }
			case riscv.OpVFDIVVV, riscv.OpVFDIVVF:
				f = func(a, b float64) float64 { return a / b }
			case riscv.OpVFMINVV:
				f = fmin64
			case riscv.OpVFMAXVV:
				f = fmax64
			}
			f64Bin(f, h.getF64(in.Rs1), useScalar)
		} else {
			var f func(a, b float32) float32
			switch op {
			case riscv.OpVFADDVV, riscv.OpVFADDVF:
				f = func(a, b float32) float32 { return a + b }
			case riscv.OpVFSUBVV, riscv.OpVFSUBVF:
				f = func(a, b float32) float32 { return a - b }
			case riscv.OpVFMULVV, riscv.OpVFMULVF:
				f = func(a, b float32) float32 { return a * b }
			case riscv.OpVFDIVVV, riscv.OpVFDIVVF:
				f = func(a, b float32) float32 { return a / b }
			case riscv.OpVFMINVV:
				f = fmin32
			case riscv.OpVFMAXVV:
				f = fmax32
			}
			f32Bin(f, h.getF32(in.Rs1), useScalar)
		}
	case riscv.OpVFMACCVV, riscv.OpVFMACCVF, riscv.OpVFNMSACVV:
		if sew != 32 && sew != 64 {
			return h.vfault(in, "FP op with SEW %d", sew)
		}
		for i := uint64(0); i < vl; i++ {
			if !active(h, in.VM, i) {
				continue
			}
			if sew == 64 {
				acc := h.vGetF64(in.Rd, i)
				b := h.vGetF64(in.Rs2, i)
				var a float64
				if op == riscv.OpVFMACCVF {
					a = h.getF64(in.Rs1)
				} else {
					a = h.vGetF64(in.Rs1, i)
				}
				if op == riscv.OpVFNMSACVV {
					h.vSetF64(in.Rd, i, math.FMA(-a, b, acc))
				} else {
					h.vSetF64(in.Rd, i, math.FMA(a, b, acc))
				}
			} else {
				acc := h.vGetF32(in.Rd, i)
				b := h.vGetF32(in.Rs2, i)
				var a float32
				if op == riscv.OpVFMACCVF {
					a = h.getF32(in.Rs1)
				} else {
					a = h.vGetF32(in.Rs1, i)
				}
				if op == riscv.OpVFNMSACVV {
					h.vSetF32(in.Rd, i, fmaf32(-a, b, acc))
				} else {
					h.vSetF32(in.Rd, i, fmaf32(a, b, acc))
				}
			}
		}
	case riscv.OpVFSQRTV:
		if sew != 32 && sew != 64 {
			return h.vfault(in, "FP op with SEW %d", sew)
		}
		for i := uint64(0); i < vl; i++ {
			if !active(h, in.VM, i) {
				continue
			}
			if sew == 64 {
				h.vSetF64(in.Rd, i, math.Sqrt(h.vGetF64(in.Rs2, i)))
			} else {
				h.vSetF32(in.Rd, i, float32(math.Sqrt(float64(h.vGetF32(in.Rs2, i)))))
			}
		}
	case riscv.OpVFMVVF:
		if sew == 64 {
			v := h.getF64(in.Rs1)
			for i := uint64(0); i < vl; i++ {
				h.vSetF64(in.Rd, i, v)
			}
		} else {
			v := h.getF32(in.Rs1)
			for i := uint64(0); i < vl; i++ {
				h.vSetF32(in.Rd, i, v)
			}
		}
	case riscv.OpVFMVFS:
		if sew == 64 {
			h.setF64(in.Rd, h.vGetF64(in.Rs2, 0))
		} else {
			h.setF32(in.Rd, h.vGetF32(in.Rs2, 0))
		}
	case riscv.OpVFMVSF:
		if vl > 0 {
			if sew == 64 {
				h.vSetF64(in.Rd, 0, h.getF64(in.Rs1))
			} else {
				h.vSetF32(in.Rd, 0, h.getF32(in.Rs1))
			}
		}
	case riscv.OpVFREDUSUMVS, riscv.OpVFREDOSUMVS:
		if sew == 64 {
			sum := h.vGetF64(in.Rs1, 0)
			for i := uint64(0); i < vl; i++ {
				if !active(h, in.VM, i) {
					continue
				}
				sum += h.vGetF64(in.Rs2, i)
			}
			h.vSetF64(in.Rd, 0, sum)
		} else {
			sum := h.vGetF32(in.Rs1, 0)
			for i := uint64(0); i < vl; i++ {
				if !active(h, in.VM, i) {
					continue
				}
				sum += h.vGetF32(in.Rs2, i)
			}
			h.vSetF32(in.Rd, 0, sum)
		}

	default:
		return h.vfault(in, "unimplemented vector op")
	}
	return StepExecuted
}

func (h *Hart) vfault(in riscv.Instr, format string, args ...any) StepResult {
	h.Fault = fmt.Errorf("hart %d: pc=%#x: %v: %s",
		h.ID, h.PC, in.Op, fmt.Sprintf(format, args...))
	h.Halted = true
	return StepFault
}
