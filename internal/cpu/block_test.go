package cpu

import (
	"testing"

	"github.com/coyote-sim/coyote/internal/mem"
	"github.com/coyote-sim/coyote/internal/riscv"
	"github.com/coyote-sim/coyote/internal/san"
)

// newTestHartCfg builds a hart over fresh memory with a mutated config.
func newTestHartCfg(t *testing.T, mutate func(*Config)) *Hart {
	t.Helper()
	cfg := DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	h, err := NewHart(0, cfg, mem.New(), nil)
	if err != nil {
		t.Fatal(err)
	}
	h.PC = textBase
	return h
}

// runBlock drives a hart through StepBlock until halt or fault, servicing
// misses instantly — the superblock analogue of run().
func runBlock(t *testing.T, h *Hart, maxCycles int) {
	t.Helper()
	for cyc := 0; cyc < maxCycles; cyc++ {
		_, res := h.StepBlock(uint64(cyc), 32)
		for _, ev := range h.DrainEvents() {
			if ev.Fetch {
				h.CompleteFetch()
			} else if ev.HasDest {
				h.CompleteFill(ev.Dest, ev.DestReg)
			}
		}
		if res == StepFault {
			t.Fatalf("fault: %v", h.Fault)
		}
		if h.Halted {
			return
		}
	}
	t.Fatalf("program did not halt in %d cycles (pc=%#x)", maxCycles, h.PC)
}

// loopProg is a small counted loop: straight-line arithmetic bodies glued
// by a backward bne, the shape superblocks exist for.
func loopProg() []riscv.Instr {
	return []riscv.Instr{
		ins(riscv.OpADDI, 5, 0, 0, 8),  // pc+0:  t0 = 8 (counter)
		ins(riscv.OpADDI, 6, 0, 0, 0),  // pc+4:  t1 = 0 (acc)
		ins(riscv.OpADDI, 6, 6, 0, 3),  // pc+8:  loop: t1 += 3
		ins(riscv.OpADDI, 7, 6, 0, 1),  // pc+12: t2 = t1 + 1
		ins(riscv.OpSUB, 28, 7, 6, 0),  // pc+16: t3 = t2 - t1
		ins(riscv.OpADDI, 5, 5, 0, -1), // pc+20: t0--
		ins(riscv.OpBNE, 0, 5, 0, -16), // pc+24: bne t0, x0, loop
	}
}

// TestStepBlockMatchesReference pins the superblock engine against the
// per-instruction reference engine (DisableBlockCache): identical retired
// counts and identical architectural state on a branchy program. The
// cycle-exact equivalence under the orchestrator is pinned by the root
// package's TestWorkersInterleaveMatrix golden test.
func TestStepBlockMatchesReference(t *testing.T) {
	blockH := newTestHartCfg(t, nil)
	refH := newTestHartCfg(t, func(c *Config) { c.DisableBlockCache = true })
	if !blockH.BlockEngineEnabled() || refH.BlockEngineEnabled() {
		t.Fatal("DisableBlockCache did not select the engines")
	}
	load(t, blockH, loopProg()...)
	load(t, refH, loopProg()...)
	runBlock(t, blockH, 1000)
	runBlock(t, refH, 1000)

	if blockH.X != refH.X {
		t.Errorf("scalar registers diverge:\nblock %v\nref   %v", blockH.X, refH.X)
	}
	if blockH.Stats.Instret != refH.Stats.Instret {
		t.Errorf("instret: block %d, ref %d", blockH.Stats.Instret, refH.Stats.Instret)
	}
	if want := uint64(24); blockH.X[6] != want {
		t.Errorf("t1 = %d, want %d", blockH.X[6], want)
	}
}

// TestStepBlockBranchIntoMiddle forces a branch into the middle of an
// already-cached superblock. The block built at the program entry spans
// the loop body; the backward branch targets an interior PC, which must
// hit (or build) the suffix block starting there — never re-execute the
// prefix, never miss instructions.
func TestStepBlockBranchIntoMiddle(t *testing.T) {
	prog := []riscv.Instr{
		ins(riscv.OpADDI, 5, 0, 0, 3),  // pc+0:  t0 = 3 (counter)
		ins(riscv.OpADDI, 6, 0, 0, 0),  // pc+4:  t1 = 0
		ins(riscv.OpADDI, 6, 6, 0, 1),  // pc+8:  loop: t1++   <- interior entry
		ins(riscv.OpADDI, 7, 7, 0, 2),  // pc+12: t2 += 2
		ins(riscv.OpADDI, 5, 5, 0, -1), // pc+16: t0--
		ins(riscv.OpBNE, 0, 5, 0, -12), // pc+20: bne t0, x0, loop
	}
	h := newTestHartCfg(t, nil)
	load(t, h, prog...)
	runBlock(t, h, 1000)

	// The entry block must span past the branch target, proving the loop
	// re-entered a cached superblock mid-body rather than at its head.
	entry := &h.blockCache[uint64(textBase)>>2&(blockCacheSize-1)]
	if !entry.valid || entry.pc != textBase || len(entry.code) < 3 {
		t.Fatalf("entry superblock not cached as expected: valid=%v pc=%#x len=%d",
			entry.valid, entry.pc, len(entry.code))
	}
	if h.X[6] != 3 || h.X[7] != 6 {
		t.Errorf("t1 = %d, t2 = %d, want 3, 6", h.X[6], h.X[7])
	}

	ref := newTestHartCfg(t, func(c *Config) { c.DisableBlockCache = true })
	load(t, ref, prog...)
	runBlock(t, ref, 1000)
	if h.X != ref.X {
		t.Errorf("scalar registers diverge from reference:\nblock %v\nref   %v", h.X, ref.X)
	}
}

// selfModProg stores a patched instruction word over pc+16 and then falls
// through to it. X[10] holds the patch address, X[11] the new word. With
// fencei the decode caches are flushed between the store and the fetch;
// without it the superblock built at the entry PC has already decoded the
// stale word.
func selfModProg(fencei bool) []riscv.Instr {
	prog := []riscv.Instr{
		ins(riscv.OpSW, 0, 10, 11, 0),  // pc+0:  patch [a0] = a1
		ins(riscv.OpADDI, 6, 0, 0, 5),  // pc+4:  t1 = 5 (or fence.i)
		ins(riscv.OpADDI, 28, 0, 0, 6), // pc+8: t3 = 6
		ins(riscv.OpADDI, 29, 0, 0, 7), // pc+12: t4 = 7
		ins(riscv.OpADDI, 7, 0, 0, 1),  // pc+16: t2 = 1 (patched to 77)
	}
	if fencei {
		prog[1] = riscv.Instr{Op: riscv.OpFENCEI, VM: true}
	}
	return prog
}

func setupSelfMod(t *testing.T, h *Hart, fencei bool) {
	t.Helper()
	load(t, h, selfModProg(fencei)...)
	h.X[10] = textBase + 16
	h.X[11] = uint64(riscv.MustEncode(ins(riscv.OpADDI, 7, 0, 0, 77)))
}

// TestFenceIRevealsPatchedCode pins the fence.i contract on both engines:
// after the store and the fence, the patched instruction must execute —
// fence.i invalidates superblock entries as well as step-cache entries.
func TestFenceIRevealsPatchedCode(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  func(*Config)
	}{
		{"block-engine", nil},
		{"reference-engine", func(c *Config) { c.DisableBlockCache = true }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			h := newTestHartCfg(t, tc.cfg)
			setupSelfMod(t, h, true)
			runBlock(t, h, 1000)
			if h.X[7] != 77 {
				t.Errorf("t2 = %d, want 77 (patched instruction after fence.i)", h.X[7])
			}
		})
	}
}

// TestStaleBlockWithoutFenceI documents the hazard fence.i exists for:
// without it, the superblock built at the entry PC keeps its pre-store
// decode and the stale instruction executes. The coyotesan build turns
// exactly this into a panic (TestSanStoreToLiveBlock), so it is skipped
// there.
func TestStaleBlockWithoutFenceI(t *testing.T) {
	if san.Enabled {
		t.Skip("coyotesan promotes the stale-code hazard to a panic")
	}
	h := newTestHartCfg(t, nil)
	setupSelfMod(t, h, false)
	runBlock(t, h, 1000)
	if h.X[7] != 1 {
		t.Errorf("t2 = %d, want 1 (stale superblock decode without fence.i)", h.X[7])
	}
}

// TestSanStoreToLiveBlock pins the sanitizer check: under -tags coyotesan
// a store into a live decoded superblock must panic with a san.Violation.
func TestSanStoreToLiveBlock(t *testing.T) {
	if !san.Enabled {
		t.Skip("needs -tags coyotesan")
	}
	h := newTestHartCfg(t, nil)
	setupSelfMod(t, h, false)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("store into a live decoded superblock did not panic")
		}
		if _, ok := r.(san.Violation); !ok {
			panic(r)
		}
	}()
	runBlock(t, h, 1000)
}

// TestStepBlockAllocFree asserts the steady-state hot loop allocates
// nothing: the //coyote:allocfree contract, enforced dynamically.
func TestStepBlockAllocFree(t *testing.T) {
	if san.Enabled {
		t.Skip("sanitizer shadow state allocates by design")
	}
	h := newTestHartCfg(t, nil)
	load(t, h, loopForever()...)
	cyc := uint64(0)
	step := func() {
		_, res := h.StepBlock(cyc, 32)
		cyc++
		for _, ev := range h.DrainEvents() {
			if ev.Fetch {
				h.CompleteFetch()
			}
		}
		if res == StepFault {
			t.Fatalf("fault: %v", h.Fault)
		}
	}
	for i := 0; i < 100; i++ { // warm caches, build blocks, touch pages
		step()
	}
	if allocs := testing.AllocsPerRun(200, step); allocs != 0 {
		t.Errorf("StepBlock allocated %.1f bytes-objects per call in steady state, want 0", allocs)
	}
}

// loopForever is an unbounded straight-line loop: twelve ALU instructions
// and a backward jal, for throughput and allocation measurements.
func loopForever() []riscv.Instr {
	prog := make([]riscv.Instr, 0, 13)
	for i := 0; i < 12; i++ {
		prog = append(prog, ins(riscv.OpADDI, 6, 6, 0, 1))
	}
	return append(prog, ins(riscv.OpJAL, 0, 0, 0, -48))
}

func benchHart(b *testing.B, mutate func(*Config)) *Hart {
	b.Helper()
	cfg := DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	h, err := NewHart(0, cfg, mem.New(), nil)
	if err != nil {
		b.Fatal(err)
	}
	h.PC = textBase
	addr := uint64(textBase)
	for _, in := range loopForever() {
		h.Mem.Write32(addr, riscv.MustEncode(in))
		addr += 4
	}
	return h
}

// benchStepBlock measures instruction throughput of the given engine on
// the unbounded ALU loop, reporting retired instructions per StepBlock
// call alongside the standard ns/op.
func benchStepBlock(b *testing.B, mutate func(*Config)) {
	h := benchHart(b, mutate)
	cyc := uint64(0)
	service := func() {
		for _, ev := range h.DrainEvents() {
			if ev.Fetch {
				h.CompleteFetch()
			}
		}
	}
	for i := 0; i < 100; i++ {
		h.StepBlock(cyc, 32)
		cyc++
		service()
	}
	retired := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, _ := h.StepBlock(cyc, 32)
		cyc++
		retired += n
		service()
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(retired)/float64(b.N), "instr/op")
	}
	if h.Fault != nil {
		b.Fatalf("fault: %v", h.Fault)
	}
}

func BenchmarkStepBlock(b *testing.B) {
	benchStepBlock(b, nil)
}

func BenchmarkStepBlockReference(b *testing.B) {
	benchStepBlock(b, func(c *Config) { c.DisableBlockCache = true })
}
