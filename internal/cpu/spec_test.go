package cpu

// Direct tests for the speculative write-journal: the register save
// lists, the CSR undo log and the read-log validation that the parallel
// orchestrator's rollback correctness rests on. The orchestrator-level
// tests only exercise these paths when a speculation actually conflicts,
// so each mechanism is driven here in isolation.

import (
	"bytes"
	"testing"

	"github.com/coyote-sim/coyote/internal/riscv"
)

// TestSpecAbortRestoresSavedRegisters arms speculation, clobbers FP
// registers, vector registers and CSRs through the same journaling entry
// points the interpreter uses, and asserts AbortSpec restores every one
// bit-exactly. The two CSR writes matter: the undo log is replayed in
// reverse, so an off-by-one in its loop bound silently skips the most
// recent entry — one write would not notice.
func TestSpecAbortRestoresSavedRegisters(t *testing.T) {
	h := newTestHart(t)
	for i := range h.F {
		h.F[i] = 0xF000 + uint64(i)
	}
	// Period 251 is coprime to the register stride (VLenB is a power of
	// two), so no two vector registers hold identical byte patterns — a
	// rollback that restores the wrong register's bytes cannot pass.
	for i := range h.V {
		h.V[i] = byte(i % 251)
	}
	h.writeCSR(riscv.CSRMStatus, 0x1111)
	h.writeCSR(riscv.CSRMEPC, 0x2222)
	fWant := h.F
	vWant := append([]byte(nil), h.V...)

	h.BeginSpec()
	h.specSaveF(1<<3 | 1<<7)
	h.F[3], h.F[7] = 0xdead, 0xbeef
	h.specSaveV(1 << 2)
	vl := int(h.VLenB)
	for i := 0; i < vl; i++ {
		h.V[2*vl+i] = 0xEE
	}
	h.writeCSR(riscv.CSRMStatus, 0xAAAA)
	h.writeCSR(riscv.CSRMEPC, 0xBBBB)
	h.AbortSpec()

	if h.F != fWant {
		t.Errorf("F not restored: F[3]=%#x F[7]=%#x", h.F[3], h.F[7])
	}
	if !bytes.Equal(h.V, vWant) {
		t.Error("vector register file not restored bit-exactly")
	}
	if got := h.readCSR(riscv.CSRMStatus); got != 0x1111 {
		t.Errorf("mstatus = %#x after abort, want 0x1111", got)
	}
	if got := h.readCSR(riscv.CSRMEPC); got != 0x2222 {
		t.Errorf("mepc = %#x after abort, want 0x2222", got)
	}
}

// TestSpecValidateReadWidths journals one speculative read per access
// width against untouched memory and requires validation to succeed.
// ValidateSpec failing spuriously is invisible to end-to-end results —
// the orchestrator just falls back to serial re-execution — so only a
// direct check catches a width arm that stops reading back.
func TestSpecValidateReadWidths(t *testing.T) {
	h := newTestHart(t)
	h.Mem.Write64(0x1000, 0x1122334455667788)

	h.BeginSpec()
	h.spec.logRead(0x1000, 1, uint64(h.Mem.Read8(0x1000)))
	h.spec.logRead(0x1000, 2, uint64(h.Mem.Read16(0x1000)))
	h.spec.logRead(0x1000, 4, uint64(h.Mem.Read32(0x1000)))
	h.spec.logRead(0x1000, 8, h.Mem.Read64(0x1000))
	if !h.ValidateSpec() {
		t.Error("validation must pass when memory is unchanged")
	}
	h.AbortSpec()

	// And the converse: a clobbered location must fail validation.
	h.BeginSpec()
	h.spec.logRead(0x1000, 4, uint64(h.Mem.Read32(0x1000)))
	h.Mem.Write32(0x1000, 0x5a5a5a5a)
	if h.ValidateSpec() {
		t.Error("validation must fail after the read location changed")
	}
	h.AbortSpec()
}
