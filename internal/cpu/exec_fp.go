package cpu

import (
	"fmt"
	"math"

	"github.com/coyote-sim/coyote/internal/riscv"
)

// F registers hold raw IEEE-754 bit patterns. Single-precision values are
// NaN-boxed per the RISC-V spec: the upper 32 bits are all ones.

const nanBoxMask = 0xffffffff00000000

func (h *Hart) setF32(r uint8, v float32) {
	h.F[r] = nanBoxMask | uint64(math.Float32bits(v))
}

func (h *Hart) getF32(r uint8) float32 {
	bitsv := h.F[r]
	if bitsv&nanBoxMask != nanBoxMask {
		// Improperly boxed: the spec says treat as canonical NaN.
		return float32(math.NaN())
	}
	return math.Float32frombits(uint32(bitsv))
}

func (h *Hart) setF64(r uint8, v float64) { h.F[r] = math.Float64bits(v) }
func (h *Hart) getF64(r uint8) float64    { return math.Float64frombits(h.F[r]) }

// executeFP handles F and D extension instructions.
func (h *Hart) executeFP(in riscv.Instr) StepResult {
	x := &h.X
	switch in.Op {
	// ----- loads/stores -----
	case riscv.OpFLW:
		a := x[in.Rs1] + uint64(in.Imm)
		h.F[in.Rd] = nanBoxMask | uint64(h.memRead32(a))
		h.scalarLoadAccess(a, RegF, in.Rd)
	case riscv.OpFLD:
		a := x[in.Rs1] + uint64(in.Imm)
		h.F[in.Rd] = h.memRead64(a)
		h.scalarLoadAccess(a, RegF, in.Rd)
	case riscv.OpFSW:
		a := x[in.Rs1] + uint64(in.Imm)
		h.memWrite32(a, uint32(h.F[in.Rs2]))
		h.scalarStoreAccess(a)
	case riscv.OpFSD:
		a := x[in.Rs1] + uint64(in.Imm)
		h.memWrite64(a, h.F[in.Rs2])
		h.scalarStoreAccess(a)

	// ----- single precision arithmetic -----
	case riscv.OpFADDS:
		h.setF32(in.Rd, h.getF32(in.Rs1)+h.getF32(in.Rs2))
	case riscv.OpFSUBS:
		h.setF32(in.Rd, h.getF32(in.Rs1)-h.getF32(in.Rs2))
	case riscv.OpFMULS:
		h.setF32(in.Rd, h.getF32(in.Rs1)*h.getF32(in.Rs2))
	case riscv.OpFDIVS:
		h.setF32(in.Rd, h.getF32(in.Rs1)/h.getF32(in.Rs2))
	case riscv.OpFSQRTS:
		h.setF32(in.Rd, float32(math.Sqrt(float64(h.getF32(in.Rs1)))))
	case riscv.OpFMINS:
		h.setF32(in.Rd, fmin32(h.getF32(in.Rs1), h.getF32(in.Rs2)))
	case riscv.OpFMAXS:
		h.setF32(in.Rd, fmax32(h.getF32(in.Rs1), h.getF32(in.Rs2)))
	case riscv.OpFMADDS:
		h.setF32(in.Rd, fmaf32(h.getF32(in.Rs1), h.getF32(in.Rs2), h.getF32(in.Rs3)))
	case riscv.OpFMSUBS:
		h.setF32(in.Rd, fmaf32(h.getF32(in.Rs1), h.getF32(in.Rs2), -h.getF32(in.Rs3)))
	case riscv.OpFNMSUBS:
		h.setF32(in.Rd, fmaf32(-h.getF32(in.Rs1), h.getF32(in.Rs2), h.getF32(in.Rs3)))
	case riscv.OpFNMADDS:
		h.setF32(in.Rd, fmaf32(-h.getF32(in.Rs1), h.getF32(in.Rs2), -h.getF32(in.Rs3)))

	// ----- double precision arithmetic -----
	case riscv.OpFADDD:
		h.setF64(in.Rd, h.getF64(in.Rs1)+h.getF64(in.Rs2))
	case riscv.OpFSUBD:
		h.setF64(in.Rd, h.getF64(in.Rs1)-h.getF64(in.Rs2))
	case riscv.OpFMULD:
		h.setF64(in.Rd, h.getF64(in.Rs1)*h.getF64(in.Rs2))
	case riscv.OpFDIVD:
		h.setF64(in.Rd, h.getF64(in.Rs1)/h.getF64(in.Rs2))
	case riscv.OpFSQRTD:
		h.setF64(in.Rd, math.Sqrt(h.getF64(in.Rs1)))
	case riscv.OpFMIND:
		h.setF64(in.Rd, fmin64(h.getF64(in.Rs1), h.getF64(in.Rs2)))
	case riscv.OpFMAXD:
		h.setF64(in.Rd, fmax64(h.getF64(in.Rs1), h.getF64(in.Rs2)))
	case riscv.OpFMADDD:
		h.setF64(in.Rd, math.FMA(h.getF64(in.Rs1), h.getF64(in.Rs2), h.getF64(in.Rs3)))
	case riscv.OpFMSUBD:
		h.setF64(in.Rd, math.FMA(h.getF64(in.Rs1), h.getF64(in.Rs2), -h.getF64(in.Rs3)))
	case riscv.OpFNMSUBD:
		h.setF64(in.Rd, math.FMA(-h.getF64(in.Rs1), h.getF64(in.Rs2), h.getF64(in.Rs3)))
	case riscv.OpFNMADDD:
		h.setF64(in.Rd, math.FMA(-h.getF64(in.Rs1), h.getF64(in.Rs2), -h.getF64(in.Rs3)))

	// ----- sign injection -----
	case riscv.OpFSGNJS:
		h.setF32(in.Rd, sgnj32(h.getF32(in.Rs1), h.getF32(in.Rs2), false, false))
	case riscv.OpFSGNJNS:
		h.setF32(in.Rd, sgnj32(h.getF32(in.Rs1), h.getF32(in.Rs2), true, false))
	case riscv.OpFSGNJXS:
		h.setF32(in.Rd, sgnj32(h.getF32(in.Rs1), h.getF32(in.Rs2), false, true))
	case riscv.OpFSGNJD:
		h.setF64(in.Rd, sgnj64(h.getF64(in.Rs1), h.getF64(in.Rs2), false, false))
	case riscv.OpFSGNJND:
		h.setF64(in.Rd, sgnj64(h.getF64(in.Rs1), h.getF64(in.Rs2), true, false))
	case riscv.OpFSGNJXD:
		h.setF64(in.Rd, sgnj64(h.getF64(in.Rs1), h.getF64(in.Rs2), false, true))

	// ----- comparisons -----
	case riscv.OpFEQS:
		h.setX(in.Rd, b2u(h.getF32(in.Rs1) == h.getF32(in.Rs2)))
	case riscv.OpFLTS:
		h.setX(in.Rd, b2u(h.getF32(in.Rs1) < h.getF32(in.Rs2)))
	case riscv.OpFLES:
		h.setX(in.Rd, b2u(h.getF32(in.Rs1) <= h.getF32(in.Rs2)))
	case riscv.OpFEQD:
		h.setX(in.Rd, b2u(h.getF64(in.Rs1) == h.getF64(in.Rs2)))
	case riscv.OpFLTD:
		h.setX(in.Rd, b2u(h.getF64(in.Rs1) < h.getF64(in.Rs2)))
	case riscv.OpFLED:
		h.setX(in.Rd, b2u(h.getF64(in.Rs1) <= h.getF64(in.Rs2)))

	// ----- conversions -----
	case riscv.OpFCVTWS:
		h.setX(in.Rd, sext32(uint32(satI32(float64(h.getF32(in.Rs1))))))
	case riscv.OpFCVTWUS:
		h.setX(in.Rd, sext32(satU32(float64(h.getF32(in.Rs1)))))
	case riscv.OpFCVTLS:
		h.setX(in.Rd, uint64(satI64(float64(h.getF32(in.Rs1)))))
	case riscv.OpFCVTLUS:
		h.setX(in.Rd, satU64(float64(h.getF32(in.Rs1))))
	case riscv.OpFCVTSW:
		h.setF32(in.Rd, float32(int32(x[in.Rs1])))
	case riscv.OpFCVTSWU:
		h.setF32(in.Rd, float32(uint32(x[in.Rs1])))
	case riscv.OpFCVTSL:
		h.setF32(in.Rd, float32(int64(x[in.Rs1])))
	case riscv.OpFCVTSLU:
		h.setF32(in.Rd, float32(x[in.Rs1]))
	case riscv.OpFCVTWD:
		h.setX(in.Rd, sext32(uint32(satI32(h.getF64(in.Rs1)))))
	case riscv.OpFCVTWUD:
		h.setX(in.Rd, sext32(satU32(h.getF64(in.Rs1))))
	case riscv.OpFCVTLD:
		h.setX(in.Rd, uint64(satI64(h.getF64(in.Rs1))))
	case riscv.OpFCVTLUD:
		h.setX(in.Rd, satU64(h.getF64(in.Rs1)))
	case riscv.OpFCVTDW:
		h.setF64(in.Rd, float64(int32(x[in.Rs1])))
	case riscv.OpFCVTDWU:
		h.setF64(in.Rd, float64(uint32(x[in.Rs1])))
	case riscv.OpFCVTDL:
		h.setF64(in.Rd, float64(int64(x[in.Rs1])))
	case riscv.OpFCVTDLU:
		h.setF64(in.Rd, float64(x[in.Rs1]))
	case riscv.OpFCVTSD:
		h.setF32(in.Rd, float32(h.getF64(in.Rs1)))
	case riscv.OpFCVTDS:
		h.setF64(in.Rd, float64(h.getF32(in.Rs1)))

	// ----- moves & classification -----
	case riscv.OpFMVXW:
		h.setX(in.Rd, sext32(uint32(h.F[in.Rs1])))
	case riscv.OpFMVWX:
		h.F[in.Rd] = nanBoxMask | uint64(uint32(x[in.Rs1]))
	case riscv.OpFMVXD:
		h.setX(in.Rd, h.F[in.Rs1])
	case riscv.OpFMVDX:
		h.F[in.Rd] = x[in.Rs1]
	case riscv.OpFCLASSS:
		h.setX(in.Rd, fclass(float64(h.getF32(in.Rs1)), uint32(h.F[in.Rs1])&0x7fffff != 0 && uint32(h.F[in.Rs1])>>23&0xff == 0))
	case riscv.OpFCLASSD:
		h.setX(in.Rd, fclass(h.getF64(in.Rs1), h.F[in.Rs1]&(1<<52-1) != 0 && h.F[in.Rs1]>>52&0x7ff == 0))

	default:
		h.Fault = fmt.Errorf("hart %d: pc=%#x: unimplemented FP op %v", h.ID, h.PC, in.Op) //coyote:alloc-ok fault path is terminal, the run ends here
		h.Halted = true
		return StepFault
	}
	return StepExecuted
}

// fmaf32 computes a*b+c with a single rounding, as the hardware would.
func fmaf32(a, b, c float32) float32 {
	return float32(math.FMA(float64(a), float64(b), float64(c)))
}

func fmin32(a, b float32) float32 {
	switch {
	case a != a:
		return b
	case b != b:
		return a
	case a < b:
		return a
	default:
		return b
	}
}

func fmax32(a, b float32) float32 {
	switch {
	case a != a:
		return b
	case b != b:
		return a
	case a > b:
		return a
	default:
		return b
	}
}

func fmin64(a, b float64) float64 {
	switch {
	case math.IsNaN(a):
		return b
	case math.IsNaN(b):
		return a
	case a < b:
		return a
	default:
		return b
	}
}

func fmax64(a, b float64) float64 {
	switch {
	case math.IsNaN(a):
		return b
	case math.IsNaN(b):
		return a
	case a > b:
		return a
	default:
		return b
	}
}

func sgnj32(a, b float32, negate, xorSign bool) float32 {
	ab := math.Float32bits(a)
	bb := math.Float32bits(b)
	sign := bb & (1 << 31)
	if negate {
		sign ^= 1 << 31
	}
	if xorSign {
		sign = (ab ^ bb) & (1 << 31)
	}
	return math.Float32frombits(ab&^(1<<31) | sign)
}

func sgnj64(a, b float64, negate, xorSign bool) float64 {
	ab := math.Float64bits(a)
	bb := math.Float64bits(b)
	sign := bb & (1 << 63)
	if negate {
		sign ^= 1 << 63
	}
	if xorSign {
		sign = (ab ^ bb) & (1 << 63)
	}
	return math.Float64frombits(ab&^(1<<63) | sign)
}

// Saturating conversions per the RISC-V spec (NaN → max positive).

func satI32(v float64) int32 {
	switch {
	case math.IsNaN(v):
		return math.MaxInt32
	case v >= math.MaxInt32:
		return math.MaxInt32
	case v <= math.MinInt32:
		return math.MinInt32
	default:
		return int32(v)
	}
}

func satU32(v float64) uint32 {
	switch {
	case math.IsNaN(v):
		return math.MaxUint32
	case v >= math.MaxUint32:
		return math.MaxUint32
	case v <= 0:
		return 0
	default:
		return uint32(v)
	}
}

func satI64(v float64) int64 {
	switch {
	case math.IsNaN(v):
		return math.MaxInt64
	case v >= math.MaxInt64:
		return math.MaxInt64
	case v <= math.MinInt64:
		return math.MinInt64
	default:
		return int64(v)
	}
}

func satU64(v float64) uint64 {
	switch {
	case math.IsNaN(v):
		return math.MaxUint64
	case v >= math.MaxUint64:
		return math.MaxUint64
	case v <= 0:
		return 0
	default:
		return uint64(v)
	}
}

// fclass implements the FCLASS bit encoding.
func fclass(v float64, subnormal bool) uint64 {
	switch {
	case math.IsInf(v, -1):
		return 1 << 0
	case math.IsInf(v, 1):
		return 1 << 7
	case math.IsNaN(v):
		return 1 << 9 // quiet NaN (we do not distinguish signalling)
	case v == 0 && math.Signbit(v):
		return 1 << 3
	case v == 0:
		return 1 << 4
	case subnormal && math.Signbit(v):
		return 1 << 2
	case subnormal:
		return 1 << 5
	case math.Signbit(v):
		return 1 << 1
	default:
		return 1 << 6
	}
}
