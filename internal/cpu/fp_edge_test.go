package cpu

// Edge-case tests for the floating-point model: single-precision
// arithmetic, NaN propagation in min/max, saturating conversions,
// classification, NaN-boxing, and the 32-bit AMO min/max family.

import (
	"math"
	"testing"

	"github.com/coyote-sim/coyote/internal/riscv"
)

func TestFP32MinMaxSgnj(t *testing.T) {
	runISACase(t, isaCase{
		name: "fp32_minmax",
		src: `
		li a1, -3
		fcvt.s.l fa0, a1
		li a2, 2
		fcvt.s.l fa1, a2
		fmin.s fa2, fa0, fa1
		fmax.s fa3, fa0, fa1
		fneg.s fa4, fa1
		fabs.s fa5, fa4
		fsgnj.s fa6, fa1, fa0
		fcvt.d.s fa2, fa2
		fcvt.d.s fa3, fa3
		fcvt.d.s fa4, fa4
		fcvt.d.s fa5, fa5
		fcvt.d.s fa6, fa6`,
		f: map[uint8]float64{12: -3, 13: 2, 14: -2, 15: 2, 16: -2},
	})
}

func TestFPNaNSemantics(t *testing.T) {
	h := newTestHart(t)
	// fmin/fmax with one NaN operand return the other operand (RISC-V
	// -2008 semantics).
	h.F[1] = math.Float64bits(math.NaN())
	h.setF64(2, 7.0)
	load(t, h,
		ins(riscv.OpFMIND, 3, 1, 2, 0),
		ins(riscv.OpFMAXD, 4, 1, 2, 0),
		ins(riscv.OpFEQD, 5, 1, 1, 0), // NaN != NaN
		ins(riscv.OpFLTD, 6, 1, 2, 0), // NaN comparisons are false
	)
	run(t, h, 20)
	if h.getF64(3) != 7 || h.getF64(4) != 7 {
		t.Errorf("fmin/fmax with NaN = %v, %v; want 7, 7", h.getF64(3), h.getF64(4))
	}
	if h.X[5] != 0 || h.X[6] != 0 {
		t.Errorf("NaN compares = %d, %d; want 0, 0", h.X[5], h.X[6])
	}
}

func TestSaturatingConversions(t *testing.T) {
	h := newTestHart(t)
	h.setF64(1, math.NaN())
	h.setF64(2, 1e300)
	h.setF64(3, -1e300)
	h.setF64(4, -5.0)
	load(t, h,
		ins(riscv.OpFCVTWD, 5, 1, 0, 0),   // NaN → INT32_MAX
		ins(riscv.OpFCVTWD, 6, 2, 0, 0),   // +huge → INT32_MAX
		ins(riscv.OpFCVTWD, 7, 3, 0, 0),   // -huge → INT32_MIN
		ins(riscv.OpFCVTWUD, 28, 4, 0, 0), // negative → 0
		ins(riscv.OpFCVTLUD, 29, 2, 0, 0), // +huge → UINT64_MAX
		ins(riscv.OpFCVTLD, 30, 3, 0, 0),  // -huge → INT64_MIN
		ins(riscv.OpFCVTWUD, 31, 1, 0, 0), // NaN → UINT32_MAX
	)
	run(t, h, 20)
	checks := map[uint8]uint64{
		5:  uint64(int64(math.MaxInt32)),
		6:  uint64(int64(math.MaxInt32)),
		7:  sext32(1 << 31),
		28: 0,
		29: math.MaxUint64,
		30: 1 << 63,
		31: sext32(math.MaxUint32),
	}
	for r, want := range checks {
		if h.X[r] != want {
			t.Errorf("x%d = %#x, want %#x", r, h.X[r], want)
		}
	}
}

func TestFClassMatrix(t *testing.T) {
	h := newTestHart(t)
	h.setF64(1, math.Inf(-1))
	h.setF64(2, math.Inf(1))
	h.setF64(3, math.NaN())
	h.F[4] = 1 << 63            // -0.0
	h.F[5] = 0x0000000000000001 // smallest positive subnormal
	h.F[6] = 0x8000000000000001 // negative subnormal
	load(t, h,
		ins(riscv.OpFCLASSD, 10, 1, 0, 0),
		ins(riscv.OpFCLASSD, 11, 2, 0, 0),
		ins(riscv.OpFCLASSD, 12, 3, 0, 0),
		ins(riscv.OpFCLASSD, 13, 4, 0, 0),
		ins(riscv.OpFCLASSD, 14, 5, 0, 0),
		ins(riscv.OpFCLASSD, 15, 6, 0, 0),
	)
	run(t, h, 20)
	checks := map[uint8]uint64{
		10: 1 << 0, // -inf
		11: 1 << 7, // +inf
		12: 1 << 9, // quiet NaN
		13: 1 << 3, // -0
		14: 1 << 5, // +subnormal
		15: 1 << 2, // -subnormal
	}
	for r, want := range checks {
		if h.X[r] != want {
			t.Errorf("fclass x%d = %#x, want %#x", r, h.X[r], want)
		}
	}
}

func TestNaNBoxing(t *testing.T) {
	h := newTestHart(t)
	// A single written via fcvt.s.* must be NaN-boxed; reading it as a
	// double must see the box.
	h.X[10] = 3
	load(t, h, ins(riscv.OpFCVTSW, 1, 10, 0, 0))
	run(t, h, 10)
	if h.F[1]&nanBoxMask != nanBoxMask {
		t.Errorf("single not NaN-boxed: %#x", h.F[1])
	}
	// An improperly-boxed value read as single is treated as NaN.
	h.F[2] = uint64(math.Float32bits(1.5)) // upper bits zero: invalid box
	if v := h.getF32(2); v == v {
		t.Errorf("unboxed single should read as NaN, got %v", v)
	}
}

func TestAMO32MinMax(t *testing.T) {
	runISACase(t, isaCase{
		name: "amo32_minmax",
		src: `
		la a0, scratch
		li a1, -5
		sw a1, 0(a0)
		li a2, 3
		amomax.w a3, a2, (a0)    # old -5, mem 3
		lw a4, 0(a0)
		li a5, -7
		amomin.w a6, a5, (a0)    # old 3, mem -7
		lw a7, 0(a0)
		li s2, 1
		amominu.w s3, s2, (a0)   # unsigned: -7 is huge; mem 1
		lw s4, 0(a0)
		li s5, -1
		amomaxu.w s6, s5, (a0)   # unsigned max: mem 0xffffffff → lw sext -1
		lw s7, 0(a0)
		li s8, 10
		amoxor.w s9, s8, (a0)
		li s10, 12
		amoand.w s11, s10, (a0)`,
		x: map[uint8]uint64{
			13: u(-5), 14: 3,
			16: 3, 17: u(-7),
			19: u(-7), 20: 1,
			22: 1, 23: u(-1),
		},
	})
}

func TestVectorFP32(t *testing.T) {
	h := newTestHart(t)
	for i := 0; i < 4; i++ {
		h.Mem.Write32(0x1000+uint64(i*4), math.Float32bits(float32(i)+0.5))
	}
	h.X[10] = 4
	h.X[11] = 0x1000
	h.X[13] = 0x2000
	h.setF32(1, 2.0)
	load(t, h,
		vsetvli(5, 10, 32, 1),
		riscv.Instr{Op: riscv.OpVLE32, Rd: 1, Rs1: 11, VM: true},
		riscv.Instr{Op: riscv.OpVFMULVF, Rd: 2, Rs1: 1, Rs2: 1, VM: true}, // v2 = v1 * fa1(=f1)
		riscv.Instr{Op: riscv.OpVSE32, Rd: 2, Rs1: 13, VM: true},
	)
	run(t, h, 50)
	for i := 0; i < 4; i++ {
		want := (float32(i) + 0.5) * 2.0
		got := math.Float32frombits(h.Mem.Read32(0x2000 + uint64(i*4)))
		if got != want {
			t.Errorf("fp32 lane %d = %v, want %v", i, got, want)
		}
	}
	// SEW=32 reductions and scalar moves. Loading a second program over
	// the first requires flushing the decoded-instruction cache.
	h.FlushDecodeCache()
	load(t, h,
		vsetvli(5, 10, 32, 1),
		riscv.Instr{Op: riscv.OpVLE32, Rd: 1, Rs1: 11, VM: true},
		riscv.Instr{Op: riscv.OpVMVVI, Rd: 2, Imm: 0, VM: true},
		riscv.Instr{Op: riscv.OpVFREDUSUMVS, Rd: 3, Rs1: 2, Rs2: 1, VM: true},
		riscv.Instr{Op: riscv.OpVFMVFS, Rd: 2, Rs2: 3, VM: true},
	)
	h.PC = textBase
	h.Halted = false
	run(t, h, 50)
	want := float32(0.5 + 1.5 + 2.5 + 3.5)
	if got := h.getF32(2); got != want {
		t.Errorf("fp32 reduction = %v, want %v", got, want)
	}
}

func TestVsetvlVLMaxRequest(t *testing.T) {
	h := newTestHart(t)
	load(t, h,
		// rs1 = x0, rd != x0 → request VLMAX.
		riscv.Instr{Op: riscv.OpVSETVLI, Rd: 5, Rs1: 0,
			Imm: mustVType(64, 2), VM: true},
	)
	run(t, h, 10)
	want := uint64(h.VLenB) * 8 * 2 / 64
	if h.VL != want || h.X[5] != want {
		t.Errorf("VLMAX request: vl = %d, want %d", h.VL, want)
	}
	// rs1 = rd = x0 → keep current vl (vtype may change).
	load(t, h,
		riscv.Instr{Op: riscv.OpVSETVLI, Rd: 5, Rs1: 0,
			Imm: mustVType(64, 2), VM: true},
		riscv.Instr{Op: riscv.OpVSETVLI, Rd: 0, Rs1: 0,
			Imm: mustVType(64, 2), VM: true},
	)
	h.PC = textBase
	h.Halted = false
	run(t, h, 10)
	if h.VL != want {
		t.Errorf("keep-vl form: vl = %d, want %d", h.VL, want)
	}
}

func mustVType(sew, lmul uint) int64 {
	v, err := riscv.EncodeVType(riscv.VType{SEW: sew, LMUL: lmul, TA: true, MA: true})
	if err != nil {
		panic(err)
	}
	return v
}

// TestFP32DivQuotient pins FDIV.S as an actual division: 7/2 is exact in
// binary32, so the quotient is 3.5 with no rounding slack — an operator
// slip (e.g. to multiplication, yielding 14) cannot pass.
func TestFP32DivQuotient(t *testing.T) {
	runISACase(t, isaCase{
		name: "fp32_div",
		src: `
		li a1, 7
		fcvt.s.l fa0, a1
		li a2, 2
		fcvt.s.l fa1, a2
		fdiv.s fa2, fa0, fa1
		fcvt.d.s fa2, fa2`,
		f: map[uint8]float64{12: 3.5},
	})
}
