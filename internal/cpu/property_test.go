package cpu

// Property-based tests: for randomly drawn operands, the simulated
// execution of each ALU/M instruction must match the Go-native reference
// semantics of RV64. Uses testing/quick per the RISC-V unprivileged spec
// definitions.

import (
	"testing"
	"testing/quick"

	"github.com/coyote-sim/coyote/internal/mem"
	"github.com/coyote-sim/coyote/internal/riscv"
)

// execRR runs a single R-type instruction with the given operand values
// and returns rd.
func execRR(t *testing.T, op riscv.Op, a, b uint64) uint64 {
	t.Helper()
	m := mem.New()
	h, err := NewHart(0, DefaultConfig(), m, nil)
	if err != nil {
		t.Fatal(err)
	}
	h.PC = 0x80000000
	h.X[5] = a
	h.X[6] = b
	m.Write32(0x80000000, riscv.MustEncode(riscv.Instr{
		Op: op, Rd: 7, Rs1: 5, Rs2: 6, VM: true,
	}))
	for i := 0; i < 4; i++ {
		res := h.Step(uint64(i))
		for _, ev := range h.DrainEvents() {
			if ev.Fetch {
				h.CompleteFetch()
			}
		}
		if res == StepExecuted {
			return h.X[7]
		}
		if res == StepFault {
			t.Fatalf("fault: %v", h.Fault)
		}
	}
	t.Fatal("instruction did not execute")
	return 0
}

type rrProp struct {
	op  riscv.Op
	ref func(a, b uint64) uint64
}

func TestALUProperties(t *testing.T) {
	props := []rrProp{
		{riscv.OpADD, func(a, b uint64) uint64 { return a + b }},
		{riscv.OpSUB, func(a, b uint64) uint64 { return a - b }},
		{riscv.OpAND, func(a, b uint64) uint64 { return a & b }},
		{riscv.OpOR, func(a, b uint64) uint64 { return a | b }},
		{riscv.OpXOR, func(a, b uint64) uint64 { return a ^ b }},
		{riscv.OpSLL, func(a, b uint64) uint64 { return a << (b & 63) }},
		{riscv.OpSRL, func(a, b uint64) uint64 { return a >> (b & 63) }},
		{riscv.OpSRA, func(a, b uint64) uint64 { return uint64(int64(a) >> (b & 63)) }},
		{riscv.OpSLT, func(a, b uint64) uint64 {
			if int64(a) < int64(b) {
				return 1
			}
			return 0
		}},
		{riscv.OpSLTU, func(a, b uint64) uint64 {
			if a < b {
				return 1
			}
			return 0
		}},
		{riscv.OpMUL, func(a, b uint64) uint64 { return a * b }},
		{riscv.OpADDW, func(a, b uint64) uint64 { return sext32(uint32(a) + uint32(b)) }},
		{riscv.OpSUBW, func(a, b uint64) uint64 { return sext32(uint32(a) - uint32(b)) }},
		{riscv.OpSLLW, func(a, b uint64) uint64 { return sext32(uint32(a) << (b & 31)) }},
		{riscv.OpSRLW, func(a, b uint64) uint64 { return sext32(uint32(a) >> (b & 31)) }},
		{riscv.OpMULW, func(a, b uint64) uint64 { return sext32(uint32(a) * uint32(b)) }},
	}
	for _, p := range props {
		p := p
		t.Run(p.op.String(), func(t *testing.T) {
			f := func(a, b uint64) bool {
				return execRR(t, p.op, a, b) == p.ref(a, b)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestDivProperties checks the spec-mandated division semantics,
// including divide-by-zero and overflow, against big.Int-free references.
func TestDivProperties(t *testing.T) {
	f := func(a, b uint64) bool {
		gotDiv := execRR(t, riscv.OpDIV, a, b)
		gotRem := execRR(t, riscv.OpREM, a, b)
		sa, sb := int64(a), int64(b)
		var wantDiv, wantRem uint64
		switch {
		case sb == 0:
			wantDiv, wantRem = ^uint64(0), a
		case sa == -1<<63 && sb == -1:
			wantDiv, wantRem = a, 0
		default:
			wantDiv, wantRem = uint64(sa/sb), uint64(sa%sb)
		}
		// Invariant: a == div*b + rem whenever defined.
		if sb != 0 && !(sa == -1<<63 && sb == -1) {
			if int64(wantDiv)*sb+int64(wantRem) != sa {
				return false
			}
		}
		return gotDiv == wantDiv && gotRem == wantRem
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestMulhProperty validates the high-multiply family via the identity
// (a*b)_128 = mulh(a,b)·2^64 + (a*b mod 2^64), checked through mulhu
// decomposition.
func TestMulhProperty(t *testing.T) {
	f := func(a, b uint64) bool {
		hi := execRR(t, riscv.OpMULHU, a, b)
		lo := a * b
		// Verify via long multiplication in 32-bit limbs.
		a0, a1 := a&0xffffffff, a>>32
		b0, b1 := b&0xffffffff, b>>32
		mid := a0*b1 + (a0*b0)>>32
		mid2 := a1*b0 + mid&0xffffffff
		wantHi := a1*b1 + mid>>32 + mid2>>32
		wantLo := mid2<<32 | (a0*b0)&0xffffffff
		return hi == wantHi && lo == wantLo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
	// Sign identities: mulh(a,b) relates to mulhu by operand-sign fixups.
	g := func(a, b uint64) bool {
		mulhGot := execRR(t, riscv.OpMULH, a, b)
		mulhuGot := execRR(t, riscv.OpMULHU, a, b)
		want := mulhuGot
		if int64(a) < 0 {
			want -= b
		}
		if int64(b) < 0 {
			want -= a
		}
		return mulhGot == want
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestVectorElementwiseProperty: vadd.vv over random data must equal the
// scalar loop, for every supported SEW.
func TestVectorElementwiseProperty(t *testing.T) {
	for _, sew := range []uint{8, 16, 32, 64} {
		sew := sew
		f := func(data []uint8) bool {
			m := mem.New()
			h, err := NewHart(0, DefaultConfig(), m, nil)
			if err != nil {
				t.Fatal(err)
			}
			n := uint64(len(data))
			if n == 0 {
				return true
			}
			vlmax := uint64(h.VLenB) * 8 / uint64(sew)
			if n > vlmax {
				n = vlmax
			}
			vt, _ := riscv.EncodeVType(riscv.VType{SEW: sew, LMUL: 1, TA: true, MA: true})
			h.VType, _ = riscv.DecodeVType(uint64(vt))
			h.VL = n
			for i := uint64(0); i < n; i++ {
				h.vSetInt(1, i, sew, uint64(data[i]))
				h.vSetInt(2, i, sew, uint64(data[len(data)-1-int(i)])*3)
			}
			h.executeVArith(riscv.Instr{
				Op: riscv.OpVADDVV, Rd: 3, Rs1: 1, Rs2: 2, VM: true,
			})
			mask := ^uint64(0)
			if sew < 64 {
				mask = 1<<sew - 1
			}
			for i := uint64(0); i < n; i++ {
				want := (uint64(data[i]) + uint64(data[len(data)-1-int(i)])*3) & mask
				if h.vGetInt(3, i, sew) != want {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
			t.Errorf("sew %d: %v", sew, err)
		}
	}
}

// TestVectorReductionProperty: vredsum equals the scalar sum modulo 2^sew.
func TestVectorReductionProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		m := mem.New()
		h, err := NewHart(0, DefaultConfig(), m, nil)
		if err != nil {
			t.Fatal(err)
		}
		const sew = 64
		n := uint64(len(vals))
		vlmax := uint64(h.VLenB) * 8 / sew
		if n > vlmax {
			n = vlmax
		}
		vt, _ := riscv.EncodeVType(riscv.VType{SEW: sew, LMUL: 1, TA: true, MA: true})
		h.VType, _ = riscv.DecodeVType(uint64(vt))
		h.VL = n
		var want uint64
		for i := uint64(0); i < n; i++ {
			h.vSetInt(2, i, sew, uint64(vals[i]))
			want += uint64(vals[i])
		}
		h.vSetInt(1, 0, sew, 5) // scalar seed in vs1[0]
		want += 5
		h.executeVArith(riscv.Instr{
			Op: riscv.OpVREDSUMVS, Rd: 3, Rs1: 1, Rs2: 2, VM: true,
		})
		return h.vGetInt(3, 0, sew) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
