package cpu

import (
	"fmt"

	"github.com/coyote-sim/coyote/internal/riscv"
)

// readCSR returns the current value of a CSR.
func (h *Hart) readCSR(addr uint16) uint64 {
	switch addr {
	case riscv.CSRMHartID:
		return uint64(h.ID)
	case riscv.CSRCycle, riscv.CSRTime:
		if h.CycleFn != nil {
			return h.CycleFn()
		}
		return 0
	case riscv.CSRInstret:
		return h.Stats.Instret
	case riscv.CSRVL:
		return h.VL
	case riscv.CSRVType:
		return h.vtypeRaw
	case riscv.CSRVLenB:
		return uint64(h.VLenB)
	case riscv.CSRVStart:
		return 0
	default:
		return h.csr[addr]
	}
}

// writeCSR updates a CSR; read-only CSRs silently ignore writes (matching
// the permissive bare-metal behaviour the kernels rely on).
func (h *Hart) writeCSR(addr uint16, v uint64) {
	switch addr {
	case riscv.CSRMHartID, riscv.CSRCycle, riscv.CSRTime, riscv.CSRInstret,
		riscv.CSRVL, riscv.CSRVType, riscv.CSRVLenB:
		// read-only in this model
	default:
		if h.spec.active {
			old, existed := h.csr[addr]
			h.spec.csrUndo = append(h.spec.csrUndo,
				specCSRUndo{addr: addr, existed: existed, old: old})
		}
		h.csr[addr] = v
	}
}

// executeCSR handles the six Zicsr instructions.
func (h *Hart) executeCSR(in riscv.Instr) StepResult {
	addr := uint16(in.Imm)
	old := h.readCSR(addr)
	var src uint64
	imm := false
	switch in.Op {
	case riscv.OpCSRRWI, riscv.OpCSRRSI, riscv.OpCSRRCI:
		src = uint64(in.Rs1)
		imm = true
	default:
		src = h.X[in.Rs1]
	}
	switch in.Op {
	case riscv.OpCSRRW, riscv.OpCSRRWI:
		h.writeCSR(addr, src)
	case riscv.OpCSRRS, riscv.OpCSRRSI:
		if (imm && in.Rs1 != 0) || (!imm && in.Rs1 != 0) {
			h.writeCSR(addr, old|src)
		}
	case riscv.OpCSRRC, riscv.OpCSRRCI:
		if (imm && in.Rs1 != 0) || (!imm && in.Rs1 != 0) {
			h.writeCSR(addr, old&^src)
		}
	default:
		h.Fault = fmt.Errorf("hart %d: bad CSR op %v", h.ID, in.Op) //coyote:alloc-ok fault path is terminal, the run ends here
		h.Halted = true
		return StepFault
	}
	h.setX(in.Rd, old)
	return StepExecuted
}
