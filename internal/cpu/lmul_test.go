package cpu

// Tests for LMUL > 1 register grouping: loads, arithmetic and stores over
// register groups, plus the dependency masks they imply.

import (
	"testing"

	"github.com/coyote-sim/coyote/internal/riscv"
)

func TestLMUL4LoadComputeStore(t *testing.T) {
	h := newTestHart(t)
	vlmax1 := uint64(h.VLenB) * 8 / 64 // elements per single register
	n := 4 * vlmax1                    // exactly one m4 group
	for i := uint64(0); i < n; i++ {
		h.Mem.Write64(0x10000+i*8, i+1)
	}
	h.X[10] = n
	h.X[11] = 0x10000
	h.X[13] = 0x20000
	load(t, h,
		vsetvli(5, 10, 64, 4),
		riscv.Instr{Op: riscv.OpVLE64, Rd: 4, Rs1: 11, VM: true},         // v4-v7
		riscv.Instr{Op: riscv.OpVADDVI, Rd: 8, Rs2: 4, Imm: 7, VM: true}, // v8-v11
		riscv.Instr{Op: riscv.OpVSE64, Rd: 8, Rs1: 13, VM: true},
	)
	run(t, h, 100)
	if h.VL != n {
		t.Fatalf("vl = %d, want %d", h.VL, n)
	}
	for i := uint64(0); i < n; i++ {
		if got := h.Mem.Read64(0x20000 + i*8); got != i+8 {
			t.Fatalf("elem %d = %d, want %d", i, got, i+8)
		}
	}
}

func TestLMULGroupSpansRegisters(t *testing.T) {
	h := newTestHart(t)
	vlmax1 := uint64(h.VLenB) * 8 / 64
	h.X[10] = 2 * vlmax1
	load(t, h,
		vsetvli(5, 10, 64, 2),
		riscv.Instr{Op: riscv.OpVIDV, Rd: 2, VM: true}, // v2-v3 group
	)
	run(t, h, 50)
	// Element vlmax1 lives in v3 (the second register of the group).
	if got := h.vGetInt(3, 0, 64); got != vlmax1 {
		t.Errorf("first element of v3 = %d, want %d", got, vlmax1)
	}
}

func TestLMULRegUsageGroups(t *testing.T) {
	in := riscv.Instr{Op: riscv.OpVADDVV, Rd: 4, Rs1: 8, Rs2: 12, VM: true}
	use := riscv.RegUsage(in, 4)
	wantWrites := uint32(0xf << 4)        // v4-v7
	wantReads := uint32(0xf<<8 | 0xf<<12) // v8-v11, v12-v15
	if use.WritesV != wantWrites {
		t.Errorf("WritesV = %#x, want %#x", use.WritesV, wantWrites)
	}
	if use.ReadsV != wantReads {
		t.Errorf("ReadsV = %#x, want %#x", use.ReadsV, wantReads)
	}
}

func TestMaskedOpReadsV0(t *testing.T) {
	in := riscv.Instr{Op: riscv.OpVADDVV, Rd: 4, Rs1: 8, Rs2: 12, VM: false}
	use := riscv.RegUsage(in, 1)
	if use.ReadsV&1 == 0 {
		t.Error("masked op must read v0")
	}
}

func TestLMULChangeRefreshesStepCache(t *testing.T) {
	// The step cache memoises register-usage masks per LMUL; re-executing
	// the same instruction after a vsetvli with a different LMUL must not
	// use stale group masks. Loop twice over the same vadd with LMUL 1
	// then 4, checking the dependency behaviour stays exact.
	h := newTestHart(t)
	h.X[10] = 4
	h.X[12] = 1 << 20
	load(t, h,
		// pass 1: lmul=1
		vsetvli(5, 10, 64, 1),
		riscv.Instr{Op: riscv.OpVADDVV, Rd: 8, Rs1: 4, Rs2: 4, VM: true},
		// pass 2: lmul=4, same instruction encoding elsewhere would be
		// cached; here we re-execute a *new* vadd after changing vtype.
		vsetvli(5, 12, 64, 4),
		riscv.Instr{Op: riscv.OpVADDVV, Rd: 8, Rs1: 4, Rs2: 4, VM: true},
	)
	run(t, h, 100)
	if h.VType.LMUL != 4 {
		t.Errorf("lmul = %d", h.VType.LMUL)
	}
}

func TestVectorLoadMissMarksWholeGroupBase(t *testing.T) {
	h := newTestHart(t)
	vlmax1 := uint64(h.VLenB) * 8 / 64
	h.X[10] = 4 * vlmax1
	h.X[11] = 0x100000
	load(t, h,
		vsetvli(5, 10, 64, 4),
		riscv.Instr{Op: riscv.OpVLE64, Rd: 8, Rs1: 11, VM: true},
		riscv.Instr{Op: riscv.OpVMVXS, Rd: 6, Rs2: 8, VM: true}, // reads the group base
	)
	// Drive manually: the vle64 misses several lines; the vmv.x.s must
	// stall until every fill lands.
	var pendingFills []MemEvent
	sawStall := false
	for i := 0; i < 200 && !h.Halted; i++ {
		res := h.Step(uint64(i))
		for _, ev := range h.DrainEvents() {
			switch {
			case ev.Fetch:
				h.CompleteFetch()
			case ev.HasDest:
				pendingFills = append(pendingFills, ev)
			}
		}
		if res == StepStalledRAW {
			sawStall = true
			// Service exactly one fill per stalled cycle to stretch the
			// dependency window.
			if len(pendingFills) > 0 {
				h.CompleteFill(pendingFills[0].Dest, pendingFills[0].DestReg)
				pendingFills = pendingFills[1:]
			}
		}
		if res == StepFault {
			t.Fatal(h.Fault)
		}
	}
	if !sawStall {
		t.Error("group-consuming instruction never stalled on the load")
	}
	if !h.Halted {
		t.Fatal("program did not finish")
	}
}
