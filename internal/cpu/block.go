package cpu

import (
	"math"

	"github.com/coyote-sim/coyote/internal/riscv"
	"github.com/coyote-sim/coyote/internal/san"
)

// Superblock execution engine.
//
// The per-PC stepCache already removes decode work from the hot loop, but
// every retired instruction still pays a full Step call: L1I line check,
// cache probe, scoreboard test, orchestrator return. For straight-line
// code — the overwhelming majority of kernel instructions — all of that
// bookkeeping is predictable in advance. A blockEntry caches a decoded
// straight-line run ("superblock") starting at its PC, terminated by the
// first instruction that can redirect or leave the fast path:
//
//   - system instructions (ClassSystem: ecall/ebreak/fence/fence.i, CSR
//     ops, the vsetvl family — anything that can read batched counters or
//     change LMUL),
//   - atomics (ClassAtomic: refuse to run speculatively),
//   - undecodable words (the architectural single-step path owns faults),
//   - the configured maximum block length.
//
// Control flow (ClassBranch: branches, jal, jalr) also ends a block, but
// as its *last* instruction rather than by exclusion: the execution loop
// below advances pc to whatever nextPC execute produced, so a trailing
// branch retires inside the block and redirects the hart in one call —
// a loop iteration costs one StepBlock entry, never a single-step detour.
// Only the final element of a block can be a branch, by construction.
//
// StepBlock executes the cached run in one tight loop and is semantically
// exactly  "call Step up to max times":  same per-instruction L1I timing,
// same scoreboard stalls, same events in the same order — it only batches
// the Instret and same-line L1I hit counters (flushed before returning)
// and lets the orchestrator dispatch the accumulated events once per call
// instead of once per instruction. Blocks are built at every entry PC, so
// a branch into the middle of a cached run simply builds (or hits) the
// suffix block starting there; no per-hart resume state exists.
//
// Terminators execute through the plain Step path: a blockEntry whose
// first instruction terminates caches an empty run (n == 0), and
// StepBlock falls back to a single Step for it.
type blockEntry struct {
	pc    uint64
	code  []blockInstr
	valid bool
}

// blockInstr is one pre-decoded instruction of a superblock. The usage
// masks are refreshed in place when LMUL changed since they were computed
// (a vsetvl terminates every block, so LMUL is constant *within* a block,
// but a cached block can be re-entered under a different LMUL).
type blockInstr struct {
	in    riscv.Instr
	use   riscv.RegUse
	lmul  uint8
	isVec bool
	fast  uint8 // fastNone or the functional-loop inline class, see fastClass
}

// Inline classes for StepBlockFunctional: the handful of opcodes that
// dominate scalar HPC kernels execute directly in the functional loop,
// skipping execute's two-level dispatch. Every inline body must mirror
// execute's semantics exactly (x0 guard, sign extension, warm-gated
// memory side effects); everything else takes fastNone through execute.
const (
	fastNone uint8 = iota
	fastADDI
	fastADD
	fastLD
	fastSD
	fastFLD
	fastFSD
	fastFMADDD
	fastFADDD
	fastFMULD
	fastBEQ
	fastBNE
	fastBLT
	fastBGE
	fastBLTU
	fastBGEU
)

// fastClass assigns a blockInstr its functional-loop inline class. Cold
// path: runs once per instruction per block build.
func fastClass(op riscv.Op) uint8 {
	switch op {
	case riscv.OpADDI:
		return fastADDI
	case riscv.OpADD:
		return fastADD
	case riscv.OpLD:
		return fastLD
	case riscv.OpSD:
		return fastSD
	case riscv.OpFLD:
		return fastFLD
	case riscv.OpFSD:
		return fastFSD
	case riscv.OpFMADDD:
		return fastFMADDD
	case riscv.OpFADDD:
		return fastFADDD
	case riscv.OpFMULD:
		return fastFMULD
	case riscv.OpBEQ:
		return fastBEQ
	case riscv.OpBNE:
		return fastBNE
	case riscv.OpBLT:
		return fastBLT
	case riscv.OpBGE:
		return fastBGE
	case riscv.OpBLTU:
		return fastBLTU
	case riscv.OpBGEU:
		return fastBGEU
	}
	return fastNone
}

const blockCacheSize = 512 // direct-mapped, same indexing as stepCache

// blockTerminates reports whether op must not be folded into a superblock
// at all. Branches are not listed: they terminate a block by being folded
// in as its final instruction (see buildBlock).
func blockTerminates(op riscv.Op) bool {
	return op.Classify()&(riscv.ClassSystem|riscv.ClassAtomic) != 0
}

// fetchRead32 reads an instruction word for decode. Unlike memRead32 it
// never logs a speculative read: text is immutable during a run (stores
// into live decoded code are a sanitizer error, see sanCheckCodeWrite),
// so validating fetched words would be pure overhead. Under armed
// speculation the read must still go through the private view — the
// shared Memory accessors mutate their lookaside and allocate pages,
// which would race with other workers.
func (h *Hart) fetchRead32(a uint64) uint32 {
	if h.spec.active {
		return h.spec.view.Read32(a)
	}
	return h.Mem.Read32(a)
}

// buildBlock (re)fills e with the superblock starting at h.PC. Decode
// errors and terminators simply end the run; a run of length zero routes
// the PC to the single-step path. Building is cold (once per entry PC per
// generation) and reuses the entry's slice capacity, so the steady state
// allocates nothing.
//
//coyote:specwrite-ok fills the block-cache entry under construction; decode state is a pure function of program memory, exempted at its Hart field declarations
func (h *Hart) buildBlock(e *blockEntry) {
	e.pc = h.PC
	e.code = e.code[:0]
	e.valid = true
	pc := h.PC
	for len(e.code) < h.blockMax {
		in, err := riscv.Decode(h.fetchRead32(pc))
		if err != nil || blockTerminates(in.Op) {
			break
		}
		lmul := uint(1)
		isVec := in.Op.IsVector()
		if isVec {
			lmul = h.VType.LMUL
		}
		e.code = append(e.code, blockInstr{ //coyote:alloc-ok cold build path; the entry's backing array is reused on rebuild, growing at most to BlockMaxLen once
			in: in, use: riscv.RegUsage(in, lmul), lmul: uint8(lmul), isVec: isVec,
			fast: fastClass(in.Op),
		})
		pc += 4
		if in.Op.Classify()&riscv.ClassBranch != 0 {
			break // a branch is always a block's last instruction
		}
	}
	if san.Enabled && len(e.code) > 0 {
		h.noteCodeRange(e.pc, pc)
	}
}

// StepBlock attempts to execute up to max instructions at cycle now,
// using the superblock cache for straight-line runs. It is semantically
// identical to calling Step(now) up to max times: it returns the number
// of instructions retired and the last StepResult (StepExecuted when the
// run ended at a block boundary or the max was reached with every
// instruction retired). Produced memory events accumulate in h.Events in
// program order exactly as under Step; the caller drains them after the
// call instead of after every instruction.
//
//coyote:allocfree
func (h *Hart) StepBlock(now uint64, max int) (int, StepResult) {
	if h.Halted {
		return 0, StepHalted
	}
	if h.fetchPending {
		h.Stats.StallsFetch++
		return 0, StepStalledFetch
	}
	if now < h.busyUntil {
		h.Stats.BusyCycles++
		return 0, StepBusy
	}
	if h.blockOff || max <= 0 {
		if res := h.Step(now); res != StepExecuted {
			return 0, res
		}
		return 1, StepExecuted
	}

	// The tight loop. Per instruction it performs exactly the work Step
	// performs, in the same order — fetch timing, scoreboard, speculative
	// save, execute, retire bookkeeping — with two counters batched in
	// locals: Instret (== retired) and the same-line L1I hit count. Both
	// are flushed at the single exit point below, before any caller can
	// observe Stats, so snapshots and rollbacks stay consistent.
	//
	// The chain loop follows block boundaries for as long as the quantum
	// has budget: when a block's trailing branch redirects to another
	// cached block, execution continues there within the same call. The
	// per-call entry checks and counter flushes amortize across the whole
	// quantum, and the orchestrator dispatches events once per quantum —
	// every request still reaches the uncore at the same cycle in the
	// same order.
	spec := h.spec.active
	retired := 0
	hits := uint64(0)
	res := StepExecuted
	lineBytes := uint64(h.L1I.LineBytes())
chain:
	for {
		e := &h.blockCache[h.PC>>2&(blockCacheSize-1)]
		if !e.valid || e.pc != h.PC {
			h.buildBlock(e)
		}
		n := len(e.code)
		if n == 0 {
			// First instruction is a terminator (or undecodable): the
			// architectural single-step path owns system instructions,
			// atomics and faults. Mid-chain, return what has retired; the
			// orchestrator's quantum loop re-enters and lands here again.
			if retired > 0 {
				break chain
			}
			if res := h.Step(now); res != StepExecuted {
				return 0, res
			}
			return 1, StepExecuted
		}
		if n > max-retired {
			n = max - retired
		}
		pc := h.PC
		code := e.code
	loop:
		for k := 0; k < n; {
			// Fetch timing through L1I, hoisted to line granularity: all the
			// instructions of this block that share pc's I-line form one
			// segment, checked against the last-fetched line once. The inner
			// loop then counts one same-line hit per *attempted* instruction
			// (exactly Step's per-fetch accounting — an instruction that
			// RAW-stalls has still fetched); when the segment's line came
			// through a real Access, that call already counted the first
			// instruction's hit, so the batched counter is pre-decremented.
			line := h.L1I.LineAddr(pc)
			seg := int((line + lineBytes - pc) >> 2)
			if seg > n-k {
				seg = n - k
			}
			if h.lastFetchValid && line == h.lastFetchLine {
				// whole segment fetches from the resident line
			} else if r := h.L1I.Access(pc, false); r.Hit {
				h.lastFetchLine = line
				h.lastFetchValid = true
				hits--
			} else {
				h.lastFetchValid = false
				h.Stats.FetchMisses++
				h.fetchPending = true
				h.emit(MemEvent{Addr: line, Fetch: true})
				h.Stats.StallsFetch++
				res = StepStalledFetch
				break
			}
			segEnd := k + seg
			_ = code[segEnd-1] // hoist the bounds check out of the segment loop
			for ; k < segEnd; k++ {
				bi := &code[k]
				hits++

				if bi.isVec && uint(bi.lmul) != h.VType.LMUL {
					bi.lmul = uint8(h.VType.LMUL)
					bi.use = riscv.RegUsage(bi.in, h.VType.LMUL)
				}
				use := &bi.use

				// Scoreboard: stall on any pending source or destination.
				if (use.ReadsX|use.WritesX)&h.pending[RegX] != 0 ||
					(use.ReadsF|use.WritesF)&h.pending[RegF] != 0 ||
					(use.ReadsV|use.WritesV)&h.pending[RegV] != 0 {
					h.Stats.StallsRAW++
					res = StepStalledRAW
					break loop
				}

				// Superblocks never contain atomics or ecall, so the write masks
				// are the complete speculative-save footprint.
				if spec {
					if use.WritesX != 0 {
						h.specSaveX(use.WritesX)
					}
					if use.WritesF != 0 {
						h.specSaveF(use.WritesF)
					}
					if use.WritesV != 0 {
						h.specSaveV(use.WritesV)
					}
				}

				h.PC = pc // execute reads h.PC (auipc, branch targets, fault reports)
				nextPC := pc + 4
				res = h.execute(bi.in, &nextPC, now)
				if res != StepExecuted {
					break loop // fault: execute already halted the hart
				}
				// pc+4 for every instruction but a trailing branch, whose redirect
				// (or fall-through) execute wrote into nextPC; a branch is always
				// the block's last element, so the loop exits right after.
				pc = nextPC
				h.PC = pc
				retired++
				if bi.isVec {
					h.Stats.VectorOps++
					if occ := h.vectorOccupancy(bi.in); occ > 1 {
						h.busyUntil = now + occ
						if k+1 < n { //coyote:mut-survivor equivalent: at k+1 == n the block ends and the next StepBlock entry performs the same deferred busy accounting
							// Step would report StepBusy for the next attempt of
							// this quantum; at the block's end the next StepBlock
							// entry check does the same accounting instead.
							h.Stats.BusyCycles++
							res = StepBusy
							break loop
						}
					}
				}
			}
		}
		// Chain into the next block only while the quantum has budget and
		// the hart can actually take another instruction this cycle: a
		// trailing vector op may have set busyUntil, which pre-chaining the
		// next StepBlock *entry* check would catch — mid-chain we must stop
		// here and let the orchestrator's re-entry do that accounting.
		if res != StepExecuted || retired == max || now < h.busyUntil {
			break chain
		}
	}
	h.Stats.Instret += uint64(retired)
	h.L1I.Stats.Hits += hits
	return retired, res
}

// StepBlockFunctional is StepBlock's functional-mode twin: up to max
// instructions execute with the same ISA-exact semantics through the
// same cached superblocks, but with SetWarmSink armed every cache miss
// completes immediately — so the stall machinery is provably inert and
// the loop drops it. Specifically:
//
//   - no scoreboard check: with synchronous completion the pending
//     masks stay empty (the MCPU gather path can mark a register
//     pending mid-quantum, but the data was already written at issue —
//     the mask is timing theater the orchestrator's functional
//     dispatcher clears after the call);
//   - no speculative saves: functional regions never run under the
//     parallel orchestrator's speculation;
//   - fetch misses warm the hierarchy and fetch on (no StallsFetch);
//   - no vector-occupancy busy windows: functional time is per-hart
//     and meaningless, so multi-cycle occupancy neither stalls the loop
//     nor accumulates BusyCycles.
//
// The loop therefore only exits at terminators, faults, the halt or
// quantum exhaustion — a cache miss no longer costs a quantum round
// trip through the orchestrator.
func (h *Hart) StepBlockFunctional(now uint64, max int) (int, StepResult) {
	if h.Halted {
		return 0, StepHalted
	}
	if h.warmLine == nil {
		// No warm sink armed: the inline fast-op bodies below assume the
		// warm-gated memory paths; fall back to fully timed stepping.
		return h.StepBlock(now, max)
	}
	if h.blockOff || max <= 0 {
		// Step still honours busyUntil; functional callers pass a clock
		// at or past it.
		if res := h.Step(now); res != StepExecuted {
			return 0, res
		}
		return 1, StepExecuted
	}
	retired := 0
	hits := uint64(0)
	res := StepExecuted
	lineBytes := uint64(h.L1I.LineBytes())
chain:
	for {
		e := &h.blockCache[h.PC>>2&(blockCacheSize-1)]
		if !e.valid || e.pc != h.PC {
			h.buildBlock(e)
		}
		n := len(e.code)
		if n == 0 {
			// Terminator: the architectural single-step path owns system
			// instructions, atomics and faults (its miss paths are warm-
			// sink gated too).
			if retired > 0 {
				break chain
			}
			if res := h.Step(now); res != StepExecuted {
				return 0, res
			}
			return 1, StepExecuted
		}
		if n > max-retired {
			n = max - retired
		}
		pc := h.PC
		code := e.code
		for k := 0; k < n; {
			line := h.L1I.LineAddr(pc)
			seg := int((line + lineBytes - pc) >> 2)
			if seg > n-k {
				seg = n - k
			}
			if h.lastFetchValid && line == h.lastFetchLine {
				// whole segment fetches from the resident line
			} else {
				if r := h.L1I.WarmAccess(pc, false); r.Hit {
					hits--
				} else {
					// The first instruction of the segment fetched through the
					// miss, not a same-line hit: cancel its upcoming hits++,
					// matching the gated Step path (one miss, no hit).
					h.Stats.FetchMisses++
					h.warmLine(line, false)
					hits--
				}
				h.lastFetchLine = line
				h.lastFetchValid = true
			}
			segEnd := k + seg
			_ = code[segEnd-1]
			for ; k < segEnd; k++ {
				bi := &code[k]
				hits++
				// Inline bodies mirror execute exactly; memory fast ops go
				// straight to the warm-gated helpers the execute path would
				// reach through scalarLoad/StoreAccess.
				switch in := &bi.in; bi.fast {
				case fastADDI:
					if in.Rd != 0 {
						h.X[in.Rd] = h.X[in.Rs1] + uint64(in.Imm)
					}
					pc += 4
				case fastADD:
					if in.Rd != 0 {
						h.X[in.Rd] = h.X[in.Rs1] + h.X[in.Rs2]
					}
					pc += 4
				case fastLD:
					a := h.X[in.Rs1] + uint64(in.Imm)
					if in.Rd != 0 {
						h.X[in.Rd] = h.memRead64(a)
					}
					h.warmDataAccess(a, false)
					pc += 4
				case fastSD:
					a := h.X[in.Rs1] + uint64(in.Imm)
					h.memWrite64(a, h.X[in.Rs2])
					h.warmDataAccess(a, true)
					h.storeInvalidate(a)
					pc += 4
				case fastFLD:
					a := h.X[in.Rs1] + uint64(in.Imm)
					h.F[in.Rd] = h.memRead64(a)
					h.warmDataAccess(a, false)
					pc += 4
				case fastFSD:
					a := h.X[in.Rs1] + uint64(in.Imm)
					h.memWrite64(a, h.F[in.Rs2])
					h.warmDataAccess(a, true)
					h.storeInvalidate(a)
					pc += 4
				case fastFMADDD:
					h.setF64(in.Rd, math.FMA(h.getF64(in.Rs1), h.getF64(in.Rs2), h.getF64(in.Rs3)))
					pc += 4
				case fastFADDD:
					h.setF64(in.Rd, h.getF64(in.Rs1)+h.getF64(in.Rs2))
					pc += 4
				case fastFMULD:
					h.setF64(in.Rd, h.getF64(in.Rs1)*h.getF64(in.Rs2))
					pc += 4
				case fastBEQ:
					if h.X[in.Rs1] == h.X[in.Rs2] {
						pc += uint64(in.Imm)
					} else {
						pc += 4
					}
				case fastBNE:
					if h.X[in.Rs1] != h.X[in.Rs2] {
						pc += uint64(in.Imm)
					} else {
						pc += 4
					}
				case fastBLT:
					if int64(h.X[in.Rs1]) < int64(h.X[in.Rs2]) {
						pc += uint64(in.Imm)
					} else {
						pc += 4
					}
				case fastBGE:
					if int64(h.X[in.Rs1]) >= int64(h.X[in.Rs2]) {
						pc += uint64(in.Imm)
					} else {
						pc += 4
					}
				case fastBLTU:
					if h.X[in.Rs1] < h.X[in.Rs2] {
						pc += uint64(in.Imm)
					} else {
						pc += 4
					}
				case fastBGEU:
					if h.X[in.Rs1] >= h.X[in.Rs2] {
						pc += uint64(in.Imm)
					} else {
						pc += 4
					}
				default:
					if bi.isVec && uint(bi.lmul) != h.VType.LMUL {
						bi.lmul = uint8(h.VType.LMUL)
						bi.use = riscv.RegUsage(bi.in, h.VType.LMUL)
					}
					h.PC = pc
					nextPC := pc + 4
					res = h.execute(bi.in, &nextPC, now)
					if res != StepExecuted {
						break chain // fault: execute already halted the hart
					}
					pc = nextPC
					if bi.isVec {
						h.Stats.VectorOps++
					}
				}
				retired++
			}
			h.PC = pc
		}
		if retired == max {
			break chain
		}
	}
	h.Stats.Instret += uint64(retired)
	h.L1I.Stats.Hits += hits
	return retired, res
}

// noteCodeRange extends the live-decoded-code watermark (san builds only).
func (h *Hart) noteCodeRange(lo, hi uint64) {
	if lo < h.codeLo {
		h.codeLo = lo
	}
	if hi > h.codeHi {
		h.codeHi = hi
	}
}

// sanCheckCodeWrite panics (via san.Check) when an architectural store
// lands inside a live decoded superblock or step-cache entry: the caches
// would keep executing the stale pre-decoded code. Bare-metal kernels
// never store to text, so the cheap watermark test short-circuits the
// precise scan. Only called under san.Enabled, from the non-speculative
// store path and from CommitSpec (an aborted speculative store never
// architecturally happens). The check covers the storing hart's own
// caches; cross-hart code patching would additionally need fence.i on
// every hart, which this model does not support.
func (h *Hart) sanCheckCodeWrite(a uint64, size uint8) {
	hi := a + uint64(size)
	if a >= h.codeHi || hi <= h.codeLo {
		return
	}
	for i := range h.blockCache {
		e := &h.blockCache[i]
		if e.valid && a < e.pc+uint64(4*len(e.code)) && hi > e.pc {
			san.Check(false, h.sanNow(), "cpu.selfmod",
				"store overlaps a live decoded superblock (missing fence.i?)",
				uint64(h.ID), a)
		}
	}
	for i := range h.stepCache {
		e := &h.stepCache[i]
		if e.valid && a < e.pc+4 && hi > e.pc {
			san.Check(false, h.sanNow(), "cpu.selfmod",
				"store overlaps a live decoded instruction (missing fence.i?)",
				uint64(h.ID), a)
		}
	}
}
