package cpu

// Directed ISA tests in the style of riscv-tests: each case is an
// assembly fragment (assembled by internal/asm, so the full
// encode→decode→execute path is exercised) with expected register and/or
// memory values at exit. The fragments run on a single hart with
// zero-latency miss servicing.

import (
	"math"
	"testing"

	"github.com/coyote-sim/coyote/internal/asm"
	"github.com/coyote-sim/coyote/internal/mem"
	"github.com/coyote-sim/coyote/internal/riscv"
)

type isaCase struct {
	name string
	src  string            // body; a trailing ebreak is appended
	x    map[uint8]uint64  // expected integer registers
	f    map[uint8]float64 // expected FP registers (as doubles)
	mem  map[uint64]uint64 // expected 64-bit memory words
}

func runISACase(t *testing.T, c isaCase) {
	t.Helper()
	prog, err := asm.Assemble("_start:\n" + c.src + "\n\tebreak\n.data\nscratch: .zero 256\n")
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := mem.New()
	h, err := NewHart(0, DefaultConfig(), m, nil)
	if err != nil {
		t.Fatal(err)
	}
	prog.LoadInto(m)
	h.PC = prog.Entry
	for i := 0; i < 100000; i++ {
		res := h.Step(uint64(i))
		for _, ev := range h.DrainEvents() {
			if ev.Fetch {
				h.CompleteFetch()
			} else if ev.HasDest {
				h.CompleteFill(ev.Dest, ev.DestReg)
			}
		}
		if res == StepFault {
			t.Fatalf("fault: %v", h.Fault)
		}
		if h.Halted {
			break
		}
	}
	if !h.Halted {
		t.Fatalf("did not halt (pc=%#x)", h.PC)
	}
	for r, want := range c.x {
		if got := h.X[r]; got != want {
			t.Errorf("%s = %#x (%d), want %#x (%d)",
				riscv.XRegName(r), got, int64(got), want, int64(want))
		}
	}
	for r, want := range c.f {
		got := h.getF64(r)
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Errorf("%s = %v, want %v", riscv.FRegName(r), got, want)
		}
	}
	for addr, want := range c.mem {
		base := prog.Symbols["scratch"]
		if got := m.Read64(base + addr); got != want {
			t.Errorf("scratch[%d] = %#x, want %#x", addr, got, want)
		}
	}
}

func u(v int64) uint64 { return uint64(v) }

var isaCases = []isaCase{
	// ----- immediates and LUI/AUIPC -----
	{name: "lui", src: "lui a0, 0xfffff", x: map[uint8]uint64{10: u(-4096)}},
	{name: "lui_pos", src: "lui a0, 1", x: map[uint8]uint64{10: 0x1000}},
	{name: "addi_chain", src: "addi a0, zero, 100\naddi a0, a0, -300",
		x: map[uint8]uint64{10: u(-200)}},
	{name: "slti", src: "li a1, -5\nslti a0, a1, -4\nslti a2, a1, -6",
		x: map[uint8]uint64{10: 1, 12: 0}},
	{name: "sltiu_minus1", src: "li a1, 5\nsltiu a0, a1, -1",
		x: map[uint8]uint64{10: 1}}, // -1 is max unsigned
	{name: "logic_imm", src: "li a1, 0xff\nxori a0, a1, 0x0f\nori a2, a1, 0x700\nandi a3, a1, 0x3c",
		x: map[uint8]uint64{10: 0xf0, 12: 0x7ff, 13: 0x3c}},

	// ----- shifts -----
	{name: "sll_srl_sra", src: `
		li a1, -16
		slli a0, a1, 2
		srli a2, a1, 60
		srai a3, a1, 2`,
		x: map[uint8]uint64{10: u(-64), 12: 15, 13: u(-4)}},
	{name: "shift_by_reg_mod64", src: "li a1, 1\nli a2, 65\nsll a0, a1, a2",
		x: map[uint8]uint64{10: 2}},
	{name: "w_shifts", src: `
		li a1, 0x80000000
		srliw a0, a1, 4
		sraiw a2, a1, 4
		slliw a3, a1, 1`,
		x: map[uint8]uint64{10: 0x08000000, 12: u(-0x8000000), 13: 0}},

	// ----- comparisons and branches -----
	{name: "slt_family", src: `
		li a1, -1
		li a2, 1
		slt a0, a1, a2
		sltu a3, a1, a2
		slt a4, a2, a1`,
		x: map[uint8]uint64{10: 1, 13: 0, 14: 0}},
	{name: "branch_taken_matrix", src: `
		li a0, 0
		li a1, -2
		li a2, 3
		blt a1, a2, L1
		li a0, 99
	L1:	bltu a2, a1, L2
		addi a0, a0, 1
	L2:	bge a2, a1, L3
		li a0, 99
	L3:	bgeu a1, a2, L4
		li a0, 99
	L4:	addi a0, a0, 10`,
		// bltu sees -2 as a huge unsigned value, so the +1 is skipped.
		x: map[uint8]uint64{10: 10}},
	{name: "beq_bne", src: `
		li a0, 0
		li a1, 7
		li a2, 7
		beq a1, a2, L1
		li a0, 99
	L1:	bne a1, a2, L2
		addi a0, a0, 1
	L2:	nop`,
		x: map[uint8]uint64{10: 1}},

	// ----- loads/stores all widths & sign extension -----
	{name: "store_load_widths", src: `
		la a0, scratch
		li a1, -2
		sd a1, 0(a0)
		lb a2, 0(a0)
		lbu a3, 0(a0)
		lh a4, 0(a0)
		lhu a5, 0(a0)
		lw a6, 0(a0)
		lwu a7, 0(a0)
		ld s2, 0(a0)`,
		x: map[uint8]uint64{12: u(-2), 13: 0xfe, 14: u(-2), 15: 0xfffe,
			16: u(-2), 17: 0xfffffffe, 18: u(-2)}},
	{name: "store_byte_merge", src: `
		la a0, scratch
		li a1, 0x11
		li a2, 0x22
		sb a1, 0(a0)
		sb a2, 1(a0)
		lhu a3, 0(a0)`,
		x:   map[uint8]uint64{13: 0x2211},
		mem: map[uint64]uint64{0: 0x2211}},
	{name: "sw_negative_offset", src: `
		la a0, scratch
		addi a0, a0, 16
		li a1, 42
		sw a1, -8(a0)`,
		mem: map[uint64]uint64{8: 42}},

	// ----- jumps -----
	{name: "jalr_function_call", src: `
		la a1, func
		jalr ra, 0(a1)
		addi a0, a0, 1
		beqz zero, end
	func:
		li a0, 41
		ret
	end:`,
		x: map[uint8]uint64{10: 42}},
	{name: "jal_offset", src: `
		li a0, 1
		j skip
		li a0, 99
	skip:`,
		x: map[uint8]uint64{10: 1}},

	// ----- M extension corner cases -----
	{name: "mul_overflow_wrap", src: "li a1, 0x7fffffffffffffff\nli a2, 2\nmul a0, a1, a2",
		x: map[uint8]uint64{10: u(-2)}},
	{name: "mulh_signs", src: `
		li a1, -1
		li a2, -1
		mulh a0, a1, a2
		mulhu a3, a1, a2
		mulhsu a4, a1, a2`,
		x: map[uint8]uint64{10: 0, 13: u(-2), 14: u(-1)}},
	{name: "div_overflow", src: `
		li a1, -0x8000000000000000
		li a2, -1
		div a0, a1, a2
		rem a3, a1, a2`,
		x: map[uint8]uint64{10: 1 << 63, 13: 0}},
	{name: "divw_remw", src: `
		li a1, -7
		li a2, 2
		divw a0, a1, a2
		remw a3, a1, a2
		divuw a4, a1, a2`,
		x: map[uint8]uint64{10: u(-3), 13: u(-1), 14: 0x7ffffffc}},
	{name: "mulw_truncates", src: "li a1, 0x100000001\nli a2, 3\nmulw a0, a1, a2",
		x: map[uint8]uint64{10: 3}},

	// ----- A extension -----
	{name: "amoswap", src: `
		la a0, scratch
		li a1, 7
		sd a1, 0(a0)
		li a2, 9
		amoswap.d a3, a2, (a0)`,
		x:   map[uint8]uint64{13: 7},
		mem: map[uint64]uint64{0: 9}},
	{name: "amo_minmax", src: `
		la a0, scratch
		li a1, -5
		sd a1, 0(a0)
		li a2, 3
		amomax.d a3, a2, (a0)
		ld a4, 0(a0)
		li a5, -100
		amomin.d a6, a5, (a0)
		ld a7, 0(a0)`,
		x: map[uint8]uint64{13: u(-5), 14: 3, 16: 3, 17: u(-100)}},
	{name: "amo_unsigned_minmax", src: `
		la a0, scratch
		li a1, -1
		sd a1, 0(a0)
		li a2, 5
		amominu.d a3, a2, (a0)
		ld a4, 0(a0)`,
		x: map[uint8]uint64{13: u(-1), 14: 5}},
	{name: "amoadd_w_sext", src: `
		la a0, scratch
		li a1, 0x7fffffff
		sw a1, 0(a0)
		li a2, 1
		amoadd.w a3, a2, (a0)
		lw a4, 0(a0)`,
		x: map[uint8]uint64{13: 0x7fffffff, 14: u(-0x80000000)}},
	{name: "lr_sc_success", src: `
		la a0, scratch
		li a1, 5
		sd a1, 0(a0)
		lr.d a2, (a0)
		li a3, 6
		sc.d a4, a3, (a0)
		ld a5, 0(a0)`,
		x: map[uint8]uint64{12: 5, 14: 0, 15: 6}},

	// ----- F/D arithmetic, conversions, compares, classification -----
	{name: "fp_basic", src: `
		li a1, 3
		fcvt.d.l fa0, a1
		li a2, 4
		fcvt.d.l fa1, a2
		fadd.d fa2, fa0, fa1
		fmul.d fa3, fa0, fa1
		fdiv.d fa4, fa1, fa0
		fsub.d fa5, fa0, fa1`,
		f: map[uint8]float64{12: 7, 13: 12, 15: -1}},
	{name: "fp_sqrt", src: "li a1, 16\nfcvt.d.lu fa0, a1\nfsqrt.d fa1, fa0",
		f: map[uint8]float64{11: 4}},
	{name: "fp_minmax", src: `
		li a1, -3
		fcvt.d.l fa0, a1
		li a2, 2
		fcvt.d.l fa1, a2
		fmin.d fa2, fa0, fa1
		fmax.d fa3, fa0, fa1`,
		f: map[uint8]float64{12: -3, 13: 2}},
	{name: "fp_compare", src: `
		li a1, 1
		fcvt.d.l fa0, a1
		li a2, 2
		fcvt.d.l fa1, a2
		flt.d a0, fa0, fa1
		fle.d a3, fa1, fa1
		feq.d a4, fa0, fa1`,
		x: map[uint8]uint64{10: 1, 13: 1, 14: 0}},
	{name: "fp_sgnj", src: `
		li a1, 3
		fcvt.d.l fa0, a1
		fneg.d fa1, fa0
		fabs.d fa2, fa1
		li a2, -1
		fcvt.d.l fa3, a2
		fsgnj.d fa4, fa0, fa3`,
		f: map[uint8]float64{11: -3, 12: 3, 14: -3}},
	{name: "fp_cvt_truncates_toward_zero", src: `
		la a0, scratch
		li a1, 7
		fcvt.d.l fa0, a1
		li a2, 2
		fcvt.d.l fa1, a2
		fdiv.d fa2, fa0, fa1
		fcvt.l.d a3, fa2
		fneg.d fa3, fa2
		fcvt.l.d a4, fa3`,
		x: map[uint8]uint64{13: 3, 14: u(-3)}},
	{name: "fmv_bits", src: `
		li a1, 0x4010000000000000
		fmv.d.x fa0, a1
		fmv.x.d a2, fa0`,
		x: map[uint8]uint64{12: 0x4010000000000000},
		f: map[uint8]float64{10: 4.0}},
	{name: "fclass", src: `
		li a1, 1
		fcvt.d.l fa0, a1
		fclass.d a0, fa0
		fneg.d fa1, fa0
		fclass.d a2, fa1
		fmv.d.x fa2, zero
		fclass.d a3, fa2`,
		x: map[uint8]uint64{10: 1 << 6, 12: 1 << 1, 13: 1 << 4}},
	{name: "fmadd_family", src: `
		li a1, 2
		fcvt.d.l fa0, a1
		li a2, 3
		fcvt.d.l fa1, a2
		li a3, 10
		fcvt.d.l fa2, a3
		fmadd.d fa3, fa0, fa1, fa2
		fmsub.d fa4, fa0, fa1, fa2
		fnmsub.d fa5, fa0, fa1, fa2
		fnmadd.d fa6, fa0, fa1, fa2`,
		f: map[uint8]float64{13: 16, 14: -4, 15: 4, 16: -16}},
	{name: "fp_single", src: `
		li a1, 3
		fcvt.s.l fa0, a1
		li a2, 4
		fcvt.s.l fa1, a2
		fmul.s fa2, fa0, fa1
		fcvt.d.s fa3, fa2
		fcvt.w.s a3, fa2`,
		x: map[uint8]uint64{13: 12},
		f: map[uint8]float64{13: 12}},
	{name: "fp_load_store", src: `
		la a0, scratch
		li a1, 5
		fcvt.d.l fa0, a1
		fsd fa0, 0(a0)
		fld fa1, 0(a0)
		fcvt.s.d fa2, fa1
		fsw fa2, 8(a0)
		flw fa3, 8(a0)
		fcvt.d.s fa4, fa3`,
		f: map[uint8]float64{11: 5, 14: 5}},

	// ----- CSRs -----
	{name: "csr_swap_set_clear", src: `
		li a1, 0xff
		csrrw zero, 0x340, a1
		li a2, 0x0f
		csrrc a3, 0x340, a2
		csrr a4, 0x340
		li a5, 0x100
		csrrs a6, 0x340, a5
		csrr a7, 0x340`,
		x: map[uint8]uint64{13: 0xff, 14: 0xf0, 16: 0xf0, 17: 0x1f0}},
	{name: "csr_imm_forms", src: `
		csrrwi zero, 0x340, 21
		csrrsi a0, 0x340, 8
		csrrci a1, 0x340, 1
		csrr a2, 0x340`,
		x: map[uint8]uint64{10: 21, 11: 29, 12: 28}},

	// ----- vector extras -----
	{name: "vector_logic_shift", src: `
		li a1, 4
		vsetvli t0, a1, e64, m1, ta, ma
		li a2, 0b1100
		vmv.v.x v1, a2
		vand.vi v2, v1, 0b0110? # placeholder replaced below
		`,
		x: map[uint8]uint64{}},
}

func TestISADirected(t *testing.T) {
	for _, c := range isaCases {
		if c.name == "vector_logic_shift" {
			continue // replaced by TestVectorLogicDirected
		}
		c := c
		t.Run(c.name, func(t *testing.T) { runISACase(t, c) })
	}
}

func TestVectorLogicDirected(t *testing.T) {
	runISACase(t, isaCase{
		name: "vector_logic",
		src: `
		li a1, 4
		vsetvli t0, a1, e64, m1, ta, ma
		li a2, 12
		vmv.v.x v1, a2
		vand.vi v2, v1, 6
		vor.vi  v3, v1, 1
		vxor.vi v4, v1, 15
		vsll.vi v5, v1, 2
		vsrl.vi v6, v1, 1
		vmv.x.s a0, v2
		vmv.x.s a3, v3
		vmv.x.s a4, v4
		vmv.x.s a5, v5
		vmv.x.s a6, v6`,
		x: map[uint8]uint64{10: 4, 13: 13, 14: 3, 15: 48, 16: 6},
	})
	runISACase(t, isaCase{
		name: "vector_minmax_slide",
		src: `
		li a1, 4
		vsetvli t0, a1, e64, m1, ta, ma
		vid.v v1
		li a2, 2
		vmax.vx v2, v1, a2
		vmin.vx v3, v1, a2
		vslide1down.vx v4, v1, a2
		vmv.x.s a0, v2
		vmv.x.s a3, v3
		vmv.x.s a4, v4`,
		x: map[uint8]uint64{10: 2, 13: 0, 14: 1},
	})
	runISACase(t, isaCase{
		name: "vector_int_mul_macc",
		src: `
		li a1, 4
		vsetvli t0, a1, e64, m1, ta, ma
		vid.v v1
		li a2, 3
		vmul.vx v2, v1, a2
		vmv.v.i v3, 1
		vmacc.vv v3, v1, v2
		vmv.x.s a0, v2
		vredsum.vs v4, v3, v3
		vmv.x.s a3, v4`,
		// v2 = 0,3,6,9; v3 = 1 + i*3i = 1,4,13,28; redsum+v3[0] = 46+1 = 47
		x: map[uint8]uint64{10: 0, 13: 47},
	})
}
