package core

import (
	"fmt"
	"time"

	"github.com/coyote-sim/coyote/internal/asm"
	"github.com/coyote-sim/coyote/internal/cpu"
	"github.com/coyote-sim/coyote/internal/evsim"
	"github.com/coyote-sim/coyote/internal/mem"
	"github.com/coyote-sim/coyote/internal/uncore"
)

// TraceKind classifies trace events emitted by the orchestrator.
type TraceKind int

const (
	// TraceL1DMiss is a data-cache miss leaving a core.
	TraceL1DMiss TraceKind = iota
	// TraceL1IMiss is an instruction-fetch miss.
	TraceL1IMiss
	// TraceStallRAW marks a core going inactive on a dependency.
	TraceStallRAW
	// TraceWakeup marks a core reactivating after a fill.
	TraceWakeup
)

// Tracer receives simulation events; the Paraver writer in internal/trace
// implements it. Implementations must be cheap: they run inside the
// simulation loop.
type Tracer interface {
	Event(cycle uint64, hart int, kind TraceKind, addr uint64)
}

// System is one simulated machine instance.
type System struct {
	cfg    Config
	Mem    *mem.Memory
	Harts  []*cpu.Hart
	Eng    *evsim.Engine
	Uncore *uncore.Uncore

	cycle  uint64
	active []bool
	halted []bool
	nDone  int

	// stall bookkeeping: when a core parks, remember why and since when
	// so the wake-up can credit the full stalled duration to its stats.
	stallSince []uint64
	stallFetch []bool

	Tracer Tracer

	prog *asm.Program
}

// New builds a system from cfg.
func New(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &System{
		cfg:        cfg,
		Mem:        mem.New(),
		Eng:        evsim.NewEngine(),
		active:     make([]bool, cfg.Cores),
		halted:     make([]bool, cfg.Cores),
		stallSince: make([]uint64, cfg.Cores),
		stallFetch: make([]bool, cfg.Cores),
	}
	un, err := uncore.New(cfg.Uncore, s.Eng)
	if err != nil {
		return nil, err
	}
	s.Uncore = un
	resv := cpu.NewReservations(cfg.Cores)
	for i := 0; i < cfg.Cores; i++ {
		h, err := cpu.NewHart(i, cfg.Hart, s.Mem, resv)
		if err != nil {
			return nil, err
		}
		h.CycleFn = func() uint64 { return s.cycle }
		s.Harts = append(s.Harts, h)
		s.active[i] = true
	}
	return s, nil
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// Cycle returns the current simulated cycle.
func (s *System) Cycle() uint64 { return s.cycle }

// LoadProgram installs an assembled image and resets every hart to its
// entry point with a private stack. All harts run the same binary and
// differentiate via the mhartid CSR, exactly like Spike's bare-metal
// multicore mode.
func (s *System) LoadProgram(p *asm.Program) {
	p.LoadInto(s.Mem)
	s.prog = p
	for i, h := range s.Harts {
		h.PC = p.Entry
		h.X[2] = s.cfg.StackTop - uint64(i)*s.cfg.StackSize // sp
		h.FlushDecodeCache()                                // text may overwrite a previous image
	}
}

// Symbol resolves a program symbol; it panics if no program is loaded.
func (s *System) Symbol(name string) (uint64, bool) {
	v, ok := s.prog.Symbols[name]
	return v, ok
}

// MustSymbol resolves a symbol or panics — for harness code where the
// symbol is statically known to exist.
func (s *System) MustSymbol(name string) uint64 {
	v, ok := s.Symbol(name)
	if !ok {
		panic(fmt.Sprintf("core: no symbol %q in loaded program", name))
	}
	return v
}

// tileOf maps a hart to its tile.
func (s *System) tileOf(hart int) int { return hart / s.cfg.CoresPerTile }

// dispatch drains a hart's memory events into the uncore, wiring
// completion callbacks that clear scoreboard state and reactivate the
// core. Events are consumed synchronously, so the hart's buffer is
// truncated in place and its backing array reused.
func (s *System) dispatch(h *cpu.Hart) {
	events := h.Events
	h.Events = h.Events[:0]
	for _, ev := range events {
		if ev.Gather != nil {
			// MCPU scatter/gather descriptor: one transaction for the
			// whole indexed access, straight to the memory side.
			var done func()
			if ev.HasDest {
				hart, kind, reg := ev.Hart, ev.Dest, ev.DestReg
				done = func() {
					s.Harts[hart].CompleteFill(kind, reg)
					s.wake(hart)
				}
				if s.Tracer != nil && len(ev.Gather) > 0 {
					s.Tracer.Event(s.cycle, ev.Hart, TraceL1DMiss, ev.Gather[0])
				}
			}
			s.Uncore.SubmitGather(s.tileOf(ev.Hart), ev.Gather, ev.Write, done)
			continue
		}
		req := uncore.Request{
			Tile:  s.tileOf(ev.Hart),
			Addr:  ev.Addr,
			Write: ev.Write,
		}
		switch {
		case ev.Fetch:
			hart := ev.Hart
			req.Done = func() {
				s.Harts[hart].CompleteFetch()
				s.wake(hart)
			}
			if s.Tracer != nil {
				s.Tracer.Event(s.cycle, ev.Hart, TraceL1IMiss, ev.Addr)
			}
		case ev.HasDest:
			hart, kind, reg := ev.Hart, ev.Dest, ev.DestReg
			req.Done = func() {
				s.Harts[hart].CompleteFill(kind, reg)
				s.wake(hart)
			}
			if s.Tracer != nil {
				s.Tracer.Event(s.cycle, ev.Hart, TraceL1DMiss, ev.Addr)
			}
		default:
			// Writebacks and write-allocate fetches need no completion.
			if !ev.Write && s.Tracer != nil {
				s.Tracer.Event(s.cycle, ev.Hart, TraceL1DMiss, ev.Addr)
			}
		}
		s.Uncore.Submit(req)
	}
}

func (s *System) wake(hart int) {
	if !s.active[hart] && !s.halted[hart] {
		s.active[hart] = true
		// Credit the cycles the core sat parked (its own Step already
		// counted the cycle on which it reported the stall).
		if now := s.Eng.Now(); now > s.stallSince[hart]+1 {
			s.Harts[hart].AddStallCycles(s.stallFetch[hart], now-s.stallSince[hart]-1)
		}
		if s.Tracer != nil {
			s.Tracer.Event(s.Eng.Now(), hart, TraceWakeup, 0)
		}
	}
}

// ResetStats zeroes every statistic in the system — hart counters, cache
// counters and uncore unit counters — without touching architectural or
// cache state. Call it after a warm-up region (e.g. from a custom driver
// loop) so the final Result covers only the measurement window. The cycle
// counter keeps running; Result.Cycles still reports the absolute time.
func (s *System) ResetStats() {
	for _, h := range s.Harts {
		h.Stats = cpu.Stats{}
		h.L1I.ResetStats()
		h.L1D.ResetStats()
	}
	s.Uncore.ResetStats()
}

// Run simulates until every hart halts, a fault occurs, or MaxCycles is
// reached.
func (s *System) Run() (*Result, error) {
	if s.prog == nil {
		return nil, fmt.Errorf("core: no program loaded")
	}
	start := time.Now()
	for s.nDone < len(s.Harts) {
		if s.cycle >= s.cfg.MaxCycles {
			return nil, fmt.Errorf("core: cycle limit %d reached (deadlock or runaway kernel?)",
				s.cfg.MaxCycles)
		}
		anyRunnable := false
		for i, h := range s.Harts {
			if !s.active[i] {
				continue
			}
			if h.BusyUntil() > s.cycle {
				anyRunnable = true // occupied, but will free itself
				h.Stats.BusyCycles++
				continue
			}
			for q := 0; q < s.cfg.InterleaveQuantum; q++ {
				res := h.Step(s.cycle)
				if len(h.Events) > 0 {
					s.dispatch(h)
				}
				if res == cpu.StepExecuted {
					anyRunnable = true
					continue
				}
				switch res {
				case cpu.StepFault:
					return nil, h.Fault
				case cpu.StepHalted:
					if !s.halted[i] {
						s.halted[i] = true
						s.active[i] = false
						s.nDone++
					}
				case cpu.StepStalledRAW, cpu.StepStalledFetch:
					s.active[i] = false
					s.stallSince[i] = s.cycle
					s.stallFetch[i] = res == cpu.StepStalledFetch
					if res == cpu.StepStalledRAW && s.Tracer != nil {
						s.Tracer.Event(s.cycle, i, TraceStallRAW, 0)
					}
				case cpu.StepBusy:
					anyRunnable = true
				}
				break
			}
		}

		// Advance the event-driven model to "now", servicing anything due
		// this cycle (paper: "the Orchestrator checks if Sparta has any
		// in-flight events for the current cycle").
		s.Eng.AdvanceTo(s.cycle)
		s.cycle++

		if anyRunnable {
			continue
		}
		// Completions processed by AdvanceTo above may have reactivated a
		// core after anyRunnable was computed.
		for i := range s.active {
			if s.active[i] && !s.halted[i] {
				anyRunnable = true
				break
			}
		}
		if anyRunnable {
			continue
		}
		// Every core is stalled or halted. Find the next moment anything
		// can change: the earliest pending event or vector-busy release.
		next, ok := s.Eng.NextEventTime()
		if !ok {
			next = ^uint64(0)
		}
		for i, h := range s.Harts {
			if s.active[i] && h.BusyUntil() > s.cycle && h.BusyUntil() < next {
				next = h.BusyUntil()
			}
		}
		if next == ^uint64(0) {
			if s.nDone == len(s.Harts) {
				break
			}
			return nil, fmt.Errorf(
				"core: deadlock at cycle %d: %d/%d harts halted, none runnable, no pending events",
				s.cycle, s.nDone, len(s.Harts))
		}
		if !s.cfg.FastForward {
			// Coyote mode: tick every idle cycle (this is the wall-clock
			// cost that bottlenecks low core counts in Figure 3).
			continue
		}
		// Fast-forward: jump the clock to the next event time. The loop
		// top keeps the canonical step-then-advance order, so completions
		// still wake cores for the *following* cycle, exactly as when
		// ticking cycle by cycle. Statistics count the skipped cycles.
		if next > s.cycle {
			s.cycle = next
		}
	}
	s.Eng.Drain()
	return s.collect(time.Since(start)), nil
}
