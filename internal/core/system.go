package core

import (
	"fmt"
	"math/bits"
	"time"

	"github.com/coyote-sim/coyote/internal/asm"
	"github.com/coyote-sim/coyote/internal/cpu"
	"github.com/coyote-sim/coyote/internal/evsim"
	"github.com/coyote-sim/coyote/internal/mem"
	"github.com/coyote-sim/coyote/internal/san"
	"github.com/coyote-sim/coyote/internal/uncore"
)

// TraceKind classifies trace events emitted by the orchestrator.
type TraceKind int

const (
	// TraceL1DMiss is a data-cache miss leaving a core.
	TraceL1DMiss TraceKind = iota
	// TraceL1IMiss is an instruction-fetch miss.
	TraceL1IMiss
	// TraceStallRAW marks a core going inactive on a dependency.
	TraceStallRAW
	// TraceWakeup marks a core reactivating after a fill.
	TraceWakeup
)

// Tracer receives simulation events; the Paraver writer in internal/trace
// implements it. Implementations must be cheap: they run inside the
// simulation loop.
type Tracer interface {
	Event(cycle uint64, hart int, kind TraceKind, addr uint64)
}

// doneFetch flags a fetch-miss completion in a packed Done argument. Data
// fills pack (RegKind << 8 | reg), which stays below 1<<16, so the two
// encodings cannot collide.
const doneFetch = uint64(1) << 16

// System is one simulated machine instance.
type System struct {
	cfg    Config
	Mem    *mem.Memory
	Harts  []*cpu.Hart
	Eng    *evsim.Engine
	Uncore *uncore.Uncore

	cycle uint64
	// runnable is a bitset over harts: bit set = the hart wants the step
	// loop's attention this cycle (ready to execute, or busy and counting
	// down). Parking on a stall clears the bit; a fill completion sets it.
	// Iterating set bits with TrailingZeros64 visits harts in index order,
	// exactly like the old per-hart boolean scan, so the functional memory
	// interleaving — and therefore simulated timing — is unchanged; only
	// the O(Cores) skip over parked harts disappears.
	runnable []uint64
	halted   []bool
	nDone    int

	// doneFns holds one long-lived completion callback per hart. Miss
	// completions carry a packed argument (doneFetch, or dest kind/reg)
	// instead of a fresh closure per event — see dispatch. doneH holds the
	// matching engine-registry handles so in-flight completions can be
	// named in a checkpoint.
	doneFns []func(uint64)
	doneH   []evsim.Handle

	// resv is the shared LR/SC reservation set (part of the architectural
	// state a checkpoint must carry).
	resv *cpu.Reservations

	// stall bookkeeping: when a core parks, remember why and since when
	// so the wake-up can credit the full stalled duration to its stats.
	stallSince []uint64
	stallFetch []bool

	// san tracks every completion the orchestrator hands to the uncore:
	// each issued Done must fire exactly once. Keys pack (hart << 32 |
	// packed doneFn argument), so a double delivery or a dropped fill is
	// pinned to the exact hart and destination register.
	san san.Ledger

	// par holds the parallel orchestrator's worker pool, per-cycle shard
	// bookkeeping and speculation statistics (see parallel.go). Unused
	// (zero) when cfg.Workers <= 1.
	par parState

	Tracer Tracer

	prog *asm.Program
}

// New builds a system from cfg.
func New(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &System{
		cfg:        cfg,
		Mem:        mem.New(),
		Eng:        evsim.NewEngine(),
		runnable:   make([]uint64, (cfg.Cores+63)/64),
		halted:     make([]bool, cfg.Cores),
		doneFns:    make([]func(uint64), cfg.Cores),
		doneH:      make([]evsim.Handle, cfg.Cores),
		stallSince: make([]uint64, cfg.Cores),
		stallFetch: make([]bool, cfg.Cores),
	}
	s.san.Init("core.completions")
	un, err := uncore.New(cfg.Uncore, s.Eng)
	if err != nil {
		return nil, err
	}
	s.Uncore = un
	s.resv = cpu.NewReservations(cfg.Cores)
	for i := 0; i < cfg.Cores; i++ {
		h, err := cpu.NewHart(i, cfg.Hart, s.Mem, s.resv)
		if err != nil {
			return nil, err
		}
		h.CycleFn = func() uint64 { return s.cycle }
		s.Harts = append(s.Harts, h)
		s.runnable[i/64] |= 1 << (i % 64)
		hart := i
		s.doneFns[i] = func(arg uint64) {
			s.san.Settle(s.Eng.Now(), uint64(hart)<<32|arg)
			if arg&doneFetch != 0 {
				s.Harts[hart].CompleteFetch()
			} else {
				s.Harts[hart].CompleteFill(cpu.RegKind(arg>>8), uint8(arg))
			}
			s.wake(hart)
		}
		// Registered after the uncore's handles: construction order — and
		// therefore every handle value — is a pure function of Config,
		// which is what lets a checkpoint name callbacks by handle.
		s.doneH[i] = s.Eng.RegisterFn(s.doneFns[i])
	}
	return s, nil
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// Cycle returns the current simulated cycle.
func (s *System) Cycle() uint64 { return s.cycle }

// LoadProgram installs an assembled image and resets every hart to its
// entry point with a private stack. All harts run the same binary and
// differentiate via the mhartid CSR, exactly like Spike's bare-metal
// multicore mode.
func (s *System) LoadProgram(p *asm.Program) {
	p.LoadInto(s.Mem)
	s.prog = p
	for i, h := range s.Harts {
		h.PC = p.Entry
		h.X[2] = s.cfg.StackTop - uint64(i)*s.cfg.StackSize // sp
		h.FlushDecodeCache()                                // text may overwrite a previous image
	}
}

// Program returns the loaded program image (nil before LoadProgram) —
// checkpoint files embed it so a restore needs no assembler.
func (s *System) Program() *asm.Program { return s.prog }

// Symbol resolves a program symbol; it panics if no program is loaded.
func (s *System) Symbol(name string) (uint64, bool) {
	v, ok := s.prog.Symbols[name]
	return v, ok
}

// MustSymbol resolves a symbol or panics — for harness code where the
// symbol is statically known to exist.
func (s *System) MustSymbol(name string) uint64 {
	v, ok := s.Symbol(name)
	if !ok {
		panic(fmt.Sprintf("core: no symbol %q in loaded program", name))
	}
	return v
}

// tileOf maps a hart to its tile.
func (s *System) tileOf(hart int) int { return hart / s.cfg.CoresPerTile }

// park removes a hart from the runnable set.
func (s *System) park(hart int) {
	s.runnable[hart/64] &^= 1 << (hart % 64)
}

// anyRunnableSet reports whether any hart is in the runnable set.
func (s *System) anyRunnableSet() bool {
	for _, w := range s.runnable {
		if w != 0 {
			return true
		}
	}
	return false
}

// dispatch drains a hart's memory events into the uncore. Completions are
// the hart's pre-bound doneFn carrying a packed argument, so the
// steady-state miss path schedules no closures and allocates nothing.
// Events are consumed synchronously: the hart's buffer is truncated in
// place and its backing array reused, and gather descriptors return to
// the hart's pool once the MCPU has coalesced them.
//
//coyote:allocfree
func (s *System) dispatch(h *cpu.Hart) {
	events := h.Events
	h.Events = h.Events[:0]
	for _, ev := range events {
		if ev.Gather != nil {
			// MCPU scatter/gather descriptor: one transaction for the
			// whole indexed access, straight to the memory side.
			var done uncore.Done
			if ev.HasDest {
				done = uncore.Done{
					F:   s.doneFns[ev.Hart],
					Arg: uint64(ev.Dest)<<8 | uint64(ev.DestReg),
					H:   s.doneH[ev.Hart],
				}
				s.san.Issue(s.cycle, uint64(ev.Hart)<<32|done.Arg)
				if s.Tracer != nil && len(ev.Gather) > 0 {
					s.Tracer.Event(s.cycle, ev.Hart, TraceL1DMiss, ev.Gather[0])
				}
			}
			s.Uncore.SubmitGather(s.tileOf(ev.Hart), ev.Gather, ev.Write, done)
			h.RecycleGatherBuf(ev.Gather)
			continue
		}
		req := uncore.Request{
			Tile:  s.tileOf(ev.Hart),
			Addr:  ev.Addr,
			Write: ev.Write,
		}
		switch {
		case ev.Fetch:
			req.Done = uncore.Done{F: s.doneFns[ev.Hart], Arg: doneFetch, H: s.doneH[ev.Hart]}
			s.san.Issue(s.cycle, uint64(ev.Hart)<<32|doneFetch)
			if s.Tracer != nil {
				s.Tracer.Event(s.cycle, ev.Hart, TraceL1IMiss, ev.Addr)
			}
		case ev.HasDest:
			req.Done = uncore.Done{
				F:   s.doneFns[ev.Hart],
				Arg: uint64(ev.Dest)<<8 | uint64(ev.DestReg),
				H:   s.doneH[ev.Hart],
			}
			s.san.Issue(s.cycle, uint64(ev.Hart)<<32|req.Done.Arg)
			if s.Tracer != nil {
				s.Tracer.Event(s.cycle, ev.Hart, TraceL1DMiss, ev.Addr)
			}
		default:
			// Writebacks and write-allocate fetches need no completion.
			if !ev.Write && s.Tracer != nil {
				s.Tracer.Event(s.cycle, ev.Hart, TraceL1DMiss, ev.Addr)
			}
		}
		s.Uncore.Submit(req)
	}
}

// wake returns a parked hart to the runnable set and credits its stall.
//
//coyote:allocfree
func (s *System) wake(hart int) {
	if s.runnable[hart/64]&(1<<(hart%64)) == 0 && !s.halted[hart] {
		s.runnable[hart/64] |= 1 << (hart % 64)
		// Credit the cycles the core sat parked (its own Step already
		// counted the cycle on which it reported the stall).
		if now := s.Eng.Now(); now > s.stallSince[hart]+1 {
			s.Harts[hart].AddStallCycles(s.stallFetch[hart], now-s.stallSince[hart]-1)
		}
		if s.Tracer != nil {
			s.Tracer.Event(s.Eng.Now(), hart, TraceWakeup, 0)
		}
	}
}

// ResetStats zeroes every statistic in the system — hart counters, cache
// counters and uncore unit counters — without touching architectural or
// cache state. Call it after a warm-up region (e.g. from a custom driver
// loop) so the final Result covers only the measurement window. The cycle
// counter keeps running; Result.Cycles still reports the absolute time.
func (s *System) ResetStats() {
	for _, h := range s.Harts {
		h.Stats = cpu.Stats{}
		h.L1I.ResetStats()
		h.L1D.ResetStats()
	}
	s.Uncore.ResetStats()
}

// noStop disables a run-loop stop bound.
const noStop = ^uint64(0)

// Run simulates until every hart halts, a fault occurs, or MaxCycles is
// reached.
//
//coyote:globalfree
func (s *System) Run() (*Result, error) {
	res, _, err := s.run(noStop, noStop)
	return res, err
}

// RunTo simulates until every hart halts or the clock reaches stopCycle,
// whichever comes first. It reports stopped=true when the bound was hit:
// the engine has serviced everything up to stopCycle-1, no hart has a
// speculative episode armed and no hart holds undrained events — exactly
// the quiescent inter-cycle boundary CheckpointState serializes. The
// calendar is NOT drained on a stop, so pending events survive into the
// checkpoint and the resumed run replays them on schedule.
func (s *System) RunTo(stopCycle uint64) (*Result, bool, error) {
	return s.run(stopCycle, noStop)
}

// RunUntilInstret simulates until the harts' summed retired-instruction
// count reaches target (or the program ends). The sampling driver uses it
// to bound warm-up and measurement windows in instructions, the unit in
// which sampling intervals are defined.
func (s *System) RunUntilInstret(target uint64) (*Result, bool, error) {
	return s.run(noStop, target)
}

// TotalInstret sums retired instructions across all harts.
func (s *System) TotalInstret() uint64 {
	var n uint64
	for _, h := range s.Harts {
		n += h.Stats.Instret
	}
	return n
}

func (s *System) run(stopCycle, stopInstret uint64) (*Result, bool, error) {
	if s.prog == nil {
		return nil, false, fmt.Errorf("core: no program loaded")
	}
	parallel := s.cfg.Workers > 1 && len(s.Harts) > 1
	if parallel {
		s.startWorkers()
		defer s.stopWorkers()
	}
	stopped := false
	start := time.Now() //coyote:wallclock-ok wall-clock MIPS measurement only; never feeds back into simulated timing
	for s.nDone < len(s.Harts) {
		if s.cycle >= stopCycle || (stopInstret != noStop && s.TotalInstret() >= stopInstret) {
			stopped = true
			break
		}
		if s.cycle >= s.cfg.MaxCycles {
			return nil, false, fmt.Errorf("core: cycle limit %d reached (deadlock or runaway kernel?)",
				s.cfg.MaxCycles)
		}
		var anyRunnable bool
		var err error
		if parallel {
			anyRunnable, err = s.stepCycleParallel()
		} else {
			anyRunnable, err = s.stepCycleSeq()
		}
		if err != nil {
			return nil, false, err
		}

		// Advance the event-driven model to "now", servicing anything due
		// this cycle (paper: "the Orchestrator checks if Sparta has any
		// in-flight events for the current cycle").
		s.Eng.AdvanceTo(s.cycle)
		s.cycle++

		if anyRunnable {
			continue
		}
		// Completions processed by AdvanceTo above may have re-added a
		// hart to the runnable set after anyRunnable was computed.
		if s.anyRunnableSet() {
			continue
		}
		if san.Enabled {
			s.auditRunnable()
		}
		// Every core is stalled or halted (a busy hart keeps its runnable
		// bit and would have set anyRunnable above).
		if s.nDone == len(s.Harts) {
			// All done. Exit before consulting the event queue: leftover
			// writeback events must not fast-forward the final cycle count
			// past the point a ticking run would report.
			break
		}
		// Find the next moment anything can change: the earliest pending
		// event.
		next, ok := s.Eng.NextEventTime()
		if !ok {
			return nil, false, fmt.Errorf(
				"core: deadlock at cycle %d: %d/%d harts halted, none runnable, no pending events",
				s.cycle, s.nDone, len(s.Harts))
		}
		if !s.cfg.FastForward {
			// Coyote mode: tick every idle cycle (this is the wall-clock
			// cost that bottlenecks low core counts in Figure 3).
			continue
		}
		// Fast-forward: jump the clock to the next event time. The loop
		// top keeps the canonical step-then-advance order, so completions
		// still wake cores for the *following* cycle, exactly as when
		// ticking cycle by cycle. Statistics count the skipped cycles.
		// A stop bound clamps the jump: the loop passes through stopCycle
		// (an empty runnable sweep and a no-op AdvanceTo — observationally
		// identical to jumping over it) and breaks at the loop top.
		if next > stopCycle {
			next = stopCycle
		}
		if next > s.cycle {
			s.cycle = next
		}
	}
	if stopped {
		// Stop-bound exit: leave the calendar pending for the checkpoint
		// and skip the end-of-run audits — the run is not over. A clamped
		// fast-forward jump can leave the engine clock behind the stop
		// boundary with nothing scheduled in between; normalize it to the
		// canonical cycle-1 position (a pure clock move: the earliest
		// pending event is at or past the stop cycle, or the engine would
		// already be there).
		if s.cycle > 0 && s.Eng.Now() < s.cycle-1 {
			s.Eng.AdvanceTo(s.cycle - 1)
		}
		return s.collect(time.Since(start)), true, nil //coyote:wallclock-ok reports simulator throughput; simulated state is already final
	}
	s.Eng.Drain()
	if san.Enabled {
		// End-of-run conservation: every issued completion fired exactly
		// once, no MSHR still holds an in-flight line, every tag store
		// matches its shadow directory.
		s.san.Drained(s.Eng.Now())
		s.Uncore.Audit()
	}
	return s.collect(time.Since(start)), false, nil //coyote:wallclock-ok reports simulator throughput; simulated state is already final
}

// stepCycleSeq is the classic single-goroutine functional phase: step
// every runnable hart in index order, dispatching misses as they appear.
// Sweep only the harts that want attention. Completions cannot fire
// mid-sweep (they run inside AdvanceTo afterwards), and a stepped hart can
// only park or halt itself, so iterating over word copies visits exactly
// the harts that were runnable at cycle start — in index order, like the
// old full scan.
func (s *System) stepCycleSeq() (bool, error) {
	anyRunnable := false
	for w, word := range s.runnable {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << b
			i := w*64 + b
			if err := s.stepHart(i, s.Harts[i], &anyRunnable); err != nil {
				return false, err
			}
		}
	}
	return anyRunnable, nil
}

// stepHart runs one hart's interleave quantum sequentially — the per-hart
// body of the classic loop. It is also the serial re-execution fallback
// for misspeculated or spec-unsafe harts in the parallel commit walk.
//
// The quantum is consumed in superblock bites via StepBlock, with one
// dispatch per bite instead of one per instruction. Batching does not
// move any simulated event: every instruction of the quantum runs at the
// same cycle, so the uncore sees the identical requests in the identical
// order at the identical time — only the Go-side call count changes. The
// reference per-instruction engine (Hart.DisableBlockCache) keeps the
// classic step-then-dispatch loop for differential testing.
func (s *System) stepHart(i int, h *cpu.Hart, anyRunnable *bool) error {
	if h.BusyUntil() > s.cycle {
		*anyRunnable = true // occupied, but will free itself
		h.Stats.BusyCycles++
		return nil
	}
	if !h.BlockEngineEnabled() {
		return s.stepHartRef(i, h, anyRunnable)
	}
	rem := s.cfg.InterleaveQuantum
	for {
		n, res := h.StepBlock(s.cycle, rem)
		rem -= n
		if n > 0 {
			*anyRunnable = true
		}
		if len(h.Events) > 0 {
			s.dispatch(h)
		}
		if res != cpu.StepExecuted {
			return s.applyStepResult(i, h, res, anyRunnable)
		}
		if rem == 0 {
			return nil
		}
		// res == StepExecuted implies n ≥ 1, so rem strictly decreases.
	}
}

// stepHartRef is the pre-superblock reference loop: one Step, one
// dispatch, per instruction. Kept verbatim so the golden differential
// tests can pin the block engine against it.
func (s *System) stepHartRef(i int, h *cpu.Hart, anyRunnable *bool) error {
	for q := 0; q < s.cfg.InterleaveQuantum; q++ {
		res := h.Step(s.cycle)
		if len(h.Events) > 0 {
			s.dispatch(h)
		}
		if res == cpu.StepExecuted {
			*anyRunnable = true
			continue
		}
		return s.applyStepResult(i, h, res, anyRunnable)
	}
	return nil
}

// applyStepResult performs the orchestrator-side bookkeeping for a hart's
// final step result this cycle: halting, parking on stalls, stall-trace
// emission. Shared by the sequential loop and the parallel commit walk,
// which is what keeps the two paths' observable state identical.
func (s *System) applyStepResult(i int, h *cpu.Hart, res cpu.StepResult, anyRunnable *bool) error {
	switch res {
	case cpu.StepExecuted:
		*anyRunnable = true
	case cpu.StepFault:
		return h.Fault
	case cpu.StepHalted:
		if !s.halted[i] {
			s.halted[i] = true
			s.park(i)
			s.nDone++
		}
	case cpu.StepStalledRAW, cpu.StepStalledFetch:
		s.park(i)
		s.stallSince[i] = s.cycle
		s.stallFetch[i] = res == cpu.StepStalledFetch
		if san.Enabled {
			// A parked hart must have an outstanding fill to wake it, or
			// it sleeps forever.
			san.Check(h.PendingAny(), s.cycle, "core.runnable",
				"hart parked on a stall with no outstanding fill", uint64(i), 0)
			if res == cpu.StepStalledFetch {
				s.san.Covered(s.cycle, uint64(i)<<32|doneFetch)
			}
		}
		if res == cpu.StepStalledRAW && s.Tracer != nil {
			s.Tracer.Event(s.cycle, i, TraceStallRAW, 0)
		}
	case cpu.StepBusy:
		*anyRunnable = true
	case cpu.StepSpecUnsafe:
		// Only produced while speculation is armed; the parallel commit
		// walk intercepts it before bookkeeping, and a sequential step can
		// never return it.
		panic("core: StepSpecUnsafe reached orchestrator bookkeeping")
	}
	return nil
}

// auditRunnable cross-checks the runnable bitset against per-hart state at
// a quiescent point (no hart ran this cycle): halted harts must be out of
// the set, and a parked, un-halted hart must have an outstanding fill that
// can wake it. Only called in the coyotesan build.
func (s *System) auditRunnable() {
	for i, h := range s.Harts {
		bit := s.runnable[i/64]&(1<<(i%64)) != 0
		if s.halted[i] {
			san.Check(!bit, s.cycle, "core.runnable",
				"halted hart still in the runnable set", uint64(i), 0)
			continue
		}
		if !bit {
			san.Check(h.PendingAny(), s.cycle, "core.runnable",
				"hart parked with no outstanding fill (would sleep forever)", uint64(i), 0)
		}
	}
}
