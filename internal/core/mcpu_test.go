package core

// Tests for the MCPU gather-offload path (paper §I: memory-controller
// CPUs handling scatter/gather in aggregate).

import (
	"testing"
)

// gatherProgram gathers 32 doubles through byte-offset indices and stores
// the sum, then scatters constants back through the same indices.
const gatherProgram = `
_start:
	la   a1, idx
	la   a2, table
	la   a3, out
	li   a0, 32
	vsetvli t0, a0, e64, m4, ta, ma
	vle64.v v8, (a1)          # indices (byte offsets)
	vluxei64.v v16, (a2), v8  # gather
	li   t1, 1
	vsetvli zero, t1, e64, m1, ta, ma
	vmv.s.x v1, zero
	vsetvli t0, a0, e64, m4, ta, ma
	vfredusum.vs v1, v16, v1
	vfmv.f.s fa0, v1
	fsd  fa0, 0(a3)
	# scatter 0.0 back
	vmv.v.i v20, 0
	vsuxei64.v v20, (a2), v8
	li a7, 93
	li a0, 0
	ecall
.data
.align 6
idx:   .zero 256
table: .zero 2048
out:   .dword 0
`

func runGather(t *testing.T, offload bool) (*System, *Result) {
	t.Helper()
	s := newSystem(t, 1, func(c *Config) { c.Hart.MCPUOffload = offload })
	p := mustAsm(t, gatherProgram)
	s.LoadProgram(p)
	idx := s.MustSymbol("idx")
	table := s.MustSymbol("table")
	// Scattered indices, one per cache line of the table.
	for i := uint64(0); i < 32; i++ {
		off := (i * 64) % 2048
		s.Mem.Write64(idx+i*8, off)
		s.Mem.WriteFloat64(table+off, float64(i))
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return s, res
}

func TestMCPUGatherFunctionalEquivalence(t *testing.T) {
	sOff, _ := runGather(t, false)
	sOn, _ := runGather(t, true)
	want := float64(31 * 32 / 2) // 0+1+...+31
	for _, s := range []*System{sOff, sOn} {
		if got := s.Mem.ReadFloat64(s.MustSymbol("out")); got != want {
			t.Errorf("gather sum = %v, want %v", got, want)
		}
		// The scatter zeroed the table.
		if got := s.Mem.ReadFloat64(s.MustSymbol("table") + 64); got != 0 {
			t.Errorf("scatter did not write: table[64] = %v", got)
		}
	}
}

func TestMCPUGatherBypassesL2(t *testing.T) {
	_, off := runGather(t, false)
	sOn, on := runGather(t, true)

	offReads := sumCounter(off, "l2bank", ".reads")
	onReads := sumCounter(on, "l2bank", ".reads")
	if onReads >= offReads {
		t.Errorf("offload should cut L2 traffic: %d vs %d bank reads", onReads, offReads)
	}
	if on.UncoreRaw["mcpu.gathers"] != 1 || on.UncoreRaw["mcpu.scatters"] != 1 {
		t.Errorf("mcpu counters = %v", on.UncoreRaw)
	}
	if on.UncoreRaw["mcpu.elements"] != 64 { // 32 gathered + 32 scattered
		t.Errorf("mcpu elements = %d", on.UncoreRaw["mcpu.elements"])
	}
	if off.UncoreRaw["mcpu.gathers"] != 0 {
		t.Error("mcpu used without offload")
	}
	_ = sOn
}

func TestMCPUGatherFasterOnScatteredAccess(t *testing.T) {
	// 32 elements on 32 distinct lines: per-element cache transactions pay
	// 32 full round trips' worth of NoC/L2 handling; the descriptor pays
	// one round trip plus parallel DRAM line fetches.
	_, off := runGather(t, false)
	_, on := runGather(t, true)
	if on.Cycles >= off.Cycles {
		t.Errorf("MCPU offload should be faster here: %d vs %d cycles",
			on.Cycles, off.Cycles)
	}
}

func TestMCPUDeterminism(t *testing.T) {
	_, a := runGather(t, true)
	_, b := runGather(t, true)
	if a.Cycles != b.Cycles {
		t.Errorf("nondeterministic MCPU timing: %d vs %d", a.Cycles, b.Cycles)
	}
}
