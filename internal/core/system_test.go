package core

import (
	"strings"
	"testing"

	"github.com/coyote-sim/coyote/internal/asm"
)

func mustAsm(t *testing.T, src string) *asm.Program {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newSystem(t *testing.T, cores int, mut ...func(*Config)) *System {
	t.Helper()
	cfg := DefaultConfig(cores)
	for _, m := range mut {
		m(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

const exitAsm = `
	li a7, 93
	csrr a0, mhartid
	ecall
`

func TestSingleCoreArraySum(t *testing.T) {
	s := newSystem(t, 1)
	p := mustAsm(t, `
	_start:
		la   a0, data
		la   a1, result
		li   t0, 0        # sum
		li   t1, 0        # i
		li   t2, 100      # n
	loop:
		slli t3, t1, 3
		add  t4, a0, t3
		ld   t5, 0(t4)
		add  t0, t0, t5
		addi t1, t1, 1
		blt  t1, t2, loop
		sd   t0, 0(a1)
	`+exitAsm+`
	.data
	result: .dword 0
	data:   .zero 800
	`)
	s.LoadProgram(p)
	// Fill the array: data[i] = i.
	base := s.MustSymbol("data")
	want := uint64(0)
	for i := uint64(0); i < 100; i++ {
		s.Mem.Write64(base+i*8, i)
		want += i
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Mem.Read64(s.MustSymbol("result")); got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
	if res.Instructions == 0 || res.Cycles == 0 {
		t.Errorf("empty result: %+v", res)
	}
	if res.IPC() <= 0 || res.IPC() > 1 {
		t.Errorf("single-core IPC = %f, want (0, 1]", res.IPC())
	}
	if res.L1D.Misses == 0 {
		t.Error("array walk should miss L1D at least once")
	}
	if res.TotalStalls() == 0 {
		t.Error("load-use dependencies should cause stalls")
	}
}

const barrierProgram = `
.equ NCORES, 4
_start:
	csrr t0, mhartid
	la   a0, slots
	slli t1, t0, 3
	add  a0, a0, t1
	addi t2, t0, 1
	sd   t2, 0(a0)          # slots[hart] = hart+1
	la   a1, barrier
	li   t3, 1
	amoadd.d zero, t3, (a1) # barrier arrive
spin:
	ld   t4, 0(a1)
	li   t5, NCORES
	blt  t4, t5, spin
	bnez t0, done           # only hart 0 sums
	la   a0, slots
	li   t6, 0
	li   s0, 0
sumloop:
	slli t1, s0, 3
	add  t2, a0, t1
	ld   t3, 0(t2)
	add  t6, t6, t3
	addi s0, s0, 1
	li   t5, NCORES
	blt  s0, t5, sumloop
	la   a1, result
	sd   t6, 0(a1)
done:
	li a7, 93
	csrr a0, mhartid
	ecall
.data
slots:   .zero 64
barrier: .dword 0
result:  .dword 0
`

func TestMulticoreBarrierAndSum(t *testing.T) {
	s := newSystem(t, 4)
	s.LoadProgram(mustAsm(t, barrierProgram))
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 1+2+3+4 = 10
	if got := s.Mem.Read64(s.MustSymbol("result")); got != 10 {
		t.Errorf("barrier sum = %d, want 10", got)
	}
	for i, code := range res.ExitCodes {
		if code != uint64(i) {
			t.Errorf("hart %d exit code = %d", i, code)
		}
	}
	if res.Instructions < 4*10 {
		t.Errorf("instructions = %d", res.Instructions)
	}
}

func TestMemLatencyAffectsCycles(t *testing.T) {
	run := func(memLat uint64) uint64 {
		s := newSystem(t, 1, func(c *Config) { c.Uncore.MemLatency = memLat })
		p := mustAsm(t, `
		_start:
			la a0, data
			li t1, 0
			li t2, 64
		loop:
			slli t3, t1, 6       # stride one line: every load misses
			add  t4, a0, t3
			ld   t5, 0(t4)
			add  t6, t6, t5      # use immediately: load-use stall
			addi t1, t1, 1
			blt  t1, t2, loop
		`+exitAsm+`
		.data
		data: .zero 4096
		`)
		s.LoadProgram(p)
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	fast := run(20)
	slow := run(500)
	if slow <= fast {
		t.Errorf("cycles: slow mem %d <= fast mem %d", slow, fast)
	}
	if slow < 64*400 {
		t.Errorf("slow run should be dominated by 64 misses × ~500+ cycles, got %d", slow)
	}
}

func TestConsoleOutput(t *testing.T) {
	s := newSystem(t, 1)
	s.LoadProgram(mustAsm(t, `
	_start:
		la a1, msg
		li a0, 1
		li a2, 6
		li a7, 64
		ecall
		li a7, 93
		li a0, 0
		ecall
	.data
	msg: .asciz "hello\n"
	`))
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Consoles[0] != "hello\n" {
		t.Errorf("console = %q", res.Consoles[0])
	}
}

func TestCycleLimitAborts(t *testing.T) {
	s := newSystem(t, 1, func(c *Config) { c.MaxCycles = 10000 })
	s.LoadProgram(mustAsm(t, "loop: j loop"))
	if _, err := s.Run(); err == nil {
		t.Fatal("runaway loop should hit the cycle limit")
	}
}

func TestRunWithoutProgramFails(t *testing.T) {
	s := newSystem(t, 1)
	if _, err := s.Run(); err == nil {
		t.Fatal("Run without LoadProgram should fail")
	}
}

func TestInterleavingSpeedFidelityTradeoff(t *testing.T) {
	// E3 (paper §III-A): enabling Spike-style interleaving batches
	// instructions between orchestrator syncs. Functional results are
	// identical; timing fidelity differs (fewer simulated cycles because
	// several instructions retire per orchestrated cycle).
	run := func(quantum int) (*System, uint64, uint64) {
		s := newSystem(t, 2, func(c *Config) { c.InterleaveQuantum = quantum })
		s.LoadProgram(mustAsm(t, `
		_start:
			csrr t0, mhartid
			li   t1, 0
			li   t2, 2000
		loop:
			addi t1, t1, 1
			blt  t1, t2, loop
			la   a0, out
			slli t0, t0, 3
			add  a0, a0, t0
			sd   t1, 0(a0)
		`+exitAsm+`
		.data
		out: .zero 16
		`))
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return s, res.Cycles, res.Instructions
	}
	s1, cyc1, n1 := run(1)
	s8, cyc8, n8 := run(8)
	if n1 != n8 {
		t.Errorf("instruction counts differ: %d vs %d", n1, n8)
	}
	if cyc8 >= cyc1 {
		t.Errorf("quantum 8 cycles (%d) should be below quantum 1 (%d)", cyc8, cyc1)
	}
	for _, s := range []*System{s1, s8} {
		for i := 0; i < 2; i++ {
			if got := s.Mem.Read64(s.MustSymbol("out") + uint64(i*8)); got != 2000 {
				t.Errorf("out[%d] = %d", i, got)
			}
		}
	}
}

func TestFastForwardSkipsIdleCycles(t *testing.T) {
	// One core waiting on a 5000-cycle memory round trip must not execute
	// 5000 orchestrator iterations' worth of work: the event queue jump
	// keeps the run fast while cycles still advance.
	s := newSystem(t, 1, func(c *Config) {
		c.Uncore.MemLatency = 5000
		c.FastForward = true
	})
	s.LoadProgram(mustAsm(t, `
	_start:
		la a0, data
		ld t0, 0(a0)
		add t1, t0, t0
	`+exitAsm+`
	.data
	data: .dword 21
	`))
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles < 5000 {
		t.Errorf("cycles = %d, should include the memory latency", res.Cycles)
	}
	if s.Harts[0].X[6] != 42 {
		t.Errorf("t1 = %d", s.Harts[0].X[6])
	}
}

func TestVectorKernelEndToEnd(t *testing.T) {
	s := newSystem(t, 1)
	p := mustAsm(t, `
	# y[i] = a*x[i] + y[i] (daxpy), strip-mined
	_start:
		la   a1, xs
		la   a2, ys
		la   a3, an
		fld  fa0, 0(a3)      # a
		ld   a4, 8(a3)       # n
	loop:
		vsetvli t0, a4, e64, m1, ta, ma
		vle64.v v0, (a1)
		vle64.v v1, (a2)
		vfmacc.vf v1, fa0, v0
		vse64.v v1, (a2)
		slli t1, t0, 3
		add  a1, a1, t1
		add  a2, a2, t1
		sub  a4, a4, t0
		bnez a4, loop
	`+exitAsm+`
	.data
	an: .double 2.0
	    .dword 50
	xs: .zero 400
	ys: .zero 400
	`)
	s.LoadProgram(p)
	xs, ys := s.MustSymbol("xs"), s.MustSymbol("ys")
	for i := uint64(0); i < 50; i++ {
		s.Mem.WriteFloat64(xs+i*8, float64(i))
		s.Mem.WriteFloat64(ys+i*8, 1.0)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 50; i++ {
		want := 2.0*float64(i) + 1.0
		if got := s.Mem.ReadFloat64(ys + i*8); got != want {
			t.Fatalf("y[%d] = %v, want %v", i, got, want)
		}
	}
	if res.HartStats[0].VectorOps == 0 {
		t.Error("no vector ops counted")
	}
}

func TestFastForwardPreservesTiming(t *testing.T) {
	// Fast-forward is a pure wall-clock optimisation: simulated cycle
	// counts and results must be identical with it on or off.
	run := func(ff bool) (*System, *Result) {
		s := newSystem(t, 4, func(c *Config) {
			c.Uncore.MemLatency = 400
			c.FastForward = ff
		})
		s.LoadProgram(mustAsm(t, barrierProgram))
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return s, res
	}
	sOff, off := run(false)
	sOn, on := run(true)
	if off.Cycles != on.Cycles {
		t.Errorf("cycles differ: ff-off %d, ff-on %d", off.Cycles, on.Cycles)
	}
	if off.Instructions != on.Instructions {
		t.Errorf("instructions differ: %d vs %d", off.Instructions, on.Instructions)
	}
	a := sOff.Mem.Read64(sOff.MustSymbol("result"))
	b := sOn.Mem.Read64(sOn.MustSymbol("result"))
	if a != b {
		t.Errorf("results differ: %d vs %d", a, b)
	}
}

type recordingTracer struct {
	events []TraceKind
}

func (r *recordingTracer) Event(cycle uint64, hart int, kind TraceKind, addr uint64) {
	r.events = append(r.events, kind)
}

func TestTracerReceivesEvents(t *testing.T) {
	s := newSystem(t, 1)
	tr := &recordingTracer{}
	s.Tracer = tr
	s.LoadProgram(mustAsm(t, `
	_start:
		la a0, data
		ld t0, 0(a0)
		add t1, t0, t0
	`+exitAsm+`
	.data
	data: .dword 1
	`))
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	var gotMiss, gotStall, gotWake bool
	for _, k := range tr.events {
		switch k {
		case TraceL1DMiss:
			gotMiss = true
		case TraceStallRAW:
			gotStall = true
		case TraceWakeup:
			gotWake = true
		}
	}
	if !gotMiss || !gotStall || !gotWake {
		t.Errorf("tracer events: miss=%v stall=%v wake=%v", gotMiss, gotStall, gotWake)
	}
}

func TestReportContainsKeyLines(t *testing.T) {
	s := newSystem(t, 1)
	s.LoadProgram(mustAsm(t, "_start:"+exitAsm))
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report()
	for _, want := range []string{"cycles", "instructions", "MIPS", "L1D", "L2", "memory"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	if res.UncoreReport() == "" {
		t.Error("empty uncore report")
	}
}

func TestDefaultConfigTiles(t *testing.T) {
	for _, c := range []struct{ cores, tiles int }{
		{1, 1}, {8, 1}, {9, 2}, {64, 8}, {128, 16},
	} {
		cfg := DefaultConfig(c.cores)
		if got := cfg.Tiles(); got != c.tiles {
			t.Errorf("cores %d: tiles = %d, want %d", c.cores, got, c.tiles)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("cores %d: %v", c.cores, err)
		}
	}
}

// TestWorkersReferenceEngineMatchesSequential runs the per-instruction
// reference engine (block cache disabled) under the parallel orchestrator
// and requires bit-identical results against the sequential loop. The
// golden worker tests all run with the block engine on, so the reference
// path inside specStepHart is otherwise never executed with Workers > 1.
// The MaxCycles bound is deliberately tight: a reference path that stops
// consuming step results never halts, and must fail here rather than
// grind toward the two-billion-cycle default.
func TestWorkersReferenceEngineMatchesSequential(t *testing.T) {
	run := func(workers int) *Result {
		s := newSystem(t, 4, func(c *Config) {
			c.Hart.DisableBlockCache = true
			c.InterleaveQuantum = 4
			c.Workers = workers
			c.MaxCycles = 5_000_000
		})
		s.LoadProgram(mustAsm(t, busyWorkload))
		res, err := s.Run()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	seq := run(1)
	par := run(3)
	if par.Cycles != seq.Cycles {
		t.Errorf("cycles: workers=3 got %d, workers=1 got %d", par.Cycles, seq.Cycles)
	}
	if par.Instructions != seq.Instructions {
		t.Errorf("instructions: workers=3 got %d, workers=1 got %d", par.Instructions, seq.Instructions)
	}
}
