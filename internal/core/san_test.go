//go:build coyotesan

package core

import (
	"strings"
	"testing"

	"github.com/coyote-sim/coyote/internal/san"
)

// Mutation: a completion fires that the orchestrator never issued — the
// runtime face of the exactly-one-Done contract the portproto analyzer
// enforces statically. The completion ledger pins it to the hart and the
// packed destination.
func TestSanCatchesStrayCompletion(t *testing.T) {
	s, err := New(DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		v, ok := recover().(san.Violation)
		if !ok {
			t.Fatalf("want san.Violation panic, got %v", v)
		}
		if !strings.Contains(v.Error(), "never issued") {
			t.Fatalf("violation %q missing %q", v.Error(), "never issued")
		}
	}()
	s.doneFns[0](doneFetch) // no fetch miss outstanding
}
