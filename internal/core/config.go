// Package core implements the Coyote orchestrator: the component that
// couples the instruction-level CPU model (internal/cpu, the Spike role)
// with the event-driven memory hierarchy (internal/uncore on
// internal/evsim, the Sparta role). Every cycle it attempts to execute one
// instruction on each active core, injects L1 misses into the uncore,
// advances the event model to the current cycle, and wakes cores whose
// pending registers become available — the simulation loop of paper
// §III-A.
package core

import (
	"fmt"

	"github.com/coyote-sim/coyote/internal/cpu"
	"github.com/coyote-sim/coyote/internal/uncore"
)

// Config describes a whole simulated system.
type Config struct {
	// Cores is the number of simulated harts.
	Cores int
	// CoresPerTile groups cores into VAS-like tiles (ACME uses 8).
	CoresPerTile int
	// Hart configures the per-core model (VPU geometry, L1 caches).
	Hart cpu.Config
	// Uncore configures L2 banks, NoC and memory controllers. Its Tiles
	// field is derived from Cores/CoresPerTile and may be left zero.
	Uncore uncore.Config
	// InterleaveQuantum > 1 re-enables Spike-style interleaving: up to
	// this many instructions run back-to-back on a core before the
	// orchestrator moves on. 1 (the Coyote default) gives cycle-accurate
	// interleaving across cores; larger values trade fidelity for
	// simulation speed (paper Figure 3 discussion).
	InterleaveQuantum int
	// Workers sets how many host goroutines step harts inside each
	// simulated cycle. 1 (the default) keeps the classic fully sequential
	// loop; larger values enable the two-phase speculative parallel
	// orchestrator (parallel.go), whose committed state — traces, cycle
	// counts, every statistic — is bit-identical for any worker count.
	Workers int
	// MaxCycles aborts runaway simulations.
	MaxCycles uint64
	// FastForward lets the orchestrator jump over cycles in which no core
	// can make progress (all stalled on memory), going straight to the
	// next event. Coyote ticks every cycle — the behaviour behind the
	// low-core-count throughput bottleneck of Figure 3 — so this defaults
	// to false; enable it to trade that fidelity artefact for wall-clock
	// speed (the E9 ablation).
	FastForward bool
	// StackTop is the initial stack pointer of hart 0; each subsequent
	// hart gets a stack StackSize below the previous one.
	StackTop  uint64
	StackSize uint64
	// CheckpointAt > 0 asks the harness driver to stop at this cycle
	// (System.RunTo) and serialize the machine. Purely an execution-
	// strategy knob: a run that checkpoints at cycle C and resumes
	// produces bit-identical results to one that never stops, which is
	// exactly what the checkpoint golden suite proves.
	CheckpointAt uint64
}

// DefaultConfig builds the DESIGN.md §6 system for the given core count.
func DefaultConfig(cores int) Config {
	cpt := 8
	if cores < cpt {
		cpt = cores
	}
	tiles := (cores + cpt - 1) / cpt
	return Config{
		Cores:             cores,
		CoresPerTile:      cpt,
		Hart:              cpu.DefaultConfig(),
		Uncore:            uncore.DefaultConfig(tiles),
		InterleaveQuantum: 1,
		Workers:           1,
		MaxCycles:         2_000_000_000,
		StackTop:          0x9000_0000,
		StackSize:         64 << 10,
	}
}

// Tiles returns the tile count implied by the config.
func (c Config) Tiles() int {
	return (c.Cores + c.CoresPerTile - 1) / c.CoresPerTile
}

// Validate checks the configuration and fills derived fields.
func (c *Config) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("core: need at least one core")
	}
	if c.CoresPerTile <= 0 {
		return fmt.Errorf("core: cores per tile must be positive")
	}
	if c.InterleaveQuantum <= 0 {
		c.InterleaveQuantum = 1
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 2_000_000_000
	}
	if c.StackTop == 0 {
		c.StackTop = 0x9000_0000
	}
	if c.StackSize == 0 {
		c.StackSize = 64 << 10
	}
	c.Uncore.Tiles = c.Tiles()
	if c.Uncore.MemCtrls == 0 {
		c.Uncore.MemCtrls = 1
	}
	return c.Uncore.Validate()
}
