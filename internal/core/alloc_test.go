package core

import (
	"testing"

	"github.com/coyote-sim/coyote/internal/cpu"
	"github.com/coyote-sim/coyote/internal/san"
)

// TestDispatchMissPathNoAllocs pins the tentpole property of the
// orchestrator hot path: once pools and maps have reached their working
// size, pushing an L1 miss through dispatch → uncore → fill → completion
// allocates nothing. Fetch misses are used because their completion
// carries no scoreboard state; the uncore path they take is the same one
// data misses take.
func TestDispatchMissPathNoAllocs(t *testing.T) {
	if san.Enabled {
		t.Skip("coyotesan build: sanitizer shadow maps may allocate; the zero-alloc contract is a default-build property")
	}
	cfg := DefaultConfig(1)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := s.Harts[0]

	// Cycle through more distinct lines than the L2 holds so every event
	// stays a miss, but keep the set fixed so MSHR maps stop growing.
	const nLines = 32768 // 2 MiB of 64-B lines vs 512 KiB of L2
	next := 0
	drive := func() {
		for i := 0; i < 128; i++ {
			h.Events = append(h.Events, cpu.MemEvent{
				Hart: 0, Addr: uint64(next) << 6, Fetch: true,
			})
			next = (next + 1) % nLines
			s.dispatch(h)
		}
		s.Eng.Drain()
	}
	// Warm-up: wrap the calendar ring and fault in every pool, bucket and
	// map bucket chain the steady state touches.
	for i := 0; i < 64; i++ {
		drive()
	}
	if allocs := testing.AllocsPerRun(20, drive); allocs != 0 {
		t.Errorf("miss dispatch path: %.1f allocs/run (128 misses/run), want 0", allocs)
	}
}
