package core

// Cross-layer invariant tests: the counters of adjacent levels must agree
// with each other — every L1 miss becomes exactly one uncore request, L2
// misses become memory reads, and so on. These catch lost or duplicated
// transactions anywhere on the path.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/coyote-sim/coyote/internal/cache"
	"github.com/coyote-sim/coyote/internal/evsim"
)

// busyWorkload produces a mix of fetch misses, load/store misses,
// writebacks and dependency stalls across 4 cores.
const busyWorkload = `
_start:
	csrr t0, mhartid
	la   a0, data
	slli t1, t0, 12
	add  a0, a0, t1      # per-hart 4 KiB region
	li   t2, 0
	li   t3, 512
wloop:
	slli t4, t2, 3
	add  t5, a0, t4
	ld   t6, 0(t5)       # load (often missing)
	add  t6, t6, t2      # immediate use: RAW stall
	sd   t6, 0(t5)       # dirty the line
	addi t2, t2, 1
	blt  t2, t3, wloop
	li a7, 93
	li a0, 0
	ecall
.data
data: .zero 16384
`

func runBusy(t *testing.T, mut ...func(*Config)) *Result {
	t.Helper()
	s := newSystem(t, 4, mut...)
	s.LoadProgram(mustAsm(t, busyWorkload))
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func sumCounter(res *Result, prefix, suffix string) uint64 {
	var n uint64
	for k, v := range res.UncoreRaw {
		if strings.HasPrefix(k, prefix) && strings.HasSuffix(k, suffix) {
			n += v
		}
	}
	return n
}

func TestTrafficConservationL1ToL2(t *testing.T) {
	res := runBusy(t)
	var l1Misses, l1Writebacks uint64
	for _, h := range res.HartStats {
		l1Misses += h.LoadMisses + h.StoreMisses + h.FetchMisses
		l1Writebacks += h.Writebacks
	}
	bankReads := sumCounter(res, "l2bank", ".reads")
	bankWrites := sumCounter(res, "l2bank", ".writes")
	// MSHR-full retries re-enter handle() and would double count; the
	// default config has enough MSHRs that this workload has none.
	if conflicts := sumCounter(res, "l2bank", ".mshr_conflicts"); conflicts != 0 {
		t.Fatalf("test premise broken: %d MSHR conflicts", conflicts)
	}
	if bankReads != l1Misses {
		t.Errorf("L2 reads %d != L1 misses %d", bankReads, l1Misses)
	}
	if bankWrites != l1Writebacks {
		t.Errorf("L2 writes %d != L1 writebacks %d", bankWrites, l1Writebacks)
	}
}

func TestTrafficConservationL2ToMemory(t *testing.T) {
	res := runBusy(t)
	missesIssued := sumCounter(res, "l2bank", ".misses_issued")
	l2Writebacks := sumCounter(res, "l2bank", ".writebacks")
	// Every issued L2 miss is one DRAM line read; every L2 writeback plus
	// every L1 writeback that missed L2 becomes... no: L1 writebacks that
	// miss in L2 allocate (write-allocate) and issue a read. DRAM writes
	// come only from L2 dirty evictions.
	if got := res.MemReads(); got != missesIssued {
		t.Errorf("DRAM reads %d != L2 misses issued %d", got, missesIssued)
	}
	if got := res.MemWrites(); got != l2Writebacks {
		t.Errorf("DRAM writes %d != L2 writebacks %d", got, l2Writebacks)
	}
}

func TestStallCyclesAccounted(t *testing.T) {
	// Nearly every load misses and is immediately used, so the stalled
	// time must be a large fraction of total cycles — and bounded by it.
	res := runBusy(t, func(c *Config) { c.Uncore.MemLatency = 300 })
	stalls := res.TotalStalls()
	if stalls == 0 {
		t.Fatal("no stall cycles recorded")
	}
	perHartBound := res.Cycles * uint64(len(res.HartStats))
	if stalls > perHartBound {
		t.Errorf("stalls %d exceed cores×cycles %d", stalls, perHartBound)
	}
	if float64(stalls) < 0.2*float64(perHartBound) {
		t.Errorf("memory-bound workload should stall ≥20%% of hart-cycles; got %d/%d",
			stalls, perHartBound)
	}
}

func TestInstructionConservation(t *testing.T) {
	res := runBusy(t)
	var sum uint64
	for _, h := range res.HartStats {
		sum += h.Instret
	}
	if sum != res.Instructions {
		t.Errorf("per-hart instret sum %d != total %d", sum, res.Instructions)
	}
	// Each retired instruction was fetched exactly once through L1I
	// (hit or miss), so L1I accesses ≥ instructions.
	if res.L1I.Hits+res.L1I.Misses < res.Instructions {
		t.Errorf("L1I accesses %d < instructions %d",
			res.L1I.Hits+res.L1I.Misses, res.Instructions)
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := DefaultConfig(16)
	cfg.Uncore.LLCEnable = true
	cfg.Uncore.PrefetchDepth = 2
	cfg.InterleaveQuantum = 4
	raw, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var back Config
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Cores != 16 || !back.Uncore.LLCEnable ||
		back.Uncore.PrefetchDepth != 2 || back.InterleaveQuantum != 4 {
		t.Errorf("round trip lost fields: %+v", back)
	}
	if err := back.Validate(); err != nil {
		t.Errorf("round-tripped config invalid: %v", err)
	}
}

func TestPrivateL2KeepsTrafficLocal(t *testing.T) {
	// With tile-private L2, a core's requests never take the remote hop
	// to another tile's bank (memory-side hops are still remote).
	run := func(shared bool) (local, remote uint64) {
		s := newSystem(t, 16, func(c *Config) { c.Uncore.L2Shared = shared })
		s.LoadProgram(mustAsm(t, busyWorkload))
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		snap := s.Uncore.Snapshot()
		return snap["noc.local_msgs"], snap["noc.remote_msgs"]
	}
	sharedLocal, sharedRemote := run(true)
	privLocal, privRemote := run(false)
	if privLocal <= sharedLocal {
		t.Errorf("private L2 should raise local traffic: %d vs %d", privLocal, sharedLocal)
	}
	if privRemote >= sharedRemote {
		t.Errorf("private L2 should cut remote traffic: %d vs %d", privRemote, sharedRemote)
	}
}

func TestVectorBusyAccounting(t *testing.T) {
	s := newSystem(t, 1)
	s.LoadProgram(mustAsm(t, `
	_start:
		li   a0, 1048576
		vsetvli t0, a0, e64, m8, ta, ma   # vl = 128 → 8 cycles/op
		vmv.v.i v8, 1
		vmv.v.i v16, 2
		vadd.vv v24, v8, v16
	`+exitAsm))
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Three 8-cycle vector ops: ≥ 21 busy cycles beyond the issue slots.
	if res.HartStats[0].BusyCycles < 21 {
		t.Errorf("busy cycles = %d, want ≥ 21", res.HartStats[0].BusyCycles)
	}
}

func TestConfigFromJSONFile(t *testing.T) {
	raw, err := readTestdata("acme64.json")
	if err != nil {
		t.Fatal(err)
	}
	var cfg Config
	if err := json.Unmarshal(raw, &cfg); err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("shipped example config invalid: %v", err)
	}
	if cfg.Cores != 64 || cfg.Tiles() != 8 || !cfg.Uncore.LLCEnable {
		t.Errorf("config fields lost: %+v", cfg)
	}
	// The config must actually build and run a small workload.
	cfg.Cores = 8 // shrink for test speed; tiles rederived by Validate
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.LoadProgram(mustAsm(t, "_start:"+exitAsm))
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func readTestdata(name string) ([]byte, error) {
	return os.ReadFile(filepath.Join("testdata", name))
}

func TestResetStatsClearsCountersKeepsState(t *testing.T) {
	s := newSystem(t, 2)
	s.LoadProgram(mustAsm(t, busyWorkload))
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions == 0 {
		t.Fatal("no work done")
	}
	s.ResetStats()
	for i, h := range s.Harts {
		if h.Stats.Instret != 0 || h.L1D.Stats.Misses != 0 {
			t.Errorf("hart %d stats not cleared", i)
		}
		if h.L1D.Occupancy() == 0 {
			t.Errorf("hart %d cache contents should survive a stats reset", i)
		}
	}
	for k, v := range s.Uncore.Snapshot() {
		if v != 0 {
			t.Errorf("uncore counter %s = %d after reset", k, v)
		}
	}
}

// TestL2DirtyEvictionsReachMemory shrinks each L2 bank until the busy
// workload's dirty lines are evicted mid-run, then requires every one of
// those writebacks to arrive at the memory controllers. The conservation
// test above runs with the default geometry, where nothing spills out of
// the L2, so it cannot see a dropped writeback; this one can.
func TestL2DirtyEvictionsReachMemory(t *testing.T) {
	res := runBusy(t, func(c *Config) {
		// A 1 KiB L1D thrashes on the 4 KiB per-hart region, pushing dirty
		// lines into the L2; a 4 KiB L2 bank then thrashes in turn.
		c.Hart.L1D = cache.Config{SizeBytes: 1024, Ways: 2, LineBytes: 64, WriteBack: true}
		c.Uncore.L2 = cache.Config{SizeBytes: 4096, Ways: 2, LineBytes: 64, WriteBack: true}
	})
	l2wb := sumCounter(res, "l2bank", ".writebacks")
	if l2wb == 0 {
		t.Fatal("workload produced no L2 writebacks; the premise of this test is gone")
	}
	if got := res.MemWrites(); got != l2wb {
		t.Errorf("DRAM writes %d != L2 writebacks %d: dirty evictions lost on the way to memory", got, l2wb)
	}
}

// TestStallCreditExact pins the exact stall-cycle totals for a program
// with one instruction-fetch miss episode and one load-use miss episode.
// The orchestrator parks a stalled hart and credits the parked cycles on
// wakeup; the hart's own Step counts the cycle it reported the stall, so
// the credit is (wake - stallSince - 1). Both totals are affine in the
// DRAM latency — fetch = MemLatency + 24, load-use = MemLatency + 22,
// the constants being the fixed L1→L2→controller→return path — and an
// off-by-one in the wakeup credit shifts every episode by one cycle,
// which no coarser bound can see.
func TestStallCreditExact(t *testing.T) {
	const oneMissAsm = `
_start:
	la   a0, data
	ld   t6, 0(a0)
	add  t6, t6, t0
	li a7, 93
	li a0, 0
	ecall
.data
data: .zero 64
`
	for _, lat := range []evsim.Cycle{20, 300} {
		s := newSystem(t, 1, func(c *Config) { c.Uncore.MemLatency = lat })
		s.LoadProgram(mustAsm(t, oneMissAsm))
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		h := res.HartStats[0]
		if want := uint64(lat) + 24; h.StallsFetch != want {
			t.Errorf("MemLatency=%d: fetch stalls %d, want %d", lat, h.StallsFetch, want)
		}
		if want := uint64(lat) + 22; h.StallsRAW != want {
			t.Errorf("MemLatency=%d: load-use stalls %d, want %d", lat, h.StallsRAW, want)
		}
	}
}
