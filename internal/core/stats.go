package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/coyote-sim/coyote/internal/cache"
	"github.com/coyote-sim/coyote/internal/cpu"
	"github.com/coyote-sim/coyote/internal/evsim"
)

// Result aggregates everything a simulation run produced: the outputs the
// paper lists in §III-A ("statistics about memory accesses — miss rates,
// number of stalls due to dependencies — and the execution time of the
// simulated application") plus wall-clock throughput.
type Result struct {
	Cycles       uint64
	Instructions uint64
	WallTime     time.Duration

	HartStats []cpu.Stats
	L1I, L1D  cache.Stats // aggregated over all cores
	UncoreRaw map[string]uint64

	ExitCodes []uint64
	Consoles  []string

	// Par reports parallel-orchestrator speculation outcomes (all zero
	// for Workers <= 1). Not part of the golden determinism surface: the
	// counters legitimately vary with the worker count even though the
	// committed simulation state does not.
	Par ParStats
}

// MIPS returns simulated millions of instructions per wall-clock second —
// the metric of Figure 3.
func (r *Result) MIPS() float64 {
	if r.WallTime <= 0 {
		return 0
	}
	return float64(r.Instructions) / 1e6 / r.WallTime.Seconds()
}

// IPC returns retired instructions per simulated cycle across all cores.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// TotalStalls sums dependency-stall cycles over all cores.
func (r *Result) TotalStalls() uint64 {
	var n uint64
	for _, h := range r.HartStats {
		n += h.StallsRAW + h.StallsFetch
	}
	return n
}

// L2Stats aggregates hit/miss counts over every L2 bank.
func (r *Result) L2Stats() cache.Stats {
	var s cache.Stats
	//coyote:mapiter-ok commutative sums into independent fields; visit order cannot change any total
	for k, v := range r.UncoreRaw {
		switch {
		case strings.HasPrefix(k, "l2bank") && strings.HasSuffix(k, ".hits"):
			s.Hits += v
		case strings.HasPrefix(k, "l2bank") && strings.HasSuffix(k, ".misses"):
			s.Misses += v
		case strings.HasPrefix(k, "l2bank") && strings.HasSuffix(k, ".writebacks"):
			s.Writebacks += v
		}
	}
	return s
}

// MemReads sums line reads over all memory controllers.
func (r *Result) MemReads() uint64 {
	var n uint64
	//coyote:mapiter-ok integer sum filtered by key prefix; commutative, order cannot matter
	for k, v := range r.UncoreRaw {
		if strings.HasPrefix(k, "mc") && strings.HasSuffix(k, ".reads") {
			n += v
		}
	}
	return n
}

// MemWrites sums line writes over all memory controllers.
func (r *Result) MemWrites() uint64 {
	var n uint64
	//coyote:mapiter-ok integer sum filtered by key prefix; commutative, order cannot matter
	for k, v := range r.UncoreRaw {
		if strings.HasPrefix(k, "mc") && strings.HasSuffix(k, ".writes") {
			n += v
		}
	}
	return n
}

// MemTrafficBytes estimates DRAM traffic given the line size.
func (r *Result) MemTrafficBytes(lineBytes int) uint64 {
	return (r.MemReads() + r.MemWrites()) * uint64(lineBytes)
}

// BankLoads returns per-bank access counts in bank order — used by the
// bank-mapping experiment to measure load imbalance.
func (r *Result) BankLoads() []uint64 {
	type kv struct {
		id int
		n  uint64
	}
	var rows []kv
	//coyote:mapiter-ok rows are sorted by bank id immediately below, erasing visit order
	for k, v := range r.UncoreRaw {
		var id int
		if n, _ := fmt.Sscanf(k, "l2bank%d.reads", &id); n == 1 && strings.HasSuffix(k, ".reads") {
			rows = append(rows, kv{id, v})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].id < rows[j].id })
	out := make([]uint64, len(rows))
	for i, r := range rows {
		out[i] = r.n
	}
	return out
}

// collect builds the Result at end of run.
func (s *System) collect(wall time.Duration) *Result {
	r := &Result{
		Cycles:    s.cycle,
		WallTime:  wall,
		UncoreRaw: s.Uncore.Snapshot(),
		Par:       s.par.stats,
	}
	for _, h := range s.Harts {
		r.HartStats = append(r.HartStats, h.Stats)
		r.Instructions += h.Stats.Instret
		r.L1I.Hits += h.L1I.Stats.Hits
		r.L1I.Misses += h.L1I.Stats.Misses
		r.L1D.Hits += h.L1D.Stats.Hits
		r.L1D.Misses += h.L1D.Stats.Misses
		r.L1D.Writebacks += h.L1D.Stats.Writebacks
		r.ExitCodes = append(r.ExitCodes, h.ExitCode)
		r.Consoles = append(r.Consoles, h.Console.String())
	}
	return r
}

// Report renders a human-readable summary.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles            %d\n", r.Cycles)
	fmt.Fprintf(&b, "instructions      %d\n", r.Instructions)
	fmt.Fprintf(&b, "IPC               %.3f\n", r.IPC())
	fmt.Fprintf(&b, "wall time         %v\n", r.WallTime.Round(time.Microsecond))
	fmt.Fprintf(&b, "sim throughput    %.2f MIPS\n", r.MIPS())
	fmt.Fprintf(&b, "L1I               %d hits, %d misses (%.2f%% miss)\n",
		r.L1I.Hits, r.L1I.Misses, 100*r.L1I.MissRate())
	fmt.Fprintf(&b, "L1D               %d hits, %d misses (%.2f%% miss)\n",
		r.L1D.Hits, r.L1D.Misses, 100*r.L1D.MissRate())
	l2 := r.L2Stats()
	fmt.Fprintf(&b, "L2                %d hits, %d misses (%.2f%% miss)\n",
		l2.Hits, l2.Misses, 100*l2.MissRate())
	fmt.Fprintf(&b, "memory            %d line reads, %d line writes\n",
		r.MemReads(), r.MemWrites())
	fmt.Fprintf(&b, "dependency stalls %d cycles\n", r.TotalStalls())
	return b.String()
}

// UncoreReport renders the full per-unit counter dump, sorted.
func (r *Result) UncoreReport() string {
	var b strings.Builder
	for _, k := range evsim.SortedKeys(r.UncoreRaw) {
		fmt.Fprintf(&b, "%-28s %d\n", k, r.UncoreRaw[k])
	}
	return b.String()
}
