package core

import (
	"fmt"

	"github.com/coyote-sim/coyote/internal/cpu"
)

// functionalQuantum is the per-sweep instruction budget of a hart in
// functional mode. Bounded (rather than "run to halt") so multi-hart
// sweeps still rotate through every hart and the instret target is
// overshot by at most one quantum per hart.
const functionalQuantum = 4096

// RunFunctional advances the program by (at least) instrs retired
// instructions at functional speed: ISA semantics execute through the
// superblock engine exactly as in detailed mode, but the event calendar,
// MSHRs and NoC latencies are bypassed entirely — every miss completes
// the moment it is dispatched, with the cache hierarchy warmed
// functionally (Uncore.WarmAccess) so tag/dirty/LRU state tracks the
// instruction stream. This is the fast-forward phase of sampled
// simulation: orders of magnitude cheaper per instruction than detailed
// mode, architecturally exact, timing-free.
//
// Entry first drains the timed model: in-flight completions fire, parked
// harts wake, and the clock advances past the last event, so the
// functional region starts — and therefore later detailed regions
// restart — from a quiescent machine. Cycle counts accumulated across a
// functional region are NOT meaningful; sampling drivers measure CPI
// from deltas inside detailed windows only, and reset statistics at each
// measurement boundary.
//
// Returns done=true when the program finished inside the region.
func (s *System) RunFunctional(instrs uint64) (done bool, err error) {
	if s.prog == nil {
		return false, fmt.Errorf("core: no program loaded")
	}
	// Settle all in-flight timed work. Completions may wake parked harts.
	s.Eng.Drain()
	if now := s.Eng.Now(); s.cycle <= now {
		s.cycle = now + 1
	}

	// Arm every hart's warm sink: post-L1 traffic (L1 misses, dirty
	// writebacks) flows straight into the functional hierarchy warmer
	// instead of the event machinery, so a miss costs a map-free call
	// rather than an emit + orchestrator round trip. MCPU gather
	// descriptors still arrive as events; warmDispatch below handles them.
	for i, h := range s.Harts {
		tile := s.tileOf(i)
		h.SetWarmSink(func(addr uint64, write bool) {
			s.Uncore.WarmAccess(tile, addr, write)
		})
	}
	defer func() {
		for _, h := range s.Harts {
			h.SetWarmSink(nil)
		}
	}()

	target := s.TotalInstret() + instrs
	// Per-hart functional clocks: multi-cycle (vector) occupancy still
	// advances a hart's own time so BusyCycles accounting stays sane, but
	// harts do not synchronize with each other — there is no shared
	// timeline to keep consistent without the calendar.
	fnow := make([]uint64, len(s.Harts))
	for i := range fnow {
		fnow[i] = s.cycle
	}

	for s.nDone < len(s.Harts) && s.TotalInstret() < target {
		progress := false
		for i, h := range s.Harts {
			if s.halted[i] {
				continue
			}
			if bu := h.BusyUntil(); bu > fnow[i] {
				fnow[i] = bu
				progress = true
			}
			var res cpu.StepResult
			var n int
			if h.BlockEngineEnabled() {
				// Functional mode ignores Config.InterleaveQuantum: the
				// quantum trades timing fidelity for speed, and a
				// functional region has no timing to be faithful to. A
				// large fixed quantum lets the dedicated functional block
				// loop run free until a terminator or region boundary —
				// with the warm sink armed, cache misses complete inline.
				n, res = h.StepBlockFunctional(fnow[i], functionalQuantum)
			} else {
				res = h.Step(fnow[i])
				if res == cpu.StepExecuted {
					n = 1
				}
			}
			if n > 0 {
				progress = true
			}
			if len(h.Events) > 0 {
				s.warmDispatch(h)
				progress = true
			}
			switch res {
			case cpu.StepExecuted, cpu.StepStalledRAW, cpu.StepStalledFetch:
				// Stall results are transient here: warmDispatch completed
				// the fills the hart is waiting on, so the next sweep
				// proceeds. The runnable bitset is untouched — it only
				// matters to the timed loop, and every bit survives as-is.
			case cpu.StepFault:
				return false, h.Fault
			case cpu.StepHalted:
				if !s.halted[i] {
					s.halted[i] = true
					s.park(i)
					s.nDone++
					progress = true // the halt transition is forward motion
				}
			case cpu.StepBusy:
				if bu := h.BusyUntil(); bu > fnow[i] {
					fnow[i] = bu
				} else {
					fnow[i]++
				}
				progress = true
			case cpu.StepSpecUnsafe:
				panic("core: StepSpecUnsafe outside an armed speculation")
			}
		}
		if !progress {
			// Impossible for well-formed programs: every stall's fill was
			// completed synchronously above, so only a hart spinning on
			// memory another (also stuck) hart must write could stop the
			// sweep — a deadlock detailed mode would hit too.
			return false, fmt.Errorf("core: functional fast-forward made no progress (%d/%d harts done)",
				s.nDone, len(s.Harts))
		}
	}

	// Commit the clock: no hart's occupancy may extend past the resumed
	// timed region's start, and the engine must never run behind it.
	for _, t := range fnow {
		if t > s.cycle {
			s.cycle = t
		}
	}
	return s.nDone == len(s.Harts), nil
}

// warmDispatch is dispatch()'s functional twin: drain the hart's memory
// events, warm the hierarchy, and complete everything immediately. No
// uncore submission, no completion ledger (the san ledger tracks timed
// completions; functional fills never enter the calendar), no trace
// events (a fast-forwarded region has no meaningful timestamps).
func (s *System) warmDispatch(h *cpu.Hart) {
	events := h.Events
	h.Events = h.Events[:0]
	for _, ev := range events {
		if ev.Gather != nil {
			s.Uncore.WarmGather(ev.Gather, ev.Write)
			if ev.HasDest {
				h.CompleteFill(ev.Dest, ev.DestReg)
			}
			h.RecycleGatherBuf(ev.Gather)
			continue
		}
		s.Uncore.WarmAccess(s.tileOf(ev.Hart), ev.Addr, ev.Write)
		switch {
		case ev.Fetch:
			h.CompleteFetch()
		case ev.HasDest:
			h.CompleteFill(ev.Dest, ev.DestReg)
		}
	}
}
