package core

import (
	"fmt"

	"github.com/coyote-sim/coyote/internal/ckpt"
	"github.com/coyote-sim/coyote/internal/cpu"
	"github.com/coyote-sim/coyote/internal/san"
)

// CheckpointState serializes the complete machine at an inter-cycle
// boundary: orchestrator scheduling state, functional memory, the event
// calendar, the uncore's in-flight transactions, every hart and the
// shared reservation set. The caller must have stopped the run with
// RunTo — at that boundary speculation is disarmed, every hart's event
// buffer is drained and the calendar holds only future events, which the
// per-component serializers verify.
//
// Trace events are NOT serialized here: the Tracer is harness-owned, and
// the harness (package coyote) snapshots its writer alongside this state.
func (s *System) CheckpointState(w *ckpt.Writer) error {
	w.U64(s.cycle)
	w.U64(uint64(len(s.runnable)))
	for _, word := range s.runnable {
		w.U64(word)
	}
	for _, h := range s.halted {
		w.Bool(h)
	}
	w.Int(s.nDone)
	for _, c := range s.stallSince {
		w.U64(c)
	}
	for _, f := range s.stallFetch {
		w.Bool(f)
	}
	w.U64(s.par.stats.SpecQuanta)
	w.U64(s.par.stats.Commits)
	w.U64(s.par.stats.Conflicts)
	w.U64(s.par.stats.Unsafe)

	s.Mem.Checkpoint(w)
	if err := s.Eng.Checkpoint(w); err != nil {
		return err
	}
	if err := s.Uncore.Checkpoint(w); err != nil {
		return err
	}
	for _, h := range s.Harts {
		if err := h.Checkpoint(w); err != nil {
			return err
		}
	}
	s.resv.Checkpoint(w)
	return nil
}

// RestoreState reloads a CheckpointState image into a freshly constructed
// System with the same Config and loaded program, then resynchronizes the
// coyotesan shadow structures (completion ledger, MSHR sets, directories)
// with the restored machine. Continuing with Run/RunTo reproduces the
// uninterrupted run bit-for-bit.
func (s *System) RestoreState(r *ckpt.Reader) error {
	if s.prog == nil {
		return fmt.Errorf("core: restore before LoadProgram")
	}
	cycle := r.U64()
	nWords := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if nWords != uint64(len(s.runnable)) {
		return fmt.Errorf("core: checkpoint has %d runnable words, this system has %d (core count mismatch)", nWords, len(s.runnable))
	}
	s.cycle = cycle
	for i := range s.runnable {
		s.runnable[i] = r.U64()
	}
	for i := range s.halted {
		s.halted[i] = r.Bool()
	}
	nDone := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if nDone < 0 || nDone > len(s.Harts) {
		return fmt.Errorf("core: checkpoint nDone %d out of range", nDone)
	}
	s.nDone = nDone
	for i := range s.stallSince {
		s.stallSince[i] = r.U64()
	}
	for i := range s.stallFetch {
		s.stallFetch[i] = r.Bool()
	}
	s.par.stats.SpecQuanta = r.U64()
	s.par.stats.Commits = r.U64()
	s.par.stats.Conflicts = r.U64()
	s.par.stats.Unsafe = r.U64()

	if err := s.Mem.Restore(r); err != nil {
		return err
	}
	if err := s.Eng.Restore(r); err != nil {
		return err
	}
	if err := s.Uncore.Restore(r); err != nil {
		return err
	}
	for _, h := range s.Harts {
		if err := h.Restore(r); err != nil {
			return err
		}
	}
	if err := s.resv.Restore(r); err != nil {
		return err
	}

	if s.cycle > 0 && s.Eng.Now() != s.cycle-1 {
		return fmt.Errorf("core: checkpoint clock skew: orchestrator at cycle %d, engine at %d", s.cycle, s.Eng.Now())
	}
	for i, h := range s.Harts {
		if s.halted[i] != h.Halted {
			return fmt.Errorf("core: checkpoint hart %d halted flag disagrees with orchestrator", i)
		}
	}

	if san.Enabled {
		s.resyncSan()
	}
	return nil
}

// resyncSan re-issues the restored machine's outstanding completions into
// the fresh sanitizer ledger: one entry per outstanding register fill
// (the scoreboard's per-register counts ARE the outstanding completion
// multiset) plus the fetch fill when one is pending. MSHR shadow sets and
// tag directories were resynchronized by the uncore/cache restores.
func (s *System) resyncSan() {
	for i, h := range s.Harts {
		for kind := cpu.RegKind(0); kind < 3; kind++ {
			counts := h.PendingCounts(kind)
			for reg, n := range counts {
				key := uint64(i)<<32 | uint64(kind)<<8 | uint64(reg)
				for c := uint16(0); c < n; c++ {
					s.san.Issue(s.cycle, key)
				}
			}
		}
		if h.FetchPending() {
			s.san.Issue(s.cycle, uint64(i)<<32|doneFetch)
		}
	}
}
