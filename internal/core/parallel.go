package core

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/coyote-sim/coyote/internal/cpu"
	"github.com/coyote-sim/coyote/internal/san"
)

// Parallel orchestrator (Config.Workers > 1): the per-cycle functional
// phase is split in two.
//
// Phase 1 — speculative execution. The runnable-hart bitset is expanded
// into an ascending index list and sharded into contiguous ranges, one per
// worker. Each worker steps its harts' interleave quanta speculatively
// (cpu.BeginSpec): memory reads go through a private read-only view and
// are logged, writes land in a per-hart store buffer, misses/trace events
// accumulate in the hart's private event buffer, and statistics mutate
// only snapshotted hart state. Nothing shared is written, so workers need
// no locks.
//
// Phase 2 — sequential commit, in hart-index order. For each hart the
// walk validates the read log against current memory — which already
// contains every lower-index hart's committed stores, so a mismatch is
// precisely a read-write conflict with a lower-index hart. Valid
// speculation commits: buffered stores apply in program order, deferred
// LR/SC invalidations replay, and the hart's events dispatch into the
// (single-threaded) uncore. Invalid or spec-unsafe (atomic) speculation
// rolls back and the hart re-executes serially in its slot via the exact
// sequential stepHart path. Write-write conflicts need no detection at
// all: in-order commit makes the higher-index hart's store win, which is
// what the sequential interleaving produces anyway.
//
// Because commit order equals sequential step order, every committed
// value, statistic, dispatch and trace event is bit-identical to the
// Workers=1 run — golden .prv traces and cycle counts do not change with
// the worker count (DESIGN.md §5).

// ParStats counts parallel-orchestrator outcomes. All zero when
// Config.Workers <= 1. The counters vary with the worker count (more
// workers, more speculation) and are deliberately excluded from the
// golden determinism surface.
type ParStats struct {
	SpecQuanta uint64 // hart-quanta executed speculatively
	Commits    uint64 // speculations validated and committed
	Conflicts  uint64 // rollbacks due to a stale read (lower-index hart wrote it)
	Unsafe     uint64 // rollbacks due to spec-unsafe instructions (atomics)
}

// specOutcome records what one hart's speculative quantum produced.
type specOutcome struct {
	res         cpu.StepResult
	executedAny bool // at least one instruction retired this quantum
}

// parState is the worker pool plus per-cycle shard bookkeeping. The pool
// uses persistent goroutines with an atomic epoch broadcast and a
// countdown barrier: a simulated cycle is far too short to amortize
// channel round trips, and the sync/atomic operations carry the
// happens-before edges the race detector checks.
type parState struct {
	workers int
	list    []int         // runnable hart indices this cycle, ascending
	outcome []specOutcome // indexed like list
	stats   ParStats

	started bool
	wg      sync.WaitGroup
	epoch   atomic.Uint64 // bumped to publish a new job to the helpers
	pending atomic.Int64  // helpers still executing the current job
	quit    bool          // read by helpers after an epoch bump
	n       int           // len(list) for the current job
}

// startWorkers launches the helper goroutines (the main goroutine acts as
// worker 0). Run pairs it with stopWorkers so a Sweep of many Systems
// never leaks pool goroutines.
func (s *System) startWorkers() {
	par := &s.par
	par.workers = s.cfg.Workers
	if par.workers > len(s.Harts) {
		par.workers = len(s.Harts)
	}
	if cap(par.outcome) < len(s.Harts) {
		par.outcome = make([]specOutcome, len(s.Harts))
	}
	par.outcome = par.outcome[:len(s.Harts)]
	par.quit = false
	par.started = true
	par.wg.Add(par.workers - 1)
	for w := 1; w < par.workers; w++ {
		go s.workerLoop(w)
	}
}

// stopWorkers shuts the pool down and waits for every helper to exit.
func (s *System) stopWorkers() {
	par := &s.par
	if !par.started {
		return
	}
	par.quit = true
	par.epoch.Add(1)
	par.wg.Wait()
	par.started = false
}

// workerLoop is one helper goroutine: wait for an epoch bump, run the
// shard, signal completion. The epoch/pending atomics provide the
// happens-before edges for the job fields and the harts' state.
func (s *System) workerLoop(w int) {
	defer s.par.wg.Done()
	last := uint64(0)
	for {
		last = s.awaitEpoch(last)
		if s.par.quit {
			return
		}
		s.runShard(w)
		s.par.pending.Add(-1)
	}
}

// awaitEpoch spins briefly, then yields, until the epoch moves past last.
// The Gosched is mandatory, not a nicety: on a GOMAXPROCS=1 host a pure
// spin would never let the goroutine that bumps the epoch run.
func (s *System) awaitEpoch(last uint64) uint64 {
	for spins := 0; ; spins++ {
		if e := s.par.epoch.Load(); e != last {
			return e
		}
		if spins > 64 {
			runtime.Gosched()
		}
	}
}

// runShard speculatively steps worker w's contiguous slice of the
// runnable list. Also called inline by the main goroutine as worker 0.
func (s *System) runShard(w int) {
	par := &s.par
	lo := w * par.n / par.workers
	hi := (w + 1) * par.n / par.workers
	for k := lo; k < hi; k++ {
		s.specStepHart(k)
	}
}

// specStepHart runs one hart's interleave quantum speculatively. It
// executes on a worker goroutine and must not touch any state outside the
// hart itself. Dispatch is deferred to the commit walk; the events simply
// pile up in the hart's buffer in program order, which is the same
// per-hart contiguous order the sequential loop dispatches them in.
//coyote:specphase
func (s *System) specStepHart(k int) {
	par := &s.par
	h := s.Harts[par.list[k]]
	o := &par.outcome[k]
	o.executedAny = false //coyote:specwrite-ok worker-private outcome slot, read only by the commit phase after the barrier
	h.BeginSpec()
	if !h.BlockEngineEnabled() {
		// Reference per-instruction engine (differential testing).
		var res cpu.StepResult
		for q := 0; q < s.cfg.InterleaveQuantum; q++ {
			res = h.Step(s.cycle)
			if res == cpu.StepExecuted {
				o.executedAny = true //coyote:specwrite-ok worker-private outcome slot (see above)
				continue
			}
			break
		}
		o.res = res //coyote:specwrite-ok worker-private outcome slot (see above)
		return
	}
	rem := s.cfg.InterleaveQuantum
	res := cpu.StepExecuted
	for rem > 0 {
		var n int
		n, res = h.StepBlock(s.cycle, rem)
		rem -= n
		if n > 0 {
			o.executedAny = true //coyote:specwrite-ok worker-private outcome slot (see above)
		}
		if res != cpu.StepExecuted {
			break
		}
		// res == StepExecuted implies n ≥ 1, so rem strictly decreases.
	}
	o.res = res //coyote:specwrite-ok worker-private outcome slot (see above)
}

// stepCycleParallel runs one simulated cycle's functional phase on the
// worker pool: speculative parallel execution, then the sequential commit
// walk. Committed machine state is bit-identical to stepCycleSeq for any
// worker count.
func (s *System) stepCycleParallel() (bool, error) {
	par := &s.par
	par.list = par.list[:0]
	for w, word := range s.runnable {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << b
			par.list = append(par.list, w*64+b) //coyote:alloc-ok pooled shard list; grows to Cores once, reused every cycle
		}
	}
	n := len(par.list)
	anyRunnable := false
	if n == 0 {
		return false, nil
	}
	if n == 1 {
		// A single runnable hart gains nothing from speculation; the
		// sequential path commits the identical state with less work.
		i := par.list[0]
		err := s.stepHart(i, s.Harts[i], &anyRunnable)
		return anyRunnable, err
	}

	// Phase 1: speculative execution across the pool.
	par.n = n
	par.pending.Store(int64(par.workers - 1))
	par.epoch.Add(1)
	s.runShard(0)
	for spins := 0; par.pending.Load() > 0; spins++ {
		if spins > 64 {
			runtime.Gosched()
		}
	}
	par.stats.SpecQuanta += uint64(n)

	// Phase 2: sequential commit in hart-index order.
	for k, i := range par.list {
		h := s.Harts[i]
		o := &par.outcome[k]
		if o.res == cpu.StepSpecUnsafe || !h.ValidateSpec() {
			if o.res == cpu.StepSpecUnsafe {
				par.stats.Unsafe++
			} else {
				par.stats.Conflicts++
			}
			h.AbortSpec()
			if err := s.stepHart(i, h, &anyRunnable); err != nil {
				s.abortSpecsFrom(k + 1)
				return false, err
			}
			continue
		}
		h.CommitSpec()
		par.stats.Commits++
		if len(h.Events) > 0 {
			s.dispatch(h)
		}
		if o.executedAny {
			anyRunnable = true
		}
		if err := s.applyStepResult(i, h, o.res, &anyRunnable); err != nil {
			s.abortSpecsFrom(k + 1) //coyote:mut-survivor out-of-scope: post-fatal unwind; Run returns the error and nothing after the failed slot is committed or observable
			return false, err
		}
		if san.Enabled {
			san.Check(!h.SpecArmed(), s.cycle, "core.parallel",
				"hart left speculation armed after its commit slot", uint64(i), 0)
		}
	}
	return anyRunnable, nil
}

// abortSpecsFrom rolls back any still-armed speculations when the commit
// walk bails out early on a fault, leaving every hart consistent.
func (s *System) abortSpecsFrom(k int) {
	for ; k < len(s.par.list); k++ {
		h := s.Harts[s.par.list[k]]
		if h.SpecArmed() {
			h.AbortSpec()
		}
	}
}
