package trace

import "github.com/coyote-sim/coyote/internal/asm"

// asmAssemble keeps the test file free of a direct asm import alias.
func asmAssemble(src string) (*asm.Program, error) { return asm.Assemble(src) }
