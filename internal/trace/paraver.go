// Package trace writes Paraver trace files (.prv + .pcf + .row), the
// output format Coyote produces for the BSC Paraver visualizer (paper
// §III-A: "a trace of L1 misses ... can be analyzed using the Paraver
// Visualization Tools"). One Paraver "thread" is emitted per hart; L1
// misses, dependency stalls and wakeups are encoded as punctual events.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"github.com/coyote-sim/coyote/internal/core"
)

// Paraver event type codes used by this writer.
const (
	EventL1DMiss = 90000001
	EventL1IMiss = 90000002
	EventStall   = 90000003
	EventWakeup  = 90000004
)

// Event is one trace record.
type Event struct {
	Cycle uint64
	Hart  int
	Type  int
	Value uint64
}

// Writer buffers simulation events and renders them as a Paraver trace.
// It implements core.Tracer.
type Writer struct {
	nHarts int
	events []Event
	last   uint64
}

var _ core.Tracer = (*Writer)(nil)

// NewWriter creates a writer for a system with nHarts cores.
func NewWriter(nHarts int) *Writer {
	return &Writer{nHarts: nHarts}
}

// Event implements core.Tracer.
func (w *Writer) Event(cycle uint64, hart int, kind core.TraceKind, addr uint64) {
	var typ int
	val := addr
	switch kind {
	case core.TraceL1DMiss:
		typ = EventL1DMiss
	case core.TraceL1IMiss:
		typ = EventL1IMiss
	case core.TraceStallRAW:
		typ = EventStall
		val = 1
	case core.TraceWakeup:
		typ = EventWakeup
		val = 1
	default:
		return
	}
	if cycle > w.last {
		w.last = cycle
	}
	w.events = append(w.events, Event{Cycle: cycle, Hart: hart, Type: typ, Value: val})
}

// Len returns the number of buffered events.
func (w *Writer) Len() int { return len(w.events) }

// Events returns the buffered events (not a copy; treat as read-only).
func (w *Writer) Events() []Event { return w.events }

// Last returns the highest event cycle seen.
func (w *Writer) Last() uint64 { return w.last }

// Seed preloads events recorded before a checkpoint. A restored run seeds
// the writer with the checkpointed prefix, appends live events from the
// resumed simulation, and renders a byte-identical trace: WritePRV
// stable-sorts by cycle, and every seeded event precedes (or ties with,
// in recorded order) every live one.
func (w *Writer) Seed(events []Event, last uint64) {
	w.events = append(w.events[:0], events...)
	w.last = last
}

// Paraver state values emitted for stall intervals.
const (
	StateRunning = 1
	StateStalled = 13 // Paraver's conventional "blocked" state code
)

// WritePRV renders the .prv record stream: punctual events for misses and
// wake-ups, plus state records (record type 1) covering each stall
// interval, which is what makes the per-core timeline readable in the
// Paraver GUI.
func (w *Writer) WritePRV(out io.Writer) error {
	bw := bufio.NewWriter(out)
	// Header: #Paraver (date):duration:resource:nAppl:appl(nTasks:node)
	// One application with nHarts tasks of one thread each, one node.
	fmt.Fprintf(bw, "#Paraver (01/01/2021 at 00:00):%d:1(%d):1:%d(",
		w.last+1, w.nHarts, w.nHarts)
	for i := 0; i < w.nHarts; i++ {
		if i > 0 {
			fmt.Fprint(bw, ",")
		}
		fmt.Fprint(bw, "1:1")
	}
	fmt.Fprintln(bw, ")")

	evs := make([]Event, len(w.events))
	copy(evs, w.events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Cycle < evs[j].Cycle })

	// Derive stall intervals: a stall event opens a window, the next
	// wakeup on the same hart closes it.
	stallStart := make(map[int]uint64)
	for _, e := range evs {
		switch e.Type {
		case EventStall:
			if _, open := stallStart[e.Hart]; !open {
				stallStart[e.Hart] = e.Cycle
			}
		case EventWakeup:
			if start, open := stallStart[e.Hart]; open && e.Cycle > start {
				// 1:cpu:appl:task:thread:begin:end:state
				fmt.Fprintf(bw, "1:%d:1:%d:1:%d:%d:%d\n",
					e.Hart+1, e.Hart+1, start, e.Cycle, StateStalled)
			}
			delete(stallStart, e.Hart)
		}
	}

	for _, e := range evs {
		// 2:cpu:appl:task:thread:time:type:value
		fmt.Fprintf(bw, "2:%d:1:%d:1:%d:%d:%d\n",
			e.Hart+1, e.Hart+1, e.Cycle, e.Type, e.Value)
	}
	return bw.Flush()
}

// ParseStates extracts the state records (stall intervals) from a .prv
// stream. Returned per record: hart, begin, end, state.
type StateRecord struct {
	Hart       int
	Begin, End uint64
	State      int
}

// ParsePRVStates reads the state records out of a .prv stream.
func ParsePRVStates(in io.Reader) ([]StateRecord, error) {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var out []StateRecord
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "1:") {
			continue
		}
		fields := strings.Split(line, ":")
		if len(fields) != 8 {
			return nil, fmt.Errorf("prv: malformed state record %q", line)
		}
		hart, err1 := strconv.Atoi(fields[1])
		begin, err2 := strconv.ParseUint(fields[5], 10, 64)
		end, err3 := strconv.ParseUint(fields[6], 10, 64)
		state, err4 := strconv.Atoi(fields[7])
		for _, err := range []error{err1, err2, err3, err4} {
			if err != nil {
				return nil, fmt.Errorf("prv: state record %q: %w", line, err)
			}
		}
		out = append(out, StateRecord{Hart: hart - 1, Begin: begin, End: end, State: state})
	}
	return out, sc.Err()
}

// WritePCF renders the .pcf config describing the event types.
func (w *Writer) WritePCF(out io.Writer) error {
	_, err := fmt.Fprintf(out, `DEFAULT_OPTIONS

LEVEL               THREAD
UNITS               NANOSEC

STATES
%d Running
%d Stalled on memory

EVENT_TYPE
0 %d L1D miss (line address)
0 %d L1I miss (line address)
0 %d RAW dependency stall
0 %d Core wakeup
`, StateRunning, StateStalled, EventL1DMiss, EventL1IMiss, EventStall, EventWakeup)
	return err
}

// WriteROW renders the .row label file.
func (w *Writer) WriteROW(out io.Writer) error {
	bw := bufio.NewWriter(out)
	fmt.Fprintf(bw, "LEVEL THREAD SIZE %d\n", w.nHarts)
	for i := 0; i < w.nHarts; i++ {
		fmt.Fprintf(bw, "core %d\n", i)
	}
	return bw.Flush()
}

// ParsePRV reads a .prv stream back into events — used by cmd/prv2txt and
// the round-trip tests. WritePRV emits punctual events sorted by time, so
// a timestamp running backwards means the trace was corrupted or
// hand-edited; ParsePRV rejects it rather than letting a scrambled
// timeline masquerade as a valid trace.
func ParsePRV(in io.Reader) (nHarts int, events []Event, err error) {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	var lastCycle uint64
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#Paraver") {
			// ...:resource(h):nAppl:appl(... — pull the hart count out of
			// the first parenthesised group.
			open := strings.Index(line, "(")
			open = strings.Index(line[open+1:], "(") + open + 1
			close_ := strings.Index(line[open:], ")") + open
			if open <= 0 || close_ <= open {
				return 0, nil, fmt.Errorf("prv line %d: malformed header", lineNo)
			}
			nHarts, err = strconv.Atoi(line[open+1 : close_])
			if err != nil {
				return 0, nil, fmt.Errorf("prv line %d: bad hart count: %w", lineNo, err)
			}
			continue
		}
		fields := strings.Split(line, ":")
		if fields[0] != "2" {
			continue // only punctual events are produced by this writer
		}
		if len(fields) != 8 {
			return 0, nil, fmt.Errorf("prv line %d: want 8 fields, got %d", lineNo, len(fields))
		}
		hart, err := strconv.Atoi(fields[1])
		if err != nil {
			return 0, nil, fmt.Errorf("prv line %d: %w", lineNo, err)
		}
		cyc, err := strconv.ParseUint(fields[5], 10, 64)
		if err != nil {
			return 0, nil, fmt.Errorf("prv line %d: %w", lineNo, err)
		}
		typ, err := strconv.Atoi(fields[6])
		if err != nil {
			return 0, nil, fmt.Errorf("prv line %d: %w", lineNo, err)
		}
		val, err := strconv.ParseUint(fields[7], 10, 64)
		if err != nil {
			return 0, nil, fmt.Errorf("prv line %d: %w", lineNo, err)
		}
		if cyc < lastCycle {
			return 0, nil, fmt.Errorf("prv line %d: event timestamp %d precedes %d: records must be time-sorted",
				lineNo, cyc, lastCycle)
		}
		lastCycle = cyc
		events = append(events, Event{Cycle: cyc, Hart: hart - 1, Type: typ, Value: val})
	}
	return nHarts, events, sc.Err()
}

// TypeName returns a human-readable name for an event type code.
func TypeName(t int) string {
	switch t {
	case EventL1DMiss:
		return "l1d-miss"
	case EventL1IMiss:
		return "l1i-miss"
	case EventStall:
		return "stall"
	case EventWakeup:
		return "wakeup"
	default:
		return fmt.Sprintf("type%d", t)
	}
}
