package trace

import (
	"bytes"
	"strings"
	"testing"

	"github.com/coyote-sim/coyote/internal/core"
)

func TestWriterCollectsEvents(t *testing.T) {
	w := NewWriter(4)
	w.Event(10, 0, core.TraceL1DMiss, 0x1000)
	w.Event(12, 1, core.TraceL1IMiss, 0x2000)
	w.Event(14, 2, core.TraceStallRAW, 0)
	w.Event(20, 2, core.TraceWakeup, 0)
	if w.Len() != 4 {
		t.Fatalf("Len = %d", w.Len())
	}
	if w.Events()[0].Type != EventL1DMiss || w.Events()[0].Value != 0x1000 {
		t.Errorf("first event = %+v", w.Events()[0])
	}
}

func TestParaverRoundTrip(t *testing.T) {
	w := NewWriter(3)
	w.Event(5, 2, core.TraceL1DMiss, 0xdead00)
	w.Event(1, 0, core.TraceL1IMiss, 0xbeef00)
	w.Event(9, 1, core.TraceStallRAW, 0)

	var buf bytes.Buffer
	if err := w.WritePRV(&buf); err != nil {
		t.Fatal(err)
	}
	nHarts, evs, err := ParsePRV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if nHarts != 3 {
		t.Errorf("nHarts = %d", nHarts)
	}
	if len(evs) != 3 {
		t.Fatalf("events = %d", len(evs))
	}
	// Events come back time-sorted.
	if evs[0].Cycle != 1 || evs[0].Hart != 0 || evs[0].Type != EventL1IMiss ||
		evs[0].Value != 0xbeef00 {
		t.Errorf("ev0 = %+v", evs[0])
	}
	if evs[2].Cycle != 9 || evs[2].Hart != 1 || evs[2].Type != EventStall {
		t.Errorf("ev2 = %+v", evs[2])
	}
}

func TestPRVHeaderDuration(t *testing.T) {
	w := NewWriter(1)
	w.Event(100, 0, core.TraceL1DMiss, 0)
	var buf bytes.Buffer
	if err := w.WritePRV(&buf); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(buf.String(), "\n", 2)[0]
	if !strings.Contains(header, ":101:") {
		t.Errorf("header should carry duration 101: %s", header)
	}
}

func TestPCFAndROW(t *testing.T) {
	w := NewWriter(2)
	var pcf, row bytes.Buffer
	if err := w.WritePCF(&pcf); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteROW(&row); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"EVENT_TYPE", "L1D miss", "90000001"} {
		if !strings.Contains(pcf.String(), want) {
			t.Errorf("pcf missing %q", want)
		}
	}
	if !strings.Contains(row.String(), "LEVEL THREAD SIZE 2") ||
		!strings.Contains(row.String(), "core 1") {
		t.Errorf("row file wrong:\n%s", row.String())
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	if _, _, err := ParsePRV(strings.NewReader("2:1:1:1:1:5:90000001\n")); err == nil {
		t.Error("short record accepted")
	}
	if _, _, err := ParsePRV(strings.NewReader("2:x:1:1:1:5:90000001:1\n")); err == nil {
		t.Error("bad hart accepted")
	}
}

// TestEmptyTraceRoundTrip: a run that produced no events still renders a
// well-formed trace — header with duration 1 (w.last is 0), no records —
// and parses back to zero events.
func TestEmptyTraceRoundTrip(t *testing.T) {
	w := NewWriter(4)
	var buf bytes.Buffer
	if err := w.WritePRV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 1 || !strings.HasPrefix(lines[0], "#Paraver") {
		t.Fatalf("empty trace should be header-only, got %d lines:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], ":1:1(4):") {
		t.Errorf("header should carry duration 1 and 4 harts: %s", lines[0])
	}
	nHarts, evs, err := ParsePRV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if nHarts != 4 || len(evs) != 0 {
		t.Errorf("round trip: nHarts=%d events=%d, want 4 and 0", nHarts, len(evs))
	}
}

// TestSingleEventTrace: the smallest non-empty trace round-trips with the
// header duration derived from that one event.
func TestSingleEventTrace(t *testing.T) {
	w := NewWriter(1)
	w.Event(7, 0, core.TraceL1DMiss, 0x40)
	var buf bytes.Buffer
	if err := w.WritePRV(&buf); err != nil {
		t.Fatal(err)
	}
	if header := strings.SplitN(buf.String(), "\n", 2)[0]; !strings.Contains(header, ":8:") {
		t.Errorf("header should carry duration 8: %s", header)
	}
	nHarts, evs, err := ParsePRV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if nHarts != 1 || len(evs) != 1 {
		t.Fatalf("round trip: nHarts=%d events=%d", nHarts, len(evs))
	}
	if e := evs[0]; e.Cycle != 7 || e.Hart != 0 || e.Type != EventL1DMiss || e.Value != 0x40 {
		t.Errorf("event = %+v", e)
	}
}

// TestParseRejectsNonMonotonic: WritePRV sorts records by time, so a
// timestamp running backwards marks a corrupted trace.
func TestParseRejectsNonMonotonic(t *testing.T) {
	scrambled := "#Paraver (01/01/2021 at 00:00):11:1(1):1:1(1:1)\n" +
		"2:1:1:1:1:10:90000001:64\n" +
		"2:1:1:1:1:5:90000001:128\n"
	_, _, err := ParsePRV(strings.NewReader(scrambled))
	if err == nil {
		t.Fatal("non-monotonic trace accepted")
	}
	if !strings.Contains(err.Error(), "precedes") || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error should name the offense and the line: %v", err)
	}
	// Equal timestamps are legal: many events share a cycle.
	same := "2:1:1:1:1:5:90000001:64\n2:1:1:1:1:5:90000002:64\n"
	if _, _, err := ParsePRV(strings.NewReader(same)); err != nil {
		t.Errorf("equal timestamps rejected: %v", err)
	}
}

func TestTypeName(t *testing.T) {
	if TypeName(EventL1DMiss) != "l1d-miss" || TypeName(123) != "type123" {
		t.Error("TypeName wrong")
	}
}

// Full-system smoke test: simulate, write, parse, check consistency.
func TestEndToEndTrace(t *testing.T) {
	// Local import cycle note: core does not import trace, so we can use
	// both here.
	cfg := core.DefaultConfig(2)
	s, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(2)
	s.Tracer = w
	prog := `
	_start:
		la a0, data
		csrr t0, mhartid
		slli t0, t0, 6
		add a0, a0, t0
		ld t1, 0(a0)
		add t2, t1, t1
		li a7, 93
		li a0, 0
		ecall
	.data
	data: .zero 128
	`
	p, err := asmAssemble(prog)
	if err != nil {
		t.Fatal(err)
	}
	s.LoadProgram(p)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if w.Len() == 0 {
		t.Fatal("no trace events captured")
	}
	var buf bytes.Buffer
	if err := w.WritePRV(&buf); err != nil {
		t.Fatal(err)
	}
	n, evs, err := ParsePRV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || len(evs) != w.Len() {
		t.Errorf("round trip: n=%d events=%d want %d", n, len(evs), w.Len())
	}
}

func TestStateRecordsFromStallWindows(t *testing.T) {
	w := NewWriter(2)
	w.Event(10, 0, core.TraceStallRAW, 0)
	w.Event(50, 0, core.TraceWakeup, 0)
	w.Event(60, 1, core.TraceStallRAW, 0)
	w.Event(61, 1, core.TraceWakeup, 0)
	w.Event(70, 0, core.TraceStallRAW, 0)
	// hart 0's second stall never wakes: no state record for it.
	var buf bytes.Buffer
	if err := w.WritePRV(&buf); err != nil {
		t.Fatal(err)
	}
	states, err := ParsePRVStates(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 2 {
		t.Fatalf("states = %+v, want 2 records", states)
	}
	if states[0].Hart != 0 || states[0].Begin != 10 || states[0].End != 50 ||
		states[0].State != StateStalled {
		t.Errorf("state[0] = %+v", states[0])
	}
	if states[1].Hart != 1 || states[1].Begin != 60 || states[1].End != 61 {
		t.Errorf("state[1] = %+v", states[1])
	}
	// The punctual events still round-trip alongside the states.
	n, evs, err := ParsePRV(bytes.NewReader(buf.Bytes()))
	if err != nil || n != 2 || len(evs) != 5 {
		t.Errorf("events after states: n=%d len=%d err=%v", n, len(evs), err)
	}
}
