package evsim

import (
	"fmt"
	"testing"
)

// benchSchedulePop keeps `depth` events in flight: every executed event
// schedules its replacement `delay` cycles ahead, so each benchmark op is
// one pop plus one push at a steady queue depth. A near delay stays
// inside the calendar ring; a far delay forces the overflow heap and the
// window-slide migration.
func benchSchedulePop(b *testing.B, depth int, delay Cycle) {
	e := NewEngine()
	remaining := b.N
	var fn func(uint64)
	fn = func(uint64) {
		if remaining > 0 {
			remaining--
			e.ScheduleArg(delay, fn, 0)
		}
	}
	for i := 0; i < depth; i++ {
		e.ScheduleArg(delay+Cycle(i), fn, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Drain()
}

// BenchmarkSchedulePop sweeps queue depth × scheduling horizon. The
// depths bracket the simulator's regimes: a few in-flight misses, a busy
// uncore, and a pathological backlog; near (inside the ring) vs far
// (overflow heap) separates the O(1) path from the heap path.
func BenchmarkSchedulePop(b *testing.B) {
	for _, depth := range []int{16, 1024, 65536} {
		for _, h := range []struct {
			name  string
			delay Cycle
		}{
			{"near", 200},             // within bucketWindow
			{"far", 4 * bucketWindow}, // always lands in the overflow heap
		} {
			b.Run(fmt.Sprintf("depth-%d-%s", depth, h.name), func(b *testing.B) {
				benchSchedulePop(b, depth, h.delay)
			})
		}
	}
}

// BenchmarkPortSend measures the allocation-free port path end to end.
func BenchmarkPortSend(b *testing.B) {
	e := NewEngine()
	var sum int
	p := NewPort(e, 3, func(v int) { sum += v })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Send(i)
		if i%64 == 63 {
			e.Drain()
		}
	}
	e.Drain()
}
