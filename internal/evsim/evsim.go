// Package evsim is a small discrete-event simulation kernel playing the
// role Sparta plays in Coyote: hardware is modelled as independent units
// connected by latency-carrying ports, advanced by a time-ordered event
// queue. The Coyote orchestrator (internal/core) interleaves this event
// model with the instruction-by-instruction CPU model, advancing it to the
// current cycle after every simulated instruction slot (paper §III-A).
package evsim

import (
	"container/heap"
	"fmt"
	"sort"
)

// Cycle is a simulation timestamp in clock cycles.
type Cycle = uint64

type event struct {
	when Cycle
	seq  uint64 // FIFO tie-break: events at the same cycle run in schedule order
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine owns the event queue and the simulation clock. Deterministic:
// same schedule calls → same execution order.
type Engine struct {
	now      Cycle
	seq      uint64
	queue    eventHeap
	executed uint64
}

// NewEngine returns an engine at cycle 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() Cycle { return e.now }

// Executed returns the number of events processed so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule queues fn to run delay cycles from now. A delay of 0 runs the
// event within the current AdvanceTo sweep (after already-queued events
// for this cycle).
func (e *Engine) Schedule(delay Cycle, fn func()) {
	e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt queues fn at an absolute cycle. Scheduling in the past is a
// programming error and panics: it would silently corrupt causality.
func (e *Engine) ScheduleAt(when Cycle, fn func()) {
	if when < e.now {
		panic(fmt.Sprintf("evsim: schedule at %d before now %d", when, e.now))
	}
	e.seq++
	heap.Push(&e.queue, event{when: when, seq: e.seq, fn: fn})
}

// NextEventTime reports the timestamp of the earliest queued event.
func (e *Engine) NextEventTime() (Cycle, bool) {
	if len(e.queue) == 0 {
		return 0, false
	}
	return e.queue[0].when, true
}

// AdvanceTo runs every event scheduled at or before target, then sets the
// clock to target. Events may schedule further events; those falling
// within the window run in the same sweep.
func (e *Engine) AdvanceTo(target Cycle) {
	if target < e.now {
		panic(fmt.Sprintf("evsim: advance to %d before now %d", target, e.now))
	}
	for len(e.queue) > 0 && e.queue[0].when <= target {
		ev := heap.Pop(&e.queue).(event)
		e.now = ev.when
		e.executed++
		ev.fn()
	}
	e.now = target
}

// Drain runs every queued event regardless of time and returns the final
// clock value. Useful for quiescing the model at end of simulation.
func (e *Engine) Drain() Cycle {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(event)
		e.now = ev.when
		e.executed++
		ev.fn()
	}
	return e.now
}

// Port is a latency-carrying, typed connection between units: Send(v)
// delivers v to the sink after the port's fixed latency. This mirrors
// Sparta's port/latency idiom and keeps units decoupled.
type Port[T any] struct {
	eng     *Engine
	latency Cycle
	sink    func(T)
	sent    uint64
}

// NewPort wires a port into eng with the given delivery latency and sink.
func NewPort[T any](eng *Engine, latency Cycle, sink func(T)) *Port[T] {
	if sink == nil {
		panic("evsim: nil port sink")
	}
	return &Port[T]{eng: eng, latency: latency, sink: sink}
}

// Send schedules delivery of v after the port latency.
func (p *Port[T]) Send(v T) {
	p.sent++
	p.eng.Schedule(p.latency, func() { p.sink(v) })
}

// SendAfter schedules delivery with extra delay on top of the port latency
// (used to model arbitration or bandwidth backpressure).
func (p *Port[T]) SendAfter(extra Cycle, v T) {
	p.sent++
	p.eng.Schedule(p.latency+extra, func() { p.sink(v) })
}

// Latency returns the port's fixed delivery latency.
func (p *Port[T]) Latency() Cycle { return p.latency }

// Sent returns the number of messages pushed through the port.
func (p *Port[T]) Sent() uint64 { return p.sent }

// Unit is anything that exposes statistics to the report. Units register
// with a Registry so reports are assembled generically, as Sparta does
// with its statistics tree.
type Unit interface {
	Name() string
	Counters() map[string]uint64
}

// Registry collects units for reporting.
type Registry struct {
	units []Unit
}

// Register adds u to the registry.
func (r *Registry) Register(u Unit) { r.units = append(r.units, u) }

// Units returns the registered units in registration order.
func (r *Registry) Units() []Unit { return r.units }

// Snapshot flattens every unit's counters into "unit.counter" → value,
// sorted iteration left to the caller.
func (r *Registry) Snapshot() map[string]uint64 {
	out := make(map[string]uint64)
	for _, u := range r.units {
		for k, v := range u.Counters() {
			out[u.Name()+"."+k] = v
		}
	}
	return out
}

// SortedKeys returns the snapshot keys in lexical order (deterministic
// report output).
func SortedKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
