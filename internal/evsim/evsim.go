// Package evsim is a small discrete-event simulation kernel playing the
// role Sparta plays in Coyote: hardware is modelled as independent units
// connected by latency-carrying ports, advanced by a time-ordered event
// queue. The Coyote orchestrator (internal/core) interleaves this event
// model with the instruction-by-instruction CPU model, advancing it to the
// current cycle after every simulated instruction slot (paper §III-A).
//
// The queue is a monotonic bucketed calendar: a ring of per-cycle FIFO
// buckets covering the next bucketWindow cycles (sized to the common
// NoC + L2 + DRAM latency chain), with a binary-heap overflow lane for
// far-future events. Schedule and pop are O(1) in the steady state, with
// no interface boxing and no per-event allocation — the costs the old
// container/heap queue paid on every operation.
package evsim

import (
	"fmt"
	"math/bits"
	"sort"

	"github.com/coyote-sim/coyote/internal/san"
)

// Cycle is a simulation timestamp in clock cycles.
type Cycle = uint64

// Handle names a callback registered with Engine.RegisterFn. Handles are
// what make the calendar serializable: a closure cannot be written to a
// checkpoint, but a handle can — provided units register their callbacks
// in a deterministic order (which they do: unit construction order is a
// pure function of the Config). Handle 0 means "unregistered".
type Handle uint32

// event is one queued callback. Either fn (a plain closure) or afn+arg
// (the allocation-free variant: a long-lived callback plus a word of
// context travelling inside the event) is set. h, when non-zero, is the
// registered handle for afn — the serializable identity of the callback.
type event struct {
	when Cycle
	seq  uint64 // FIFO tie-break: events at the same cycle run in schedule order
	fn   func()
	afn  func(uint64)
	arg  uint64
	h    Handle
}

func eventLess(a, b *event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

const (
	// bucketWindow is the calendar horizon in cycles. It must be a power
	// of two and should cover the common scheduling distance: the longest
	// single-event hop in the uncore is NoC + L2 miss + DRAM ≲ 512 cycles,
	// so 1024 keeps virtually every event in the O(1) ring. Farther events
	// take the overflow heap and migrate into the ring as time advances.
	bucketWindow = 1024
	bucketMask   = bucketWindow - 1
	occWords     = bucketWindow / 64
)

// Engine owns the event queue and the simulation clock. Deterministic:
// same schedule calls → same execution order.
type Engine struct {
	now      Cycle
	seq      uint64
	executed uint64
	pending  int // total queued events (ring + overflow)

	// Calendar ring: buckets[w & bucketMask] holds the events of cycle w
	// for w in [base, base+bucketWindow). base tracks the clock, so each
	// slot holds events of exactly one cycle. occ is the occupancy bitset
	// used to find the next non-empty bucket in O(bucketWindow/64).
	base   Cycle
	inRing int
	occ    [occWords]uint64
	bucket [bucketWindow][]event

	// ringMinAt memoizes the earliest ring event time so the per-cycle
	// orchestrator poll does not rescan the occupancy bitset while waiting
	// out a long latency (a DRAM round trip polls ~100 times). Enqueues
	// only lower it; it is invalidated when its bucket runs.
	ringMinAt    Cycle
	ringMinValid bool

	// overflow is a hand-rolled binary min-heap on (when, seq) for events
	// at or beyond base+bucketWindow. No container/heap: pushing through
	// the heap.Interface would box every event into an `any`.
	overflow []event

	// fns is the handle registry: fns[h-1] is the callback registered as
	// Handle h. Registration happens at unit construction time, in
	// deterministic order, so a checkpoint written by one engine instance
	// restores correctly into a freshly built one.
	fns []func(uint64)

	san san.Queue
}

// NewEngine returns an engine at cycle 0.
func NewEngine() *Engine {
	e := &Engine{}
	e.san.Init("evsim.queue")
	return e
}

// Now returns the current simulation time.
func (e *Engine) Now() Cycle { return e.now }

// Executed returns the number of events processed so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.pending }

// Schedule queues fn to run delay cycles from now. A delay of 0 runs the
// event within the current AdvanceTo sweep (after already-queued events
// for this cycle).
//
//coyote:allocfree
func (e *Engine) Schedule(delay Cycle, fn func()) {
	e.enqueue(e.now+delay, event{fn: fn})
}

// ScheduleAt queues fn at an absolute cycle. Scheduling in the past is a
// programming error and panics: it would silently corrupt causality.
//
//coyote:allocfree
func (e *Engine) ScheduleAt(when Cycle, fn func()) {
	e.enqueue(when, event{fn: fn})
}

// ScheduleArg queues fn(arg) delay cycles from now without allocating: fn
// is expected to be a long-lived pre-bound callback, and arg (a register
// number, an address, a pool index …) travels inside the event itself.
// This is the steady-state scheduling path of the uncore.
//
//coyote:allocfree
func (e *Engine) ScheduleArg(delay Cycle, fn func(uint64), arg uint64) {
	e.enqueue(e.now+delay, event{afn: fn, arg: arg})
}

// ScheduleArgAt is ScheduleArg at an absolute cycle.
//
//coyote:allocfree
func (e *Engine) ScheduleArgAt(when Cycle, fn func(uint64), arg uint64) {
	e.enqueue(when, event{afn: fn, arg: arg})
}

// RegisterFn registers a long-lived callback and returns its handle.
// Events scheduled through ScheduleArgH with that handle survive
// checkpointing: the handle, not the function pointer, is what gets
// serialized. Call order must be deterministic (it is: all production
// registrations happen during System/Uncore construction, whose order is
// a pure function of the Config).
func (e *Engine) RegisterFn(fn func(uint64)) Handle {
	if fn == nil {
		panic("evsim: RegisterFn(nil)")
	}
	e.fns = append(e.fns, fn)
	return Handle(len(e.fns))
}

// Registered returns the number of registered handles — a cheap
// structural integrity check when restoring a checkpoint (the restoring
// system must have built the exact same units).
func (e *Engine) Registered() int { return len(e.fns) }

// ScheduleArgH is ScheduleArg for a registered callback: fn must be the
// function registered as h. The direct pointer keeps dispatch free of a
// registry lookup; the handle makes the event checkpointable.
//
//coyote:allocfree
func (e *Engine) ScheduleArgH(delay Cycle, fn func(uint64), arg uint64, h Handle) {
	e.enqueue(e.now+delay, event{afn: fn, arg: arg, h: h})
}

// ScheduleArgAtH is ScheduleArgH at an absolute cycle.
//
//coyote:allocfree
func (e *Engine) ScheduleArgAtH(when Cycle, fn func(uint64), arg uint64, h Handle) {
	e.enqueue(when, event{afn: fn, arg: arg, h: h})
}

func (e *Engine) enqueue(when Cycle, ev event) {
	if when < e.now {
		panic(fmt.Sprintf("evsim: schedule at %d before now %d", when, e.now))
	}
	e.san.Schedule(e.now, when)
	e.seq++
	ev.when = when
	ev.seq = e.seq
	e.pending++
	if when < e.base+bucketWindow {
		e.san.RingSlot(e.base, when, bucketWindow)
		slot := int(when) & bucketMask
		e.bucket[slot] = append(e.bucket[slot], ev)
		e.occ[slot>>6] |= 1 << uint(slot&63)
		e.inRing++
		if !e.ringMinValid || when < e.ringMinAt {
			e.ringMinAt, e.ringMinValid = when, true
		}
		return
	}
	e.san.OverflowPush(e.base, when, bucketWindow)
	e.heapPush(ev)
}

// slideTo moves the ring window start to base (the new clock value) and
// migrates overflow events that now fall inside the window. Buckets behind
// the new base are necessarily empty: their events already ran.
func (e *Engine) slideTo(base Cycle) {
	if base <= e.base {
		return
	}
	e.base = base
	for len(e.overflow) > 0 && e.overflow[0].when < base+bucketWindow {
		ev := e.heapPop()
		e.san.RingSlot(e.base, ev.when, bucketWindow)
		slot := int(ev.when) & bucketMask
		b := e.bucket[slot]
		if n := len(b); n > 0 && b[n-1].seq > ev.seq {
			// The bucket already holds events scheduled after this one
			// (they entered the ring directly while this event waited in
			// the overflow lane). Insert by seq to keep FIFO order. Rare.
			i := n
			for i > 0 && b[i-1].seq > ev.seq {
				i--
			}
			b = append(b, event{})
			copy(b[i+1:], b[i:n])
			b[i] = ev
		} else {
			b = append(b, ev)
		}
		e.bucket[slot] = b
		e.occ[slot>>6] |= 1 << uint(slot&63)
		e.inRing++
		if !e.ringMinValid || ev.when < e.ringMinAt { //coyote:mut-survivor equivalent: on ev.when == ringMinAt the assignment rewrites identical values
			e.ringMinAt, e.ringMinValid = ev.when, true
		}
	}
}

// ringMin returns the earliest event time in the ring. Caller guarantees
// inRing > 0. Usually answered from the memoized minimum; scans the
// occupancy bitset from the base slot (wrapping) on a cache miss.
func (e *Engine) ringMin() Cycle {
	if e.ringMinValid {
		return e.ringMinAt
	}
	start := int(e.base) & bucketMask
	w := start >> 6
	word := e.occ[w] &^ (1<<uint(start&63) - 1)
	for i := 0; i <= occWords; i++ {
		if word != 0 {
			slot := w<<6 + bits.TrailingZeros64(word)
			delta := (slot - start + bucketWindow) & bucketMask
			e.ringMinAt, e.ringMinValid = e.base+Cycle(delta), true
			return e.ringMinAt
		}
		w++
		if w == occWords {
			w = 0
		}
		word = e.occ[w]
	}
	panic("evsim: ring occupancy corrupt")
}

// nextTime reports the earliest queued event time. Ring events always
// precede overflow events: the overflow lane only holds events at or
// beyond base+bucketWindow.
func (e *Engine) nextTime() (Cycle, bool) {
	if e.inRing > 0 {
		return e.ringMin(), true
	}
	if len(e.overflow) > 0 {
		return e.overflow[0].when, true
	}
	return 0, false
}

// NextEventTime reports the timestamp of the earliest queued event.
func (e *Engine) NextEventTime() (Cycle, bool) { return e.nextTime() }

// runBucket executes every event in the bucket of the current cycle, in
// seq (schedule) order. Events may append to the same bucket (delay-0
// cascades); the index loop picks them up. The bucket keeps its backing
// array for reuse — the steady state allocates nothing.
func (e *Engine) runBucket(slot int) {
	b := e.bucket[slot]
	for i := 0; i < len(b); i++ {
		ev := &b[i]
		e.san.Pop(e.now, ev.when)
		e.executed++
		e.pending--
		e.inRing--
		if ev.fn != nil {
			ev.fn()
		} else {
			ev.afn(ev.arg)
		}
		b = e.bucket[slot]
	}
	for i := range b {
		b[i] = event{} // drop closure references
	}
	e.bucket[slot] = b[:0]
	e.occ[slot>>6] &^= 1 << uint(slot&63)
	if e.ringMinValid && e.ringMinAt <= e.now {
		// The memoized minimum pointed at (or before) the bucket that just
		// drained — including delay-0 cascades enqueued mid-run. Rescan
		// lazily on the next ringMin call.
		e.ringMinValid = false
	}
}

// AdvanceTo runs every event scheduled at or before target, then sets the
// clock to target. Events may schedule further events; those falling
// within the window run in the same sweep.
//
//coyote:allocfree
func (e *Engine) AdvanceTo(target Cycle) {
	if target < e.now {
		panic(fmt.Sprintf("evsim: advance to %d before now %d", target, e.now))
	}
	for e.pending > 0 {
		t, _ := e.nextTime()
		if t > target {
			break
		}
		e.now = t
		e.slideTo(t)
		e.runBucket(int(t) & bucketMask)
	}
	e.now = target
	e.slideTo(target)
	e.san.Counts(e.now, e.pending, e.inRing, len(e.overflow))
}

// Drain runs every queued event regardless of time and returns the final
// clock value. Useful for quiescing the model at end of simulation.
//
//coyote:allocfree
func (e *Engine) Drain() Cycle {
	for e.pending > 0 {
		t, _ := e.nextTime()
		e.now = t
		e.slideTo(t)
		e.runBucket(int(t) & bucketMask)
	}
	e.san.Counts(e.now, e.pending, e.inRing, len(e.overflow))
	return e.now
}

// heapPush and heapPop maintain the overflow lane: a plain binary min-heap
// on (when, seq) over a reused slice.
func (e *Engine) heapPush(ev event) {
	e.overflow = append(e.overflow, ev)
	h := e.overflow
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if eventLess(&h[p], &h[i]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func (e *Engine) heapPop() event {
	h := e.overflow
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // drop closure references
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && eventLess(&h[l], &h[s]) {
			s = l
		}
		if r < n && eventLess(&h[r], &h[s]) {
			s = r
		}
		if s == i {
			break
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
	e.overflow = h
	return top
}

// Port is a latency-carrying, typed connection between units: Send(v)
// delivers v to the sink after the port's fixed latency. This mirrors
// Sparta's port/latency idiom and keeps units decoupled.
//
// Send is allocation-free in the steady state: values queue in a reused
// FIFO ring inside the port and a single pre-bound delivery callback is
// scheduled per message. This is sound because every Send uses the same
// fixed latency, so deliveries fire in send order. SendAfter takes a
// per-message extra delay and therefore still allocates a closure.
type Port[T any] struct {
	eng     *Engine
	latency Cycle
	sink    func(T)
	sent    uint64

	fifo    []T
	head    int
	deliver func(uint64)
	h       Handle
}

// NewPort wires a port into eng with the given delivery latency and sink.
// The delivery callback is registered with the engine so in-flight port
// messages survive checkpointing.
func NewPort[T any](eng *Engine, latency Cycle, sink func(T)) *Port[T] {
	if sink == nil {
		panic("evsim: nil port sink")
	}
	p := &Port[T]{eng: eng, latency: latency, sink: sink}
	p.deliver = func(uint64) {
		v := p.fifo[p.head]
		var zero T
		p.fifo[p.head] = zero
		p.head++
		if p.head == len(p.fifo) {
			p.fifo = p.fifo[:0]
			p.head = 0
		}
		p.sink(v)
	}
	p.h = eng.RegisterFn(p.deliver)
	return p
}

// Send schedules delivery of v after the port latency. Allocation-free in
// the steady state.
//
//coyote:allocfree
func (p *Port[T]) Send(v T) {
	p.sent++
	p.fifo = append(p.fifo, v)
	p.eng.ScheduleArgH(p.latency, p.deliver, 0, p.h)
}

// SendAfter schedules delivery with extra delay on top of the port latency
// (used to model arbitration or bandwidth backpressure). Unlike Send it
// allocates: the per-message delay breaks the FIFO delivery invariant the
// allocation-free path relies on.
func (p *Port[T]) SendAfter(extra Cycle, v T) {
	p.sent++
	p.eng.Schedule(p.latency+extra, func() { p.sink(v) })
}

// Latency returns the port's fixed delivery latency.
func (p *Port[T]) Latency() Cycle { return p.latency }

// Sent returns the number of messages pushed through the port.
func (p *Port[T]) Sent() uint64 { return p.sent }

// Pending returns the values queued for delivery, oldest first — the
// port-local half of a checkpoint (the matching delivery events live in
// the engine's calendar). Read-only view into the FIFO.
func (p *Port[T]) Pending() []T { return p.fifo[p.head:] }

// RestorePending reloads the FIFO from a checkpoint. It only reloads the
// values: the delivery events themselves are restored by the engine's
// calendar restore, which resolves this port's registered handle.
func (p *Port[T]) RestorePending(vs []T, sent uint64) {
	p.fifo = append(p.fifo[:0], vs...)
	p.head = 0
	p.sent = sent
}

// Unit is anything that exposes statistics to the report. Units register
// with a Registry so reports are assembled generically, as Sparta does
// with its statistics tree.
type Unit interface {
	Name() string
	Counters() map[string]uint64
}

// Registry collects units for reporting.
type Registry struct {
	units []Unit
}

// Register adds u to the registry.
func (r *Registry) Register(u Unit) { r.units = append(r.units, u) }

// Units returns the registered units in registration order.
func (r *Registry) Units() []Unit { return r.units }

// Snapshot flattens every unit's counters into "unit.counter" → value,
// sorted iteration left to the caller.
func (r *Registry) Snapshot() map[string]uint64 {
	out := make(map[string]uint64)
	for _, u := range r.units {
		//coyote:mapiter-ok copies pairs into another map; destination is order-independent and callers sort keys
		for k, v := range u.Counters() {
			out[u.Name()+"."+k] = v
		}
	}
	return out
}

// SortedKeys returns the snapshot keys in lexical order (deterministic
// report output).
func SortedKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	//coyote:mapiter-ok keys are sorted immediately below, erasing visit order
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
