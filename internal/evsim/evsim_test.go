package evsim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleAndAdvance(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(5, func() { order = append(order, 0) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.AdvanceTo(15)
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 15 {
		t.Errorf("Now() = %d, want 15", e.Now())
	}
	e.AdvanceTo(25)
	if len(order) != 3 {
		t.Fatalf("late event not run: %v", order)
	}
}

func TestSameCycleFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(3, func() { order = append(order, i) })
	}
	e.AdvanceTo(3)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-cycle events out of order: %v", order)
		}
	}
}

func TestCascadedEventsWithinWindow(t *testing.T) {
	e := NewEngine()
	hits := 0
	e.Schedule(1, func() {
		hits++
		e.Schedule(1, func() { hits++ }) // lands at cycle 2, inside window
	})
	e.AdvanceTo(5)
	if hits != 2 {
		t.Errorf("hits = %d, want 2", hits)
	}
}

func TestZeroDelayEventRunsInSweep(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(2, func() { e.Schedule(0, func() { ran = true }) })
	e.AdvanceTo(2)
	if !ran {
		t.Error("zero-delay cascade did not run")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.AdvanceTo(10)
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past should panic")
		}
	}()
	e.ScheduleAt(5, func() {})
}

func TestAdvancePastPanics(t *testing.T) {
	e := NewEngine()
	e.AdvanceTo(10)
	defer func() {
		if recover() == nil {
			t.Error("advancing backwards should panic")
		}
	}()
	e.AdvanceTo(5)
}

func TestNextEventTime(t *testing.T) {
	e := NewEngine()
	if _, ok := e.NextEventTime(); ok {
		t.Error("empty engine should have no next event")
	}
	e.Schedule(7, func() {})
	if when, ok := e.NextEventTime(); !ok || when != 7 {
		t.Errorf("NextEventTime = %d,%v", when, ok)
	}
}

func TestDrain(t *testing.T) {
	e := NewEngine()
	n := 0
	e.Schedule(100, func() { n++ })
	e.Schedule(50, func() { n++ })
	final := e.Drain()
	if n != 2 || final != 100 {
		t.Errorf("drain: n=%d final=%d", n, final)
	}
	if e.Executed() != 2 {
		t.Errorf("Executed() = %d", e.Executed())
	}
}

// Property: events always fire in nondecreasing time order regardless of
// schedule order.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var fired []Cycle
		for _, d := range delays {
			d := Cycle(d)
			e.Schedule(d, func() { fired = append(fired, e.Now()) })
		}
		e.Drain()
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) &&
			len(fired) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: interleaved AdvanceTo windows process exactly the events due.
func TestWindowedAdvanceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	e := NewEngine()
	fired := make(map[Cycle]int)
	total := 0
	for i := 0; i < 500; i++ {
		d := Cycle(rng.Intn(1000))
		when := e.Now() + d
		e.ScheduleAt(when, func() { fired[when]++ })
		total++
		if i%10 == 9 {
			e.AdvanceTo(e.Now() + Cycle(rng.Intn(100)))
			for when := range fired {
				if when > e.Now() {
					t.Fatalf("event at %d fired before window %d", when, e.Now())
				}
			}
		}
	}
	e.Drain()
	n := 0
	for _, c := range fired {
		n += c
	}
	if n != total {
		t.Errorf("fired %d events, scheduled %d", n, total)
	}
}

func TestPortDeliversAfterLatency(t *testing.T) {
	e := NewEngine()
	var got []string
	p := NewPort[string](e, 4, func(s string) { got = append(got, s) })
	p.Send("a")
	e.AdvanceTo(3)
	if len(got) != 0 {
		t.Error("delivered too early")
	}
	e.AdvanceTo(4)
	if len(got) != 1 || got[0] != "a" {
		t.Errorf("got %v", got)
	}
	if p.Latency() != 4 || p.Sent() != 1 {
		t.Errorf("port metadata wrong: lat=%d sent=%d", p.Latency(), p.Sent())
	}
}

func TestPortSendAfter(t *testing.T) {
	e := NewEngine()
	var at Cycle
	p := NewPort[int](e, 2, func(int) { at = e.Now() })
	p.SendAfter(3, 1)
	e.Drain()
	if at != 5 {
		t.Errorf("delivered at %d, want 5", at)
	}
}

func TestNilSinkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil sink should panic")
		}
	}()
	NewPort[int](NewEngine(), 1, nil)
}

type fakeUnit struct{ name string }

func (f fakeUnit) Name() string                { return f.name }
func (f fakeUnit) Counters() map[string]uint64 { return map[string]uint64{"x": 1} }

func TestRegistrySnapshot(t *testing.T) {
	var r Registry
	r.Register(fakeUnit{"a"})
	r.Register(fakeUnit{"b"})
	snap := r.Snapshot()
	if snap["a.x"] != 1 || snap["b.x"] != 1 {
		t.Errorf("snapshot = %v", snap)
	}
	keys := SortedKeys(snap)
	if len(keys) != 2 || keys[0] != "a.x" {
		t.Errorf("keys = %v", keys)
	}
	if len(r.Units()) != 2 {
		t.Errorf("Units() = %v", r.Units())
	}
}
