package evsim

import (
	"testing"

	"github.com/coyote-sim/coyote/internal/san"
)

// skipUnderSan skips zero-alloc pins in the coyotesan build: the
// sanitizer's shadow state is allowed to allocate.
func skipUnderSan(t *testing.T) {
	t.Helper()
	if san.Enabled {
		t.Skip("coyotesan build: the zero-alloc contract is a default-build property")
	}
}

// The engine's contract for the simulator hot path: once the ring
// buckets, overflow heap and port FIFOs have grown to their working-set
// size, scheduling and draining events allocates nothing. Warm-up must
// march the clock through at least one full ring wrap so every calendar
// slot has grown its bucket to the run's working size.

func warmRing(e *Engine, run func()) {
	end := e.Now() + 3*bucketWindow
	for i := 0; i < 32 || e.Now() < end; i++ {
		run()
	}
}

func TestScheduleNearHorizonNoAllocs(t *testing.T) {
	skipUnderSan(t)
	e := NewEngine()
	fn := func(uint64) {}
	warm := func() {
		for i := 0; i < 256; i++ {
			e.ScheduleArg(Cycle(i%500), fn, 0)
		}
		e.Drain()
	}
	warmRing(e, warm)
	if allocs := testing.AllocsPerRun(50, warm); allocs != 0 {
		t.Errorf("near-horizon schedule+drain: %.1f allocs/run, want 0", allocs)
	}
}

func TestScheduleFarHorizonNoAllocs(t *testing.T) {
	skipUnderSan(t)
	e := NewEngine()
	fn := func(uint64) {}
	warm := func() {
		for i := 0; i < 256; i++ {
			// Far beyond the bucket window: exercises the overflow heap
			// and the window slide that migrates events back into buckets.
			e.ScheduleArg(Cycle(2000+i*37), fn, 0)
		}
		e.Drain()
	}
	warmRing(e, warm)
	if allocs := testing.AllocsPerRun(50, warm); allocs != 0 {
		t.Errorf("far-horizon schedule+drain: %.1f allocs/run, want 0", allocs)
	}
}

func TestPortSendNoAllocs(t *testing.T) {
	skipUnderSan(t)
	e := NewEngine()
	n := 0
	p := NewPort(e, 3, func(v int) { n += v })
	warm := func() {
		for i := 0; i < 64; i++ {
			p.Send(i)
		}
		e.Drain()
	}
	warmRing(e, warm)
	if allocs := testing.AllocsPerRun(50, warm); allocs != 0 {
		t.Errorf("port send+drain: %.1f allocs/run, want 0", allocs)
	}
}
