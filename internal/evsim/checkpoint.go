package evsim

import (
	"fmt"
	"sort"

	"github.com/coyote-sim/coyote/internal/ckpt"
)

// Calendar serialization.
//
// A pending event is serializable iff it was scheduled through one of the
// handle-carrying entry points (ScheduleArgH/ScheduleArgAtH, or a Port
// send): the checkpoint stores (when, seq, handle, arg) and the restoring
// engine resolves the handle against its own registry, which matches
// because unit construction — and therefore registration order — is a
// pure function of the Config. Plain closures (Schedule/ScheduleArg
// without a handle) cannot be serialized; every production scheduling
// path in the simulator uses handles, so finding one pending at a
// checkpoint is an error, not a silent drop.
//
// Restored events keep their original seq numbers and the engine's seq
// counter resumes past them, so FIFO tie-breaking — and therefore every
// subsequent event ordering — is bit-identical to the uninterrupted run.

// Fn returns the registered callback for h, or nil for the zero Handle.
// Restore paths use it to turn a checkpointed handle back into the
// function pointer it names.
func (e *Engine) Fn(h Handle) func(uint64) {
	if h == 0 {
		return nil
	}
	return e.fns[h-1]
}

// eventRecord is the serializable form of one pending event.
type eventRecord struct {
	when Cycle
	seq  uint64
	h    Handle
	arg  uint64
}

// Checkpoint writes the engine's clock and pending calendar to w.
func (e *Engine) Checkpoint(w *ckpt.Writer) error {
	records := make([]eventRecord, 0, e.pending)
	collect := func(ev *event) error {
		if ev.h == 0 {
			return fmt.Errorf("evsim: pending event at cycle %d has no registered handle (scheduled via a plain closure?)", ev.when)
		}
		records = append(records, eventRecord{when: ev.when, seq: ev.seq, h: ev.h, arg: ev.arg})
		return nil
	}
	for slot := range e.bucket {
		for i := range e.bucket[slot] {
			if err := collect(&e.bucket[slot][i]); err != nil {
				return err
			}
		}
	}
	for i := range e.overflow {
		if err := collect(&e.overflow[i]); err != nil {
			return err
		}
	}
	sort.Slice(records, func(i, j int) bool {
		if records[i].when != records[j].when {
			return records[i].when < records[j].when
		}
		return records[i].seq < records[j].seq
	})

	w.U64(e.now)
	w.U64(e.seq)
	w.U64(e.executed)
	w.U64(uint64(len(e.fns))) // registry size: structural integrity check
	w.U64(uint64(len(records)))
	for _, rec := range records {
		w.U64(rec.when)
		w.U64(rec.seq)
		w.U32(uint32(rec.h))
		w.U64(rec.arg)
	}
	return nil
}

// Restore reloads clock and calendar from r into a freshly constructed
// engine whose units (and therefore handle registry) match the
// checkpointing one. Restored events dispatch through the registry.
func (e *Engine) Restore(r *ckpt.Reader) error {
	now := r.U64()
	seq := r.U64()
	executed := r.U64()
	nFns := r.U64()
	nRec := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if nFns != uint64(len(e.fns)) {
		return fmt.Errorf("evsim: checkpoint has %d registered callbacks, this engine has %d (config/topology mismatch)", nFns, len(e.fns))
	}
	if e.pending != 0 {
		return fmt.Errorf("evsim: restore into an engine with %d pending events", e.pending)
	}

	e.now = now
	e.base = now
	e.seq = seq
	e.executed = executed
	e.ringMinValid = false

	var lastWhen, lastSeq uint64
	for i := uint64(0); i < nRec; i++ {
		when := r.U64()
		evSeq := r.U64()
		h := Handle(r.U32())
		arg := r.U64()
		if err := r.Err(); err != nil {
			return err
		}
		if h == 0 || uint64(h) > nFns {
			return fmt.Errorf("evsim: checkpoint event %d has invalid handle %d", i, h)
		}
		if when < now {
			return fmt.Errorf("evsim: checkpoint event at cycle %d precedes the checkpoint clock %d", when, now)
		}
		if evSeq > seq {
			return fmt.Errorf("evsim: checkpoint event seq %d exceeds the engine seq counter %d", evSeq, seq)
		}
		if i > 0 && (when < lastWhen || (when == lastWhen && evSeq <= lastSeq)) {
			return fmt.Errorf("evsim: checkpoint events out of (when, seq) order at record %d", i)
		}
		lastWhen, lastSeq = when, evSeq

		ev := event{when: when, seq: evSeq, afn: e.fns[h-1], arg: arg, h: h}
		e.san.Schedule(e.now, when)
		e.pending++
		if when < e.base+bucketWindow {
			// Records arrive sorted by (when, seq), so appends within one
			// bucket preserve seq order — the invariant runBucket relies on.
			e.san.RingSlot(e.base, when, bucketWindow)
			slot := int(when) & bucketMask
			e.bucket[slot] = append(e.bucket[slot], ev)
			e.occ[slot>>6] |= 1 << uint(slot&63)
			e.inRing++
		} else {
			e.san.OverflowPush(e.base, when, bucketWindow)
			e.heapPush(ev)
		}
	}
	e.san.Counts(e.now, e.pending, e.inRing, len(e.overflow))
	return nil
}
