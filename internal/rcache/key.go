// Package rcache implements a content-addressed, persistent cache of
// simulation results plus request coalescing for the sweep engine.
//
// The determinism the simulator enforces in CI — bit-identical committed
// state for any worker count and any interleave quantum (the golden
// matrix of golden_workers_test.go) — is what makes caching *sound*:
// an identical canonical key implies an identical Result, so serving a
// repeat design point from the cache is indistinguishable from
// re-simulating it. A canonical key is the SHA-256 of a versioned,
// explicit, field-by-field encoding of
//
//	(SchemaVersion, kernel name, assembled-program hash,
//	 canonicalized Params, canonicalized Config minus
//	 execution-strategy fields)
//
// Execution-strategy fields are *excluded* from the key on purpose,
// each backed by a CI-enforced proof that it cannot change committed
// results:
//
//   - Config.Workers            — golden matrix Workers ∈ {1,2,3,NumCPU}
//   - Config.InterleaveQuantum  — TestWorkersInterleaveMatrix {1,2,8,64}
//   - Config.FastForward        — determinism golden test incl. FastForward
//   - Hart.BlockMaxLen          — superblock cap, timing-neutral by design
//   - Hart.DisableBlockCache    — reference engine diffed bit-exact
//   - Config.CheckpointAt       — checkpoint golden suite proves stop-at-C
//   - restore + run-to-end is bit-identical to an uninterrupted run
//
// Everything else in Config is semantics-affecting and hashed. Whenever
// a change lands that alters simulated results for an unchanged key
// (new Config field, kernel source edit is covered by the program hash,
// timing-model fix, stats change), SchemaVersion MUST be bumped — the
// key-stability golden test (testdata/rcache/keys.golden) and the
// field-set guard test exist to force that conversation in review.
package rcache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"sync"

	"github.com/coyote-sim/coyote/internal/asm"
	"github.com/coyote-sim/coyote/internal/cache"
	"github.com/coyote-sim/coyote/internal/core"
	"github.com/coyote-sim/coyote/internal/kernels"
)

// SchemaVersion versions the canonical key encoding AND the simulator
// semantics it stands for. Bump it whenever either changes: a new or
// renamed Config/Params field, a different canonicalization, or any
// change that makes the simulator produce different committed results
// for a key that would hash the same. Stale on-disk entries are simply
// never found again (the version is part of the directory layout), so a
// bump is always safe and never requires a manual cache flush.
const SchemaVersion = 2

// ExcludedConfigFields is the authoritative list of execution-strategy
// Config fields deliberately omitted from the canonical key, as dotted
// paths relative to core.Config. Three things must stay in sync — this
// declaration, the fields CanonicalBytes actually skips, and the
// determinism proofs in the package comment — and the coyotelint
// keytaint analyzer cross-checks the first two against each other and
// against its own source list on every CI run. Adding a field here
// (or removing one) changes which configs share a key: bump
// SchemaVersion and regenerate testdata/rcache/keys.golden.
var ExcludedConfigFields = []string{
	"Workers",
	"InterleaveQuantum",
	"FastForward",
	"Hart.BlockMaxLen",
	"Hart.DisableBlockCache",
	"CheckpointAt",
}

// Key is the canonical content address of one simulation point.
type Key [sha256.Size]byte

// String renders the key as lowercase hex — the on-disk blob name.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Short returns an abbreviated key for log lines.
func (k Key) Short() string { return hex.EncodeToString(k[:6]) }

// KeyForPoint computes the canonical key of (kernel, params, config).
// Params and Config are canonicalized first — defaults filled, derived
// fields computed — so that e.g. Params{Seed: 0} and Params{Seed: 42}
// (which run identically) hash identically too.
func KeyForPoint(kernel string, p kernels.Params, cfg core.Config) (Key, error) {
	ph, err := programHash(kernel)
	if err != nil {
		return Key{}, err
	}
	if p.Cores == 0 {
		p.Cores = cfg.Cores
	}
	p = p.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return Key{}, fmt.Errorf("rcache: invalid config: %w", err)
	}
	return sha256.Sum256(CanonicalBytes(kernel, ph, p, cfg)), nil
}

// CanonicalBytes builds the deterministic pre-image a Key hashes. The
// encoding is an explicit, fixed-order `name=value` line per field —
// no reflection, no maps, no JSON — so it is independent of struct
// field order, JSON tag order and map iteration by construction, and
// the mapiter/floatorder lint lanes apply to it like to any simulator
// code. p and cfg must already be canonicalized (see KeyForPoint).
func CanonicalBytes(kernel string, progHash [sha256.Size]byte, p kernels.Params, cfg core.Config) []byte {
	var e enc
	e.u64("schema", SchemaVersion)
	e.str("kernel", kernel)
	e.hex("prog", progHash[:])

	e.i64("params.n", int64(p.N))
	e.i64("params.cores", int64(p.Cores))
	e.f64("params.density", p.Density)
	e.i64("params.seed", p.Seed)

	e.i64("cfg.cores", int64(cfg.Cores))
	e.i64("cfg.corespertile", int64(cfg.CoresPerTile))
	e.u64("cfg.maxcycles", cfg.MaxCycles)
	e.u64("cfg.stacktop", cfg.StackTop)
	e.u64("cfg.stacksize", cfg.StackSize)
	// Excluded execution-strategy fields (see package comment):
	// InterleaveQuantum, Workers, FastForward, CheckpointAt.

	h := cfg.Hart
	e.u64("hart.vlenbits", uint64(h.VLenBits))
	e.u64("hart.vectorlanes", uint64(h.VectorLanes))
	e.cacheCfg("hart.l1i", h.L1I)
	e.cacheCfg("hart.l1d", h.L1D)
	e.bool("hart.mcpuoffload", h.MCPUOffload)
	// Excluded: BlockMaxLen, DisableBlockCache.

	u := cfg.Uncore
	e.i64("uncore.tiles", int64(u.Tiles))
	e.i64("uncore.bankspertile", int64(u.BanksPerTile))
	e.cacheCfg("uncore.l2", u.L2)
	e.bool("uncore.l2shared", u.L2Shared)
	e.i64("uncore.mapping", int64(u.Mapping))
	e.u64("uncore.l2hitlatency", u.L2HitLatency)
	e.u64("uncore.l2misslatency", u.L2MissLatency)
	e.i64("uncore.l2mshrs", int64(u.L2MSHRs))
	e.u64("uncore.noclatency", u.NoCLatency)
	e.u64("uncore.locallatency", u.LocalLatency)
	e.i64("uncore.memctrls", int64(u.MemCtrls))
	e.u64("uncore.memlatency", u.MemLatency)
	e.i64("uncore.membytespercyc", int64(u.MemBytesPerCyc))
	e.bool("uncore.llcenable", u.LLCEnable)
	e.cacheCfg("uncore.llc", u.LLC)
	e.u64("uncore.llchitlatency", u.LLCHitLatency)
	e.i64("uncore.prefetchdepth", int64(u.PrefetchDepth))
	e.u64("uncore.memrowbits", uint64(u.MemRowBits))
	e.u64("uncore.memrowhitlat", u.MemRowHitLat)
	e.i64("uncore.membanks", int64(u.MemBanks))

	return e.b
}

// enc accumulates `name=value\n` lines. Field names are fixed
// identifiers and values are rendered unambiguously (decimal, 0/1,
// quoted strings, hex), so the byte stream parses uniquely.
type enc struct{ b []byte }

func (e *enc) line(name, value string) {
	e.b = append(e.b, name...)
	e.b = append(e.b, '=')
	e.b = append(e.b, value...)
	e.b = append(e.b, '\n')
}

func (e *enc) u64(name string, v uint64) { e.line(name, fmt.Sprintf("%d", v)) }
func (e *enc) i64(name string, v int64)  { e.line(name, fmt.Sprintf("%d", v)) }
func (e *enc) str(name, v string)        { e.line(name, fmt.Sprintf("%q", v)) }
func (e *enc) hex(name string, v []byte) { e.line(name, hex.EncodeToString(v)) }

// f64 encodes the exact bit pattern: two floats hash equal iff they are
// the same IEEE-754 value, with no formatting round-trip in between.
func (e *enc) f64(name string, v float64) {
	e.line(name, fmt.Sprintf("%016x", math.Float64bits(v)))
}

func (e *enc) bool(name string, v bool) {
	if v {
		e.line(name, "1")
	} else {
		e.line(name, "0")
	}
}

func (e *enc) cacheCfg(name string, c cache.Config) {
	e.i64(name+".sizebytes", int64(c.SizeBytes))
	e.i64(name+".ways", int64(c.Ways))
	e.i64(name+".linebytes", int64(c.LineBytes))
	e.bool(name+".writeback", c.WriteBack)
}

// progHashes memoizes per-kernel program hashes: kernel sources are
// process-constant, so each kernel is assembled at most once per
// process for key computation.
var progHashes sync.Map // kernel name -> [sha256.Size]byte

// programHash assembles the named kernel and hashes the loadable image
// (bases, text, data, entry and the sorted symbol table). Any edit to a
// kernel's source therefore changes every key derived from it — kernel
// code is part of the content address, not trusted by name.
//
//coyote:globalmut-ok progHashes memoizes a pure function of process-constant kernel sources; concurrent sweeps store identical bytes in any order
func programHash(kernel string) ([sha256.Size]byte, error) {
	if h, ok := progHashes.Load(kernel); ok {
		return h.([sha256.Size]byte), nil
	}
	k, err := kernels.Get(kernel)
	if err != nil {
		return [sha256.Size]byte{}, err
	}
	prog, err := asm.Assemble(k.Source)
	if err != nil {
		return [sha256.Size]byte{}, fmt.Errorf("rcache: assembling %s: %w", kernel, err)
	}
	h := HashProgram(prog)
	progHashes.Store(kernel, h)
	return h, nil
}

// HashProgram content-addresses an assembled program image. The symbol
// map is hashed in sorted-key order so the digest is independent of map
// iteration order.
func HashProgram(p *asm.Program) [sha256.Size]byte {
	var e enc
	e.u64("textbase", p.TextBase)
	e.hex("text", p.Text)
	e.u64("database", p.DataBase)
	e.hex("data", p.Data)
	e.u64("entry", p.Entry)
	syms := make([]string, 0, len(p.Symbols))
	//coyote:mapiter-ok keys are sorted immediately below, erasing visit order
	for name := range p.Symbols {
		syms = append(syms, name)
	}
	sort.Strings(syms)
	for _, name := range syms {
		e.u64("sym."+name, p.Symbols[name])
	}
	return sha256.Sum256(e.b)
}
