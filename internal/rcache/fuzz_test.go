package rcache

import (
	"bytes"
	"os"
	"testing"

	"github.com/coyote-sim/coyote/internal/core"
	"github.com/coyote-sim/coyote/internal/kernels"
)

// keyMutator perturbs one dimension of a point. execStrategy mutators
// are the fields the golden determinism matrix proves result-invariant:
// they must NOT change the key. All others MUST.
type keyMutator struct {
	name         string
	execStrategy bool
	apply        func(*core.Config, *kernels.Params)
}

var keyMutators = []keyMutator{
	{"params.N", false, func(c *core.Config, p *kernels.Params) { p.N += 8 }},
	{"params.Seed", false, func(c *core.Config, p *kernels.Params) { p.Seed += 1000 }},
	{"params.Density", false, func(c *core.Config, p *kernels.Params) { p.Density = 0.375 }},
	{"MaxCycles", false, func(c *core.Config, p *kernels.Params) { c.MaxCycles += 999 }},
	{"StackSize", false, func(c *core.Config, p *kernels.Params) { c.StackSize *= 2 }},
	{"L1D.SizeBytes", false, func(c *core.Config, p *kernels.Params) { c.Hart.L1D.SizeBytes *= 2 }},
	{"L2MSHRs", false, func(c *core.Config, p *kernels.Params) { c.Uncore.L2MSHRs++ }},
	{"NoCLatency", false, func(c *core.Config, p *kernels.Params) { c.Uncore.NoCLatency += 5 }},
	{"MemLatency", false, func(c *core.Config, p *kernels.Params) { c.Uncore.MemLatency += 11 }},
	{"LLCEnable", false, func(c *core.Config, p *kernels.Params) { c.Uncore.LLCEnable = !c.Uncore.LLCEnable }},
	{"L2Shared", false, func(c *core.Config, p *kernels.Params) { c.Uncore.L2Shared = !c.Uncore.L2Shared }},
	{"Mapping", false, func(c *core.Config, p *kernels.Params) { c.Uncore.Mapping ^= 1 }},
	{"PrefetchDepth", false, func(c *core.Config, p *kernels.Params) { c.Uncore.PrefetchDepth += 2 }},
	{"MCPUOffload", false, func(c *core.Config, p *kernels.Params) { c.Hart.MCPUOffload = !c.Hart.MCPUOffload }},
	{"Workers", true, func(c *core.Config, p *kernels.Params) { c.Workers += 3 }},
	{"InterleaveQuantum", true, func(c *core.Config, p *kernels.Params) { c.InterleaveQuantum += 7 }},
	{"FastForward", true, func(c *core.Config, p *kernels.Params) { c.FastForward = !c.FastForward }},
	{"CheckpointAt", true, func(c *core.Config, p *kernels.Params) { c.CheckpointAt += 1000 }},
	{"BlockMaxLen", true, func(c *core.Config, p *kernels.Params) { c.Hart.BlockMaxLen = 16 }},
	{"DisableBlockCache", true, func(c *core.Config, p *kernels.Params) { c.Hart.DisableBlockCache = !c.Hart.DisableBlockCache }},
}

// FuzzCacheRoundTrip drives random (kernel, config, seed) points
// through the three safety properties of the cache:
//
//  1. round trip — store → load returns the byte-identical Result;
//  2. key sensitivity — mutating one semantics-affecting field changes
//     the canonical key, while execution-strategy fields never do;
//  3. corruption — any single-byte flip or truncation of the on-disk
//     blob is detected on load; the cache can miss, never lie.
func FuzzCacheRoundTrip(f *testing.F) {
	f.Add(byte(0), byte(0), int64(1), uint16(0))
	f.Add(byte(1), byte(3), int64(42), uint16(77))
	f.Add(byte(2), byte(14), int64(7), uint16(300))  // MCPUOffload mutator
	f.Add(byte(3), byte(15), int64(9), uint16(512))  // Workers: exec-strategy
	f.Add(byte(4), byte(18), int64(11), uint16(40))  // DisableBlockCache: exec-strategy
	f.Add(byte(5), byte(9), int64(-3), uint16(8191)) // LLC flip, deep flip offset
	f.Fuzz(func(t *testing.T, kSel, mutSel byte, seed int64, flip uint16) {
		names := kernels.Names()
		kernel := names[int(kSel)%len(names)]
		cores := 1 << (int(kSel) % 3) // 1, 2, 4
		cfg := core.DefaultConfig(cores)
		p := kernels.Params{N: 16 + int(uint64(seed)%64), Seed: seed}

		key, err := KeyForPoint(kernel, p, cfg)
		if err != nil {
			t.Fatalf("key for valid point: %v", err)
		}

		// 1. Round trip through the disk tier.
		s, err := OpenDisk(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		want := Normalize(fakeResult(seed))
		if err := s.Store(key, want); err != nil {
			t.Fatal(err)
		}
		got, err := s.Load(key)
		if err != nil {
			t.Fatal(err)
		}
		wb, err := marshalResult(want)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := marshalResult(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wb, gb) {
			t.Fatalf("round trip changed the result:\n got %s\nwant %s", gb, wb)
		}

		// 2. Key sensitivity under a single-field mutation.
		mut := keyMutators[int(mutSel)%len(keyMutators)]
		cfg2, p2 := cfg, p
		mut.apply(&cfg2, &p2)
		key2, err := KeyForPoint(kernel, p2, cfg2)
		if err != nil {
			t.Fatalf("key after %s mutation: %v", mut.name, err)
		}
		if mut.execStrategy && key2 != key {
			t.Fatalf("execution-strategy field %s changed the key", mut.name)
		}
		if !mut.execStrategy && key2 == key {
			t.Fatalf("semantics-affecting field %s did NOT change the key", mut.name)
		}

		// 3. Corruption: flip one byte (position and XOR pattern from the
		// fuzzer), then truncate — both must be detected, never served.
		path := s.path(key)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		pos := int(flip) % len(data)
		pat := byte(flip>>8) | 1 // never a zero XOR (that would be a no-op)
		corrupted := append([]byte(nil), data...)
		corrupted[pos] ^= pat
		if err := os.WriteFile(path, corrupted, 0o644); err != nil {
			t.Fatal(err)
		}
		if r, err := s.Load(key); err == nil {
			rb, _ := marshalResult(r)
			t.Fatalf("flipped byte %d (xor %#x) not detected; served %s", pos, pat, rb)
		}
		os.Remove(path + ".corrupt")
		if err := os.WriteFile(path, data[:pos], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Load(key); err == nil {
			t.Fatalf("truncation to %d bytes not detected", pos)
		}
	})
}
