package rcache

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"github.com/coyote-sim/coyote/internal/core"
)

// ErrMiss is returned by DiskStore.Load when no blob exists for a key.
var ErrMiss = errors.New("rcache: not in cache")

// ErrCorrupt is returned when a blob exists but fails validation —
// truncated, bit-flipped, wrong schema, or filed under the wrong key.
// A corrupt blob is quarantined (renamed aside) and never returned: the
// failure mode of this cache is always "miss", never "wrong result".
var ErrCorrupt = errors.New("rcache: corrupt cache entry")

// DiskStore is the persistent tier: a content-addressed directory of
// result blobs, one file per key, named by the key's hex digest and
// sharded by its first byte to keep directories small. It layers
// result-payload validation (key echo, non-nil result) on the generic
// checksummed BlobStore.
type DiskStore struct {
	blobs *BlobStore
}

// DefaultDir returns the default persistent cache location,
// ~/.cache/coyote (via os.UserCacheDir, so XDG/OS conventions apply).
func DefaultDir() (string, error) {
	base, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("rcache: no user cache dir: %w", err)
	}
	return filepath.Join(base, "coyote"), nil
}

// OpenDisk opens (creating if needed) the on-disk store rooted at dir.
func OpenDisk(dir string) (*DiskStore, error) {
	blobs, err := OpenBlobStore(dir, blobMagic, SchemaVersion)
	if err != nil {
		return nil, err
	}
	return &DiskStore{blobs: blobs}, nil
}

func (s *DiskStore) path(k Key) string { return s.blobs.Path(k.String()) }

// Load reads and validates the blob for k. Corrupt blobs are moved to
// "<name>.corrupt" beside the store (preserving the evidence for
// inspection) and reported as ErrCorrupt; the caller treats both error
// kinds as a miss and recomputes.
func (s *DiskStore) Load(k Key) (*core.Result, error) {
	payload, err := s.blobs.Load(k.String())
	if err != nil {
		return nil, err
	}
	res, err := decodePayload(k, payload)
	if err != nil {
		// Quarantine: never re-read a bad blob, keep it for forensics.
		s.blobs.Quarantine(k.String())
		return nil, err
	}
	return res, nil
}

// Store writes the blob for k atomically. The result should already be
// normalized (the Cache layer does this); Store persists exactly what
// it is given.
func (s *DiskStore) Store(k Key, r *core.Result) error {
	payload, err := json.Marshal(blobPayload{Schema: SchemaVersion, Key: k.String(), Result: r})
	if err != nil {
		return fmt.Errorf("rcache: encoding result: %w", err)
	}
	return s.blobs.Store(k.String(), payload)
}

// blobPayload is the JSON body of an on-disk entry. Schema and Key are
// redundant with the directory layout and file name on purpose: a blob
// copied or hard-linked to the wrong place still self-identifies, and
// decodePayload rejects the mismatch as corruption.
type blobPayload struct {
	Schema int          `json:"schema"`
	Key    string       `json:"key"`
	Result *core.Result `json:"result"`
}

// blobMagic starts every blob: "coyote-rcache <schema> <sha256(payload)>\n".
const blobMagic = "coyote-rcache"

// decodePayload parses and validates a checksum-verified payload read
// for key k.
func decodePayload(k Key, payload []byte) (*core.Result, error) {
	var b blobPayload
	if err := json.Unmarshal(payload, &b); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if b.Schema != SchemaVersion {
		return nil, fmt.Errorf("%w: schema %d, want %d", ErrCorrupt, b.Schema, SchemaVersion)
	}
	if b.Key != k.String() {
		return nil, fmt.Errorf("%w: blob is for key %s, filed under %s", ErrCorrupt, b.Key, k)
	}
	if b.Result == nil {
		return nil, fmt.Errorf("%w: empty result", ErrCorrupt)
	}
	return b.Result, nil
}
