package rcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"github.com/coyote-sim/coyote/internal/core"
)

// ErrMiss is returned by DiskStore.Load when no blob exists for a key.
var ErrMiss = errors.New("rcache: not in cache")

// ErrCorrupt is returned when a blob exists but fails validation —
// truncated, bit-flipped, wrong schema, or filed under the wrong key.
// A corrupt blob is quarantined (renamed aside) and never returned: the
// failure mode of this cache is always "miss", never "wrong result".
var ErrCorrupt = errors.New("rcache: corrupt cache entry")

// DiskStore is the persistent tier: a content-addressed directory of
// result blobs, one file per key, named by the key's hex digest and
// sharded by its first byte to keep directories small:
//
//	<root>/v<SchemaVersion>/<kk>/<64-hex-key>.json
//
// The schema version is part of the layout, so bumping SchemaVersion
// orphans (rather than misreads) every stale entry. Writes are
// temp-file + atomic rename, so concurrent processes sharing a cache
// directory can only ever observe complete blobs.
type DiskStore struct {
	root string // version-qualified root, e.g. ~/.cache/coyote/v1
}

// DefaultDir returns the default persistent cache location,
// ~/.cache/coyote (via os.UserCacheDir, so XDG/OS conventions apply).
func DefaultDir() (string, error) {
	base, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("rcache: no user cache dir: %w", err)
	}
	return filepath.Join(base, "coyote"), nil
}

// OpenDisk opens (creating if needed) the on-disk store rooted at dir.
func OpenDisk(dir string) (*DiskStore, error) {
	root := filepath.Join(dir, fmt.Sprintf("v%d", SchemaVersion))
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("rcache: creating %s: %w", root, err)
	}
	return &DiskStore{root: root}, nil
}

func (s *DiskStore) path(k Key) string {
	h := k.String()
	return filepath.Join(s.root, h[:2], h+".json")
}

// Load reads and validates the blob for k. Corrupt blobs are moved to
// "<name>.corrupt" beside the store (preserving the evidence for
// inspection) and reported as ErrCorrupt; the caller treats both error
// kinds as a miss and recomputes.
func (s *DiskStore) Load(k Key) (*core.Result, error) {
	p := s.path(k)
	data, err := os.ReadFile(p)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrMiss
		}
		return nil, fmt.Errorf("rcache: reading %s: %w", p, err)
	}
	res, err := decodeBlob(k, data)
	if err != nil {
		// Quarantine: never re-read a bad blob, keep it for forensics.
		_ = os.Rename(p, p+".corrupt")
		return nil, err
	}
	return res, nil
}

// Store writes the blob for k atomically. The result should already be
// normalized (the Cache layer does this); Store persists exactly what
// it is given.
func (s *DiskStore) Store(k Key, r *core.Result) error {
	blob, err := encodeBlob(k, r)
	if err != nil {
		return err
	}
	p := s.path(k)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("rcache: creating shard dir: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), ".tmp-*")
	if err != nil {
		return fmt.Errorf("rcache: temp file: %w", err)
	}
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("rcache: writing blob: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("rcache: closing blob: %w", err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("rcache: publishing blob: %w", err)
	}
	return nil
}

// blobPayload is the JSON body of an on-disk entry. Schema and Key are
// redundant with the directory layout and file name on purpose: a blob
// copied or hard-linked to the wrong place still self-identifies, and
// decodeBlob rejects the mismatch as corruption.
type blobPayload struct {
	Schema int          `json:"schema"`
	Key    string       `json:"key"`
	Result *core.Result `json:"result"`
}

// blobMagic starts every blob: "coyote-rcache <schema> <sha256(payload)>\n".
const blobMagic = "coyote-rcache"

// encodeBlob renders header + JSON payload. The header checksum covers
// the full payload, so any byte flip or truncation anywhere in the file
// is caught on read before the JSON is even parsed.
func encodeBlob(k Key, r *core.Result) ([]byte, error) {
	payload, err := json.Marshal(blobPayload{Schema: SchemaVersion, Key: k.String(), Result: r})
	if err != nil {
		return nil, fmt.Errorf("rcache: encoding result: %w", err)
	}
	sum := sha256.Sum256(payload)
	header := fmt.Sprintf("%s %d %s\n", blobMagic, SchemaVersion, hex.EncodeToString(sum[:]))
	return append([]byte(header), payload...), nil
}

// decodeBlob validates and parses a blob read for key k.
func decodeBlob(k Key, data []byte) (*core.Result, error) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("%w: missing header", ErrCorrupt)
	}
	var magic, sumHex string
	var schema int
	if _, err := fmt.Sscanf(string(data[:nl]), "%s %d %s", &magic, &schema, &sumHex); err != nil || magic != blobMagic {
		return nil, fmt.Errorf("%w: bad header %q", ErrCorrupt, data[:nl])
	}
	if schema != SchemaVersion {
		return nil, fmt.Errorf("%w: schema %d, want %d", ErrCorrupt, schema, SchemaVersion)
	}
	payload := data[nl+1:]
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != sumHex {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	var b blobPayload
	if err := json.Unmarshal(payload, &b); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if b.Key != k.String() {
		return nil, fmt.Errorf("%w: blob is for key %s, filed under %s", ErrCorrupt, b.Key, k)
	}
	if b.Result == nil {
		return nil, fmt.Errorf("%w: empty result", ErrCorrupt)
	}
	return b.Result, nil
}
