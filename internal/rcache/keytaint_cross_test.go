package rcache

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"github.com/coyote-sim/coyote/internal/core"
	"github.com/coyote-sim/coyote/internal/kernels"
)

// This file closes the loop between the three independent statements of
// the key-exclusion set:
//
//   - rcache.ExcludedConfigFields, the authoritative declaration;
//   - the fuzz harness's keyMutators partition (execStrategy flag);
//   - the actual core.Config struct, via reflection.
//
// The fourth statement — the set of fields CanonicalBytes really omits,
// and the proof that none of them can flow into a cached Result — is
// checked at lint time by the keytaint analyzer, which cross-checks the
// encoder against ExcludedConfigFields. With this test, all four views
// must agree before CI passes; drifting any one of them fails either
// this test or the lint job.

// configLeafPaths flattens the exported leaves of core.Config into
// dotted paths, recursing through named struct fields the same way the
// analyzer's configUniverse does.
func configLeafPaths(t reflect.Type, prefix string) []string {
	var out []string
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		path := f.Name
		if prefix != "" {
			path = prefix + "." + f.Name
		}
		if f.Type.Kind() == reflect.Struct {
			out = append(out, configLeafPaths(f.Type, path)...)
			continue
		}
		out = append(out, path)
	}
	return out
}

// fieldByPath resolves a dotted ExcludedConfigFields path to a settable
// reflect.Value inside cfg.
func fieldByPath(t *testing.T, cfg *core.Config, path string) reflect.Value {
	t.Helper()
	v := reflect.ValueOf(cfg).Elem()
	for _, part := range strings.Split(path, ".") {
		v = v.FieldByName(part)
		if !v.IsValid() {
			t.Fatalf("ExcludedConfigFields path %q does not resolve in core.Config (stale after a rename?)", path)
		}
	}
	return v
}

// TestExcludedFieldsResolveAndStayExcluded proves every declared
// exclusion (a) names a real core.Config leaf and (b) is genuinely
// invisible to the key: perturbing the field through reflection — not
// through a hand-written mutator that could drift — leaves the canonical
// key unchanged.
func TestExcludedFieldsResolveAndStayExcluded(t *testing.T) {
	leaves := map[string]bool{}
	for _, p := range configLeafPaths(reflect.TypeOf(core.Config{}), "") {
		leaves[p] = true
	}
	base := core.DefaultConfig(4)
	p := kernels.Params{N: 64}
	want := mustKey(t, "axpy-scalar", p, base)

	for _, path := range ExcludedConfigFields {
		if !leaves[path] {
			t.Errorf("ExcludedConfigFields entry %q is not an exported leaf of core.Config", path)
			continue
		}
		cfg := base
		f := fieldByPath(t, &cfg, path)
		switch f.Kind() {
		case reflect.Bool:
			f.SetBool(!f.Bool())
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			f.SetInt(f.Int() + 1)
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			f.SetUint(f.Uint() + 1)
		default:
			t.Fatalf("excluded field %s has kind %s; extend the test", path, f.Kind())
		}
		if got := mustKey(t, "axpy-scalar", p, cfg); got != want {
			t.Errorf("mutating excluded field %s changed the key: the declaration and the encoder disagree", path)
		}
	}
}

// TestFuzzMutatorsAgreeWithExcludedFields proves the fuzz harness's
// execStrategy partition is exactly the declared exclusion set: a new
// excluded field without a no-key-change mutator, or a mutator marked
// execStrategy for a field the key actually hashes, fails here rather
// than silently weakening the fuzz property.
func TestFuzzMutatorsAgreeWithExcludedFields(t *testing.T) {
	declared := make([]string, 0, len(ExcludedConfigFields))
	for _, p := range ExcludedConfigFields {
		leaf := p
		if i := strings.LastIndexByte(p, '.'); i >= 0 {
			leaf = p[i+1:]
		}
		declared = append(declared, leaf)
	}
	var fromMutators []string
	for _, m := range keyMutators {
		if m.execStrategy {
			fromMutators = append(fromMutators, m.name)
		}
	}
	sort.Strings(declared)
	sort.Strings(fromMutators)
	if !reflect.DeepEqual(declared, fromMutators) {
		t.Fatalf("execStrategy fuzz mutators %v != ExcludedConfigFields leaves %v; "+
			"keep keyMutators, ExcludedConfigFields and the keytaint source list in sync",
			fromMutators, declared)
	}
}
