package rcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
)

// BlobStore is the generic content-addressed persistence layer DiskStore
// is built on, exported so sibling tools (the coyotemut verdict cache)
// reuse the same corruption-evident on-disk format instead of inventing
// a second one:
//
//	<root>/v<schema>/<kk>/<hex-key>.json
//	blob = "<magic> <schema> <sha256(payload)>\n" + payload
//
// The header checksum covers the full payload, so any byte flip or
// truncation anywhere in the file is caught on read before the payload
// is even parsed. The schema version is part of the directory layout, so
// bumping it orphans (rather than misreads) every stale entry. Writes
// are temp-file + atomic rename, so concurrent processes sharing a store
// can only ever observe complete blobs. The failure mode is always
// "miss", never "wrong payload": corrupt blobs are quarantined aside as
// .corrupt files and reported as ErrCorrupt.
type BlobStore struct {
	root   string // version-qualified root, e.g. ~/.cache/coyote/v1
	magic  string
	schema int
}

// OpenBlobStore opens (creating if needed) a store rooted at
// dir/v<schema> whose blobs carry the given magic string.
func OpenBlobStore(dir, magic string, schema int) (*BlobStore, error) {
	root := filepath.Join(dir, fmt.Sprintf("v%d", schema))
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("rcache: creating %s: %w", root, err)
	}
	return &BlobStore{root: root, magic: magic, schema: schema}, nil
}

// Path returns the on-disk location of the blob for the hex key.
func (s *BlobStore) Path(hexKey string) string {
	shard := hexKey
	if len(shard) > 2 {
		shard = shard[:2]
	}
	return filepath.Join(s.root, shard, hexKey+".json")
}

// Load reads, checksum-validates and strips the header of the blob for
// hexKey, returning the raw payload. Missing blobs return ErrMiss;
// corrupt ones are quarantined and return ErrCorrupt.
func (s *BlobStore) Load(hexKey string) ([]byte, error) {
	p := s.Path(hexKey)
	data, err := os.ReadFile(p)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrMiss
		}
		return nil, fmt.Errorf("rcache: reading %s: %w", p, err)
	}
	payload, err := s.decode(data)
	if err != nil {
		s.Quarantine(hexKey)
		return nil, err
	}
	return payload, nil
}

// Store writes payload for hexKey atomically, wrapped in the checksummed
// header.
func (s *BlobStore) Store(hexKey string, payload []byte) error {
	sum := sha256.Sum256(payload)
	header := fmt.Sprintf("%s %d %s\n", s.magic, s.schema, hex.EncodeToString(sum[:]))
	blob := append([]byte(header), payload...)

	p := s.Path(hexKey)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("rcache: creating shard dir: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), ".tmp-*")
	if err != nil {
		return fmt.Errorf("rcache: temp file: %w", err)
	}
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("rcache: writing blob: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("rcache: closing blob: %w", err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("rcache: publishing blob: %w", err)
	}
	return nil
}

// Quarantine renames the blob for hexKey aside as a .corrupt file,
// preserving the evidence for inspection while guaranteeing it is never
// re-read. Callers use it when payload-level validation (beyond the
// checksum this store enforces itself) rejects a blob.
func (s *BlobStore) Quarantine(hexKey string) {
	p := s.Path(hexKey)
	_ = os.Rename(p, p+".corrupt")
}

// decode validates the header + checksum of a raw blob and returns the
// payload.
func (s *BlobStore) decode(data []byte) ([]byte, error) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("%w: missing header", ErrCorrupt)
	}
	var magic, sumHex string
	var schema int
	if _, err := fmt.Sscanf(string(data[:nl]), "%s %d %s", &magic, &schema, &sumHex); err != nil || magic != s.magic {
		return nil, fmt.Errorf("%w: bad header %q", ErrCorrupt, data[:nl])
	}
	if schema != s.schema {
		return nil, fmt.Errorf("%w: schema %d, want %d", ErrCorrupt, schema, s.schema)
	}
	payload := data[nl+1:]
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != sumHex {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return payload, nil
}
