package rcache

import (
	"encoding/json"
	"testing"

	"github.com/coyote-sim/coyote/internal/core"
	"github.com/coyote-sim/coyote/internal/kernels"
)

func mustKey(t *testing.T, kernel string, p kernels.Params, cfg core.Config) Key {
	t.Helper()
	k, err := KeyForPoint(kernel, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestKeyExcludesExecutionStrategy: every execution-strategy field the
// golden determinism matrix covers must be invisible to the key — all
// strategies share one cache line per logical point.
func TestKeyExcludesExecutionStrategy(t *testing.T) {
	base := core.DefaultConfig(4)
	p := kernels.Params{N: 128}
	want := mustKey(t, "axpy-scalar", p, base)

	muts := map[string]func(*core.Config){
		"Workers":           func(c *core.Config) { c.Workers = 7 },
		"InterleaveQuantum": func(c *core.Config) { c.InterleaveQuantum = 64 },
		"FastForward":       func(c *core.Config) { c.FastForward = true },
		"BlockMaxLen":       func(c *core.Config) { c.Hart.BlockMaxLen = 8 },
		"DisableBlockCache": func(c *core.Config) { c.Hart.DisableBlockCache = true },
		"CheckpointAt":      func(c *core.Config) { c.CheckpointAt = 5000 },
	}
	//coyote:mapiter-ok independent subtests; each compares against the same base key
	for name, mut := range muts {
		cfg := base
		mut(&cfg)
		if got := mustKey(t, "axpy-scalar", p, cfg); got != want {
			t.Errorf("%s changed the key: execution strategy must be excluded", name)
		}
	}
}

// TestKeySensitivity: every semantics-affecting dimension must produce
// a distinct key.
func TestKeySensitivity(t *testing.T) {
	base := core.DefaultConfig(4)
	p := kernels.Params{N: 128}
	want := mustKey(t, "axpy-scalar", p, base)

	type variant struct {
		name string
		kern string
		p    kernels.Params
		mut  func(*core.Config)
	}
	variants := []variant{
		{"kernel", "spmv-scalar", p, nil},
		{"params.N", "axpy-scalar", kernels.Params{N: 256}, nil},
		{"params.Seed", "axpy-scalar", kernels.Params{N: 128, Seed: 7}, nil},
		{"params.Density", "axpy-scalar", kernels.Params{N: 128, Density: 0.5}, nil},
		{"Cores", "axpy-scalar", p, func(c *core.Config) {
			*c = core.DefaultConfig(8)
		}},
		{"NoCLatency", "axpy-scalar", p, func(c *core.Config) { c.Uncore.NoCLatency = 32 }},
		{"LLCEnable", "axpy-scalar", p, func(c *core.Config) { c.Uncore.LLCEnable = true }},
		{"L2Shared", "axpy-scalar", p, func(c *core.Config) { c.Uncore.L2Shared = false }},
		{"L1D.SizeBytes", "axpy-scalar", p, func(c *core.Config) { c.Hart.L1D.SizeBytes = 32 << 10 }},
		{"MCPUOffload", "axpy-scalar", p, func(c *core.Config) { c.Hart.MCPUOffload = true }},
		{"MaxCycles", "axpy-scalar", p, func(c *core.Config) { c.MaxCycles = 12345 }},
		{"StackSize", "axpy-scalar", p, func(c *core.Config) { c.StackSize = 128 << 10 }},
		{"PrefetchDepth", "axpy-scalar", p, func(c *core.Config) { c.Uncore.PrefetchDepth = 4 }},
		{"MemRowBits", "axpy-scalar", p, func(c *core.Config) { c.Uncore.MemRowBits = 13 }},
	}
	seen := map[Key]string{want: "base"}
	for _, v := range variants {
		cfg := base
		if v.mut != nil {
			v.mut(&cfg)
		}
		got := mustKey(t, v.kern, v.p, cfg)
		if prev, dup := seen[got]; dup {
			t.Errorf("%s collides with %s", v.name, prev)
		}
		seen[got] = v.name
	}
}

// TestKeyCanonicalization: representations of the same logical point —
// unset defaults vs. spelled-out defaults, derived fields zero vs.
// filled — must hash identically.
func TestKeyCanonicalization(t *testing.T) {
	cfg := core.DefaultConfig(4)
	implicit := mustKey(t, "axpy-scalar", kernels.Params{}, cfg)
	explicit := mustKey(t, "axpy-scalar",
		kernels.Params{N: 64, Cores: 4, Density: 0.02, Seed: 42}, cfg)
	if implicit != explicit {
		t.Error("default-filled params hash differently from explicit defaults")
	}

	derived := cfg
	derived.Uncore.Tiles = 0 // left zero: Validate derives it
	if mustKey(t, "axpy-scalar", kernels.Params{N: 64}, derived) !=
		mustKey(t, "axpy-scalar", kernels.Params{N: 64}, cfg) {
		t.Error("zero derived field hashes differently from the filled one")
	}
}

// TestKeyIndependentOfJSONFieldOrder: configs loaded from JSON files
// (cmd/coyote -config) hash by field identity, not by the order the
// file happens to list them in.
func TestKeyIndependentOfJSONFieldOrder(t *testing.T) {
	docs := []string{
		`{"Cores": 4, "CoresPerTile": 4, "MaxCycles": 1000000, "Workers": 1}`,
		`{"Workers": 3, "MaxCycles": 1000000, "CoresPerTile": 4, "Cores": 4}`,
	}
	var keys []Key
	for _, doc := range docs {
		cfg := core.DefaultConfig(4)
		if err := json.Unmarshal([]byte(doc), &cfg); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, mustKey(t, "axpy-scalar", kernels.Params{N: 64}, cfg))
	}
	if keys[0] != keys[1] {
		t.Error("JSON field order (or excluded Workers) leaked into the key")
	}
}

// TestKeyStableAcrossCalls: the canonical pre-image contains no map
// iteration, addresses or clocks — two computations must agree.
func TestKeyStableAcrossCalls(t *testing.T) {
	cfg := core.DefaultConfig(2)
	p := kernels.Params{N: 96, Seed: 5}
	for _, kernel := range kernels.Names() {
		a := mustKey(t, kernel, p, cfg)
		b := mustKey(t, kernel, p, cfg)
		if a != b {
			t.Fatalf("%s: key not stable across calls", kernel)
		}
	}
}

// TestProgramHashCoversSymbols: the program digest must see the symbol
// table through sorted keys, and changes to any component must change
// the digest.
func TestProgramHashCoversSymbols(t *testing.T) {
	k, err := kernels.Get("axpy-scalar")
	if err != nil {
		t.Fatal(err)
	}
	_ = k
	a, err := programHash("axpy-scalar")
	if err != nil {
		t.Fatal(err)
	}
	b, err := programHash("axpy-scalar")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("program hash not stable")
	}
	c, err := programHash("spmv-scalar")
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("distinct kernels share a program hash")
	}
}
