package rcache

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/coyote-sim/coyote/internal/core"
	"github.com/coyote-sim/coyote/internal/cpu"
)

// fakeResult builds a deterministic synthetic Result from a seed —
// store/load round trips don't need a real simulation, just bytes that
// exercise every field kind (scalars, slices, the counter map).
func fakeResult(seed int64) *core.Result {
	rng := rand.New(rand.NewSource(seed))
	nh := 1 + rng.Intn(4)
	r := &core.Result{
		Cycles:       rng.Uint64() % 1_000_000_000,
		Instructions: rng.Uint64() % 1_000_000_000,
		WallTime:     time.Duration(rng.Int63n(1_000_000_000)),
		UncoreRaw: map[string]uint64{
			"l2bank0.hits":   rng.Uint64() % 100_000,
			"l2bank0.misses": rng.Uint64() % 100_000,
			"mc0.reads":      rng.Uint64() % 100_000,
		},
		Par: core.ParStats{SpecQuanta: rng.Uint64() % 1000, Commits: rng.Uint64() % 1000},
	}
	for i := 0; i < nh; i++ {
		r.HartStats = append(r.HartStats, cpu.Stats{
			Instret:   rng.Uint64() % 1_000_000,
			StallsRAW: rng.Uint64() % 1_000_000,
		})
		r.ExitCodes = append(r.ExitCodes, rng.Uint64()%4)
		r.Consoles = append(r.Consoles, fmt.Sprintf("hart %d", i))
	}
	return r
}

func keyFromSeed(seed int64) Key {
	var k Key
	rng := rand.New(rand.NewSource(seed))
	for i := range k {
		k[i] = byte(rng.Intn(256))
	}
	return k
}

func mustMarshal(t *testing.T, r *core.Result) []byte {
	t.Helper()
	b, err := marshalResult(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestDiskRoundTrip(t *testing.T) {
	s, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := keyFromSeed(1)
	want := Normalize(fakeResult(1))
	if err := s.Store(key, want); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load(key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustMarshal(t, got), mustMarshal(t, want)) {
		t.Fatalf("round trip changed the result:\n got %s\nwant %s",
			mustMarshal(t, got), mustMarshal(t, want))
	}
}

func TestDiskMiss(t *testing.T) {
	s, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(keyFromSeed(2)); !errors.Is(err, ErrMiss) {
		t.Fatalf("got %v, want ErrMiss", err)
	}
}

// TestCorruptionQuarantine flips one byte of a stored blob: the load
// must fail (never return a wrong result) and the bad blob must be
// moved aside so it is never re-read.
func TestCorruptionQuarantine(t *testing.T) {
	s, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := keyFromSeed(3)
	if err := s.Store(key, Normalize(fakeResult(3))); err != nil {
		t.Fatal(err)
	}
	p := s.path(key)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{0, 20, len(data) / 2, len(data) - 1} {
		corrupted := append([]byte(nil), data...)
		corrupted[pos] ^= 0x41
		if err := os.WriteFile(p, corrupted, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Load(key); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: got %v, want ErrCorrupt", pos, err)
		}
		if _, err := os.Stat(p + ".corrupt"); err != nil {
			t.Fatalf("flip at %d: corrupt blob not quarantined: %v", pos, err)
		}
		if _, err := s.Load(key); !errors.Is(err, ErrMiss) {
			t.Fatalf("flip at %d: quarantined blob still served: %v", pos, err)
		}
		os.Remove(p + ".corrupt")
	}
}

// TestTruncationDetected cuts the blob short at every prefix length of
// a small blob: all of them must fail validation.
func TestTruncationDetected(t *testing.T) {
	s, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := keyFromSeed(4)
	if err := s.Store(key, Normalize(fakeResult(4))); err != nil {
		t.Fatal(err)
	}
	p := s.path(key)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(data); n += 17 {
		if err := os.WriteFile(p, data[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Load(key); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: got %v, want ErrCorrupt", n, err)
		}
		os.Remove(p + ".corrupt")
	}
}

// TestMisfiledBlobRejected copies a valid blob to another key's path:
// the self-identifying Key field must reject it.
func TestMisfiledBlobRejected(t *testing.T) {
	s, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a, b := keyFromSeed(5), keyFromSeed(6)
	if err := s.Store(a, Normalize(fakeResult(5))); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(s.path(a))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(s.path(b)), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path(b), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(b); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("misfiled blob: got %v, want ErrCorrupt", err)
	}
}

// TestSingleFlightCoalescing proves the coalescing contract: a second
// lookup of a key whose computation is in flight waits for it and
// shares the result — the simulation runs exactly once.
func TestSingleFlightCoalescing(t *testing.T) {
	c := New(0)
	key := keyFromSeed(7)
	want := fakeResult(7)

	started := make(chan struct{})
	release := make(chan struct{})
	var computes int
	compute := func() (*core.Result, error) {
		computes++
		close(started)
		<-release
		return Clone(want), nil
	}

	var wg sync.WaitGroup
	wg.Add(1)
	var leaderStatus Status
	go func() {
		defer wg.Done()
		_, leaderStatus, _ = c.GetOrCompute(key, compute)
	}()
	<-started // the leader is inside compute; now race a duplicate in

	wg.Add(1)
	var waiterStatus Status
	var waiterRes *core.Result
	go func() {
		defer wg.Done()
		waiterRes, waiterStatus, _ = c.GetOrCompute(key, compute)
	}()
	// Wait until the duplicate has registered as a waiter, then release.
	for {
		c.mu.Lock()
		n := c.stats.Coalesced
		c.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if computes != 1 {
		t.Fatalf("computed %d times, want 1", computes)
	}
	if leaderStatus != Miss || waiterStatus != Coalesced {
		t.Fatalf("statuses: leader %v, waiter %v; want miss, coalesced", leaderStatus, waiterStatus)
	}
	if !Equal(waiterRes, want) {
		t.Fatal("coalesced waiter got a different result")
	}
	if waiterRes.WallTime != 0 {
		t.Fatalf("coalesced result carries WallTime %v, want 0", waiterRes.WallTime)
	}
}

// TestLRUEvictionFallsBackToDisk bounds the memory tier at one entry:
// an evicted key must still be served — from disk — and accounted as a
// disk hit.
func TestLRUEvictionFallsBackToDisk(t *testing.T) {
	c, err := Open(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	a, b := keyFromSeed(8), keyFromSeed(9)
	ra, rb := fakeResult(8), fakeResult(9)
	mustCompute := func(r *core.Result) func() (*core.Result, error) {
		return func() (*core.Result, error) { return Clone(r), nil }
	}
	if _, st, err := c.GetOrCompute(a, mustCompute(ra)); err != nil || st != Miss {
		t.Fatalf("a: %v %v", st, err)
	}
	if _, st, err := c.GetOrCompute(b, mustCompute(rb)); err != nil || st != Miss {
		t.Fatalf("b: %v %v", st, err)
	}
	if c.mem.len() != 1 {
		t.Fatalf("LRU holds %d entries, want 1", c.mem.len())
	}
	got, st, err := c.GetOrCompute(a, func() (*core.Result, error) {
		t.Fatal("evicted key recomputed despite disk copy")
		return nil, nil
	})
	if err != nil || st != Hit {
		t.Fatalf("a after eviction: %v %v", st, err)
	}
	if !Equal(got, ra) {
		t.Fatal("disk hit returned wrong result")
	}
	s := c.Stats()
	if s.DiskHits != 1 || s.MemHits != 0 || s.Misses != 2 {
		t.Fatalf("stats %+v: want 1 disk hit, 0 mem hits, 2 misses", s)
	}
}

// TestHitsReturnPrivateCopies mutates a returned result and checks the
// cache is unaffected.
func TestHitsReturnPrivateCopies(t *testing.T) {
	c := New(0)
	key := keyFromSeed(10)
	orig := fakeResult(10)
	if _, _, err := c.GetOrCompute(key, func() (*core.Result, error) { return Clone(orig), nil }); err != nil {
		t.Fatal(err)
	}
	got1, _, _ := c.GetOrCompute(key, nil) // hit: compute must not be called
	got1.Cycles = 0xdead
	got1.UncoreRaw["l2bank0.hits"] = 0xdead
	got1.HartStats[0].Instret = 0xdead
	got2, st, _ := c.GetOrCompute(key, nil)
	if st != Hit {
		t.Fatalf("status %v, want hit", st)
	}
	if !Equal(got2, orig) {
		t.Fatal("mutating a served result poisoned the cache")
	}
}

// TestErrorsNotCached: a failed computation must not poison the key.
func TestErrorsNotCached(t *testing.T) {
	c := New(0)
	key := keyFromSeed(11)
	boom := errors.New("boom")
	if _, _, err := c.GetOrCompute(key, func() (*core.Result, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	want := fakeResult(11)
	got, st, err := c.GetOrCompute(key, func() (*core.Result, error) { return Clone(want), nil })
	if err != nil || st != Miss {
		t.Fatalf("retry: %v %v", st, err)
	}
	if !Equal(got, want) {
		t.Fatal("retry returned wrong result")
	}
}

// TestVerifyDivergencePanics seeds the store with a result that does
// not match what the "simulator" produces: with verify fraction 1 the
// next hit must panic rather than serve the stale value silently.
func TestVerifyDivergencePanics(t *testing.T) {
	c, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	key := keyFromSeed(12)
	stale := fakeResult(12)
	if _, _, err := c.GetOrCompute(key, func() (*core.Result, error) { return Clone(stale), nil }); err != nil {
		t.Fatal(err)
	}
	c.SetVerify(1.0)
	fresh := fakeResult(13) // diverges from what was cached
	defer func() {
		if recover() == nil {
			t.Fatal("diverging hit did not panic under -cache-verify=1")
		}
	}()
	c.GetOrCompute(key, func() (*core.Result, error) { return Clone(fresh), nil })
}

// TestVerifyCleanHit: agreeing recomputation passes and is counted.
func TestVerifyCleanHit(t *testing.T) {
	c := New(0)
	c.SetVerify(1.0)
	key := keyFromSeed(14)
	want := fakeResult(14)
	compute := func() (*core.Result, error) { return Clone(want), nil }
	if _, _, err := c.GetOrCompute(key, compute); err != nil {
		t.Fatal(err)
	}
	if _, st, err := c.GetOrCompute(key, compute); err != nil || st != Hit {
		t.Fatalf("hit: %v %v", st, err)
	}
	if s := c.Stats(); s.Verified != 1 {
		t.Fatalf("Verified = %d, want 1", s.Verified)
	}
}

// TestSampledDeterministic: the verify sample is a pure function of the
// key, monotone in the fraction.
func TestSampledDeterministic(t *testing.T) {
	for seed := int64(0); seed < 64; seed++ {
		k := keyFromSeed(seed)
		if sampled(k, 0) {
			t.Fatal("fraction 0 sampled a key")
		}
		if !sampled(k, 1) {
			t.Fatal("fraction 1 skipped a key")
		}
		if sampled(k, 0.5) != sampled(k, 0.5) {
			t.Fatal("sampling not deterministic")
		}
		if sampled(k, 0.25) && !sampled(k, 0.75) {
			t.Fatal("sampling not monotone in the fraction")
		}
	}
}

// TestNormalizeStripsNondeterministicSurface: WallTime and Par differ
// legitimately between executions of one point; the cached form must
// not carry them.
func TestNormalizeStripsNondeterministicSurface(t *testing.T) {
	r := fakeResult(15)
	n := Normalize(r)
	if n.WallTime != 0 || n.Par != (core.ParStats{}) {
		t.Fatalf("normalize left WallTime=%v Par=%+v", n.WallTime, n.Par)
	}
	if r.WallTime == 0 {
		t.Fatal("normalize mutated its argument")
	}
	if !Equal(r, n) {
		t.Fatal("normalize changed the deterministic surface")
	}
}
