package rcache

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"

	"github.com/coyote-sim/coyote/internal/core"
)

// Status classifies how one lookup was satisfied.
type Status uint8

const (
	// Miss: the point was simulated by this call.
	Miss Status = iota
	// Hit: the result was served from the memory or disk tier.
	Hit
	// Coalesced: an identical point was already in flight; this call
	// waited for it and shared its result without simulating.
	Coalesced
)

func (s Status) String() string {
	switch s {
	case Miss:
		return "miss"
	case Hit:
		return "hit"
	case Coalesced:
		return "coalesced"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// Stats counts cache outcomes since the Cache was created.
type Stats struct {
	Hits      uint64 // served from memory or disk
	MemHits   uint64 // … of which from the in-process LRU
	DiskHits  uint64 // … of which from the persistent store
	Misses    uint64 // computed by the caller
	Coalesced uint64 // shared an in-flight computation
	Stores    uint64 // blobs written to disk
	StoreErrs uint64 // disk writes that failed (cache stays correct, just colder)
	Corrupt   uint64 // blobs quarantined on load
	Verified  uint64 // hits recomputed and cross-checked (all agreed, or we panicked)
}

// Lookups returns the total number of GetOrCompute calls accounted.
func (s Stats) Lookups() uint64 { return s.Hits + s.Misses + s.Coalesced }

// HitRate returns (hits+coalesced)/lookups — coalesced lookups did not
// simulate, which is what a hit rate is for.
func (s Stats) HitRate() float64 {
	n := s.Lookups()
	if n == 0 {
		return 0
	}
	return float64(s.Hits+s.Coalesced) / float64(n)
}

// Summary renders the one-line report the commands print.
func (s Stats) Summary() string {
	return fmt.Sprintf("%d lookups: %d hits (%d mem, %d disk), %d misses, %d coalesced — hit rate %.1f%%",
		s.Lookups(), s.Hits, s.MemHits, s.DiskHits, s.Misses, s.Coalesced, 100*s.HitRate())
}

// Cache is the two-tier, single-flight result cache: an in-process LRU
// in front of an optional persistent DiskStore, with request coalescing
// so concurrent lookups of one key simulate at most once.
//
// Correctness stance: a Cache can only ever return a result that was
// produced by a real simulation of the same canonical key (checksummed
// on disk, deep-copied in memory), or fail toward a miss. With
// SetVerify > 0 it additionally recomputes a deterministic sample of
// hits and panics on divergence — the self-checking lane CI runs with
// fraction 1.0 under the coyotesan tag.
type Cache struct {
	mu     sync.Mutex
	mem    *lru
	disk   *DiskStore // nil for a memory-only cache
	flight map[Key]*flight
	verify float64
	stats  Stats
}

// flight is one in-progress computation; waiters block on done.
type flight struct {
	done chan struct{}
	res  *core.Result // normalized; nil on error
	err  error
}

// DefaultMemEntries bounds the in-process tier when callers pass
// memEntries <= 0 to New/Open. Results are small (a few KiB of
// counters), so this is megabytes, not gigabytes.
const DefaultMemEntries = 4096

// New creates a memory-only cache — coalescing and in-process reuse
// without persistence.
func New(memEntries int) *Cache {
	if memEntries <= 0 {
		memEntries = DefaultMemEntries
	}
	return &Cache{mem: newLRU(memEntries), flight: make(map[Key]*flight)}
}

// Open creates a cache backed by the persistent store at dir (created
// if needed). dir == "" selects DefaultDir().
func Open(dir string, memEntries int) (*Cache, error) {
	if dir == "" {
		var err error
		dir, err = DefaultDir()
		if err != nil {
			return nil, err
		}
	}
	disk, err := OpenDisk(dir)
	if err != nil {
		return nil, err
	}
	c := New(memEntries)
	c.disk = disk
	return c, nil
}

// SetVerify sets the fraction of hits to recompute and cross-check
// (0 = never, 1 = every hit). Sampling is deterministic in the key, so
// the same points are audited on every run — divergences cannot hide
// behind an unlucky sample.
func (c *Cache) SetVerify(frac float64) {
	c.mu.Lock()
	c.verify = frac
	c.mu.Unlock()
}

// Stats returns a snapshot of the outcome counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// GetOrCompute returns the result for key, simulating via compute only
// on a miss. compute must be the real simulation of exactly the point
// the key addresses — the contract KeyForPoint + RunKernel satisfy.
//
// On a miss the caller's own compute result is returned as-is (with its
// live WallTime), while the normalized copy is what gets published to
// both tiers and to coalesced waiters. Hits and coalesced lookups
// return a private deep copy with WallTime zero: served points cost no
// simulation time, and callers can never mutate shared cache state.
// Errors are never cached; every waiter of a failed flight receives the
// error and the key stays computable.
func (c *Cache) GetOrCompute(key Key, compute func() (*core.Result, error)) (*core.Result, Status, error) {
	c.mu.Lock()
	if r, ok := c.mem.get(key); ok {
		c.stats.Hits++
		c.stats.MemHits++
		verify := c.verify
		c.mu.Unlock()
		c.maybeVerify(key, r, verify, compute)
		return Clone(r), Hit, nil
	}
	if f, ok := c.flight[key]; ok {
		c.stats.Coalesced++
		c.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, Coalesced, f.err
		}
		return Clone(f.res), Coalesced, nil
	}
	// Leader: register the flight before probing disk, so concurrent
	// duplicates coalesce behind the disk read too.
	f := &flight{done: make(chan struct{})}
	c.flight[key] = f
	verify := c.verify
	c.mu.Unlock()

	var (
		status = Miss
		stored *core.Result // normalized form published to tiers/waiters
		ret    *core.Result // what this caller gets back
		err    error
	)
	if c.disk != nil {
		switch r, derr := c.disk.Load(key); {
		case derr == nil:
			stored, ret, status = r, Clone(r), Hit
		case errors.Is(derr, ErrCorrupt):
			c.mu.Lock()
			c.stats.Corrupt++
			c.mu.Unlock()
		}
	}
	if stored == nil {
		ret, err = compute()
		if err == nil {
			stored = Normalize(ret)
			if c.disk != nil {
				if serr := c.disk.Store(key, stored); serr != nil {
					c.mu.Lock()
					c.stats.StoreErrs++
					c.mu.Unlock()
				} else {
					c.mu.Lock()
					c.stats.Stores++
					c.mu.Unlock()
				}
			}
		}
	}

	c.mu.Lock()
	if err == nil {
		c.mem.add(key, stored)
	}
	if status == Hit {
		c.stats.Hits++
		c.stats.DiskHits++
	} else {
		c.stats.Misses++
	}
	f.res, f.err = stored, err
	delete(c.flight, key)
	c.mu.Unlock()
	close(f.done)

	if err != nil {
		return nil, status, err
	}
	if status == Hit {
		c.maybeVerify(key, stored, verify, compute)
	}
	return ret, status, nil
}

// maybeVerify recomputes a hit when the key falls inside the verify
// sample and panics on any divergence: a cache that can disagree with
// the simulator must crash loudly, never return the wrong number.
func (c *Cache) maybeVerify(key Key, cached *core.Result, frac float64, compute func() (*core.Result, error)) {
	if !sampled(key, frac) {
		return
	}
	fresh, err := compute()
	if err != nil {
		panic(fmt.Sprintf("rcache: -cache-verify recompute of key %s failed: %v", key, err))
	}
	if !Equal(cached, fresh) {
		panic(fmt.Sprintf("rcache: DIVERGENCE on key %s — cached result does not match recomputation; "+
			"a semantics-affecting change landed without a SchemaVersion bump (or the blob store is unsound)\n%s",
			key, Diff(cached, fresh)))
	}
	c.mu.Lock()
	c.stats.Verified++
	c.mu.Unlock()
}

// sampled maps the key's first 8 bytes onto [0,1) and compares against
// the fraction — deterministic, uniform, and RNG-free.
func sampled(key Key, frac float64) bool {
	if frac <= 0 {
		return false
	}
	if frac >= 1 {
		return true
	}
	u := binary.BigEndian.Uint64(key[:8])
	return float64(u)/float64(math.MaxUint64) < frac
}
