package rcache

import (
	"bytes"
	"encoding/json"
	"fmt"

	"github.com/coyote-sim/coyote/internal/core"
	"github.com/coyote-sim/coyote/internal/cpu"
)

// Normalize returns a copy of r reduced to the deterministic result
// surface the cache stores and compares: WallTime (host wall-clock) and
// Par (speculation counters, legitimately worker-count-dependent) are
// zeroed; everything else — cycles, instructions, per-hart stats, cache
// and uncore counters, exit codes, consoles — is the committed
// simulation state the golden tests prove bit-identical across
// execution strategies. A cache hit therefore reports WallTime 0: the
// simulated time cost of a served point is genuinely zero.
func Normalize(r *core.Result) *core.Result {
	cp := Clone(r)
	cp.WallTime = 0
	cp.Par = core.ParStats{}
	return cp
}

// Clone deep-copies a Result so cached entries can never alias caller
// state (a caller mutating a returned Result must not poison the cache,
// and coalesced waiters on different goroutines each get their own).
func Clone(r *core.Result) *core.Result {
	cp := *r
	cp.HartStats = append([]cpu.Stats(nil), r.HartStats...)
	cp.ExitCodes = append([]uint64(nil), r.ExitCodes...)
	cp.Consoles = append([]string(nil), r.Consoles...)
	if r.UncoreRaw != nil {
		m := make(map[string]uint64, len(r.UncoreRaw))
		//coyote:mapiter-ok pure key→value copy into a fresh map; visit order is invisible
		for k, v := range r.UncoreRaw {
			m[k] = v
		}
		cp.UncoreRaw = m
	}
	return &cp
}

// marshalResult renders a Result as canonical JSON. encoding/json
// serializes struct fields in declaration order and map keys sorted, so
// equal results always produce equal bytes — the property the blob
// checksum, Equal and the round-trip fuzzer all lean on.
func marshalResult(r *core.Result) ([]byte, error) {
	return json.Marshal(r)
}

// Equal reports whether two results agree on the cached (deterministic)
// surface. Both sides are normalized first, so it can compare a fresh
// recomputation (with live WallTime/Par) against a stored entry.
func Equal(a, b *core.Result) bool {
	if a == nil || b == nil {
		return a == b
	}
	ab, aerr := marshalResult(Normalize(a))
	bb, berr := marshalResult(Normalize(b))
	if aerr != nil || berr != nil {
		return false
	}
	return bytes.Equal(ab, bb)
}

// Diff renders a short human-readable description of where two results
// diverge — the payload of the -cache-verify panic message.
func Diff(cached, fresh *core.Result) string {
	c, f := Normalize(cached), Normalize(fresh)
	if c.Cycles != f.Cycles {
		return fmt.Sprintf("cycles: cached %d, recomputed %d", c.Cycles, f.Cycles)
	}
	if c.Instructions != f.Instructions {
		return fmt.Sprintf("instructions: cached %d, recomputed %d", c.Instructions, f.Instructions)
	}
	cb, _ := marshalResult(c)
	fb, _ := marshalResult(f)
	n := 0
	for n < len(cb) && n < len(fb) && cb[n] == fb[n] {
		n++
	}
	lo := n - 40
	if lo < 0 {
		lo = 0
	}
	chi, fhi := n+40, n+40
	if chi > len(cb) {
		chi = len(cb)
	}
	if fhi > len(fb) {
		fhi = len(fb)
	}
	return fmt.Sprintf("first divergence at JSON byte %d:\n  cached    …%s…\n  recomputed …%s…",
		n, cb[lo:chi], fb[lo:fhi])
}
