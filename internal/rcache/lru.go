package rcache

import (
	"container/list"

	"github.com/coyote-sim/coyote/internal/core"
)

// lru is the in-process tier: a bounded most-recently-used map of
// normalized results in front of the disk store, so repeated points in
// one process (a sweep with duplicate rows, iterative exploration in a
// REPL-style driver) never touch the filesystem. Not goroutine-safe —
// the Cache serializes access under its mutex.
type lru struct {
	max   int // <= 0 means unbounded
	ll    *list.List
	items map[Key]*list.Element
}

type lruEntry struct {
	k Key
	r *core.Result
}

func newLRU(max int) *lru {
	return &lru{max: max, ll: list.New(), items: make(map[Key]*list.Element)}
}

func (c *lru) get(k Key) (*core.Result, bool) {
	el, ok := c.items[k]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).r, true
}

func (c *lru) add(k Key, r *core.Result) {
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).r = r
		return
	}
	c.items[k] = c.ll.PushFront(&lruEntry{k: k, r: r})
	if c.max > 0 && c.ll.Len() > c.max {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*lruEntry).k)
	}
}

func (c *lru) len() int { return c.ll.Len() }
