package lint

import (
	"go/ast"
	"go/types"
)

// MapIterAnalyzer flags `range` over a map inside simulator packages. Go
// randomizes map iteration order on purpose; any loop whose effect
// depends on visit order therefore perturbs simulated timing between
// identical runs — the bug class that hit the MCPU gather coalescer.
//
// A site is accepted when either
//   - the loop body is provably order-insensitive (only commutative
//     integer accumulation: x += v, x++, x |= v, …), or
//   - the `for` line (or the line above) carries
//     //coyote:mapiter-ok <reason>.
var MapIterAnalyzer = &Analyzer{
	Name: "mapiter",
	Doc:  "flags order-sensitive iteration over maps in simulator packages",
	Run:  runMapIter,
}

func runMapIter(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if pass.Pkg.Directives.At(pass.Fset, rs.For, "mapiter-ok") != nil {
				return true
			}
			if orderInsensitiveBody(info, rs.Body) {
				return true
			}
			pass.Report(Diagnostic{
				Pos: rs.For,
				Message: "range over map: iteration order is randomized and can perturb simulated timing; " +
					"iterate a sorted key slice, or justify with //coyote:mapiter-ok <reason>",
			})
			return true
		})
	}
}

// orderInsensitiveBody reports whether every statement in the loop body
// is a commutative integer accumulation, i.e. re-ordering iterations
// cannot change the result. The test is deliberately narrow: only
// `x += v`-style compound assignments (+=, |=, &=, ^=) and ++/-- on
// integer-typed lvalues qualify, with call-free operands.
func orderInsensitiveBody(info *types.Info, body *ast.BlockStmt) bool {
	if body == nil || len(body.List) == 0 {
		return true
	}
	for _, stmt := range body.List {
		switch s := stmt.(type) {
		case *ast.IncDecStmt:
			if !isCallFreeInteger(info, s.X) {
				return false
			}
		case *ast.AssignStmt:
			switch s.Tok.String() {
			case "+=", "|=", "&=", "^=":
			default:
				return false
			}
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return false
			}
			if !isCallFreeInteger(info, s.Lhs[0]) || !isCallFree(s.Rhs[0]) {
				return false
			}
		case *ast.EmptyStmt:
		default:
			return false
		}
	}
	return true
}

// isCallFreeInteger reports whether e has integer type and contains no
// function calls.
func isCallFreeInteger(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsInteger == 0 {
		return false
	}
	return isCallFree(e)
}

// isCallFree reports whether e contains no call expressions (whose
// side-effect order could matter).
func isCallFree(e ast.Expr) bool {
	free := true
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			free = false
			return false
		}
		return true
	})
	return free
}
