package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"github.com/coyote-sim/coyote/internal/lint/flow"
)

// SpecWriteAnalyzer proves the speculative layer's write isolation
// statically: every store to hart/cache/memory state reachable from a
// speculative-phase root must flow through the journal, buffered-write
// and snapshot APIs that live in the spec.go files — otherwise an
// aborted speculation would leave committed state corrupted.
//
// Roots are functions annotated //coyote:specphase. The analyzer walks
// the static call graph from them (mem.Memory methods are the descent
// boundary: reads are harmless, writes are rule R3). Functions defined
// in a file named spec.go are the trusted journal implementation: they
// are walked for reachability but their own stores are not checked.
//
// A type is *protected* when it has a BeginSpec method (Hart, Cache).
// A protected field is *covered* when the type's spec.go mentions it —
// i.e. the snapshot/journal machinery saves or restores it, so direct
// stores elsewhere on the spec path are rolled back on abort.
//
// Rules, in the order checked per store/call site:
//
//	R1: store touching an uncovered field of a protected type — the
//	    journal cannot roll it back.
//	R2: store through a pointer/slice/map-rooted parameter or receiver
//	    chain with no protected field at all — caller-visible state
//	    outside the journal's reach (also reported for stores whose
//	    access path cannot be resolved).
//	R3: direct call to Memory.Write*/Reset — raw memory mutation that
//	    must go through the deferred-write journal instead.
//	R4: store to a package-level variable on the spec path.
//	R5: dynamic call (func value or interface method) — the analyzer
//	    cannot see what it mutates.
//
// //coyote:specwrite-ok <justification> exempts one site (same line or
// the line above), a whole function (doc comment), or — for R1 — a
// field declaration (every store to that field is then trusted).
var SpecWriteAnalyzer = &Analyzer{
	Name:       "specwrite",
	Doc:        "stores on speculative-phase paths must flow through the spec.go journal/snapshot APIs",
	RunProgram: runSpecWrite,
}

// specFileName is the basename that marks a file as part of the trusted
// journal implementation.
const specFileName = "spec.go"

func runSpecWrite(pass *ProgramPass) {
	fprog := pass.Program.Flow()

	byPath := make(map[string]*Package, len(pass.Program.Packages))
	for _, pkg := range pass.Program.Packages {
		byPath[pkg.ImportPath] = pkg
	}

	var roots []*flow.Func
	for key, fn := range pass.Program.Funcs {
		if FuncAnnotation(fn.Decl, "specphase") {
			roots = append(roots, fprog.Funcs[key])
		}
	}
	if len(roots) == 0 {
		return
	}

	covered := coveredSpecFields(pass.Program)

	w := &flow.Walker{
		Prog: fprog,
		Boundary: func(fn *flow.Func) bool {
			return recvNamed(fn.Obj) != nil && recvNamed(fn.Obj).Obj().Name() == "Memory"
		},
	}

	ctx := &specCtx{pass: pass, byPath: byPath, covered: covered}
	for _, fn := range w.Reachable(roots) {
		if filepath.Base(fn.File(fprog.Fset)) == specFileName {
			continue // trusted journal implementation
		}
		if w.Boundary(fn) {
			// Boundary functions (Memory methods) are reached but not part
			// of the checked surface: the R3 rule flags the *call* that
			// crosses into them, which is where the journal bypass happens.
			continue
		}
		ctx.checkFunc(fn)
	}
}

type specCtx struct {
	pass    *ProgramPass
	byPath  map[string]*Package
	covered map[string]map[string]bool // type key → field → covered
}

// coveredSpecFields collects, per protected type, the fields mentioned
// anywhere in the spec.go files of the type's own package — the set the
// snapshot/journal machinery knows how to save and restore.
func coveredSpecFields(prog *Program) map[string]map[string]bool {
	covered := map[string]map[string]bool{}
	for _, pkg := range prog.Packages {
		for i, f := range pkg.Files {
			if filepath.Base(pkg.Filenames[i]) != specFileName {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				owner, field, ok := flow.FieldOwner(pkg.Info, sel)
				if !ok {
					return true
				}
				key := typeKey(owner)
				if covered[key] == nil {
					covered[key] = map[string]bool{}
				}
				covered[key][field] = true
				return true
			})
		}
	}
	return covered
}

func (ctx *specCtx) checkFunc(fn *flow.Func) {
	info := fn.Pkg.Info
	if FuncAnnotation(fn.Decl, "specwrite-ok") {
		return
	}
	env := flow.BuildAliases(info, fn.Decl.Body)
	params := paramObjects(info, fn.Decl)

	flow.ForEachStore(fn.Decl.Body, func(st flow.Store) {
		ctx.checkStore(fn, info, env, params, st)
	})
	flow.ForEachCall(info, fn.Decl.Body, func(call *ast.CallExpr, callee *types.Func) {
		ctx.checkCall(fn, call, callee)
	})
}

func (ctx *specCtx) checkStore(fn *flow.Func, info *types.Info, env flow.AliasEnv, params map[types.Object]bool, st flow.Store) {
	// Bare identifier: a fresh binding or plain local/parameter value
	// assignment never mutates journaled state. Deliberately NOT resolved
	// through the alias environment — reassigning a pointer variable is
	// not a store to its old pointee.
	if id, ok := st.Target.(*ast.Ident); ok {
		if info.Defs[id] != nil {
			return // := binding
		}
		v, isVar := info.ObjectOf(id).(*types.Var)
		if isVar && (flow.Chain{Root: v}).IsGlobal() {
			ctx.report(fn, st.Pos, nil, "",
				fmt.Sprintf("R4: store to package-level variable %s on a speculative path — spec state must live in the journal", v.Name()))
		}
		return
	}

	// R1: any uncovered protected field along the (syntactic) access path.
	pairs := protectedFieldPairs(info, st.Target)
	if len(pairs) > 0 {
		for _, p := range pairs {
			if ctx.covered[typeKey(p.owner)][p.field] {
				continue
			}
			ctx.report(fn, st.Pos, p.owner, p.field,
				fmt.Sprintf("R1: store to %s.%s on a speculative path, but %s never mentions the field — an abort cannot roll it back; route it through the journal or cover it in a snapshot",
					p.owner.Obj().Name(), p.field, specFileName))
		}
		return // all-covered protected stores are journal-restorable
	}

	ch, ok := flow.ResolveChain(info, env, st.Target)
	if !ok {
		ctx.report(fn, st.Pos, nil, "",
			"R2: store through an unresolved access path on a speculative path — cannot prove the target is journaled")
		return
	}
	if ch.IsGlobal() {
		ctx.report(fn, st.Pos, nil, "",
			fmt.Sprintf("R4: store to package-level variable %s on a speculative path — spec state must live in the journal", ch.Root.Name()))
		return
	}
	if params[ch.Root] && pointerLike(ch.Root.Type()) {
		// A store that resolves (possibly through aliases like
		// e := &h.stepCache[i]) into a field of a protected receiver is
		// judged by that field's journal coverage, same as a syntactic
		// selector store — so spec.go coverage and field-declaration
		// exemptions apply to pointer-into-field access too.
		if owner := protectedRootNamed(ch.Root.Type()); owner != nil && len(ch.Path) > 0 {
			field := ch.Path[0]
			if ctx.covered[typeKey(owner)][field] {
				return
			}
			ctx.report(fn, st.Pos, owner, field,
				fmt.Sprintf("R1: store to %s.%s on a speculative path, but %s never mentions the field — an abort cannot roll it back; route it through the journal or cover it in a snapshot",
					owner.Obj().Name(), field, specFileName))
			return
		}
		ctx.report(fn, st.Pos, nil, "",
			fmt.Sprintf("R2: store through %s mutates caller-visible state on a speculative path with no journal coverage", ch.Root.Name()))
	}
}

// protectedRootNamed returns the spec-protected named type behind a
// (possibly pointer) root type, or nil.
func protectedRootNamed(t types.Type) *types.Named {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n := flow.NamedOf(t)
	if n != nil && isSpecProtected(n) {
		return n
	}
	return nil
}

func (ctx *specCtx) checkCall(fn *flow.Func, call *ast.CallExpr, callee *types.Func) {
	if callee == nil {
		if valueOnlyFuncCall(fn.Pkg.Info, call) || localClosureCall(fn, call) {
			// A func-value call whose parameters are all value-typed cannot
			// reach journaled state through its arguments. Mutation through
			// captured variables is covered separately: closures defined in
			// walked functions have their stores checked inline, and
			// closures installed from outside the speculative phase are part
			// of the setup boundary (DESIGN.md §12 caveats).
			return
		}
		ctx.report(fn, call.Pos(), nil, "",
			"R5: dynamic call (func value or interface method) on a speculative path — the analyzer cannot prove what it mutates")
		return
	}
	recv := recvNamed(callee)
	if recv != nil && recv.Obj().Name() == "Memory" &&
		(strings.HasPrefix(callee.Name(), "Write") || callee.Name() == "Reset") {
		ctx.report(fn, call.Pos(), nil, "",
			fmt.Sprintf("R3: direct Memory.%s on a speculative path — raw memory writes must go through the deferred-write journal (memWrite*)", callee.Name()))
	}
}

// report emits a finding unless a specwrite-ok directive covers the site,
// the enclosing function, or (for R1) the field's declaration.
func (ctx *specCtx) report(fn *flow.Func, pos token.Pos, fieldOwner *types.Named, field string, msg string) {
	pkg := ctx.byPath[fn.Pkg.Path]
	if pkg != nil && pkg.Directives.At(ctx.pass.Program.Fset, pos, "specwrite-ok") != nil {
		return
	}
	if fieldOwner != nil && ctx.fieldExempt(fieldOwner, field) {
		return
	}
	ctx.pass.Report(Diagnostic{Pos: pos, Message: msg + " (//coyote:specwrite-ok with justification to override)"})
}

// fieldExempt checks for a specwrite-ok directive at the field's
// declaration in the owning type's source package.
func (ctx *specCtx) fieldExempt(owner *types.Named, field string) bool {
	if owner.Obj().Pkg() == nil {
		return false
	}
	pkg := ctx.byPath[owner.Obj().Pkg().Path()]
	if pkg == nil {
		return false
	}
	// Re-resolve through the source-checked package so positions land in
	// the loader's FileSet even when owner came from export data.
	obj := pkg.Types.Scope().Lookup(owner.Obj().Name())
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return false
	}
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); f.Name() == field {
			return pkg.Directives.At(ctx.pass.Program.Fset, f.Pos(), "specwrite-ok") != nil
		}
	}
	return false
}

type fieldPair struct {
	owner *types.Named
	field string
}

// protectedFieldPairs collects every (protected type, field) selection in
// the store target expression. A type is protected when it declares a
// BeginSpec method.
func protectedFieldPairs(info *types.Info, target ast.Expr) []fieldPair {
	var out []fieldPair
	ast.Inspect(target, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		owner, field, ok := flow.FieldOwner(info, sel)
		if ok && isSpecProtected(owner) {
			out = append(out, fieldPair{owner: owner, field: field})
		}
		return true
	})
	return out
}

func isSpecProtected(n *types.Named) bool {
	for i := 0; i < n.NumMethods(); i++ {
		if n.Method(i).Name() == "BeginSpec" {
			return true
		}
	}
	return false
}

// paramObjects returns the set of parameter and receiver objects of decl.
func paramObjects(info *types.Info, decl *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	add(decl.Recv)
	add(decl.Type.Params)
	return out
}

// valueOnlyFuncCall reports whether call invokes a plain func value (not
// an interface method) whose parameters all have value (non-pointer-like)
// types. Such a call cannot mutate anything through its arguments.
func valueOnlyFuncCall(info *types.Info, call *ast.CallExpr) bool {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, isSel := info.Selections[sel]; isSel && s.Kind() == types.MethodVal {
			return false // interface method: the receiver is reachable state
		}
	}
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if mutableThrough(sig.Params().At(i).Type()) {
			return false
		}
	}
	return true
}

// localClosureCall reports whether call invokes a func value held in a
// local variable of fn whose every assignment is a function literal.
// Each such literal's body is syntactically inside fn, so its stores and
// calls are already checked inline by checkFunc — dispatching through
// the variable adds no unchecked behavior. (A reassignment through a
// pointer to the variable would evade the ident scan; the interpreter
// style this serves — op-table closures like intBin — never does that.)
func localClosureCall(fn *flow.Func, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	info := fn.Pkg.Info
	v, ok := info.Uses[id].(*types.Var)
	if !ok || (flow.Chain{Root: v}).IsGlobal() {
		return false
	}
	if v.Pos() < fn.Decl.Pos() || v.Pos() > fn.Decl.End() {
		return false
	}
	assigns, funcLits := 0, 0
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				lid, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := types.Object(info.Defs[lid])
				if obj == nil {
					obj = info.Uses[lid]
				}
				if obj != v {
					continue
				}
				assigns++
				if len(st.Rhs) == len(st.Lhs) {
					if _, isLit := ast.Unparen(st.Rhs[i]).(*ast.FuncLit); isLit {
						funcLits++
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range st.Names {
				if info.Defs[name] != v || i >= len(st.Values) {
					continue
				}
				assigns++
				if _, isLit := ast.Unparen(st.Values[i]).(*ast.FuncLit); isLit {
					funcLits++
				}
			}
		}
		return true
	})
	return assigns > 0 && assigns == funcLits
}

// mutableThrough reports whether a value of type t lets its recipient
// mutate state the sender can observe.
func mutableThrough(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan,
		*types.Interface, *types.Signature:
		return true
	}
	return false
}

// pointerLike reports whether a store through a chain rooted at a value
// of type t is visible to the caller.
func pointerLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map:
		return true
	}
	return false
}

// recvNamed returns the named receiver type of fn, or nil for plain
// functions.
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return flow.NamedOf(sig.Recv().Type())
}

// typeKey is a package-path-qualified type name, stable across the
// source-checked and export-data views of the same type.
func typeKey(n *types.Named) string {
	if p := n.Obj().Pkg(); p != nil {
		return p.Path() + "." + n.Obj().Name()
	}
	return n.Obj().Name()
}
