package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive is one //coyote:<kind> <reason> comment. Directives are the
// escape hatches of the determinism analyzers: every one must carry a
// justification, and the justification tests prove each is load-bearing.
type Directive struct {
	Kind   string // e.g. "mapiter-ok", "allocfree", "alloc-ok", "wallclock-ok", "floatorder-ok"
	Reason string
	Pos    token.Pos
	File   string
	Line   int
}

// DirectiveIndex holds a package's directives for line-based lookup.
type DirectiveIndex struct {
	all    []Directive
	byLine map[string]map[int][]*Directive // file → line → directives
}

// directivePrefix is the comment marker. Go tool convention: no space
// between // and the marker, so godoc ignores it.
const directivePrefix = "coyote:"

// knownDirectives enumerates every directive the suite understands,
// mapping kind → whether a justification is required after the kind word.
var knownDirectives = map[string]bool{
	"allocfree":          false, // annotation: marks a function as a checked root
	"allocfree-boundary": true,  // annotation: stops the allocfree walk at this callee
	"alloc-ok":           true,  // exempts one allocation site (pool refill etc.)
	"mapiter-ok":         true,  // exempts one map-range site
	"wallclock-ok":       true,  // exempts one wall-clock read
	"floatorder-ok":      true,  // exempts one float reduction over a map
	"statecheck-ok":      true,  // exempts one enum switch or dead state
	"portproto-ok":       true,  // exempts one fire-and-forget request site
	"specphase":          false, // annotation: marks a speculative-phase root (specwrite walks from it)
	"specwrite-ok":       true,  // exempts one un-journaled store / dynamic call on the spec path
	"globalfree":         false, // annotation: marks a root whose call graph must not touch mutable globals
	"globalmut-ok":       true,  // exempts one mutable-global use on a globalfree path
	"mut-survivor":       true,  // triages one coyotemut surviving-mutant site (equivalent mutant etc.)
}

// EscapeHatch returns the directive kind that justifies a finding of the
// given analyzer ("" when the analyzer has no escape hatch) — surfaced in
// machine-readable output so tooling can offer the suppression.
func EscapeHatch(analyzer string) string {
	switch analyzer {
	case "mapiter":
		return "mapiter-ok"
	case "wallclock":
		return "wallclock-ok"
	case "floatorder":
		return "floatorder-ok"
	case "allocfree":
		return "alloc-ok"
	case "statecheck":
		return "statecheck-ok"
	case "portproto":
		return "portproto-ok"
	case "specwrite":
		return "specwrite-ok"
	case "globalmut":
		return "globalmut-ok"
	}
	// keytaint deliberately has NO escape hatch: a proven
	// execution-strategy→result flow is a cache-poisoning bug, and the only
	// fixes are removing the flow or moving the field into the canonical
	// key (with a SchemaVersion bump).
	return ""
}

// indexDirectives scans the comment lists of files for //coyote: markers.
func indexDirectives(fset *token.FileSet, files []*ast.File) *DirectiveIndex {
	idx := &DirectiveIndex{byLine: make(map[string]map[int][]*Directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+directivePrefix)
				if !ok {
					continue
				}
				kind, reason, _ := strings.Cut(strings.TrimSpace(text), " ")
				pos := fset.Position(c.Pos())
				idx.all = append(idx.all, Directive{
					Kind:   kind,
					Reason: strings.TrimSpace(reason),
					Pos:    c.Pos(),
					File:   pos.Filename,
					Line:   pos.Line,
				})
			}
		}
	}
	for i := range idx.all {
		d := &idx.all[i]
		m := idx.byLine[d.File]
		if m == nil {
			m = make(map[int][]*Directive)
			idx.byLine[d.File] = m
		}
		m[d.Line] = append(m[d.Line], d)
	}
	return idx
}

// All returns every directive in the package.
func (idx *DirectiveIndex) All() []Directive { return idx.all }

// At returns a directive of the given kind that applies to a node
// starting at pos: on the same line, or on the line immediately above
// (the conventional placement for statement-level directives).
func (idx *DirectiveIndex) At(fset *token.FileSet, pos token.Pos, kind string) *Directive {
	p := fset.Position(pos)
	m := idx.byLine[p.Filename]
	if m == nil {
		return nil
	}
	for _, line := range [2]int{p.Line, p.Line - 1} {
		for _, d := range m[line] {
			if d.Kind == kind {
				return d
			}
		}
	}
	return nil
}

// FuncAnnotation reports whether decl's doc comment carries the given
// directive kind (e.g. //coyote:allocfree above a function).
func FuncAnnotation(decl *ast.FuncDecl, kind string) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		text, ok := strings.CutPrefix(c.Text, "//"+directivePrefix)
		if !ok {
			continue
		}
		k, _, _ := strings.Cut(strings.TrimSpace(text), " ")
		if k == kind {
			return true
		}
	}
	return false
}
