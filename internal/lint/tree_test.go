package lint

import "testing"

// TestRepoTreeClean runs the full suite over the repository exactly the
// way CI's `go run ./cmd/coyotelint ./...` does and requires zero
// findings: every hot path stays allocation-free, every map iteration in
// the simulator is order-insensitive or justified, and no simulation
// logic reads the wall clock.
func TestRepoTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	prog, err := Load("../..", []string{"./..."}, nil)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	res := RunSuite(prog)
	for _, d := range res.Diagnostics {
		t.Errorf("%s", res.Format(d))
	}
}
