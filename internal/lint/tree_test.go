package lint

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

// TestRepoTreeClean runs the full suite over the repository exactly the
// way CI's `go run ./cmd/coyotelint ./...` does and requires zero
// findings: every hot path stays allocation-free, every map iteration in
// the simulator is order-insensitive or justified, and no simulation
// logic reads the wall clock.
func TestRepoTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	prog, err := Load("../..", []string{"./..."}, nil)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	res := RunSuite(prog)
	for _, d := range res.Diagnostics {
		t.Errorf("%s", res.Format(d))
	}
}

// TestSeededMutationsCaughtStatically applies the classic sanitizer
// mutations to the real uncore sources via the loader's overlay and
// proves the protocol analyzers catch each one at lint time — the static
// counterpart of the runtime demonstrations in internal/uncore's
// coyotesan tests.
func TestSeededMutationsCaughtStatically(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks internal/uncore")
	}
	cases := []struct {
		name     string
		file     string // suffix of the source file to mutate
		old, new string
		analyzer *Analyzer
		wantMsg  string
	}{
		{
			// Dropping the prefetch arm of the MSHR fill switch lumps a
			// state into default — a deleted transition.
			name: "statecheck/dropped-state-arm", file: "l2bank.go",
			old: "case mshrPrefetch:", new: "default:",
			analyzer: StateCheckAnalyzer, wantMsg: `misses state mshrPrefetch`,
		},
		{
			// Stripping the justification from the deliberate
			// fire-and-forget site exposes the zero-Done read.
			name: "portproto/stripped-justification", file: "llc.go",
			old:      "//coyote:portproto-ok write-allocate fetch: the write already completed at the slice, the fetch only warms the line",
			new:      "",
			analyzer: PortProtoAnalyzer, wantMsg: `zero Done`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base, err := Load("../..", []string{"./internal/uncore"}, nil)
			if err != nil {
				t.Fatalf("loading internal/uncore: %v", err)
			}
			var file string
			for _, fn := range base.Packages[0].Filenames {
				if strings.HasSuffix(fn, tc.file) {
					file = fn
				}
			}
			if file == "" {
				t.Fatalf("internal/uncore has no file %s", tc.file)
			}
			if n := len(RunAnalyzers(base, []*Analyzer{tc.analyzer}, nil).Diagnostics); n != 0 {
				t.Fatalf("unmutated tree already has %d %s findings", n, tc.analyzer.Name)
			}

			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(string(src), tc.old) {
				t.Fatalf("%s does not contain %q; the mutation no longer applies", file, tc.old)
			}
			mutated := strings.Replace(string(src), tc.old, tc.new, 1)

			prog, err := Load("../..", []string{"./internal/uncore"}, map[string][]byte{file: []byte(mutated)})
			if err != nil {
				t.Fatalf("loading mutated internal/uncore: %v", err)
			}
			res := RunAnalyzers(prog, []*Analyzer{tc.analyzer}, nil)
			re := regexp.MustCompile(tc.wantMsg)
			for _, d := range res.Diagnostics {
				if re.MatchString(d.Message) {
					return
				}
			}
			for _, d := range res.Diagnostics {
				t.Logf("got: %s", res.Format(d))
			}
			t.Fatalf("mutation %s produced no %s finding matching %q", tc.name, tc.analyzer.Name, tc.wantMsg)
		})
	}
}
