package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"github.com/coyote-sim/coyote/internal/lint/flow"
)

// GlobalMutAnalyzer proves that the simulation entry points are free of
// hidden global state: no *mutable* package-level variable may be read
// or written anywhere in the static call graph of a function annotated
// //coyote:globalfree. Two simulations of the same Config must not be
// able to influence each other, and a Sweep must be order-independent —
// both properties die the moment a reachable function touches a global
// someone mutates.
//
// Classification runs over every loaded source package first:
// a package-level variable is MUTABLE when, outside init functions,
// it is (a) stored to, (b) address-taken (a write-capable escape), or
// (c) the receiver of a pointer-receiver method call (sync.Map.Store
// and friends mutate through the implicit &). Variables only assigned
// at declaration or inside init — the registry pattern — stay immutable
// and may be read freely.
//
// Reads are flagged alongside writes deliberately: reading a global
// that anyone mutates makes the result depend on call ordering even if
// this path never writes it.
//
// //coyote:globalmut-ok <justification> exempts one site or a whole
// function (doc comment). Dynamic calls are not walked — same boundary
// as every walker-based analyzer — so a mutable global reached only
// through a func value escapes this check (documented in DESIGN.md §12).
var GlobalMutAnalyzer = &Analyzer{
	Name:       "globalmut",
	Doc:        "call graphs of //coyote:globalfree roots must not read or write mutable package-level state",
	RunProgram: runGlobalMut,
}

func runGlobalMut(pass *ProgramPass) {
	fprog := pass.Program.Flow()

	var roots []*flow.Func
	for key, fn := range pass.Program.Funcs {
		if FuncAnnotation(fn.Decl, "globalfree") {
			roots = append(roots, fprog.Funcs[key])
		}
	}
	if len(roots) == 0 {
		return
	}

	mutated := classifyMutableGlobals(fprog)

	byPath := make(map[string]*Package, len(pass.Program.Packages))
	for _, pkg := range pass.Program.Packages {
		byPath[pkg.ImportPath] = pkg
	}

	w := &flow.Walker{Prog: fprog}
	for _, fn := range w.Reachable(roots) {
		if FuncAnnotation(fn.Decl, "globalmut-ok") {
			continue
		}
		pkg := byPath[fn.Pkg.Path]
		reportGlobalUses(pass, pkg, fn, mutated)
	}
}

// mutation records why a global was classified mutable.
type mutation struct {
	pos  token.Pos
	kind string
}

// classifyMutableGlobals scans every function body in the program for
// the three mutation signals, keyed by package-path-qualified variable
// name (object identity differs between the source-checked and
// export-data views of the same package).
func classifyMutableGlobals(fprog *flow.Program) map[string]mutation {
	mutated := map[string]mutation{}
	record := func(obj types.Object, pos token.Pos, kind string) {
		v, ok := obj.(*types.Var)
		if !ok || !(flow.Chain{Root: v}).IsGlobal() {
			return
		}
		key := globalKey(v)
		if _, seen := mutated[key]; !seen {
			mutated[key] = mutation{pos: pos, kind: kind}
		}
	}
	initOnly := initOnlyFuncs(fprog)
	for _, fn := range fprog.Funcs {
		if isInitFunc(fn.Obj) || initOnly[fn.Key] {
			continue // init-time setup is the legitimate registry pattern
		}
		info := fn.Pkg.Info
		flow.ForEachStore(fn.Decl.Body, func(st flow.Store) {
			record(flow.RootObject(info, st.Target), st.Pos, "stored")
		})
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.UnaryExpr:
				if e.Op == token.AND {
					record(flow.RootObject(info, e.X), e.Pos(), "address-taken")
				}
			case *ast.CallExpr:
				sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				s, ok := info.Selections[sel]
				if !ok || s.Kind() != types.MethodVal {
					return true
				}
				m, ok := s.Obj().(*types.Func)
				if !ok || !hasPointerReceiver(m) {
					return true
				}
				record(flow.RootObject(info, sel.X), e.Pos(), "pointer-receiver method "+m.Name()+" called")
			}
			return true
		})
	}
	return mutated
}

// reportGlobalUses flags every identifier in fn that resolves to a
// mutable package-level variable, reads and writes alike.
func reportGlobalUses(pass *ProgramPass, pkg *Package, fn *flow.Func, mutated map[string]mutation) {
	info := fn.Pkg.Info
	seen := map[token.Pos]bool{}
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || !(flow.Chain{Root: v}).IsGlobal() {
			return true
		}
		mut, isMutable := mutated[globalKey(v)]
		if !isMutable || seen[id.Pos()] {
			return true
		}
		seen[id.Pos()] = true
		if pkg != nil && pkg.Directives.At(pass.Program.Fset, id.Pos(), "globalmut-ok") != nil {
			return true
		}
		where := pass.Program.Fset.Position(mut.pos)
		pass.Report(Diagnostic{
			Pos: id.Pos(),
			Message: fmt.Sprintf(
				"mutable package-level variable %s used on a //coyote:globalfree path (%s at %s:%d) — "+
					"pass the state explicitly or justify with //coyote:globalmut-ok",
				v.Name(), mut.kind, shortFile(where.Filename), where.Line),
		})
		return true
	})
}

// initOnlyFuncs computes the functions whose bodies can only ever run
// during package initialization: unexported non-method functions that
// are never referenced as a value and whose every static caller is an
// init function or itself init-only. The registry helper pattern —
// kernels calling register() from init, tables built by an unexported
// build function — lands here, and its stores are setup, not runtime
// mutation. A function referenced in a package-level var initializer or
// used as a func value anywhere is conservatively excluded.
func initOnlyFuncs(fprog *flow.Program) map[string]bool {
	callers := map[string][]*flow.Func{}
	escapes := map[string]bool{} // referenced as a value somewhere
	noteEscape := func(info *types.Info, root ast.Node, calleeIdents map[*ast.Ident]bool) {
		ast.Inspect(root, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || calleeIdents[id] {
				return true
			}
			if f, ok := info.Uses[id].(*types.Func); ok {
				if t := fprog.Resolve(f); t != nil {
					escapes[t.Key] = true
				}
			}
			return true
		})
	}
	for _, fn := range fprog.Funcs {
		info := fn.Pkg.Info
		calleeIdents := map[*ast.Ident]bool{}
		flow.ForEachCall(info, fn.Decl.Body, func(call *ast.CallExpr, callee *types.Func) {
			if id := calleeNameIdent(call.Fun); id != nil {
				calleeIdents[id] = true
			}
			if callee == nil {
				return
			}
			if t := fprog.Resolve(callee); t != nil {
				callers[t.Key] = append(callers[t.Key], fn)
			}
		})
		noteEscape(info, fn.Decl.Body, calleeIdents)
	}
	// Package-level variable initializers can also smuggle a function out
	// as a value (var f = register) — or call one directly, which counts
	// as a non-init caller we cannot attribute, so treat it as an escape.
	for _, pkg := range fprog.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				if gd, ok := decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
					noteEscape(pkg.Info, gd, nil)
				}
			}
		}
	}

	const (
		pending = iota + 1
		yes
		no
	)
	state := map[string]int{}
	var rec func(key string) bool
	rec = func(key string) bool {
		switch state[key] {
		case yes:
			return true
		case pending, no: // cycles are conservatively not init-only
			return false
		}
		state[key] = pending
		fn := fprog.Funcs[key]
		sig, _ := fn.Obj.Type().(*types.Signature)
		ok := !fn.Obj.Exported() && sig != nil && sig.Recv() == nil &&
			!escapes[key] && len(callers[key]) > 0
		if ok {
			for _, c := range callers[key] {
				if isInitFunc(c.Obj) {
					continue
				}
				if !rec(c.Key) {
					ok = false
					break
				}
			}
		}
		if ok {
			state[key] = yes
		} else {
			state[key] = no
		}
		return ok
	}
	out := map[string]bool{}
	for key := range fprog.Funcs {
		if rec(key) {
			out[key] = true
		}
	}
	return out
}

// calleeNameIdent returns the identifier naming the function in a direct
// call expression (f(...) or x.f(...)), or nil for other call shapes.
func calleeNameIdent(e ast.Expr) *ast.Ident {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e
	case *ast.SelectorExpr:
		return e.Sel
	}
	return nil
}

func isInitFunc(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return fn.Name() == "init" && ok && sig.Recv() == nil
}

func hasPointerReceiver(fn *types.Func) bool {
	sig, ok := fn.Origin().Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, isPtr := sig.Recv().Type().(*types.Pointer)
	return isPtr
}

func globalKey(v *types.Var) string {
	if v.Pkg() != nil {
		return v.Pkg().Path() + "." + v.Name()
	}
	return v.Name()
}
