package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"github.com/coyote-sim/coyote/internal/lint/flow"
)

// Package is one parsed and type-checked package of the module under
// analysis.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Filenames  []string
	Types      *types.Package
	Info       *types.Info

	// Directives holds every //coyote: directive found in the package's
	// comments, indexed for line-based lookup.
	Directives *DirectiveIndex
}

// Program is the whole-program view shared by every analyzer run: all
// loaded packages on one FileSet, plus a function index for call-graph
// analyses keyed by a package-path-qualified name (see FuncKey).
type Program struct {
	Fset     *token.FileSet
	Packages []*Package
	Funcs    map[string]*FuncNode

	flowProg *flow.Program // lazily built by Flow()
}

// Flow returns the dataflow engine's view of the program, built once and
// cached: the same files, type info and FileSet, re-indexed into the
// flow package's model (flow cannot import lint, so the bridge lives
// here).
func (p *Program) Flow() *flow.Program {
	if p.flowProg == nil {
		pkgs := make([]*flow.Package, 0, len(p.Packages))
		for _, pkg := range p.Packages {
			pkgs = append(pkgs, &flow.Package{
				Path:      pkg.ImportPath,
				Files:     pkg.Files,
				Filenames: pkg.Filenames,
				Types:     pkg.Types,
				Info:      pkg.Info,
			})
		}
		p.flowProg = flow.NewProgram(p.Fset, pkgs)
	}
	return p.flowProg
}

// FuncNode is one function or method with a body, available for
// call-graph walking.
type FuncNode struct {
	Key  string
	Pkg  *Package
	Decl *ast.FuncDecl
	Obj  *types.Func
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath  string
	Dir         string
	Export      string
	GoFiles     []string
	TestGoFiles []string
	Deps        []string
	TestImports []string
	Standard    bool
	Incomplete  bool
	Error       *struct{ Err string }
}

// PackageInfo is the loader's pre-typecheck view of one root package:
// what `go list` reported. Tools that schedule work over the package
// graph (coyotemut's dependent-package selection) read these without
// paying for a typecheck.
type PackageInfo struct {
	ImportPath  string
	Dir         string
	GoFiles     []string // non-test sources, file names relative to Dir
	TestGoFiles []string // in-package _test.go sources
	Deps        []string // transitive (non-test) dependency import paths
	TestImports []string // direct imports of the in-package test files
}

// LoadOptions tunes a Loader.
type LoadOptions struct {
	// IncludeTests parses and type-checks each root package's in-package
	// _test.go files together with the package proper, so test functions
	// appear in the Program's function index (and hence in flow call
	// graphs). External "_test"-suffixed test packages are not supported
	// and their files are ignored; this repo's convention is in-package
	// tests throughout.
	IncludeTests bool
}

// Loader resolves a pattern set once (two `go list` invocations) and can
// then build any number of Programs against different overlays without
// re-shelling to the go tool. coyotemut leans on this: one Loader, one
// type-check per candidate mutant, zero repeated `go list` cost.
type Loader struct {
	dir     string
	opts    LoadOptions
	roots   []*listedPkg
	exports map[string]string
}

// NewLoader shells out to `go list` for patterns (run in dir) and
// returns a Loader ready to build Programs. dir is the directory the go
// tool runs in (the module root, or any directory inside it).
func NewLoader(dir string, patterns []string, opts LoadOptions) (*Loader, error) {
	roots, exports, err := goList(dir, patterns, opts.IncludeTests)
	if err != nil {
		return nil, err
	}
	if len(roots) == 0 {
		return nil, fmt.Errorf("lint: no packages match %v", patterns)
	}
	return &Loader{dir: dir, opts: opts, roots: roots, exports: exports}, nil
}

// Packages returns the `go list` view of the root packages, in listing
// order.
func (l *Loader) Packages() []PackageInfo {
	out := make([]PackageInfo, 0, len(l.roots))
	for _, lp := range l.roots {
		out = append(out, PackageInfo{
			ImportPath:  lp.ImportPath,
			Dir:         lp.Dir,
			GoFiles:     lp.GoFiles,
			TestGoFiles: lp.TestGoFiles,
			Deps:        lp.Deps,
			TestImports: lp.TestImports,
		})
	}
	return out
}

// Load parses and type-checks every root package against the overlay
// (absolute file path → replacement contents; nil for none) and returns
// the Program. Each call builds a fresh FileSet and type universe, so
// Programs from the same Loader are independent.
func (l *Loader) Load(overlay map[string][]byte) (*Program, error) {
	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		e, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(e)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	prog := &Program{Fset: fset, Funcs: make(map[string]*FuncNode)}
	for _, lp := range l.roots {
		pkg, err := typecheck(fset, imp, lp, overlay, l.opts.IncludeTests)
		if err != nil {
			return nil, err
		}
		prog.Packages = append(prog.Packages, pkg)
		indexFuncs(prog, pkg)
	}
	return prog, nil
}

// Load builds a Program for the packages matching patterns, resolving
// every import from compiler export data so no network access and no
// third-party dependencies are needed. dir is the directory the go tool
// runs in (the module root, or any directory inside it). overlay maps
// absolute file paths to replacement contents; the justification tests
// use it to re-lint a package with one directive removed. One-shot
// convenience over NewLoader + Loader.Load.
func Load(dir string, patterns []string, overlay map[string][]byte) (*Program, error) {
	l, err := NewLoader(dir, patterns, LoadOptions{})
	if err != nil {
		return nil, err
	}
	return l.Load(overlay)
}

// goList shells out to the go tool twice: once without -deps to learn the
// root packages to analyze from source, once with -export -deps to map
// every transitively imported package to its export data file. With
// tests, both listings include the test variants so test-only imports
// resolve too.
func goList(dir string, patterns []string, tests bool) (roots []*listedPkg, exports map[string]string, err error) {
	rootArgs := []string{"list", "-json=ImportPath,Dir,GoFiles,TestGoFiles,Deps,TestImports"}
	depArgs := []string{"list", "-export", "-deps"}
	if tests {
		depArgs = append(depArgs, "-test")
	}
	depArgs = append(depArgs, "-json=ImportPath,Export")
	rootOut, err := runGoList(dir, append(rootArgs, patterns...))
	if err != nil {
		return nil, nil, err
	}
	depOut, err := runGoList(dir, append(depArgs, patterns...))
	if err != nil {
		return nil, nil, err
	}

	dec := json.NewDecoder(bytes.NewReader(rootOut))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("lint: parsing go list output: %w", err)
		}
		q := p
		roots = append(roots, &q)
	}

	exports = make(map[string]string)
	dec = json.NewDecoder(bytes.NewReader(depOut))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("lint: parsing go list -export output: %w", err)
		}
		if p.Export != "" {
			// Test variants list as "pkg [pkg.test]"; their export data is
			// for the augmented package, which nothing imports by that
			// name. Keep the plain path's entry.
			if _, dup := exports[p.ImportPath]; !dup {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	return roots, exports, nil
}

func runGoList(dir string, args []string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go %s: %v\n%s", strings.Join(args[:2], " "), err, stderr.String())
	}
	return out, nil
}

// typecheck parses and type-checks one package from source, resolving
// imports through imp.
func typecheck(fset *token.FileSet, imp types.Importer, lp *listedPkg, overlay map[string][]byte, tests bool) (*Package, error) {
	pkg := &Package{ImportPath: lp.ImportPath, Dir: lp.Dir}
	names := lp.GoFiles
	if tests {
		names = append(append([]string(nil), lp.GoFiles...), lp.TestGoFiles...)
	}
	for _, name := range names {
		path := filepath.Join(lp.Dir, name)
		var src any
		if overlay != nil {
			if content, ok := overlay[path]; ok {
				src = content
			}
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Filenames = append(pkg.Filenames, path)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, pkg.Files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", lp.ImportPath, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	pkg.Directives = indexDirectives(fset, pkg.Files)
	return pkg, nil
}

// indexFuncs registers every function and method declaration with a body
// into the program-wide function table.
func indexFuncs(prog *Program, pkg *Package) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			key := FuncKey(obj)
			prog.Funcs[key] = &FuncNode{Key: key, Pkg: pkg, Decl: fd, Obj: obj}
		}
	}
}

// FuncKey returns a stable, instantiation-independent identifier for a
// function or method: "pkg/path.Func" or "pkg/path.Recv.Method". Keys
// built from a source-checked *types.Func and from an export-data import
// of the same function agree, which is what lets the allocfree walker
// cross package boundaries.
func FuncKey(fn *types.Func) string {
	fn = fn.Origin()
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if n, isNamed := t.(*types.Named); isNamed {
			obj := n.Origin().Obj()
			if obj.Pkg() != nil {
				return obj.Pkg().Path() + "." + obj.Name() + "." + fn.Name()
			}
			return obj.Name() + "." + fn.Name()
		}
		return t.String() + "." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	return fn.Name()
}
