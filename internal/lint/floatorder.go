package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatOrderAnalyzer flags floating-point accumulation inside a range
// over a map. Float addition is not associative: summing the same values
// in a different order yields a different result, so a float reduction
// over a randomized-order container makes reported statistics (miss
// rates, averages) differ between identical runs even when every counter
// matches. Integer accumulation is exact and therefore mapiter-exempt;
// float accumulation is not, even under //coyote:mapiter-ok. Sum floats
// in index order (sorted keys), or justify with
// //coyote:floatorder-ok <reason>.
var FloatOrderAnalyzer = &Analyzer{
	Name: "floatorder",
	Doc:  "flags float accumulation over unordered containers",
	Run:  runFloatOrder,
}

func runFloatOrder(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			ast.Inspect(rs.Body, func(m ast.Node) bool {
				as, ok := m.(*ast.AssignStmt)
				if !ok {
					return true
				}
				if as.Tok != token.ADD_ASSIGN && as.Tok != token.SUB_ASSIGN && as.Tok != token.MUL_ASSIGN {
					return true
				}
				for _, lhs := range as.Lhs {
					lt := info.TypeOf(lhs)
					if lt == nil {
						continue
					}
					if b, ok := lt.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
						if pass.Pkg.Directives.At(pass.Fset, as.Pos(), "floatorder-ok") != nil ||
							pass.Pkg.Directives.At(pass.Fset, rs.For, "floatorder-ok") != nil {
							continue
						}
						pass.Report(Diagnostic{
							Pos: as.Pos(),
							Message: "float accumulation inside a map range: addition order is randomized, " +
								"so the sum is not reproducible; reduce over sorted keys, or justify with //coyote:floatorder-ok <reason>",
						})
					}
				}
				return true
			})
			return true
		})
	}
}
