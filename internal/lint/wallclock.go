package lint

import (
	"go/ast"
	"go/types"
)

// WallClockAnalyzer flags reads of the wall clock, the process
// environment, and the globally-seeded random source inside simulator
// packages. Simulated time must come from the evsim engine and
// configuration from explicit Config values; anything else makes two
// identical runs diverge (or makes a run depend on the machine it ran
// on). The //coyote:wallclock-ok <reason> directive exempts a site —
// e.g. the orchestrator's wall-clock MIPS measurement, which reports
// simulator throughput and never feeds back into simulated timing.
var WallClockAnalyzer = &Analyzer{
	Name: "wallclock",
	Doc:  "flags wall-clock, environment and global-rand reads in simulation logic",
	Run:  runWallClock,
}

// bannedFuncs maps package path → function names whose call (or mention)
// in simulator code is nondeterministic input.
var bannedFuncs = map[string]map[string]bool{
	"time": {"Now": true, "Since": true, "Until": true},
	"os":   {"Getenv": true, "LookupEnv": true, "Environ": true},
}

// allowedRand lists math/rand package-level functions that do NOT draw
// from the global (effectively unseeded) source. Everything else at
// package level does and is banned; methods on an explicitly seeded
// *rand.Rand are always fine.
var allowedRand = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runWallClock(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. on a seeded *rand.Rand) are fine
			}
			path := fn.Pkg().Path()
			var banned bool
			switch path {
			case "math/rand", "math/rand/v2":
				banned = !allowedRand[fn.Name()]
			default:
				banned = bannedFuncs[path][fn.Name()]
			}
			if !banned {
				return true
			}
			if pass.Pkg.Directives.At(pass.Fset, sel.Pos(), "wallclock-ok") != nil {
				return true
			}
			pass.Report(Diagnostic{
				Pos: sel.Pos(),
				Message: path + "." + fn.Name() + " is nondeterministic input to simulation logic; " +
					"use evsim time / explicit config / a seeded rand.Rand, or justify with //coyote:wallclock-ok <reason>",
			})
			return true
		})
	}
}
