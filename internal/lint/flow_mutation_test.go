package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestFlowSeededMutations seeds one cache-poisoning, one spec-isolation
// and one hidden-global bug into the real simulator sources via the
// loader's overlay, and proves each is caught at lint time by exactly
// the intended flow analyzer: the intended analyzer reports a finding
// matching wantMsg, and the other two stay silent. This is the static
// counterpart of the runtime demonstrations (the golden worker matrix,
// the coyotesan spec audits) — the bugs below would poison the result
// cache or corrupt committed state only under specific schedules, but
// the dataflow engine rejects them on every schedule, at compile time.
func TestFlowSeededMutations(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks internal/core and internal/cpu")
	}
	flowAnalyzers := []*Analyzer{KeyTaintAnalyzer, SpecWriteAnalyzer, GlobalMutAnalyzer}
	cases := []struct {
		name     string
		patterns []string
		file     string // suffix of the source file to mutate
		old, new string
		analyzer *Analyzer
		wantMsg  string
	}{
		{
			// A worker-count-dependent result: the canonical key omits
			// Workers on the strength of the determinism proof, so any
			// Workers→Result flow silently poisons the cache.
			name:     "keytaint/workers-into-result",
			patterns: []string{"./internal/core"},
			file:     "stats.go",
			old:      "r.Instructions += h.Stats.Instret",
			new:      "r.Instructions += h.Stats.Instret + uint64(s.cfg.Workers)",
			analyzer: KeyTaintAnalyzer,
			wantMsg:  `key-excluded execution-strategy field Config\.Workers .*flows into Result\.Instructions`,
		},
		{
			// A raw memory write on the speculative path: an aborted
			// quantum could not roll it back. The deferred-write journal
			// (memWrite32) is the only legal route.
			name:     "specwrite/raw-write-on-spec-path",
			// internal/cache rides along for its spec.go: journal
			// coverage is read from the owning package's source.
			patterns: []string{"./internal/core", "./internal/cpu", "./internal/cache"},
			file:     "exec_scalar.go",
			old:      "h.memWrite32(a, res)",
			new:      "h.Mem.Write32(a, res)",
			analyzer: SpecWriteAnalyzer,
			wantMsg:  `R3: direct Memory\.Write32`,
		},
		{
			// Hidden cross-run state: a package-level counter mutated on
			// the Run path makes two simulations of the same Config
			// observably order-dependent.
			name:     "globalmut/counter-on-run-path",
			patterns: []string{"./internal/core"},
			file:     "system.go",
			old:      "//coyote:globalfree\nfunc (s *System) Run() (*Result, error) {",
			new:      "var runSeq uint64\n\n//coyote:globalfree\nfunc (s *System) Run() (*Result, error) {\n\trunSeq++",
			analyzer: GlobalMutAnalyzer,
			wantMsg:  `mutable package-level variable runSeq`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base, err := Load("../..", tc.patterns, nil)
			if err != nil {
				t.Fatalf("loading %v: %v", tc.patterns, err)
			}
			var file string
			for _, pkg := range base.Packages {
				for _, fn := range pkg.Filenames {
					if strings.HasSuffix(fn, string(filepath.Separator)+tc.file) {
						file = fn
					}
				}
			}
			if file == "" {
				t.Fatalf("%v has no file %s", tc.patterns, tc.file)
			}
			if diags := RunAnalyzers(base, flowAnalyzers, nil).Diagnostics; len(diags) != 0 {
				for _, d := range diags {
					t.Logf("got: %s", RunAnalyzers(base, flowAnalyzers, nil).Format(d))
				}
				t.Fatalf("unmutated tree already has %d flow findings", len(diags))
			}

			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(string(src), tc.old) {
				t.Fatalf("%s does not contain %q; the mutation no longer applies", file, tc.old)
			}
			mutated := strings.Replace(string(src), tc.old, tc.new, 1)

			prog, err := Load("../..", tc.patterns, map[string][]byte{file: []byte(mutated)})
			if err != nil {
				t.Fatalf("loading mutated %v: %v", tc.patterns, err)
			}
			res := RunAnalyzers(prog, flowAnalyzers, nil)
			re := regexp.MustCompile(tc.wantMsg)
			matched := false
			for _, d := range res.Diagnostics {
				if d.Analyzer != tc.analyzer.Name {
					t.Errorf("mutation tripped the wrong analyzer: %s", res.Format(d))
					continue
				}
				if re.MatchString(d.Message) {
					matched = true
				}
			}
			if !matched {
				for _, d := range res.Diagnostics {
					t.Logf("got: %s", res.Format(d))
				}
				t.Fatalf("mutation %s produced no %s finding matching %q", tc.name, tc.analyzer.Name, tc.wantMsg)
			}
		})
	}
}
