package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
)

// PortProtoAnalyzer enforces the request/completion protocol of the
// memory system: every read request submitted to a port must carry a
// completion callback. A read handed to the uncore with a zero Done is
// fire-and-forget — nothing will ever observe the fill, so a lost
// response is silently absorbed instead of hanging the simulation where
// the sanitizer (or a timeout) can see it. Writes are posted by design
// and are exempt when the write flag is a constant true.
//
// Flagged shapes, at the call site:
//
//	port.request(addr, false, 0, Done{})          // read, nobody waits
//	u.Submit(Request{Addr: a})                    // no Done, not a write
//
// Types are matched structurally by name and shape (a struct named
// "Done" with a func-valued field; a struct named "Request" with a
// Done-typed field) so the check applies to any port implementation,
// not just internal/uncore. Deliberate fire-and-forget sites — e.g. a
// prefetch or a write-allocate fetch whose effect is only warming a
// cache — must be justified with //coyote:portproto-ok <reason>.
var PortProtoAnalyzer = &Analyzer{
	Name: "portproto",
	Doc:  "read requests must carry a completion: no fire-and-forget port sends",
	Run:  runPortProto,
}

// doneLike reports whether t is a completion-callback struct: a named
// type called "Done" whose struct carries at least one func field.
func doneLike(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Name() != "Done" {
		return false
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if _, ok := st.Field(i).Type().Underlying().(*types.Signature); ok {
			return true
		}
	}
	return false
}

// requestLike reports whether t is a request struct: a named type called
// "Request" with a Done-like field named "Done".
func requestLike(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Name() != "Request" {
		return false
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "Done" && doneLike(f.Type()) {
			return true
		}
	}
	return false
}

func runPortProto(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkCall(pass, call)
			return true
		})
	}
}

func checkCall(pass *Pass, call *ast.CallExpr) {
	info := pass.Pkg.Info
	for _, arg := range call.Args {
		lit, ok := arg.(*ast.CompositeLit)
		if !ok {
			continue
		}
		t := info.TypeOf(lit)
		if t == nil {
			continue
		}
		switch {
		case doneLike(t) && len(lit.Elts) == 0:
			// Zero Done literal: fine on a posted write, a protocol hole
			// on a read.
			if callIsConstTrueWrite(info, call) {
				continue
			}
			if pass.Pkg.Directives.At(pass.Fset, call.Pos(), "portproto-ok") != nil {
				continue
			}
			pass.Report(Diagnostic{
				Pos: lit.Pos(),
				Message: "read request carries a zero Done: fire-and-forget send, the fill is unobservable; " +
					"attach a completion or justify with //coyote:portproto-ok <reason>",
			})
		case requestLike(t):
			if requestLitCompletes(info, lit) {
				continue
			}
			if pass.Pkg.Directives.At(pass.Fset, call.Pos(), "portproto-ok") != nil {
				continue
			}
			pass.Report(Diagnostic{
				Pos: lit.Pos(),
				Message: fmt.Sprintf("%s submitted without a Done and not marked Write: fire-and-forget send, "+
					"the fill is unobservable; attach a completion or justify with //coyote:portproto-ok <reason>",
					types.TypeString(t, types.RelativeTo(pass.Pkg.Types))),
			})
		}
	}
}

// requestLitCompletes reports whether a Request composite literal either
// attaches a completion (Done: …) or is a posted write (Write: true).
// Requests built up in a variable can gain their Done later and never
// reach this check — only literals passed straight into a call do.
func requestLitCompletes(info *types.Info, lit *ast.CompositeLit) bool {
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			// Positional Request literal: assume the author filled every
			// field, including Done.
			return true
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "Done":
			return true
		case "Write":
			if isConstTrue(info, kv.Value) {
				return true
			}
		}
	}
	return false
}

// callIsConstTrueWrite reports whether the call passes a constant true to
// its write flag — the parameter named "write"/"Write", or failing a
// named match (func-valued fields lose their parameter names), the first
// bool parameter.
func callIsConstTrueWrite(info *types.Info, call *ast.CallExpr) bool {
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	writeIdx := -1
	for i := 0; i < params.Len(); i++ {
		p := params.At(i)
		b, ok := p.Type().Underlying().(*types.Basic)
		if !ok || b.Kind() != types.Bool {
			continue
		}
		if p.Name() == "write" || p.Name() == "Write" {
			writeIdx = i
			break
		}
		if writeIdx < 0 {
			writeIdx = i
		}
	}
	if writeIdx < 0 || writeIdx >= len(call.Args) {
		return false
	}
	return isConstTrue(info, call.Args[writeIdx])
}

func isConstTrue(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil && tv.Value.Kind() == constant.Bool && constant.BoolVal(tv.Value)
}
