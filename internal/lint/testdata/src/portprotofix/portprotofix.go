// Package portprotofix is the analysistest-style fixture for the
// portproto analyzer: each `// want` comment marks a line the analyzer
// must flag, with a regexp the diagnostic message must match; lines
// without a want marker must stay clean. The Done/Request shapes mirror
// internal/uncore — the analyzer matches them structurally, so the
// fixture needs no imports.
package portprotofix

// Cycle mirrors evsim.Cycle.
type Cycle uint64

// Done mirrors uncore.Done: a completion callback.
type Done struct {
	F   func(uint64)
	Arg uint64
}

// Request mirrors uncore.Request.
type Request struct {
	Addr  uint64
	Write bool
	Done  Done
}

type port struct{ nextFree Cycle }

func (p *port) request(addr uint64, write bool, extraDelay Cycle, done Done) {}

// Submit mirrors Uncore.Submit.
func (p *port) Submit(r Request) {}

// Reads shows the flagged and clean shapes of the low-level call.
func Reads(p *port, a uint64, cb func(uint64)) {
	p.request(a, false, 0, Done{}) // want `zero Done`
	p.request(a, true, 0, Done{})  // posted write: exempt
	p.request(a, false, 0, Done{F: cb})
	const isWrite = true
	p.request(a, isWrite, 0, Done{}) // constant-true write: exempt
}

// Prefetch is deliberately fire-and-forget; the strip test removes the
// directive and asserts the finding reappears.
func Prefetch(p *port, a uint64) {
	//coyote:portproto-ok prefetch: the fill only warms the tags, nobody consumes the data
	p.request(a, false, 0, Done{})
}

// Submits shows the Request-literal shapes.
func Submits(p *port, a uint64, cb func(uint64)) {
	p.Submit(Request{Addr: a}) // want `without a Done`
	p.Submit(Request{Addr: a, Write: true})
	p.Submit(Request{Addr: a, Done: Done{F: cb}})
}

// Built requests gain their completion after construction: the analyzer
// only judges literals passed straight into a call, so this stays clean.
func Built(p *port, a uint64, cb func(uint64)) {
	r := Request{Addr: a}
	r.Done = Done{F: cb}
	p.Submit(r)
}

// sink carries an unnamed-parameter func field: the write flag is found
// by the first-bool-parameter fallback.
type sink struct {
	send func(uint64, bool, Cycle, Done)
}

// Fire exercises the fallback on both sides.
func Fire(s *sink, a uint64) {
	s.send(a, true, 0, Done{})
	s.send(a, false, 0, Done{}) // want `zero Done`
}
