// Package statecheckfix is the analysistest-style fixture for the
// statecheck analyzer: each `// want` comment marks a line the analyzer
// must flag, with a regexp the diagnostic message must match; lines
// without a want marker must stay clean.
package statecheckfix

// txnState is a state enum: named integer type with >= 2 constants.
type txnState uint8

const (
	txnIdle txnState = iota
	txnBusy
	txnDrain
)

// Handle drops the txnDrain arm; the default does not excuse it.
func Handle(s txnState) int {
	switch s { // want `misses state txnDrain`
	case txnIdle:
		return 0
	case txnBusy:
		return 1
	default:
		return 2
	}
}

// Full covers every state: clean.
func Full(s txnState) int {
	switch s {
	case txnIdle:
		return 0
	case txnBusy:
		return 1
	case txnDrain:
		return 2
	}
	return -1
}

// Justified covers one state deliberately; the strip test removes the
// directive and asserts the finding reappears.
func Justified(s txnState) bool {
	//coyote:statecheck-ok only the drain state is reachable here; the dispatcher filters the rest
	switch s {
	case txnDrain:
		return true
	}
	return false
}

// Matches switches with a non-constant case: unverifiable, skipped.
func Matches(s, other txnState) bool {
	switch s {
	case other:
		return true
	}
	return false
}

// lruState demonstrates the dead-state check: lruGone is declared but
// nothing references it — an unreachable state.
type lruState uint8

const (
	lruHot lruState = iota
	lruCold
	lruGone // want `state lruGone of .*lruState is never used`
)

// Demote references lruHot and lruCold but never lruGone.
func Demote(s lruState) lruState {
	if s == lruHot {
		return lruCold
	}
	return s
}

// Mode is exported: its states may be consumed by other packages, so the
// dead-state check does not apply even though ModeB is unused here.
type Mode uint8

const (
	ModeA Mode = iota
	ModeB
)

// phase has a single constant: a sentinel, not a state machine; switches
// over it are not checked.
type phase uint8

const phaseInit phase = 0

// Began switches over the sentinel type: clean.
func Began(p phase) bool {
	switch p {
	case phaseInit:
		return true
	}
	return false
}

// Width switches over a plain int: not a named enum, never checked.
func Width(n int) int {
	switch n {
	case 0:
		return 1
	}
	return n
}
