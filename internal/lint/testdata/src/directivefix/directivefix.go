// Package directivefix is the fixture for the directive analyzer: one
// unknown directive kind and one escape hatch missing its justification.
// The expectations live in the Go test (directive positions are the
// directive comments themselves, so want markers cannot share the line).
package directivefix

// Known reports line counts; the loop below carries a malformed
// exemption.
func Known(m map[string]int) int {
	n := 0
	//coyote:mapiter-okay counts only
	for range m {
		n++
	}
	//coyote:mapiter-ok
	for range m {
		n++
	}
	//coyote:mapiter-ok commutative count with a proper reason
	for range m {
		n++
	}
	return n
}
