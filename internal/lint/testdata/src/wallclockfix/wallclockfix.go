// Package wallclockfix is the fixture for the wallclock analyzer.
package wallclockfix

import (
	"math/rand"
	"os"
	"time"
)

// Bad reads the wall clock, the environment, and the global rand source.
func Bad() int64 {
	t := time.Now()       // want `time\.Now is nondeterministic`
	_ = os.Getenv("HOME") // want `os\.Getenv is nondeterministic`
	n := rand.Int()       // want `math/rand\.Int is nondeterministic`
	return t.Unix() + int64(n)
}

// Since is banned too: it reads the clock internally.
func Since(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since is nondeterministic`
}

// Seeded draws from an explicitly seeded source: methods are fine.
func Seeded(r *rand.Rand) int {
	return r.Intn(10)
}

// NewSeeded constructs a seeded source: rand.New/NewSource are the
// allowed package-level entry points.
func NewSeeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Justified keeps a wall-clock read with a reason; the strip test removes
// the directive and asserts the finding reappears.
func Justified() time.Time {
	return time.Now() //coyote:wallclock-ok measures simulator throughput for reporting; never feeds simulated state
}
