// Package globalmutfix is the analysistest-style fixture for the
// globalmut analyzer: a //coyote:globalfree root whose call graph reads
// and writes a mix of mutable and init-only package-level state. Each
// `// want` comment marks a line the analyzer must flag; unmarked lines
// must stay clean.
package globalmutfix

// counter is stored outside init → mutable.
var counter uint64

// registry is filled only by register, which only init calls: the
// init-only classification keeps it immutable.
var registry = map[string]int{}

// table is assigned only at declaration → immutable.
var table = [4]int{1, 2, 3, 4}

// hooked is address-taken outside init → mutable.
var hooked int

// seq receives a pointer-receiver method call outside init → mutable.
type box struct{ n int }

func (b *box) bump() { b.n++ }

var seq box

func init() {
	register("a", 1)
}

func register(name string, v int) {
	registry[name] = v
}

// Tick is not reachable from the root; it exists to classify counter as
// mutable.
func Tick() { counter++ }

// Hook classifies hooked as mutable by taking its address.
func Hook() *int { return &hooked }

//coyote:globalfree
func Run() uint64 {
	n := counter               // want `mutable package-level variable counter`
	n += uint64(registry["a"]) // init-only registry: clean
	n += uint64(table[0])      // declaration-only table: clean
	seq.bump()                 // want `mutable package-level variable seq`
	helper()
	return n
}

func helper() {
	counter = 0 // want `mutable package-level variable counter`
	x := counter //coyote:globalmut-ok fixture: justified read for the strip test
	_ = x
}
