// The fixture's trusted journal implementation: functions here are
// walked for reachability but their stores are not checked, and every
// protected-type field this file mentions counts as snapshot-covered.
package specwritefix

type hartSnap struct {
	pc   uint64
	regs [4]uint64
}

var snaps = map[*Hart]*hartSnap{}

// BeginSpec snapshots the rollback-covered Hart state: pc and regs.
func (h *Hart) BeginSpec() {
	snaps[h] = &hartSnap{pc: h.pc, regs: h.regs}
}

// Abort restores the snapshot.
func (h *Hart) Abort() {
	s := snaps[h]
	h.pc = s.pc
	h.regs = s.regs
}

// BeginSpec snapshots the rollback-covered Cache state: dirty.
func (c *Cache) BeginSpec() {
	c.snapDirty = c.dirty
}

// Abort restores the snapshot.
func (c *Cache) Abort() {
	c.dirty = c.snapDirty
}
