// Package specwritefix is the analysistest-style fixture for the
// specwrite analyzer. It mirrors the shapes of internal/cpu and
// internal/mem structurally: a protected type is any type with a
// BeginSpec method, the trusted journal is whatever lives in a file
// named spec.go, and the Memory type name marks the walk boundary. Each
// `// want` comment marks a line the analyzer must flag; unmarked lines
// must stay clean.
package specwritefix

// Hart mirrors cpu.Hart. pc and regs are covered by the snapshot in
// spec.go; scratch and tbl are not; decode carries a field-declaration
// exemption.
type Hart struct {
	pc      uint64
	regs    [4]uint64
	scratch uint64
	aux     uint64
	tbl     []entry
	decode  []uint64 //coyote:specwrite-ok decode scratch: a pure function of program memory, rebuilt identically on replay
}

type entry struct{ v uint64 }

// Cache mirrors cache.Cache: dirty is covered by spec.go, lru is not.
type Cache struct {
	dirty     bool
	snapDirty bool
	lru       int
}

// Memory mirrors mem.Memory: the walk boundary. Its own body is not
// store-checked (the R3 rule fires at callers instead), so the raw store
// below must NOT be flagged.
type Memory struct{ data []byte }

func (m *Memory) Write8(a uint64, v byte) { m.data[a] = v }
func (m *Memory) Read8(a uint64) byte     { return m.data[a] }

// Walker is an interface whose dynamic dispatch the analyzer cannot see
// through.
type Walker interface{ Visit(uint64) }

// gen is package-level state: any store on a spec path is R4.
var gen uint64

// hook is a func value that could mutate a Hart through its argument.
var hook func(*Hart)

type buf struct{ n int }

//coyote:specphase
func SpecStep(h *Hart, c *Cache, m *Memory, w Walker, f func(int) int) {
	h.pc += 4      // snapshot-covered field: clean
	h.regs[1] = 7  // snapshot-covered field: clean
	h.scratch = 1  // want `R1: store to Hart\.scratch`
	h.aux = 2      //coyote:specwrite-ok fixture: worker-private scratch, justified for the strip test
	h.decode = append(h.decode, h.pc) // field-declaration exemption: clean

	c.dirty = true // covered via the Cache snapshot: clean
	c.lru = 3      // want `R1: store to Cache\.lru`

	fillEntry(h)
	fillBuf(&buf{})
	trusted(h)

	m.Write8(h.pc, 1)    // want `R3: direct Memory\.Write8`
	_ = m.Read8(h.pc)    // reads are harmless: clean
	gen++                // want `R4: store to package-level variable gen`
	w.Visit(h.pc)        // want `R5: dynamic call`
	hook(h)              // want `R5: dynamic call`
	_ = f(3)             // func value, value-typed params only: clean
	add := func(a, b int) int { return a + b }
	_ = add(1, 2) // local closure, body checked inline: clean

	var tmp buf
	tmp.n = 2 // store to a local: clean
	pc := h.pc
	pc++ // plain local assignment: clean
	_ = pc
}

// fillEntry stores through a pointer that aliases into a protected
// field: the chain resolver must attribute it to Hart.tbl and judge it
// by that field's (missing) journal coverage.
func fillEntry(h *Hart) {
	e := &h.tbl[0]
	e.v = 9 // want `R1: store to Hart\.tbl`
}

// fillBuf mutates caller-visible state with no protected field in sight.
func fillBuf(b *buf) {
	b.n = 1 // want `R2: store through b`
}

// trusted carries a function-level exemption: nothing in its body is
// flagged.
//coyote:specwrite-ok fixture: trusted helper, rollback handled by its caller
func trusted(h *Hart) {
	h.scratch = 3
}
