// Package allocfreefix is the fixture for the allocfree analyzer: roots
// are annotated //coyote:allocfree and the analyzer must flag every
// allocation reachable from them through static calls, while leaving
// unannotated functions, panic arguments and justified sites alone.
package allocfreefix

import "fmt"

// S is a unit with a reused buffer and a stored callback, the shapes the
// simulator hot paths use.
type S struct {
	buf []int
	cb  func(int)
}

// Hot is a clean hot path: self-append plus a call into a flagged helper.
//
//coyote:allocfree
func (s *S) Hot(v int) {
	s.buf = append(s.buf, v)
	s.helper(v)
}

// helper is NOT annotated, but it is reachable from Hot, so its
// allocation is still a finding.
func (s *S) helper(v int) {
	x := make([]int, v) // want `make allocates`
	_ = x
}

// Closure allocates a function literal on the hot path.
//
//coyote:allocfree
func Closure(n int) func() int {
	return func() int { return n } // want `function literal allocates`
}

// PointerLit heap-allocates a composite literal.
//
//coyote:allocfree
func PointerLit() *S {
	return &S{} // want `&composite literal heap-allocates`
}

// SliceLit allocates backing storage.
//
//coyote:allocfree
func SliceLit() []int {
	return []int{1, 2, 3} // want `slice literal allocates`
}

// MethodValue binds a bound-method closure.
//
//coyote:allocfree
func MethodValue(s *S) {
	s.cb = s.Sink // want `method value Sink allocates`
}

// Sink is the bound method; calling it directly is fine.
func (s *S) Sink(int) {}

// CallsMethod calls Sink as a method — no binding, no finding.
//
//coyote:allocfree
func CallsMethod(s *S) {
	s.Sink(1)
}

// FreshAppend lets append grow a slice it does not keep.
//
//coyote:allocfree
func FreshAppend(dst, src []int) []int {
	out := append(dst, src...) // want `append result is not assigned back`
	return out
}

// Concat builds a string on the hot path.
//
//coyote:allocfree
func Concat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

// Conv copies between string and []byte.
//
//coyote:allocfree
func Conv(b []byte) string {
	return string(b) // want `string/\[\]byte conversion allocates`
}

// Boxes passes a concrete value to an interface parameter.
//
//coyote:allocfree
func Boxes(v int) {
	consume(v) // want `implicit conversion to interface boxes`
}

func consume(x any) { _ = x }

// Fmt calls into a denylisted allocating stdlib package.
//
//coyote:allocfree
func Fmt(v int) string {
	return fmt.Sprint(v) // want `call to fmt\.Sprint allocates` // want `implicit conversion to interface boxes`
}

// PanicOK demonstrates the panic exemption: fmt call, boxing and string
// concatenation inside panic arguments are all off the hot path.
//
//coyote:allocfree
func PanicOK(n int) {
	if n < 0 {
		panic(fmt.Sprintf("allocfreefix: bad n %d", n))
	}
}

// Justified is a pool warm-up allocation with a reason; the strip test
// removes the directive and asserts the finding reappears.
//
//coyote:allocfree
func Justified(s *S) {
	if s.buf == nil {
		s.buf = make([]int, 0, 8) //coyote:alloc-ok pool warm-up: runs once per unit lifetime
	}
}

// Cold is unannotated and unreachable from any root: allocations here are
// nobody's business.
func Cold() []int {
	return make([]int, 64)
}
