// Package mapiterfix is the analysistest-style fixture for the mapiter
// analyzer: each `// want` comment marks a line the analyzer must flag,
// with a regexp the diagnostic message must match; lines without a want
// marker must stay clean.
package mapiterfix

// Bad collects values in visit order: classic order-sensitive iteration.
func Bad(m map[string]int) []int {
	var out []int
	for _, v := range m { // want `range over map`
		out = append(out, v)
	}
	return out
}

// Sum is a commutative integer reduction: provably order-insensitive, no
// directive needed.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Bits ORs flags together — also commutative.
func Bits(m map[string]uint64) uint64 {
	var flags uint64
	for _, v := range m {
		flags |= v
	}
	return flags
}

// Count increments — order-insensitive.
func Count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Justified is order-sensitive but exempted with a justification; the
// strip test removes the directive and asserts the finding reappears.
func Justified(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	//coyote:mapiter-ok keys are sorted by the caller before use
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// CallInBody has a call inside the accumulation, so the narrow
// order-insensitivity test must reject it.
func CallInBody(m map[string]int) int {
	total := 0
	for _, v := range m { // want `range over map`
		total += weight(v)
	}
	return total
}

func weight(v int) int { return v * 2 }

// SliceRange is not a map: never flagged.
func SliceRange(s []int) int {
	total := 0
	for _, v := range s {
		total += v
	}
	return total
}
