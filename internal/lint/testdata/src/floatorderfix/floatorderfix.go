// Package floatorderfix is the fixture for the floatorder analyzer.
package floatorderfix

import "sort"

// Bad sums floats in randomized map order: the result differs between
// identical runs because float addition is not associative.
func Bad(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation inside a map range`
	}
	return sum
}

// IntSum is exact arithmetic: not a floatorder finding.
func IntSum(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// Sorted reduces over a sorted key slice: deterministic order, clean.
func Sorted(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	//coyote:mapiter-ok keys are sorted immediately below, erasing visit order
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// Justified carries a reason; the strip test removes it and asserts the
// finding reappears.
func Justified(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //coyote:floatorder-ok tolerance-checked debug aggregate; not part of simulated state
	}
	return sum
}
