// Package keytaintfix is the analysistest-style fixture for the keytaint
// analyzer. The type names mirror internal/core — the analyzer matches
// sources and sinks structurally (any type named Config, Result, Stats,
// Engine, System, Tracer), so the fixture needs no imports and loads as
// a partial tree: the analyzer falls back to its built-in source spec
// and skips the encoder cross-check.
package keytaintfix

// Config mirrors core.Config: the five key-excluded execution-strategy
// fields are taint sources; everything else is key-included and clean.
type Config struct {
	Cores             int
	MaxCycles         uint64
	Workers           int
	InterleaveQuantum int
	FastForward       uint64
	BlockMaxLen       int
	DisableBlockCache bool
}

// Result mirrors core.Result: every field except the audit fields
// (WallTime, Par) is a sink.
type Result struct {
	Cycles   uint64
	ExitCode int
	WallTime float64
	Par      int
}

// Stats mirrors cpu.Stats: every field is a sink.
type Stats struct {
	Retired uint64
}

// Tracer mirrors trace.Tracer: Event calls are sinks.
type Tracer struct{}

func (t *Tracer) Event(kind string, arg uint64) {}

// System mirrors core.System: the cycle field is a sink.
type System struct {
	cycle uint64
	stats Stats
}

// DirectFlow stores a source straight into a sink field.
func DirectFlow(cfg Config, r *Result) {
	r.Cycles = uint64(cfg.Workers) // want `Config\.Workers .*flows into Result\.Cycles`
	r.ExitCode = cfg.Cores         // key-included field: clean
	r.WallTime = float64(cfg.Workers)
	r.Par = cfg.Workers // audit fields legitimately vary: clean
}

// quantum launders the source through a helper return value.
func quantum(cfg *Config) int { return cfg.InterleaveQuantum }

// InterprocFlow proves the flow survives a call boundary and a local.
func InterprocFlow(cfg *Config, s *System) {
	q := quantum(cfg)
	s.stats.Retired += uint64(q) // want `Config\.InterleaveQuantum .*flows into stats counter Stats\.Retired`
	n := cfg.Cores
	s.cycle += uint64(n) // included field into the cycle: clean
}

// CallSinkFlow passes a source to a trace-emission sink call.
func CallSinkFlow(cfg Config, t *Tracer) {
	t.Event("ff", cfg.FastForward) // want `Config\.FastForward .*flows into trace emission Tracer\.Event`
	t.Event("cores", uint64(cfg.Cores))
}

// ControlOnly uses a source only in control flow — the documented
// conservatism boundary: branch decisions are not tracked, so this is
// clean by design (the runtime golden matrix covers it instead).
func ControlOnly(cfg Config, r *Result) {
	if cfg.BlockMaxLen > 8 {
		r.Cycles++
	}
}

// FieldSensitive proves a sibling field of a tainted struct stays clean:
// reading DisableBlockCache into a local must not smear onto MaxCycles.
func FieldSensitive(cfg *Config, r *Result) {
	d := cfg.DisableBlockCache
	_ = d
	r.Cycles = cfg.MaxCycles
}
