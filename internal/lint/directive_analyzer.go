package lint

// DirectiveAnalyzer validates every //coyote: directive in a package:
// the kind must be known, and every escape-hatch directive (…-ok,
// alloc-ok) must carry a justification after the kind word. An exemption
// without a reason is indistinguishable from a silenced bug, so it is a
// finding in its own right.
var DirectiveAnalyzer = &Analyzer{
	Name: "directive",
	Doc:  "validates //coyote: directives: known kind, justification present",
	Run:  runDirective,
}

func runDirective(pass *Pass) {
	for _, d := range pass.Pkg.Directives.All() {
		needReason, known := knownDirectives[d.Kind]
		if !known {
			pass.Report(Diagnostic{
				Pos:     d.Pos,
				Message: "unknown directive //coyote:" + d.Kind + " (see the directive table in DESIGN.md §9)",
			})
			continue
		}
		if needReason && d.Reason == "" {
			pass.Report(Diagnostic{
				Pos:     d.Pos,
				Message: "//coyote:" + d.Kind + " needs a justification: //coyote:" + d.Kind + " <reason>",
			})
		}
	}
}
