package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// StateCheckAnalyzer enforces the state-machine discipline of the
// simulator's enums (cache/MSHR states, step results, mapping policies):
//
//   - every `switch` over a state enum is exhaustive — each declared
//     constant of the enum appears in a case arm. A `default` arm is
//     allowed (it can carry a panic or a fallback) but does not excuse a
//     missing state: silently lumping a state into default is exactly how
//     a dropped transition ships.
//   - every state of an unexported enum is alive — a constant that no
//     code in the package ever references is an unreachable state, i.e. a
//     transition that was deleted without deleting the state.
//
// A state enum is a named type, defined in a simulator package (or in the
// package under analysis), whose underlying type is an integer and which
// has at least two package-level constants. Switches with non-constant
// case expressions cannot be checked and are skipped. A site is exempted
// by //coyote:statecheck-ok <reason> on the switch line or the line above.
var StateCheckAnalyzer = &Analyzer{
	Name: "statecheck",
	Doc:  "switches over simulator state enums must be exhaustive, and every state must be used",
	Run:  runStateCheck,
}

// enumInfo caches the constants of one enum type, keyed by the qualified
// type name — cross-package type identity via *types.Named breaks between
// source-checked and export-data views, string keys do not.
type enumInfo struct {
	typeName string
	consts   []*types.Const // declaration order
}

// enumKey qualifies a named type as "pkgpath.TypeName".
func enumKey(n *types.Named) string {
	obj := n.Origin().Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// stateEnumOf resolves t to a state enum definition, or nil. home is the
// package under analysis: enums defined there qualify regardless of the
// sim-package list (this is what lets the fixture packages be
// self-contained).
func stateEnumOf(t types.Type, home *types.Package) *enumInfo {
	n, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	n = n.Origin()
	b, ok := n.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsInteger == 0 {
		return nil
	}
	defPkg := n.Obj().Pkg()
	if defPkg == nil {
		return nil // builtin named type (e.g. error): not an enum
	}
	if defPkg != home && !IsSimPackage(defPkg.Path()) {
		// Enums owned by harness packages (riscv opcodes, trace kinds …)
		// are not state machines of the simulator proper.
		return nil
	}
	info := &enumInfo{typeName: enumKey(n)}
	scope := defPkg.Scope()
	for _, name := range scope.Names() { // Names() is sorted: deterministic
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		if types.Identical(c.Type(), n) {
			info.consts = append(info.consts, c)
		}
	}
	if len(info.consts) < 2 {
		return nil // a single constant is a sentinel, not a state machine
	}
	return info
}

func runStateCheck(pass *Pass) {
	info := pass.Pkg.Info
	home := pass.Pkg.Types

	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			t := info.TypeOf(sw.Tag)
			if t == nil {
				return true
			}
			enum := stateEnumOf(t, home)
			if enum == nil {
				return true
			}
			if pass.Pkg.Directives.At(pass.Fset, sw.Switch, "statecheck-ok") != nil {
				return true
			}
			checkExhaustive(pass, sw, enum)
			return true
		})
	}

	checkDeadStates(pass)
}

// checkExhaustive verifies every constant of enum appears in a case arm
// of sw. Non-constant case expressions make the switch unverifiable and
// it is skipped.
func checkExhaustive(pass *Pass, sw *ast.SwitchStmt, enum *enumInfo) {
	covered := make(map[string]bool)
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			tv, ok := pass.Pkg.Info.Types[e]
			if !ok || tv.Value == nil {
				return // non-constant case: cannot reason about coverage
			}
			covered[tv.Value.ExactString()] = true
		}
	}
	var missing []string
	for _, c := range enum.consts {
		if !covered[c.Val().ExactString()] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	pass.Report(Diagnostic{
		Pos: sw.Switch,
		Message: fmt.Sprintf(
			"switch over %s misses state%s %s: a default arm does not excuse a missing transition; "+
				"add the case arms or justify with //coyote:statecheck-ok <reason>",
			enum.typeName, plural(len(missing)), strings.Join(missing, ", ")),
	})
}

// checkDeadStates flags constants of unexported state enums defined in
// this package that nothing in the package references: an unreachable
// state. Exported enums are skipped — their states may be reached from
// other packages.
func checkDeadStates(pass *Pass) {
	info := pass.Pkg.Info
	home := pass.Pkg.Types

	used := make(map[types.Object]bool)
	for _, obj := range info.Uses {
		if c, ok := obj.(*types.Const); ok {
			used[c] = true
		}
	}

	scope := home.Scope()
	for _, name := range scope.Names() { // sorted: deterministic report order
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.Exported() {
			continue
		}
		n, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		enum := stateEnumOf(n, home)
		if enum == nil {
			continue
		}
		for _, c := range enum.consts {
			if used[c] {
				continue
			}
			if pass.Pkg.Directives.At(pass.Fset, c.Pos(), "statecheck-ok") != nil {
				continue
			}
			pass.Report(Diagnostic{
				Pos: c.Pos(),
				Message: fmt.Sprintf(
					"state %s of %s is never used: an unreachable state means a transition was dropped; "+
						"delete the state or justify with //coyote:statecheck-ok <reason>",
					c.Name(), enum.typeName),
			})
		}
	}
}

func plural(n int) string {
	if n == 1 {
		return ""
	}
	return "s"
}
