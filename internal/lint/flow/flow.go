// Package flow is Coyote's SSA-lite interprocedural dataflow engine: the
// value- and field-sensitive layer under the keytaint, specwrite and
// globalmut analyzers (internal/lint). Like the rest of the lint suite it
// is built on go/ast and go/types alone — no golang.org/x/tools — and it
// analyzes the same source-parsed, export-data-resolved packages the
// `go list -export` loader produces.
//
// The engine has two independent facilities:
//
//   - a call-graph walker (walk.go): static reachability from annotated
//     roots, same architecture as the allocfree analyzer's walk but shared
//     and reusable, with per-call-site classification (static in-module,
//     external, dynamic);
//   - a taint engine (taint.go): whole-program, flow-insensitive,
//     field-sensitive taint propagation with per-function transfer
//     summaries computed to fixpoint over the call graph.
//
// This file holds the program model both share: the package/function
// index and access-path ("chain") resolution.
//
// Soundness stance (documented in DESIGN.md §12): the engine tracks
// explicit data flow only. Control dependence (a tainted branch condition
// or loop bound) does not taint the values computed under it — those
// influences are covered dynamically by the golden determinism matrix.
// Interfaces, closures and channels are handled conservatively (havoc or
// containment, never silent omission); aliasing through function results
// is the one documented hole (a method returning an interior pointer
// hides the object it exposes).
package flow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// Package is one source-analyzed package: the subset of the lint loader's
// view the engine needs. The lint package constructs these (flow cannot
// import lint — the dependency points the other way).
type Package struct {
	Path  string
	Files []*ast.File
	// Filenames[i] is the file name Files[i] was parsed from.
	Filenames []string
	Types     *types.Package
	Info      *types.Info
}

// Func is one function or method declaration with a body.
type Func struct {
	Key  string
	Pkg  *Package
	Decl *ast.FuncDecl
	Obj  *types.Func
}

// File returns the name of the file fn is declared in.
func (f *Func) File(fset *token.FileSet) string {
	return fset.Position(f.Decl.Pos()).Filename
}

// Program indexes every function of the loaded source packages.
type Program struct {
	Fset  *token.FileSet
	Pkgs  []*Package
	Funcs map[string]*Func
}

// NewProgram builds the function index over pkgs.
func NewProgram(fset *token.FileSet, pkgs []*Package) *Program {
	p := &Program{Fset: fset, Pkgs: pkgs, Funcs: make(map[string]*Func)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				key := FuncKey(obj)
				// A package may declare any number of init functions,
				// all named "init"; suffix duplicates so every body
				// stays indexed. Nothing can call init, so the suffixed
				// keys are never looked up by Resolve.
				for n := 2; p.Funcs[key] != nil; n++ {
					key = fmt.Sprintf("%s#%d", FuncKey(obj), n)
				}
				p.Funcs[key] = &Func{Key: key, Pkg: pkg, Decl: fd, Obj: obj}
			}
		}
	}
	return p
}

// FuncKey returns a stable, instantiation-independent identifier for a
// function or method: "pkg/path.Func" or "pkg/path.Recv.Method". Keys
// built from a source-checked *types.Func and from an export-data import
// of the same function agree, which is what lets call-graph walks cross
// package boundaries.
func FuncKey(fn *types.Func) string {
	fn = fn.Origin()
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if n, isNamed := t.(*types.Named); isNamed {
			obj := n.Origin().Obj()
			if obj.Pkg() != nil {
				return obj.Pkg().Path() + "." + obj.Name() + "." + fn.Name()
			}
			return obj.Name() + "." + fn.Name()
		}
		return t.String() + "." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	return fn.Name()
}

// Resolve looks a *types.Func up in the program's source index.
func (p *Program) Resolve(fn *types.Func) *Func {
	return p.Funcs[FuncKey(fn)]
}

// maxPathLen caps access-path depth. Deeper selections collapse into the
// trailing "*" wildcard segment — field-sensitivity with a bounded
// lattice, the classic k-limiting.
const maxPathLen = 3

// Chain is a bounded access path: a root object (a local, parameter,
// receiver or package-level variable) plus up to maxPathLen field/index
// segments. Index and element accesses use the wildcard segment "*":
// the engine is field-sensitive but element-insensitive.
type Chain struct {
	Root types.Object
	Path []string
}

// Key renders the chain for map keys: "root.f1.f2".
func (c Chain) Key() string {
	if len(c.Path) == 0 {
		return objKey(c.Root)
	}
	return objKey(c.Root) + "." + strings.Join(c.Path, ".")
}

func objKey(o types.Object) string {
	pos := strconv.Itoa(int(o.Pos()))
	if o.Pkg() != nil {
		return o.Pkg().Path() + "." + o.Name() + "@" + pos
	}
	return o.Name() + "@" + pos
}

// push appends a segment, collapsing beyond the depth cap.
func (c Chain) push(seg string) Chain {
	path := make([]string, len(c.Path), len(c.Path)+1)
	copy(path, c.Path)
	if len(path) >= maxPathLen {
		if path[len(path)-1] != "*" {
			path = append(path[:maxPathLen-1:maxPathLen-1], "*")
		}
		return Chain{Root: c.Root, Path: path}
	}
	return Chain{Root: c.Root, Path: append(path, seg)}
}

// IsGlobal reports whether the chain is rooted at a package-level var.
func (c Chain) IsGlobal() bool {
	v, ok := c.Root.(*types.Var)
	if !ok {
		return false
	}
	return isGlobalVar(v)
}

func isGlobalVar(v *types.Var) bool {
	if v.Pkg() == nil || v.IsField() {
		return false
	}
	return v.Parent() == v.Pkg().Scope()
}

// AliasEnv maps a local object to the chain it aliases: built from
// statements of the form `v := &h.F.G`, `v := &h`, `sp := h.ptrField`
// (pointer-typed field copy) and `u := cfg.Sub` (struct value copy —
// taint-wise the copy reads the source once, but for *store* attribution
// treating it as an alias is the conservative choice for pointer-free
// structs too, since the engine is flow-insensitive anyway).
type AliasEnv map[types.Object]Chain

// ResolveChain resolves expr to an access path, looking through unary &,
// parens, derefs, index expressions (as "*") and the alias environment.
// ok is false when the expression is not rooted at a variable (calls,
// literals, complex expressions).
func ResolveChain(info *types.Info, env AliasEnv, expr ast.Expr) (Chain, bool) {
	switch e := expr.(type) {
	case *ast.Ident:
		obj := info.ObjectOf(e)
		if obj == nil {
			return Chain{}, false
		}
		if v, ok := obj.(*types.Var); ok {
			if env != nil {
				if base, ok := env[v]; ok {
					return base, true
				}
			}
			return Chain{Root: v, Path: nil}, true
		}
		return Chain{}, false
	case *ast.ParenExpr:
		return ResolveChain(info, env, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return ResolveChain(info, env, e.X)
		}
		return Chain{}, false
	case *ast.StarExpr:
		return ResolveChain(info, env, e.X)
	case *ast.SelectorExpr:
		// Only field selections extend chains; method values do not.
		if sel, ok := info.Selections[e]; ok && sel.Kind() != types.FieldVal {
			return Chain{}, false
		}
		base, ok := ResolveChain(info, env, e.X)
		if !ok {
			// Package-qualified global: pkg.Var parses as a selector whose
			// X is the package name.
			if obj := info.ObjectOf(e.Sel); obj != nil {
				if v, isVar := obj.(*types.Var); isVar && isGlobalVar(v) {
					return Chain{Root: v}, true
				}
			}
			return Chain{}, false
		}
		return base.push(e.Sel.Name), true
	case *ast.IndexExpr:
		base, ok := ResolveChain(info, env, e.X)
		if !ok {
			return Chain{}, false
		}
		return base.push("*"), true
	case *ast.SliceExpr:
		return ResolveChain(info, env, e.X)
	case *ast.TypeAssertExpr:
		return ResolveChain(info, env, e.X)
	}
	return Chain{}, false
}

// FieldOwner resolves a field-selection expression to the defining named
// struct type and field name. ok is false for anything that is not a
// plain field selection on a named struct (method values, package
// selectors, unnamed structs).
func FieldOwner(info *types.Info, sel *ast.SelectorExpr) (owner *types.Named, field string, ok bool) {
	s, found := info.Selections[sel]
	if !found || s.Kind() != types.FieldVal {
		return nil, "", false
	}
	t := s.Recv()
	for {
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
			continue
		}
		break
	}
	n, isNamed := t.(*types.Named)
	if !isNamed {
		return nil, "", false
	}
	return n, sel.Sel.Name, true
}

// NamedOf unwraps pointers and returns the named type of t, or nil.
func NamedOf(t types.Type) *types.Named {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	n, _ := t.(*types.Named)
	return n
}

// TypeMatches reports whether named type n matches a spec written as
// either a bare type name ("Config") or a package-suffix-qualified one
// ("core.Config", matching import paths ending in "core" or equal to
// "core"). Bare names let fixture packages exercise analyzers whose real
// specs name simulator types.
func TypeMatches(n *types.Named, spec string) bool {
	if n == nil {
		return false
	}
	name := n.Obj().Name()
	pkgSuffix, typeName, qualified := strings.Cut(spec, ".")
	if !qualified {
		return name == spec
	}
	if name != typeName {
		return false
	}
	if n.Obj().Pkg() == nil {
		return false
	}
	path := n.Obj().Pkg().Path()
	return path == pkgSuffix || strings.HasSuffix(path, "/"+pkgSuffix)
}

// StaticCallee resolves a call expression to the concrete *types.Func it
// invokes, looking through method values on concrete types. It returns
// nil for calls through func values, interface methods, type conversions
// and builtins — the dynamic calls the engine must treat conservatively.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() == types.MethodVal {
				fn, _ := sel.Obj().(*types.Func)
				if fn == nil {
					return nil
				}
				// An interface method has no body anywhere; the concrete
				// target is unknown. Report it as dynamic.
				if types.IsInterface(sel.Recv()) {
					return nil
				}
				return fn
			}
			return nil
		}
		// Package-qualified call: pkg.Func.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// IsConversionOrBuiltin reports whether call is a type conversion or a
// builtin call (len, append, copy, …) rather than a function call.
func IsConversionOrBuiltin(info *types.Info, call *ast.CallExpr) (conv bool, builtin *types.Builtin) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch o := info.Uses[fun].(type) {
		case *types.TypeName:
			return true, nil
		case *types.Builtin:
			return false, o
		}
	case *ast.SelectorExpr:
		if _, ok := info.Uses[fun.Sel].(*types.TypeName); ok {
			return true, nil
		}
	case *ast.ArrayType, *ast.MapType, *ast.ChanType, *ast.FuncType,
		*ast.InterfaceType, *ast.StructType, *ast.StarExpr, *ast.IndexExpr,
		*ast.IndexListExpr:
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			return true, nil
		}
	}
	return false, nil
}

// BuildAliases scans a function body for alias-introducing short variable
// declarations and assignments: `v := &chain`, `v := chain` where chain
// is pointer-typed or a struct value. The environment is intentionally
// flow-insensitive: one alias per object, last writer wins is NOT modeled
// — the first recorded alias sticks, and multiple distinct aliases make
// the object unresolvable (mapped to the zero Chain), which downstream
// code treats as "unknown root" and handles conservatively.
func BuildAliases(info *types.Info, body *ast.BlockStmt) AliasEnv {
	env := AliasEnv{}
	conflicted := map[types.Object]bool{}
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := info.ObjectOf(id)
		if obj == nil || conflicted[obj] {
			return
		}
		// Only pointer-typed locals and struct-valued copies act as
		// aliases for store attribution.
		switch rhs := ast.Unparen(rhs).(type) {
		case *ast.UnaryExpr:
			if rhs.Op != token.AND {
				return
			}
		case *ast.SelectorExpr, *ast.Ident, *ast.IndexExpr:
			t := info.TypeOf(rhs)
			if t == nil {
				return
			}
			switch t.Underlying().(type) {
			case *types.Pointer, *types.Struct, *types.Slice, *types.Map:
			default:
				return
			}
		default:
			return
		}
		chain, ok := ResolveChain(info, env, rhs)
		if !ok {
			return
		}
		if prev, exists := env[obj]; exists {
			if prev.Key() != chain.Key() {
				conflicted[obj] = true
				delete(env, obj)
			}
			return
		}
		env[obj] = chain
	}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Lhs {
			record(as.Lhs[i], as.Rhs[i])
		}
		return true
	})
	return env
}
