package flow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// CallGraph is the static call graph of a Program, indexed in both
// directions. The forward direction is what Walker traverses; the
// reverse direction answers "who can reach this function?" — the query
// coyotemut uses to select only the test functions whose call graph can
// reach a mutated function.
//
// Edges are the same ones Walker sees: static in-module calls, including
// calls made inside function literals defined in a body. Dynamic calls
// (func values, interface methods) contribute no edges, so reverse
// reachability UNDER-approximates: a caller that only reaches the target
// through a dispatch table or an interface is not found. Callers that
// need soundness (coyotemut's targeted-test stage) must treat an empty
// answer as "unknown" and fall back to a coarser over-approximation
// (every test in every dependent package), never as "unreachable".
type CallGraph struct {
	prog    *Program
	callees map[string][]string // caller key → sorted callee keys
	callers map[string][]string // callee key → sorted caller keys
}

// NewCallGraph builds the bidirectional index over every function in the
// program, in one pass.
func NewCallGraph(prog *Program) *CallGraph {
	g := &CallGraph{
		prog:    prog,
		callees: make(map[string][]string, len(prog.Funcs)),
		callers: make(map[string][]string, len(prog.Funcs)),
	}
	type edge struct{ from, to string }
	seen := make(map[edge]bool)
	for key, fn := range prog.Funcs {
		ForEachCall(fn.Pkg.Info, fn.Decl.Body, func(_ *ast.CallExpr, callee *types.Func) {
			if callee == nil {
				return
			}
			target := prog.Resolve(callee)
			if target == nil {
				return
			}
			e := edge{from: key, to: target.Key}
			if seen[e] {
				return
			}
			seen[e] = true
			g.callees[e.from] = append(g.callees[e.from], e.to)
			g.callers[e.to] = append(g.callers[e.to], e.from)
		})
	}
	for _, m := range []map[string][]string{g.callees, g.callers} {
		for k := range m {
			sort.Strings(m[k])
		}
	}
	return g
}

// Callees returns the sorted keys of the functions fn calls statically.
func (g *CallGraph) Callees(key string) []string { return g.callees[key] }

// Callers returns the sorted keys of the functions that call fn
// statically.
func (g *CallGraph) Callers(key string) []string { return g.callers[key] }

// ReachersOf returns every function from which target is statically
// reachable (including target itself when it exists), sorted by key: the
// reverse-BFS dual of Walker.Reachable.
func (g *CallGraph) ReachersOf(target string) []*Func {
	seen := map[string]bool{}
	var queue []string
	if g.prog.Funcs[target] != nil {
		seen[target] = true
		queue = append(queue, target)
	}
	for len(queue) > 0 {
		key := queue[0]
		queue = queue[1:]
		for _, caller := range g.callers[key] {
			if seen[caller] {
				continue
			}
			seen[caller] = true
			queue = append(queue, caller)
		}
	}
	out := make([]*Func, 0, len(seen))
	for key := range seen {
		if fn := g.prog.Funcs[key]; fn != nil {
			out = append(out, fn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// FuncAt returns the function whose declaration (including its doc
// comment) spans pos, or nil. This is how a byte offset in a mutated
// file maps back to the enclosing function's call-graph node.
func (p *Program) FuncAt(pos token.Pos) *Func {
	for _, fn := range p.Funcs {
		if fn.Decl.Pos() <= pos && pos <= fn.Decl.End() {
			return fn
		}
	}
	return nil
}
