package flow

import (
	"go/token"
	"testing"
)

const graphSrc = `package p

func leaf() int { return 1 }

func mid() int { return leaf() }

func top() int { return mid() + mid() }

func viaLiteral() int {
	f := func() int { return leaf() }
	return f()
}

func unrelated() int { return 2 }
`

func fnNamed(t *testing.T, prog *Program, name string) *Func {
	t.Helper()
	for _, fn := range prog.Funcs {
		if fn.Decl.Name.Name == name {
			return fn
		}
	}
	t.Fatalf("function %s not in program", name)
	return nil
}

func TestCallGraphEdges(t *testing.T) {
	prog := typecheckSrc(t, graphSrc)
	g := NewCallGraph(prog)
	leaf := fnNamed(t, prog, "leaf")
	mid := fnNamed(t, prog, "mid")
	top := fnNamed(t, prog, "top")

	hasKey := func(keys []string, want string) bool {
		for _, k := range keys {
			if k == want {
				return true
			}
		}
		return false
	}
	if !hasKey(g.Callees(mid.Key), leaf.Key) {
		t.Errorf("Callees(mid) = %v, missing leaf", g.Callees(mid.Key))
	}
	if !hasKey(g.Callers(leaf.Key), mid.Key) {
		t.Errorf("Callers(leaf) = %v, missing mid", g.Callers(leaf.Key))
	}
	// top calls mid twice — edges are deduplicated.
	count := 0
	for _, k := range g.Callees(top.Key) {
		if k == mid.Key {
			count++
		}
	}
	if count != 1 {
		t.Errorf("top->mid recorded %d times, want 1", count)
	}
}

func TestCallGraphReachersOf(t *testing.T) {
	prog := typecheckSrc(t, graphSrc)
	g := NewCallGraph(prog)
	leaf := fnNamed(t, prog, "leaf")

	reachers := g.ReachersOf(leaf.Key)
	got := map[string]bool{}
	for _, fn := range reachers {
		got[fn.Decl.Name.Name] = true
	}
	// viaLiteral reaches leaf through a call inside its function literal
	// — those edges are attributed to the enclosing declaration.
	for _, want := range []string{"leaf", "mid", "top", "viaLiteral"} {
		if !got[want] {
			t.Errorf("ReachersOf(leaf) misses %s (got %v)", want, got)
		}
	}
	if got["unrelated"] {
		t.Error("ReachersOf(leaf) includes unrelated")
	}
	for i := 1; i < len(reachers); i++ {
		if reachers[i-1].Key >= reachers[i].Key {
			t.Fatal("ReachersOf result not sorted by key")
		}
	}
	if rs := g.ReachersOf("no/such.Func"); len(rs) != 0 {
		t.Errorf("ReachersOf(unknown) = %v, want empty", rs)
	}
}

func TestFuncAt(t *testing.T) {
	prog := typecheckSrc(t, graphSrc)
	mid := fnNamed(t, prog, "mid")
	if fn := prog.FuncAt(mid.Decl.Body.Pos()); fn == nil || fn.Key != mid.Key {
		t.Fatalf("FuncAt(mid body) = %v", fn)
	}
	if fn := prog.FuncAt(token.NoPos); fn != nil {
		t.Fatalf("FuncAt(NoPos) = %v, want nil", fn)
	}
}
