package flow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"sort"
	"strings"
	"time"
)

// Label identifies one taint source class (for keytaint: one excluded
// config field).
type Label int

// TaintConfig declares an analysis: which field reads introduce taint,
// which field stores and which calls are sinks. Matching is structural
// (named type + field/method name) so the same analyzer logic runs on
// the real simulator packages and on small fixture packages.
type TaintConfig struct {
	// SourceOf reports whether reading owner.field yields a taint label.
	SourceOf func(owner *types.Named, field string) (Label, bool)
	// SinkOf reports whether storing into owner.field is a sink, with a
	// human-readable sink description.
	SinkOf func(owner *types.Named, field string) (string, bool)
	// CallSinkOf reports whether passing a tainted argument to fn (which
	// may be an interface method) is a sink.
	CallSinkOf func(fn *types.Func) (string, bool)
	// LabelName renders a label for diagnostics.
	LabelName func(Label) string
}

// Finding is one proven source→sink flow.
type Finding struct {
	Pos    token.Pos // the sink store or call
	Sink   string    // sink description
	Label  Label     // which source reaches it
	SrcPos token.Pos // where the tainted value was read
}

// ---- taint atoms -----------------------------------------------------
//
// Inside one function, a taint set is a set of atoms: source labels,
// "this part of parameter i was tainted at entry" markers, and "the
// current value of global g" markers. Summaries are expressed over the
// same atoms, which is what makes them transfer functions: a call site
// instantiates the callee's summary by substituting the actual argument
// taint values for the parameter atoms.

type atomKind uint8

const (
	aSrc atomKind = iota
	aParam
	aGlobal
)

type atom struct {
	kind   atomKind
	label  Label
	param  int
	path   string // for aParam: the access path under the parameter
	global types.Object
}

// aset maps each atom to the position that introduced it (provenance for
// diagnostics). Union keeps the first position seen — stable under the
// monotone fixpoint.
type aset map[atom]token.Pos

func (s aset) union(o aset) bool {
	changed := false
	for a, pos := range o {
		if _, ok := s[a]; !ok {
			s[a] = pos
			changed = true
		}
	}
	return changed
}

func (s aset) clone() aset {
	c := make(aset, len(s))
	for a, p := range s {
		c[a] = p
	}
	return c
}

// ---- structured taint values -----------------------------------------
//
// tval is the taint of one expression value, field-sensitively: atoms
// keyed by the relative access path they attach to ("" is the value as a
// whole, "blockMax" a field, "*" an element). Keeping structure across
// composite literals, returns and parameter substitution is what stops
// one tainted field from smearing the entire object graph it is stored
// into.
type tval map[string]aset

func (tv tval) add(rel string, a atom, pos token.Pos) bool {
	s := tv[rel]
	if s == nil {
		s = aset{}
		tv[rel] = s
	}
	if _, ok := s[a]; ok {
		return false
	}
	s[a] = pos
	return true
}

func (tv tval) unionAt(rel string, o aset) bool {
	if len(o) == 0 {
		return false
	}
	s := tv[rel]
	if s == nil {
		s = aset{}
		tv[rel] = s
	}
	return s.union(o)
}

func (tv tval) unionTv(o tval) bool {
	changed := false
	for rel, as := range o {
		if tv.unionAt(rel, as) {
			changed = true
		}
	}
	return changed
}

func (tv tval) isEmpty() bool {
	for _, as := range tv {
		if len(as) > 0 {
			return false
		}
	}
	return true
}

// flatten merges every path's atoms — the value "as data", used at sinks,
// in arithmetic and for conservative containment.
func (tv tval) flatten() aset {
	out := aset{}
	for _, as := range tv {
		out.union(as)
	}
	return out
}

// sub projects the taint visible through one more access-path step (or a
// dotted path). Whole-value taint ("" or a proper prefix of path) applies
// to every part, so it lands on the projection's "" — except parameter
// markers, which refine instead: "this part IS param i's q part" projected
// through the remaining path r becomes aParam(i, q.r), not "depends on all
// of param i". Without the refinement every method call echoes a
// whole-receiver marker into each written field and field sensitivity
// collapses across call boundaries.
func (tv tval) sub(path string) tval {
	if path == "" {
		out := tval{}
		out.unionTv(tv)
		return out
	}
	out := tval{}
	for rel, as := range tv {
		switch {
		case rel == path:
			out.unionAt("", as)
		case rel == "" || strings.HasPrefix(path, rel+"."):
			remainder := path
			if rel != "" {
				remainder = path[len(rel)+1:]
			}
			for a, pos := range as {
				if a.kind == aParam {
					a.path = pathJoin(a.path, remainder)
				}
				out.add("", a, pos)
			}
		case strings.HasPrefix(rel, path+"."):
			out.unionAt(rel[len(path)+1:], as)
		}
	}
	return out
}

// at is the flat taint visible at path.
func (tv tval) at(path string) aset {
	out := aset{}
	for rel, as := range tv {
		if pathOverlap(rel, path) {
			out.union(as)
		}
	}
	return out
}

// mergeAt grafts sub under prefix.
func (tv tval) mergeAt(prefix string, sub tval) bool {
	changed := false
	for rel, as := range sub {
		if tv.unionAt(pathJoin(prefix, rel), as) {
			changed = true
		}
	}
	return changed
}

func (tv tval) size() int {
	n := 0
	for _, as := range tv {
		n += len(as)
	}
	return n
}

// pathOverlap reports whether one relative dotted path contains the
// other ("" is the whole value and overlaps everything).
func pathOverlap(a, b string) bool {
	if a == "" || b == "" {
		return true
	}
	return prefixOverlap(a, b)
}

// pathJoin concatenates relative paths under the same k-limit chains use.
func pathJoin(a, b string) string {
	var segs []string
	if a != "" {
		segs = strings.Split(a, ".")
	}
	if b != "" {
		segs = append(segs, strings.Split(b, ".")...)
	}
	if len(segs) > maxPathLen {
		segs = append(segs[:maxPathLen-1], "*")
	}
	return strings.Join(segs, ".")
}

// pathOf renders a chain's segments as a relative path.
func pathOf(ch Chain) string {
	return strings.Join(ch.Path, ".")
}

// chainExtend pushes a relative path onto a chain, k-limited.
func chainExtend(ch Chain, rel string) Chain {
	if rel == "" {
		return ch
	}
	for _, seg := range strings.Split(rel, ".") {
		ch = ch.push(seg)
	}
	return ch
}

// sinkFlow records "taint from `from` reaches the sink at pos".
type sinkFlow struct {
	pos  token.Pos
	desc string
	from aset
}

// summary is one function's transfer function plus its accumulated sink
// flows (own sinks and sinks lifted from callees, re-expressed over this
// function's atoms).
type summary struct {
	results   []tval
	paramOut  map[int]tval // keyed by path relative to the parameter root
	globalOut map[types.Object]aset
	sinks     map[string]*sinkFlow // keyed by pos+desc
}

func newSummary() *summary {
	return &summary{
		paramOut:  map[int]tval{},
		globalOut: map[types.Object]aset{},
		sinks:     map[string]*sinkFlow{},
	}
}

// size is a monotonicity-based change signature: every update only adds
// atoms or flows, so total element count grows iff anything changed.
func (s *summary) size() int {
	n := 0
	for _, r := range s.results {
		n += r.size()
	}
	for _, p := range s.paramOut {
		n += p.size()
	}
	for _, g := range s.globalOut {
		n += len(g)
	}
	for _, sf := range s.sinks {
		n += 1 + len(sf.from)
	}
	return n
}

// taintEngine is the whole-program fixpoint state.
type taintEngine struct {
	prog      *Program
	cfg       *TaintConfig
	summaries map[string]*summary
	// globalSrc holds, per package-level var, the source labels proven to
	// flow into it (param atoms resolved away at the stores' call sites).
	globalSrc map[types.Object]aset
	changed   bool
}

// RunTaint computes per-function transfer summaries to fixpoint over the
// call graph and returns every proven source→sink flow.
func RunTaint(prog *Program, cfg *TaintConfig) []Finding {
	e := &taintEngine{
		prog:      prog,
		cfg:       cfg,
		summaries: map[string]*summary{},
		globalSrc: map[types.Object]aset{},
	}
	keys := make([]string, 0, len(prog.Funcs))
	for k := range prog.Funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	// Outer fixpoint: re-analyze every function until no summary and no
	// global taint set grows. Monotone over a finite atom domain, so it
	// terminates; the iteration cap is a belt-and-suspenders backstop.
	debug := os.Getenv("COYOTE_FLOW_DEBUG") != ""
	for iter := 0; iter < 32; iter++ {
		e.changed = false
		start := time.Now()
		for _, k := range keys {
			fstart := time.Now()
			e.analyze(prog.Funcs[k])
			if debug {
				if d := time.Since(fstart); d > 500*time.Millisecond {
					fmt.Fprintf(os.Stderr, "flow:   slow func %s took=%v summary=%d\n", k, d, e.summaries[k].size())
					e.summaries[k].dump(os.Stderr)
				}
			}
		}
		if debug {
			total := 0
			for _, s := range e.summaries {
				total += s.size()
			}
			fmt.Fprintf(os.Stderr, "flow: iter %d changed=%v summarySize=%d took=%v\n",
				iter, e.changed, total, time.Since(start))
		}
		if !e.changed {
			break
		}
	}

	seen := map[string]bool{}
	var out []Finding
	for _, k := range keys {
		sum := e.summaries[k]
		if sum == nil {
			continue
		}
		for _, sf := range sum.sinks {
			for a, srcPos := range e.resolveSrc(sf.from) {
				id := fmt.Sprintf("%d|%s|%d", sf.pos, sf.desc, a.label)
				if seen[id] {
					continue
				}
				seen[id] = true
				out = append(out, Finding{Pos: sf.pos, Sink: sf.desc, Label: a.label, SrcPos: srcPos})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos != out[j].Pos {
			return out[i].Pos < out[j].Pos
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// resolveSrc reduces an atom set to its source atoms, expanding global
// atoms through the proven global taint map. Remaining parameter atoms
// mean "only if a caller passes taint", and every caller has been
// analyzed — so they resolve to nothing.
func (e *taintEngine) resolveSrc(s aset) aset {
	out := aset{}
	for a, pos := range s {
		switch a.kind {
		case aSrc:
			out[a] = pos
		case aGlobal:
			out.union(e.globalSrc[a.global])
		}
	}
	return out
}

// funcScope is the per-function analysis state.
type funcScope struct {
	e       *taintEngine
	fn      *Func
	info    *types.Info
	aliases AliasEnv
	params  map[types.Object]int
	nparams int
	// cells is the per-root taint store: root object → relative path →
	// atoms. Root indexing keeps every read/store proportional to one
	// object's cells, not the whole function's.
	cells map[types.Object]tval
	// readCache memoizes read() per (root, path): big functions read the
	// same receiver chains hundreds of times per pass, and materializing
	// the projection each time dominated the whole analysis. Cached tvals
	// are shared and MUST be treated as read-only by callers; the cache is
	// invalidated per root on store. Provenance positions inside cached
	// values are first-read-wins, which the monotone fixpoint tolerates.
	readCache map[types.Object]map[string]tval
	sum       *summary
	changed   bool
}

func (e *taintEngine) analyze(fn *Func) {
	sum := e.summaries[fn.Key]
	if sum == nil {
		sum = newSummary()
		e.summaries[fn.Key] = sum
	}
	before := sum.size()

	sc := &funcScope{
		e:       e,
		fn:      fn,
		info:    fn.Pkg.Info,
		aliases: BuildAliases(fn.Pkg.Info, fn.Decl.Body),
		params:    map[types.Object]int{},
		cells:     map[types.Object]tval{},
		readCache: map[types.Object]map[string]tval{},
		sum:       sum,
	}
	sig := fn.Obj.Type().(*types.Signature)
	idx := 0
	if r := sig.Recv(); r != nil {
		sc.params[r] = idx
		idx++
	}
	for i := 0; i < sig.Params().Len(); i++ {
		sc.params[sig.Params().At(i)] = idx
		idx++
	}
	sc.nparams = idx
	if sum.results == nil {
		sum.results = make([]tval, sig.Results().Len())
		for i := range sum.results {
			sum.results[i] = tval{}
		}
	}

	// Intra-function fixpoint: flow-insensitive passes over the body
	// until the cell map stabilizes.
	for pass := 0; pass < 10; pass++ {
		sc.changed = false
		sc.block(fn.Decl.Body, sum.results)
		if !sc.changed {
			break
		}
	}

	if sum.size() != before {
		e.changed = true
	}
}

// ---- statement walk --------------------------------------------------

// block processes a statement list. results receives return-statement
// taints — nil inside a func literal, whose returns do not belong to the
// enclosing function.
func (sc *funcScope) block(b *ast.BlockStmt, results []tval) {
	for _, st := range b.List {
		sc.stmt(st, results)
	}
}

func (sc *funcScope) stmt(st ast.Stmt, results []tval) {
	switch s := st.(type) {
	case *ast.AssignStmt:
		sc.assign(s)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			if len(vs.Values) == 1 && len(vs.Names) > 1 {
				multi := sc.evalMulti(vs.Values[0], len(vs.Names))
				for i, name := range vs.Names {
					sc.storeTo(name, multi[i], name.Pos())
				}
				continue
			}
			for i, name := range vs.Names {
				if i < len(vs.Values) {
					sc.storeTo(name, sc.eval(vs.Values[i]), name.Pos())
				}
			}
		}
	case *ast.IncDecStmt:
		// x++ preserves x's taint; no new flow.
	case *ast.ExprStmt:
		sc.eval(s.X)
	case *ast.SendStmt:
		t := sc.eval(s.Value)
		if ch, ok := ResolveChain(sc.info, sc.aliases, s.Chan); ok {
			sc.storeChain(ch.push("*"), t)
		}
	case *ast.ReturnStmt:
		if results == nil {
			for _, r := range s.Results {
				sc.eval(r)
			}
			return
		}
		if len(s.Results) == len(results) {
			for i, r := range s.Results {
				if results[i].unionTv(sc.eval(r)) {
					sc.changed = true
				}
			}
		} else if len(s.Results) == 1 && len(results) > 1 {
			multi := sc.evalMulti(s.Results[0], len(results))
			for i := range results {
				if results[i].unionTv(multi[i]) {
					sc.changed = true
				}
			}
		} else if len(s.Results) == 0 {
			// Naked return: named results' cells carry the taint.
			sig := sc.fn.Obj.Type().(*types.Signature)
			for i := 0; i < sig.Results().Len() && i < len(results); i++ {
				r := sig.Results().At(i)
				if r.Name() == "" {
					continue
				}
				if results[i].unionTv(sc.read(Chain{Root: r}, token.NoPos)) {
					sc.changed = true
				}
			}
		}
	case *ast.RangeStmt:
		t := sc.eval(s.X)
		if s.Value != nil {
			sc.storeTo(s.Value, t.sub("*"), s.Value.Pos())
		}
		if s.Key != nil {
			// Map keys are data; slice/array indices are not.
			if xt := sc.info.TypeOf(s.X); xt != nil {
				if _, isMap := xt.Underlying().(*types.Map); isMap {
					sc.storeTo(s.Key, tval{"": t.flatten()}, s.Key.Pos())
				}
			}
		}
		sc.block(s.Body, results)
	case *ast.IfStmt:
		if s.Init != nil {
			sc.stmt(s.Init, results)
		}
		sc.eval(s.Cond) // for call side effects; conditions do not taint
		sc.block(s.Body, results)
		if s.Else != nil {
			sc.stmt(s.Else, results)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			sc.stmt(s.Init, results)
		}
		if s.Cond != nil {
			sc.eval(s.Cond)
		}
		if s.Post != nil {
			sc.stmt(s.Post, results)
		}
		sc.block(s.Body, results)
	case *ast.SwitchStmt:
		if s.Init != nil {
			sc.stmt(s.Init, results)
		}
		if s.Tag != nil {
			sc.eval(s.Tag)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, ce := range cc.List {
				sc.eval(ce)
			}
			for _, cs := range cc.Body {
				sc.stmt(cs, results)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			sc.stmt(s.Init, results)
		}
		sc.stmt(s.Assign, results)
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, cs := range cc.Body {
				sc.stmt(cs, results)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm != nil {
				sc.stmt(cc.Comm, results)
			}
			for _, cs := range cc.Body {
				sc.stmt(cs, results)
			}
		}
	case *ast.BlockStmt:
		sc.block(s, results)
	case *ast.LabeledStmt:
		sc.stmt(s.Stmt, results)
	case *ast.GoStmt:
		sc.eval(s.Call)
	case *ast.DeferStmt:
		sc.eval(s.Call)
	}
}

// assign handles =, := and the compound operators.
func (sc *funcScope) assign(s *ast.AssignStmt) {
	if len(s.Lhs) > 1 && len(s.Rhs) == 1 {
		multi := sc.evalMulti(s.Rhs[0], len(s.Lhs))
		for i, lhs := range s.Lhs {
			sc.storeTo(lhs, multi[i], lhs.Pos())
		}
		return
	}
	for i := range s.Lhs {
		if i >= len(s.Rhs) {
			break
		}
		t := sc.eval(s.Rhs[i])
		if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
			// Compound assignment reads the target too.
			merged := tval{}
			merged.unionTv(t)
			merged.unionTv(sc.eval(s.Lhs[i]))
			t = merged
		}
		sc.storeTo(s.Lhs[i], t, s.Lhs[i].Pos())
	}
}

// storeTo performs one store: sink detection on the target, then cell /
// summary bookkeeping via storeChain.
func (sc *funcScope) storeTo(lhs ast.Expr, t tval, pos token.Pos) {
	lhs = ast.Unparen(lhs)
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	if sel, ok := lhs.(*ast.SelectorExpr); ok {
		if owner, field, ok := FieldOwner(sc.info, sel); ok {
			if desc, isSink := sc.e.cfg.SinkOf(owner, field); isSink {
				sc.recordSink(pos, desc, t.flatten())
			}
		}
	}
	if ch, ok := ResolveChain(sc.info, sc.aliases, lhs); ok {
		sc.storeChain(ch, t)
	}
	// Unresolvable targets (stores through call results etc.) are
	// dropped — the documented aliasing hole.
}

// storeChain unions a structured value into the cells under ch and
// records the caller-visible flows: stores through parameters become
// paramOut summary entries, stores into globals become globalOut entries
// (and, once source atoms are involved, concrete global taint).
func (sc *funcScope) storeChain(ch Chain, t tval) {
	if t.isEmpty() {
		return
	}
	root := sc.cells[ch.Root]
	if root == nil {
		root = tval{}
		sc.cells[ch.Root] = root
	}
	base := pathOf(ch)
	grew := false
	for rel, as := range t {
		if len(as) == 0 {
			continue
		}
		if root.unionAt(pathJoin(base, rel), as) {
			grew = true
		}
	}
	if grew {
		sc.changed = true
		delete(sc.readCache, ch.Root) // cached projections are stale
	}
	if idx, isParam := sc.params[ch.Root]; isParam {
		out := sc.sum.paramOut[idx]
		if out == nil {
			out = tval{}
			sc.sum.paramOut[idx] = out
		}
		for rel, as := range t {
			dst := pathJoin(base, rel)
			for a, pos := range as {
				// A parameter's own taint flowing back to the path it came
				// from instantiates to information the caller already holds;
				// recording identities only bloats summaries.
				if a.kind == aParam && a.param == idx && a.path == dst {
					continue
				}
				out.add(dst, a, pos)
			}
		}
	}
	if ch.IsGlobal() {
		flat := t.flatten()
		out := sc.sum.globalOut[ch.Root]
		if out == nil {
			out = aset{}
			sc.sum.globalOut[ch.Root] = out
		}
		out.union(flat)
		sc.e.noteGlobalTaint(ch.Root, flat)
	}
}

// noteGlobalTaint folds the resolvable source atoms of t into g's proven
// taint set.
func (e *taintEngine) noteGlobalTaint(g types.Object, t aset) {
	src := e.resolveSrc(t)
	if len(src) == 0 {
		return
	}
	cur := e.globalSrc[g]
	if cur == nil {
		cur = aset{}
		e.globalSrc[g] = cur
	}
	if cur.union(src) {
		e.changed = true
	}
}

func (sc *funcScope) recordSink(pos token.Pos, desc string, t aset) {
	if len(t) == 0 {
		return
	}
	key := fmt.Sprintf("%d|%s", pos, desc)
	sf := sc.sum.sinks[key]
	if sf == nil {
		sf = &sinkFlow{pos: pos, desc: desc, from: aset{}}
		sc.sum.sinks[key] = sf
	}
	sf.from.union(t)
}

// read returns the structured taint visible through chain: cells under it
// keep their relative paths, cells that are prefixes of it (whole-value
// taints stored earlier) apply to the whole projection, and parameter /
// global roots contribute their marker atoms.
func (sc *funcScope) read(ch Chain, pos token.Pos) tval {
	path := pathOf(ch)
	if byPath := sc.readCache[ch.Root]; byPath != nil {
		if cached, ok := byPath[path]; ok {
			return cached
		}
	}
	out := tval{}
	if root := sc.cells[ch.Root]; root != nil {
		out.unionTv(root.sub(path))
	}
	if idx, isParam := sc.params[ch.Root]; isParam {
		out.add("", atom{kind: aParam, param: idx, path: path}, pos)
	}
	if ch.IsGlobal() {
		out.add("", atom{kind: aGlobal, global: ch.Root}, pos)
		out.unionAt("", sc.e.globalSrc[ch.Root])
	}
	byPath := sc.readCache[ch.Root]
	if byPath == nil {
		byPath = map[string]tval{}
		sc.readCache[ch.Root] = byPath
	}
	byPath[path] = out
	return out
}

// prefixOverlap reports whether one dotted key is a prefix of the other.
func prefixOverlap(a, b string) bool {
	if len(a) > len(b) {
		a, b = b, a
	}
	if b[:len(a)] != a {
		return false
	}
	return len(a) == len(b) || b[len(a)] == '.'
}

// ---- expression evaluation -------------------------------------------

// eval returns the structured taint of expr, performing call side
// effects.
func (sc *funcScope) eval(expr ast.Expr) tval {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if ch, ok := ResolveChain(sc.info, sc.aliases, e); ok {
			return sc.read(ch, e.Pos())
		}
		return tval{}
	case *ast.SelectorExpr:
		out := tval{}
		if owner, field, ok := FieldOwner(sc.info, e); ok {
			if label, isSrc := sc.e.cfg.SourceOf(owner, field); isSrc {
				out.add("", atom{kind: aSrc, label: label}, e.Sel.Pos())
			}
		}
		if ch, ok := ResolveChain(sc.info, sc.aliases, e); ok {
			out.unionTv(sc.read(ch, e.Pos()))
		} else {
			// Field of an unresolvable base (call result etc.): project the
			// base's structured taint through the field.
			out.unionTv(sc.eval(e.X).sub(e.Sel.Name))
		}
		return out
	case *ast.IndexExpr:
		// Element read: the container's taint, not the index's (index
		// influence is control-like and excluded by policy).
		sc.eval(e.Index) // side effects only
		if ch, ok := ResolveChain(sc.info, sc.aliases, e); ok {
			return sc.read(ch, e.Pos())
		}
		return sc.eval(e.X).sub("*")
	case *ast.SliceExpr:
		return sc.eval(e.X)
	case *ast.StarExpr:
		return sc.eval(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW { // <-ch reads the channel's element cell
			if ch, ok := ResolveChain(sc.info, sc.aliases, e.X); ok {
				return sc.read(ch.push("*"), e.Pos())
			}
		}
		return sc.eval(e.X)
	case *ast.BinaryExpr:
		out := tval{}
		out.unionAt("", sc.eval(e.X).flatten())
		out.unionAt("", sc.eval(e.Y).flatten())
		return out
	case *ast.TypeAssertExpr:
		return sc.eval(e.X)
	case *ast.CallExpr:
		return sc.call(e, 1)[0]
	case *ast.CompositeLit:
		return sc.composite(e)
	case *ast.FuncLit:
		// Analyze the literal's body inline: it shares the enclosing cell
		// map, so captured-variable flows are tracked; its own returns
		// are discarded (a dynamic call of the value havocs instead).
		sc.block(e.Body, nil)
		return tval{}
	}
	return tval{}
}

// evalMulti evaluates a multi-value expression (a call or a single value
// used in a tuple context) into n taint values.
func (sc *funcScope) evalMulti(expr ast.Expr, n int) []tval {
	if call, ok := ast.Unparen(expr).(*ast.CallExpr); ok {
		return sc.call(call, n)
	}
	t := sc.eval(expr)
	out := make([]tval, n)
	for i := range out {
		out[i] = t
	}
	return out
}

// composite evaluates a composite literal field-sensitively: keyed struct
// elements land under their field name (and are checked against the sink
// specs — building a sink-typed struct by literal is a store), slice and
// map elements land under "*", and positional struct elements fold into
// the whole value.
func (sc *funcScope) composite(lit *ast.CompositeLit) tval {
	owner := NamedOf(sc.info.TypeOf(lit))
	var isStruct bool
	if t := sc.info.TypeOf(lit); t != nil {
		_, isStruct = t.Underlying().(*types.Struct)
	}
	out := tval{}
	for _, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			t := sc.eval(kv.Value)
			if key, isIdent := kv.Key.(*ast.Ident); isIdent && isStruct {
				out.mergeAt(key.Name, t)
				if owner != nil {
					if desc, isSink := sc.e.cfg.SinkOf(owner, key.Name); isSink {
						sc.recordSink(kv.Pos(), desc, t.flatten())
					}
				}
			} else {
				sc.eval(kv.Key)
				out.mergeAt("*", t)
			}
			continue
		}
		if isStruct {
			out.unionAt("", sc.eval(el).flatten())
		} else {
			out.mergeAt("*", sc.eval(el))
		}
	}
	return out
}

// call applies a call expression: instantiate the callee's summary when
// its source is in the program, havoc otherwise. Returns n taint values
// (one per expected result).
func (sc *funcScope) call(call *ast.CallExpr, n int) []tval {
	blank := func() []tval {
		out := make([]tval, n)
		for i := range out {
			out[i] = tval{}
		}
		return out
	}

	if conv, builtin := IsConversionOrBuiltin(sc.info, call); conv {
		out := blank()
		if len(call.Args) == 1 {
			out[0] = sc.eval(call.Args[0])
		}
		return out
	} else if builtin != nil {
		return sc.builtinCall(builtin, call, n)
	}

	callee := StaticCallee(sc.info, call)

	// Argument taints, aligned to the callee's combined receiver+param
	// indexing when the callee is known, positional otherwise.
	var argT []tval
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, isSel := sc.info.Selections[sel]; isSel && s.Kind() == types.MethodVal {
			argT = append(argT, sc.eval(sel.X))
		}
	}
	for _, a := range call.Args {
		argT = append(argT, sc.eval(a))
	}

	if callee != nil {
		if desc, isSink := sc.e.cfg.CallSinkOf(callee); isSink {
			sc.sinkCall(call, desc, argT)
			return blank()
		}
		if target := sc.e.prog.Resolve(callee); target != nil {
			return sc.applySummary(call, target, argT, n)
		}
		// External (export-data-only or stdlib) callee: havoc.
		return sc.havoc(call, argT, n)
	}

	// Dynamic call: func value or interface method. Interface call sinks
	// still match by the abstract method object.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, isSel := sc.info.Selections[sel]; isSel && s.Kind() == types.MethodVal {
			if fn, isFn := s.Obj().(*types.Func); isFn {
				if desc, isSink := sc.e.cfg.CallSinkOf(fn); isSink {
					sc.sinkCall(call, desc, argT)
					return blank()
				}
			}
		}
	}
	sc.eval(call.Fun)
	return sc.havoc(call, argT, n)
}

func (sc *funcScope) sinkCall(call *ast.CallExpr, desc string, argT []tval) {
	all := aset{}
	for _, t := range argT {
		all.union(t.flatten())
	}
	sc.recordSink(call.Lparen, desc, all)
}

// havoc is the conservative unknown-callee rule: every argument's taint
// flows to every result and into every pointer-like argument.
func (sc *funcScope) havoc(call *ast.CallExpr, argT []tval, n int) []tval {
	all := aset{}
	for _, t := range argT {
		all.union(t.flatten())
	}
	if len(all) > 0 {
		for _, a := range call.Args {
			t := sc.info.TypeOf(a)
			if t == nil {
				continue
			}
			switch t.Underlying().(type) {
			case *types.Pointer, *types.Slice, *types.Map, *types.Chan:
				if ch, ok := ResolveChain(sc.info, sc.aliases, a); ok {
					sc.storeChain(ch, tval{"": all})
				}
			}
		}
	}
	out := make([]tval, n)
	for i := range out {
		out[i] = tval{"": all}
	}
	return out
}

// instMemo caches argument projections within one call-site application:
// a big callee summary mentions the same (param, path) atom hundreds of
// times, and re-projecting the actual each time dominated instantiation.
type instMemo struct {
	structured map[int]map[string]tval
	flat       map[int]map[string]aset
}

func newInstMemo() *instMemo {
	return &instMemo{structured: map[int]map[string]tval{}, flat: map[int]map[string]aset{}}
}

func (m *instMemo) sub(argT []tval, param int, path string) tval {
	byPath := m.structured[param]
	if byPath == nil {
		byPath = map[string]tval{}
		m.structured[param] = byPath
	}
	if cached, ok := byPath[path]; ok {
		return cached
	}
	out := argT[param].sub(path)
	byPath[path] = out
	return out
}

func (m *instMemo) subFlat(argT []tval, param int, path string) aset {
	byPath := m.flat[param]
	if byPath == nil {
		byPath = map[string]aset{}
		m.flat[param] = byPath
	}
	if cached, ok := byPath[path]; ok {
		return cached
	}
	out := m.sub(argT, param, path).flatten()
	byPath[path] = out
	return out
}

// instA substitutes actual argument taint for parameter atoms, flatly —
// used for sink flows, where structure no longer matters.
func (sc *funcScope) instA(s aset, argT []tval, memo *instMemo) aset {
	out := aset{}
	for a, pos := range s {
		switch a.kind {
		case aSrc:
			out[a] = pos
		case aGlobal:
			out[a] = pos
			out.union(sc.e.globalSrc[a.global])
		case aParam:
			if a.param < len(argT) {
				out.union(memo.subFlat(argT, a.param, a.path))
			}
		}
	}
	return out
}

// instTv substitutes actual argument taint for parameter atoms. A
// pass-through atom (rel "") expands to the actual's full structured
// projection, so identity returns and accessors preserve field taints.
// Atoms under a deeper rel expand flat: the callee bound that value to a
// specific field, and re-expanding its structure there would invent
// access paths that exist nowhere in the program (and breed more on each
// fixpoint round — the un-flattened version did not converge on the
// simulator's interpreter loops).
func (sc *funcScope) instTv(t tval, argT []tval, memo *instMemo) tval {
	out := tval{}
	for rel, as := range t {
		for a, pos := range as {
			switch a.kind {
			case aSrc:
				out.add(rel, a, pos)
			case aGlobal:
				out.add(rel, a, pos)
				out.unionAt(rel, sc.e.globalSrc[a.global])
			case aParam:
				if a.param < len(argT) {
					if rel == "" {
						out.mergeAt("", memo.sub(argT, a.param, a.path))
					} else {
						out.unionAt(rel, memo.subFlat(argT, a.param, a.path))
					}
				}
			}
		}
	}
	return out
}

// applySummary instantiates target's transfer summary at this call site.
func (sc *funcScope) applySummary(call *ast.CallExpr, target *Func, argT []tval, n int) []tval {
	sum := sc.e.summaries[target.Key]
	if sum == nil {
		sum = newSummary()
		sc.e.summaries[target.Key] = sum
	}

	// Align variadic tails: fold extra arguments into the last parameter.
	sig := target.Obj.Type().(*types.Signature)
	nparams := sig.Params().Len()
	if sig.Recv() != nil {
		nparams++
	}
	if nparams > 0 && len(argT) > nparams {
		tail := argT[nparams-1:]
		folded := tval{}
		for _, t := range tail {
			folded.unionAt("", t.flatten())
		}
		argT = append(argT[:nparams-1:nparams-1], folded)
	}

	memo := newInstMemo()

	// Callee sinks, lifted into this function's summary with actuals
	// substituted; flows that already carry source atoms resolve at the
	// end of the run like any other.
	for _, sf := range sum.sinks {
		lifted := sc.instA(sf.from, argT, memo)
		if len(lifted) > 0 {
			sc.recordSink(sf.pos, sf.desc, lifted)
		}
	}
	// Callee writes through our arguments, structure preserved.
	for idx, t := range sum.paramOut {
		if idx >= len(argT) {
			continue
		}
		lifted := sc.instTv(t, argT, memo)
		if lifted.isEmpty() {
			continue
		}
		// Which actual expression was parameter idx?
		argIdx := idx
		var argExpr ast.Expr
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if s, isSel := sc.info.Selections[sel]; isSel && s.Kind() == types.MethodVal {
				if idx == 0 {
					argExpr = sel.X
				} else {
					argIdx = idx - 1
					if argIdx < len(call.Args) {
						argExpr = call.Args[argIdx]
					}
				}
			}
		}
		if argExpr == nil && argIdx < len(call.Args) {
			argExpr = call.Args[argIdx]
		}
		if argExpr != nil {
			if ch, ok := ResolveChain(sc.info, sc.aliases, argExpr); ok {
				sc.storeChain(ch, lifted)
			}
		}
	}
	// Callee writes into globals, re-expressed over our atoms.
	for g, t := range sum.globalOut {
		lifted := sc.instA(t, argT, memo)
		if len(lifted) == 0 {
			continue
		}
		out := sc.sum.globalOut[g]
		if out == nil {
			out = aset{}
			sc.sum.globalOut[g] = out
		}
		out.union(lifted)
		sc.e.noteGlobalTaint(g, lifted)
	}

	out := make([]tval, n)
	for i := range out {
		if i < len(sum.results) {
			out[i] = sc.instTv(sum.results[i], argT, memo)
		} else {
			out[i] = tval{}
		}
	}
	return out
}

// builtinCall models the builtins with data flow: append/copy move
// element data, len/cap/min/max propagate value taint conservatively.
func (sc *funcScope) builtinCall(b *types.Builtin, call *ast.CallExpr, n int) []tval {
	out := make([]tval, n)
	for i := range out {
		out[i] = tval{}
	}
	switch b.Name() {
	case "append":
		res := tval{}
		res.unionTv(sc.eval(call.Args[0]))
		for _, a := range call.Args[1:] {
			res.mergeAt("*", sc.eval(a))
		}
		out[0] = res
		if ch, ok := ResolveChain(sc.info, sc.aliases, call.Args[0]); ok {
			sc.storeChain(ch, res)
		}
	case "copy":
		if len(call.Args) == 2 {
			t := sc.eval(call.Args[1])
			if ch, ok := ResolveChain(sc.info, sc.aliases, call.Args[0]); ok {
				sc.storeChain(ch, t)
			}
		}
	case "len", "cap", "min", "max", "real", "imag", "complex":
		all := aset{}
		for _, a := range call.Args {
			all.union(sc.eval(a).flatten())
		}
		out[0] = tval{"": all}
	default:
		for _, a := range call.Args {
			sc.eval(a)
		}
	}
	return out
}

// dump prints a composition profile of the summary (debug only): the
// largest tvals with per-rel atom counts and atom-kind breakdowns.
func (s *summary) dump(w *os.File) {
	show := func(name string, tv tval) {
		if tv.size() < 500 {
			return
		}
		type re struct {
			rel string
			n   int
		}
		var rels []re
		for rel, as := range tv {
			rels = append(rels, re{rel, len(as)})
		}
		sort.Slice(rels, func(i, j int) bool { return rels[i].n > rels[j].n })
		fmt.Fprintf(w, "flow:     %s size=%d rels=%d\n", name, tv.size(), len(tv))
		for i, r := range rels {
			if i >= 5 {
				break
			}
			nsrc, nparam, nglob := 0, 0, 0
			paths := map[string]bool{}
			for a := range tv[r.rel] {
				switch a.kind {
				case aSrc:
					nsrc++
				case aParam:
					nparam++
					paths[fmt.Sprintf("p%d.%s", a.param, a.path)] = true
				case aGlobal:
					nglob++
				}
			}
			var ps []string
			for p := range paths {
				ps = append(ps, p)
			}
			sort.Strings(ps)
			if len(ps) > 8 {
				ps = ps[:8]
			}
			fmt.Fprintf(w, "flow:       rel=%q n=%d src=%d param=%d glob=%d paths=%v\n", r.rel, r.n, nsrc, nparam, nglob, ps)
		}
	}
	for i, r := range s.results {
		show(fmt.Sprintf("result[%d]", i), r)
	}
	for idx, p := range s.paramOut {
		show(fmt.Sprintf("paramOut[%d]", idx), p)
	}
	nsink := 0
	for _, sf := range s.sinks {
		nsink += len(sf.from)
	}
	fmt.Fprintf(w, "flow:     sinks=%d atoms=%d\n", len(s.sinks), nsink)
}
