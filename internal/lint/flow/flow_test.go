package flow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// typecheckSrc builds a one-file Program from source, bypassing the
// go-list loader so the engine is testable in isolation.
func typecheckSrc(t *testing.T, src string) *Program {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.Default()}
	tpkg, err := conf.Check("test/p", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	pkg := &Package{
		Path:      "test/p",
		Files:     []*ast.File{file},
		Filenames: []string{"p.go"},
		Types:     tpkg,
		Info:      info,
	}
	return NewProgram(fset, []*Package{pkg})
}

// testTaintConfig: reads of Cfg.A / Cfg.B are sources (labels 1 and 2),
// stores into any Res field are sinks, calls of any method named Emit
// are call sinks.
func testTaintConfig() *TaintConfig {
	return &TaintConfig{
		SourceOf: func(owner *types.Named, field string) (Label, bool) {
			if owner.Obj().Name() != "Cfg" {
				return 0, false
			}
			switch field {
			case "A":
				return 1, true
			case "B":
				return 2, true
			}
			return 0, false
		},
		SinkOf: func(owner *types.Named, field string) (string, bool) {
			if owner.Obj().Name() == "Res" {
				return "Res." + field, true
			}
			return "", false
		},
		CallSinkOf: func(fn *types.Func) (string, bool) {
			if fn.Name() == "Emit" {
				return "emit", true
			}
			return "", false
		},
		LabelName: func(l Label) string {
			return map[Label]string{1: "A", 2: "B"}[l]
		},
	}
}

func runTaintOn(t *testing.T, src string) []Finding {
	t.Helper()
	prog := typecheckSrc(t, src)
	return RunTaint(prog, testTaintConfig())
}

func wantFindings(t *testing.T, got []Finding, want ...struct {
	sink  string
	label Label
}) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d findings, want %d: %+v", len(got), len(want), got)
	}
	for i, w := range want {
		if got[i].Sink != w.sink || got[i].Label != w.label {
			t.Errorf("finding %d: got (%q, label %d), want (%q, label %d)",
				i, got[i].Sink, got[i].Label, w.sink, w.label)
		}
	}
}

type fw = struct {
	sink  string
	label Label
}

const typesPrelude = `package p
type Cfg struct{ A, B int }
type Res struct{ X, Y int }
`

func TestTaintDirectFlow(t *testing.T) {
	got := runTaintOn(t, typesPrelude+`
func f(c Cfg, r *Res) { r.X = c.A }
`)
	wantFindings(t, got, fw{"Res.X", 1})
}

func TestTaintFieldSensitivity(t *testing.T) {
	// Taint stored into s.u must not leak through a read of s.v; a read
	// of the whole struct must see it.
	got := runTaintOn(t, typesPrelude+`
type pair struct{ u, v int }
func clean(c Cfg, r *Res) {
	var s pair
	s.u = c.A
	r.X = s.v
}
func whole(c Cfg, r *Res) {
	var s pair
	s.u = c.B
	t := s
	r.Y = t.u
}
`)
	wantFindings(t, got, fw{"Res.Y", 2})
}

func TestTaintInterproceduralReturn(t *testing.T) {
	got := runTaintOn(t, typesPrelude+`
func pick(c Cfg) int { return c.A }
func f(c Cfg, r *Res) { r.X = pick(c) }
`)
	wantFindings(t, got, fw{"Res.X", 1})
}

func TestTaintParamOut(t *testing.T) {
	// Flow through a pointer out-parameter, two calls deep.
	got := runTaintOn(t, typesPrelude+`
func set(p *int, v int) { *p = v }
func mid(p *int, c Cfg) { set(p, c.B) }
func f(c Cfg, r *Res) {
	var tmp int
	mid(&tmp, c)
	r.Y = tmp
}
`)
	wantFindings(t, got, fw{"Res.Y", 2})
}

func TestTaintThroughGlobal(t *testing.T) {
	got := runTaintOn(t, typesPrelude+`
var g int
func store(c Cfg) { g = c.A }
func load(r *Res) { r.X = g }
`)
	wantFindings(t, got, fw{"Res.X", 1})
}

func TestTaintCompositeLiteralSink(t *testing.T) {
	got := runTaintOn(t, typesPrelude+`
func f(c Cfg) Res { return Res{X: c.A} }
`)
	wantFindings(t, got, fw{"Res.X", 1})
}

func TestTaintCallSink(t *testing.T) {
	// Interface method call sink: dynamic callee, matched abstractly.
	got := runTaintOn(t, typesPrelude+`
type Tr interface{ Emit(v int) }
func f(c Cfg, tr Tr) { tr.Emit(c.B) }
`)
	wantFindings(t, got, fw{"emit", 2})
}

func TestTaintChannelFlow(t *testing.T) {
	got := runTaintOn(t, typesPrelude+`
func f(c Cfg, r *Res) {
	ch := make(chan int, 1)
	ch <- c.A
	r.X = <-ch
}
`)
	wantFindings(t, got, fw{"Res.X", 1})
}

func TestTaintNoImplicitFlow(t *testing.T) {
	// Control dependence is deliberately outside the lattice: a source
	// used only in a branch condition must not taint stores in the
	// branch body. This is the documented soundness caveat — the golden
	// matrix covers it dynamically.
	got := runTaintOn(t, typesPrelude+`
func f(c Cfg, r *Res) {
	if c.A > 0 {
		r.X = 1
	}
	for i := 0; i < c.B; i++ {
		r.Y = i
	}
}
`)
	wantFindings(t, got)
}

func TestTaintSliceAndAppend(t *testing.T) {
	got := runTaintOn(t, typesPrelude+`
func f(c Cfg, r *Res) {
	var xs []int
	xs = append(xs, c.A)
	r.X = xs[0]
}
`)
	wantFindings(t, got, fw{"Res.X", 1})
}

func TestTaintClosureCapture(t *testing.T) {
	// A closure body is analyzed inline against the shared cell map, so
	// captured-variable flows are seen even though the literal itself is
	// never resolved as a callee.
	got := runTaintOn(t, typesPrelude+`
func f(c Cfg, r *Res) {
	var tmp int
	fill := func() { tmp = c.A }
	fill()
	r.X = tmp
}
`)
	wantFindings(t, got, fw{"Res.X", 1})
}

func TestTaintDeadSourceClean(t *testing.T) {
	// Sources read but never reaching a sink produce nothing.
	got := runTaintOn(t, typesPrelude+`
func f(c Cfg, r *Res) {
	tmp := c.A + c.B
	_ = tmp
	r.X = 3
}
`)
	wantFindings(t, got)
}

func TestWalkerReachable(t *testing.T) {
	prog := typecheckSrc(t, `package p
func root() { a(); b() }
func a()    { c() }
func b()    {}
func c()    {}
func island() {}
type T struct{}
func (t T) Boundary() { island() }
func root2() { T{}.Boundary() }
`)
	w := &Walker{Prog: prog}
	var keys []string
	for _, fn := range w.Reachable([]*Func{prog.Funcs["test/p.root"]}) {
		keys = append(keys, fn.Key)
	}
	want := []string{"test/p.a", "test/p.b", "test/p.c", "test/p.root"}
	if len(keys) != len(want) {
		t.Fatalf("reachable = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("reachable = %v, want %v", keys, want)
		}
	}

	// With T.Boundary as boundary, island stays unreachable from root2.
	w.Boundary = func(fn *Func) bool { return fn.Key == "test/p.T.Boundary" }
	reached := w.Reachable([]*Func{prog.Funcs["test/p.root2"]})
	for _, fn := range reached {
		if fn.Key == "test/p.island" {
			t.Fatalf("island reached through boundary: %v", reached)
		}
	}
}

func TestForEachStoreAndRootObject(t *testing.T) {
	prog := typecheckSrc(t, `package p
type S struct{ f int; m map[string]int }
var G S
func f(s *S) {
	s.f = 1
	s.m["k"] = 2
	G.f++
	local := 3
	_ = local
}
`)
	fn := prog.Funcs["test/p.f"]
	if fn == nil {
		t.Fatal("func f not indexed")
	}
	var roots []string
	ForEachStore(fn.Decl.Body, func(st Store) {
		obj := RootObject(fn.Pkg.Info, st.Target)
		if obj == nil {
			t.Errorf("no root object for store at %v", prog.Fset.Position(st.Pos))
			return
		}
		roots = append(roots, obj.Name())
	})
	want := []string{"s", "s", "G", "local"}
	if len(roots) != len(want) {
		t.Fatalf("store roots = %v, want %v", roots, want)
	}
	for i := range want {
		if roots[i] != want[i] {
			t.Fatalf("store roots = %v, want %v", roots, want)
		}
	}
	if RootObject(fn.Pkg.Info, ast.NewIdent("bogus")) != nil {
		t.Fatal("unresolvable expression should yield nil root object")
	}
}

func TestChainKeyAndPush(t *testing.T) {
	prog := typecheckSrc(t, `package p
type S struct{ A struct{ B struct{ C struct{ D int } } } }
func f(s *S) int { return s.A.B.C.D }
`)
	fn := prog.Funcs["test/p.f"]
	info := fn.Pkg.Info
	env := BuildAliases(info, fn.Decl.Body)
	ret := fn.Decl.Body.List[0].(*ast.ReturnStmt).Results[0]
	ch, ok := ResolveChain(info, env, ret)
	if !ok {
		t.Fatal("chain not resolved")
	}
	// Path is k-limited to maxPathLen segments; deeper access collapses
	// into the wildcard.
	if len(ch.Path) > maxPathLen {
		t.Fatalf("path exceeds k-limit: %v", ch.Path)
	}
	if ch.Path[len(ch.Path)-1] != "*" {
		t.Fatalf("k-limited chain should end in wildcard: %v", ch.Path)
	}
}
