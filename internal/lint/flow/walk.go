package flow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Walker computes which functions are reachable from a set of roots over
// the static call graph. Boundary functions are reported as reached but
// not descended into; dynamic calls (func values, interface methods) are
// not walked — analyzers built on Walker must treat them as explicit
// boundaries (specwrite flags them, globalmut documents them).
type Walker struct {
	Prog *Program
	// Boundary reports whether fn's body should not be descended into.
	// May be nil (no boundaries).
	Boundary func(fn *Func) bool
}

// Reachable returns every function reachable from roots (including the
// roots themselves), sorted by key. Boundary functions appear in the
// result but their callees do not (unless reached another way).
func (w *Walker) Reachable(roots []*Func) []*Func {
	seen := map[string]*Func{}
	var queue []*Func
	for _, r := range roots {
		if r == nil || seen[r.Key] != nil {
			continue
		}
		seen[r.Key] = r
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		if w.Boundary != nil && w.Boundary(fn) {
			continue
		}
		ForEachCall(fn.Pkg.Info, fn.Decl.Body, func(call *ast.CallExpr, callee *types.Func) {
			if callee == nil {
				return
			}
			target := w.Prog.Resolve(callee)
			if target == nil || seen[target.Key] != nil {
				return
			}
			seen[target.Key] = target
			queue = append(queue, target)
		})
	}
	out := make([]*Func, 0, len(seen))
	for _, fn := range seen {
		out = append(out, fn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// ForEachCall visits every call expression under node (including inside
// func literals — a closure defined in a reachable function is treated
// as reachable) with its statically resolved callee, or nil for dynamic
// calls. Conversions and builtins are skipped.
func ForEachCall(info *types.Info, node ast.Node, visit func(call *ast.CallExpr, callee *types.Func)) {
	ast.Inspect(node, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if conv, builtin := IsConversionOrBuiltin(info, call); conv || builtin != nil {
			return true
		}
		if _, isLit := ast.Unparen(call.Fun).(*ast.FuncLit); isLit {
			// Immediately-invoked literal: its body is scanned inline by
			// this very traversal, so the call itself is not dynamic.
			return true
		}
		visit(call, StaticCallee(info, call))
		return true
	})
}

// Store is one syntactic mutation of a value: an assignment target, an
// increment/decrement operand, or a channel send.
type Store struct {
	Target ast.Expr  // the mutated expression
	Pos    token.Pos // position to report
}

// ForEachStore visits every store under node, including inside func
// literals. Range-clause key/value targets are skipped — they bind loop
// locals, never pre-existing state.
func ForEachStore(node ast.Node, visit func(st Store)) {
	ast.Inspect(node, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				lhs = ast.Unparen(lhs)
				if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
					continue
				}
				visit(Store{Target: lhs, Pos: lhs.Pos()})
			}
		case *ast.IncDecStmt:
			visit(Store{Target: ast.Unparen(s.X), Pos: s.X.Pos()})
		case *ast.SendStmt:
			visit(Store{Target: ast.Unparen(s.Chan), Pos: s.Chan.Pos()})
		}
		return true
	})
}

// RootObject resolves the base object a store target ultimately mutates:
// the leftmost identifier's object after stripping selectors, indexing,
// derefs and slices. Returns nil when the base is not a plain
// identifier (e.g. a call result).
func RootObject(info *types.Info, expr ast.Expr) types.Object {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return info.ObjectOf(e)
		case *ast.SelectorExpr:
			// Package-qualified global: pkg.Var.
			if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
				if _, isPkg := info.ObjectOf(id).(*types.PkgName); isPkg {
					return info.ObjectOf(e.Sel)
				}
			}
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		case *ast.TypeAssertExpr:
			expr = e.X
		default:
			return nil
		}
	}
}
