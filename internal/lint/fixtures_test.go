package lint

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts analysistest-style expectations: a comment of the form
// `// want `regexp`` on the line the diagnostic must land on. Multiple
// wants may share a line.
var wantRe = regexp.MustCompile("// want `([^`]+)`")

func loadFixture(t *testing.T, pkg string, overlay map[string][]byte) *Program {
	t.Helper()
	prog, err := Load(".", []string{"./testdata/src/" + pkg}, overlay)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkg, err)
	}
	return prog
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// collectWants scans the fixture sources on disk for want markers.
func collectWants(t *testing.T, prog *Program) []*want {
	t.Helper()
	var wants []*want
	for _, p := range prog.Packages {
		for _, name := range p.Filenames {
			data, err := os.ReadFile(name)
			if err != nil {
				t.Fatalf("reading fixture %s: %v", name, err)
			}
			for i, line := range strings.Split(string(data), "\n") {
				for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", name, i+1, m[1], err)
					}
					wants = append(wants, &want{file: name, line: i + 1, re: re})
				}
			}
		}
	}
	return wants
}

// checkFixture runs one analyzer over one fixture package and verifies
// the diagnostics match the want markers exactly: every diagnostic must
// hit a want, every want must be hit.
func checkFixture(t *testing.T, a *Analyzer, pkg string) {
	t.Helper()
	prog := loadFixture(t, pkg, nil)
	res := RunAnalyzers(prog, []*Analyzer{a}, nil)
	wants := collectWants(t, prog)

	for _, d := range res.Diagnostics {
		pos := prog.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", res.Format(d))
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected a diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func TestMapIterFixture(t *testing.T)    { checkFixture(t, MapIterAnalyzer, "mapiterfix") }
func TestWallClockFixture(t *testing.T)  { checkFixture(t, WallClockAnalyzer, "wallclockfix") }
func TestFloatOrderFixture(t *testing.T) { checkFixture(t, FloatOrderAnalyzer, "floatorderfix") }
func TestAllocFreeFixture(t *testing.T)  { checkFixture(t, AllocFreeAnalyzer, "allocfreefix") }
func TestStateCheckFixture(t *testing.T) { checkFixture(t, StateCheckAnalyzer, "statecheckfix") }
func TestPortProtoFixture(t *testing.T)  { checkFixture(t, PortProtoAnalyzer, "portprotofix") }
func TestKeyTaintFixture(t *testing.T)   { checkFixture(t, KeyTaintAnalyzer, "keytaintfix") }
func TestSpecWriteFixture(t *testing.T)  { checkFixture(t, SpecWriteAnalyzer, "specwritefix") }
func TestGlobalMutFixture(t *testing.T)  { checkFixture(t, GlobalMutAnalyzer, "globalmutfix") }

// TestDirectiveFixture asserts the directive analyzer rejects an unknown
// kind and an escape hatch without a justification, and accepts a
// well-formed one. Expectations are explicit because the diagnostic
// position is the directive comment itself, which cannot also carry a
// want marker.
func TestDirectiveFixture(t *testing.T) {
	prog := loadFixture(t, "directivefix", nil)
	res := RunAnalyzers(prog, []*Analyzer{DirectiveAnalyzer}, nil)
	if len(res.Diagnostics) != 2 {
		for _, d := range res.Diagnostics {
			t.Logf("got: %s", res.Format(d))
		}
		t.Fatalf("directive analyzer reported %d findings, want 2", len(res.Diagnostics))
	}
	if msg := res.Diagnostics[0].Message; !strings.Contains(msg, "unknown directive //coyote:mapiter-okay") {
		t.Errorf("first finding = %q, want unknown-directive complaint", msg)
	}
	if msg := res.Diagnostics[1].Message; !strings.Contains(msg, "needs a justification") {
		t.Errorf("second finding = %q, want missing-justification complaint", msg)
	}
}

// TestStrippedJustificationFails proves every escape-hatch directive in
// the fixtures is load-bearing: re-linting with the directive removed
// (via the loader's overlay) must produce exactly one new finding at the
// formerly justified site.
func TestStrippedJustificationFails(t *testing.T) {
	cases := []struct {
		pkg       string
		directive string
		analyzer  *Analyzer
		wantMsg   string
	}{
		{"mapiterfix", "//coyote:mapiter-ok keys are sorted by the caller before use", MapIterAnalyzer, `range over map`},
		{"wallclockfix", "//coyote:wallclock-ok measures simulator throughput for reporting; never feeds simulated state", WallClockAnalyzer, `time\.Now`},
		{"floatorderfix", "//coyote:floatorder-ok tolerance-checked debug aggregate; not part of simulated state", FloatOrderAnalyzer, `float accumulation`},
		{"allocfreefix", "//coyote:alloc-ok pool warm-up: runs once per unit lifetime", AllocFreeAnalyzer, `make allocates`},
		{"statecheckfix", "//coyote:statecheck-ok only the drain state is reachable here; the dispatcher filters the rest", StateCheckAnalyzer, `misses state`},
		{"portprotofix", "//coyote:portproto-ok prefetch: the fill only warms the tags, nobody consumes the data", PortProtoAnalyzer, `zero Done`},
		{"specwritefix", "//coyote:specwrite-ok fixture: worker-private scratch, justified for the strip test", SpecWriteAnalyzer, `R1: store to Hart\.aux`},
		{"globalmutfix", "//coyote:globalmut-ok fixture: justified read for the strip test", GlobalMutAnalyzer, `mutable package-level variable counter`},
	}
	for _, tc := range cases {
		t.Run(tc.pkg+"/"+tc.analyzer.Name, func(t *testing.T) {
			base := loadFixture(t, tc.pkg, nil)
			before := RunAnalyzers(base, []*Analyzer{tc.analyzer}, nil)

			var file string
			var src []byte
			for _, name := range base.Packages[0].Filenames {
				data, err := os.ReadFile(name)
				if err != nil {
					t.Fatal(err)
				}
				if strings.Contains(string(data), tc.directive) {
					file, src = name, data
					break
				}
			}
			if file == "" {
				t.Fatalf("fixture %s does not contain directive %q", tc.pkg, tc.directive)
			}
			stripped := strings.Replace(string(src), tc.directive, "", 1)

			prog := loadFixture(t, tc.pkg, map[string][]byte{file: []byte(stripped)})
			after := RunAnalyzers(prog, []*Analyzer{tc.analyzer}, nil)

			if len(after.Diagnostics) != len(before.Diagnostics)+1 {
				t.Fatalf("stripping %q: %d findings, want %d",
					tc.directive, len(after.Diagnostics), len(before.Diagnostics)+1)
			}
			re := regexp.MustCompile(tc.wantMsg)
			found := false
			for _, d := range after.Diagnostics {
				if re.MatchString(d.Message) {
					found = true
				}
			}
			if !found {
				t.Errorf("stripping %q produced no finding matching %q", tc.directive, tc.wantMsg)
			}
		})
	}
}
