// Package lint is Coyote's determinism and hot-path invariant suite: a
// set of static analyzers in the spirit of golang.org/x/tools/go/analysis,
// built directly on go/ast and go/types so the module needs no external
// dependencies. The cmd/coyotelint driver runs them over the tree; CI
// treats findings as build failures.
//
// The analyzers enforce the two properties PR 1 established dynamically
// (bit-identical simulated timing, allocation-free steady-state miss
// paths) at the source level:
//
//   - mapiter: no order-sensitive range over a map in simulator packages
//     (Go randomizes map iteration; the MCPU gather coalescer was bitten
//     by exactly this).
//   - wallclock: no wall-clock, environment or global-rand reads inside
//     simulation logic — simulated time comes from evsim, configuration
//     from explicit Config values.
//   - allocfree: functions annotated //coyote:allocfree, and everything
//     statically reachable from them, must not allocate.
//   - floatorder: no float accumulation over unordered containers —
//     reported miss rates must sum in a deterministic order.
//   - directive: every //coyote: directive is well-formed and justified.
//
// PR 4 adds the protocol analyzers that back the coyotesan runtime
// sanitizer (internal/san) with static guarantees:
//
//   - statecheck: switches over simulator state enums (MSHR states, step
//     results, mapping policies) must be exhaustive, and no state of an
//     unexported enum may be dead.
//   - portproto: read requests must carry a completion callback — no
//     fire-and-forget port sends (the static face of the sanitizer's
//     completion ledger).
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one named check over a package (or, for whole-program
// analyzers, over the full Program).
type Analyzer struct {
	Name string
	Doc  string
	// Run inspects one package. Nil for whole-program analyzers.
	Run func(*Pass)
	// RunProgram inspects the whole program at once. Nil for per-package
	// analyzers.
	RunProgram func(*ProgramPass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	Report   func(Diagnostic)
}

// ProgramPass carries a whole-program analyzer's view.
type ProgramPass struct {
	Analyzer *Analyzer
	Program  *Program
	Report   func(Diagnostic)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{DirectiveAnalyzer, MapIterAnalyzer, WallClockAnalyzer, AllocFreeAnalyzer, FloatOrderAnalyzer, StateCheckAnalyzer, PortProtoAnalyzer, KeyTaintAnalyzer, SpecWriteAnalyzer, GlobalMutAnalyzer}
}

// AnalyzersByName resolves a comma-separated analyzer list ("" = all).
// Unknown names are reported as an error so CI can't silently run an
// empty suite.
func AnalyzersByName(names string) ([]*Analyzer, error) {
	all := Analyzers()
	if names == "" {
		return all, nil
	}
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := byName[n]
		if !ok {
			// List the valid names in the error: a driver (or a tool
			// invoking the driver, like coyotemut's oracle cascade) that
			// mistypes an analyzer must fail loudly and fixably, never
			// silently run an empty suite.
			valid := make([]string, 0, len(all))
			for _, a := range all {
				valid = append(valid, a.Name)
			}
			return nil, fmt.Errorf("lint: unknown analyzer %q (valid: %s)", n, strings.Join(valid, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// SimPackages lists the import-path suffixes of the packages where the
// determinism analyzers (mapiter, wallclock, floatorder) apply: the
// simulator proper. Harness packages (kernels, asm, trace, cmd/…) may
// legitimately touch the wall clock or iterate maps for reporting.
var SimPackages = []string{
	"internal/core",
	"internal/evsim",
	"internal/uncore",
	"internal/cpu",
	"internal/cache",
	"internal/mem",
}

// IsSimPackage reports whether importPath is one of the simulator
// packages subject to the determinism analyzers.
func IsSimPackage(importPath string) bool {
	for _, s := range SimPackages {
		if importPath == s || strings.HasSuffix(importPath, "/"+s) {
			return true
		}
	}
	return false
}

// RunResult is the outcome of running the suite.
type RunResult struct {
	Diagnostics []Diagnostic
	Fset        *token.FileSet
}

// RunAnalyzers executes analyzers over prog. Per-package analyzers run on
// every package for which filter returns true (nil filter = all);
// whole-program analyzers always see the full program.
func RunAnalyzers(prog *Program, analyzers []*Analyzer, filter func(*Package) bool) *RunResult {
	res := &RunResult{Fset: prog.Fset}
	report := func(name string) func(Diagnostic) {
		return func(d Diagnostic) {
			d.Analyzer = name
			res.Diagnostics = append(res.Diagnostics, d)
		}
	}
	for _, a := range analyzers {
		switch {
		case a.RunProgram != nil:
			a.RunProgram(&ProgramPass{Analyzer: a, Program: prog, Report: report(a.Name)})
		case a.Run != nil:
			for _, pkg := range prog.Packages {
				if filter != nil && !filter(pkg) {
					continue
				}
				a.Run(&Pass{Analyzer: a, Fset: prog.Fset, Pkg: pkg, Report: report(a.Name)})
			}
		}
	}
	sort.SliceStable(res.Diagnostics, func(i, j int) bool {
		pi, pj := prog.Fset.Position(res.Diagnostics[i].Pos), prog.Fset.Position(res.Diagnostics[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return res
}

// Format renders one diagnostic as "file:line:col: [analyzer] message".
func (r *RunResult) Format(d Diagnostic) string {
	return fmt.Sprintf("%s: [%s] %s", r.Fset.Position(d.Pos), d.Analyzer, d.Message)
}

// DefaultFilter returns the package filter used by the coyotelint driver:
// sim-only analyzers run on simulator packages, everything else runs
// everywhere. The directive analyzer runs on every package so a stray or
// unjustified directive can't hide outside the simulator core.
func DefaultFilter(a *Analyzer) func(*Package) bool {
	switch a.Name {
	case "mapiter", "wallclock", "floatorder", "statecheck", "portproto":
		return func(p *Package) bool { return IsSimPackage(p.ImportPath) }
	default:
		return nil
	}
}

// RunSuite applies the full suite the way the driver and the tests both
// do: each analyzer with its default package filter.
func RunSuite(prog *Program) *RunResult { return RunSelected(prog, Analyzers()) }

// RunSelected applies a subset of the suite (the driver's -run flag),
// keeping each analyzer's default package filter.
func RunSelected(prog *Program, analyzers []*Analyzer) *RunResult {
	res := &RunResult{Fset: prog.Fset}
	for _, a := range analyzers {
		sub := RunAnalyzers(prog, []*Analyzer{a}, DefaultFilter(a))
		res.Diagnostics = append(res.Diagnostics, sub.Diagnostics...)
	}
	sort.SliceStable(res.Diagnostics, func(i, j int) bool {
		pi, pj := prog.Fset.Position(res.Diagnostics[i].Pos), prog.Fset.Position(res.Diagnostics[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return res
}
