package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"github.com/coyote-sim/coyote/internal/lint/flow"
)

// KeyTaintAnalyzer is the static proof behind the result cache's key
// exclusions (DESIGN.md §11, §12). The cache key deliberately omits the
// execution-strategy fields — Workers, InterleaveQuantum, FastForward,
// Hart.BlockMaxLen, Hart.DisableBlockCache — on the strength of a
// determinism argument: they cannot influence committed results. This
// analyzer turns that argument into an interprocedural dataflow check:
//
//   - sources: every read of a key-excluded Config field;
//   - sinks: stores into Result fields (except the wall-clock and
//     parallel-orchestrator audit fields, which legitimately vary),
//     stats counters, trace emission, event scheduling, and the
//     cycle/event-calendar state;
//   - any proven source→sink flow is an error with NO escape hatch:
//     either the flow is removed, or the field moves into the canonical
//     key with a SchemaVersion bump.
//
// When the rcache and core packages are both in the loaded tree the
// analyzer additionally proves three meta-properties, so the key
// encoder, the exclusion list and this static proof can never drift:
//
//   - the exclusion set *derived from the encoder* (Config-field
//     universe minus the fields rcache.CanonicalBytes reads) must equal
//     the analyzer's source list;
//   - it must equal the rcache.ExcludedConfigFields declaration that
//     the fuzz harness asserts against;
//   - the inverse direction: every key-included field must be read
//     somewhere in the simulator — a key-included field nobody reads is
//     a pure false-miss generator and is flagged as dead.
var KeyTaintAnalyzer = &Analyzer{
	Name:       "keytaint",
	Doc:        "proves key-excluded execution-strategy fields cannot flow into cached results, and key-included fields are live",
	RunProgram: runKeyTaint,
}

// keyExcludedFields is the analyzer's built-in source list: dotted paths
// relative to core.Config. It is cross-checked against the encoder and
// against rcache.ExcludedConfigFields whenever those packages are loaded,
// and doubles as the fallback source spec for partial loads (fixtures,
// seeded-mutation tests on a package subset).
var keyExcludedFields = []string{
	"Workers",
	"InterleaveQuantum",
	"FastForward",
	"Hart.BlockMaxLen",
	"Hart.DisableBlockCache",
	"CheckpointAt",
}

// keyResultAuditFields are Result fields that legitimately depend on
// execution strategy and are NOT cache-poisoning sinks: wall-clock time
// and the parallel-orchestrator audit counters are explicitly documented
// as non-deterministic, and the cache stores them only as provenance.
var keyResultAuditFields = map[string]bool{
	"WallTime": true,
	"Par":      true,
}

func runKeyTaint(pass *ProgramPass) {
	fprog := pass.Program.Flow()

	excluded := keyExcludedFields
	rcachePkg := findPackage(pass.Program, "internal/rcache")
	corePkg := findPackage(pass.Program, "internal/core")
	if rcachePkg != nil && corePkg != nil {
		if computed, ok := crossCheckKeySets(pass, fprog, rcachePkg, corePkg); ok {
			excluded = computed
		}
	}

	leafLabel := make(map[string]flow.Label, len(excluded))
	labelPath := make([]string, len(excluded))
	for i, path := range excluded {
		leaf := path
		if j := strings.LastIndexByte(path, '.'); j >= 0 {
			leaf = path[j+1:]
		}
		leafLabel[leaf] = flow.Label(i)
		labelPath[i] = path
	}

	cfg := &flow.TaintConfig{
		SourceOf: func(owner *types.Named, field string) (flow.Label, bool) {
			if owner.Obj().Name() != "Config" {
				return 0, false
			}
			l, ok := leafLabel[field]
			return l, ok
		},
		SinkOf: func(owner *types.Named, field string) (string, bool) {
			switch owner.Obj().Name() {
			case "Result":
				if keyResultAuditFields[field] {
					return "", false
				}
				return "Result." + field, true
			case "Stats":
				return "stats counter Stats." + field, true
			case "Engine":
				return "event-calendar state Engine." + field, true
			case "System":
				if field == "cycle" {
					return "cycle state System.cycle", true
				}
			}
			return "", false
		},
		CallSinkOf: func(fn *types.Func) (string, bool) {
			recv := recvTypeName(fn)
			switch {
			case fn.Name() == "Event" && (recv == "Tracer" || recv == "Writer"):
				return "trace emission " + recv + ".Event", true
			case strings.HasPrefix(fn.Name(), "Schedule") && recv == "Engine":
				return "event scheduling Engine." + fn.Name(), true
			}
			return "", false
		},
		LabelName: func(l flow.Label) string {
			if int(l) < len(labelPath) {
				return labelPath[l]
			}
			return fmt.Sprintf("label%d", l)
		},
	}

	for _, f := range flow.RunTaint(fprog, cfg) {
		src := pass.Program.Fset.Position(f.SrcPos)
		pass.Report(Diagnostic{
			Pos: f.Pos,
			Message: fmt.Sprintf(
				"key-excluded execution-strategy field Config.%s (read at %s:%d) flows into %s; "+
					"cached results would depend on a field outside the cache key — "+
					"remove the flow or move the field into rcache.CanonicalBytes with a SchemaVersion bump (no escape hatch)",
				cfg.LabelName(f.Label), shortFile(src.Filename), src.Line, f.Sink),
		})
	}
}

// recvTypeName returns the name of fn's receiver type ("" for plain
// functions), looking through pointers and interfaces.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	if n, isNamed := t.(*types.Named); isNamed {
		return n.Obj().Name()
	}
	return ""
}

func findPackage(prog *Program, suffix string) *Package {
	for _, pkg := range prog.Packages {
		if pkg.ImportPath == suffix || strings.HasSuffix(pkg.ImportPath, "/"+suffix) {
			return pkg
		}
	}
	return nil
}

func shortFile(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// ---- encoder cross-check and liveness --------------------------------

// universeField is one leaf of the recursively flattened core.Config:
// its dotted path, the named struct type declaring the leaf, and the
// field declaration position.
type universeField struct {
	path  string
	owner *types.Named
	leaf  string
	pos   token.Pos
}

// crossCheckKeySets derives the key-excluded set from the encoder's own
// source, verifies it against the analyzer spec and the exported
// exclusion list, and runs the dead-included-field check. Returns the
// derived exclusion set and whether it is usable as the taint source
// spec.
func crossCheckKeySets(pass *ProgramPass, fprog *flow.Program, rcachePkg, corePkg *Package) ([]string, bool) {
	universe := configUniverse(corePkg)
	if len(universe) == 0 {
		return nil, false
	}
	canonical := fprog.Funcs[rcachePkg.ImportPath+".CanonicalBytes"]
	if canonical == nil {
		pass.Report(Diagnostic{
			Pos:     rcachePkg.Files[0].Pos(),
			Message: "rcache.CanonicalBytes not found; the key encoder moved without updating keytaint",
		})
		return nil, false
	}

	encoded := encodedConfigFields(fprog, canonical)
	var computed []string
	for _, uf := range universe {
		if !encoded[uf.path] {
			computed = append(computed, uf.path)
		}
	}
	sort.Strings(computed)

	ok := true
	if !equalStringSets(computed, keyExcludedFields) {
		pass.Report(Diagnostic{
			Pos: canonical.Decl.Pos(),
			Message: fmt.Sprintf(
				"key exclusion drift: fields the encoder omits %v != keytaint source spec %v; "+
					"update lint.keyExcludedFields, rcache.ExcludedConfigFields and the package comment together",
				computed, sortedCopy(keyExcludedFields)),
		})
		ok = false
	}

	declPos, declared := excludedFieldsDecl(rcachePkg)
	if declared == nil {
		pass.Report(Diagnostic{
			Pos:     canonical.Decl.Pos(),
			Message: "rcache.ExcludedConfigFields declaration not found; the exclusion list must be declared as a string-literal slice",
		})
		ok = false
	} else if !equalStringSets(sortedCopy(declared), computed) {
		pass.Report(Diagnostic{
			Pos: declPos,
			Message: fmt.Sprintf(
				"rcache.ExcludedConfigFields %v disagrees with the fields the encoder actually omits %v",
				declared, computed),
		})
		ok = false
	}

	// Inverse direction: a key-included field nobody outside the encoder
	// reads cannot affect results, so every distinct value of it is a
	// false cache miss.
	live := liveConfigFields(pass.Program)
	for _, uf := range universe {
		if !encoded[uf.path] {
			continue
		}
		if !live[fieldKeyOf(uf.owner, uf.leaf)] {
			pass.Report(Diagnostic{
				Pos: uf.pos,
				Message: fmt.Sprintf(
					"key-included config field %s is never read by the simulator: every distinct value is a pure false-miss generator — "+
						"use the field or move it to the exclusion list (which requires a determinism proof in the golden matrix)",
					uf.path),
			})
		}
	}

	return computed, ok
}

// configUniverse flattens core.Config's exported fields into leaf paths,
// recursing through named struct-typed fields (Hart, Uncore, the cache
// configs under them).
func configUniverse(corePkg *Package) []universeField {
	obj := corePkg.Types.Scope().Lookup("Config")
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil
	}
	var out []universeField
	var rec func(n *types.Named, prefix string)
	rec = func(n *types.Named, prefix string) {
		st, ok := n.Underlying().(*types.Struct)
		if !ok {
			return
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() {
				continue
			}
			path := f.Name()
			if prefix != "" {
				path = prefix + "." + f.Name()
			}
			if sub := flow.NamedOf(f.Type()); sub != nil {
				if _, isStruct := sub.Underlying().(*types.Struct); isStruct {
					rec(sub, path)
					continue
				}
			}
			out = append(out, universeField{path: path, owner: n, leaf: f.Name(), pos: f.Pos()})
		}
	}
	rec(named, "")
	return out
}

// encodedConfigFields extracts the set of Config leaf paths the encoder
// reads, following local aliases (`h := cfg.Hart`) and same-package
// helper calls (`e.cacheCfg(name, h.L1I)`) with parameter substitution.
func encodedConfigFields(fprog *flow.Program, canonical *flow.Func) map[string]bool {
	out := map[string]bool{}
	sig := canonical.Obj.Type().(*types.Signature)
	roots := map[types.Object]string{}
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if n := flow.NamedOf(p.Type()); n != nil && n.Obj().Name() == "Config" {
			roots[p] = ""
		}
	}
	if len(roots) == 0 {
		return out
	}
	markEncodedReads(fprog, canonical, roots, out, 0)
	return out
}

func markEncodedReads(fprog *flow.Program, fn *flow.Func, roots map[types.Object]string, out map[string]bool, depth int) {
	if depth > 5 {
		return
	}
	info := fn.Pkg.Info
	env := flow.BuildAliases(info, fn.Decl.Body)
	resolve := func(e ast.Expr) (string, bool) {
		ch, ok := flow.ResolveChain(info, env, e)
		if !ok {
			return "", false
		}
		prefix, tracked := roots[ch.Root]
		if !tracked {
			return "", false
		}
		parts := append([]string{}, ch.Path...)
		if prefix != "" {
			parts = append(strings.Split(prefix, "."), parts...)
		}
		return strings.Join(parts, "."), true
	}
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SelectorExpr:
			if path, ok := resolve(e); ok && path != "" {
				out[path] = true
			}
		case *ast.CallExpr:
			callee := flow.StaticCallee(info, e)
			if callee == nil || callee.Pkg() != fn.Obj.Pkg() {
				return true
			}
			target := fprog.Resolve(callee)
			if target == nil {
				return true
			}
			tsig := target.Obj.Type().(*types.Signature)
			sub := map[types.Object]string{}
			for i, arg := range e.Args {
				if i >= tsig.Params().Len() {
					break
				}
				if path, ok := resolve(arg); ok {
					sub[tsig.Params().At(i)] = path
				}
			}
			if len(sub) > 0 {
				markEncodedReads(fprog, target, sub, out, depth+1)
			}
		}
		return true
	})
}

// excludedFieldsDecl parses the rcache.ExcludedConfigFields string-slice
// literal from the AST.
func excludedFieldsDecl(pkg *Package) (token.Pos, []string) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != "ExcludedConfigFields" || i >= len(vs.Values) {
						continue
					}
					lit, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						return name.Pos(), nil
					}
					var out []string
					for _, el := range lit.Elts {
						bl, ok := el.(*ast.BasicLit)
						if !ok || bl.Kind != token.STRING {
							return name.Pos(), nil
						}
						s, err := strconv.Unquote(bl.Value)
						if err != nil {
							return name.Pos(), nil
						}
						out = append(out, s)
					}
					return name.Pos(), out
				}
			}
		}
	}
	return token.NoPos, nil
}

// liveConfigFields scans every loaded package except the key encoder and
// the tooling for field *reads* on any type named Config; writes (plain
// assignment targets) do not count as uses.
func liveConfigFields(prog *Program) map[string]bool {
	live := map[string]bool{}
	for _, pkg := range prog.Packages {
		if skipForLiveness(pkg.ImportPath) {
			continue
		}
		writes := map[*ast.SelectorExpr]bool{}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok || (as.Tok != token.ASSIGN && as.Tok != token.DEFINE) {
					return true
				}
				for _, lhs := range as.Lhs {
					if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
						writes[sel] = true
					}
				}
				return true
			})
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || writes[sel] {
					return true
				}
				owner, field, ok := flow.FieldOwner(pkg.Info, sel)
				if !ok || owner.Obj().Name() != "Config" {
					return true
				}
				live[fieldKeyOf(owner, field)] = true
				return true
			})
		}
	}
	return live
}

// skipForLiveness excludes packages whose Config reads don't make a
// field semantically live: the key encoder itself, the lint tooling, and
// command-line drivers (flag plumbing reads every field).
func skipForLiveness(importPath string) bool {
	switch {
	case strings.HasSuffix(importPath, "internal/rcache"),
		strings.Contains(importPath, "internal/lint"),
		strings.Contains(importPath, "/cmd/"):
		return true
	}
	return false
}

func fieldKeyOf(owner *types.Named, field string) string {
	if p := owner.Obj().Pkg(); p != nil {
		return p.Path() + "." + owner.Obj().Name() + "." + field
	}
	return owner.Obj().Name() + "." + field
}

func equalStringSets(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	as, bs := sortedCopy(a), sortedCopy(b)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func sortedCopy(s []string) []string {
	c := append([]string{}, s...)
	sort.Strings(c)
	return c
}
