package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// AllocFreeAnalyzer turns PR 1's AllocsPerRun=0 tests into source-level
// enforcement. A function annotated //coyote:allocfree is a root of the
// steady-state hot path (event schedule/pop, Port.Send, the
// dispatch-to-fill miss path); the analyzer walks the static call graph
// from every root and flags anything that can allocate on the way:
//
//   - function literals (closure allocation)
//   - &T{…} composite literals, slice and map literals
//   - make, new
//   - append whose result is not assigned back to its first argument
//     (growth of a fresh slice escapes the reused-buffer discipline;
//     self-append `x = append(x, …)` is amortized-zero against a pool)
//   - method values (x.M used as a value allocates a bound closure)
//   - string concatenation and string<->[]byte conversions
//   - implicit interface conversions (boxing) at call arguments and
//     assignments
//   - calls into known allocating stdlib packages (fmt, errors, strconv)
//
// Arguments of panic(…) are exempt: a panic is already off the hot path.
// A cold sub-path inside a hot function (pool refill on first use) is
// exempted line-by-line with //coyote:alloc-ok <reason>. A whole callee
// whose allocations are accepted by design — and audited by its own
// AllocsPerRun tests rather than this walker — is annotated
// //coyote:allocfree-boundary <reason>: the walk stops there instead of
// flooding the report with findings the owner has already signed off on.
//
// Dynamic calls — through function values, stored callbacks, or
// interface methods — are a boundary the walker does not cross. That is
// the right boundary here: the hot paths deliberately traffic in
// pre-bound callbacks (evsim events, uncore.Done), and each callback's
// body is annotated as its own root where it matters.
var AllocFreeAnalyzer = &Analyzer{
	Name:       "allocfree",
	Doc:        "verifies //coyote:allocfree functions and their static callees do not allocate",
	RunProgram: runAllocFree,
}

// allocPkgDeny lists stdlib packages whose entry points allocate by
// design; a call into one from an allocfree context is always a finding.
var allocPkgDeny = map[string]bool{
	"fmt":     true,
	"errors":  true,
	"strconv": true,
}

func runAllocFree(pass *ProgramPass) {
	prog := pass.Program

	type queued struct {
		node *FuncNode
		via  string // the annotated root this function is reached from
	}
	var queue []queued
	seen := make(map[string]bool)
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !FuncAnnotation(fd, "allocfree") {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				key := FuncKey(obj)
				if node := prog.Funcs[key]; node != nil && !seen[key] {
					seen[key] = true
					queue = append(queue, queued{node: node, via: shortKey(key)})
				}
			}
		}
	}

	for len(queue) > 0 {
		q := queue[0]
		queue = queue[1:]
		callees := checkFuncBody(pass, q.node, q.via)
		for _, key := range callees {
			if seen[key] {
				continue
			}
			if node := prog.Funcs[key]; node != nil {
				seen[key] = true
				queue = append(queue, queued{node: node, via: q.via})
			}
		}
	}
}

// bodyIndex holds per-body syntactic context computed in one pre-pass:
// which nodes sit inside panic(...) arguments, which selector exprs are
// the operand of a call (x.M() vs the method value x.M), and each call's
// enclosing single-assignment statement (for the self-append test).
type bodyIndex struct {
	panicArgs map[ast.Node]bool
	callFuns  map[*ast.SelectorExpr]bool
	assignOf  map[*ast.CallExpr]*ast.AssignStmt
}

func indexBody(info *types.Info, body *ast.BlockStmt) *bodyIndex {
	idx := &bodyIndex{
		panicArgs: make(map[ast.Node]bool),
		callFuns:  make(map[*ast.SelectorExpr]bool),
		assignOf:  make(map[*ast.CallExpr]*ast.AssignStmt),
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				idx.callFuns[sel] = true
			}
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					for _, arg := range x.Args {
						ast.Inspect(arg, func(m ast.Node) bool {
							if m != nil {
								idx.panicArgs[m] = true
							}
							return true
						})
					}
				}
			}
		case *ast.AssignStmt:
			if len(x.Rhs) == 1 {
				if call, ok := x.Rhs[0].(*ast.CallExpr); ok {
					idx.assignOf[call] = x
				}
			}
		}
		return true
	})
	return idx
}

// checkFuncBody reports allocation sites in one function and returns the
// keys of statically-resolved callees to continue the walk through.
func checkFuncBody(pass *ProgramPass, node *FuncNode, via string) []string {
	fset := pass.Program.Fset
	pkg := node.Pkg
	info := pkg.Info
	idx := indexBody(info, node.Decl.Body)
	var callees []string

	where := " in " + shortKey(node.Key)
	if own := shortKey(node.Key); own == via {
		where = " in //coyote:allocfree " + via
	} else {
		where += " (reached from //coyote:allocfree " + via + ")"
	}
	report := func(pos token.Pos, msg string) {
		if pkg.Directives.At(fset, pos, "alloc-ok") != nil {
			return
		}
		pass.Report(Diagnostic{Pos: pos, Message: msg + where})
	}

	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if idx.panicArgs[n] {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			report(x.Pos(), "function literal allocates a closure")
			return false // only the capture allocates here; the body runs elsewhere

		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := x.X.(*ast.CompositeLit); ok {
					report(x.Pos(), "&composite literal heap-allocates")
				}
			}

		case *ast.CompositeLit:
			if t := info.TypeOf(x); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					report(x.Pos(), "slice literal allocates")
				case *types.Map:
					report(x.Pos(), "map literal allocates")
				}
			}

		case *ast.BinaryExpr:
			if x.Op == token.ADD {
				if t := info.TypeOf(x); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						report(x.Pos(), "string concatenation allocates")
					}
				}
			}

		case *ast.SelectorExpr:
			if sel, ok := info.Selections[x]; ok && sel.Kind() == types.MethodVal && !idx.callFuns[x] {
				report(x.Pos(), "method value "+x.Sel.Name+" allocates a bound closure")
			}

		case *ast.CallExpr:
			callees = classifyCall(pass, info, idx, report, x, callees)
		}
		return true
	})

	checkBoxing(info, idx, node.Decl.Body, report)
	return callees
}

// classifyCall handles one call expression: builtin allocators, type
// conversions, denylisted stdlib, or a statically-resolved callee to
// walk into.
func classifyCall(pass *ProgramPass, info *types.Info, idx *bodyIndex, report func(token.Pos, string), call *ast.CallExpr, callees []string) []string {
	// Type conversion? string(b) / []byte(s) copy and allocate.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && isStringByteConv(info.TypeOf(call.Args[0]), tv.Type) {
			report(call.Pos(), "string/[]byte conversion allocates")
		}
		return callees
	}

	resolve := func(fn *types.Func) []string {
		key := FuncKey(fn)
		if node, ok := pass.Program.Funcs[key]; ok {
			if FuncAnnotation(node.Decl, "allocfree-boundary") {
				return callees // explicitly signed-off boundary: not walked
			}
			return append(callees, key)
		}
		if p := fn.Pkg(); p != nil && allocPkgDeny[p.Path()] {
			report(call.Pos(), "call to "+p.Path()+"."+fn.Name()+" allocates")
		}
		return callees
	}

	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(call.Pos(), "make allocates")
			case "new":
				report(call.Pos(), "new allocates")
			case "append":
				if !isSelfAppend(idx, call) {
					report(call.Pos(), "append result is not assigned back to its first argument; growth escapes the reused buffer")
				}
			}
			return callees
		}
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return resolve(fn)
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			if sel, selOk := info.Selections[fun]; selOk && sel.Kind() == types.MethodVal && types.IsInterface(sel.Recv()) {
				return callees // dynamic dispatch: boundary, not walked
			}
			return resolve(fn)
		}
	}
	// Anything else (call through a function value / stored callback) is
	// dynamic: a boundary the walker does not cross.
	return callees
}

// checkBoxing flags implicit interface conversions: concrete values
// passed to interface parameters or assigned to interface lvalues box
// (allocate) unless the value is already an interface or a nil literal.
func checkBoxing(info *types.Info, idx *bodyIndex, body *ast.BlockStmt, report func(token.Pos, string)) {
	boxes := func(dst types.Type, src ast.Expr) bool {
		if dst == nil || !types.IsInterface(dst) {
			return false
		}
		st := info.TypeOf(src)
		if st == nil || types.IsInterface(st) {
			return false
		}
		if b, ok := st.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			return false
		}
		return true
	}

	ast.Inspect(body, func(n ast.Node) bool {
		if n != nil && idx.panicArgs[n] {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					return false
				}
			}
			sig, ok := info.TypeOf(x.Fun).(*types.Signature)
			if !ok {
				return true
			}
			np := sig.Params().Len()
			for i, arg := range x.Args {
				var pt types.Type
				switch {
				case sig.Variadic() && i >= np-1:
					if x.Ellipsis != token.NoPos {
						continue
					}
					pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
				case i < np:
					pt = sig.Params().At(i).Type()
				}
				if boxes(pt, arg) {
					report(arg.Pos(), "implicit conversion to interface boxes (allocates)")
				}
			}
		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) {
				for i := range x.Rhs {
					if boxes(info.TypeOf(x.Lhs[i]), x.Rhs[i]) {
						report(x.Rhs[i].Pos(), "assignment boxes into interface (allocates)")
					}
				}
			}
		}
		return true
	})
}

// isSelfAppend reports whether call (a call to append) appears as
// `x = append(x, …)` — the amortized-allocation-free pattern where the
// grown buffer is kept.
func isSelfAppend(idx *bodyIndex, call *ast.CallExpr) bool {
	parent := idx.assignOf[call]
	if parent == nil || len(parent.Lhs) != 1 {
		return false
	}
	if len(call.Args) == 0 {
		return false
	}
	return exprString(parent.Lhs[0]) == exprString(call.Args[0])
}

// exprString renders an expression for structural comparison.
func exprString(e ast.Expr) string {
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, token.NewFileSet(), e)
	return buf.String()
}

// isStringByteConv reports whether a conversion between from and to is a
// string <-> []byte/[]rune conversion (which copies).
func isStringByteConv(from, to types.Type) bool {
	if from == nil || to == nil {
		return false
	}
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteSlice := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
	}
	return (isStr(from) && isByteSlice(to)) || (isByteSlice(from) && isStr(to))
}

// shortKey trims the module prefix off a function key for readable
// diagnostics: "github.com/coyote-sim/coyote/internal/evsim.Engine.enqueue"
// → "evsim.Engine.enqueue".
func shortKey(key string) string {
	if i := lastIndexByte(key, '/'); i >= 0 {
		return key[i+1:]
	}
	return key
}

func lastIndexByte(s string, b byte) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == b {
			return i
		}
	}
	return -1
}
