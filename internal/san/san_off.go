//go:build !coyotesan

package san

// Enabled reports whether the sanitizer is compiled in. It is a constant,
// so `if san.Enabled { … }` blocks are dead-code-eliminated in the
// default build.
const Enabled = false

// Check is the universal ad-hoc invariant hook: a no-op here, a
// cycle-stamped violation when ok is false in the coyotesan build. The
// two uint64 details travel as plain words so call sites never box.
func Check(ok bool, now uint64, unit, detail string, a, b uint64) {}

// Queue checks an event-queue lane discipline (evsim's calendar ring +
// overflow heap): schedule-in-the-future only, lane membership by
// timestamp, monotonic pops, and pending-count conservation.
type Queue struct{}

// Init names the queue for reports.
func (q *Queue) Init(name string) {}

// Schedule records an enqueue of an event at when, observed at now.
func (q *Queue) Schedule(now, when uint64) {}

// RingSlot records an event entering the calendar ring lane.
func (q *Queue) RingSlot(base, when, window uint64) {}

// OverflowPush records an event entering the overflow heap lane.
func (q *Queue) OverflowPush(base, when, window uint64) {}

// Pop records one event execution at time when with the clock at now.
func (q *Queue) Pop(now, when uint64) {}

// Counts cross-checks the queue's occupancy bookkeeping.
func (q *Queue) Counts(now uint64, pending, inRing, overflow int) {}

// MSHR shadows a miss-status holding register table: no duplicate
// in-flight lines, occupancy bounded by capacity, releases and merges
// only for lines actually in flight, and nothing left at drain.
type MSHR struct{}

// Init names the table and sets its capacity (<= 0 means unbounded).
func (m *MSHR) Init(name string, capacity int) {}

// Insert records a new in-flight line.
func (m *MSHR) Insert(now, addr uint64) {}

// Merge records a request merging into an in-flight line.
func (m *MSHR) Merge(now, addr uint64) {}

// Release records an in-flight line completing.
func (m *MSHR) Release(now, addr uint64) {}

// Drained asserts the table is empty (end of simulation).
func (m *MSHR) Drained(now uint64) {}

// Ledger tracks request/completion conservation: every issued completion
// key is settled exactly once and nothing is owed at drain.
type Ledger struct{}

// Init names the ledger for reports.
func (l *Ledger) Init(name string) {}

// Issue records that a completion keyed by key is now owed.
func (l *Ledger) Issue(now, key uint64) {}

// Settle records delivery of a completion keyed by key.
func (l *Ledger) Settle(now, key uint64) {}

// Covered asserts at least one completion is outstanding for key.
func (l *Ledger) Covered(now, key uint64) {}

// Drained asserts no completions are owed (end of simulation).
func (l *Ledger) Drained(now uint64) {}

// Channel shadows a bandwidth-limited channel's next-free watermark:
// grants never start in the past, never double-book the channel, and
// advance the watermark by exactly the occupancy.
type Channel struct{}

// Init names the channel for reports.
func (c *Channel) Init(name string) {}

// Grant records one channel grant: the transfer occupies
// [start, newFree) and the previous watermark must be respected.
func (c *Channel) Grant(now, start, newFree, occupancy uint64) {}

// Latch pins a pair of configuration words (e.g. the NoC's two fixed
// latencies) at init and verifies they never drift on the hot path.
type Latch struct{}

// Init latches the two configuration words.
func (l *Latch) Init(name string, a, b uint64) {}

// CheckLatched verifies the words still match the latched values.
func (l *Latch) CheckLatched(now, a, b uint64) {}

// Dir shadows a cache tag store with a mirror residency directory and
// cross-checks every lookup's hit/miss verdict against it.
type Dir struct{}

// Init names the directory for reports.
func (d *Dir) Init(name string) {}

// Lookup verifies a lookup outcome for a line tag against the shadow.
func (d *Dir) Lookup(clock, tag uint64, hit bool) {}

// Install records a line tag becoming resident.
func (d *Dir) Install(clock, tag uint64) {}

// Evict records a resident line tag being evicted.
func (d *Dir) Evict(clock, tag uint64) {}

// Drop records an invalidation; present reports whether the tag store
// found the line.
func (d *Dir) Drop(clock, tag uint64, present bool) {}

// Reset empties the shadow directory (cache flush).
func (d *Dir) Reset() {}

// Count cross-checks the tag store's occupancy against the shadow.
func (d *Dir) Count(clock uint64, n int) {}
