//go:build coyotesan

package san

import "fmt"

// Enabled reports whether the sanitizer is compiled in.
const Enabled = true

// violate raises a cycle-stamped, Paraver-correlatable report. The cycle
// number equals the timestamp field of the .prv records emitted by the
// same run, so `grep ':<cycle>:' trace.prv` lands on the events
// surrounding the violation.
func violate(now uint64, unit, format string, args ...any) {
	detail := fmt.Sprintf(format, args...)
	if unit == "" {
		unit = "?"
	}
	panic(Violation(fmt.Sprintf(
		"coyotesan: cycle %d: %s: %s (Paraver: records with timestamp %d in the .prv trace)",
		now, unit, detail, now)))
}

// Check is the universal ad-hoc invariant hook.
func Check(ok bool, now uint64, unit, detail string, a, b uint64) {
	if !ok {
		violate(now, unit, "%s (a=%#x b=%#x)", detail, a, b)
	}
}

// Queue checks an event-queue lane discipline: schedule-in-the-future
// only, lane membership by timestamp, monotonic pops, and pending-count
// conservation.
type Queue struct {
	name    string
	lastPop uint64
	popped  bool
}

func (q *Queue) Init(name string) { q.name = name }

func (q *Queue) Schedule(now, when uint64) {
	if when < now {
		violate(now, q.name, "event scheduled in the past (when=%d < now=%d)", when, now)
	}
}

func (q *Queue) RingSlot(base, when, window uint64) {
	if when < base || when >= base+window {
		violate(base, q.name,
			"event at %d entered the calendar ring outside its window [%d, %d)",
			when, base, base+window)
	}
}

func (q *Queue) OverflowPush(base, when, window uint64) {
	if when < base+window {
		violate(base, q.name,
			"event at %d entered the overflow heap inside the ring window [%d, %d)",
			when, base, base+window)
	}
}

func (q *Queue) Pop(now, when uint64) {
	if when != now {
		violate(now, q.name, "executed an event stamped %d with the clock at %d", when, now)
	}
	if q.popped && now < q.lastPop {
		violate(now, q.name, "event time ran backwards (previous pop at %d)", q.lastPop)
	}
	q.lastPop = now
	q.popped = true
}

func (q *Queue) Counts(now uint64, pending, inRing, overflow int) {
	if inRing < 0 || overflow < 0 || pending != inRing+overflow {
		violate(now, q.name,
			"queue occupancy out of balance: pending=%d, ring=%d, overflow=%d",
			pending, inRing, overflow)
	}
}

// MSHR shadows a miss-status holding register table.
type MSHR struct {
	name     string
	capacity int
	inflight map[uint64]bool
}

func (m *MSHR) Init(name string, capacity int) {
	m.name = name
	m.capacity = capacity
}

func (m *MSHR) Insert(now, addr uint64) {
	if m.inflight == nil {
		m.inflight = make(map[uint64]bool)
	}
	if m.inflight[addr] {
		violate(now, m.name, "duplicate in-flight line %#x (occupancy %d)", addr, len(m.inflight))
	}
	if m.capacity > 0 && len(m.inflight) >= m.capacity {
		violate(now, m.name, "MSHR occupancy %d exceeds capacity %d inserting line %#x",
			len(m.inflight)+1, m.capacity, addr)
	}
	m.inflight[addr] = true
}

func (m *MSHR) Merge(now, addr uint64) {
	if !m.inflight[addr] {
		violate(now, m.name, "merge into line %#x which has no in-flight miss", addr)
	}
}

func (m *MSHR) Release(now, addr uint64) {
	if !m.inflight[addr] {
		violate(now, m.name, "release of line %#x which has no in-flight miss", addr)
	}
	delete(m.inflight, addr)
}

func (m *MSHR) Drained(now uint64) {
	if len(m.inflight) == 0 {
		return
	}
	// Report the smallest leaked address so the message is deterministic
	// despite map order.
	first := ^uint64(0)
	for a := range m.inflight {
		if a < first {
			first = a
		}
	}
	violate(now, m.name, "%d in-flight line(s) leaked at drain (first: %#x) — a fill or release was dropped",
		len(m.inflight), first)
}

// Ledger tracks request/completion conservation.
type Ledger struct {
	name string
	owed map[uint64]int
	sum  int
}

func (l *Ledger) Init(name string) { l.name = name }

func (l *Ledger) Issue(now, key uint64) {
	if l.owed == nil {
		l.owed = make(map[uint64]int)
	}
	l.owed[key]++
	l.sum++
}

func (l *Ledger) Settle(now, key uint64) {
	if l.owed[key] == 0 {
		violate(now, l.name,
			"completion for key %#x that was never issued (double delivery or stray Done)", key)
	}
	l.owed[key]--
	l.sum--
}

func (l *Ledger) Covered(now, key uint64) {
	if l.owed[key] == 0 {
		violate(now, l.name, "waiting on key %#x with no outstanding completion (guaranteed deadlock)", key)
	}
}

func (l *Ledger) Drained(now uint64) {
	if l.sum == 0 {
		return
	}
	first := ^uint64(0)
	for k, n := range l.owed {
		if n > 0 && k < first {
			first = k
		}
	}
	violate(now, l.name, "%d completion(s) never delivered at drain (first key: %#x)", l.sum, first)
}

// Channel shadows a bandwidth-limited channel's next-free watermark.
type Channel struct {
	name     string
	lastFree uint64
}

func (c *Channel) Init(name string) { c.name = name }

func (c *Channel) Grant(now, start, newFree, occupancy uint64) {
	switch {
	case start < now:
		violate(now, c.name, "grant starts in the past (start=%d)", start)
	case start < c.lastFree:
		violate(now, c.name, "channel double-booked: grant at %d overlaps busy window ending %d",
			start, c.lastFree)
	case newFree != start+occupancy:
		violate(now, c.name, "occupancy not conserved: watermark %d != start %d + occupancy %d",
			newFree, start, occupancy)
	}
	c.lastFree = newFree
}

// Latch pins a pair of configuration words.
type Latch struct {
	name string
	a, b uint64
	set  bool
}

func (l *Latch) Init(name string, a, b uint64) {
	l.name, l.a, l.b, l.set = name, a, b, true
}

func (l *Latch) CheckLatched(now, a, b uint64) {
	if !l.set {
		violate(now, l.name, "latch checked before Init")
	}
	if a != l.a || b != l.b {
		violate(now, l.name, "latched configuration drifted: (%d,%d) != (%d,%d)", a, b, l.a, l.b)
	}
}

// Dir shadows a cache tag store with a mirror residency directory.
type Dir struct {
	name     string
	resident map[uint64]bool
}

func (d *Dir) Init(name string) { d.name = name }

func (d *Dir) Lookup(clock, tag uint64, hit bool) {
	if hit != d.resident[tag] {
		violate(clock, d.name,
			"tag store and shadow directory disagree on tag %#x: lookup says hit=%v, directory says %v",
			tag, hit, d.resident[tag])
	}
}

func (d *Dir) Install(clock, tag uint64) {
	if d.resident == nil {
		d.resident = make(map[uint64]bool)
	}
	if d.resident[tag] {
		violate(clock, d.name, "install of tag %#x which is already resident", tag)
	}
	d.resident[tag] = true
}

func (d *Dir) Evict(clock, tag uint64) {
	if !d.resident[tag] {
		violate(clock, d.name, "eviction of tag %#x which is not resident", tag)
	}
	delete(d.resident, tag)
}

func (d *Dir) Drop(clock, tag uint64, present bool) {
	if present != d.resident[tag] {
		violate(clock, d.name,
			"invalidate of tag %#x: tag store found=%v, directory says %v", tag, present, d.resident[tag])
	}
	delete(d.resident, tag)
}

func (d *Dir) Reset() { clear(d.resident) }

func (d *Dir) Count(clock uint64, n int) {
	if n != len(d.resident) {
		violate(clock, d.name, "occupancy %d disagrees with shadow directory (%d lines)",
			n, len(d.resident))
	}
}
