//go:build coyotesan

package san

import (
	"strings"
	"testing"
)

// wantViolation runs f and requires it to panic with a Violation whose
// report contains every fragment (cycle stamp, unit, detail).
func wantViolation(t *testing.T, f func(), fragments ...string) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected a sanitizer violation, got none")
		}
		v, ok := r.(Violation)
		if !ok {
			t.Fatalf("panic value is %T, want san.Violation", r)
		}
		for _, frag := range fragments {
			if !strings.Contains(v.Error(), frag) {
				t.Errorf("report %q missing %q", v.Error(), frag)
			}
		}
	}()
	f()
}

func TestCheck(t *testing.T) {
	Check(true, 1, "u", "fine", 0, 0) // must not panic
	wantViolation(t, func() {
		Check(false, 42, "l2bank.mshr", "boom", 0xbeef, 2)
	}, "cycle 42", "l2bank.mshr", "boom", "0xbeef")
}

func TestViolationReportIsParaverCorrelatable(t *testing.T) {
	wantViolation(t, func() {
		Check(false, 1234, "unit", "d", 0, 0)
	}, "records with timestamp 1234")
}

func TestQueue(t *testing.T) {
	var q Queue
	q.Init("q")
	q.Schedule(10, 10)
	q.Schedule(10, 500)
	wantViolation(t, func() { q.Schedule(10, 9) }, "scheduled in the past")

	q.RingSlot(100, 100, 1024)
	q.RingSlot(100, 1123, 1024)
	wantViolation(t, func() { q.RingSlot(100, 1124, 1024) }, "outside its window")
	wantViolation(t, func() { q.RingSlot(100, 99, 1024) }, "outside its window")

	q.OverflowPush(100, 1124, 1024)
	wantViolation(t, func() { q.OverflowPush(100, 1123, 1024) }, "inside the ring window")

	q.Pop(50, 50)
	q.Pop(50, 50)
	q.Pop(51, 51)
	wantViolation(t, func() { q.Pop(51, 52) }, "stamped 52")
	var back Queue
	back.Init("back")
	back.Pop(10, 10)
	wantViolation(t, func() { back.Pop(5, 5) }, "ran backwards")

	q.Counts(60, 5, 3, 2)
	wantViolation(t, func() { q.Counts(60, 5, 3, 1) }, "out of balance")
}

func TestMSHR(t *testing.T) {
	var m MSHR
	m.Init("m", 2)
	m.Insert(1, 0x40)
	m.Merge(2, 0x40)
	wantViolation(t, func() { m.Merge(2, 0x80) }, "no in-flight miss")
	m.Insert(3, 0x80)
	wantViolation(t, func() { m.Insert(4, 0x40) }, "duplicate in-flight line")
	wantViolation(t, func() { m.Insert(4, 0xc0) }, "exceeds capacity")
	m.Release(5, 0x40)
	m.Insert(5, 0xc0) // capacity freed: fits again
	wantViolation(t, func() { m.Release(6, 0x40) }, "no in-flight miss")
	wantViolation(t, func() { m.Drained(7) }, "leaked at drain", "0x80")
}

func TestMSHRUnbounded(t *testing.T) {
	var m MSHR
	m.Init("m", 0)
	for a := uint64(0); a < 64; a += 8 {
		m.Insert(1, a)
	}
	for a := uint64(0); a < 64; a += 8 {
		m.Release(2, a)
	}
	m.Drained(3) // empty: fine
}

func TestLedger(t *testing.T) {
	var l Ledger
	l.Init("l")
	l.Issue(1, 7)
	l.Issue(1, 7) // two fills owed on the same key is legal
	l.Covered(2, 7)
	l.Settle(3, 7)
	l.Settle(4, 7)
	wantViolation(t, func() { l.Settle(5, 7) }, "never issued")
	wantViolation(t, func() { l.Covered(5, 7) }, "deadlock")
	l.Drained(6)
	l.Issue(7, 9)
	wantViolation(t, func() { l.Drained(8) }, "never delivered", "0x9")
}

func TestChannel(t *testing.T) {
	var c Channel
	c.Init("c")
	c.Grant(10, 10, 12, 2)
	c.Grant(11, 12, 14, 2) // queued behind the previous transfer
	wantViolation(t, func() { c.Grant(12, 13, 15, 2) }, "double-booked")
	var c2 Channel
	c2.Init("c2")
	wantViolation(t, func() { c2.Grant(10, 9, 11, 2) }, "starts in the past")
	var c3 Channel
	c3.Init("c3")
	wantViolation(t, func() { c3.Grant(10, 10, 13, 2) }, "not conserved")
}

func TestLatch(t *testing.T) {
	var l Latch
	l.Init("l", 8, 2)
	l.CheckLatched(1, 8, 2)
	wantViolation(t, func() { l.CheckLatched(2, 8, 3) }, "drifted")
	var unset Latch
	wantViolation(t, func() { unset.CheckLatched(1, 0, 0) }, "before Init")
}

func TestDir(t *testing.T) {
	var d Dir
	d.Init("d")
	d.Lookup(1, 5, false)
	d.Install(2, 5)
	d.Lookup(3, 5, true)
	wantViolation(t, func() { d.Lookup(4, 5, false) }, "disagree")
	wantViolation(t, func() { d.Install(4, 5) }, "already resident")
	d.Evict(5, 5)
	wantViolation(t, func() { d.Evict(6, 5) }, "not resident")
	d.Install(7, 6)
	d.Drop(8, 6, true)
	d.Drop(9, 6, false) // absent and tag store agrees
	wantViolation(t, func() { d.Drop(10, 6, true) }, "directory says")
	d.Install(11, 1)
	d.Install(11, 2)
	d.Count(12, 2)
	wantViolation(t, func() { d.Count(13, 3) }, "disagrees with shadow")
	d.Reset()
	d.Count(14, 0)
}
