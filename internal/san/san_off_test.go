//go:build !coyotesan

package san

import (
	"testing"
	"unsafe"
)

// The default build's contract: the sanitizer is compiled out. Enabled is
// a false constant, the checker types are zero-size, and every hook is a
// no-op even when fed blatant violations.
func TestDisabledStubsAreInert(t *testing.T) {
	if Enabled {
		t.Fatal("san.Enabled must be false in the default build")
	}
	var (
		q Queue
		m MSHR
		l Ledger
		c Channel
		a Latch
		d Dir
	)
	if s := unsafe.Sizeof(q) + unsafe.Sizeof(m) + unsafe.Sizeof(l) +
		unsafe.Sizeof(c) + unsafe.Sizeof(a) + unsafe.Sizeof(d); s != 0 {
		t.Fatalf("stub checkers occupy %d bytes, want 0 (they are embedded in hot structs)", s)
	}

	// Feed every stub an outright violation: nothing may panic.
	Check(false, 1, "u", "ignored", 0, 0)
	q.Init("q")
	q.Schedule(10, 5) // in the past
	q.Pop(3, 9)       // wrong stamp
	q.Counts(0, 1, 0, 0)
	m.Init("m", 1)
	m.Release(1, 0x40) // never inserted
	m.Drained(2)
	l.Init("l")
	l.Settle(1, 7) // never issued
	l.Drained(2)
	c.Init("c")
	c.Grant(10, 0, 99, 1)
	a.CheckLatched(1, 1, 2) // never latched
	d.Init("d")
	d.Lookup(1, 5, true) // not resident
	d.Count(2, 42)
}
