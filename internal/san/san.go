// Package san is Coyote's runtime invariant sanitizer: the dynamic
// counterpart to the static coyotelint suite. The simulator's trust
// boundaries — the evsim event queue, the L2/LLC MSHR machinery, the
// memory-controller channel watermarks, the orchestrator's runnable-hart
// bitset and the cache tag stores — call into this package at every state
// transition. Under the default build every call is a no-op on a
// zero-size value: the stubs in san_off.go compile to nothing, and the
// allocfree analyzer verifies the instrumented hot paths still allocate
// zero bytes. Building with
//
//	go build -tags coyotesan ./...
//	go test  -tags coyotesan ./...
//
// swaps in san_on.go: every checker keeps shadow state (in-flight line
// sets, completion ledgers, channel watermarks, a mirror directory per
// cache) and panics with a cycle-stamped report on the first violation.
// The report carries the simulated cycle so a violation can be correlated
// with the Paraver trace of the same run: the cycle number is the
// timestamp field of the .prv records (grep ':<cycle>:' in the trace).
//
// The sanitizer is purely observational. It schedules no events, touches
// no simulated state and consults no wall clock, so a coyotesan binary
// produces bit-identical simulated timing to the default build — the
// property the root package's pinned-cycle golden test enforces.
package san

// Violation is the panic value raised on an invariant failure in the
// coyotesan build. It implements error so recovering test harnesses can
// treat it uniformly.
type Violation string

// Error implements error.
func (v Violation) Error() string { return string(v) }
