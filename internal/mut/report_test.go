package mut

import (
	"bytes"
	"strings"
	"testing"
)

func synthOutcome(id, pkg, mutator string, status Status, oracle string, annotated bool) *Outcome {
	o := &Outcome{
		Mutant: &Mutant{ID: id, Pkg: pkg, Mutator: mutator, Variant: "v"},
		Status: status,
		Oracle: oracle,
	}
	if annotated {
		o.Annotated = true
		o.Justification = "equivalent: test-only"
	}
	return o
}

func synthReport() *Report {
	const core = "github.com/coyote-sim/coyote/internal/core"
	const mem = "github.com/coyote-sim/coyote/internal/mem"
	outs := []*Outcome{
		synthOutcome("a", core, "ror", StatusKilled, "lint", false),
		synthOutcome("b", core, "aor", StatusKilled, "tests", false),
		synthOutcome("c", mem, "ror", StatusSurvived, "", false),
		synthOutcome("d", mem, "timing", StatusSurvived, "", true),
		synthOutcome("e", core, "stmtdel", StatusUncompilable, "", false),
	}
	return BuildReport(outs, 100, 5, 1)
}

func TestBuildReport(t *testing.T) {
	r := synthReport()
	if r.Pool != 100 || r.Sampled != 5 || r.Budget != 5 || r.Seed != 1 {
		t.Fatalf("header fields: %+v", r)
	}
	if r.Scored != 4 || r.Killed != 2 || r.Survived != 2 || r.Discarded != 1 {
		t.Fatalf("tallies: scored=%d killed=%d survived=%d discarded=%d",
			r.Scored, r.Killed, r.Survived, r.Discarded)
	}
	if r.Annotated != 1 || r.Unannotated != 1 {
		t.Fatalf("triage split: annotated=%d unannotated=%d", r.Annotated, r.Unannotated)
	}
	// Score excludes the triaged survivor from the denominator: 2/(2+1).
	if want := 2.0 / 3.0; r.Score < want-1e-9 || r.Score > want+1e-9 {
		t.Fatalf("score = %v, want %v", r.Score, want)
	}
	if len(r.ByOracle) != len(OracleNames) {
		t.Fatalf("ByOracle has %d rows", len(r.ByOracle))
	}
	kills := map[string]int{}
	for _, row := range r.ByOracle {
		kills[row.Oracle] = row.Kills
	}
	if kills["lint"] != 1 || kills["tests"] != 1 || kills["build"] != 0 {
		t.Fatalf("oracle kills: %v", kills)
	}
	if len(r.ByPackage) != 2 || r.ByPackage[0].Pkg != "internal/core" || r.ByPackage[1].Pkg != "internal/mem" {
		t.Fatalf("package rows: %+v", r.ByPackage)
	}
	core := r.ByPackage[0]
	if core.Scored != 2 || core.Killed != 2 || core.Kills["lint"] != 1 || core.Kills["tests"] != 1 {
		t.Fatalf("core row: %+v", core)
	}
	// ByMutator follows catalog order and omits mutators with no scored
	// mutants (the uncompilable stmtdel is discarded, not scored).
	var mutators []string
	for _, row := range r.ByMutator {
		mutators = append(mutators, row.Mutator)
	}
	if strings.Join(mutators, ",") != "aor,ror,timing" {
		t.Fatalf("ByMutator order: %v", mutators)
	}
	if r.ExitStatus() != 1 {
		t.Fatal("an unannotated survivor must exit 1")
	}
	survivors := r.Survivors()
	if len(survivors) != 2 || survivors[0].Annotated || !survivors[1].Annotated {
		t.Fatalf("survivor ordering (unannotated first): %+v", survivors)
	}
}

func TestReportCleanExit(t *testing.T) {
	outs := []*Outcome{
		synthOutcome("a", "github.com/coyote-sim/coyote/internal/core", "ror", StatusKilled, "build", false),
		synthOutcome("d", "github.com/coyote-sim/coyote/internal/mem", "timing", StatusSurvived, "", true),
	}
	if r := BuildReport(outs, 2, 0, 1); r.ExitStatus() != 0 {
		t.Fatal("triaged-only survivors must exit 0")
	}
}

func TestReportJSONDeterministic(t *testing.T) {
	a, err := synthReport().JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := synthReport().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two identically-built reports serialize differently")
	}
	if d := Diff(synthReport(), synthReport()); d != "" {
		t.Fatalf("Diff of equal reports = %q", d)
	}
	changed := synthReport()
	changed.Seed = 2
	if d := Diff(synthReport(), changed); d == "" || !strings.Contains(d, "line") {
		t.Fatalf("Diff of unequal reports = %q", d)
	}
}

func TestWriteTable(t *testing.T) {
	var buf bytes.Buffer
	synthReport().WriteTable(&buf)
	out := buf.String()
	for _, want := range []string{
		"mutation score 66.7%",
		"internal/core",
		"TOTAL",
		"UNANNOTATED",
		"triaged: equivalent: test-only",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}
