// Package mut is Coyote's mutation-testing engine: it measures — and CI
// enforces — the kill power of the oracle stack that the repo's whole
// value proposition rests on. Bit-identical determinism is what makes
// the result cache sound, and that determinism is guarded by layers of
// oracles: the build itself, go vet, the coyotelint static suite
// (including the interprocedural keytaint/specwrite/globalmut lanes),
// the unit tests, the golden determinism traces, and the coyotesan
// runtime sanitizer. Mutation testing asks the only question that
// validates such a stack: if the simulator's source were wrong in this
// specific, plausible way, WHICH layer would catch it — and would any?
//
// The engine applies a typed catalog of source mutators (mutators.go)
// to the simulator packages, type-checks every candidate mutant through
// the lint loader's overlay (uncompilable mutants are discarded, not
// counted — they prove nothing about the oracles), and adjudicates each
// survivor of the gate against an ordered oracle cascade:
//
//	build → vet → lint → tests → golden → san
//
// The first layer that fails the mutant "kills" it, and the per-mutant
// attribution aggregates into a kill matrix: packages × oracle layers.
// A mutant no layer kills is a SURVIVOR — a concrete, compilable,
// semantically distinct edit to the simulator that the entire oracle
// stack would merge silently. Survivors must be triaged: either a test
// is owed, or the site carries a //coyote:mut-survivor <justification>
// directive arguing the mutant is equivalent or out of scope (the same
// justification discipline as every other //coyote: directive).
//
// Three pieces of the repo's own infrastructure make this fast enough
// to run in CI:
//
//   - the lint loader (internal/lint.Loader) resolves `go list` once and
//     re-type-checks only the mutated package per candidate;
//   - the flow call graph (internal/lint/flow.CallGraph) answers "which
//     test functions can reach the mutated function?" so the tests stage
//     runs a targeted -run subset when static reachability finds one,
//     falling back to every dependent package's tests when it cannot
//     (dispatch tables and interfaces make static reachability an
//     under-approximation — see flow.CallGraph);
//   - verdicts are memoized in a content-addressed store (the same
//     checksummed, quarantine-on-corruption BlobStore the result cache
//     uses), keyed by mutant content and oracle-set fingerprint, so
//     re-runs only pay for mutants on changed code.
//
// The seed-sampled budget mode (-budget N -seed S) gives CI a
// reproducible smoke lane; `make mut` runs the full catalog.
package mut

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"go/token"
	"path/filepath"
	"strings"
)

// TargetPackages lists the import-path suffixes of the packages whose
// sources are eligible for mutation: the simulator proper plus the
// result cache whose soundness rides on it. Harness packages (kernels,
// asm, trace, lint itself, cmd/…) are out of scope — their bugs do not
// silently corrupt simulation results.
var TargetPackages = []string{
	"internal/core",
	"internal/cpu",
	"internal/cache",
	"internal/uncore",
	"internal/evsim",
	"internal/mem",
	"internal/rcache",
}

// IsTargetPackage reports whether importPath is eligible for mutation.
func IsTargetPackage(importPath string) bool {
	for _, s := range TargetPackages {
		if importPath == s || strings.HasSuffix(importPath, "/"+s) {
			return true
		}
	}
	return false
}

// Site is one mutation opportunity discovered in a source file: a byte
// range of the original file and its replacement text.
type Site struct {
	Mutator string    // catalog mutator that produced it
	Variant string    // human-readable edit, e.g. "`+` -> `-`"
	Pos     token.Pos // position in the enumerating program's FileSet
	Start   int       // byte offset of the replaced range
	End     int       // byte offset one past the replaced range
	Repl    string    // replacement text (may be empty or an insertion)
}

// Mutant is one applied mutation: the full original and mutated contents
// of a single file.
type Mutant struct {
	ID      string // stable identifier: relfile:line:col:mutator:variant-slug
	Pkg     string // import path of the mutated package
	File    string // absolute path of the mutated file
	RelFile string // module-relative path for display
	Line    int
	Col     int
	Pos     token.Pos // position in the engine's base program FileSet
	Mutator string
	Variant string
	Orig    []byte // original file contents
	Content []byte // mutated file contents
}

// apply splices a site into src, returning the mutated file contents.
func (s Site) apply(src []byte) []byte {
	out := make([]byte, 0, len(src)+len(s.Repl))
	out = append(out, src[:s.Start]...)
	out = append(out, s.Repl...)
	out = append(out, src[s.End:]...)
	return out
}

// blank returns a replacement that erases src[start:end] while keeping
// every newline, so the mutated file has identical line numbering to the
// original — statement deletion reads naturally in diffs and reports.
func blank(src []byte, start, end int) string {
	b := make([]byte, end-start)
	for i := range b {
		if src[start+i] == '\n' {
			b[i] = '\n'
		} else {
			b[i] = ' '
		}
	}
	return string(b)
}

// slug compresses a variant description into an identifier-safe token
// for mutant IDs.
func slug(variant string) string {
	var b strings.Builder
	for _, r := range variant {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == '<':
			b.WriteString("lt")
		case r == '>':
			b.WriteString("gt")
		case r == '=':
			b.WriteString("eq")
		case r == '!':
			b.WriteString("not")
		case r == '+':
			b.WriteString("plus")
		case r == '-':
			b.WriteString("minus")
		case r == '*':
			b.WriteString("mul")
		case r == '/':
			b.WriteString("div")
		case r == '%':
			b.WriteString("mod")
		case r == '&':
			b.WriteString("and")
		case r == '|':
			b.WriteString("or")
		}
	}
	s := b.String()
	if len(s) > 24 {
		s = s[:24]
	}
	if s == "" {
		s = "x"
	}
	return s
}

// hashBytes returns the hex SHA-256 of b.
func hashBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// relTo renders path relative to dir when possible, for stable IDs and
// readable reports.
func relTo(dir, path string) string {
	if rel, err := filepath.Rel(dir, path); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(path)
}

// mutantID builds the canonical mutant identifier.
func mutantID(relFile string, line, col int, mutator, variant string) string {
	return fmt.Sprintf("%s:%d:%d:%s:%s", relFile, line, col, mutator, slug(variant))
}
