package mut

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// PinnedMutant is one entry of the pinned regression corpus
// (testdata/pinned/*.json): a seeded fault with a CONTRACT — the exact
// oracle layer that must kill it, and nothing earlier. These migrate the
// repo's historical hand-rolled mutation tests (the lint suite's
// keytaint/specwrite/globalmut seeded mutants, the PR 4 runtime san
// mutations) onto the engine: each one pins that a whole oracle layer
// still pulls its weight, because each is invisible to every layer before
// its own.
type PinnedMutant struct {
	Name string `json:"name"` // corpus identifier
	Doc  string `json:"doc"`  // what fault this seeds and why the layer owns it
	File string `json:"file"` // module-relative source file
	// Old must occur exactly once in File; New replaces it. Uniqueness is
	// enforced so the corpus fails loudly when the source drifts instead
	// of silently mutating the wrong site.
	Old string `json:"old"`
	New string `json:"new"`
	// Layer is the cascade stage that must kill the mutant; every earlier
	// stage must pass it.
	Layer string `json:"layer"`
	// Detail, when non-empty, is a substring the kill detail must contain
	// (e.g. the san violation message) — pins not just THAT the layer
	// kills but WHY.
	Detail string `json:"detail,omitempty"`
}

// LoadPinned reads every *.json corpus file under dir, sorted by file
// name.
func LoadPinned(dir string) ([]PinnedMutant, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var out []PinnedMutant
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		var batch []PinnedMutant
		if err := json.Unmarshal(data, &batch); err != nil {
			return nil, fmt.Errorf("mut: parsing pinned corpus %s: %w", name, err)
		}
		for _, p := range batch {
			if p.Name == "" || p.File == "" || p.Old == "" || p.Layer == "" {
				return nil, fmt.Errorf("mut: pinned corpus %s: entry missing name/file/old/layer", name)
			}
			if !containsStr(OracleNames, p.Layer) {
				return nil, fmt.Errorf("mut: pinned corpus %s: %s: unknown layer %q", name, p.Name, p.Layer)
			}
			out = append(out, p)
		}
	}
	return out, nil
}

// Build materializes the pinned mutant against the current tree through
// engine e. The Old snippet must occur exactly once.
func (p PinnedMutant) Build(e *Engine) (*Mutant, error) {
	abs := filepath.Join(e.Dir, filepath.FromSlash(p.File))
	src, err := e.src(abs)
	if err != nil {
		return nil, fmt.Errorf("mut: pinned %s: %w", p.Name, err)
	}
	first := strings.Index(string(src), p.Old)
	if first < 0 {
		return nil, fmt.Errorf("mut: pinned %s: snippet not found in %s (source drifted — re-pin it)", p.Name, p.File)
	}
	if strings.Index(string(src[first+1:]), p.Old) >= 0 {
		return nil, fmt.Errorf("mut: pinned %s: snippet occurs more than once in %s", p.Name, p.File)
	}
	site := Site{Mutator: "pinned", Variant: p.Name, Start: first, End: first + len(p.Old), Repl: p.New}
	content := site.apply(src)
	line, col := offsetToLineCol(src, first)
	m := &Mutant{
		ID:      mutantID(p.File, line, col, "pinned", p.Name),
		File:    abs,
		RelFile: p.File,
		Line:    line,
		Col:     col,
		Mutator: "pinned",
		Variant: p.Name,
		Orig:    src,
		Content: content,
	}
	// Resolve the owning package (and the site's token.Pos in the base
	// program, which targeted test selection needs).
	for _, pkg := range e.Base.Packages {
		for i, name := range pkg.Filenames {
			if name != abs {
				continue
			}
			m.Pkg = pkg.ImportPath
			m.Pos = posAt(e, pkg.Files[i].Pos(), first)
			return m, nil
		}
	}
	return nil, fmt.Errorf("mut: pinned %s: %s is not in a loaded package", p.Name, p.File)
}

// offsetToLineCol converts a byte offset to 1-based line/column.
func offsetToLineCol(src []byte, off int) (line, col int) {
	line, col = 1, 1
	for _, b := range src[:off] {
		if b == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return line, col
}

// posAt maps a byte offset in a file to the base FileSet's token.Pos.
func posAt(e *Engine, filePos token.Pos, off int) token.Pos {
	tf := e.Base.Fset.File(filePos)
	if tf == nil || off >= tf.Size() {
		return filePos
	}
	return tf.Pos(off)
}

// AdjudicatePinned runs one pinned mutant through the cascade and checks
// its contract. It returns an error describing any violation: gate
// rejection, survival, a kill by the wrong (earlier or later) layer, or a
// kill detail that doesn't carry the pinned substring.
func AdjudicatePinned(e *Engine, orc *Oracles, p PinnedMutant, logf func(string, ...any)) error {
	m, err := p.Build(e)
	if err != nil {
		return err
	}
	ok, detail, err := e.Gate(m)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("pinned %s: does not compile: %s", p.Name, detail)
	}
	oracle, detail, killed, err := orc.Adjudicate(m, logf)
	if err != nil {
		return err
	}
	if !killed {
		return fmt.Errorf("pinned %s: SURVIVED the whole cascade (the %s layer lost its kill)", p.Name, p.Layer)
	}
	if oracle != p.Layer {
		return fmt.Errorf("pinned %s: killed by %q, pinned to %q (detail: %s)", p.Name, oracle, p.Layer, detail)
	}
	if p.Detail != "" && !strings.Contains(detail, p.Detail) {
		return fmt.Errorf("pinned %s: kill detail %q does not contain pinned %q", p.Name, detail, p.Detail)
	}
	return nil
}
