package mut

import (
	"bytes"
	"testing"
	"time"
)

const fixturePkg = "github.com/coyote-sim/coyote/internal/mut/fixture"

func TestCatalogNames(t *testing.T) {
	names := CatalogNames()
	if len(names) == 0 {
		t.Fatal("empty catalog")
	}
	seen := map[string]int{}
	for i, n := range names {
		if _, dup := seen[n]; dup {
			t.Fatalf("duplicate mutator name %q", n)
		}
		seen[n] = i
	}
	// timing must precede offbyone: their +1 nudges on the same literal
	// produce identical file contents, and content dedup keeps the
	// EARLIER catalog entry — the specific timing label must win.
	if seen["timing"] > seen["offbyone"] {
		t.Fatalf("timing (%d) must precede offbyone (%d) in the catalog", seen["timing"], seen["offbyone"])
	}
}

// TestCatalogOnFixture is the catalog meta-test: every mutator, aimed at
// the fixture package, must produce only mutants that (a) textually
// differ from the original, (b) pass the typecheck gate, and (c) are
// killed by the fixture's own test suite. A survivor here is an
// EQUIVALENT MUTANT — a catalog bug by construction, because fixture.go
// and fixture_test.go are written as a closed pair in which every edit
// is observable. Every catalog entry must also fire at least once.
func TestCatalogOnFixture(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns one go test per fixture mutant")
	}
	e := testEngine(t)
	muts, err := e.EnumerateIn(fixturePkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(muts) < 40 {
		t.Fatalf("only %d mutants enumerated on the fixture — the catalog or the fixture shrank", len(muts))
	}
	byMutator := map[string]int{}
	for _, m := range muts {
		byMutator[m.Mutator]++
	}
	for _, name := range CatalogNames() {
		if byMutator[name] == 0 {
			t.Errorf("mutator %s produces no mutants on the fixture — extend fixture.go", name)
		}
	}
	orc := NewOracles(e)
	// The fixture suite finishes in well under a second; the only mutants
	// that need the deadline are the ones that hang (a deleted loop
	// increment), and those should fail fast.
	orc.TestTimeout = 20 * time.Second
	for _, m := range muts {
		m := m
		t.Run(m.ID, func(t *testing.T) {
			if bytes.Equal(m.Orig, m.Content) {
				t.Fatal("mutant is textually identical to the original")
			}
			ok, detail, err := e.Gate(m)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("catalog produced an uncompilable mutant (%q): %s", m.Variant, detail)
			}
			killed, detail := fixtureOracle(t, orc, m)
			if !killed {
				t.Fatalf("EQUIVALENT MUTANT: %q survived the fixture suite — fixture.go and fixture_test.go must kill every catalog edit", m.Variant)
			}
			t.Logf("killed: %s", detail)
		})
	}
}

// fixtureOracle adjudicates one fixture mutant with the fixture
// package's own tests as the single oracle layer.
func fixtureOracle(t *testing.T, orc *Oracles, m *Mutant) (bool, string) {
	t.Helper()
	ov, cleanup, err := orc.writeOverlay(m)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	out, failed, err := orc.runGo(orc.TestTimeout,
		"test", "-overlay", ov, "-count=1", "./internal/mut/fixture")
	if err != nil {
		t.Fatalf("go test: %v\n%s", err, out)
	}
	return failed, extractDetail(out)
}
