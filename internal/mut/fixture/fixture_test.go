package fixture

import "testing"

// The assertions below are chosen so that every catalog mutant on
// fixture.go fails at least one of them — boundary cases sit exactly on
// each comparison's equality point, zero-value returns are always
// distinguishable, and every statement's side effect is observed. When a
// new mutator lands in the catalog, extend fixture.go AND this file
// together; the meta-test in internal/mut fails loudly otherwise.

func TestStep(t *testing.T) {
	if got := Step(10); got != 14 {
		t.Fatalf("Step(10) = %d, want 14", got)
	}
}

func TestGrade(t *testing.T) {
	cases := []struct{ v, lo, hi, want int }{
		{0, 2, 8, -1}, // below
		{2, 2, 8, 0},  // exactly lo (boundary)
		{5, 2, 8, 0},  // inside
		{8, 2, 8, 0},  // exactly hi (boundary)
		{9, 2, 8, 1},  // above
	}
	for _, c := range cases {
		if got := Grade(c.v, c.lo, c.hi); got != c.want {
			t.Fatalf("Grade(%d,%d,%d) = %d, want %d", c.v, c.lo, c.hi, got, c.want)
		}
	}
}

func TestIndex(t *testing.T) {
	if got := Index(3, 2); got != 14 {
		t.Fatalf("Index(3,2) = %d, want 14", got)
	}
}

func TestWrapAdvance(t *testing.T) {
	if got := WrapAdvance(2, 3, 4); got != 1 {
		t.Fatalf("WrapAdvance(2,3,4) = %d, want 1", got)
	}
}

func TestMeanLatency(t *testing.T) {
	if got := MeanLatency(12, 3); got != 4 {
		t.Fatalf("MeanLatency(12,3) = %d, want 4", got)
	}
}

func TestMask(t *testing.T) {
	if got := Mask(0xAB, 4, 4); got != 0xA {
		t.Fatalf("Mask(0xAB,4,4) = %#x, want 0xa", got)
	}
	// tag with bits above the mask width, zero shift: distinguishes a
	// too-wide (or all-ones) mask from the correct one.
	if got := Mask(0x1B, 0, 4); got != 0xB {
		t.Fatalf("Mask(0x1B,0,4) = %#x, want 0xb", got)
	}
}

func TestCombine(t *testing.T) {
	if got := Combine(0b0101, 0b0011); got != 0b0111 {
		t.Fatalf("Combine = %#b, want 0b111", got)
	}
}

func TestHitCount(t *testing.T) {
	if got := HitCount([]uint{1, 2, 2}, 2); got != 2 {
		t.Fatalf("HitCount = %d, want 2", got)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Record(5)
	if c.Events != 1 || c.Total != 5 {
		t.Fatalf("after Record(5): %+v", c)
	}
	c.Reset()
	if c.Events != 0 || c.Total != 0 {
		t.Fatalf("after Reset: %+v", c)
	}
}

func TestCounterDrain(t *testing.T) {
	var c Counter
	if got := c.Drain([]int{2, 3}); got != 5 {
		t.Fatalf("Drain = %d, want 5", got)
	}
	if c.Events != 0 || c.Total != 0 {
		t.Fatalf("after Drain: %+v", c)
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.HitLatency != 2 || cfg.MissPenalty != 8 {
		t.Fatalf("DefaultConfig = %+v", cfg)
	}
}

func TestAccessTime(t *testing.T) {
	cfg := DefaultConfig()
	if got := AccessTime(cfg, true); got != 2 {
		t.Fatalf("hit time = %d, want 2", got)
	}
	if got := AccessTime(cfg, false); got != 8 {
		t.Fatalf("miss time = %d, want 8", got)
	}
}

func TestSchedulerRun(t *testing.T) {
	var s Scheduler
	for _, c := range []int{6, 7, 10, 11} {
		s.ScheduleAt(c)
	}
	// 10 sits exactly on the budget: kills both the <= boundary swap and
	// the budget nudge.
	if got := s.Run(); got != 3 {
		t.Fatalf("Run = %d, want 3", got)
	}
}

func TestSchedulerPrime(t *testing.T) {
	var s Scheduler
	s.Prime()
	if got := s.PendingBefore(7); got != 1 {
		t.Fatalf("PendingBefore(7) = %d, want 1", got)
	}
	if got := s.PendingBefore(6); got != 0 {
		t.Fatalf("PendingBefore(6) = %d, want 0", got)
	}
}
