// Package fixture is the mutator catalog's meta-test target: a miniature
// simulator-shaped package written so that EVERY mutant the catalog can
// produce here is (a) compilable and (b) killed by this package's own
// tests. An equivalent mutant on the fixture is a bug — either the
// fixture drifted (a comparison whose strictness is value-invisible, a
// dead statement) or a mutator started producing no-op edits. The
// catalog meta-test in internal/mut enforces exactly that contract.
//
// Every construct the catalog targets appears at least once: arithmetic,
// bitwise and shift operators, relational and boundary comparisons,
// branch conditions, timing-flavored constants (names the timing mutator
// recognizes: CycleDelay, HitLatency, MissPenalty, cycleBudget) and a
// Schedule* call, deletable statements of all three kinds, and functions
// of several result shapes for early-return injection.
package fixture

// CycleDelay is the fixture's step cost (a timing-mutator site).
const CycleDelay = 4

// Ways is the fixture's associativity (an off-by-one site, not timing).
const Ways = 4

// Step advances simulated time by CycleDelay.
func Step(t int) int {
	return t + CycleDelay
}

// Grade buckets v against [lo, hi]: -1 below, 1 above, 0 inside.
func Grade(v, lo, hi int) int {
	if v < lo {
		return -1
	}
	if v > hi {
		return 1
	}
	return 0
}

// Index flattens (set, way) into a slot number.
func Index(set, way int) int {
	return set*Ways + way
}

// WrapAdvance advances a ring cursor by step, wrapping at size.
func WrapAdvance(cur, step, size int) int {
	return (cur + step) % size
}

// MeanLatency averages total cycles over n events (n > 0).
func MeanLatency(totalCycles, n int) int {
	return totalCycles / n
}

// Mask extracts width low bits of tag after shifting.
func Mask(tag, shift, width uint) uint {
	return (tag >> shift) & (1<<width - 1)
}

// Combine merges two flag words.
func Combine(a, b uint) uint {
	return a | b
}

// HitCount counts tags equal to want.
func HitCount(tags []uint, want uint) int {
	n := 0
	for _, t := range tags {
		if t == want {
			n++
		}
	}
	return n
}

// Counter accumulates simulated events.
type Counter struct {
	Events int
	Total  int
}

// Record adds one event of the given cost.
func (c *Counter) Record(cost int) {
	c.Events++
	c.Total += cost
}

// Reset zeroes the counter.
func (c *Counter) Reset() {
	c.Total = 0
	c.Events = 0
}

// Drain records each cost, resets, and returns the drained total. The
// indexed loop is deliberate: statement deletion must stay compilable
// (a range variable orphaned by deleting its only use would be rejected
// by the typecheck gate instead of scored), and deleting the i++ turns
// the loop into a hang — exercising the oracle's timeout-kill path.
func (c *Counter) Drain(costs []int) int {
	for i := 0; i < len(costs); i++ {
		c.Record(costs[i])
	}
	total := c.Total
	c.Reset()
	return total
}

// Config parameterizes the fixture's timing.
type Config struct {
	HitLatency  int
	MissPenalty int
}

// DefaultConfig is the baseline timing (two key-value timing sites).
func DefaultConfig() Config {
	return Config{HitLatency: 2, MissPenalty: 8}
}

// AccessTime returns the simulated access time under cfg.
func AccessTime(cfg Config, hit bool) int {
	if hit {
		return cfg.HitLatency
	}
	return cfg.MissPenalty
}

// Scheduler queues fixture events by absolute cycle.
type Scheduler struct {
	fires       []int
	cycleBudget int
}

// ScheduleAt queues an event at the given cycle.
func (s *Scheduler) ScheduleAt(cycle int) {
	s.fires = append(s.fires, cycle)
}

// Prime queues the fixture's standard warm-up event (a Schedule* timing
// site: the literal delay argument).
func (s *Scheduler) Prime() {
	s.ScheduleAt(6)
}

// Run counts queued events that fire within the fixed cycle budget.
func (s *Scheduler) Run() int {
	s.cycleBudget = 10
	n := 0
	for _, f := range s.fires {
		if f <= s.cycleBudget {
			n++
		}
	}
	return n
}

// PendingBefore counts queued events strictly before cycle.
func (s *Scheduler) PendingBefore(cycle int) int {
	n := 0
	for _, f := range s.fires {
		if f < cycle {
			n++
		}
	}
	return n
}
