package mut

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/coyote-sim/coyote/internal/lint"
	"github.com/coyote-sim/coyote/internal/lint/flow"
)

// Engine owns the one-time program analysis every mutant shares: a single
// `go list` resolution, one fully type-checked base program (tests
// included, so test functions appear in the call graph), the flow call
// graph for targeted test selection, and a per-package loader cache for
// the typecheck gate.
type Engine struct {
	Dir  string // module root the go tool runs in
	Base *lint.Program

	infos   []lint.PackageInfo          // `go list ./...` view, listing order
	infoBy  map[string]lint.PackageInfo // by import path
	graph   *flow.CallGraph             // lazily built
	gate    map[string]*lint.Loader     // per-package typecheck-gate loaders
	sources map[string][]byte           // original file contents by abs path
}

// NewEngine resolves and type-checks the module rooted at dir.
func NewEngine(dir string) (*Engine, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	loader, err := lint.NewLoader(abs, []string{"./..."}, lint.LoadOptions{IncludeTests: true})
	if err != nil {
		return nil, err
	}
	base, err := loader.Load(nil)
	if err != nil {
		return nil, fmt.Errorf("mut: type-checking baseline: %w", err)
	}
	e := &Engine{
		Dir:     abs,
		Base:    base,
		infos:   loader.Packages(),
		infoBy:  make(map[string]lint.PackageInfo),
		gate:    make(map[string]*lint.Loader),
		sources: make(map[string][]byte),
	}
	for _, pi := range e.infos {
		e.infoBy[pi.ImportPath] = pi
	}
	return e, nil
}

// Graph returns the base program's call graph, built on first use.
func (e *Engine) Graph() *flow.CallGraph {
	if e.graph == nil {
		e.graph = flow.NewCallGraph(e.Base.Flow())
	}
	return e.graph
}

// src returns (and caches) the original bytes of a source file.
func (e *Engine) src(path string) ([]byte, error) {
	if b, ok := e.sources[path]; ok {
		return b, nil
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	e.sources[path] = b
	return b, nil
}

// matchPattern reports whether a module-relative package directory is
// selected by a go-style pattern ("./internal/...", "./internal/cpu").
// Only the "./dir" and "./dir/..." forms are supported — exactly what the
// coyotemut command line takes.
func matchPattern(relDir, pattern string) bool {
	p := strings.TrimPrefix(filepath.ToSlash(pattern), "./")
	if p == "..." || p == "" || p == "." {
		return true
	}
	if prefix, ok := strings.CutSuffix(p, "..."); ok {
		prefix = strings.TrimSuffix(prefix, "/")
		return relDir == prefix || strings.HasPrefix(relDir, prefix+"/")
	}
	return relDir == p
}

func matchAny(relDir string, patterns []string) bool {
	if len(patterns) == 0 {
		return true
	}
	for _, p := range patterns {
		if matchPattern(relDir, p) {
			return true
		}
	}
	return false
}

// Enumerate discovers every mutant in the target packages selected by
// patterns (nil = all targets), in canonical order: by file, then source
// position, then catalog order. Mutants whose mutated file contents
// collide with an earlier mutant's (the same edit reached two ways) are
// dropped — the earlier catalog entry keeps the site.
func (e *Engine) Enumerate(patterns []string) ([]*Mutant, error) {
	return e.enumerate(func(pkg *lint.Package) bool {
		return IsTargetPackage(pkg.ImportPath) && matchAny(relTo(e.Dir, pkgDir(pkg)), patterns)
	})
}

// EnumerateIn enumerates mutants in the exact packages given by import
// path, bypassing the TargetPackages filter — the mutator catalog's
// meta-test uses this to aim the full catalog at its fixture package.
func (e *Engine) EnumerateIn(importPaths ...string) ([]*Mutant, error) {
	return e.enumerate(func(pkg *lint.Package) bool {
		return containsStr(importPaths, pkg.ImportPath)
	})
}

func (e *Engine) enumerate(want func(*lint.Package) bool) ([]*Mutant, error) {
	catalogRank := map[string]int{}
	for i, m := range Catalog() {
		catalogRank[m.Name] = i
	}
	var mutants []*Mutant
	seen := map[string]bool{} // file \x00 content-hash
	for _, pkg := range e.Base.Packages {
		if !want(pkg) {
			continue
		}
		for i, file := range pkg.Files {
			name := pkg.Filenames[i]
			if strings.HasSuffix(name, "_test.go") {
				continue
			}
			src, err := e.src(name)
			if err != nil {
				return nil, fmt.Errorf("mut: %w", err)
			}
			ctx := &FileCtx{Pkg: pkg, File: file, Filename: name, Src: src, Fset: e.Base.Fset}
			for _, mutator := range Catalog() {
				for _, site := range mutator.Sites(ctx) {
					content := site.apply(src)
					key := name + "\x00" + hashBytes(content)
					if seen[key] {
						continue
					}
					seen[key] = true
					pos := e.Base.Fset.Position(site.Pos)
					rel := relTo(e.Dir, name)
					mutants = append(mutants, &Mutant{
						ID:      mutantID(rel, pos.Line, pos.Column, site.Mutator, site.Variant),
						Pkg:     pkg.ImportPath,
						File:    name,
						RelFile: rel,
						Line:    pos.Line,
						Col:     pos.Column,
						Pos:     site.Pos,
						Mutator: site.Mutator,
						Variant: site.Variant,
						Orig:    src,
						Content: content,
					})
				}
			}
		}
	}
	sort.SliceStable(mutants, func(i, j int) bool {
		a, b := mutants[i], mutants[j]
		if a.RelFile != b.RelFile {
			return a.RelFile < b.RelFile
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if catalogRank[a.Mutator] != catalogRank[b.Mutator] {
			return catalogRank[a.Mutator] < catalogRank[b.Mutator]
		}
		return a.Variant < b.Variant
	})
	return mutants, nil
}

// pkgDir returns the directory of a loaded package (from its first file).
func pkgDir(pkg *lint.Package) string {
	if len(pkg.Filenames) > 0 {
		return filepath.Dir(pkg.Filenames[0])
	}
	return ""
}

// Sample deterministically selects budget mutants from the canonical
// enumeration using a seeded permutation, then restores canonical order.
// budget <= 0 or >= len means "all".
func Sample(mutants []*Mutant, budget int, seed int64) []*Mutant {
	if budget <= 0 || budget >= len(mutants) {
		return mutants
	}
	r := rand.New(rand.NewSource(seed))
	idx := r.Perm(len(mutants))[:budget]
	sort.Ints(idx)
	out := make([]*Mutant, 0, budget)
	for _, i := range idx {
		out = append(out, mutants[i])
	}
	return out
}

// gateLoader returns (and caches) the single-package loader used to
// type-check candidate mutants of one package. Tests are included so a
// mutant that would break the package's own test compilation is also
// caught here rather than miscounted downstream.
func (e *Engine) gateLoader(importPath string) (*lint.Loader, error) {
	if l, ok := e.gate[importPath]; ok {
		return l, nil
	}
	l, err := lint.NewLoader(e.Dir, []string{importPath}, lint.LoadOptions{IncludeTests: true})
	if err != nil {
		return nil, err
	}
	e.gate[importPath] = l
	return l, nil
}

// Gate type-checks a mutant in-process through the lint loader's overlay.
// A gate failure means the mutant is uncompilable: it is discarded from
// the kill statistics (an uncompilable edit proves nothing about the
// oracles — the compiler is not one of the layers under measurement).
func (e *Engine) Gate(m *Mutant) (ok bool, detail string, err error) {
	l, err := e.gateLoader(m.Pkg)
	if err != nil {
		return false, "", err
	}
	if _, terr := l.Load(map[string][]byte{m.File: m.Content}); terr != nil {
		return false, firstLine(terr.Error()), nil
	}
	return true, "", nil
}

// Status is a mutant's adjudicated fate.
type Status string

const (
	// StatusKilled: some oracle layer failed on the mutant.
	StatusKilled Status = "killed"
	// StatusSurvived: every layer passed — the oracle stack would merge
	// this edit silently.
	StatusSurvived Status = "survived"
	// StatusUncompilable: the typecheck gate rejected the mutant; it is
	// excluded from the mutation score.
	StatusUncompilable Status = "uncompilable"
)

// Outcome is one mutant's adjudication.
type Outcome struct {
	Mutant *Mutant
	Status Status
	Oracle string // cascade layer that killed ("" unless killed)
	Detail string // deterministic kill/compile-failure summary
	Cached bool   // verdict came from the cache (not part of the verdict)

	// Survivor triage, looked up fresh every run (annotations must be
	// editable without invalidating cached verdicts).
	Annotated     bool
	Justification string
}

// RunOptions tunes an adjudication run.
type RunOptions struct {
	Cache    *VerdictCache                    // nil disables memoization
	Progress func(i, n int, o *Outcome)       // called after each mutant
	Log      func(format string, args ...any) // verbose diagnostics
}

// Run adjudicates every mutant through the oracle cascade, in order,
// consulting and populating the verdict cache.
func (e *Engine) Run(mutants []*Mutant, orc *Oracles, opts RunOptions) ([]*Outcome, error) {
	fp, err := orc.Fingerprint()
	if err != nil {
		return nil, err
	}
	outs := make([]*Outcome, 0, len(mutants))
	for i, m := range mutants {
		o, err := e.runOne(m, orc, fp, opts)
		if err != nil {
			return nil, fmt.Errorf("mut: %s: %w", m.ID, err)
		}
		e.annotate(o)
		outs = append(outs, o)
		if opts.Progress != nil {
			opts.Progress(i+1, len(mutants), o)
		}
	}
	return outs, nil
}

func (e *Engine) runOne(m *Mutant, orc *Oracles, fingerprint string, opts RunOptions) (*Outcome, error) {
	key := VerdictKey(m, fingerprint)
	if opts.Cache != nil {
		if v, err := opts.Cache.Load(key); err == nil {
			return &Outcome{Mutant: m, Status: v.Status, Oracle: v.Oracle, Detail: v.Detail, Cached: true}, nil
		}
	}
	o := &Outcome{Mutant: m}
	ok, detail, err := e.Gate(m)
	if err != nil {
		return nil, err
	}
	if !ok {
		o.Status, o.Detail = StatusUncompilable, detail
	} else {
		oracle, detail, killed, err := orc.Adjudicate(m, opts.Log)
		if err != nil {
			return nil, err
		}
		if killed {
			o.Status, o.Oracle, o.Detail = StatusKilled, oracle, detail
		} else {
			o.Status = StatusSurvived
		}
	}
	if opts.Cache != nil {
		if err := opts.Cache.Store(key, o); err != nil && opts.Log != nil {
			opts.Log("verdict cache store failed: %v", err)
		}
	}
	return o, nil
}

// annotate resolves a survivor's //coyote:mut-survivor triage directive,
// if any, from the base program's directive index.
func (e *Engine) annotate(o *Outcome) {
	if o.Status != StatusSurvived {
		return
	}
	for _, pkg := range e.Base.Packages {
		if pkg.ImportPath != o.Mutant.Pkg {
			continue
		}
		if d := pkg.Directives.At(e.Base.Fset, o.Mutant.Pos, "mut-survivor"); d != nil {
			o.Annotated = true
			o.Justification = d.Reason
		}
		return
	}
}

// firstLine truncates s at its first newline.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
