package mut

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"github.com/coyote-sim/coyote/internal/rcache"
)

// VerdictSchema versions the verdict payload AND the key derivation.
// Bump on any change to either; old verdicts are then simply unreachable
// (different store root) rather than misread.
const VerdictSchema = 1

// verdictMagic is the on-disk header tag, distinct from the result
// cache's so a blob can never be mistaken across stores.
const verdictMagic = "coyotemut-verdict"

// VerdictCache memoizes mutant adjudications in the same checksummed,
// quarantine-on-corruption content-addressed store the result cache uses.
// A verdict is pure content-addressed data: the key covers the mutant
// (original + mutated file hashes) and the full oracle-set fingerprint,
// so a hit can only ever replay a verdict the current oracles would
// reproduce.
type VerdictCache struct {
	blobs *rcache.BlobStore
}

// OpenVerdictCache opens (creating if needed) a verdict store rooted at
// dir.
func OpenVerdictCache(dir string) (*VerdictCache, error) {
	blobs, err := rcache.OpenBlobStore(dir, verdictMagic, VerdictSchema)
	if err != nil {
		return nil, fmt.Errorf("mut: opening verdict cache: %w", err)
	}
	return &VerdictCache{blobs: blobs}, nil
}

// VerdictKey derives the cache key for one mutant under one oracle set.
func VerdictKey(m *Mutant, oracleFingerprint string) string {
	h := sha256.New()
	fmt.Fprintf(h, "coyotemut-key/v%d\n", VerdictSchema)
	fmt.Fprintf(h, "pkg %s\nfile %s\nmutator %s\nvariant %s\n", m.Pkg, m.RelFile, m.Mutator, m.Variant)
	fmt.Fprintf(h, "orig %s\nmutant %s\n", hashBytes(m.Orig), hashBytes(m.Content))
	fmt.Fprintf(h, "oracles %s\n", oracleFingerprint)
	return hex.EncodeToString(h.Sum(nil))
}

// Verdict is the cached adjudication payload.
type Verdict struct {
	Schema int    `json:"schema"`
	ID     string `json:"id"` // mutant ID at store time, for debugging
	Status Status `json:"status"`
	Oracle string `json:"oracle,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// Load returns the cached verdict for key, rcache.ErrMiss when absent,
// rcache.ErrCorrupt (after quarantining) when undecodable.
func (c *VerdictCache) Load(key string) (*Verdict, error) {
	payload, err := c.blobs.Load(key)
	if err != nil {
		return nil, err
	}
	var v Verdict
	if err := json.Unmarshal(payload, &v); err != nil {
		c.blobs.Quarantine(key)
		return nil, fmt.Errorf("%w: %v", rcache.ErrCorrupt, err)
	}
	if v.Schema != VerdictSchema || v.Status == "" {
		c.blobs.Quarantine(key)
		return nil, fmt.Errorf("%w: bad verdict payload", rcache.ErrCorrupt)
	}
	return &v, nil
}

// Store persists one outcome under key.
func (c *VerdictCache) Store(key string, o *Outcome) error {
	payload, err := json.Marshal(Verdict{
		Schema: VerdictSchema,
		ID:     o.Mutant.ID,
		Status: o.Status,
		Oracle: o.Oracle,
		Detail: o.Detail,
	})
	if err != nil {
		return err
	}
	return c.blobs.Store(key, payload)
}
