package mut

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

var (
	engineOnce sync.Once
	sharedEng  *Engine
	engineErr  error
)

// testEngine type-checks the real module once and shares the engine
// across every test in this package — NewEngine (a full `go list` plus
// whole-tree typecheck, tests included) is the expensive step, and the
// engine is read-only after construction.
func testEngine(t *testing.T) *Engine {
	t.Helper()
	engineOnce.Do(func() { sharedEng, engineErr = NewEngine("../..") })
	if engineErr != nil {
		t.Fatalf("NewEngine: %v", engineErr)
	}
	return sharedEng
}

func TestEnumerateDeterministic(t *testing.T) {
	e := testEngine(t)
	a, err := e.Enumerate(nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Enumerate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("enumeration over the simulator packages is empty")
	}
	if len(a) != len(b) {
		t.Fatalf("two enumerations disagree on size: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || hashBytes(a[i].Content) != hashBytes(b[i].Content) {
			t.Fatalf("enumeration diverges at index %d: %s vs %s", i, a[i].ID, b[i].ID)
		}
	}
	// Canonical order: by file, then position.
	for i := 1; i < len(a); i++ {
		p, q := a[i-1], a[i]
		if p.RelFile > q.RelFile || (p.RelFile == q.RelFile && p.Line > q.Line) {
			t.Fatalf("enumeration out of canonical order at %d: %s before %s", i, p.ID, q.ID)
		}
	}
	seenMutator := map[string]bool{}
	for _, m := range a {
		if !IsTargetPackage(m.Pkg) {
			t.Fatalf("mutant in non-target package: %s", m.ID)
		}
		if strings.HasSuffix(m.RelFile, "_test.go") {
			t.Fatalf("mutant in a test file: %s", m.ID)
		}
		seenMutator[m.Mutator] = true
	}
	for _, name := range CatalogNames() {
		if !seenMutator[name] {
			t.Errorf("mutator %s fires nowhere in the simulator tree", name)
		}
	}
}

func TestEnumeratePatternFilter(t *testing.T) {
	e := testEngine(t)
	all, err := e.Enumerate(nil)
	if err != nil {
		t.Fatal(err)
	}
	evsim, err := e.Enumerate([]string{"./internal/evsim"})
	if err != nil {
		t.Fatal(err)
	}
	if len(evsim) == 0 || len(evsim) >= len(all) {
		t.Fatalf("pattern filter broken: %d of %d mutants selected", len(evsim), len(all))
	}
	for _, m := range evsim {
		if !strings.HasPrefix(m.RelFile, "internal/evsim/") {
			t.Fatalf("pattern ./internal/evsim selected %s", m.ID)
		}
	}
}

func TestSampleDeterministic(t *testing.T) {
	pool := make([]*Mutant, 100)
	for i := range pool {
		pool[i] = &Mutant{ID: fmt.Sprintf("m%03d", i)}
	}
	a := Sample(pool, 10, 42)
	b := Sample(pool, 10, 42)
	if len(a) != 10 {
		t.Fatalf("budget 10 sampled %d", len(a))
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("same seed sampled different mutants at %d: %s vs %s", i, a[i].ID, b[i].ID)
		}
	}
	// Canonical order is preserved: the sample is a subsequence of pool.
	last := -1
	for _, m := range a {
		var idx int
		fmt.Sscanf(m.ID, "m%d", &idx)
		if idx <= last {
			t.Fatalf("sample not in canonical order: %v", a)
		}
		last = idx
	}
	c := Sample(pool, 10, 43)
	same := true
	for i := range a {
		if a[i].ID != c[i].ID {
			same = false
		}
	}
	if same {
		t.Error("seeds 42 and 43 selected the identical sample — seeding is ignored")
	}
	if got := Sample(pool, 0, 1); len(got) != len(pool) {
		t.Errorf("budget 0 must mean all, got %d", len(got))
	}
	if got := Sample(pool, 1000, 1); len(got) != len(pool) {
		t.Errorf("oversized budget must mean all, got %d", len(got))
	}
}

func TestGateRejectsUncompilable(t *testing.T) {
	e := testEngine(t)
	muts, err := e.Enumerate([]string{"./internal/evsim"})
	if err != nil {
		t.Fatal(err)
	}
	if len(muts) == 0 {
		t.Fatal("no evsim mutants to gate")
	}
	broken := *muts[0]
	broken.Content = []byte("package evsim\n\nfunc broken( {}\n")
	ok, detail, err := e.Gate(&broken)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("gate accepted a syntactically invalid file")
	}
	if detail == "" {
		t.Fatal("gate rejection carries no detail")
	}

	// The unmutated file must pass — the gate may only reject real
	// compile breakage, never the baseline.
	clean := *muts[0]
	clean.Content = clean.Orig
	ok, detail, err = e.Gate(&clean)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("gate rejected the original source: %s", detail)
	}
}
