package mut

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"github.com/coyote-sim/coyote/internal/lint"
)

// FileCtx is one source file presented to a mutator: the parsed AST, the
// type info of its package, and the raw bytes the byte offsets of Sites
// refer to.
type FileCtx struct {
	Pkg      *lint.Package
	File     *ast.File
	Filename string
	Src      []byte
	Fset     *token.FileSet
}

// offset converts a token.Pos inside this file to a byte offset in Src.
func (c *FileCtx) offset(p token.Pos) int { return c.Fset.Position(p).Offset }

// text returns the source text of a node.
func (c *FileCtx) text(n ast.Node) string {
	return string(c.Src[c.offset(n.Pos()):c.offset(n.End())])
}

// Mutator is one entry of the typed catalog.
type Mutator struct {
	Name string
	Doc  string
	// Sites enumerates every mutation opportunity in one file, in source
	// order. Each Site yields exactly one Mutant.
	Sites func(ctx *FileCtx) []Site
}

// Catalog returns the full mutator catalog in canonical order. The order
// matters twice: it fixes mutant enumeration (and therefore the seeded
// sample) and it resolves duplicate mutants — when two mutators produce
// byte-identical file contents (timing and offbyone often nudge the same
// literal), the earlier catalog entry keeps the mutant and the later
// duplicate is dropped, which is why the more specific timing class
// precedes the generic offbyone.
func Catalog() []*Mutator {
	return []*Mutator{
		AORMutator,
		RORMutator,
		BoundaryMutator,
		NegCondMutator,
		TimingMutator,
		OffByOneMutator,
		StmtDelMutator,
		EarlyRetMutator,
	}
}

// CatalogNames returns the catalog's mutator names in order.
func CatalogNames() []string {
	cat := Catalog()
	names := make([]string, len(cat))
	for i, m := range cat {
		names[i] = m.Name
	}
	return names
}

// opSite builds the Site replacing one operator token.
func opSite(ctx *FileCtx, name string, opPos token.Pos, from, to token.Token) Site {
	start := ctx.offset(opPos)
	return Site{
		Mutator: name,
		Variant: fmt.Sprintf("`%s` -> `%s`", from, to),
		Pos:     opPos,
		Start:   start,
		End:     start + len(from.String()),
		Repl:    to.String(),
	}
}

// isStringy reports whether expr has (possibly untyped) string type —
// the one case where `+` is not arithmetic.
func isStringy(info *types.Info, expr ast.Expr) bool {
	t := info.TypeOf(expr)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// AORMutator swaps arithmetic and bitwise operators with a fixed
// counterpart: the classic "wrong operator" fault class.
var AORMutator = &Mutator{
	Name: "aor",
	Doc:  "arithmetic/bitwise operator swap: + <-> -, * <-> /, % -> *, << <-> >>, & <-> |",
	Sites: func(ctx *FileCtx) []Site {
		swap := map[token.Token]token.Token{
			token.ADD: token.SUB,
			token.SUB: token.ADD,
			token.MUL: token.QUO,
			token.QUO: token.MUL,
			token.REM: token.MUL,
			token.SHL: token.SHR,
			token.SHR: token.SHL,
			token.AND: token.OR,
			token.OR:  token.AND,
		}
		var sites []Site
		ast.Inspect(ctx.File, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			to, ok := swap[be.Op]
			if !ok {
				return true
			}
			if be.Op == token.ADD && isStringy(ctx.Pkg.Info, be.X) {
				return true
			}
			sites = append(sites, opSite(ctx, "aor", be.OpPos, be.Op, to))
			return true
		})
		return sites
	},
}

// RORMutator flips relational operators to their logical opposite.
var RORMutator = &Mutator{
	Name: "ror",
	Doc:  "relational operator negation: == <-> !=, < <-> >, <= <-> >=",
	Sites: func(ctx *FileCtx) []Site {
		swap := map[token.Token]token.Token{
			token.EQL: token.NEQ,
			token.NEQ: token.EQL,
			token.LSS: token.GTR,
			token.GTR: token.LSS,
			token.LEQ: token.GEQ,
			token.GEQ: token.LEQ,
		}
		var sites []Site
		ast.Inspect(ctx.File, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			if to, ok := swap[be.Op]; ok {
				sites = append(sites, opSite(ctx, "ror", be.OpPos, be.Op, to))
			}
			return true
		})
		return sites
	},
}

// BoundaryMutator toggles strictness of ordering comparisons — the
// off-by-one of conditions. A suite that kills these proves its test
// vectors actually sit on the boundaries.
var BoundaryMutator = &Mutator{
	Name: "boundary",
	Doc:  "boundary swap: < <-> <=, > <-> >=",
	Sites: func(ctx *FileCtx) []Site {
		swap := map[token.Token]token.Token{
			token.LSS: token.LEQ,
			token.LEQ: token.LSS,
			token.GTR: token.GEQ,
			token.GEQ: token.GTR,
		}
		var sites []Site
		ast.Inspect(ctx.File, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			if to, ok := swap[be.Op]; ok {
				sites = append(sites, opSite(ctx, "boundary", be.OpPos, be.Op, to))
			}
			return true
		})
		return sites
	},
}

// NegCondMutator negates if-statement conditions.
var NegCondMutator = &Mutator{
	Name: "negcond",
	Doc:  "branch-condition negation: if cond -> if !(cond)",
	Sites: func(ctx *FileCtx) []Site {
		var sites []Site
		ast.Inspect(ctx.File, func(n ast.Node) bool {
			is, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			start, end := ctx.offset(is.Cond.Pos()), ctx.offset(is.Cond.End())
			sites = append(sites, Site{
				Mutator: "negcond",
				Variant: "negate condition",
				Pos:     is.Cond.Pos(),
				Start:   start,
				End:     end,
				Repl:    "!(" + string(ctx.Src[start:end]) + ")",
			})
			return true
		})
		return sites
	},
}

// timingName matches identifiers that parameterize simulated time: the
// constants the golden traces must be sensitive to.
var timingName = regexp.MustCompile(`(?i)(latenc|cycle|delay|penalt|quantum|hop)`)

// intLitValue extracts the exact constant value of an integer literal.
func intLitValue(info *types.Info, lit *ast.BasicLit) (int64, bool) {
	tv, ok := info.Types[lit]
	if !ok || tv.Value == nil {
		return 0, false
	}
	if tv.Value.Kind() != constant.Int {
		return 0, false
	}
	v, exact := constant.Int64Val(tv.Value)
	return v, exact
}

// litNudge builds a Site replacing an integer literal with value+delta,
// rendered in decimal.
func litNudge(ctx *FileCtx, name string, lit *ast.BasicLit, v, delta int64) Site {
	start, end := ctx.offset(lit.Pos()), ctx.offset(lit.End())
	sign := "+"
	if delta < 0 {
		sign = "-"
	}
	return Site{
		Mutator: name,
		Variant: fmt.Sprintf("%s %s 1 (-> %d)", lit.Value, sign, v+delta),
		Pos:     lit.Pos(),
		Start:   start,
		End:     end,
		Repl:    fmt.Sprintf("%d", v+delta),
	}
}

// TimingMutator is the simulator-specific class: it perturbs integer
// constants bound to timing-flavored names (latency, cycle, delay,
// penalty, quantum, hop) and literal first arguments of Schedule calls.
// Killing these proves the golden traces are sensitive to the timing
// model — the property the FireSim/silicon comparison literature shows
// simulators silently lose.
var TimingMutator = &Mutator{
	Name: "timing",
	Doc:  "timing nudge: +1 on cycle/latency-named integer constants and Schedule delays",
	Sites: func(ctx *FileCtx) []Site {
		var sites []Site
		add := func(lit *ast.BasicLit) {
			if lit == nil || lit.Kind != token.INT {
				return
			}
			if v, ok := intLitValue(ctx.Pkg.Info, lit); ok {
				sites = append(sites, litNudge(ctx, "timing", lit, v, 1))
			}
		}
		asLit := func(e ast.Expr) *ast.BasicLit {
			lit, _ := ast.Unparen(e).(*ast.BasicLit)
			return lit
		}
		ast.Inspect(ctx.File, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if timingName.MatchString(name.Name) && i < len(n.Values) {
						add(asLit(n.Values[i]))
					}
				}
			case *ast.KeyValueExpr:
				if id, ok := n.Key.(*ast.Ident); ok && timingName.MatchString(id.Name) {
					add(asLit(n.Value))
				}
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, lhs := range n.Lhs {
					name := ""
					switch l := ast.Unparen(lhs).(type) {
					case *ast.Ident:
						name = l.Name
					case *ast.SelectorExpr:
						name = l.Sel.Name
					}
					if name != "" && timingName.MatchString(name) {
						add(asLit(n.Rhs[i]))
					}
				}
			case *ast.CallExpr:
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok &&
					strings.HasPrefix(sel.Sel.Name, "Schedule") && len(n.Args) > 0 {
					add(asLit(n.Args[0]))
				}
			}
			return true
		})
		return sites
	},
}

// OffByOneMutator nudges integer literals by ±1: latencies, set counts,
// quantum sizes, masks, loop bounds. Literals used as array lengths are
// skipped — resizing a scratch buffer is almost always an equivalent
// mutant and proves nothing.
var OffByOneMutator = &Mutator{
	Name: "offbyone",
	Doc:  "integer literal off-by-one: N -> N+1 and (when N > 0) N -> N-1",
	Sites: func(ctx *FileCtx) []Site {
		// Collect literal nodes that are array lengths so the main walk
		// can skip them.
		skip := map[*ast.BasicLit]bool{}
		ast.Inspect(ctx.File, func(n ast.Node) bool {
			if at, ok := n.(*ast.ArrayType); ok && at.Len != nil {
				if lit, ok := ast.Unparen(at.Len).(*ast.BasicLit); ok {
					skip[lit] = true
				}
			}
			return true
		})
		var sites []Site
		ast.Inspect(ctx.File, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.INT || skip[lit] {
				return true
			}
			v, ok := intLitValue(ctx.Pkg.Info, lit)
			if !ok {
				return true
			}
			sites = append(sites, litNudge(ctx, "offbyone", lit, v, 1))
			if v > 0 {
				sites = append(sites, litNudge(ctx, "offbyone", lit, v, -1))
			}
			return true
		})
		return sites
	},
}

// StmtDelMutator deletes one statement: a call, an increment/decrement,
// or a plain (non-declaring) assignment. The statement's bytes are
// blanked in place so line numbers survive.
var StmtDelMutator = &Mutator{
	Name: "stmtdel",
	Doc:  "statement deletion: blank one call, inc/dec, or assignment statement",
	Sites: func(ctx *FileCtx) []Site {
		var sites []Site
		del := func(n ast.Node, what string) {
			start, end := ctx.offset(n.Pos()), ctx.offset(n.End())
			sites = append(sites, Site{
				Mutator: "stmtdel",
				Variant: "delete " + what,
				Pos:     n.Pos(),
				Start:   start,
				End:     end,
				Repl:    blank(ctx.Src, start, end),
			})
		}
		ast.Inspect(ctx.File, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if _, ok := s.X.(*ast.CallExpr); ok {
					del(s, "call statement")
				}
			case *ast.IncDecStmt:
				del(s, "inc/dec statement")
			case *ast.AssignStmt:
				if s.Tok == token.DEFINE {
					return true
				}
				// `_ = x` is a no-op; deleting it is an equivalent mutant
				// by construction.
				allBlank := true
				for _, lhs := range s.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); !ok || id.Name != "_" {
						allBlank = false
					}
				}
				if !allBlank {
					del(s, "assignment")
				}
			}
			return true
		})
		return sites
	},
}

// EarlyRetMutator injects a taken-on-entry return at the top of each
// function body: the "function never does its job" fault. Zero values
// are produced syntactically (`*new(T)`) from the declared result types,
// so any signature works; named results use a bare return.
var EarlyRetMutator = &Mutator{
	Name: "earlyret",
	Doc:  "early-return injection: `if true { return <zeros> }` at function entry",
	Sites: func(ctx *FileCtx) []Site {
		var sites []Site
		for _, decl := range ctx.File.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || len(fd.Body.List) == 0 {
				continue
			}
			ret := "return"
			if res := fd.Type.Results; res != nil && len(res.List) > 0 {
				named := res.List[0].Names != nil
				if !named {
					var zeros []string
					for _, f := range res.List {
						zeros = append(zeros, "*new("+ctx.text(f.Type)+")")
					}
					ret = "return " + strings.Join(zeros, ", ")
				}
			}
			at := ctx.offset(fd.Body.Lbrace) + 1
			// Trailing newline matters: single-line bodies ("{ return x }")
			// must not end up with a statement on the closing-brace line.
			sites = append(sites, Site{
				Mutator: "earlyret",
				Variant: "return on entry",
				Pos:     fd.Body.Lbrace,
				Start:   at,
				End:     at,
				Repl:    "\nif true { " + ret + " }\n",
			})
		}
		return sites
	},
}
