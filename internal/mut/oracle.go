package mut

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"github.com/coyote-sim/coyote/internal/lint"
)

// OracleNames lists the cascade layers in adjudication order. Cheap and
// syntactic layers run first; each mutant is charged to the FIRST layer
// that kills it, so the matrix reads as "what does each layer catch that
// everything before it missed".
var OracleNames = []string{"build", "vet", "lint", "tests", "golden", "san"}

// goldenTests is the -run regex of the root package's golden determinism
// suite: the bit-identical trace/result/cache-key/checkpoint goldens that
// PR 1-6 established as the repo's ground truth.
const goldenTests = "^(TestTraceDeterminismGolden|TestDeterminismGolden|TestWorkersDeterminismGolden|TestCacheKeyGolden|TestCheckpointGolden)$"

// Oracles drives the cascade for one Engine. The expensive shared state —
// the lint suite's whole-program loader — is resolved once and reused for
// every mutant's lint stage.
type Oracles struct {
	eng *Engine

	// TestTimeout bounds each `go test` invocation of the tests, golden
	// and san stages (passed as -timeout and enforced again as a process
	// deadline with headroom). A mutant that hangs a test is killed by
	// that stage, not waited out.
	TestTimeout time.Duration

	lintLoader *lint.Loader
}

// NewOracles builds the cascade driver for eng.
func NewOracles(eng *Engine) *Oracles {
	return &Oracles{eng: eng, TestTimeout: 120 * time.Second}
}

// Fingerprint identifies the oracle set: the go toolchain, the cascade
// and analyzer rosters, the golden regex, and the content of every .go
// file `go list ./...` can see. Folding the whole source tree in makes
// the verdict cache self-invalidating — editing any test, analyzer or
// simulator file changes the fingerprint, so stale verdicts can never be
// replayed against oracles that no longer exist.
func (o *Oracles) Fingerprint() (string, error) {
	h := sha256.New()
	fmt.Fprintf(h, "coyotemut-oracles/v%d\n", VerdictSchema)
	fmt.Fprintf(h, "go %s\n", runtime.Version())
	fmt.Fprintf(h, "cascade %s\n", strings.Join(OracleNames, ","))
	for _, a := range lint.Analyzers() {
		fmt.Fprintf(h, "analyzer %s\n", a.Name)
	}
	fmt.Fprintf(h, "golden %s\n", goldenTests)
	type entry struct{ rel, sum string }
	var entries []entry
	for _, pi := range o.eng.infos {
		for _, name := range append(append([]string(nil), pi.GoFiles...), pi.TestGoFiles...) {
			path := filepath.Join(pi.Dir, name)
			src, err := o.eng.src(path)
			if err != nil {
				return "", err
			}
			entries = append(entries, entry{relTo(o.eng.Dir, path), hashBytes(src)})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].rel < entries[j].rel })
	for _, e := range entries {
		fmt.Fprintf(h, "src %s %s\n", e.rel, e.sum)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// stage is one cascade layer: kill or pass one overlaid mutant.
type stage struct {
	name string
	run  func(m *Mutant, ov string) (killed bool, detail string, err error)
}

func (o *Oracles) stages() []stage {
	return []stage{
		{"build", o.buildStage},
		{"vet", o.vetStage},
		{"lint", o.lintStage},
		{"tests", o.testsStage},
		{"golden", o.goldenStage},
		{"san", o.sanStage},
	}
}

// Adjudicate runs the cascade on one (gate-passed) mutant and returns the
// first layer that killed it, a deterministic detail string, and whether
// any layer killed at all.
func (o *Oracles) Adjudicate(m *Mutant, logf func(string, ...any)) (oracle, detail string, killed bool, err error) {
	ov, cleanup, err := o.writeOverlay(m)
	if err != nil {
		return "", "", false, err
	}
	defer cleanup()

	for _, st := range o.stages() {
		k, d, err := st.run(m, ov)
		if err != nil {
			return "", "", false, fmt.Errorf("%s stage: %w", st.name, err)
		}
		if logf != nil {
			verdict := "pass"
			if k {
				verdict = "KILL: " + d
			}
			logf("  %-6s %s", st.name, verdict)
		}
		if k {
			return st.name, d, true, nil
		}
	}
	return "", "", false, nil
}

// writeOverlay materializes the mutant as a go-toolchain overlay: a temp
// copy of the mutated file plus the -overlay JSON mapping the original
// path onto it. The working tree is never touched.
func (o *Oracles) writeOverlay(m *Mutant) (ovPath string, cleanup func(), err error) {
	dir, err := os.MkdirTemp("", "coyotemut-")
	if err != nil {
		return "", nil, err
	}
	cleanup = func() { os.RemoveAll(dir) }
	mutated := filepath.Join(dir, "mutant_"+filepath.Base(m.File))
	if err := os.WriteFile(mutated, m.Content, 0o644); err != nil {
		cleanup()
		return "", nil, err
	}
	ov := struct {
		Replace map[string]string `json:"Replace"`
	}{Replace: map[string]string{m.File: mutated}}
	data, err := json.Marshal(ov)
	if err != nil {
		cleanup()
		return "", nil, err
	}
	ovPath = filepath.Join(dir, "overlay.json")
	if err := os.WriteFile(ovPath, data, 0o644); err != nil {
		cleanup()
		return "", nil, err
	}
	return ovPath, cleanup, nil
}

// runGo executes the go tool in the module root with a deadline. It
// returns the combined output and whether the command failed (non-zero
// exit OR deadline exceeded — both are oracle kills, never errors). Only
// failing to start the tool at all surfaces as err.
func (o *Oracles) runGo(timeout time.Duration, args ...string) (out []byte, failed bool, err error) {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	cmd := exec.CommandContext(ctx, "go", args...)
	cmd.Dir = o.eng.Dir
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	runErr := cmd.Run()
	if ctx.Err() == context.DeadlineExceeded {
		return append(buf.Bytes(), []byte("\ncoyotemut: timeout\n")...), true, nil
	}
	if runErr != nil {
		if _, isExit := runErr.(*exec.ExitError); isExit {
			return buf.Bytes(), true, nil
		}
		return buf.Bytes(), true, fmt.Errorf("go %s: %w", args[0], runErr)
	}
	return buf.Bytes(), false, nil
}

// buildStage compiles the whole module with the mutant overlaid. The
// typecheck gate makes kills here rare (go/types sees nearly everything
// the compiler does), but the stage stays: it is the layer CI actually
// runs first, and charging compile-visible faults anywhere else would
// misstate the matrix.
func (o *Oracles) buildStage(m *Mutant, ov string) (bool, string, error) {
	out, failed, err := o.runGo(o.TestTimeout, "build", "-overlay", ov, "./...")
	if err != nil {
		return false, "", err
	}
	if failed {
		return true, extractDetail(out), nil
	}
	return false, "", nil
}

// vetStage runs go vet on the mutated package only — vet's checks
// (unreachable code, suspicious shifts, printf) are package-local.
func (o *Oracles) vetStage(m *Mutant, ov string) (bool, string, error) {
	out, failed, err := o.runGo(o.TestTimeout, "vet", "-overlay", ov, m.Pkg)
	if err != nil {
		return false, "", err
	}
	if failed {
		return true, extractDetail(out), nil
	}
	return false, "", nil
}

// lintStage runs the full coyotelint suite in-process over ./internal/...
// with the mutant overlaid — including the interprocedural keytaint,
// specwrite and globalmut lanes. The baseline tree is lint-clean (CI
// enforces it), so any diagnostic at all is a kill.
func (o *Oracles) lintStage(m *Mutant, ov string) (bool, string, error) {
	if o.lintLoader == nil {
		// The analyzers' roots and sinks (cache-key canonicalization,
		// speculative phases, globalfree roots) all live under internal/,
		// so the suite's whole-program view doesn't need cmd/ or examples.
		l, err := lint.NewLoader(o.eng.Dir, []string{"./internal/..."}, lint.LoadOptions{})
		if err != nil {
			return false, "", err
		}
		o.lintLoader = l
	}
	prog, err := o.lintLoader.Load(map[string][]byte{m.File: m.Content})
	if err != nil {
		// Post-gate this means the overlaid tree type-checks per-package
		// but not under the lint loader's stricter whole-view — count it
		// as a lint kill rather than aborting the run.
		return true, firstLine(err.Error()), nil
	}
	res := lint.RunSuite(prog)
	if len(res.Diagnostics) > 0 {
		d := res.Diagnostics[0]
		detail := fmt.Sprintf("[%s] %s", d.Analyzer, d.Message)
		if n := len(res.Diagnostics); n > 1 {
			detail = fmt.Sprintf("%s (+%d more)", detail, n-1)
		}
		return true, detail, nil
	}
	return false, "", nil
}

// testsStage runs unit tests with the mutant overlaid. Test selection is
// targeted: the flow call graph's reverse-reachability query finds the
// test functions that can statically reach the mutated function, and only
// those run (grouped per package under one -run regex). Static
// reachability under-approximates — dynamic dispatch contributes no edges
// — so when the query finds nothing (or the mutation site is outside any
// function) the stage falls back to the full test suites of every
// internal package that depends on the mutated one.
func (o *Oracles) testsStage(m *Mutant, ov string) (bool, string, error) {
	targets := o.testTargets(m)
	pkgs := make([]string, 0, len(targets))
	for pkg := range targets {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)
	for _, pkg := range pkgs {
		args := []string{"test", "-overlay", ov, "-count=1",
			"-timeout", o.TestTimeout.String()}
		if names := targets[pkg]; len(names) > 0 {
			args = append(args, "-run", "^("+strings.Join(names, "|")+")$")
		}
		args = append(args, pkg)
		out, failed, err := o.runGo(o.TestTimeout+30*time.Second, args...)
		if err != nil {
			return false, "", err
		}
		if failed {
			return true, relImport(pkg) + ": " + extractDetail(out), nil
		}
	}
	return false, "", nil
}

// testTargets returns package → test-function names to run (empty name
// list = the package's whole suite). Only internal packages participate;
// the root package's golden suite is the next stage.
func (o *Oracles) testTargets(m *Mutant) map[string][]string {
	flowProg := o.eng.Base.Flow()
	if fn := flowProg.FuncAt(m.Pos); fn != nil {
		targets := map[string][]string{}
		for _, r := range o.eng.Graph().ReachersOf(fn.Key) {
			decl := r.Decl
			if !strings.HasPrefix(decl.Name.Name, "Test") {
				continue
			}
			file := r.File(o.eng.Base.Fset)
			if !strings.HasSuffix(file, "_test.go") || !oraclePkg(r.Pkg.Path) {
				continue
			}
			targets[r.Pkg.Path] = append(targets[r.Pkg.Path], decl.Name.Name)
		}
		if len(targets) > 0 {
			for pkg := range targets {
				sort.Strings(targets[pkg])
			}
			return targets
		}
	}
	// Fallback over-approximation: every internal package whose deps or
	// test imports include the mutated package (plus the package itself),
	// full suite each.
	targets := map[string][]string{}
	for _, pi := range o.eng.infos {
		if len(pi.TestGoFiles) == 0 || !oraclePkg(pi.ImportPath) {
			continue
		}
		if pi.ImportPath == m.Pkg || containsStr(pi.Deps, m.Pkg) || containsStr(pi.TestImports, m.Pkg) {
			targets[pi.ImportPath] = nil
		}
	}
	return targets
}

// oraclePkg reports whether a package's test suite may serve as an
// oracle. Only internal packages qualify (the root package's golden
// suite is its own stage), and the mutation engine itself is excluded:
// internal/mut transitively imports every simulator package, so the
// dependency sweep would otherwise select the engine's own suite for
// every mutant — which recursively re-runs the oracle cascade inside
// the cascade and times out, recording a kill that says nothing about
// the mutant.
func oraclePkg(importPath string) bool {
	if !strings.Contains(importPath, "/internal/") {
		return false
	}
	return !strings.Contains(importPath, "/internal/mut")
}

// goldenStage runs the root package's golden determinism tests: the
// end-to-end bit-identical trace, result and cache-key goldens.
func (o *Oracles) goldenStage(m *Mutant, ov string) (bool, string, error) {
	out, failed, err := o.runGo(o.TestTimeout+30*time.Second,
		"test", "-overlay", ov, "-count=1", "-timeout", o.TestTimeout.String(),
		"-run", goldenTests, ".")
	if err != nil {
		return false, "", err
	}
	if failed {
		return true, extractDetail(out), nil
	}
	return false, "", nil
}

// sanStage re-runs the dependent packages' tests and the golden suite
// with -tags coyotesan, so the runtime sanitizer's shadow structures are
// live. This is the only default-invisible layer: san maintenance calls
// compile to no-op stubs in every earlier stage, so a mutant that breaks
// only the sanitizer's invariants (a leaked MSHR entry, a lost prefetch
// promotion) reaches here untouched and must be killed here or survive.
func (o *Oracles) sanStage(m *Mutant, ov string) (bool, string, error) {
	// Dependent internal packages, full suites (san violations can fire
	// in any test that drives the mutated path).
	pkgs := []string{}
	for _, pi := range o.eng.infos {
		if len(pi.TestGoFiles) == 0 || !oraclePkg(pi.ImportPath) {
			continue
		}
		if pi.ImportPath == m.Pkg || containsStr(pi.Deps, m.Pkg) || containsStr(pi.TestImports, m.Pkg) {
			pkgs = append(pkgs, pi.ImportPath)
		}
	}
	sort.Strings(pkgs)
	for _, pkg := range pkgs {
		out, failed, err := o.runGo(o.TestTimeout+30*time.Second,
			"test", "-tags", "coyotesan", "-overlay", ov, "-count=1",
			"-timeout", o.TestTimeout.String(), pkg)
		if err != nil {
			return false, "", err
		}
		if failed {
			return true, relImport(pkg) + ": " + extractDetail(out), nil
		}
	}
	// Golden smoke under the sanitizer: end-to-end kernels with every
	// shadow check armed.
	out, failed, err := o.runGo(o.TestTimeout+30*time.Second,
		"test", "-tags", "coyotesan", "-overlay", ov, "-count=1",
		"-timeout", o.TestTimeout.String(), "-run", goldenTests, ".")
	if err != nil {
		return false, "", err
	}
	if failed {
		return true, extractDetail(out), nil
	}
	return false, "", nil
}

// containsStr reports whether list contains s.
func containsStr(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// relImport trims the module prefix from an import path for display.
func relImport(pkg string) string {
	if i := strings.Index(pkg, "/internal/"); i >= 0 {
		return pkg[i+1:]
	}
	return pkg
}

// extractDetail compresses tool output into a deterministic one-line
// summary: the sorted set of failed test names, the first panic line, or
// failing that the first non-empty line. Deterministic details matter —
// they are part of the cached verdict and the pinned corpus asserts
// against them.
func extractDetail(out []byte) string {
	var fails []string
	seen := map[string]bool{}
	panicLine := ""
	firstNonEmpty := ""
	for _, line := range strings.Split(string(out), "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		if firstNonEmpty == "" {
			firstNonEmpty = trimmed
		}
		if name, ok := strings.CutPrefix(trimmed, "--- FAIL: "); ok {
			if f := strings.Fields(name); len(f) > 0 && !seen[f[0]] {
				seen[f[0]] = true
				fails = append(fails, f[0])
			}
		}
		if panicLine == "" && strings.HasPrefix(trimmed, "panic:") {
			panicLine = trimmed
		}
	}
	sort.Strings(fails)
	var parts []string
	if len(fails) > 0 {
		parts = append(parts, "FAIL: "+strings.Join(fails, ", "))
	}
	if panicLine != "" {
		parts = append(parts, panicLine)
	}
	if len(parts) == 0 {
		return firstNonEmpty
	}
	return strings.Join(parts, "; ")
}
