package mut

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Report aggregates a run's outcomes into the kill matrix. Every field is
// a pure function of the mutant set and the verdicts — no timestamps, no
// cache-hit counters — so two runs over the same tree serialize to
// byte-identical JSON (the determinism acceptance check diffs exactly
// this).
type Report struct {
	Schema  int   `json:"schema"`
	Budget  int   `json:"budget"` // 0 = full catalog
	Seed    int64 `json:"seed"`
	Pool    int   `json:"pool"` // enumerated mutants before sampling
	Sampled int   `json:"sampled"`

	// Scored = killed + survived (uncompilable mutants are discarded).
	Scored      int `json:"scored"`
	Killed      int `json:"killed"`
	Survived    int `json:"survived"`
	Annotated   int `json:"annotated"`   // survivors with mut-survivor triage
	Unannotated int `json:"unannotated"` // survivors owing a test or a triage
	Discarded   int `json:"discarded"`   // uncompilable
	// Score counts annotated (triaged-equivalent) survivors out of the
	// denominator, the standard equivalent-mutant correction.
	Score float64 `json:"score"`

	ByOracle  []OracleRow  `json:"by_oracle"`
	ByPackage []PackageRow `json:"by_package"`
	ByMutator []MutatorRow `json:"by_mutator"`
	Mutants   []MutantRow  `json:"mutants"`
}

// OracleRow is one cascade layer's share of the kills.
type OracleRow struct {
	Oracle string `json:"oracle"`
	Kills  int    `json:"kills"`
}

// PackageRow is one package's line of the kill matrix.
type PackageRow struct {
	Pkg      string         `json:"pkg"`
	Scored   int            `json:"scored"`
	Killed   int            `json:"killed"`
	Survived int            `json:"survived"`
	Kills    map[string]int `json:"kills"` // oracle → count
}

// MutatorRow summarizes one catalog entry's fate.
type MutatorRow struct {
	Mutator  string `json:"mutator"`
	Scored   int    `json:"scored"`
	Killed   int    `json:"killed"`
	Survived int    `json:"survived"`
}

// MutantRow is one mutant's verdict in the report.
type MutantRow struct {
	ID            string `json:"id"`
	Pkg           string `json:"pkg"`
	Mutator       string `json:"mutator"`
	Variant       string `json:"variant"`
	Status        Status `json:"status"`
	Oracle        string `json:"oracle,omitempty"`
	Detail        string `json:"detail,omitempty"`
	Annotated     bool   `json:"annotated,omitempty"`
	Justification string `json:"justification,omitempty"`
}

// BuildReport folds outcomes into the report. pool is the enumeration
// size before sampling.
func BuildReport(outs []*Outcome, pool, budget int, seed int64) *Report {
	r := &Report{Schema: VerdictSchema, Budget: budget, Seed: seed, Pool: pool, Sampled: len(outs)}
	pkgRows := map[string]*PackageRow{}
	mutRows := map[string]*MutatorRow{}
	oracleKills := map[string]int{}
	for _, o := range outs {
		m := o.Mutant
		row := MutantRow{
			ID: m.ID, Pkg: relImport(m.Pkg), Mutator: m.Mutator, Variant: m.Variant,
			Status: o.Status, Oracle: o.Oracle, Detail: o.Detail,
			Annotated: o.Annotated, Justification: o.Justification,
		}
		r.Mutants = append(r.Mutants, row)
		if o.Status == StatusUncompilable {
			r.Discarded++
			continue
		}
		p := pkgRows[row.Pkg]
		if p == nil {
			p = &PackageRow{Pkg: row.Pkg, Kills: map[string]int{}}
			pkgRows[row.Pkg] = p
		}
		mu := mutRows[m.Mutator]
		if mu == nil {
			mu = &MutatorRow{Mutator: m.Mutator}
			mutRows[m.Mutator] = mu
		}
		r.Scored++
		p.Scored++
		mu.Scored++
		switch o.Status {
		case StatusKilled:
			r.Killed++
			p.Killed++
			mu.Killed++
			p.Kills[o.Oracle]++
			oracleKills[o.Oracle]++
		case StatusSurvived:
			r.Survived++
			p.Survived++
			mu.Survived++
			if o.Annotated {
				r.Annotated++
			} else {
				r.Unannotated++
			}
		}
	}
	if denom := r.Killed + r.Unannotated; denom > 0 {
		r.Score = float64(r.Killed) / float64(denom)
	}
	for _, name := range OracleNames {
		r.ByOracle = append(r.ByOracle, OracleRow{Oracle: name, Kills: oracleKills[name]})
	}
	for _, p := range pkgRows {
		r.ByPackage = append(r.ByPackage, *p)
	}
	sort.Slice(r.ByPackage, func(i, j int) bool { return r.ByPackage[i].Pkg < r.ByPackage[j].Pkg })
	for _, name := range CatalogNames() {
		if mu := mutRows[name]; mu != nil {
			r.ByMutator = append(r.ByMutator, *mu)
		}
	}
	return r
}

// Survivors returns the surviving mutants' rows, unannotated first.
func (r *Report) Survivors() []MutantRow {
	var out []MutantRow
	for _, m := range r.Mutants {
		if m.Status == StatusSurvived {
			out = append(out, m)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return !out[i].Annotated && out[j].Annotated
	})
	return out
}

// JSON serializes the report deterministically (two-space indent,
// trailing newline).
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteTable renders the human report: summary, the package × oracle
// kill matrix, the per-mutator breakdown, and the survivor listing.
func (r *Report) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "coyotemut: %d enumerated, %d sampled (budget %d, seed %d), %d discarded uncompilable\n",
		r.Pool, r.Sampled, r.Budget, r.Seed, r.Discarded)
	fmt.Fprintf(w, "mutation score %.1f%%: %d killed / %d survived (%d triaged, %d unannotated)\n\n",
		r.Score*100, r.Killed, r.Survived, r.Annotated, r.Unannotated)

	// Kill matrix: packages × oracle layers.
	wPkg := len("package")
	for _, p := range r.ByPackage {
		if len(p.Pkg) > wPkg {
			wPkg = len(p.Pkg)
		}
	}
	fmt.Fprintf(w, "%-*s", wPkg, "package")
	for _, o := range OracleNames {
		fmt.Fprintf(w, " %6s", o)
	}
	fmt.Fprintf(w, " %6s %6s\n", "alive", "score")
	for _, p := range r.ByPackage {
		fmt.Fprintf(w, "%-*s", wPkg, p.Pkg)
		for _, o := range OracleNames {
			fmt.Fprintf(w, " %6d", p.Kills[o])
		}
		score := 0.0
		if p.Scored > 0 {
			score = float64(p.Killed) / float64(p.Scored) * 100
		}
		fmt.Fprintf(w, " %6d %5.1f%%\n", p.Survived, score)
	}
	fmt.Fprintf(w, "%-*s", wPkg, "TOTAL")
	for _, o := range r.ByOracle {
		fmt.Fprintf(w, " %6d", o.Kills)
	}
	fmt.Fprintf(w, " %6d %5.1f%%\n\n", r.Survived, r.Score*100)

	fmt.Fprintf(w, "%-10s %7s %7s %7s\n", "mutator", "scored", "killed", "alive")
	for _, m := range r.ByMutator {
		fmt.Fprintf(w, "%-10s %7d %7d %7d\n", m.Mutator, m.Scored, m.Killed, m.Survived)
	}

	survivors := r.Survivors()
	if len(survivors) > 0 {
		fmt.Fprintf(w, "\nsurvivors:\n")
		for _, s := range survivors {
			tag := "UNANNOTATED"
			if s.Annotated {
				tag = "triaged: " + s.Justification
			}
			fmt.Fprintf(w, "  %s  %s  [%s]\n", s.ID, s.Variant, tag)
		}
	}
}

// ExitStatus maps the report onto the command's exit code contract:
// 0 when every survivor is triaged, 1 when any unannotated survivor
// remains (CI fails the smoke lane on exactly this).
func (r *Report) ExitStatus() int {
	if r.Unannotated > 0 {
		return 1
	}
	return 0
}

// Diff returns "" when two reports agree, else a short description of the
// first divergence — the determinism acceptance check between two
// same-seed runs.
func Diff(a, b *Report) string {
	ab, _ := a.JSON()
	bb, _ := b.JSON()
	if string(ab) == string(bb) {
		return ""
	}
	al, bl := strings.Split(string(ab), "\n"), strings.Split(string(bb), "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d: %q vs %q", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("length %d vs %d lines", len(al), len(bl))
}
