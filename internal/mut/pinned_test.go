package mut

import (
	"os"
	"testing"
)

// TestPinnedCorpus replays the migrated hand-rolled mutants — the lint
// suite's historical keytaint/specwrite/globalmut/statecheck/portproto
// seeds and the runtime sanitizer's shadow-maintenance faults — through
// the full oracle cascade, and holds each to its contract: killed by
// EXACTLY its designated layer (every earlier layer must pass it), with
// the pinned detail substring in the kill message. This is the
// regression net for the oracle stack itself: if a lint lane or the
// coyotesan workload loses a kill, the corpus fails before any real
// mutation run would quietly report a weaker score.
//
// The full replay runs eight cascades end to end (~7 minutes on one
// core), which would put this package alone near go test's default
// 10-minute timeout — so it is opt-in: `make mut-pinned` (or the CI
// coyotemut lane) sets COYOTE_MUT_PINNED=1 with an explicit -timeout.
func TestPinnedCorpus(t *testing.T) {
	if os.Getenv("COYOTE_MUT_PINNED") == "" {
		t.Skip("set COYOTE_MUT_PINNED=1 (make mut-pinned) to replay the pinned corpus through the full cascade")
	}
	e := testEngine(t)
	orc := NewOracles(e)
	pins, err := LoadPinned("testdata/pinned")
	if err != nil {
		t.Fatal(err)
	}
	if len(pins) < 8 {
		t.Fatalf("pinned corpus has %d entries, want >= 8 — did a corpus file go missing?", len(pins))
	}
	layers := map[string]int{}
	for _, p := range pins {
		layers[p.Layer]++
	}
	if layers["lint"] == 0 || layers["san"] == 0 {
		t.Fatalf("corpus must pin both the lint and san layers, got %v", layers)
	}
	for _, p := range pins {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			if err := AdjudicatePinned(e, orc, p, t.Logf); err != nil {
				t.Fatal(err)
			}
		})
	}
}
