package mut

import (
	"errors"
	"os"
	"testing"

	"github.com/coyote-sim/coyote/internal/rcache"
)

func cacheTestMutant() *Mutant {
	return &Mutant{
		ID:      "internal/core/x.go:3:1:ror:eqnoteq",
		Pkg:     "github.com/coyote-sim/coyote/internal/core",
		RelFile: "internal/core/x.go",
		Mutator: "ror",
		Variant: "== -> !=",
		Orig:    []byte("a == b"),
		Content: []byte("a != b"),
	}
}

func TestVerdictCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenVerdictCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := cacheTestMutant()
	key := VerdictKey(m, "fp")
	if _, err := c.Load(key); !errors.Is(err, rcache.ErrMiss) {
		t.Fatalf("empty cache Load = %v, want ErrMiss", err)
	}
	o := &Outcome{Mutant: m, Status: StatusKilled, Oracle: "tests", Detail: "FAIL: TestX"}
	if err := c.Store(key, o); err != nil {
		t.Fatal(err)
	}
	v, err := c.Load(key)
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != StatusKilled || v.Oracle != "tests" || v.Detail != "FAIL: TestX" || v.ID != m.ID {
		t.Fatalf("round-tripped verdict = %+v", v)
	}
	// Verdicts survive a reopen: the store is plain files on disk.
	c2, err := OpenVerdictCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := c2.Load(key); err != nil || v.Status != StatusKilled {
		t.Fatalf("reopened cache Load = %+v, %v", v, err)
	}
}

func TestVerdictKeySensitivity(t *testing.T) {
	m := cacheTestMutant()
	base := VerdictKey(m, "fp")

	changed := *m
	changed.Content = []byte("a <= b")
	if VerdictKey(&changed, "fp") == base {
		t.Error("key ignores mutant content")
	}
	orig := *m
	orig.Orig = []byte("a == c")
	if VerdictKey(&orig, "fp") == base {
		t.Error("key ignores original content")
	}
	if VerdictKey(m, "other-oracle-set") == base {
		t.Error("key ignores the oracle fingerprint")
	}
	// Position is NOT part of the key: the verdict is content-addressed,
	// so unrelated edits that only shift a mutant's line keep the hit.
	moved := *m
	moved.Line, moved.Col = 999, 9
	if VerdictKey(&moved, "fp") != base {
		t.Error("key depends on line/col — content addressing broken")
	}
}

func TestVerdictCacheCorruption(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenVerdictCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := cacheTestMutant()
	o := &Outcome{Mutant: m, Status: StatusSurvived}

	// Payload-level corruption: a valid blob whose payload is not a
	// verdict. Load must quarantine and report ErrCorrupt, then miss.
	k1 := VerdictKey(m, "fp1")
	if err := c.blobs.Store(k1, []byte("not json")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(k1); !errors.Is(err, rcache.ErrCorrupt) {
		t.Fatalf("garbage payload Load = %v, want ErrCorrupt", err)
	}
	if _, err := c.Load(k1); !errors.Is(err, rcache.ErrMiss) {
		t.Fatalf("post-quarantine Load = %v, want ErrMiss", err)
	}

	// Schema drift in an otherwise well-formed verdict.
	k2 := VerdictKey(m, "fp2")
	if err := c.blobs.Store(k2, []byte(`{"schema":999,"status":"killed"}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(k2); !errors.Is(err, rcache.ErrCorrupt) {
		t.Fatalf("wrong-schema Load = %v, want ErrCorrupt", err)
	}

	// Blob-level corruption: the on-disk file is overwritten wholesale.
	k3 := VerdictKey(m, "fp3")
	if err := c.Store(k3, o); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(c.blobs.Path(k3), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(k3); !errors.Is(err, rcache.ErrCorrupt) {
		t.Fatalf("trashed blob Load = %v, want ErrCorrupt", err)
	}
	if _, err := c.Load(k3); !errors.Is(err, rcache.ErrMiss) {
		t.Fatalf("post-quarantine Load = %v, want ErrMiss", err)
	}
}
