package mut

import (
	"strings"
	"testing"
)

func TestSlug(t *testing.T) {
	cases := []struct{ in, want string }{
		{"`+` -> `-`", "plusminusgtminus"},
		{"< -> <=", "ltminusgtlteq"},
		{"< -> >", "ltminusgtgt"},
		{"return on entry", "returnonentry"},
		{"", "x"},
		{"()[]{} ", "x"},
		{strings.Repeat("a", 40), strings.Repeat("a", 24)},
	}
	for _, c := range cases {
		if got := slug(c.in); got != c.want {
			t.Errorf("slug(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestOraclePkg pins the oracle-eligibility rule: internal packages
// only, and never the mutation engine's own packages — selecting
// internal/mut as an oracle would re-run the cascade inside the cascade.
func TestOraclePkg(t *testing.T) {
	cases := []struct {
		pkg  string
		want bool
	}{
		{"github.com/coyote-sim/coyote/internal/core", true},
		{"github.com/coyote-sim/coyote/internal/uncore", true},
		{"github.com/coyote-sim/coyote/internal/lint/flow", true},
		{"github.com/coyote-sim/coyote/internal/mut", false},
		{"github.com/coyote-sim/coyote/internal/mut/fixture", false},
		{"github.com/coyote-sim/coyote", false}, // root: golden stage owns it
	}
	for _, c := range cases {
		if got := oraclePkg(c.pkg); got != c.want {
			t.Errorf("oraclePkg(%q) = %v, want %v", c.pkg, got, c.want)
		}
	}
}

func TestMutantID(t *testing.T) {
	got := mutantID("internal/cpu/x.go", 5, 3, "ror", "< -> >")
	if got != "internal/cpu/x.go:5:3:ror:ltminusgtgt" {
		t.Errorf("mutantID = %q", got)
	}
}

func TestSiteApply(t *testing.T) {
	src := []byte("abcdef")
	cases := []struct {
		site Site
		want string
	}{
		{Site{Start: 2, End: 4, Repl: "XY"}, "abXYef"},
		{Site{Start: 3, End: 3, Repl: "Z"}, "abcZdef"}, // pure insertion
		{Site{Start: 2, End: 4, Repl: ""}, "abef"},     // pure deletion
	}
	for _, c := range cases {
		if got := string(c.site.apply(src)); got != c.want {
			t.Errorf("apply(%+v) = %q, want %q", c.site, got, c.want)
		}
	}
	if string(src) != "abcdef" {
		t.Fatal("apply mutated its input")
	}
}

func TestBlankKeepsNewlines(t *testing.T) {
	src := []byte("x := foo()\ny++\n")
	got := blank(src, 0, len(src))
	if len(got) != len(src) {
		t.Fatalf("blank changed length: %d -> %d", len(src), len(got))
	}
	if strings.Count(got, "\n") != 2 {
		t.Fatalf("blank lost newlines: %q", got)
	}
	if strings.Trim(got, " \n") != "" {
		t.Fatalf("blank left non-blank bytes: %q", got)
	}
}

func TestMatchPattern(t *testing.T) {
	cases := []struct {
		relDir, pattern string
		want            bool
	}{
		{"internal/cpu", "./internal/...", true},
		{"internal/cpu", "./internal/cpu", true},
		{"internal/cpu", "./internal/cache", false},
		{"internal/cache", "./internal/cache/...", true},
		{"internal/cache/sub", "./internal/cache/...", true},
		{"internal/cachex", "./internal/cache/...", false},
		{"anything/at/all", "...", true},
		{"internal/cpu", "internal/cpu", true}, // leading ./ optional
	}
	for _, c := range cases {
		if got := matchPattern(c.relDir, c.pattern); got != c.want {
			t.Errorf("matchPattern(%q, %q) = %v, want %v", c.relDir, c.pattern, got, c.want)
		}
	}
	if !matchAny("internal/cpu", nil) {
		t.Error("matchAny with no patterns must select everything")
	}
	if matchAny("internal/cpu", []string{"./internal/mem", "./internal/cache"}) {
		t.Error("matchAny matched a non-matching pattern list")
	}
}

func TestExtractDetail(t *testing.T) {
	cases := []struct{ in, want string }{
		{
			"--- FAIL: TestB (0.00s)\n--- FAIL: TestA (0.01s)\n--- FAIL: TestB (0.00s)\nFAIL\n",
			"FAIL: TestA, TestB",
		},
		{
			"ok so far\npanic: coyotesan: cycle 7: boom\ngoroutine 1 [running]:\n",
			"panic: coyotesan: cycle 7: boom",
		},
		{
			"--- FAIL: TestX (0.00s)\npanic: boom\n",
			"FAIL: TestX; panic: boom",
		},
		{
			"# github.com/x/y\nsome compile error\n",
			"# github.com/x/y",
		},
		{"", ""},
	}
	for _, c := range cases {
		if got := extractDetail([]byte(c.in)); got != c.want {
			t.Errorf("extractDetail(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestOffsetToLineCol(t *testing.T) {
	src := []byte("ab\ncd\n")
	cases := []struct{ off, line, col int }{
		{0, 1, 1},
		{1, 1, 2},
		{3, 2, 1},
		{4, 2, 2},
	}
	for _, c := range cases {
		if l, col := offsetToLineCol(src, c.off); l != c.line || col != c.col {
			t.Errorf("offsetToLineCol(%d) = %d:%d, want %d:%d", c.off, l, col, c.line, c.col)
		}
	}
}

func TestRelTo(t *testing.T) {
	if got := relTo("/a/b", "/a/b/c/d.go"); got != "c/d.go" {
		t.Errorf("relTo inside = %q", got)
	}
	if got := relTo("/a/b", "/elsewhere/x.go"); got != "/elsewhere/x.go" {
		t.Errorf("relTo outside = %q", got)
	}
}

func TestIsTargetPackage(t *testing.T) {
	if !IsTargetPackage("github.com/coyote-sim/coyote/internal/cpu") {
		t.Error("internal/cpu must be a target")
	}
	for _, p := range []string{
		"github.com/coyote-sim/coyote/internal/lint",
		"github.com/coyote-sim/coyote/internal/mut",
		"github.com/coyote-sim/coyote/internal/mut/fixture",
		"github.com/coyote-sim/coyote/cmd/coyote",
	} {
		if IsTargetPackage(p) {
			t.Errorf("%s must not be a target", p)
		}
	}
}
