// Package checkpoint defines the on-disk simulator checkpoint format and
// the save/load entry points the harness drivers use.
//
// # File format (SchemaVersion 1)
//
//	offset  size  field
//	0       8     magic "COYOCKPT"
//	8       4     schema version (LE u32)
//	12      8     payload length N (LE u64)
//	20      N     payload (see below)
//	20+N    32    SHA-256 over bytes [0, 20+N)
//
// The payload is an internal/ckpt section:
//
//	kernel name, Params JSON, Config JSON        — run identity
//	assembled program (bases, text, data, entry,
//	  sorted symbol table)                       — restore needs no assembler
//	trace events + last-event cycle              — harness tracer prefix
//	machine state                                — core.System.CheckpointState
//
// Integrity is all-or-nothing: any flipped byte fails the trailing
// checksum, any truncation fails a length check, and both reject the file
// before a single field reaches the simulator. There is no partial or
// best-effort load.
//
// # Versioning
//
// SchemaVersion mirrors the rcache.SchemaVersion bump policy: the binary
// layout IS the code of the component serializers (internal/ckpt has no
// per-field tags), so ANY layout change — a new field in a component's
// Checkpoint method, a reordering, a width change — must bump the version
// here. Old files are then rejected with a clear error instead of being
// misparsed; checkpoints are cheap to regenerate, so there are no
// migration paths, only refusals (same stance as rcache: stale entries
// are never found again).
package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"github.com/coyote-sim/coyote/internal/asm"
	"github.com/coyote-sim/coyote/internal/ckpt"
	"github.com/coyote-sim/coyote/internal/core"
	"github.com/coyote-sim/coyote/internal/kernels"
	"github.com/coyote-sim/coyote/internal/trace"
)

// Magic identifies a Coyote checkpoint file.
const Magic = "COYOCKPT"

// SchemaVersion versions the whole binary layout, including every
// component serializer reached through core.System.CheckpointState. Bump
// on any layout change; see the package comment.
const SchemaVersion = 1

// Meta identifies the run a checkpoint belongs to.
type Meta struct {
	Kernel string
	Params kernels.Params
	Config core.Config
}

// Image is a loaded, integrity-verified checkpoint.
type Image struct {
	Meta        Meta
	Prog        *asm.Program
	TraceEvents []trace.Event
	TraceLast   uint64

	// State is the machine payload for core.System.RestoreState.
	State []byte
}

// Save serializes the stopped system (plus run identity and the tracer's
// event prefix) to path. tw may be nil when the run traces nothing.
func Save(path string, meta Meta, prog *asm.Program, sys *core.System, tw *trace.Writer) error {
	var pw ckpt.Writer
	pw.String(meta.Kernel)
	pj, err := json.Marshal(meta.Params)
	if err != nil {
		return fmt.Errorf("checkpoint: encoding params: %w", err)
	}
	pw.Bytes64(pj)
	cj, err := json.Marshal(meta.Config)
	if err != nil {
		return fmt.Errorf("checkpoint: encoding config: %w", err)
	}
	pw.Bytes64(cj)

	writeProgram(&pw, prog)

	var events []trace.Event
	var last uint64
	if tw != nil {
		events = tw.Events()
		last = tw.Last()
	}
	pw.U64(uint64(len(events)))
	for _, ev := range events {
		pw.U64(ev.Cycle)
		pw.Int(ev.Hart)
		pw.Int(ev.Type)
		pw.U64(ev.Value)
	}
	pw.U64(last)

	var sw ckpt.Writer
	if err := sys.CheckpointState(&sw); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	pw.Bytes64(sw.Bytes())

	payload := pw.Bytes()
	buf := make([]byte, 0, len(Magic)+12+len(payload)+sha256.Size)
	buf = append(buf, Magic...)
	buf = binary.LittleEndian.AppendUint32(buf, SchemaVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	sum := sha256.Sum256(buf)
	buf = append(buf, sum[:]...)

	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// Load reads and integrity-checks a checkpoint file. Corrupt, truncated,
// foreign or version-mismatched files are rejected with an error — never
// partially loaded.
func Load(path string) (*Image, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return Decode(raw)
}

// Decode parses checkpoint file bytes (the testable core of Load).
func Decode(raw []byte) (*Image, error) {
	head := len(Magic) + 12
	if len(raw) < head+sha256.Size {
		return nil, fmt.Errorf("checkpoint: file too short (%d bytes) to be a checkpoint", len(raw))
	}
	if !bytes.Equal(raw[:len(Magic)], []byte(Magic)) {
		return nil, fmt.Errorf("checkpoint: bad magic %q (not a Coyote checkpoint)", raw[:len(Magic)])
	}
	version := binary.LittleEndian.Uint32(raw[len(Magic):])
	if version != SchemaVersion {
		return nil, fmt.Errorf("checkpoint: schema version %d, this build reads %d (regenerate the checkpoint)", version, SchemaVersion)
	}
	plen := binary.LittleEndian.Uint64(raw[len(Magic)+4:])
	if plen != uint64(len(raw)-head-sha256.Size) {
		return nil, fmt.Errorf("checkpoint: payload length %d disagrees with file size %d (truncated or padded)", plen, len(raw))
	}
	want := raw[head+int(plen):]
	sum := sha256.Sum256(raw[:head+int(plen)])
	if !bytes.Equal(sum[:], want) {
		return nil, fmt.Errorf("checkpoint: checksum mismatch (corrupt file)")
	}

	r := ckpt.NewReader(raw[head : head+int(plen)])
	img := &Image{}
	img.Meta.Kernel = r.String()
	pj := r.Bytes64()
	cj := r.Bytes64()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	if err := json.Unmarshal(pj, &img.Meta.Params); err != nil {
		return nil, fmt.Errorf("checkpoint: decoding params: %w", err)
	}
	if err := json.Unmarshal(cj, &img.Meta.Config); err != nil {
		return nil, fmt.Errorf("checkpoint: decoding config: %w", err)
	}

	prog, err := readProgram(r)
	if err != nil {
		return nil, err
	}
	img.Prog = prog

	nEv := r.U64()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	img.TraceEvents = make([]trace.Event, 0, nEv)
	for i := uint64(0); i < nEv; i++ {
		var ev trace.Event
		ev.Cycle = r.U64()
		ev.Hart = r.Int()
		ev.Type = r.Int()
		ev.Value = r.U64()
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("checkpoint: %w", err)
		}
		img.TraceEvents = append(img.TraceEvents, ev)
	}
	img.TraceLast = r.U64()
	img.State = r.Bytes64()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("checkpoint: %d trailing bytes after payload", r.Remaining())
	}
	return img, nil
}

// Restore builds a fresh System from the image's Config, loads the
// serialized program and reloads the machine state. The returned system
// is ready to continue with Run/RunTo. tw, when non-nil, is seeded with
// the checkpointed trace prefix.
func (img *Image) Restore(tw *trace.Writer) (*core.System, error) {
	sys, err := core.New(img.Meta.Config)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	sys.LoadProgram(img.Prog)
	if err := sys.RestoreState(ckpt.NewReader(img.State)); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	if tw != nil {
		tw.Seed(img.TraceEvents, img.TraceLast)
		sys.Tracer = tw
	}
	return sys, nil
}

func writeProgram(w *ckpt.Writer, p *asm.Program) {
	w.U64(p.TextBase)
	w.Bytes64(p.Text)
	w.U64(p.DataBase)
	w.Bytes64(p.Data)
	w.U64(p.Entry)
	syms := make([]string, 0, len(p.Symbols))
	//coyote:mapiter-ok keys are sorted immediately below, erasing visit order
	for name := range p.Symbols {
		syms = append(syms, name)
	}
	sort.Strings(syms)
	w.U64(uint64(len(syms)))
	for _, name := range syms {
		w.String(name)
		w.U64(p.Symbols[name])
	}
}

func readProgram(r *ckpt.Reader) (*asm.Program, error) {
	p := &asm.Program{Symbols: map[string]uint64{}}
	p.TextBase = r.U64()
	p.Text = r.Bytes64()
	p.DataBase = r.U64()
	p.Data = r.Bytes64()
	p.Entry = r.U64()
	n := r.U64()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("checkpoint: program: %w", err)
	}
	for i := uint64(0); i < n; i++ {
		name := r.String()
		v := r.U64()
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("checkpoint: program: %w", err)
		}
		p.Symbols[name] = v
	}
	return p, nil
}
