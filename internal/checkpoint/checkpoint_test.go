package checkpoint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/coyote-sim/coyote/internal/asm"
	"github.com/coyote-sim/coyote/internal/core"
	"github.com/coyote-sim/coyote/internal/kernels"
	"github.com/coyote-sim/coyote/internal/trace"
)

// saveMidRun runs a kernel to a mid-point cycle and checkpoints it,
// returning the file path.
func saveMidRun(t *testing.T) string {
	t.Helper()
	const kernel = "axpy-scalar"
	p := kernels.Params{N: 64, Cores: 2}
	cfg := core.DefaultConfig(2)

	k, err := kernels.Get(kernel)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(k.Source)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.LoadProgram(prog)
	k.Setup(sys.Mem, sys.MustSymbol("args"), p)
	tw := trace.NewWriter(cfg.Cores)
	sys.Tracer = tw
	if _, stopped, err := sys.RunTo(500); err != nil {
		t.Fatal(err)
	} else if !stopped {
		t.Fatal("kernel finished before cycle 500; pick a longer run")
	}
	path := filepath.Join(t.TempDir(), "mid.ckpt")
	meta := Meta{Kernel: kernel, Params: p, Config: cfg}
	if err := Save(path, meta, prog, sys, tw); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := saveMidRun(t)
	img, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if img.Meta.Kernel != "axpy-scalar" || img.Meta.Params.N != 64 || img.Meta.Config.Cores != 2 {
		t.Fatalf("meta did not round trip: %+v", img.Meta)
	}
	if len(img.Prog.Text) == 0 || img.Prog.Entry == 0 {
		t.Fatal("program did not round trip")
	}
	sys, err := img.Restore(trace.NewWriter(img.Meta.Config.Cores))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Cycle() != 500 {
		t.Fatalf("restored clock %d, want 500", sys.Cycle())
	}
	if _, err := sys.Run(); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
}

// TestCorruptionRejected proves the all-or-nothing integrity contract:
// every single-byte flip anywhere in the file, every truncation, a
// foreign magic and a future schema version are all rejected on load —
// a checkpoint is never silently, partially or approximately loaded.
func TestCorruptionRejected(t *testing.T) {
	path := saveMidRun(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Byte flips at representative positions: magic, version, length,
	// early payload, mid payload, last payload byte, checksum itself.
	positions := []int{0, 9, 15, 25, len(data) / 2, len(data) - 33, len(data) - 1}
	for _, pos := range positions {
		bad := append([]byte(nil), data...)
		bad[pos] ^= 0x40
		if _, err := Decode(bad); err == nil {
			t.Errorf("flipped byte %d of %d: not rejected", pos, len(data))
		}
	}

	// Truncations, including cutting inside the header and checksum.
	for _, n := range []int{0, 4, len(Magic) + 11, 40, len(data) / 2, len(data) - 1} {
		if _, err := Decode(data[:n]); err == nil {
			t.Errorf("truncation to %d of %d bytes: not rejected", n, len(data))
		}
	}

	// Appended garbage changes the checksummed region's implied extent.
	if _, err := Decode(append(append([]byte(nil), data...), 0xEE)); err == nil {
		t.Error("trailing garbage byte: not rejected")
	}

	// A well-formed file of a future schema version must be refused with
	// a version message, not misparsed.
	future := append([]byte(nil), data...)
	future[len(Magic)] = SchemaVersion + 1
	_, err = Decode(future)
	if err == nil {
		t.Fatal("future schema version: not rejected")
	}
	if !strings.Contains(err.Error(), "schema version") {
		// (The flipped version byte also breaks the checksum; the version
		// check must win so the user sees the actionable message.)
		t.Errorf("future version rejected with %q, want a schema-version error", err)
	}
}
