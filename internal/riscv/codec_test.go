package riscv

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// allOps returns every opcode with an encoding row.
func allOps() []Op {
	var ops []Op
	for op := Op(1); op < opMax; op++ {
		if encodeRows[op] != nil {
			ops = append(ops, op)
		}
	}
	return ops
}

func TestEveryOpHasEncoding(t *testing.T) {
	for op := Op(1); op < opMax; op++ {
		if encodeRows[op] == nil {
			t.Errorf("op %v has no encoding row", op)
		}
		if op.String() == "invalid" {
			t.Errorf("op %d has no name", op)
		}
	}
}

func TestEncodingMaskCoversMatch(t *testing.T) {
	for _, r := range encTable {
		if r.match&^r.mask != 0 {
			t.Errorf("%v: match bits %#x outside mask %#x", r.op, r.match, r.mask)
		}
		if r.mask&0x7f != 0x7f {
			t.Errorf("%v: major opcode not fully fixed", r.op)
		}
	}
}

// randInstr builds a random but encodable Instr for op.
func randInstr(rng *rand.Rand, op Op) Instr {
	r := encodeRows[op]
	in := Instr{Op: op, VM: true}
	reg := func() uint8 { return uint8(rng.Intn(32)) }
	switch r.f {
	case ofsR, ofsVSETVL:
		in.Rd, in.Rs1, in.Rs2 = reg(), reg(), reg()
	case ofsR4:
		in.Rd, in.Rs1, in.Rs2, in.Rs3 = reg(), reg(), reg(), reg()
	case ofsI:
		in.Rd, in.Rs1 = reg(), reg()
		in.Imm = int64(rng.Intn(4096) - 2048)
	case ofsISh6:
		in.Rd, in.Rs1 = reg(), reg()
		in.Imm = int64(rng.Intn(64))
	case ofsISh5:
		in.Rd, in.Rs1 = reg(), reg()
		in.Imm = int64(rng.Intn(32))
	case ofsS:
		in.Rs1, in.Rs2 = reg(), reg()
		in.Imm = int64(rng.Intn(4096) - 2048)
	case ofsB:
		in.Rs1, in.Rs2 = reg(), reg()
		in.Imm = int64(rng.Intn(8192)-4096) &^ 1
	case ofsU:
		in.Rd = reg()
		in.Imm = int64(rng.Intn(1 << 20))
	case ofsJ:
		in.Rd = reg()
		in.Imm = int64(rng.Intn(1<<21)-(1<<20)) &^ 1
	case ofsCSR:
		in.Rd, in.Rs1 = reg(), reg()
		in.Imm = int64(rng.Intn(1 << 12))
	case ofsRdRs1, ofsOPSX:
		in.Rd, in.Rs1 = reg(), reg()
	case ofsVL, ofsVS:
		in.Rd, in.Rs1 = reg(), reg()
		in.VM = rng.Intn(2) == 0
	case ofsVLS, ofsVSS, ofsVLX, ofsVSX:
		in.Rd, in.Rs1, in.Rs2 = reg(), reg(), reg()
		in.VM = rng.Intn(2) == 0
	case ofsOPVV, ofsOPVX:
		in.Rd, in.Rs1, in.Rs2 = reg(), reg(), reg()
		if r.mask&(1<<25) == 0 {
			in.VM = rng.Intn(2) == 0
		}
	case ofsOPVI:
		in.Rd, in.Rs2 = reg(), reg()
		in.Imm = int64(rng.Intn(32) - 16)
		if r.mask&(1<<25) == 0 {
			in.VM = rng.Intn(2) == 0
		}
	case ofsOPMV:
		in.Rd, in.Rs2 = reg(), reg()
		in.VM = rng.Intn(2) == 0
	case ofsOPMVV:
		in.Rd = reg()
		in.VM = rng.Intn(2) == 0
	case ofsVSETVLI:
		in.Rd, in.Rs1 = reg(), reg()
		vt, _ := EncodeVType(VType{SEW: 64, LMUL: 1 << uint(rng.Intn(4)), TA: true, MA: true})
		in.Imm = vt
	case ofsVSETIVLI:
		in.Rd, in.Rs1 = reg(), uint8(rng.Intn(32))
		vt, _ := EncodeVType(VType{SEW: 32, LMUL: 1})
		in.Imm = vt
	}
	// vmv.* and friends have vs2 fixed to zero in the encoding; the decoder
	// returns Rs2 = 0 for them, so zero it here for a faithful round-trip.
	if r.mask&(0x1f<<20) != 0 && (r.f == ofsOPVV || r.f == ofsOPVX || r.f == ofsOPVI) {
		in.Rs2 = 0
	}
	return in
}

// TestEncodeDecodeRoundTrip is the central property test: for every opcode,
// encode(instr) must decode back to the identical Instr.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, op := range allOps() {
		for trial := 0; trial < 64; trial++ {
			want := randInstr(rng, op)
			raw, err := Encode(want)
			if err != nil {
				t.Fatalf("%v: encode: %v", op, err)
			}
			got, err := Decode(raw)
			if err != nil {
				t.Fatalf("%v: decode(%#08x): %v", op, raw, err)
			}
			if got != want {
				t.Fatalf("%v: round trip mismatch\nword %#08x\nwant %+v\ngot  %+v",
					op, raw, want, got)
			}
		}
	}
}

// TestDecodeUnambiguous checks that no two encoding rows can claim the same
// word: for every encoded random instruction exactly one row matches.
func TestDecodeUnambiguous(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, op := range allOps() {
		for trial := 0; trial < 16; trial++ {
			raw := MustEncode(randInstr(rng, op))
			matches := 0
			for _, r := range encTable {
				if raw&r.mask == r.match {
					matches++
				}
			}
			if matches != 1 {
				t.Fatalf("%v: word %#08x matched %d rows", op, raw, matches)
			}
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, w := range []uint32{0, 0xffffffff, 0x00000002, 0xdeadbeef} {
		if in, err := Decode(w); err == nil {
			// A lucky random word may decode; only all-zero/all-one must fail.
			if w == 0 || w == 0xffffffff {
				t.Errorf("Decode(%#08x) = %v, want error", w, in)
			}
		}
	}
}

func TestKnownEncodings(t *testing.T) {
	// Golden words cross-checked against the RISC-V spec examples /
	// GNU assembler output.
	cases := []struct {
		in   Instr
		want uint32
	}{
		// addi a0, a1, 42
		{Instr{Op: OpADDI, Rd: 10, Rs1: 11, Imm: 42, VM: true}, 0x02a58513},
		// add a0, a1, a2
		{Instr{Op: OpADD, Rd: 10, Rs1: 11, Rs2: 12, VM: true}, 0x00c58533},
		// lui t0, 0x12345
		{Instr{Op: OpLUI, Rd: 5, Imm: 0x12345, VM: true}, 0x123452b7},
		// ld a0, 16(sp)
		{Instr{Op: OpLD, Rd: 10, Rs1: 2, Imm: 16, VM: true}, 0x01013503},
		// sd a0, 8(sp)
		{Instr{Op: OpSD, Rs1: 2, Rs2: 10, Imm: 8, VM: true}, 0x00a13423},
		// beq a0, a1, +8
		{Instr{Op: OpBEQ, Rs1: 10, Rs2: 11, Imm: 8, VM: true}, 0x00b50463},
		// jal ra, +16
		{Instr{Op: OpJAL, Rd: 1, Imm: 16, VM: true}, 0x010000ef},
		// ecall
		{Instr{Op: OpECALL, VM: true}, 0x00000073},
		// mul a0, a1, a2
		{Instr{Op: OpMUL, Rd: 10, Rs1: 11, Rs2: 12, VM: true}, 0x02c58533},
		// csrrs a0, mhartid, zero
		{Instr{Op: OpCSRRS, Rd: 10, Rs1: 0, Imm: CSRMHartID, VM: true}, 0xf1402573},
	}
	for _, c := range cases {
		got, err := Encode(c.in)
		if err != nil {
			t.Fatalf("%v: %v", c.in.Op, err)
		}
		if got != c.want {
			t.Errorf("Encode(%v %s) = %#08x, want %#08x",
				c.in.Op, Disasm(c.in), got, c.want)
		}
	}
}

func TestVTypeRoundTrip(t *testing.T) {
	f := func(sewSel, lmulSel uint8, ta, ma bool) bool {
		vt := VType{
			SEW:  8 << (sewSel % 4),
			LMUL: 1 << (lmulSel % 4),
			TA:   ta,
			MA:   ma,
		}
		enc, err := EncodeVType(vt)
		if err != nil {
			return false
		}
		dec, ok := DecodeVType(uint64(enc))
		return ok && dec == vt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeVTypeIllegal(t *testing.T) {
	if _, ok := DecodeVType(1 << 63); ok {
		t.Error("vill bit should make DecodeVType fail")
	}
	if _, ok := DecodeVType(0x7); ok {
		t.Error("fractional LMUL should be rejected")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		op   Op
		want Class
	}{
		{OpLD, ClassLoad},
		{OpSD, ClassStore},
		{OpBEQ, ClassBranch},
		{OpJAL, ClassBranch},
		{OpADD, ClassALU},
		{OpFADDD, ClassFloat},
		{OpVLE64, ClassVector | ClassVectorMem | ClassLoad},
		{OpVSE64, ClassVector | ClassVectorMem | ClassStore},
		{OpVLUXEI64, ClassVector | ClassVectorMem | ClassLoad},
		{OpVSUXEI64, ClassVector | ClassVectorMem | ClassStore},
		{OpVFMACCVV, ClassVector},
		{OpAMOADDD, ClassAtomic | ClassLoad | ClassStore},
		{OpCSRRS, ClassCSR | ClassSystem},
	}
	for _, c := range cases {
		if got := c.op.Classify(); got != c.want {
			t.Errorf("%v.Classify() = %b, want %b", c.op, got, c.want)
		}
	}
}

func TestDisasmSmoke(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, op := range allOps() {
		in := randInstr(rng, op)
		s := Disasm(in)
		if s == "" || s == "invalid" {
			t.Errorf("Disasm(%v) = %q", op, s)
		}
	}
}

// TestDecodeEncodeIdempotent: for arbitrary words that decode, re-encoding
// the decoded form and decoding again must yield the same instruction.
// (encode∘decode is not the identity on raw words because don't-care bits
// — FP rounding modes, AMO aq/rl — are canonicalised.)
func TestDecodeEncodeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	decoded := 0
	for i := 0; i < 200000; i++ {
		w := rng.Uint32()
		in, err := Decode(w)
		if err != nil {
			continue
		}
		decoded++
		w2, err := Encode(in)
		if err != nil {
			t.Fatalf("%v (from %#08x): %v", in.Op, w, err)
		}
		in2, err := Decode(w2)
		if err != nil {
			t.Fatalf("re-decode %#08x (canonical of %#08x): %v", w2, w, err)
		}
		if in2 != in {
			t.Fatalf("not idempotent: %#08x → %+v → %#08x → %+v", w, in, w2, in2)
		}
	}
	if decoded < 1000 {
		t.Fatalf("only %d random words decoded; suspicious", decoded)
	}
}
