package riscv

import "fmt"

// sext sign-extends the low bits of v.
func sext(v uint64, bits uint) int64 {
	shift := 64 - bits
	return int64(v<<shift) >> shift
}

// Decode translates a 32-bit instruction word into an Instr.
// Unrecognised words return an error (the CPU raises an illegal
// instruction in that case).
func Decode(raw uint32) (Instr, error) {
	bucket := decodeBuckets[raw&0x7f]
	for i := range bucket {
		r := &bucket[i]
		if raw&r.mask == r.match {
			return unpack(r, raw), nil
		}
	}
	return Instr{}, fmt.Errorf("riscv: cannot decode %#08x", raw) //coyote:alloc-ok decode errors fault the hart and end the run
}

func unpack(r *encRow, raw uint32) Instr {
	in := Instr{Op: r.op, VM: true}
	rd := uint8(raw >> 7 & 0x1f)
	rs1 := uint8(raw >> 15 & 0x1f)
	rs2 := uint8(raw >> 20 & 0x1f)
	switch r.f {
	case ofsNone:
	case ofsR:
		in.Rd, in.Rs1, in.Rs2 = rd, rs1, rs2
	case ofsR4:
		in.Rd, in.Rs1, in.Rs2 = rd, rs1, rs2
		in.Rs3 = uint8(raw >> 27 & 0x1f)
	case ofsI:
		in.Rd, in.Rs1 = rd, rs1
		in.Imm = sext(uint64(raw>>20), 12)
	case ofsISh6:
		in.Rd, in.Rs1 = rd, rs1
		in.Imm = int64(raw >> 20 & 0x3f)
	case ofsISh5:
		in.Rd, in.Rs1 = rd, rs1
		in.Imm = int64(raw >> 20 & 0x1f)
	case ofsS:
		in.Rs1, in.Rs2 = rs1, rs2
		in.Imm = sext(uint64(raw>>25<<5|raw>>7&0x1f), 12)
	case ofsB:
		in.Rs1, in.Rs2 = rs1, rs2
		imm := (raw>>31&1)<<12 | (raw>>7&1)<<11 | (raw>>25&0x3f)<<5 | (raw>>8&0xf)<<1
		in.Imm = sext(uint64(imm), 13)
	case ofsU:
		in.Rd = rd
		in.Imm = int64(raw >> 12 & 0xfffff)
	case ofsJ:
		in.Rd = rd
		imm := (raw>>31&1)<<20 | (raw>>12&0xff)<<12 | (raw>>20&1)<<11 | (raw>>21&0x3ff)<<1
		in.Imm = sext(uint64(imm), 21)
	case ofsCSR:
		in.Rd, in.Rs1 = rd, rs1 // rs1 doubles as uimm5 for the *I forms
		in.Imm = int64(raw >> 20 & 0xfff)
	case ofsRdRs1:
		in.Rd, in.Rs1 = rd, rs1
	case ofsVL, ofsVS:
		in.Rd, in.Rs1 = rd, rs1
		in.VM = raw>>25&1 == 1
	case ofsVLS, ofsVSS, ofsVLX, ofsVSX:
		in.Rd, in.Rs1, in.Rs2 = rd, rs1, rs2
		in.VM = raw>>25&1 == 1
	case ofsOPVV, ofsOPVX:
		in.Rd, in.Rs1, in.Rs2 = rd, rs1, rs2
		in.VM = raw>>25&1 == 1
	case ofsOPVI:
		in.Rd, in.Rs2 = rd, rs2
		in.Imm = sext(uint64(rs1), 5)
		in.VM = raw>>25&1 == 1
	case ofsOPMV:
		in.Rd, in.Rs2 = rd, rs2
		in.VM = raw>>25&1 == 1
	case ofsOPSX:
		in.Rd, in.Rs1 = rd, rs1
	case ofsOPMVV:
		in.Rd = rd
		in.VM = raw>>25&1 == 1
	case ofsVSETVLI:
		in.Rd, in.Rs1 = rd, rs1
		in.Imm = int64(raw >> 20 & 0x7ff)
	case ofsVSETIVLI:
		in.Rd, in.Rs1 = rd, rs1 // Rs1 holds uimm5
		in.Imm = int64(raw >> 20 & 0x3ff)
	case ofsVSETVL:
		in.Rd, in.Rs1, in.Rs2 = rd, rs1, rs2
	}
	return in
}

// Encode translates an Instr into its 32-bit machine word.
func Encode(in Instr) (uint32, error) {
	if int(in.Op) >= len(encodeRows) || encodeRows[in.Op] == nil {
		return 0, fmt.Errorf("riscv: no encoding for op %v", in.Op)
	}
	r := encodeRows[in.Op]
	raw := r.match
	rd := uint32(in.Rd&0x1f) << 7
	rs1 := uint32(in.Rs1&0x1f) << 15
	rs2 := uint32(in.Rs2&0x1f) << 20
	vm := uint32(0)
	if in.VM {
		vm = 1 << 25
	}
	switch r.f {
	case ofsNone:
	case ofsR:
		raw |= rd | rs1 | rs2
	case ofsR4:
		raw |= rd | rs1 | rs2 | uint32(in.Rs3&0x1f)<<27
		raw |= 0b111 << 12 // rm = dynamic
	case ofsI:
		raw |= rd | rs1 | uint32(in.Imm&0xfff)<<20
	case ofsISh6:
		raw |= rd | rs1 | uint32(in.Imm&0x3f)<<20
	case ofsISh5:
		raw |= rd | rs1 | uint32(in.Imm&0x1f)<<20
	case ofsS:
		imm := uint32(in.Imm & 0xfff)
		raw |= rs1 | rs2 | imm>>5<<25 | imm&0x1f<<7
	case ofsB:
		imm := uint32(in.Imm & 0x1fff)
		raw |= rs1 | rs2 |
			imm>>12&1<<31 | imm>>5&0x3f<<25 | imm>>1&0xf<<8 | imm>>11&1<<7
	case ofsU:
		raw |= rd | uint32(in.Imm&0xfffff)<<12
	case ofsJ:
		imm := uint32(in.Imm & 0x1fffff)
		raw |= rd |
			imm>>20&1<<31 | imm>>1&0x3ff<<21 | imm>>11&1<<20 | imm>>12&0xff<<12
	case ofsCSR:
		raw |= rd | rs1 | uint32(in.Imm&0xfff)<<20
	case ofsRdRs1:
		raw |= rd | rs1
		if r.mask&(7<<12) == 0 {
			raw |= 0b111 << 12 // rm = dynamic
		}
	case ofsVL, ofsVS:
		raw |= rd | rs1 | vm
	case ofsVLS, ofsVSS, ofsVLX, ofsVSX:
		raw |= rd | rs1 | rs2 | vm
	case ofsOPVV, ofsOPVX:
		raw |= rd | rs1 | rs2
		if r.mask&(1<<25) == 0 {
			raw |= vm
		}
	case ofsOPVI:
		raw |= rd | rs2 | uint32(in.Imm&0x1f)<<15
		if r.mask&(1<<25) == 0 {
			raw |= vm
		}
	case ofsOPMV:
		raw |= rd | rs2 | vm
	case ofsOPSX:
		raw |= rd | rs1
	case ofsOPMVV:
		raw |= rd | vm
	case ofsVSETVLI:
		raw |= rd | rs1 | uint32(in.Imm&0x7ff)<<20
	case ofsVSETIVLI:
		raw |= rd | rs1 | uint32(in.Imm&0x3ff)<<20
	case ofsVSETVL:
		raw |= rd | rs1 | rs2
	}
	// The FP binary/R4 ops with dynamic rm: for ofsR rows whose mask leaves
	// funct3 free, encode rm = dynamic.
	if r.f == ofsR && r.mask&(7<<12) == 0 {
		raw |= 0b111 << 12
	}
	return raw, nil
}

// MustEncode is Encode but panics on error; for use in tests and kernel
// builders where the instruction is statically known to be valid.
func MustEncode(in Instr) uint32 {
	w, err := Encode(in)
	if err != nil {
		panic(err)
	}
	return w
}
