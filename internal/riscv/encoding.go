package riscv

// Instr is a decoded instruction. Field meaning depends on the format:
// scalar register numbers live in Rd/Rs1/Rs2/Rs3; vector register numbers
// reuse the same fields (the opcode tells which file they index). For
// U/J-format Imm holds the raw immediate field (U: the 20-bit upper
// immediate, not shifted); for CSR ops Imm holds the 12-bit CSR address.
// VM is the vector mask bit: true means unmasked (the common case).
type Instr struct {
	Op           Op
	Rd, Rs1, Rs2 uint8
	Rs3          uint8
	Imm          int64
	VM           bool
}

// operand format identifiers — how dynamic fields pack into the word.
type ofs uint8

const (
	ofsNone     ofs = iota
	ofsR            // rd, rs1, rs2
	ofsR4           // rd, rs1, rs2, rs3
	ofsI            // rd, rs1, imm12
	ofsISh6         // rd, rs1, shamt[5:0]
	ofsISh5         // rd, rs1, shamt[4:0]
	ofsS            // rs1, rs2, imm12 (S split)
	ofsB            // rs1, rs2, imm13 (B split)
	ofsU            // rd, imm20 (raw field)
	ofsJ            // rd, imm21 (J split)
	ofsCSR          // rd, rs1 (reg or uimm5), csr12 in Imm
	ofsRdRs1        // rd, rs1 (FSQRT/FCVT/FMV/FCLASS)
	ofsVL           // vd(rd), rs1, vm             (unit-stride load)
	ofsVLS          // vd(rd), rs1, rs2, vm        (strided load)
	ofsVLX          // vd(rd), rs1, vs2(rs2), vm   (indexed load)
	ofsVS           // vs3(rd), rs1, vm            (unit-stride store)
	ofsVSS          // vs3(rd), rs1, rs2, vm       (strided store)
	ofsVSX          // vs3(rd), rs1, vs2(rs2), vm  (indexed store)
	ofsOPVV         // vd, vs1(rs1), vs2, vm
	ofsOPVX         // vd, rs1, vs2, vm (also .vf)
	ofsOPVI         // vd, imm5, vs2, vm
	ofsOPMV         // vd/rd, vs2, vm (unary: vs1 field fixed)
	ofsOPSX         // vd, rs1 (vmv.s.x / vfmv.s.f: vs2 fixed, vm=1)
	ofsOPMVV        // vd only (vid.v: vs1, vs2 fixed)
	ofsVSETVLI      // rd, rs1, zimm11
	ofsVSETIVLI     // rd, uimm5(rs1), zimm10
	ofsVSETVL       // rd, rs1, rs2
)

// encRow ties an opcode to its fixed-bit pattern and operand format.
type encRow struct {
	op    Op
	f     ofs
	mask  uint32 // which bits are fixed
	match uint32 // their values
}

// Major opcodes (bits 6:0).
const (
	opcLOAD    = 0b0000011
	opcLOADFP  = 0b0000111
	opcMISCMEM = 0b0001111
	opcOPIMM   = 0b0010011
	opcAUIPC   = 0b0010111
	opcOPIMM32 = 0b0011011
	opcSTORE   = 0b0100011
	opcSTOREFP = 0b0100111
	opcAMO     = 0b0101111
	opcOP      = 0b0110011
	opcLUI     = 0b0110111
	opcOP32    = 0b0111011
	opcMADD    = 0b1000011
	opcMSUB    = 0b1000111
	opcNMSUB   = 0b1001011
	opcNMADD   = 0b1001111
	opcOPFP    = 0b1010011
	opcOPV     = 0b1010111
	opcBRANCH  = 0b1100011
	opcJALR    = 0b1100111
	opcJAL     = 0b1101111
	opcSYSTEM  = 0b1110011
)

// Fixed-bit builders. Each returns (mask, match) over the 32-bit word.

func fixOpc(opc uint32) (uint32, uint32) { return 0x7f, opc }

func fixOpcF3(opc, f3 uint32) (uint32, uint32) {
	return 0x7f | 7<<12, opc | f3<<12
}

func fixR(opc, f3, f7 uint32) (uint32, uint32) {
	return 0x7f | 7<<12 | 0x7f<<25, opc | f3<<12 | f7<<25
}

// fixFR: funct7 fixed, funct3 is the (dynamic) rounding mode.
func fixFR(f7 uint32) (uint32, uint32) {
	return 0x7f | 0x7f<<25, opcOPFP | f7<<25
}

// fixFR3: funct7 and funct3 both fixed (sign-injection, min/max, compares).
func fixFR3(f7, f3 uint32) (uint32, uint32) {
	return 0x7f | 7<<12 | 0x7f<<25, opcOPFP | f3<<12 | f7<<25
}

// fixFU: funct7 and rs2 fixed, rm dynamic (FSQRT, FCVT).
func fixFU(f7, rs2 uint32) (uint32, uint32) {
	return 0x7f | 0x1f<<20 | 0x7f<<25, opcOPFP | rs2<<20 | f7<<25
}

// fixFU3: funct7, rs2 and funct3 all fixed (FMV, FCLASS).
func fixFU3(f7, rs2, f3 uint32) (uint32, uint32) {
	return 0x7f | 7<<12 | 0x1f<<20 | 0x7f<<25, opcOPFP | f3<<12 | rs2<<20 | f7<<25
}

// fixR4: fmt in bits 26:25 fixed, rm dynamic.
func fixR4(opc, fmt2 uint32) (uint32, uint32) {
	return 0x7f | 3<<25, opc | fmt2<<25
}

// fixSh6: OP-IMM shift with 6-bit shamt: bits 31:26 fixed.
func fixSh6(opc, f3, f6 uint32) (uint32, uint32) {
	return 0x7f | 7<<12 | 0x3f<<26, opc | f3<<12 | f6<<26
}

// fixAMO: funct5 in bits 31:27 fixed; aq/rl (26:25) left dynamic.
func fixAMO(f3, f5 uint32) (uint32, uint32) {
	return 0x7f | 7<<12 | 0x1f<<27, opcAMO | f3<<12 | f5<<27
}

// fixLR: LR has rs2 fixed to zero as well.
func fixLR(f3, f5 uint32) (uint32, uint32) {
	m, v := fixAMO(f3, f5)
	return m | 0x1f<<20, v
}

// Vector memory ops. width is the funct3 field; mop in bits 27:26;
// nf (31:29) and mew (28) fixed to zero; vm (25) dynamic.
func fixVMem(opc, width, mop uint32, lumopFixed bool) (uint32, uint32) {
	mask := uint32(0x7f | 7<<12 | 3<<26 | 1<<28 | 7<<29)
	match := opc | width<<12 | mop<<26
	if lumopFixed { // unit-stride: rs2 field is lumop = 00000
		mask |= 0x1f << 20
	}
	return mask, match
}

// Vector arithmetic: funct6 (31:26) and funct3 fixed; vm dynamic.
func fixOPV(f6, f3 uint32) (uint32, uint32) {
	return 0x7f | 7<<12 | 0x3f<<26, opcOPV | f3<<12 | f6<<26
}

// fixOPVvs2: vs2 field fixed (vmv.v.*, vmv.s.x).
func fixOPVvs2(f6, f3, vs2 uint32, vm1 bool) (uint32, uint32) {
	m, v := fixOPV(f6, f3)
	m |= 0x1f << 20
	v |= vs2 << 20
	if vm1 {
		m |= 1 << 25
		v |= 1 << 25
	}
	return m, v
}

// fixOPVvs1: vs1 field fixed (unary ops: vmv.x.s, vfmv.f.s, vfsqrt.v, vid.v).
func fixOPVvs1(f6, f3, vs1 uint32, alsoVS2 bool) (uint32, uint32) {
	m, v := fixOPV(f6, f3)
	m |= 0x1f << 15
	v |= vs1 << 15
	if alsoVS2 {
		m |= 0x1f << 20
	}
	return m, v
}

// RVV funct3 values.
const (
	opivv = 0b000
	opfvv = 0b001
	opmvv = 0b010
	opivi = 0b011
	opivx = 0b100
	opfvf = 0b101
	opmvx = 0b110
	opcfg = 0b111
)

// vector load/store width encodings (funct3 of LOAD-FP/STORE-FP).
const (
	vw8  = 0b000
	vw16 = 0b101
	vw32 = 0b110
	vw64 = 0b111
)

// vector mop values.
const (
	mopUnit    = 0b00
	mopIndexU  = 0b01
	mopStrided = 0b10
)

// encTable lists the fixed-bit pattern and operand format for every opcode.
var encTable []encRow

func init() {
	add := func(op Op, f ofs, mask, match uint32) {
		encTable = append(encTable, encRow{op: op, f: f, mask: mask, match: match})
	}

	// --- RV64I ---
	m, v := fixOpc(opcLUI)
	add(OpLUI, ofsU, m, v)
	m, v = fixOpc(opcAUIPC)
	add(OpAUIPC, ofsU, m, v)
	m, v = fixOpc(opcJAL)
	add(OpJAL, ofsJ, m, v)
	m, v = fixOpcF3(opcJALR, 0)
	add(OpJALR, ofsI, m, v)

	branches := []struct {
		op Op
		f3 uint32
	}{{OpBEQ, 0}, {OpBNE, 1}, {OpBLT, 4}, {OpBGE, 5}, {OpBLTU, 6}, {OpBGEU, 7}}
	for _, b := range branches {
		m, v = fixOpcF3(opcBRANCH, b.f3)
		add(b.op, ofsB, m, v)
	}

	loads := []struct {
		op Op
		f3 uint32
	}{{OpLB, 0}, {OpLH, 1}, {OpLW, 2}, {OpLD, 3}, {OpLBU, 4}, {OpLHU, 5}, {OpLWU, 6}}
	for _, l := range loads {
		m, v = fixOpcF3(opcLOAD, l.f3)
		add(l.op, ofsI, m, v)
	}

	stores := []struct {
		op Op
		f3 uint32
	}{{OpSB, 0}, {OpSH, 1}, {OpSW, 2}, {OpSD, 3}}
	for _, s := range stores {
		m, v = fixOpcF3(opcSTORE, s.f3)
		add(s.op, ofsS, m, v)
	}

	opimm := []struct {
		op Op
		f3 uint32
	}{{OpADDI, 0}, {OpSLTI, 2}, {OpSLTIU, 3}, {OpXORI, 4}, {OpORI, 6}, {OpANDI, 7}}
	for _, o := range opimm {
		m, v = fixOpcF3(opcOPIMM, o.f3)
		add(o.op, ofsI, m, v)
	}
	m, v = fixSh6(opcOPIMM, 1, 0b000000)
	add(OpSLLI, ofsISh6, m, v)
	m, v = fixSh6(opcOPIMM, 5, 0b000000)
	add(OpSRLI, ofsISh6, m, v)
	m, v = fixSh6(opcOPIMM, 5, 0b010000)
	add(OpSRAI, ofsISh6, m, v)

	rops := []struct {
		op     Op
		f3, f7 uint32
	}{
		{OpADD, 0, 0}, {OpSUB, 0, 0x20}, {OpSLL, 1, 0}, {OpSLT, 2, 0},
		{OpSLTU, 3, 0}, {OpXOR, 4, 0}, {OpSRL, 5, 0}, {OpSRA, 5, 0x20},
		{OpOR, 6, 0}, {OpAND, 7, 0},
		{OpMUL, 0, 1}, {OpMULH, 1, 1}, {OpMULHSU, 2, 1}, {OpMULHU, 3, 1},
		{OpDIV, 4, 1}, {OpDIVU, 5, 1}, {OpREM, 6, 1}, {OpREMU, 7, 1},
	}
	for _, o := range rops {
		m, v = fixR(opcOP, o.f3, o.f7)
		add(o.op, ofsR, m, v)
	}

	m, v = fixOpcF3(opcOPIMM32, 0)
	add(OpADDIW, ofsI, m, v)
	m, v = fixR(opcOPIMM32, 1, 0)
	add(OpSLLIW, ofsISh5, m, v)
	m, v = fixR(opcOPIMM32, 5, 0)
	add(OpSRLIW, ofsISh5, m, v)
	m, v = fixR(opcOPIMM32, 5, 0x20)
	add(OpSRAIW, ofsISh5, m, v)

	rops32 := []struct {
		op     Op
		f3, f7 uint32
	}{
		{OpADDW, 0, 0}, {OpSUBW, 0, 0x20}, {OpSLLW, 1, 0},
		{OpSRLW, 5, 0}, {OpSRAW, 5, 0x20},
		{OpMULW, 0, 1}, {OpDIVW, 4, 1}, {OpDIVUW, 5, 1},
		{OpREMW, 6, 1}, {OpREMUW, 7, 1},
	}
	for _, o := range rops32 {
		m, v = fixR(opcOP32, o.f3, o.f7)
		add(o.op, ofsR, m, v)
	}

	add(OpFENCE, ofsNone, 0x7f|7<<12, opcMISCMEM)
	add(OpFENCEI, ofsNone, 0x7f|7<<12, opcMISCMEM|1<<12)
	add(OpECALL, ofsNone, 0xffffffff, opcSYSTEM)
	add(OpEBREAK, ofsNone, 0xffffffff, opcSYSTEM|1<<20)

	// --- Zicsr ---
	csrs := []struct {
		op Op
		f3 uint32
	}{
		{OpCSRRW, 1}, {OpCSRRS, 2}, {OpCSRRC, 3},
		{OpCSRRWI, 5}, {OpCSRRSI, 6}, {OpCSRRCI, 7},
	}
	for _, c := range csrs {
		m, v = fixOpcF3(opcSYSTEM, c.f3)
		add(c.op, ofsCSR, m, v)
	}

	// --- A extension ---
	amoW := []struct {
		op Op
		f5 uint32
	}{
		{OpAMOADDW, 0b00000}, {OpAMOSWAPW, 0b00001},
		{OpAMOXORW, 0b00100}, {OpAMOANDW, 0b01100}, {OpAMOORW, 0b01000},
		{OpAMOMINW, 0b10000}, {OpAMOMAXW, 0b10100},
		{OpAMOMINUW, 0b11000}, {OpAMOMAXUW, 0b11100},
	}
	for _, a := range amoW {
		m, v = fixAMO(0b010, a.f5)
		add(a.op, ofsR, m, v)
		// .d variant: funct3 = 011, Op offset mirrors the W list order.
	}
	amoD := []struct {
		op Op
		f5 uint32
	}{
		{OpAMOADDD, 0b00000}, {OpAMOSWAPD, 0b00001},
		{OpAMOXORD, 0b00100}, {OpAMOANDD, 0b01100}, {OpAMOORD, 0b01000},
		{OpAMOMIND, 0b10000}, {OpAMOMAXD, 0b10100},
		{OpAMOMINUD, 0b11000}, {OpAMOMAXUD, 0b11100},
	}
	for _, a := range amoD {
		m, v = fixAMO(0b011, a.f5)
		add(a.op, ofsR, m, v)
	}
	m, v = fixLR(0b010, 0b00010)
	add(OpLRW, ofsRdRs1, m, v)
	m, v = fixAMO(0b010, 0b00011)
	add(OpSCW, ofsR, m, v)
	m, v = fixLR(0b011, 0b00010)
	add(OpLRD, ofsRdRs1, m, v)
	m, v = fixAMO(0b011, 0b00011)
	add(OpSCD, ofsR, m, v)

	// --- F/D loads & stores ---
	m, v = fixOpcF3(opcLOADFP, 0b010)
	add(OpFLW, ofsI, m, v)
	m, v = fixOpcF3(opcLOADFP, 0b011)
	add(OpFLD, ofsI, m, v)
	m, v = fixOpcF3(opcSTOREFP, 0b010)
	add(OpFSW, ofsS, m, v)
	m, v = fixOpcF3(opcSTOREFP, 0b011)
	add(OpFSD, ofsS, m, v)

	// --- F/D arithmetic ---
	// fmt bit: .s has funct7 LSB 0, .d has LSB 1.
	fr := []struct {
		op Op
		f7 uint32
	}{
		{OpFADDS, 0b0000000}, {OpFADDD, 0b0000001},
		{OpFSUBS, 0b0000100}, {OpFSUBD, 0b0000101},
		{OpFMULS, 0b0001000}, {OpFMULD, 0b0001001},
		{OpFDIVS, 0b0001100}, {OpFDIVD, 0b0001101},
	}
	for _, o := range fr {
		m, v = fixFR(o.f7)
		add(o.op, ofsR, m, v)
	}
	fr3 := []struct {
		op     Op
		f7, f3 uint32
	}{
		{OpFSGNJS, 0b0010000, 0}, {OpFSGNJNS, 0b0010000, 1}, {OpFSGNJXS, 0b0010000, 2},
		{OpFSGNJD, 0b0010001, 0}, {OpFSGNJND, 0b0010001, 1}, {OpFSGNJXD, 0b0010001, 2},
		{OpFMINS, 0b0010100, 0}, {OpFMAXS, 0b0010100, 1},
		{OpFMIND, 0b0010101, 0}, {OpFMAXD, 0b0010101, 1},
		{OpFEQS, 0b1010000, 2}, {OpFLTS, 0b1010000, 1}, {OpFLES, 0b1010000, 0},
		{OpFEQD, 0b1010001, 2}, {OpFLTD, 0b1010001, 1}, {OpFLED, 0b1010001, 0},
	}
	for _, o := range fr3 {
		m, v = fixFR3(o.f7, o.f3)
		add(o.op, ofsR, m, v)
	}
	fu := []struct {
		op       Op
		f7, rs2v uint32
	}{
		{OpFSQRTS, 0b0101100, 0}, {OpFSQRTD, 0b0101101, 0},
		{OpFCVTWS, 0b1100000, 0}, {OpFCVTWUS, 0b1100000, 1},
		{OpFCVTLS, 0b1100000, 2}, {OpFCVTLUS, 0b1100000, 3},
		{OpFCVTSW, 0b1101000, 0}, {OpFCVTSWU, 0b1101000, 1},
		{OpFCVTSL, 0b1101000, 2}, {OpFCVTSLU, 0b1101000, 3},
		{OpFCVTWD, 0b1100001, 0}, {OpFCVTWUD, 0b1100001, 1},
		{OpFCVTLD, 0b1100001, 2}, {OpFCVTLUD, 0b1100001, 3},
		{OpFCVTDW, 0b1101001, 0}, {OpFCVTDWU, 0b1101001, 1},
		{OpFCVTDL, 0b1101001, 2}, {OpFCVTDLU, 0b1101001, 3},
		{OpFCVTSD, 0b0100000, 1}, {OpFCVTDS, 0b0100001, 0},
	}
	for _, o := range fu {
		m, v = fixFU(o.f7, o.rs2v)
		add(o.op, ofsRdRs1, m, v)
	}
	fu3 := []struct {
		op           Op
		f7, rs2v, f3 uint32
	}{
		{OpFMVXW, 0b1110000, 0, 0}, {OpFCLASSS, 0b1110000, 0, 1},
		{OpFMVWX, 0b1111000, 0, 0},
		{OpFMVXD, 0b1110001, 0, 0}, {OpFCLASSD, 0b1110001, 0, 1},
		{OpFMVDX, 0b1111001, 0, 0},
	}
	for _, o := range fu3 {
		m, v = fixFU3(o.f7, o.rs2v, o.f3)
		add(o.op, ofsRdRs1, m, v)
	}
	r4s := []struct {
		op   Op
		opc  uint32
		fmt2 uint32
	}{
		{OpFMADDS, opcMADD, 0}, {OpFMSUBS, opcMSUB, 0},
		{OpFNMSUBS, opcNMSUB, 0}, {OpFNMADDS, opcNMADD, 0},
		{OpFMADDD, opcMADD, 1}, {OpFMSUBD, opcMSUB, 1},
		{OpFNMSUBD, opcNMSUB, 1}, {OpFNMADDD, opcNMADD, 1},
	}
	for _, o := range r4s {
		m, v = fixR4(o.opc, o.fmt2)
		add(o.op, ofsR4, m, v)
	}

	// --- V configuration ---
	// vsetvli: bit31 = 0.
	add(OpVSETVLI, ofsVSETVLI, uint32(0x7f|7<<12|1<<31), opcOPV|opcfg<<12)
	// vsetivli: bits 31:30 = 11.
	add(OpVSETIVLI, ofsVSETIVLI, uint32(0x7f|7<<12|3<<30), opcOPV|opcfg<<12|3<<30)
	// vsetvl: funct7 = 1000000.
	m, v = fixR(opcOPV, opcfg, 0b1000000)
	add(OpVSETVL, ofsVSETVL, m, v)

	// --- V memory ---
	vmem := []struct {
		op    Op
		opc   uint32
		width uint32
		mop   uint32
		f     ofs
	}{
		{OpVLE8, opcLOADFP, vw8, mopUnit, ofsVL},
		{OpVLE16, opcLOADFP, vw16, mopUnit, ofsVL},
		{OpVLE32, opcLOADFP, vw32, mopUnit, ofsVL},
		{OpVLE64, opcLOADFP, vw64, mopUnit, ofsVL},
		{OpVSE8, opcSTOREFP, vw8, mopUnit, ofsVS},
		{OpVSE16, opcSTOREFP, vw16, mopUnit, ofsVS},
		{OpVSE32, opcSTOREFP, vw32, mopUnit, ofsVS},
		{OpVSE64, opcSTOREFP, vw64, mopUnit, ofsVS},
		{OpVLSE8, opcLOADFP, vw8, mopStrided, ofsVLS},
		{OpVLSE16, opcLOADFP, vw16, mopStrided, ofsVLS},
		{OpVLSE32, opcLOADFP, vw32, mopStrided, ofsVLS},
		{OpVLSE64, opcLOADFP, vw64, mopStrided, ofsVLS},
		{OpVSSE8, opcSTOREFP, vw8, mopStrided, ofsVSS},
		{OpVSSE16, opcSTOREFP, vw16, mopStrided, ofsVSS},
		{OpVSSE32, opcSTOREFP, vw32, mopStrided, ofsVSS},
		{OpVSSE64, opcSTOREFP, vw64, mopStrided, ofsVSS},
		{OpVLUXEI8, opcLOADFP, vw8, mopIndexU, ofsVLX},
		{OpVLUXEI16, opcLOADFP, vw16, mopIndexU, ofsVLX},
		{OpVLUXEI32, opcLOADFP, vw32, mopIndexU, ofsVLX},
		{OpVLUXEI64, opcLOADFP, vw64, mopIndexU, ofsVLX},
		{OpVSUXEI8, opcSTOREFP, vw8, mopIndexU, ofsVSX},
		{OpVSUXEI16, opcSTOREFP, vw16, mopIndexU, ofsVSX},
		{OpVSUXEI32, opcSTOREFP, vw32, mopIndexU, ofsVSX},
		{OpVSUXEI64, opcSTOREFP, vw64, mopIndexU, ofsVSX},
	}
	for _, o := range vmem {
		m, v = fixVMem(o.opc, o.width, o.mop, o.mop == mopUnit)
		add(o.op, o.f, m, v)
	}

	// --- V integer arithmetic ---
	// triples of (vv, vx, vi) sharing a funct6; Op==OpInvalid marks "no form".
	vi3 := []struct {
		f6         uint32
		vv, vx, vi Op
	}{
		{0b000000, OpVADDVV, OpVADDVX, OpVADDVI},
		{0b000010, OpVSUBVV, OpVSUBVX, OpInvalid},
		{0b000011, OpInvalid, OpVRSUBVX, OpVRSUBVI},
		{0b001001, OpVANDVV, OpVANDVX, OpVANDVI},
		{0b001010, OpVORVV, OpVORVX, OpVORVI},
		{0b001011, OpVXORVV, OpVXORVX, OpVXORVI},
		{0b100101, OpVSLLVV, OpVSLLVX, OpVSLLVI},
		{0b101000, OpVSRLVV, OpVSRLVX, OpVSRLVI},
		{0b101001, OpVSRAVV, OpVSRAVX, OpVSRAVI},
		{0b000101, OpVMINVV, OpVMINVX, OpInvalid},
		{0b000111, OpVMAXVV, OpVMAXVX, OpInvalid},
		{0b011000, OpVMSEQVV, OpVMSEQVX, OpVMSEQVI},
		{0b011001, OpVMSNEVV, OpVMSNEVX, OpInvalid},
		{0b011011, OpVMSLTVV, OpVMSLTVX, OpInvalid},
		{0b011101, OpVMSLEVV, OpVMSLEVX, OpInvalid},
		{0b001111, OpInvalid, OpVSLIDEDOWNVX, OpVSLIDEDOWNVI},
	}
	for _, o := range vi3 {
		if o.vv != OpInvalid {
			m, v = fixOPV(o.f6, opivv)
			add(o.vv, ofsOPVV, m, v)
		}
		if o.vx != OpInvalid {
			m, v = fixOPV(o.f6, opivx)
			add(o.vx, ofsOPVX, m, v)
		}
		if o.vi != OpInvalid {
			m, v = fixOPV(o.f6, opivi)
			add(o.vi, ofsOPVI, m, v)
		}
	}
	// vmv.v.* : funct6 010111, vs2 fixed 0, vm fixed 1.
	m, v = fixOPVvs2(0b010111, opivv, 0, true)
	add(OpVMVVV, ofsOPVV, m, v)
	m, v = fixOPVvs2(0b010111, opivx, 0, true)
	add(OpVMVVX, ofsOPVX, m, v)
	m, v = fixOPVvs2(0b010111, opivi, 0, true)
	add(OpVMVVI, ofsOPVI, m, v)

	// --- V integer multiply / reductions / moves (OPM) ---
	vm2 := []struct {
		f6     uint32
		vv, vx Op
	}{
		{0b100101, OpVMULVV, OpVMULVX},
		{0b100111, OpVMULHVV, OpInvalid},
		{0b101101, OpVMACCVV, OpVMACCVX},
		{0b000000, OpVREDSUMVS, OpInvalid},
		{0b000111, OpVREDMAXVS, OpInvalid},
	}
	for _, o := range vm2 {
		if o.vv != OpInvalid {
			m, v = fixOPV(o.f6, opmvv)
			add(o.vv, ofsOPVV, m, v)
		}
		if o.vx != OpInvalid {
			m, v = fixOPV(o.f6, opmvx)
			add(o.vx, ofsOPVX, m, v)
		}
	}
	// vid.v: funct6 010100 (VMUNARY0), vs1 = 10001, vs2 = 00000.
	m, v = fixOPVvs1(0b010100, opmvv, 0b10001, true)
	add(OpVIDV, ofsOPMVV, m, v)
	// vmv.x.s: funct6 010000 (VWXUNARY0), vs1 = 00000; rd is an x register.
	m, v = fixOPVvs1(0b010000, opmvv, 0, false)
	add(OpVMVXS, ofsOPMV, m, v)
	// vmv.s.x: funct6 010000 (VRXUNARY0), vs2 = 00000, vm = 1.
	m, v = fixOPVvs2(0b010000, opmvx, 0, true)
	add(OpVMVSX, ofsOPSX, m, v)
	// vslide1down.vx: funct6 001111 (OPM).
	m, v = fixOPV(0b001111, opmvx)
	add(OpVSLIDE1DOWNVX, ofsOPVX, m, v)

	// --- V floating point ---
	vf2 := []struct {
		f6     uint32
		vv, vf Op
	}{
		{0b000000, OpVFADDVV, OpVFADDVF},
		{0b000010, OpVFSUBVV, OpVFSUBVF},
		{0b100100, OpVFMULVV, OpVFMULVF},
		{0b100000, OpVFDIVVV, OpVFDIVVF},
		{0b101100, OpVFMACCVV, OpVFMACCVF},
		{0b101110, OpVFNMSACVV, OpInvalid},
		{0b000100, OpVFMINVV, OpInvalid},
		{0b000110, OpVFMAXVV, OpInvalid},
		{0b000001, OpVFREDUSUMVS, OpInvalid},
		{0b000011, OpVFREDOSUMVS, OpInvalid},
	}
	for _, o := range vf2 {
		if o.vv != OpInvalid {
			m, v = fixOPV(o.f6, opfvv)
			add(o.vv, ofsOPVV, m, v)
		}
		if o.vf != OpInvalid {
			m, v = fixOPV(o.f6, opfvf)
			add(o.vf, ofsOPVX, m, v)
		}
	}
	// vfmv.v.f: funct6 010111, vs2 = 0, vm = 1.
	m, v = fixOPVvs2(0b010111, opfvf, 0, true)
	add(OpVFMVVF, ofsOPVX, m, v)
	// vfmv.f.s: funct6 010000 (VWFUNARY0), vs1 = 0.
	m, v = fixOPVvs1(0b010000, opfvv, 0, false)
	add(OpVFMVFS, ofsOPMV, m, v)
	// vfmv.s.f: funct6 010000 (VRFUNARY0), vs2 = 0, vm = 1.
	m, v = fixOPVvs2(0b010000, opfvf, 0, true)
	add(OpVFMVSF, ofsOPSX, m, v)
	// vfsqrt.v: funct6 010011 (VFUNARY1), vs1 = 00000.
	m, v = fixOPVvs1(0b010011, opfvv, 0, false)
	add(OpVFSQRTV, ofsOPMV, m, v)

	buildDecodeIndex()
	buildEncodeIndex()
}

// decode index: bucket rows by major opcode for fast lookup.
var decodeBuckets [128][]encRow

// encode index: row per Op.
var encodeRows [opMax]*encRow

func buildDecodeIndex() {
	for i := range encTable {
		r := &encTable[i]
		opc := r.match & 0x7f
		decodeBuckets[opc] = append(decodeBuckets[opc], *r)
	}
}

func buildEncodeIndex() {
	for i := range encTable {
		r := &encTable[i]
		if encodeRows[r.op] != nil {
			panic("riscv: duplicate encoding row for " + r.op.String())
		}
		encodeRows[r.op] = r
	}
}
