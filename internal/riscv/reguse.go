package riscv

// RegUse describes which architectural registers an instruction reads and
// writes, as bitmasks over the three register files. The Coyote
// orchestrator stalls a core when an instruction names a register with a
// pending memory access (RAW — and WAW, which would corrupt the
// completion bookkeeping), so this must be exact.
type RegUse struct {
	ReadsX, WritesX uint32
	ReadsF, WritesF uint32
	ReadsV, WritesV uint32
}

func xbit(r uint8) uint32 {
	if r == 0 {
		return 0 // x0 is hardwired; never a dependency
	}
	return 1 << r
}

func bit(r uint8) uint32 { return 1 << r }

// groupMask sets lmul consecutive vector-register bits starting at r.
// Register groups wrap at 32 only for malformed programs; mask off.
func groupMask(r uint8, lmul uint) uint32 {
	var m uint32
	for i := uint(0); i < lmul; i++ {
		m |= 1 << ((uint(r) + i) & 31)
	}
	return m
}

// RegUsage computes the register footprint of in. lmul is the current
// vector register-group multiplier (from vtype); pass 1 for scalar code.
func RegUsage(in Instr, lmul uint) RegUse {
	if lmul == 0 {
		lmul = 1
	}
	var u RegUse
	r := encodeRows[in.Op]
	if r == nil {
		return u
	}
	switch r.f {
	case ofsNone:
	case ofsR:
		cls := in.Op.Classify()
		switch {
		case cls&ClassAtomic != 0:
			u.ReadsX = xbit(in.Rs1) | xbit(in.Rs2)
			u.WritesX = xbit(in.Rd)
		case cls&ClassFloat != 0:
			switch in.Op {
			case OpFEQS, OpFLTS, OpFLES, OpFEQD, OpFLTD, OpFLED:
				u.ReadsF = bit(in.Rs1) | bit(in.Rs2)
				u.WritesX = xbit(in.Rd)
			default:
				u.ReadsF = bit(in.Rs1) | bit(in.Rs2)
				u.WritesF = bit(in.Rd)
			}
		default:
			u.ReadsX = xbit(in.Rs1) | xbit(in.Rs2)
			u.WritesX = xbit(in.Rd)
		}
	case ofsR4:
		u.ReadsF = bit(in.Rs1) | bit(in.Rs2) | bit(in.Rs3)
		u.WritesF = bit(in.Rd)
	case ofsI:
		u.ReadsX = xbit(in.Rs1)
		if in.Op == OpFLW || in.Op == OpFLD {
			u.WritesF = bit(in.Rd)
		} else {
			u.WritesX = xbit(in.Rd)
		}
	case ofsISh6, ofsISh5:
		u.ReadsX = xbit(in.Rs1)
		u.WritesX = xbit(in.Rd)
	case ofsS:
		u.ReadsX = xbit(in.Rs1)
		if in.Op == OpFSW || in.Op == OpFSD {
			u.ReadsF = bit(in.Rs2)
		} else {
			u.ReadsX |= xbit(in.Rs2)
		}
	case ofsB:
		u.ReadsX = xbit(in.Rs1) | xbit(in.Rs2)
	case ofsU, ofsJ:
		u.WritesX = xbit(in.Rd)
	case ofsCSR:
		u.WritesX = xbit(in.Rd)
		if in.Op == OpCSRRW || in.Op == OpCSRRS || in.Op == OpCSRRC {
			u.ReadsX = xbit(in.Rs1)
		}
	case ofsRdRs1:
		switch in.Op {
		case OpLRW, OpLRD:
			u.ReadsX = xbit(in.Rs1)
			u.WritesX = xbit(in.Rd)
		case OpFCVTWS, OpFCVTWUS, OpFCVTLS, OpFCVTLUS,
			OpFCVTWD, OpFCVTWUD, OpFCVTLD, OpFCVTLUD,
			OpFMVXW, OpFMVXD, OpFCLASSS, OpFCLASSD:
			u.ReadsF = bit(in.Rs1)
			u.WritesX = xbit(in.Rd)
		case OpFCVTSW, OpFCVTSWU, OpFCVTSL, OpFCVTSLU,
			OpFCVTDW, OpFCVTDWU, OpFCVTDL, OpFCVTDLU,
			OpFMVWX, OpFMVDX:
			u.ReadsX = xbit(in.Rs1)
			u.WritesF = bit(in.Rd)
		default: // fsqrt, fcvt.s.d, fcvt.d.s
			u.ReadsF = bit(in.Rs1)
			u.WritesF = bit(in.Rd)
		}
	case ofsVL:
		u.ReadsX = xbit(in.Rs1)
		u.WritesV = groupMask(in.Rd, lmul)
	case ofsVS:
		u.ReadsX = xbit(in.Rs1)
		u.ReadsV = groupMask(in.Rd, lmul)
	case ofsVLS:
		u.ReadsX = xbit(in.Rs1) | xbit(in.Rs2)
		u.WritesV = groupMask(in.Rd, lmul)
	case ofsVSS:
		u.ReadsX = xbit(in.Rs1) | xbit(in.Rs2)
		u.ReadsV = groupMask(in.Rd, lmul)
	case ofsVLX:
		u.ReadsX = xbit(in.Rs1)
		u.ReadsV = groupMask(in.Rs2, lmul)
		u.WritesV = groupMask(in.Rd, lmul)
	case ofsVSX:
		u.ReadsX = xbit(in.Rs1)
		u.ReadsV = groupMask(in.Rs2, lmul) | groupMask(in.Rd, lmul)
	case ofsOPVV:
		u.ReadsV = groupMask(in.Rs1, lmul) | groupMask(in.Rs2, lmul)
		u.WritesV = groupMask(in.Rd, lmul)
		if isMACC(in.Op) {
			u.ReadsV |= groupMask(in.Rd, lmul)
		}
		if isReduction(in.Op) {
			// Reductions read vs1[0] (scalar) and write vd[0] only.
			u.ReadsV = bit(in.Rs1) | groupMask(in.Rs2, lmul)
			u.WritesV = bit(in.Rd)
		}
	case ofsOPVX:
		u.ReadsV = groupMask(in.Rs2, lmul)
		u.WritesV = groupMask(in.Rd, lmul)
		if isOPF(in.Op) {
			u.ReadsF = bit(in.Rs1)
		} else {
			u.ReadsX = xbit(in.Rs1)
		}
		if isMACC(in.Op) {
			u.ReadsV |= groupMask(in.Rd, lmul)
		}
		if in.Op == OpVMVVX || in.Op == OpVFMVVF {
			u.ReadsV = 0 // vs2 field is fixed zero, not a source
		}
	case ofsOPVI:
		u.ReadsV = groupMask(in.Rs2, lmul)
		u.WritesV = groupMask(in.Rd, lmul)
		if in.Op == OpVMVVI {
			u.ReadsV = 0
		}
	case ofsOPMV:
		switch in.Op {
		case OpVMVXS:
			u.ReadsV = bit(in.Rs2)
			u.WritesX = xbit(in.Rd)
		case OpVFMVFS:
			u.ReadsV = bit(in.Rs2)
			u.WritesF = bit(in.Rd)
		default: // vfsqrt.v
			u.ReadsV = groupMask(in.Rs2, lmul)
			u.WritesV = groupMask(in.Rd, lmul)
		}
	case ofsOPSX:
		u.WritesV = bit(in.Rd)
		if in.Op == OpVFMVSF {
			u.ReadsF = bit(in.Rs1)
		} else {
			u.ReadsX = xbit(in.Rs1)
		}
	case ofsOPMVV: // vid.v
		u.WritesV = groupMask(in.Rd, lmul)
	case ofsVSETVLI:
		u.ReadsX = xbit(in.Rs1)
		u.WritesX = xbit(in.Rd)
	case ofsVSETIVLI:
		u.WritesX = xbit(in.Rd)
	case ofsVSETVL:
		u.ReadsX = xbit(in.Rs1) | xbit(in.Rs2)
		u.WritesX = xbit(in.Rd)
	}
	// A masked vector op also reads the mask register v0.
	if !in.VM && in.Op.IsVector() {
		u.ReadsV |= 1
	}
	return u
}

func isMACC(op Op) bool {
	switch op {
	case OpVMACCVV, OpVMACCVX, OpVFMACCVV, OpVFMACCVF, OpVFNMSACVV:
		return true
	}
	return false
}

func isReduction(op Op) bool {
	switch op {
	case OpVREDSUMVS, OpVREDMAXVS, OpVFREDUSUMVS, OpVFREDOSUMVS:
		return true
	}
	return false
}
