package riscv

import "fmt"

// ABI names for the integer register file, indexed by register number.
var XRegNames = [32]string{
	"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
	"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
	"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
}

// ABI names for the floating-point register file.
var FRegNames = [32]string{
	"ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7",
	"fs0", "fs1", "fa0", "fa1", "fa2", "fa3", "fa4", "fa5",
	"fa6", "fa7", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7",
	"fs8", "fs9", "fs10", "fs11", "ft8", "ft9", "ft10", "ft11",
}

// Convenience integer register numbers (ABI).
const (
	RegZero = 0
	RegRA   = 1
	RegSP   = 2
	RegGP   = 3
	RegTP   = 4
	RegT0   = 5
	RegT1   = 6
	RegT2   = 7
	RegS0   = 8
	RegS1   = 9
	RegA0   = 10
	RegA1   = 11
	RegA2   = 12
	RegA3   = 13
	RegA4   = 14
	RegA5   = 15
	RegA6   = 16
	RegA7   = 17
)

// XRegName returns the ABI name of integer register r.
func XRegName(r uint8) string {
	if r < 32 {
		return XRegNames[r]
	}
	return fmt.Sprintf("x%d?", r)
}

// FRegName returns the ABI name of FP register r.
func FRegName(r uint8) string {
	if r < 32 {
		return FRegNames[r]
	}
	return fmt.Sprintf("f%d?", r)
}

// VRegName returns the name of vector register r.
func VRegName(r uint8) string { return fmt.Sprintf("v%d", r) }

// CSR addresses used by the simulator.
const (
	CSRVStart  = 0x008
	CSRMStatus = 0x300
	CSRMTVec   = 0x305
	CSRMEPC    = 0x341
	CSRMCause  = 0x342
	CSRCycle   = 0xC00
	CSRTime    = 0xC01
	CSRInstret = 0xC02
	CSRVL      = 0xC20
	CSRVType   = 0xC21
	CSRVLenB   = 0xC22
	CSRMHartID = 0xF14
)

// CSRNames maps CSR addresses to their standard names.
var CSRNames = map[uint16]string{
	CSRVStart: "vstart", CSRMStatus: "mstatus", CSRMTVec: "mtvec",
	CSRMEPC: "mepc", CSRMCause: "mcause",
	CSRCycle: "cycle", CSRTime: "time", CSRInstret: "instret",
	CSRVL: "vl", CSRVType: "vtype", CSRVLenB: "vlenb",
	CSRMHartID: "mhartid",
}

// CSRName returns the standard name for a CSR address, or a hex fallback.
func CSRName(addr uint16) string {
	if n, ok := CSRNames[addr]; ok {
		return n
	}
	return fmt.Sprintf("csr%#03x", addr)
}

// CSRByName resolves a CSR name to its address.
func CSRByName(name string) (uint16, bool) {
	for addr, n := range CSRNames {
		if n == name {
			return addr, true
		}
	}
	return 0, false
}

// VType is the decoded contents of the vtype CSR.
type VType struct {
	SEW  uint // selected element width in bits: 8, 16, 32, 64
	LMUL uint // register group multiplier: 1, 2, 4, 8
	TA   bool // tail agnostic
	MA   bool // mask agnostic
}

// EncodeVType packs a VType into the zimm immediate of vsetvli.
func EncodeVType(t VType) (int64, error) {
	var sewBits int64
	switch t.SEW {
	case 8:
		sewBits = 0
	case 16:
		sewBits = 1
	case 32:
		sewBits = 2
	case 64:
		sewBits = 3
	default:
		return 0, fmt.Errorf("riscv: invalid SEW %d", t.SEW)
	}
	var lmulBits int64
	switch t.LMUL {
	case 1:
		lmulBits = 0
	case 2:
		lmulBits = 1
	case 4:
		lmulBits = 2
	case 8:
		lmulBits = 3
	default:
		return 0, fmt.Errorf("riscv: invalid LMUL %d", t.LMUL)
	}
	v := lmulBits | sewBits<<3
	if t.TA {
		v |= 1 << 6
	}
	if t.MA {
		v |= 1 << 7
	}
	return v, nil
}

// DecodeVType unpacks a vtype value. The vill bit (63) marks an illegal
// configuration; DecodeVType reports ok=false in that case.
func DecodeVType(v uint64) (t VType, ok bool) {
	if v>>63&1 == 1 {
		return VType{}, false
	}
	switch v >> 3 & 0x7 {
	case 0:
		t.SEW = 8
	case 1:
		t.SEW = 16
	case 2:
		t.SEW = 32
	case 3:
		t.SEW = 64
	default:
		return VType{}, false
	}
	switch v & 0x7 {
	case 0:
		t.LMUL = 1
	case 1:
		t.LMUL = 2
	case 2:
		t.LMUL = 4
	case 3:
		t.LMUL = 8
	default:
		return VType{}, false // fractional LMUL unsupported
	}
	t.TA = v>>6&1 == 1
	t.MA = v>>7&1 == 1
	return t, true
}

// ElemBytes returns the element size in bytes for a vector memory op, or 0
// for non-vector-memory opcodes.
func (op Op) ElemBytes() uint {
	switch op {
	case OpVLE8, OpVSE8, OpVLSE8, OpVSSE8, OpVLUXEI8, OpVSUXEI8:
		return 1
	case OpVLE16, OpVSE16, OpVLSE16, OpVSSE16, OpVLUXEI16, OpVSUXEI16:
		return 2
	case OpVLE32, OpVSE32, OpVLSE32, OpVSSE32, OpVLUXEI32, OpVSUXEI32:
		return 4
	case OpVLE64, OpVSE64, OpVLSE64, OpVSSE64, OpVLUXEI64, OpVSUXEI64:
		return 8
	}
	return 0
}
