package riscv

var opByName map[string]Op

func init() {
	opByName = make(map[string]Op, len(opNames))
	for op, name := range opNames {
		if name != "" {
			opByName[name] = Op(op)
		}
	}
}

// OpByName resolves a canonical mnemonic (as produced by Op.String) to its
// opcode.
func OpByName(name string) (Op, bool) {
	op, ok := opByName[name]
	return op, ok
}

// XRegByName resolves an integer register by numeric (x7) or ABI (t2)
// name. fp is accepted as an alias for s0.
func XRegByName(name string) (uint8, bool) {
	if name == "fp" {
		return 8, true
	}
	for i, n := range XRegNames {
		if n == name {
			return uint8(i), true
		}
	}
	if r, ok := numberedReg(name, 'x'); ok {
		return r, true
	}
	return 0, false
}

// FRegByName resolves an FP register by numeric (f7) or ABI (ft7) name.
func FRegByName(name string) (uint8, bool) {
	for i, n := range FRegNames {
		if n == name {
			return uint8(i), true
		}
	}
	if r, ok := numberedReg(name, 'f'); ok {
		return r, true
	}
	return 0, false
}

// VRegByName resolves a vector register (v0..v31).
func VRegByName(name string) (uint8, bool) {
	return numberedReg(name, 'v')
}

func numberedReg(name string, prefix byte) (uint8, bool) {
	if len(name) < 2 || len(name) > 3 || name[0] != prefix {
		return 0, false
	}
	n := 0
	for i := 1; i < len(name); i++ {
		c := name[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	if len(name) == 3 && name[1] == '0' {
		return 0, false // reject x07 style
	}
	if n > 31 {
		return 0, false
	}
	return uint8(n), true
}
