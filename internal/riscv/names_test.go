package riscv

import "testing"

func TestOpByName(t *testing.T) {
	for op := Op(1); op < opMax; op++ {
		got, ok := OpByName(op.String())
		if !ok || got != op {
			t.Errorf("OpByName(%q) = %v, %v", op.String(), got, ok)
		}
	}
	if _, ok := OpByName("frobnicate"); ok {
		t.Error("bogus mnemonic resolved")
	}
}

func TestRegByName(t *testing.T) {
	cases := []struct {
		name string
		want uint8
		ok   bool
	}{
		{"zero", 0, true}, {"ra", 1, true}, {"sp", 2, true},
		{"a0", 10, true}, {"t6", 31, true}, {"fp", 8, true},
		{"x0", 0, true}, {"x31", 31, true}, {"x15", 15, true},
		{"x32", 0, false}, {"x07", 0, false}, {"xyz", 0, false},
		{"", 0, false}, {"x", 0, false},
	}
	for _, c := range cases {
		got, ok := XRegByName(c.name)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("XRegByName(%q) = %d, %v; want %d, %v",
				c.name, got, ok, c.want, c.ok)
		}
	}
	if r, ok := FRegByName("fa0"); !ok || r != 10 {
		t.Errorf("FRegByName(fa0) = %d, %v", r, ok)
	}
	if r, ok := FRegByName("f31"); !ok || r != 31 {
		t.Errorf("FRegByName(f31) = %d, %v", r, ok)
	}
	if _, ok := FRegByName("a0"); ok {
		t.Error("integer name accepted as FP register")
	}
	if r, ok := VRegByName("v7"); !ok || r != 7 {
		t.Errorf("VRegByName(v7) = %d, %v", r, ok)
	}
	if _, ok := VRegByName("w7"); ok {
		t.Error("bogus vector register accepted")
	}
}

func TestCSRNameLookup(t *testing.T) {
	if CSRName(CSRMHartID) != "mhartid" {
		t.Error("CSRName(mhartid) wrong")
	}
	if CSRName(0x123) != "csr0x123" {
		t.Errorf("fallback = %q", CSRName(0x123))
	}
	if addr, ok := CSRByName("vlenb"); !ok || addr != CSRVLenB {
		t.Errorf("CSRByName(vlenb) = %#x, %v", addr, ok)
	}
	if _, ok := CSRByName("nope"); ok {
		t.Error("bogus CSR name resolved")
	}
}

func TestRegNameFallbacks(t *testing.T) {
	if XRegName(40) == "" || FRegName(40) == "" || VRegName(5) != "v5" {
		t.Error("register name fallbacks broken")
	}
}
