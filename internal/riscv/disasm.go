package riscv

import "fmt"

// Disasm renders in as assembly text in the canonical operand order.
// It is primarily a debugging aid; the output round-trips through
// internal/asm for all supported instructions.
func Disasm(in Instr) string {
	name := in.Op.String()
	if int(in.Op) >= len(encodeRows) || encodeRows[in.Op] == nil {
		return name
	}
	r := encodeRows[in.Op]
	vm := ""
	if !in.VM {
		vm = ", v0.t"
	}
	switch r.f {
	case ofsNone:
		return name
	case ofsR:
		cls := in.Op.Classify()
		switch {
		case cls&ClassAtomic != 0:
			return fmt.Sprintf("%s %s, %s, (%s)", name,
				XRegName(in.Rd), XRegName(in.Rs2), XRegName(in.Rs1))
		case cls&ClassFloat != 0:
			if in.Op == OpFEQS || in.Op == OpFLTS || in.Op == OpFLES ||
				in.Op == OpFEQD || in.Op == OpFLTD || in.Op == OpFLED {
				return fmt.Sprintf("%s %s, %s, %s", name,
					XRegName(in.Rd), FRegName(in.Rs1), FRegName(in.Rs2))
			}
			return fmt.Sprintf("%s %s, %s, %s", name,
				FRegName(in.Rd), FRegName(in.Rs1), FRegName(in.Rs2))
		default:
			return fmt.Sprintf("%s %s, %s, %s", name,
				XRegName(in.Rd), XRegName(in.Rs1), XRegName(in.Rs2))
		}
	case ofsR4:
		return fmt.Sprintf("%s %s, %s, %s, %s", name,
			FRegName(in.Rd), FRegName(in.Rs1), FRegName(in.Rs2), FRegName(in.Rs3))
	case ofsI:
		switch in.Op.Classify() & (ClassLoad | ClassStore) {
		case ClassLoad:
			dst := XRegName(in.Rd)
			if in.Op == OpFLW || in.Op == OpFLD {
				dst = FRegName(in.Rd)
			}
			return fmt.Sprintf("%s %s, %d(%s)", name, dst, in.Imm, XRegName(in.Rs1))
		}
		return fmt.Sprintf("%s %s, %s, %d", name, XRegName(in.Rd), XRegName(in.Rs1), in.Imm)
	case ofsISh6, ofsISh5:
		return fmt.Sprintf("%s %s, %s, %d", name, XRegName(in.Rd), XRegName(in.Rs1), in.Imm)
	case ofsS:
		src := XRegName(in.Rs2)
		if in.Op == OpFSW || in.Op == OpFSD {
			src = FRegName(in.Rs2)
		}
		return fmt.Sprintf("%s %s, %d(%s)", name, src, in.Imm, XRegName(in.Rs1))
	case ofsB:
		return fmt.Sprintf("%s %s, %s, %d", name, XRegName(in.Rs1), XRegName(in.Rs2), in.Imm)
	case ofsU:
		return fmt.Sprintf("%s %s, %#x", name, XRegName(in.Rd), in.Imm)
	case ofsJ:
		return fmt.Sprintf("%s %s, %d", name, XRegName(in.Rd), in.Imm)
	case ofsCSR:
		csr := CSRName(uint16(in.Imm))
		if in.Op == OpCSRRWI || in.Op == OpCSRRSI || in.Op == OpCSRRCI {
			return fmt.Sprintf("%s %s, %s, %d", name, XRegName(in.Rd), csr, in.Rs1)
		}
		return fmt.Sprintf("%s %s, %s, %s", name, XRegName(in.Rd), csr, XRegName(in.Rs1))
	case ofsRdRs1:
		rdName, rs1Name := fpUnaryRegNames(in.Op, in.Rd, in.Rs1)
		if in.Op == OpLRW || in.Op == OpLRD {
			return fmt.Sprintf("%s %s, (%s)", name, XRegName(in.Rd), XRegName(in.Rs1))
		}
		return fmt.Sprintf("%s %s, %s", name, rdName, rs1Name)
	case ofsVL, ofsVS:
		return fmt.Sprintf("%s %s, (%s)%s", name, VRegName(in.Rd), XRegName(in.Rs1), vm)
	case ofsVLS, ofsVSS:
		return fmt.Sprintf("%s %s, (%s), %s%s", name,
			VRegName(in.Rd), XRegName(in.Rs1), XRegName(in.Rs2), vm)
	case ofsVLX, ofsVSX:
		return fmt.Sprintf("%s %s, (%s), %s%s", name,
			VRegName(in.Rd), XRegName(in.Rs1), VRegName(in.Rs2), vm)
	case ofsOPVV:
		if in.Op == OpVMVVV {
			return fmt.Sprintf("%s %s, %s", name, VRegName(in.Rd), VRegName(in.Rs1))
		}
		if isMACC(in.Op) {
			// Accumulators print in their canonical vd, vs1, vs2 order.
			return fmt.Sprintf("%s %s, %s, %s%s", name,
				VRegName(in.Rd), VRegName(in.Rs1), VRegName(in.Rs2), vm)
		}
		return fmt.Sprintf("%s %s, %s, %s%s", name,
			VRegName(in.Rd), VRegName(in.Rs2), VRegName(in.Rs1), vm)
	case ofsOPVX:
		srcName := XRegName(in.Rs1)
		if isOPF(in.Op) {
			srcName = FRegName(in.Rs1)
		}
		if in.Op == OpVMVVX || in.Op == OpVFMVVF {
			return fmt.Sprintf("%s %s, %s", name, VRegName(in.Rd), srcName)
		}
		if isMACC(in.Op) {
			return fmt.Sprintf("%s %s, %s, %s%s", name,
				VRegName(in.Rd), srcName, VRegName(in.Rs2), vm)
		}
		return fmt.Sprintf("%s %s, %s, %s%s", name,
			VRegName(in.Rd), VRegName(in.Rs2), srcName, vm)
	case ofsOPVI:
		if in.Op == OpVMVVI {
			return fmt.Sprintf("%s %s, %d", name, VRegName(in.Rd), in.Imm)
		}
		return fmt.Sprintf("%s %s, %s, %d%s", name,
			VRegName(in.Rd), VRegName(in.Rs2), in.Imm, vm)
	case ofsOPMV:
		if in.Op == OpVMVXS {
			return fmt.Sprintf("%s %s, %s", name, XRegName(in.Rd), VRegName(in.Rs2))
		}
		if in.Op == OpVFMVFS {
			return fmt.Sprintf("%s %s, %s", name, FRegName(in.Rd), VRegName(in.Rs2))
		}
		return fmt.Sprintf("%s %s, %s%s", name, VRegName(in.Rd), VRegName(in.Rs2), vm)
	case ofsOPSX:
		if in.Op == OpVFMVSF {
			return fmt.Sprintf("%s %s, %s", name, VRegName(in.Rd), FRegName(in.Rs1))
		}
		return fmt.Sprintf("%s %s, %s", name, VRegName(in.Rd), XRegName(in.Rs1))
	case ofsOPMVV:
		return fmt.Sprintf("%s %s%s", name, VRegName(in.Rd), vm)
	case ofsVSETVLI:
		t, _ := DecodeVType(uint64(in.Imm))
		return fmt.Sprintf("%s %s, %s, e%d, m%d", name,
			XRegName(in.Rd), XRegName(in.Rs1), t.SEW, t.LMUL)
	case ofsVSETIVLI:
		t, _ := DecodeVType(uint64(in.Imm))
		return fmt.Sprintf("%s %s, %d, e%d, m%d", name,
			XRegName(in.Rd), in.Rs1, t.SEW, t.LMUL)
	case ofsVSETVL:
		return fmt.Sprintf("%s %s, %s, %s", name,
			XRegName(in.Rd), XRegName(in.Rs1), XRegName(in.Rs2))
	}
	return name
}

// isOPF reports whether op takes an f-register scalar operand (.vf forms).
func isOPF(op Op) bool {
	switch op {
	case OpVFADDVF, OpVFSUBVF, OpVFMULVF, OpVFDIVVF, OpVFMACCVF, OpVFMVVF:
		return true
	}
	return false
}

// fpUnaryRegNames picks the right register-file names for FP unary ops,
// where one side may be an integer register (moves, conversions, fclass).
func fpUnaryRegNames(op Op, rd, rs1 uint8) (string, string) {
	switch op {
	case OpFCVTWS, OpFCVTWUS, OpFCVTLS, OpFCVTLUS,
		OpFCVTWD, OpFCVTWUD, OpFCVTLD, OpFCVTLUD,
		OpFMVXW, OpFMVXD, OpFCLASSS, OpFCLASSD:
		return XRegName(rd), FRegName(rs1)
	case OpFCVTSW, OpFCVTSWU, OpFCVTSL, OpFCVTSLU,
		OpFCVTDW, OpFCVTDWU, OpFCVTDL, OpFCVTDLU,
		OpFMVWX, OpFMVDX:
		return FRegName(rd), XRegName(rs1)
	default:
		return FRegName(rd), FRegName(rs1)
	}
}
