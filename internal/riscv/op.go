// Package riscv defines the subset of the RISC-V ISA understood by the
// simulator: RV64I base, M (multiply/divide), A (atomics), F/D (single and
// double precision floating point), Zicsr, and a working subset of the "V"
// vector extension v1.0. It provides instruction encoding, decoding and
// disassembly against the real 32-bit instruction formats, so programs
// assembled by internal/asm are genuine RISC-V machine code.
package riscv

// Op enumerates every instruction mnemonic the simulator understands.
type Op uint16

// Instruction opcodes, grouped by extension.
const (
	OpInvalid Op = iota

	// RV64I base integer ISA.
	OpLUI
	OpAUIPC
	OpJAL
	OpJALR
	OpBEQ
	OpBNE
	OpBLT
	OpBGE
	OpBLTU
	OpBGEU
	OpLB
	OpLH
	OpLW
	OpLD
	OpLBU
	OpLHU
	OpLWU
	OpSB
	OpSH
	OpSW
	OpSD
	OpADDI
	OpSLTI
	OpSLTIU
	OpXORI
	OpORI
	OpANDI
	OpSLLI
	OpSRLI
	OpSRAI
	OpADD
	OpSUB
	OpSLL
	OpSLT
	OpSLTU
	OpXOR
	OpSRL
	OpSRA
	OpOR
	OpAND
	OpFENCE
	OpFENCEI
	OpECALL
	OpEBREAK
	OpADDIW
	OpSLLIW
	OpSRLIW
	OpSRAIW
	OpADDW
	OpSUBW
	OpSLLW
	OpSRLW
	OpSRAW

	// Zicsr.
	OpCSRRW
	OpCSRRS
	OpCSRRC
	OpCSRRWI
	OpCSRRSI
	OpCSRRCI

	// M extension.
	OpMUL
	OpMULH
	OpMULHSU
	OpMULHU
	OpDIV
	OpDIVU
	OpREM
	OpREMU
	OpMULW
	OpDIVW
	OpDIVUW
	OpREMW
	OpREMUW

	// A extension.
	OpLRW
	OpSCW
	OpAMOSWAPW
	OpAMOADDW
	OpAMOXORW
	OpAMOANDW
	OpAMOORW
	OpAMOMINW
	OpAMOMAXW
	OpAMOMINUW
	OpAMOMAXUW
	OpLRD
	OpSCD
	OpAMOSWAPD
	OpAMOADDD
	OpAMOXORD
	OpAMOANDD
	OpAMOORD
	OpAMOMIND
	OpAMOMAXD
	OpAMOMINUD
	OpAMOMAXUD

	// F extension (single precision).
	OpFLW
	OpFSW
	OpFADDS
	OpFSUBS
	OpFMULS
	OpFDIVS
	OpFSQRTS
	OpFSGNJS
	OpFSGNJNS
	OpFSGNJXS
	OpFMINS
	OpFMAXS
	OpFCVTWS
	OpFCVTWUS
	OpFCVTLS
	OpFCVTLUS
	OpFCVTSW
	OpFCVTSWU
	OpFCVTSL
	OpFCVTSLU
	OpFMVXW
	OpFMVWX
	OpFEQS
	OpFLTS
	OpFLES
	OpFCLASSS
	OpFMADDS
	OpFMSUBS
	OpFNMSUBS
	OpFNMADDS

	// D extension (double precision).
	OpFLD
	OpFSD
	OpFADDD
	OpFSUBD
	OpFMULD
	OpFDIVD
	OpFSQRTD
	OpFSGNJD
	OpFSGNJND
	OpFSGNJXD
	OpFMIND
	OpFMAXD
	OpFCVTWD
	OpFCVTWUD
	OpFCVTLD
	OpFCVTLUD
	OpFCVTDW
	OpFCVTDWU
	OpFCVTDL
	OpFCVTDLU
	OpFCVTSD
	OpFCVTDS
	OpFMVXD
	OpFMVDX
	OpFEQD
	OpFLTD
	OpFLED
	OpFCLASSD
	OpFMADDD
	OpFMSUBD
	OpFNMSUBD
	OpFNMADDD

	// V extension: configuration.
	OpVSETVLI
	OpVSETIVLI
	OpVSETVL

	// V extension: unit-stride loads/stores.
	OpVLE8
	OpVLE16
	OpVLE32
	OpVLE64
	OpVSE8
	OpVSE16
	OpVSE32
	OpVSE64

	// V extension: strided loads/stores.
	OpVLSE8
	OpVLSE16
	OpVLSE32
	OpVLSE64
	OpVSSE8
	OpVSSE16
	OpVSSE32
	OpVSSE64

	// V extension: indexed (gather/scatter), unordered.
	OpVLUXEI8
	OpVLUXEI16
	OpVLUXEI32
	OpVLUXEI64
	OpVSUXEI8
	OpVSUXEI16
	OpVSUXEI32
	OpVSUXEI64

	// V extension: integer arithmetic (OPIVV/OPIVX/OPIVI).
	OpVADDVV
	OpVADDVX
	OpVADDVI
	OpVSUBVV
	OpVSUBVX
	OpVRSUBVX
	OpVRSUBVI
	OpVANDVV
	OpVANDVX
	OpVANDVI
	OpVORVV
	OpVORVX
	OpVORVI
	OpVXORVV
	OpVXORVX
	OpVXORVI
	OpVSLLVV
	OpVSLLVX
	OpVSLLVI
	OpVSRLVV
	OpVSRLVX
	OpVSRLVI
	OpVSRAVV
	OpVSRAVX
	OpVSRAVI
	OpVMINVV
	OpVMINVX
	OpVMAXVV
	OpVMAXVX
	OpVMSEQVV
	OpVMSEQVX
	OpVMSEQVI
	OpVMSNEVV
	OpVMSNEVX
	OpVMSLTVV
	OpVMSLTVX
	OpVMSLEVV
	OpVMSLEVX
	OpVMVVV
	OpVMVVX
	OpVMVVI
	OpVSLIDEDOWNVX
	OpVSLIDEDOWNVI

	// V extension: integer multiply/accumulate & misc (OPMVV/OPMVX).
	OpVMULVV
	OpVMULVX
	OpVMULHVV
	OpVMACCVV
	OpVMACCVX
	OpVREDSUMVS
	OpVREDMAXVS
	OpVIDV
	OpVMVXS
	OpVMVSX
	OpVSLIDE1DOWNVX

	// V extension: floating point (OPFVV/OPFVF).
	OpVFADDVV
	OpVFADDVF
	OpVFSUBVV
	OpVFSUBVF
	OpVFMULVV
	OpVFMULVF
	OpVFDIVVV
	OpVFDIVVF
	OpVFMACCVV
	OpVFMACCVF
	OpVFNMSACVV
	OpVFMINVV
	OpVFMAXVV
	OpVFMVVF
	OpVFMVFS
	OpVFMVSF
	OpVFREDUSUMVS
	OpVFREDOSUMVS
	OpVFSQRTV

	opMax // sentinel; must be last
)

// Class flags describing the broad behaviour of an instruction. The
// executor and the timing model use these to route instructions without
// enumerating opcodes.
type Class uint16

const (
	ClassALU Class = 1 << iota
	ClassLoad
	ClassStore
	ClassBranch
	ClassSystem
	ClassAtomic
	ClassFloat
	ClassVector
	ClassVectorMem
	ClassCSR
)

// classTab caches classify for every opcode: Classify sits on the
// executor's dispatch path (once per FP/vector instruction), where the
// comparison chain in classify measurably outweighs a table load.
var classTab = func() [opMax]Class {
	var t [opMax]Class
	for op := Op(0); op < opMax; op++ {
		t[op] = op.classify()
	}
	return t
}()

// Classify reports the behavioural class of op.
func (op Op) Classify() Class {
	if op >= opMax {
		return ClassALU // matches classify's default for unknown opcodes
	}
	return classTab[op]
}

func (op Op) classify() Class {
	switch {
	case op >= OpLB && op <= OpLWU:
		return ClassLoad
	case op >= OpSB && op <= OpSD:
		return ClassStore
	case op == OpFLW || op == OpFLD:
		return ClassLoad | ClassFloat
	case op == OpFSW || op == OpFSD:
		return ClassStore | ClassFloat
	case op >= OpBEQ && op <= OpBGEU, op == OpJAL, op == OpJALR:
		return ClassBranch
	case op >= OpCSRRW && op <= OpCSRRCI:
		return ClassCSR | ClassSystem
	case op == OpECALL || op == OpEBREAK || op == OpFENCE || op == OpFENCEI:
		return ClassSystem
	case op >= OpLRW && op <= OpAMOMAXUD:
		return ClassAtomic | ClassLoad | ClassStore
	case op >= OpFADDS && op <= OpFNMADDS, op >= OpFADDD && op <= OpFNMADDD:
		return ClassFloat
	case op >= OpVLE8 && op <= OpVLUXEI64 && op < OpVSUXEI8,
		op >= OpVLSE8 && op <= OpVLSE64:
		if op.isVStore() {
			return ClassVector | ClassVectorMem | ClassStore
		}
		return ClassVector | ClassVectorMem | ClassLoad
	case op >= OpVSUXEI8 && op <= OpVSUXEI64:
		return ClassVector | ClassVectorMem | ClassStore
	case op >= OpVSETVLI && op <= OpVSETVL:
		return ClassVector | ClassSystem
	case op >= OpVADDVV && op < opMax:
		return ClassVector
	default:
		return ClassALU
	}
}

func (op Op) isVStore() bool {
	switch op {
	case OpVSE8, OpVSE16, OpVSE32, OpVSE64,
		OpVSSE8, OpVSSE16, OpVSSE32, OpVSSE64,
		OpVSUXEI8, OpVSUXEI16, OpVSUXEI32, OpVSUXEI64:
		return true
	}
	return false
}

// IsVector reports whether op belongs to the vector extension.
func (op Op) IsVector() bool { return op >= OpVSETVLI && op < opMax }

// IsVectorMem reports whether op is a vector load or store.
func (op Op) IsVectorMem() bool { return op >= OpVLE8 && op <= OpVSUXEI64 }

// String returns the canonical assembly mnemonic for op.
func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return "invalid"
}

// opNames maps Op values to canonical mnemonics. Indexed by Op.
var opNames = [opMax]string{
	OpLUI: "lui", OpAUIPC: "auipc", OpJAL: "jal", OpJALR: "jalr",
	OpBEQ: "beq", OpBNE: "bne", OpBLT: "blt", OpBGE: "bge",
	OpBLTU: "bltu", OpBGEU: "bgeu",
	OpLB: "lb", OpLH: "lh", OpLW: "lw", OpLD: "ld",
	OpLBU: "lbu", OpLHU: "lhu", OpLWU: "lwu",
	OpSB: "sb", OpSH: "sh", OpSW: "sw", OpSD: "sd",
	OpADDI: "addi", OpSLTI: "slti", OpSLTIU: "sltiu", OpXORI: "xori",
	OpORI: "ori", OpANDI: "andi", OpSLLI: "slli", OpSRLI: "srli",
	OpSRAI: "srai",
	OpADD:  "add", OpSUB: "sub", OpSLL: "sll", OpSLT: "slt",
	OpSLTU: "sltu", OpXOR: "xor", OpSRL: "srl", OpSRA: "sra",
	OpOR: "or", OpAND: "and",
	OpFENCE: "fence", OpFENCEI: "fence.i", OpECALL: "ecall", OpEBREAK: "ebreak",
	OpADDIW: "addiw", OpSLLIW: "slliw", OpSRLIW: "srliw", OpSRAIW: "sraiw",
	OpADDW: "addw", OpSUBW: "subw", OpSLLW: "sllw", OpSRLW: "srlw",
	OpSRAW:  "sraw",
	OpCSRRW: "csrrw", OpCSRRS: "csrrs", OpCSRRC: "csrrc",
	OpCSRRWI: "csrrwi", OpCSRRSI: "csrrsi", OpCSRRCI: "csrrci",
	OpMUL: "mul", OpMULH: "mulh", OpMULHSU: "mulhsu", OpMULHU: "mulhu",
	OpDIV: "div", OpDIVU: "divu", OpREM: "rem", OpREMU: "remu",
	OpMULW: "mulw", OpDIVW: "divw", OpDIVUW: "divuw", OpREMW: "remw",
	OpREMUW: "remuw",
	OpLRW:   "lr.w", OpSCW: "sc.w",
	OpAMOSWAPW: "amoswap.w", OpAMOADDW: "amoadd.w", OpAMOXORW: "amoxor.w",
	OpAMOANDW: "amoand.w", OpAMOORW: "amoor.w", OpAMOMINW: "amomin.w",
	OpAMOMAXW: "amomax.w", OpAMOMINUW: "amominu.w", OpAMOMAXUW: "amomaxu.w",
	OpLRD: "lr.d", OpSCD: "sc.d",
	OpAMOSWAPD: "amoswap.d", OpAMOADDD: "amoadd.d", OpAMOXORD: "amoxor.d",
	OpAMOANDD: "amoand.d", OpAMOORD: "amoor.d", OpAMOMIND: "amomin.d",
	OpAMOMAXD: "amomax.d", OpAMOMINUD: "amominu.d", OpAMOMAXUD: "amomaxu.d",
	OpFLW: "flw", OpFSW: "fsw",
	OpFADDS: "fadd.s", OpFSUBS: "fsub.s", OpFMULS: "fmul.s", OpFDIVS: "fdiv.s",
	OpFSQRTS: "fsqrt.s",
	OpFSGNJS: "fsgnj.s", OpFSGNJNS: "fsgnjn.s", OpFSGNJXS: "fsgnjx.s",
	OpFMINS: "fmin.s", OpFMAXS: "fmax.s",
	OpFCVTWS: "fcvt.w.s", OpFCVTWUS: "fcvt.wu.s", OpFCVTLS: "fcvt.l.s",
	OpFCVTLUS: "fcvt.lu.s",
	OpFCVTSW:  "fcvt.s.w", OpFCVTSWU: "fcvt.s.wu", OpFCVTSL: "fcvt.s.l",
	OpFCVTSLU: "fcvt.s.lu",
	OpFMVXW:   "fmv.x.w", OpFMVWX: "fmv.w.x",
	OpFEQS: "feq.s", OpFLTS: "flt.s", OpFLES: "fle.s", OpFCLASSS: "fclass.s",
	OpFMADDS: "fmadd.s", OpFMSUBS: "fmsub.s", OpFNMSUBS: "fnmsub.s",
	OpFNMADDS: "fnmadd.s",
	OpFLD:     "fld", OpFSD: "fsd",
	OpFADDD: "fadd.d", OpFSUBD: "fsub.d", OpFMULD: "fmul.d", OpFDIVD: "fdiv.d",
	OpFSQRTD: "fsqrt.d",
	OpFSGNJD: "fsgnj.d", OpFSGNJND: "fsgnjn.d", OpFSGNJXD: "fsgnjx.d",
	OpFMIND: "fmin.d", OpFMAXD: "fmax.d",
	OpFCVTWD: "fcvt.w.d", OpFCVTWUD: "fcvt.wu.d", OpFCVTLD: "fcvt.l.d",
	OpFCVTLUD: "fcvt.lu.d",
	OpFCVTDW:  "fcvt.d.w", OpFCVTDWU: "fcvt.d.wu", OpFCVTDL: "fcvt.d.l",
	OpFCVTDLU: "fcvt.d.lu",
	OpFCVTSD:  "fcvt.s.d", OpFCVTDS: "fcvt.d.s",
	OpFMVXD: "fmv.x.d", OpFMVDX: "fmv.d.x",
	OpFEQD: "feq.d", OpFLTD: "flt.d", OpFLED: "fle.d", OpFCLASSD: "fclass.d",
	OpFMADDD: "fmadd.d", OpFMSUBD: "fmsub.d", OpFNMSUBD: "fnmsub.d",
	OpFNMADDD: "fnmadd.d",
	OpVSETVLI: "vsetvli", OpVSETIVLI: "vsetivli", OpVSETVL: "vsetvl",
	OpVLE8: "vle8.v", OpVLE16: "vle16.v", OpVLE32: "vle32.v", OpVLE64: "vle64.v",
	OpVSE8: "vse8.v", OpVSE16: "vse16.v", OpVSE32: "vse32.v", OpVSE64: "vse64.v",
	OpVLSE8: "vlse8.v", OpVLSE16: "vlse16.v", OpVLSE32: "vlse32.v",
	OpVLSE64: "vlse64.v",
	OpVSSE8:  "vsse8.v", OpVSSE16: "vsse16.v", OpVSSE32: "vsse32.v",
	OpVSSE64:  "vsse64.v",
	OpVLUXEI8: "vluxei8.v", OpVLUXEI16: "vluxei16.v", OpVLUXEI32: "vluxei32.v",
	OpVLUXEI64: "vluxei64.v",
	OpVSUXEI8:  "vsuxei8.v", OpVSUXEI16: "vsuxei16.v", OpVSUXEI32: "vsuxei32.v",
	OpVSUXEI64: "vsuxei64.v",
	OpVADDVV:   "vadd.vv", OpVADDVX: "vadd.vx", OpVADDVI: "vadd.vi",
	OpVSUBVV: "vsub.vv", OpVSUBVX: "vsub.vx",
	OpVRSUBVX: "vrsub.vx", OpVRSUBVI: "vrsub.vi",
	OpVANDVV: "vand.vv", OpVANDVX: "vand.vx", OpVANDVI: "vand.vi",
	OpVORVV: "vor.vv", OpVORVX: "vor.vx", OpVORVI: "vor.vi",
	OpVXORVV: "vxor.vv", OpVXORVX: "vxor.vx", OpVXORVI: "vxor.vi",
	OpVSLLVV: "vsll.vv", OpVSLLVX: "vsll.vx", OpVSLLVI: "vsll.vi",
	OpVSRLVV: "vsrl.vv", OpVSRLVX: "vsrl.vx", OpVSRLVI: "vsrl.vi",
	OpVSRAVV: "vsra.vv", OpVSRAVX: "vsra.vx", OpVSRAVI: "vsra.vi",
	OpVMINVV: "vmin.vv", OpVMINVX: "vmin.vx",
	OpVMAXVV: "vmax.vv", OpVMAXVX: "vmax.vx",
	OpVMSEQVV: "vmseq.vv", OpVMSEQVX: "vmseq.vx", OpVMSEQVI: "vmseq.vi",
	OpVMSNEVV: "vmsne.vv", OpVMSNEVX: "vmsne.vx",
	OpVMSLTVV: "vmslt.vv", OpVMSLTVX: "vmslt.vx",
	OpVMSLEVV: "vmsle.vv", OpVMSLEVX: "vmsle.vx",
	OpVMVVV: "vmv.v.v", OpVMVVX: "vmv.v.x", OpVMVVI: "vmv.v.i",
	OpVSLIDEDOWNVX: "vslidedown.vx", OpVSLIDEDOWNVI: "vslidedown.vi",
	OpVMULVV: "vmul.vv", OpVMULVX: "vmul.vx", OpVMULHVV: "vmulh.vv",
	OpVMACCVV: "vmacc.vv", OpVMACCVX: "vmacc.vx",
	OpVREDSUMVS: "vredsum.vs", OpVREDMAXVS: "vredmax.vs",
	OpVIDV: "vid.v", OpVMVXS: "vmv.x.s", OpVMVSX: "vmv.s.x",
	OpVSLIDE1DOWNVX: "vslide1down.vx",
	OpVFADDVV:       "vfadd.vv", OpVFADDVF: "vfadd.vf",
	OpVFSUBVV: "vfsub.vv", OpVFSUBVF: "vfsub.vf",
	OpVFMULVV: "vfmul.vv", OpVFMULVF: "vfmul.vf",
	OpVFDIVVV: "vfdiv.vv", OpVFDIVVF: "vfdiv.vf",
	OpVFMACCVV: "vfmacc.vv", OpVFMACCVF: "vfmacc.vf",
	OpVFNMSACVV: "vfnmsac.vv",
	OpVFMINVV:   "vfmin.vv", OpVFMAXVV: "vfmax.vv",
	OpVFMVVF: "vfmv.v.f", OpVFMVFS: "vfmv.f.s", OpVFMVSF: "vfmv.s.f",
	OpVFREDUSUMVS: "vfredusum.vs", OpVFREDOSUMVS: "vfredosum.vs",
	OpVFSQRTV: "vfsqrt.v",
}
