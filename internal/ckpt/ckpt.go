// Package ckpt is the low-level binary encoder/decoder shared by every
// component's checkpoint serializer. It exists below internal/evsim,
// internal/cache, internal/cpu, internal/mem, internal/uncore and
// internal/core so each package can expose Snapshot/Restore methods over
// its own unexported state without import cycles; the high-level file
// format (magic, schema version, checksum) lives in internal/checkpoint.
//
// The encoding is deliberately plain: little-endian fixed-width integers
// and length-prefixed byte strings, written in a statically known field
// order. There is no reflection and no per-field tagging — the schema IS
// the code, and any layout change must bump checkpoint.SchemaVersion
// (same bump policy as rcache.SchemaVersion, see DESIGN.md §14).
package ckpt

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Writer accumulates an encoded checkpoint section in memory.
type Writer struct {
	buf []byte
}

// Bytes returns the encoded contents.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the encoded size so far.
func (w *Writer) Len() int { return len(w.buf) }

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}

// U16 appends a little-endian uint16.
func (w *Writer) U16(v uint16) {
	w.buf = binary.LittleEndian.AppendUint16(w.buf, v)
}

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends a bool as one byte (0/1).
func (w *Writer) Bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// Int appends an int as a two's-complement uint64.
func (w *Writer) Int(v int) { w.U64(uint64(v)) }

// F64 appends an IEEE-754 double by bit pattern.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bytes64 appends a u64 length prefix followed by the raw bytes.
func (w *Writer) Bytes64(b []byte) {
	w.U64(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed UTF-8 string.
func (w *Writer) String(s string) {
	w.U64(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Reader decodes a section produced by Writer. Errors are sticky: the
// first short read poisons the reader and every later accessor returns
// zero values, so calling code can decode a whole section and check Err
// once at the end.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader wraps an encoded section.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

func (r *Reader) fail(n int) bool {
	if r.err != nil {
		return true
	}
	if r.off+n > len(r.b) {
		r.err = fmt.Errorf("ckpt: truncated section: need %d bytes at offset %d of %d", n, r.off, len(r.b))
		return true
	}
	return false
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	if r.fail(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	if r.fail(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

// U16 reads a little-endian uint16.
func (r *Reader) U16() uint16 {
	if r.fail(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	if r.fail(1) {
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

// Bool reads one byte as a bool; any non-{0,1} value is corruption.
func (r *Reader) Bool() bool {
	v := r.U8()
	if r.err == nil && v > 1 {
		r.err = fmt.Errorf("ckpt: bad bool byte %#x at offset %d", v, r.off-1)
	}
	return v == 1
}

// Int reads an int written by Writer.Int.
func (r *Reader) Int() int { return int(r.U64()) }

// F64 reads an IEEE-754 double by bit pattern.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bytes64 reads a length-prefixed byte string (a fresh copy).
func (r *Reader) Bytes64() []byte {
	n := r.U64()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)-r.off) {
		r.err = fmt.Errorf("ckpt: byte string length %d exceeds %d remaining", n, len(r.b)-r.off)
		return nil
	}
	out := make([]byte, n)
	copy(out, r.b[r.off:])
	r.off += int(n)
	return out
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes64()) }
